// merge.go implements the DCM merge algorithm of Orakzai et al. (MDM'16):
// combining partial convoys mined in adjacent time partitions into maximal
// convoys. k/2-hop reuses it verbatim to merge 1st-order spanning convoys
// from adjacent hop-windows into maximal spanning convoys (paper §4.4,
// Table 3).
package dcm

import "repro/internal/model"

// Merge folds per-slice convoy sets (ordered left to right; every convoy of
// slice i ends where the convoys of slice i+1 begin) into maximal merged
// convoys. minSize is the m parameter: merged object sets below it are
// discarded.
//
// The procedure mirrors the paper's Table 3: convoys of the accumulator
// that extend into the next slice continue (with the intersected object
// set); convoys that cannot extend intact are final. A final maximality
// filter removes convoys that are sub-convoys of others.
func Merge(slices [][]model.Convoy, minSize int) []model.Convoy {
	results := model.NewConvoySet()
	var acc []model.Convoy
	for si, cur := range slices {
		if si == 0 {
			acc = mergeDominate(cur)
			continue
		}
		var next []model.Convoy
		for _, v := range acc {
			extended := false
			for _, w := range cur {
				if v.End != w.Start {
					continue
				}
				inter := v.Objs.Intersect(w.Objs)
				if len(inter) < minSize {
					continue
				}
				next = append(next, model.Convoy{Objs: inter, Start: v.Start, End: w.End})
				if len(inter) == len(v.Objs) {
					extended = true
				}
			}
			if !extended {
				// v cannot continue intact; it is a maximal merged convoy
				// (possibly still extendable in time by the extension phase,
				// but not by whole-window merging).
				results.Update(v)
			}
		}
		// Convoys of the current slice start their own chains; merged
		// versions that fully cover them dominate and win in the prune.
		next = append(next, cur...)
		acc = mergeDominate(next)
	}
	for _, v := range acc {
		results.Update(v)
	}
	return results.Sorted()
}

// mergeDominate prunes, among convoys ending at the same timestamp, those
// whose objects are a subset of another convoy with an equal-or-earlier
// start: every future merge of the dominated convoy is a sub-convoy of a
// merge of the dominator.
func mergeDominate(cands []model.Convoy) []model.Convoy {
	var out []model.Convoy
	for _, c := range cands {
		dominated := false
		for j := 0; j < len(out); j++ {
			switch {
			case out[j].End == c.End && out[j].Start <= c.Start && c.Objs.SubsetOf(out[j].Objs):
				dominated = true
			case c.End == out[j].End && c.Start <= out[j].Start && out[j].Objs.SubsetOf(c.Objs):
				out[j] = out[len(out)-1]
				out = out[:len(out)-1]
				j--
			}
			if dominated {
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}
