package dcm

import (
	"errors"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

func TestDCMPropagatesFaults(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 19, Groups: [][]int32{{1, 2, 3}}},
	})
	for _, budget := range []int64{0, 5, 15} {
		fs := storetest.NewFaultStore(storage.NewMemStore(ds), budget)
		_, err := Mine(fs, Config{
			M: 3, K: 4, Eps: minetest.Eps, Lambda: 5, Cluster: mapreduce.Local(3),
		})
		if !errors.Is(err, storetest.ErrInjected) {
			t.Fatalf("budget %d: err = %v", budget, err)
		}
	}
}

func TestDedupeConvoysDomination(t *testing.T) {
	big := model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 10)
	sub := model.NewConvoy(model.NewObjSet(1, 2), 2, 8)
	other := model.NewConvoy(model.NewObjSet(4, 5), 0, 10)
	out := dedupeConvoys([]model.Convoy{sub, big, other})
	if len(out) != 2 {
		t.Fatalf("dedupe = %v, want big+other", out)
	}
	for _, c := range out {
		if c.Equal(sub) {
			t.Fatalf("dominated convoy survived: %v", out)
		}
	}
	// Reverse insertion order: dominator arriving second must evict.
	out = dedupeConvoys([]model.Convoy{big, sub})
	if len(out) != 1 || !out[0].Equal(big) {
		t.Fatalf("dedupe reverse = %v", out)
	}
}
