// Package dcm implements the Distributed Convoy Mining algorithm of
// Orakzai et al. (MDM'16) — the paper's distributed baseline (Fig 7g) — on
// the in-process map-reduce runtime:
//
//	map:    the time axis is split into λ-length partitions that overlap by
//	        one timestamp; each partition is mined independently with PCCD,
//	        keeping every partial convoy that touches a partition border
//	        (regardless of length) plus interior convoys of length ≥ k;
//	reduce: the per-partition convoy sets are folded left-to-right with the
//	        DCM merge (merge.go), and the k filter is applied at the end.
//
// DCM mines partially connected convoys, like the original; the experiment
// harness compares wall-clock against k/2-hop the way the paper does. Note
// the cost structure the paper criticises: every partition clusters every
// snapshot it covers, so the whole dataset is read and clustered once even
// when it contains no convoys at all.
package dcm

import (
	"fmt"

	"repro/internal/cmc"
	"repro/internal/dbscan"
	"repro/internal/mapreduce"
	"repro/internal/model"
	"repro/internal/storage"
)

// Config carries DCM's parameters.
type Config struct {
	M   int
	K   int
	Eps float64
	// Lambda is the partition length in ticks (default 4k; the paper notes
	// performance is very sensitive to this data-dependent choice).
	Lambda int
	// Cluster is the simulated execution substrate.
	Cluster mapreduce.Cluster
}

// Mine runs DCM against a store.
func Mine(store storage.Store, cfg Config) ([]model.Convoy, error) {
	if cfg.Lambda <= 0 {
		cfg.Lambda = 4 * cfg.K
	}
	if cfg.Lambda < cfg.K {
		cfg.Lambda = cfg.K
	}
	if cfg.Cluster.Workers() == 0 {
		cfg.Cluster = mapreduce.Local(1)
	}
	ts, te := store.TimeRange()
	if te < ts {
		return nil, nil
	}
	// Build partitions [start, end] overlapping by one tick.
	type part struct{ Start, End int32 }
	var parts []part
	for s := ts; s <= te; s += int32(cfg.Lambda) {
		e := s + int32(cfg.Lambda)
		if e > te {
			e = te
		}
		parts = append(parts, part{Start: s, End: e})
		if e == te {
			break
		}
	}

	// Map phase: mine each partition. Partial convoys touching a border are
	// kept regardless of length so the reduce phase can stitch them.
	results, err := mapreduce.Run(cfg.Cluster, parts, func(p part) ([]model.Convoy, error) {
		keep := func(c model.Convoy) bool {
			return c.Len() >= cfg.K || c.Start == p.Start || c.End == p.End
		}
		mn := cmc.NewMinerKeep(cfg.M, keep)
		for t := p.Start; t <= p.End; t++ {
			snap, err := store.Snapshot(t)
			if err != nil {
				return nil, fmt.Errorf("dcm: snapshot %d: %w", t, err)
			}
			mn.Step(t, dbscan.Cluster(snap, cfg.Eps, cfg.M))
		}
		return mn.Finish(), nil
	})
	if err != nil {
		return nil, err
	}

	// Reduce phase: stitch across partitions, sequentially left to right.
	merged := stitch(results, cfg)
	var out []model.Convoy
	for _, c := range merged {
		if c.Len() >= cfg.K {
			out = append(out, c)
		}
	}
	return model.MaximalConvoys(out), nil
}

// stitch folds partition results left to right: convoys ending at a
// partition's last tick merge with convoys starting at the next partition's
// first tick (the shared overlap tick).
func stitch(parts [][]model.Convoy, cfg Config) []model.Convoy {
	results := model.NewConvoySet()
	var acc []model.Convoy
	for pi, cur := range parts {
		if pi == 0 {
			acc = cur
			continue
		}
		var next []model.Convoy
		consumed := make([]bool, len(cur))
		for _, v := range acc {
			extended := false
			for wi, w := range cur {
				// The overlap tick belongs to both partitions: v ends where
				// w starts.
				if v.End != w.Start {
					continue
				}
				inter := v.Objs.Intersect(w.Objs)
				if len(inter) < cfg.M {
					continue
				}
				next = append(next, model.Convoy{Objs: inter, Start: v.Start, End: w.End})
				if len(inter) == len(v.Objs) {
					extended = true
				}
				if len(inter) == len(w.Objs) {
					consumed[wi] = true
				}
			}
			if !extended {
				results.Update(v)
			}
		}
		for wi, w := range cur {
			if !consumed[wi] {
				next = append(next, w)
			}
		}
		acc = dedupeConvoys(next)
	}
	for _, v := range acc {
		results.Update(v)
	}
	return results.Sorted()
}

// dedupeConvoys drops convoys dominated by another with the same end, a
// superset of objects and an equal-or-earlier start.
func dedupeConvoys(cands []model.Convoy) []model.Convoy {
	var out []model.Convoy
	for _, c := range cands {
		dominated := false
		for j := 0; j < len(out); j++ {
			switch {
			case out[j].End >= c.End && out[j].Start <= c.Start && c.Objs.SubsetOf(out[j].Objs):
				dominated = true
			case c.End >= out[j].End && c.Start <= out[j].Start && out[j].Objs.SubsetOf(c.Objs):
				out[j] = out[len(out)-1]
				out = out[:len(out)-1]
				j--
			}
			if dominated {
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}
