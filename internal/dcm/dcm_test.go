package dcm

import (
	"testing"

	"repro/internal/cmc"
	"repro/internal/mapreduce"
	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

func mineDCM(t *testing.T, ds *model.Dataset, m, k, lambda int) []model.Convoy {
	t.Helper()
	out, err := Mine(storage.NewMemStore(ds), Config{
		M: m, K: k, Eps: minetest.Eps, Lambda: lambda, Cluster: mapreduce.Local(2),
	})
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	return out
}

func TestSimpleConvoyAcrossPartitions(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 19, Groups: [][]int32{{1, 2, 3}}},
	})
	got := mineDCM(t, ds, 3, 5, 4) // convoy spans 5 partitions
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 19)}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestConvoyInsideOnePartition(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 3, End: 7, Groups: [][]int32{{1, 2, 3}}},
		{Start: 0, End: 2, Groups: [][]int32{{1}, {2}, {3}}},
		{Start: 8, End: 19, Groups: [][]int32{{1}, {2}, {3}}},
	})
	got := mineDCM(t, ds, 3, 4, 10)
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 3, 7)}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// DCM mines the same pattern class as PCCD, so the two must agree exactly
// regardless of partition size.
func TestMatchesPCCD(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		ds := minetest.Random(seed, 10, 24)
		want, err := cmc.Mine(storage.NewMemStore(ds), 3, 4, minetest.Eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, lambda := range []int{4, 5, 9, 24, 100} {
			got := mineDCM(t, ds, 3, 4, lambda)
			if !model.ConvoysEqual(got, want) {
				t.Fatalf("seed %d λ=%d:\n got %v\nwant %v", seed, lambda, got, want)
			}
		}
	}
}

func TestShrinkingConvoyAcrossBoundary(t *testing.T) {
	// abcd [0,6]; abc continue [7,14]; boundary at 5 (λ=5).
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 6, Groups: [][]int32{{1, 2, 3, 4}}},
		{Start: 7, End: 14, Groups: [][]int32{{1, 2, 3}, {4}}},
	})
	got := mineDCM(t, ds, 3, 3, 5)
	want := []model.Convoy{
		model.NewConvoy(model.NewObjSet(1, 2, 3, 4), 0, 6),
		model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 14),
	}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMergeTable3Scenario(t *testing.T) {
	// Reproduce the paper's Table 3 merge walk-through: spanning convoy sets
	// of four adjacent hop-windows H0..H3 (Fig 5).
	b := func(i int32) int32 { return i } // benchmark index as timestamp
	h := func(objs []int32, s, e int32) model.Convoy {
		return model.NewConvoy(model.NewObjSet(objs...), b(s), b(e))
	}
	slices := [][]model.Convoy{
		{ // H0: [b0,b1]
			h([]int32{1, 2, 3, 4}, 0, 1), // {a,b,c,d}
			h([]int32{5, 6, 7, 8}, 0, 1), // {e,f,g,h}
			h([]int32{9, 10, 11}, 0, 1),  // {i,j,k}
		},
		{ // H1: [b1,b2]
			h([]int32{1, 2, 3, 4}, 1, 2),
			h([]int32{5, 6}, 1, 2),
			h([]int32{7, 8}, 1, 2),
		},
		{ // H2: [b2,b3]
			h([]int32{1, 2, 5, 6}, 2, 3),
			h([]int32{3, 4, 7, 8}, 2, 3),
			h([]int32{9, 10, 11}, 2, 3),
		},
		{ // H3: [b3,b4]
			h([]int32{1, 2}, 3, 4),
			h([]int32{3, 4}, 3, 4),
			h([]int32{5, 6}, 3, 4),
			h([]int32{7, 8}, 3, 4),
			h([]int32{3, 4, 7, 8}, 3, 4),
		},
	}
	got := Merge(slices, 2)
	want := []model.Convoy{
		h([]int32{1, 2, 3, 4}, 0, 2),
		h([]int32{5, 6, 7, 8}, 0, 1),
		h([]int32{9, 10, 11}, 0, 1),
		h([]int32{1, 2, 5, 6}, 2, 3),
		h([]int32{9, 10, 11}, 2, 3),
		h([]int32{1, 2}, 0, 4),
		h([]int32{3, 4}, 0, 4),
		h([]int32{5, 6}, 0, 4),
		h([]int32{7, 8}, 0, 4),
		h([]int32{3, 4, 7, 8}, 2, 4),
	}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("merge:\n got %v\nwant %v", got, want)
	}
}

func TestMergeEmptySliceBreaksChains(t *testing.T) {
	c := model.NewConvoy(model.NewObjSet(1, 2), 0, 1)
	d := model.NewConvoy(model.NewObjSet(1, 2), 2, 3)
	got := Merge([][]model.Convoy{{c}, {}, {d}}, 2)
	want := []model.Convoy{c, d}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMergeMinSizeFilter(t *testing.T) {
	// Intersection {2,3} of size 2 < minSize 3 cannot merge.
	a := model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 1)
	b := model.NewConvoy(model.NewObjSet(2, 3, 4), 1, 2)
	got := Merge([][]model.Convoy{{a}, {b}}, 3)
	want := []model.Convoy{a, b}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLambdaSmallerThanKClamped(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2, 3}}},
	})
	got := mineDCM(t, ds, 3, 6, 2) // λ < k gets clamped to k
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9)}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEmptyDataset(t *testing.T) {
	got := mineDCM(t, model.NewDataset(nil), 3, 4, 5)
	if len(got) != 0 {
		t.Fatalf("empty dataset: %v", got)
	}
}
