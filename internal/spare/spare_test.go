package spare

import (
	"testing"

	"repro/internal/cmc"
	"repro/internal/mapreduce"
	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

func mineSpare(t *testing.T, ds *model.Dataset, m, k int, cl mapreduce.Cluster) []model.Convoy {
	t.Helper()
	out, err := Mine(storage.NewMemStore(ds), Config{M: m, K: k, Eps: minetest.Eps, Cluster: cl})
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	return out
}

func TestSimpleConvoy(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2, 3}}},
	})
	got := mineSpare(t, ds, 3, 5, mapreduce.Local(2))
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9)}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// SPARE mines the same pattern class as PCCD (maximal partially connected
// convoys), so on any dataset the two must agree exactly.
func TestMatchesPCCD(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		ds := minetest.Random(seed, 10, 16)
		for _, mk := range []struct{ m, k int }{{2, 3}, {3, 4}, {3, 6}} {
			want, err := cmc.Mine(storage.NewMemStore(ds), mk.m, mk.k, minetest.Eps)
			if err != nil {
				t.Fatal(err)
			}
			got := mineSpare(t, ds, mk.m, mk.k, mapreduce.Local(4))
			if !model.ConvoysEqual(got, want) {
				t.Fatalf("seed %d m=%d k=%d:\n got %v\nwant %v", seed, mk.m, mk.k, got, want)
			}
		}
	}
}

func TestClusterModesAgree(t *testing.T) {
	ds := minetest.Random(3, 12, 20)
	local := mineSpare(t, ds, 3, 4, mapreduce.Local(1))
	yarn := mineSpare(t, ds, 3, 4, mapreduce.Cluster{Nodes: 2, Cores: 2, Serialize: true})
	numa := mineSpare(t, ds, 3, 4, mapreduce.Numa(4))
	if !model.ConvoysEqual(local, yarn) || !model.ConvoysEqual(local, numa) {
		t.Fatalf("cluster modes disagree:\nlocal %v\nyarn %v\nnuma %v", local, yarn, numa)
	}
}

func TestApriorPruningCutsEnumeration(t *testing.T) {
	// Objects co-clustered for fewer than k ticks produce a star edge only
	// when a run ≥ k exists; here every pair is together 3 ticks, k=5.
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 2, Groups: [][]int32{{1, 2, 3, 4, 5}}},
		{Start: 3, End: 9, Groups: [][]int32{{1}, {2}, {3}, {4}, {5}}},
	})
	got := mineSpare(t, ds, 2, 5, mapreduce.Local(1))
	if len(got) != 0 {
		t.Fatalf("expected nothing, got %v", got)
	}
}

func TestRunSplitConvoys(t *testing.T) {
	// The pair is together [0,4] and [8,14] with a gap: two convoys from the
	// same group, both ≥ k.
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 4, Groups: [][]int32{{1, 2}}},
		{Start: 5, End: 7, Groups: [][]int32{{1}, {2}}},
		{Start: 8, End: 14, Groups: [][]int32{{1, 2}}},
	})
	got := mineSpare(t, ds, 2, 4, mapreduce.Local(1))
	want := []model.Convoy{
		model.NewConvoy(model.NewObjSet(1, 2), 0, 4),
		model.NewConvoy(model.NewObjSet(1, 2), 8, 14),
	}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEmptyDataset(t *testing.T) {
	got := mineSpare(t, model.NewDataset(nil), 3, 4, mapreduce.Local(1))
	if len(got) != 0 {
		t.Fatalf("empty dataset: %v", got)
	}
}
