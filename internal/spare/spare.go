// Package spare implements the SPARE framework (Star Partitioning and
// ApRiori Enumerator) of Fan et al. (PVLDB'16), the state-of-the-art
// parallel baseline the paper compares against (Figs 7d–7f), on the
// in-process map-reduce runtime.
//
// The two MapReduce stages mirror the original:
//
//	stage 1 — snapshot clustering: timestamps are partitioned over the
//	  cluster's workers; each snapshot is DBSCAN-clustered, producing the
//	  co-clustering sequence of every object pair (a bitset over time).
//	stage 2 — star partitioning + apriori: the object graph (an edge per
//	  pair with a ≥k consecutive co-clustering run) is partitioned into
//	  stars owned by their minimum vertex; each star enumerates candidate
//	  groups apriori-style, pruning any group whose AND-ed sequence has no
//	  run of k consecutive timestamps. Because same-cluster is transitive
//	  at a fixed timestamp, anchoring sequences at the star owner is exact.
//
// The paper's critique — which the experiments reproduce — is that stage 1
// clusters every snapshot of the whole dataset no matter how rare convoys
// are, so SPARE pays the full clustering cost that k/2-hop prunes away.
package spare

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dbscan"
	"repro/internal/mapreduce"
	"repro/internal/model"
	"repro/internal/storage"
)

// Config carries SPARE's parameters.
type Config struct {
	M   int
	K   int
	Eps float64
	// Cluster is the simulated execution substrate.
	Cluster mapreduce.Cluster
}

// Mine runs SPARE against a store and returns the maximal convoys
// (partially connected, like the original framework).
func Mine(store storage.Store, cfg Config) ([]model.Convoy, error) {
	if cfg.Cluster.Workers() == 0 {
		cfg.Cluster = mapreduce.Local(1)
	}
	ts, te := store.TimeRange()
	if te < ts {
		return nil, nil
	}
	nTicks := int(te-ts) + 1

	// ---- Stage 1: snapshot clustering, partitioned over timestamps. ----
	type tickClusters struct {
		T        int32
		Clusters []model.ObjSet
	}
	nTasks := cfg.Cluster.Workers() * 4
	if nTasks > nTicks {
		nTasks = nTicks
	}
	var chunks [][2]int32
	chunk := (nTicks + nTasks - 1) / nTasks
	for s := ts; s <= te; s += int32(chunk) {
		e := s + int32(chunk) - 1
		if e > te {
			e = te
		}
		chunks = append(chunks, [2]int32{s, e})
	}
	clustered, err := mapreduce.Run(cfg.Cluster, chunks, func(c [2]int32) ([]tickClusters, error) {
		var out []tickClusters
		for t := c[0]; t <= c[1]; t++ {
			snap, err := store.Snapshot(t)
			if err != nil {
				return nil, fmt.Errorf("spare: snapshot %d: %w", t, err)
			}
			out = append(out, tickClusters{T: t, Clusters: dbscan.Cluster(snap, cfg.Eps, cfg.M)})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Pair co-clustering sequences (the object graph's edge labels).
	seqs := map[pair]*bitset.Bits{}
	for _, batch := range clustered {
		for _, tc := range batch {
			bit := int(tc.T - ts)
			for _, cl := range tc.Clusters {
				for i := 0; i < len(cl); i++ {
					for j := i + 1; j < len(cl); j++ {
						p := pair{a: cl[i], b: cl[j]}
						s, ok := seqs[p]
						if !ok {
							s = bitset.New(nTicks)
							seqs[p] = s
						}
						s.Set(bit)
					}
				}
			}
		}
	}

	// ---- Stage 2: star partitioning + apriori enumeration. ----
	stars := map[int32][]int32{}
	for p, s := range seqs {
		if s.MaxRun() >= cfg.K {
			stars[p.a] = append(stars[p.a], p.b)
		}
	}
	var owners []int32
	for a := range stars {
		owners = append(owners, a)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	for _, a := range owners {
		ns := stars[a]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}

	results, err := mapreduce.Run(cfg.Cluster, owners, func(a int32) ([]model.Convoy, error) {
		return enumerateStar(a, stars[a], seqs2(seqs, a), nTicks, ts, cfg), nil
	})
	if err != nil {
		return nil, err
	}
	all := model.NewConvoySet()
	for _, batch := range results {
		for _, c := range batch {
			all.Update(c)
		}
	}
	return all.Sorted(), nil
}

// pair is an unordered object pair with a < b.
type pair struct{ a, b int32 }

// seqs2 projects the pair sequences of star owner a into a small map.
func seqs2(seqs map[pair]*bitset.Bits, a int32) map[int32]*bitset.Bits {
	out := map[int32]*bitset.Bits{}
	for p, s := range seqs {
		if p.a == a {
			out[p.b] = s
		}
	}
	return out
}

// enumerateStar runs the apriori candidate enumeration within one star:
// depth-first growth of groups {a} ∪ S, S ⊆ neighbours(a), AND-ing the
// anchored sequences and pruning when the longest run drops below k. Every
// surviving group emits one convoy per ≥k run; global maximality filtering
// happens in the caller.
//
// The DFS runs on the shared set engine's reuse pattern: one bitset buffer
// per depth (siblings at a depth overwrite it, descendants use deeper
// buffers) and one shared group stack, so enumeration allocates only for
// emitted convoys — the old per-node AndNew clone made the enumerator the
// dominant allocator on dense stars.
func enumerateStar(a int32, neighbours []int32, seq map[int32]*bitset.Bits, nTicks int, ts int32, cfg Config) []model.Convoy {
	var out []model.Convoy
	group := make([]int32, 0, len(neighbours)) // shared DFS stack
	emit := func(bits *bitset.Bits) {
		if len(group)+1 < cfg.M {
			return
		}
		for _, run := range bits.Runs(cfg.K) {
			objs := model.NewObjSet(append([]int32{a}, group...)...)
			out = append(out, model.Convoy{
				Objs:  objs,
				Start: ts + int32(run[0]),
				End:   ts + int32(run[1]),
			})
		}
	}
	var bufs []*bitset.Bits // one AND buffer per DFS depth
	var dfs func(bits *bitset.Bits, from, depth int)
	dfs = func(bits *bitset.Bits, from, depth int) {
		emit(bits)
		for i := from; i < len(neighbours); i++ {
			nb := neighbours[i]
			if depth == len(bufs) {
				bufs = append(bufs, bitset.New(nTicks))
			}
			next := bufs[depth]
			// Fewer than k set bits cannot contain a k-run; the fused count
			// skips the run scan for most pruned branches.
			if next.AndOf(bits, seq[nb]) < cfg.K || next.MaxRun() < cfg.K {
				continue // apriori pruning: supersets can only shrink runs
			}
			group = append(group, nb)
			dfs(next, i+1, depth+1)
			group = group[:len(group)-1]
		}
	}
	full := bitset.New(nTicks)
	full.SetRange(0, nTicks-1)
	dfs(full, 0, 0)
	return out
}
