package spare

import (
	"errors"
	"testing"

	"repro/internal/bitset"
	"repro/internal/mapreduce"
	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

// Unit tests for the apriori star enumerator, independent of clustering.

func seqOf(n int, runs ...[2]int) *bitset.Bits {
	b := bitset.New(n)
	for _, r := range runs {
		b.SetRange(r[0], r[1])
	}
	return b
}

func TestEnumerateStarSimple(t *testing.T) {
	// Star of object 1 with neighbours 2 and 3; pairs (1,2) and (1,3)
	// co-clustered throughout [0,9].
	seq := map[int32]*bitset.Bits{
		2: seqOf(10, [2]int{0, 9}),
		3: seqOf(10, [2]int{0, 9}),
	}
	out := enumerateStar(1, []int32{2, 3}, seq, 10, 0, Config{M: 3, K: 5})
	want := model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9)
	found := false
	for _, c := range out {
		if c.Equal(want) {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing %v in %v", want, out)
	}
}

func TestEnumerateStarPrunesShortRuns(t *testing.T) {
	// (1,2) has a long run; (1,3) only short bursts: the triple's AND has
	// no ≥k run and must be pruned, the pair survives.
	seq := map[int32]*bitset.Bits{
		2: seqOf(12, [2]int{0, 11}),
		3: seqOf(12, [2]int{0, 1}, [2]int{5, 6}, [2]int{10, 11}),
	}
	out := enumerateStar(1, []int32{2, 3}, seq, 12, 0, Config{M: 2, K: 4})
	for _, c := range out {
		if c.Objs.Contains(3) {
			t.Fatalf("pruned group emitted: %v", c)
		}
	}
	want := model.NewConvoy(model.NewObjSet(1, 2), 0, 11)
	ok := false
	for _, c := range out {
		if c.Equal(want) {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("pair missing in %v", out)
	}
}

func TestEnumerateStarMultipleRuns(t *testing.T) {
	seq := map[int32]*bitset.Bits{
		2: seqOf(20, [2]int{0, 5}, [2]int{10, 17}),
	}
	out := enumerateStar(1, []int32{2}, seq, 20, 100, Config{M: 2, K: 4})
	if len(out) != 2 {
		t.Fatalf("want 2 run-convoys, got %v", out)
	}
	// Offsets apply: ts base is 100.
	if out[0].Start != 100 || out[0].End != 105 || out[1].Start != 110 || out[1].End != 117 {
		t.Fatalf("run offsets wrong: %v", out)
	}
}

func TestEnumerateStarRespectsM(t *testing.T) {
	seq := map[int32]*bitset.Bits{2: seqOf(10, [2]int{0, 9})}
	out := enumerateStar(1, []int32{2}, seq, 10, 0, Config{M: 3, K: 4})
	if len(out) != 0 {
		t.Fatalf("pairs must not satisfy m=3: %v", out)
	}
}

func TestSparePropagatesFaults(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2, 3}}},
	})
	fs := storetest.NewFaultStore(storage.NewMemStore(ds), 3)
	_, err := Mine(fs, Config{M: 3, K: 4, Eps: minetest.Eps, Cluster: mapreduce.Local(2)})
	if !errors.Is(err, storetest.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
}
