// Package movingcluster implements the moving-cluster pattern of Kalnis,
// Mamoulis & Bakiras (SSTD'05), the second pattern the paper's §7 proposes
// extending k/2-hop to.
//
// A moving cluster is a sequence of snapshot clusters c_t, c_{t+1}, … whose
// consecutive Jaccard overlap |c_t ∩ c_{t+1}| / |c_t ∪ c_{t+1}| is at least
// θ. Unlike convoys and flocks, the member set may churn completely over
// the cluster's lifetime (θ < 1 lets the overlap decay to θ^h over h
// steps), so the benchmark-point pruning argument — "the same objects must
// be grouped at two consecutive benchmark points" — does not hold and a
// k/2-hop-style miner would be unsound. This package therefore provides the
// classical MC2 sweep miner only, and documents the boundary of the
// k/2-hop technique: it transfers to patterns whose member set is fixed
// over the lifetime (convoys, flocks, platoons), not to identity-churning
// patterns.
package movingcluster

import (
	"fmt"

	"repro/internal/dbscan"
	"repro/internal/model"
	"repro/internal/storage"
)

// Config carries the moving-cluster parameters.
type Config struct {
	// M and Eps parameterise the per-snapshot DBSCAN.
	M   int
	Eps float64
	// Theta is the minimum Jaccard overlap between consecutive clusters.
	Theta float64
	// K is the minimum lifetime in timestamps.
	K int
}

// MovingCluster is a mined pattern: the per-tick cluster sequence starting
// at Start.
type MovingCluster struct {
	Start    int32
	Clusters []model.ObjSet
}

// End returns the last timestamp of the pattern.
func (mc MovingCluster) End() int32 { return mc.Start + int32(len(mc.Clusters)) - 1 }

// Len returns the lifetime in timestamps.
func (mc MovingCluster) Len() int { return len(mc.Clusters) }

// Jaccard returns |a ∩ b| / |a ∪ b| (zero when both sets are empty).
func Jaccard(a, b model.ObjSet) float64 {
	inter := a.IntersectSize(b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Mine runs the MC2-style sweep: cluster every snapshot, chain clusters
// whose consecutive overlap is ≥ θ, and emit maximal chains of length ≥ K.
// A cluster extends at most one chain and each chain extends to at most one
// cluster per tick (the best-overlap match, as in MC2) — ties break towards
// the larger overlap, then the smaller cluster order.
func Mine(store storage.Store, cfg Config) ([]MovingCluster, error) {
	ts, te := store.TimeRange()
	if te < ts {
		return nil, nil
	}
	type chain struct {
		start    int32
		clusters []model.ObjSet
	}
	var (
		active []*chain
		out    []MovingCluster
	)
	emit := func(c *chain) {
		if len(c.clusters) >= cfg.K {
			out = append(out, MovingCluster{Start: c.start, Clusters: c.clusters})
		}
	}
	for t := ts; t <= te; t++ {
		snap, err := store.Snapshot(t)
		if err != nil {
			return nil, fmt.Errorf("movingcluster: snapshot %d: %w", t, err)
		}
		clusters := dbscan.Cluster(snap, cfg.Eps, cfg.M)
		// Greedy best-overlap matching between active chains and clusters.
		type match struct {
			chain   int
			cluster int
			overlap float64
		}
		var matches []match
		for ci, ch := range active {
			last := ch.clusters[len(ch.clusters)-1]
			for cj, cl := range clusters {
				if ov := Jaccard(last, cl); ov >= cfg.Theta {
					matches = append(matches, match{chain: ci, cluster: cj, overlap: ov})
				}
			}
		}
		// Sort by overlap descending (stable on insertion order).
		for i := 1; i < len(matches); i++ {
			for j := i; j > 0 && matches[j].overlap > matches[j-1].overlap; j-- {
				matches[j], matches[j-1] = matches[j-1], matches[j]
			}
		}
		chainTaken := make([]bool, len(active))
		clusterTaken := make([]bool, len(clusters))
		var next []*chain
		for _, m := range matches {
			if chainTaken[m.chain] || clusterTaken[m.cluster] {
				continue
			}
			chainTaken[m.chain] = true
			clusterTaken[m.cluster] = true
			ch := active[m.chain]
			ch.clusters = append(ch.clusters, clusters[m.cluster])
			next = append(next, ch)
		}
		// Unmatched chains terminate; unmatched clusters start fresh chains.
		for ci, ch := range active {
			if !chainTaken[ci] {
				emit(ch)
			}
		}
		for cj, cl := range clusters {
			if !clusterTaken[cj] {
				next = append(next, &chain{start: t, clusters: []model.ObjSet{cl}})
			}
		}
		active = next
	}
	for _, ch := range active {
		emit(ch)
	}
	return out, nil
}
