// Package movingcluster implements the moving-cluster pattern of Kalnis,
// Mamoulis & Bakiras (SSTD'05), the second pattern the paper's §7 proposes
// extending k/2-hop to.
//
// A moving cluster is a sequence of snapshot clusters c_t, c_{t+1}, … whose
// consecutive Jaccard overlap |c_t ∩ c_{t+1}| / |c_t ∪ c_{t+1}| is at least
// θ. Unlike convoys and flocks, the member set may churn completely over
// the cluster's lifetime (θ < 1 lets the overlap decay to θ^h over h
// steps), so the benchmark-point pruning argument — "the same objects must
// be grouped at two consecutive benchmark points" — does not hold and a
// k/2-hop-style miner would be unsound. This package therefore provides the
// classical MC2 sweep miner only, and documents the boundary of the
// k/2-hop technique: it transfers to patterns whose member set is fixed
// over the lifetime (convoys, flocks, platoons), not to identity-churning
// patterns.
package movingcluster

import (
	"fmt"
	"strings"

	"repro/internal/dbscan"
	"repro/internal/model"
	"repro/internal/storage"
)

// Config carries the moving-cluster parameters.
type Config struct {
	// M and Eps parameterise the per-snapshot DBSCAN.
	M   int
	Eps float64
	// Theta is the minimum Jaccard overlap between consecutive clusters.
	Theta float64
	// K is the minimum lifetime in timestamps.
	K int
}

// MovingCluster is a mined pattern: the per-tick cluster sequence starting
// at Start.
type MovingCluster struct {
	Start    int32
	Clusters []model.ObjSet
}

// End returns the last timestamp of the pattern.
func (mc MovingCluster) End() int32 { return mc.Start + int32(len(mc.Clusters)) - 1 }

// Len returns the lifetime in timestamps.
func (mc MovingCluster) Len() int { return len(mc.Clusters) }

// Members returns the union of every cluster's members — the pattern's
// lifetime footprint. Unlike a convoy's object set it does not imply
// co-presence at any single tick.
func (mc MovingCluster) Members() model.ObjSet {
	var ids []int32
	for _, cl := range mc.Clusters {
		ids = append(ids, cl...)
	}
	return model.NewObjSet(ids...)
}

// Key returns a canonical identity string: the lifespan plus every per-tick
// cluster. Two moving clusters with equal keys are equal patterns, including
// their full cluster sequences (the footprint alone would collide for
// distinct chains over the same members).
func (mc MovingCluster) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:%d", mc.Start, mc.End())
	for _, cl := range mc.Clusters {
		sb.WriteByte('|')
		sb.WriteString(cl.Key())
	}
	return sb.String()
}

// Jaccard returns |a ∩ b| / |a ∪ b| (zero when both sets are empty).
func Jaccard(a, b model.ObjSet) float64 {
	inter := a.IntersectSize(b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Mine runs the MC2-style sweep: cluster every snapshot, chain clusters
// whose consecutive overlap is ≥ θ, and emit maximal chains of length ≥ K.
// A cluster extends at most one chain and each chain extends to at most one
// cluster per tick (the best-overlap match, as in MC2) — ties break towards
// the larger overlap, then the smaller cluster order.
//
// Mine is a thin loop over the streaming Miner, so the batch sweep and the
// convoyd feed mode share one chaining code path and are byte-identical by
// construction.
func Mine(store storage.Store, cfg Config) ([]MovingCluster, error) {
	ts, te := store.TimeRange()
	if te < ts {
		return nil, nil
	}
	mn := NewMiner(cfg)
	for t := ts; t <= te; t++ {
		snap, err := store.Snapshot(t)
		if err != nil {
			return nil, fmt.Errorf("movingcluster: snapshot %d: %w", t, err)
		}
		mn.Step(t, snap)
	}
	return mn.Finish(), nil
}

// chain is one still-open moving cluster candidate.
type chain struct {
	start    int32
	clusters []model.ObjSet
}

// Miner is the incremental moving-cluster miner fed one snapshot at a time,
// mirroring cmc.Miner's streaming surface (Step/Drain/Finish/Last/Reset).
// It carries the open chains across ticks; each Step clusters the snapshot
// and runs the same greedy best-overlap matching as Mine. Patterns are
// emitted the moment their chain fails to extend, so streaming consumers
// can poll with Drain in O(new).
//
// Gaps in the timestamp sequence terminate every open chain: a chain cannot
// overlap a tick that has no clusters, which is exactly what the batch sweep
// does when the missing ticks hold no points. A Miner is not safe for
// concurrent use (convoyd's shard actors give each feed a single owner).
type Miner struct {
	cfg     Config
	active  []*chain
	out     []MovingCluster // every emitted pattern, in emission order
	fresh   int             // out[fresh:] not yet drained
	lastT   int32
	started bool
}

// NewMiner creates a streaming miner for the given parameters.
func NewMiner(cfg Config) *Miner {
	return &Miner{cfg: cfg}
}

// Step clusters the snapshot of timestamp t and chains the clusters.
// Timestamps must be fed in strictly increasing order; feeding a timestamp
// ≤ the previous one panics (callers accepting untrusted input validate
// first, as with cmc.Miner).
func (mn *Miner) Step(t int32, snap []model.ObjPos) {
	mn.StepClusters(t, dbscan.Cluster(snap, mn.cfg.Eps, mn.cfg.M))
}

// StepClusters is Step for callers that already hold the tick's cluster set
// (the fuzz harness exercises the chaining in isolation through it).
func (mn *Miner) StepClusters(t int32, clusters []model.ObjSet) {
	if mn.started && t <= mn.lastT {
		panic(fmt.Sprintf("movingcluster: non-monotonic Step: t=%d after t=%d", t, mn.lastT))
	}
	if mn.started && t != mn.lastT+1 {
		// Discontinuity: no cluster exists at the missing ticks, so no chain
		// can span them — identical to the batch sweep seeing empty
		// snapshots there.
		mn.closeAll()
	}
	mn.started = true
	mn.lastT = t
	// Greedy best-overlap matching between active chains and clusters.
	type match struct {
		chain   int
		cluster int
		overlap float64
	}
	var matches []match
	for ci, ch := range mn.active {
		last := ch.clusters[len(ch.clusters)-1]
		for cj, cl := range clusters {
			if ov := Jaccard(last, cl); ov >= mn.cfg.Theta {
				matches = append(matches, match{chain: ci, cluster: cj, overlap: ov})
			}
		}
	}
	// Sort by overlap descending (stable on insertion order).
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0 && matches[j].overlap > matches[j-1].overlap; j-- {
			matches[j], matches[j-1] = matches[j-1], matches[j]
		}
	}
	chainTaken := make([]bool, len(mn.active))
	clusterTaken := make([]bool, len(clusters))
	var next []*chain
	for _, m := range matches {
		if chainTaken[m.chain] || clusterTaken[m.cluster] {
			continue
		}
		chainTaken[m.chain] = true
		clusterTaken[m.cluster] = true
		ch := mn.active[m.chain]
		ch.clusters = append(ch.clusters, clusters[m.cluster])
		next = append(next, ch)
	}
	// Unmatched chains terminate; unmatched clusters start fresh chains.
	for ci, ch := range mn.active {
		if !chainTaken[ci] {
			mn.emit(ch)
		}
	}
	for cj, cl := range clusters {
		if !clusterTaken[cj] {
			next = append(next, &chain{start: t, clusters: []model.ObjSet{cl}})
		}
	}
	mn.active = next
}

func (mn *Miner) emit(c *chain) {
	if len(c.clusters) >= mn.cfg.K {
		mn.out = append(mn.out, MovingCluster{Start: c.start, Clusters: c.clusters})
	}
}

// closeAll terminates every open chain, emitting the long-enough ones.
func (mn *Miner) closeAll() {
	for _, ch := range mn.active {
		mn.emit(ch)
	}
	mn.active = nil
}

// Drain returns the patterns emitted since the last Drain, in emission
// order. Unlike cmc.Miner's result set, a moving cluster is emitted exactly
// once and never superseded, so Drain needs no external dedup.
func (mn *Miner) Drain() []MovingCluster {
	out := mn.out[mn.fresh:len(mn.out):len(mn.out)]
	mn.fresh = len(mn.out)
	return out
}

// Finish ends the stream: every open chain of sufficient length is emitted,
// and the full result set is returned in emission order — exactly what Mine
// returns over the same tick sequence.
func (mn *Miner) Finish() []MovingCluster {
	mn.closeAll()
	mn.fresh = len(mn.out)
	return mn.out
}

// Last returns the most recently stepped timestamp; ok is false before the
// first Step (and after a Reset).
func (mn *Miner) Last() (t int32, ok bool) { return mn.lastT, mn.started }

// Reset returns the miner to its initial state, keeping the parameters.
func (mn *Miner) Reset() {
	mn.active = nil
	mn.out = nil
	mn.fresh = 0
	mn.lastT = 0
	mn.started = false
}
