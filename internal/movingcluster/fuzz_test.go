package movingcluster

import (
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/model"
)

// fuzzTick is one decoded fuzz step: a timestamp and its cluster set.
type fuzzTick struct {
	t        int32
	clusters []model.ObjSet
}

// decodeFuzzTicks turns a fuzz byte stream into a strictly increasing tick
// sequence with occasional gaps. Per tick, one header byte: bits 0–1 are the
// cluster count (0–3), bit 2 inserts a 2-tick gap before the tick. Each
// cluster is one bitmask byte over an 8-object universe (a zero mask becomes
// {0}, keeping clusters nonempty as DBSCAN guarantees) — a tiny universe so
// consecutive ticks overlap often and the Jaccard chaining actually fires.
func decodeFuzzTicks(data []byte) []fuzzTick {
	var out []fuzzTick
	t := int32(0)
	for i := 0; i < len(data) && len(out) < 64; {
		h := data[i]
		i++
		if h&4 != 0 {
			t += 2
		}
		n := int(h & 3)
		var clusters []model.ObjSet
		for c := 0; c < n && i < len(data); c++ {
			mask := data[i]
			i++
			if mask == 0 {
				mask = 1
			}
			var ids []int32
			for b := int32(0); b < 8; b++ {
				if mask&(1<<b) != 0 {
					ids = append(ids, b)
				}
			}
			clusters = append(clusters, model.NewObjSet(ids...))
		}
		out = append(out, fuzzTick{t: t, clusters: clusters})
		t++
	}
	return out
}

// referenceChain is an independent O(chains × clusters) transliteration of
// the MC2 chaining spec: per tick, candidate (chain, cluster) pairs with
// Jaccard ≥ θ are matched greedily in overlap-descending order (stable on
// enumeration order for ties), each chain extends to at most one cluster
// and vice versa, unmatched chains of length ≥ K emit in active order, and
// a timestamp discontinuity closes everything. It shares no code with
// Miner.StepClusters beyond the Jaccard helper.
func referenceChain(ticks []fuzzTick, theta float64, k int) []MovingCluster {
	type refChain struct {
		start int32
		cls   []model.ObjSet
	}
	var active []refChain
	var out []MovingCluster
	emit := func(c refChain) {
		if len(c.cls) >= k {
			out = append(out, MovingCluster{Start: c.start, Clusters: c.cls})
		}
	}
	last, started := int32(0), false
	for _, tk := range ticks {
		if started && tk.t != last+1 {
			for _, c := range active {
				emit(c)
			}
			active = nil
		}
		started, last = true, tk.t
		type cand struct {
			ci, cj int
			ov     float64
		}
		var cands []cand
		for ci, ch := range active {
			tail := ch.cls[len(ch.cls)-1]
			for cj, cl := range tk.clusters {
				if ov := Jaccard(tail, cl); ov >= theta {
					cands = append(cands, cand{ci: ci, cj: cj, ov: ov})
				}
			}
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].ov > cands[j].ov })
		usedChain := make([]bool, len(active))
		usedCluster := make([]bool, len(tk.clusters))
		var next []refChain
		for _, c := range cands {
			if usedChain[c.ci] || usedCluster[c.cj] {
				continue
			}
			usedChain[c.ci] = true
			usedCluster[c.cj] = true
			ch := active[c.ci]
			ch.cls = append(ch.cls[:len(ch.cls):len(ch.cls)], tk.clusters[c.cj])
			next = append(next, ch)
		}
		for ci, ch := range active {
			if !usedChain[ci] {
				emit(ch)
			}
		}
		for cj, cl := range tk.clusters {
			if !usedCluster[cj] {
				next = append(next, refChain{start: tk.t, cls: []model.ObjSet{cl}})
			}
		}
		active = next
	}
	for _, c := range active {
		emit(c)
	}
	return out
}

func keysOf(mcs []MovingCluster) string {
	var sb strings.Builder
	for _, mc := range mcs {
		sb.WriteString(mc.Key())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FuzzMovingClusterChain drives Miner.StepClusters over arbitrary tick
// sequences and checks it against the independent reference plus the
// chaining invariants: every emitted pattern is ≥ K ticks long, all its
// consecutive overlaps reach θ, its lifespan matches its cluster count, and
// incremental Drain accumulation equals the final Finish set.
func FuzzMovingClusterChain(f *testing.F) {
	f.Add([]byte{0x02, 0x07, 0x0e, 0x02, 0x07, 0x1c, 0x02, 0x0e, 0x38}, uint8(5), uint8(2))
	f.Add([]byte{0x01, 0xff, 0x01, 0xff, 0x01, 0xff, 0x05, 0xff, 0x01, 0xff}, uint8(9), uint8(3))
	f.Add([]byte{0x03, 0x03, 0x0c, 0x30, 0x03, 0x03, 0x0c, 0x30, 0x03, 0x06, 0x18, 0x60}, uint8(3), uint8(1))
	f.Add([]byte{0x00, 0x01, 0x81, 0x02, 0xc3, 0x3c, 0x06, 0x66, 0x01, 0x0f}, uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, thetaN, kByte uint8) {
		theta := float64(thetaN%10+1) / 10 // (0, 1]
		k := int(kByte%4) + 1
		ticks := decodeFuzzTicks(data)

		mn := NewMiner(Config{Theta: theta, K: k})
		var drained []MovingCluster
		for _, tk := range ticks {
			mn.StepClusters(tk.t, tk.clusters)
			drained = append(drained, mn.Drain()...)
		}
		fin := mn.Finish()

		// Drain never retracts or reorders: the incremental drains are a
		// prefix of the final set.
		if len(fin) < len(drained) {
			t.Fatalf("Finish returned %d patterns, fewer than the %d drained", len(fin), len(drained))
		}
		if got, want := keysOf(fin[:len(drained)]), keysOf(drained); got != want {
			t.Fatalf("drained patterns are not a prefix of Finish:\ndrained:\n%s\nfinish prefix:\n%s", want, got)
		}

		// Byte-identity with the independent reference chaining.
		want := referenceChain(ticks, theta, k)
		if got, wantS := keysOf(fin), keysOf(want); got != wantS {
			t.Fatalf("theta=%g k=%d: miner and reference diverge:\nminer:\n%s\nreference:\n%s", theta, k, got, wantS)
		}

		// Structural invariants of every emitted pattern.
		for _, mc := range fin {
			if mc.Len() < k {
				t.Fatalf("pattern %s shorter than K=%d", mc.Key(), k)
			}
			if mc.End()-mc.Start+1 != int32(mc.Len()) {
				t.Fatalf("pattern %s: lifespan and cluster count disagree", mc.Key())
			}
			for i := 1; i < len(mc.Clusters); i++ {
				if ov := Jaccard(mc.Clusters[i-1], mc.Clusters[i]); ov < theta && math.Abs(ov-theta) > 1e-12 {
					t.Fatalf("pattern %s: consecutive overlap %g below theta %g at step %d", mc.Key(), ov, theta, i)
				}
			}
			for _, cl := range mc.Clusters {
				if len(cl) == 0 {
					t.Fatalf("pattern %s contains an empty cluster", mc.Key())
				}
			}
		}
	})
}
