package movingcluster

import (
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

func TestJaccard(t *testing.T) {
	a := model.NewObjSet(1, 2, 3)
	b := model.NewObjSet(2, 3, 4)
	if got := Jaccard(a, b); got != 0.5 {
		t.Fatalf("Jaccard = %f, want 0.5", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Fatalf("self Jaccard = %f", got)
	}
	if got := Jaccard(nil, nil); got != 0 {
		t.Fatalf("empty Jaccard = %f", got)
	}
	if got := Jaccard(a, model.NewObjSet(9)); got != 0 {
		t.Fatalf("disjoint Jaccard = %f", got)
	}
}

func TestStableClusterIsMovingCluster(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2, 3}}},
	})
	out, err := Mine(storage.NewMemStore(ds), Config{M: 3, Eps: minetest.Eps, Theta: 0.5, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("want 1 moving cluster, got %v", out)
	}
	mc := out[0]
	if mc.Start != 0 || mc.End() != 9 || mc.Len() != 10 {
		t.Fatalf("span wrong: %+v", mc)
	}
	for _, c := range mc.Clusters {
		if !c.Equal(model.NewObjSet(1, 2, 3)) {
			t.Fatalf("cluster drifted: %v", c)
		}
	}
}

func TestMembershipChurnAllowed(t *testing.T) {
	// The cluster gradually swaps members: {1,2,3} → {2,3,4} → {3,4,5}.
	// Jaccard between consecutive stages is 2/4 = 0.5; a convoy miner would
	// find nothing of length 9 here, a moving-cluster miner must.
	groups := map[int32][][]int32{}
	stages := [][]int32{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}}
	for t := int32(0); t < 9; t++ {
		groups[t] = [][]int32{stages[t/3]}
	}
	ds := minetest.Build(groups)
	out, err := Mine(storage.NewMemStore(ds), Config{M: 3, Eps: minetest.Eps, Theta: 0.5, K: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Len() != 9 {
		t.Fatalf("churning cluster should survive: %v", out)
	}
}

func TestThetaBreaksChains(t *testing.T) {
	// Abrupt full swap {1,2,3} → {4,5,6}: overlap 0 < θ, chain breaks.
	groups := map[int32][][]int32{}
	for t := int32(0); t < 10; t++ {
		if t < 5 {
			groups[t] = [][]int32{{1, 2, 3}}
		} else {
			groups[t] = [][]int32{{4, 5, 6}}
		}
	}
	ds := minetest.Build(groups)
	out, err := Mine(storage.NewMemStore(ds), Config{M: 3, Eps: minetest.Eps, Theta: 0.5, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("want 2 chains, got %v", out)
	}
	for _, mc := range out {
		if mc.Len() != 5 {
			t.Fatalf("chain length = %d, want 5", mc.Len())
		}
	}
}

func TestShortChainsDropped(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 2, Groups: [][]int32{{1, 2, 3}}},
	})
	out, err := Mine(storage.NewMemStore(ds), Config{M: 3, Eps: minetest.Eps, Theta: 0.5, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("short chain should be dropped: %v", out)
	}
}

func TestParallelChains(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 7, Groups: [][]int32{{1, 2, 3}, {10, 11, 12}}},
	})
	out, err := Mine(storage.NewMemStore(ds), Config{M: 3, Eps: minetest.Eps, Theta: 0.5, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("want 2 parallel chains, got %v", out)
	}
}

func TestEmptyDataset(t *testing.T) {
	out, err := Mine(storage.NewMemStore(model.NewDataset(nil)), Config{M: 2, Eps: 1, Theta: 0.5, K: 2})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty: %v %v", out, err)
	}
}

func TestBestOverlapWins(t *testing.T) {
	// At the branch point, the chain must follow the cluster with the
	// larger overlap: {1,2,3,4} splits into {1,2,3} and {4}∪{5,6} — the
	// trio continues the chain.
	groups := map[int32][][]int32{
		0: {{1, 2, 3, 4}},
		1: {{1, 2, 3, 4}},
		2: {{1, 2, 3}, {4, 5, 6}},
		3: {{1, 2, 3}, {4, 5, 6}},
	}
	ds := minetest.Build(groups)
	out, err := Mine(storage.NewMemStore(ds), Config{M: 3, Eps: minetest.Eps, Theta: 0.4, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("want 1 chain of length 4, got %v", out)
	}
	last := out[0].Clusters[3]
	if !last.Equal(model.NewObjSet(1, 2, 3)) {
		t.Fatalf("chain followed the wrong branch: %v", last)
	}
}
