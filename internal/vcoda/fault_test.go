package vcoda

import (
	"errors"
	"testing"

	"repro/internal/cmc"
	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

func faultScenario() storage.Store {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 14, Groups: [][]int32{{1, 2, 3}}},
	})
	return storage.NewMemStore(ds)
}

func TestMineStarPropagatesFaults(t *testing.T) {
	for _, budget := range []int64{0, 3, 10} {
		fs := storetest.NewFaultStore(faultScenario(), budget)
		if _, _, err := MineStar(fs, 3, 5, minetest.Eps); !errors.Is(err, storetest.ErrInjected) {
			t.Fatalf("budget %d: err = %v", budget, err)
		}
	}
}

func TestMinePropagatesFaults(t *testing.T) {
	// Plain VCoDA fetches during validation too; fail there specifically.
	clean := storetest.NewFaultStore(faultScenario(), 1<<40)
	if _, _, err := Mine(clean, 3, 5, minetest.Eps); err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, clean.Ops() / 2, clean.Ops() - 1} {
		fs := storetest.NewFaultStore(faultScenario(), budget)
		if _, _, err := Mine(fs, 3, 5, minetest.Eps); !errors.Is(err, storetest.ErrInjected) {
			t.Fatalf("budget %d: err = %v", budget, err)
		}
	}
}

func TestCMCPropagatesFaults(t *testing.T) {
	fs := storetest.NewFaultStore(faultScenario(), 5)
	if _, err := cmc.Mine(fs, 3, 5, minetest.Eps); !errors.Is(err, storetest.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
}

func TestRestrictFromStorePropagatesFaults(t *testing.T) {
	fs := storetest.NewFaultStore(faultScenario(), 2)
	_, err := RestrictFromStore(fs, model.NewObjSet(1, 2, 3), model.Interval{Start: 0, End: 14})
	if !errors.Is(err, storetest.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
}
