package vcoda

import (
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

// Figure-2-style scenario: x,y,z travel together but at one timestamp they
// are only connected through a bridge object n that is not part of the
// group. The partially connected convoy spans the bridge tick; the FC
// convoy does not.
func bridgeScenario() *model.Dataset {
	groups := map[int32][][]int32{}
	for t := int32(0); t <= 9; t++ {
		if t == 5 {
			// x=1,y=2,z=3 with bridge n=9 inserted between y and z: the
			// chain is 1-2-9-3; removing 9 splits {1,2} from {3}.
			groups[t] = [][]int32{{1, 2, 9, 3}}
		} else {
			groups[t] = [][]int32{{1, 2, 3}, {9}}
		}
	}
	return minetest.Build(groups)
}

func TestBridgeObjectBreaksFC(t *testing.T) {
	ds := bridgeScenario()
	ms := storage.NewMemStore(ds)
	m, k := 3, 3

	fc, rep, err := MineStar(ms, m, k, minetest.Eps)
	if err != nil {
		t.Fatalf("MineStar: %v", err)
	}
	// The partially connected convoy ({1,2,3},[0,9]) exists, but FC convoys
	// must break at t=5 where connectivity needed object 9.
	want := []model.Convoy{
		model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 4),
		model.NewConvoy(model.NewObjSet(1, 2, 3), 6, 9),
	}
	if !model.ConvoysEqual(fc, want) {
		t.Fatalf("FC convoys = %v, want %v", fc, want)
	}
	if rep.PreValidation == 0 || rep.Convoys != 2 {
		t.Fatalf("report wrong: %+v", rep)
	}
	for _, c := range fc {
		if !minetest.IsFCConvoy(ds, c, m, minetest.Eps) {
			t.Fatalf("output %v is not FC", c)
		}
	}
}

func TestVCoDAMatchesStar(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ds := minetest.Random(seed, 10, 15)
		ms := storage.NewMemStore(ds)
		star, _, err := MineStar(ms, 3, 4, minetest.Eps)
		if err != nil {
			t.Fatal(err)
		}
		plain, _, err := Mine(ms, 3, 4, minetest.Eps)
		if err != nil {
			t.Fatal(err)
		}
		if !model.ConvoysEqual(star, plain) {
			t.Fatalf("seed %d: VCoDA %v != VCoDA* %v", seed, plain, star)
		}
	}
}

func TestOutputsAreMaximalFC(t *testing.T) {
	for seed := int64(20); seed < 40; seed++ {
		ds := minetest.Random(seed, 12, 18)
		out := Reference(ds, 3, 4, minetest.Eps)
		for _, c := range out {
			if !minetest.IsFCConvoy(ds, c, 3, minetest.Eps) {
				t.Fatalf("seed %d: %v not FC", seed, c)
			}
			if c.Len() < 4 || c.Size() < 3 {
				t.Fatalf("seed %d: %v violates m/k", seed, c)
			}
		}
		if i, j := minetest.AssertMaximal(out); i >= 0 {
			t.Fatalf("seed %d: %v ⊑ %v", seed, out[i], out[j])
		}
	}
}

// Completeness: every FC pair-convoy must be covered by some output.
func TestReferenceCompleteness(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		ds := minetest.Random(seed, 8, 10)
		m, k := 2, 3
		out := Reference(ds, m, k, minetest.Eps)
		cover := model.NewConvoySet(out...)
		objs := ds.Objects()
		ts, te := ds.TimeRange()
		for s := ts; s <= te; s++ {
			for e := s + int32(k) - 1; e <= te; e++ {
				for i := 0; i < len(objs); i++ {
					for j := i + 1; j < len(objs); j++ {
						pair := model.NewConvoy(model.NewObjSet(objs[i], objs[j]), s, e)
						if minetest.IsFCConvoy(ds, pair, m, minetest.Eps) && !cover.Covers(pair) {
							t.Fatalf("seed %d: FC pair %v not covered by %v", seed, pair, out)
						}
					}
				}
			}
		}
	}
}

func TestValidateConfirmsTrueFC(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2, 3}}},
	})
	v := model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9)
	out := Validate(ds, []model.Convoy{v}, 3, 3, minetest.Eps)
	if len(out) != 1 || !out[0].Equal(v) {
		t.Fatalf("Validate = %v", out)
	}
}

func TestValidateDropsTooSmall(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2}}},
	})
	out := Validate(ds, []model.Convoy{
		model.NewConvoy(model.NewObjSet(1, 2), 0, 9),
	}, 3, 3, minetest.Eps)
	if len(out) != 0 {
		t.Fatalf("undersized candidate should vanish, got %v", out)
	}
}

func TestRestrictFromStore(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 5, Groups: [][]int32{{1, 2, 3}}},
	})
	ms := storage.NewMemStore(ds)
	sub, err := RestrictFromStore(ms, model.NewObjSet(1, 3), model.Interval{Start: 1, End: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumPoints() != 6 {
		t.Fatalf("restricted points = %d, want 6", sub.NumPoints())
	}
	if !sub.Objects().Equal(model.NewObjSet(1, 3)) {
		t.Fatalf("restricted objects = %v", sub.Objects())
	}
}

// Paper Figure 2: ({a,b,c},[1,4]) is a convoy but not FC because at
// timestamp 4 the objects need outside help; ({a,b,c},[1,3]) is FC.
func TestPaperFigure2ABC(t *testing.T) {
	a, b, c, helper := int32(1), int32(2), int32(3), int32(9)
	groups := map[int32][][]int32{
		1: {{a, b, c}},
		2: {{a, b, c}},
		3: {{a, b, c}},
		4: {{a, helper, b, c}}, // helper bridges a to b,c... order: a-9-b-c chain
	}
	// At t=4 chain a-9-b-c: a↔b only via 9. So abc is a convoy (all in one
	// cluster) but not FC at 4.
	ds := minetest.Build(groups)
	out := Reference(ds, 3, 3, minetest.Eps)
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(a, b, c), 1, 3)}
	if !model.ConvoysEqual(out, want) {
		t.Fatalf("got %v, want %v", out, want)
	}
}
