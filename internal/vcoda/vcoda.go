// Package vcoda implements the fully-connected-convoy baselines of Yoon &
// Shahabi (ICDMW'09) as the paper uses them: PCCD mining of maximal
// partially connected convoys followed by a validation phase that reduces
// them to maximal fully connected (FC) convoys.
//
// Validation follows the paper's §4.6 observation: (O, T) is an FC convoy
// exactly when (O, T) is a convoy of the dataset restricted to objects O
// and timespan T. Each candidate is therefore re-mined on its restriction;
// a candidate that survives intact is FC, anything smaller is re-validated
// recursively. Coverage of all maximal FC convoys follows from DBSCAN
// monotonicity: adding objects never splits a cluster, so an FC convoy
// remains a convoy in every restriction of a superset of its objects.
//
// Two variants mirror the paper's measurements:
//
//   - VCoDA  — validation re-reads each candidate's restriction from the
//     store (point queries), paying I/O per validation round;
//   - VCoDA* — validation runs on the in-memory copy of the data collected
//     during the mining sweep (the paper's faster variant).
package vcoda

import (
	"fmt"
	"time"

	"repro/internal/cmc"
	"repro/internal/dbscan"
	"repro/internal/model"
	"repro/internal/storage"
)

// Report carries phase timings and counters for the experiment harness.
type Report struct {
	PreValidation int           // convoys entering validation (paper Fig 8j)
	MineTime      time.Duration // PCCD sweep
	ValidateTime  time.Duration
	Convoys       int
}

// MineStar runs VCoDA*: PCCD with snapshots kept in memory, then in-memory
// validation.
func MineStar(store storage.Store, m, k int, eps float64) ([]model.Convoy, Report, error) {
	var rep Report
	ts, te := store.TimeRange()
	mn := cmc.NewMiner(m, k)
	start := time.Now()
	var pts []model.Point
	for t := ts; t <= te; t++ {
		snap, err := store.Snapshot(t)
		if err != nil {
			return nil, rep, fmt.Errorf("vcoda: snapshot %d: %w", t, err)
		}
		for _, p := range snap {
			pts = append(pts, model.Point{OID: p.OID, T: t, X: p.X, Y: p.Y})
		}
		mn.Step(t, dbscan.Cluster(snap, eps, m))
	}
	cands := mn.Finish()
	rep.MineTime = time.Since(start)
	rep.PreValidation = len(cands)

	start = time.Now()
	ds := model.NewDataset(pts)
	out := Validate(ds, cands, m, k, eps)
	rep.ValidateTime = time.Since(start)
	rep.Convoys = len(out)
	return out, rep, nil
}

// Mine runs plain VCoDA: the PCCD sweep does not retain the data, so every
// validation round fetches each candidate's restriction from the store.
func Mine(store storage.Store, m, k int, eps float64) ([]model.Convoy, Report, error) {
	var rep Report
	ts, te := store.TimeRange()
	mn := cmc.NewMiner(m, k)
	start := time.Now()
	for t := ts; t <= te; t++ {
		snap, err := store.Snapshot(t)
		if err != nil {
			return nil, rep, fmt.Errorf("vcoda: snapshot %d: %w", t, err)
		}
		mn.Step(t, dbscan.Cluster(snap, eps, m))
	}
	cands := mn.Finish()
	rep.MineTime = time.Since(start)
	rep.PreValidation = len(cands)

	start = time.Now()
	out := model.NewConvoySet()
	for _, v := range cands {
		sub, err := RestrictFromStore(store, v.Objs, v.Interval())
		if err != nil {
			return nil, rep, err
		}
		for _, fc := range Validate(sub, []model.Convoy{v}, m, k, eps) {
			out.Update(fc)
		}
	}
	rep.ValidateTime = time.Since(start)
	res := out.Sorted()
	rep.Convoys = len(res)
	return res, rep, nil
}

// RestrictFromStore materialises DB[T]|O via point queries against a store.
func RestrictFromStore(store storage.Store, objs model.ObjSet, iv model.Interval) (*model.Dataset, error) {
	var pts []model.Point
	for t := iv.Start; t <= iv.End; t++ {
		rows, err := store.Fetch(t, objs)
		if err != nil {
			return nil, fmt.Errorf("vcoda: fetch %d: %w", t, err)
		}
		for _, p := range rows {
			pts = append(pts, model.Point{OID: p.OID, T: t, X: p.X, Y: p.Y})
		}
	}
	if len(pts) == 0 {
		return model.NewDataset(nil), nil
	}
	return model.NewDataset(pts), nil
}

// Validate reduces candidate convoys to the maximal FC convoys they cover.
// ds must contain (at least) the restriction of every candidate.
func Validate(ds *model.Dataset, cands []model.Convoy, m, k int, eps float64) []model.Convoy {
	out := model.NewConvoySet()
	seen := make(map[string]bool)
	queue := append([]model.Convoy(nil), cands...)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if v.Size() < m || v.Len() < k {
			continue
		}
		key := v.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		if out.Covers(v) {
			// Already implied by a confirmed FC convoy (a sub-convoy of an
			// FC convoy restricted-mines to itself only if it is FC, but if
			// it is covered it cannot be maximal, so skip the work).
			continue
		}
		sub := ds.Restrict(v.Objs, v.Interval())
		res := cmc.MineDataset(sub, v.Interval(), m, k, eps)
		for _, w := range res {
			if w.Equal(v) {
				out.Update(v)
			} else {
				queue = append(queue, w)
			}
		}
	}
	return out.Sorted()
}

// Reference mines maximal FC convoys of an in-memory dataset from first
// principles (PCCD + exhaustive validation). It is the oracle the test
// suites compare every other miner against.
func Reference(ds *model.Dataset, m, k int, eps float64) []model.Convoy {
	iv := func() model.Interval { s, e := ds.TimeRange(); return model.Interval{Start: s, End: e} }()
	cands := cmc.MineDataset(ds, iv, m, k, eps)
	return Validate(ds, cands, m, k, eps)
}
