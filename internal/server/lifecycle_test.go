package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	convoy "repro"
	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

// gapParams close convoys quickly: m=2, k=3.
var gapParams = convoy.Params{M: 2, K: 3, Eps: minetest.Eps}

// gapSnapshots builds snapshots for a pair of objects (oidA, oidB) riding
// together over ticks [0,4] and [100,104], plus a lone tick 200 — the two
// gaps close exactly two convoys ([0,4] and [100,104]) without a flush.
func gapSnapshots(oidA, oidB int32) []snapshotJSON {
	pair := []positionJSON{{OID: oidA, X: 0}, {OID: oidB, X: 1}}
	var out []snapshotJSON
	for _, tt := range []int32{0, 1, 2, 3, 4, 100, 101, 102, 103, 104, 200} {
		out = append(out, snapshotJSON{T: tt, Positions: pair})
	}
	return out
}

// waitFor polls cond every ms until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestIdleFeedEviction: an idle feed is evicted after FeedTTL while a feed
// kept warm by queries survives; ingest under the evicted name then starts
// a fresh feed.
func TestIdleFeedEviction(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 2, FeedTTL: 40 * time.Millisecond, EvictEvery: 10 * time.Millisecond})
	one := ingestRequest{Snapshots: []snapshotJSON{{T: 0, Positions: []positionJSON{{OID: 1}}}}}
	for _, feed := range []string{"cold", "hot"} {
		if code, body := postJSON(t, ts.URL+"/v1/feeds/"+feed+"/snapshots", one); code != http.StatusAccepted {
			t.Fatalf("ingest %s: status %d: %s", feed, code, body)
		}
	}
	// Keep "hot" warm with queries (queries count as activity) until "cold"
	// is gone.
	waitFor(t, 5*time.Second, "cold feed eviction", func() bool {
		getJSON(t, ts.URL+"/v1/feeds/hot/convoys", nil)
		st := srv.Stats()
		_, coldLive := st.Feeds["cold"]
		return !coldLive
	})
	st := srv.Stats()
	if _, ok := st.Feeds["hot"]; !ok {
		t.Fatal("hot feed evicted despite constant queries")
	}
	if st.Memory.LiveFeeds != 1 || st.Memory.EvictedTotal == 0 {
		t.Fatalf("memory stats after eviction: %+v", st.Memory)
	}
	// The name is free again: ingest starts a fresh feed lifecycle.
	if code, body := postJSON(t, ts.URL+"/v1/feeds/cold/snapshots", one); code != http.StatusAccepted {
		t.Fatalf("re-ingest to evicted name: status %d: %s", code, body)
	}
	if _, ok := srv.Stats().Feeds["cold"]; !ok {
		t.Fatal("re-ingest did not recreate the feed")
	}
}

// TestEvictionWaitsForPersistence: with a sink configured, a feed whose
// closed convoys have not reached the log yet must survive the TTL.
func TestEvictionWaitsForPersistence(t *testing.T) {
	path := t.TempDir() + "/closed.k2cl"
	srv, ts := newTestServer(t, Config{
		Params:       gapParams,
		Shards:       2,
		PersistPath:  path,
		PersistEvery: time.Hour, // persistence never runs during the test
		FeedTTL:      20 * time.Millisecond,
		EvictEvery:   5 * time.Millisecond,
	})
	// "unpersisted" closes a convoy that cannot reach the sink; "bare"
	// publishes nothing, so it has nothing to lose.
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/unpersisted/snapshots",
		ingestRequest{Snapshots: gapSnapshots(1, 2)}); code != http.StatusAccepted {
		t.Fatal("ingest failed")
	}
	one := ingestRequest{Snapshots: []snapshotJSON{{T: 0, Positions: []positionJSON{{OID: 9}}}}}
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/bare/snapshots", one); code != http.StatusAccepted {
		t.Fatal("ingest failed")
	}
	waitFor(t, 5*time.Second, "bare feed eviction", func() bool {
		_, ok := srv.Stats().Feeds["bare"]
		return !ok
	})
	if _, ok := srv.Stats().Feeds["unpersisted"]; !ok {
		t.Fatal("feed with unpersisted closed convoys was evicted")
	}
}

// TestHistoryTruncation: once persisted, a feed's closed-convoy history
// leaves memory; stale cursors answer 410 Gone with the live domain, and a
// client that keeps up sees every convoy exactly once across truncation.
func TestHistoryTruncation(t *testing.T) {
	path := t.TempDir() + "/closed.k2cl"
	srv, ts := newTestServer(t, Config{
		Params:       gapParams,
		Shards:       2,
		PersistPath:  path,
		PersistEvery: 10 * time.Millisecond,
	})
	// First convoy: ticks [0,4] closed by the jump to 100.
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/f/snapshots",
		ingestRequest{Snapshots: gapSnapshots(1, 2)[:6]}); code != http.StatusAccepted {
		t.Fatal("ingest failed")
	}
	var first convoysResponse
	if code := getJSON(t, ts.URL+"/v1/feeds/f/convoys?cursor=0&wait=5s", &first); code != http.StatusOK {
		t.Fatalf("first poll: status %d", code)
	}
	if len(first.Convoys) != 1 || first.Cursor != 1 {
		t.Fatalf("first poll: %+v, want one convoy at cursor 1", first)
	}
	waitFor(t, 5*time.Second, "history truncation", func() bool {
		fs := srv.Stats().Feeds["f"]
		return fs.TruncatedBefore == 1 && fs.ClosedInMemory == 0
	})
	// The persisted prefix is gone: cursor 0 is 410 with the live domain.
	resp, err := http.Get(ts.URL + "/v1/feeds/f/convoys?cursor=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale cursor: status %d, want 410", resp.StatusCode)
	}
	// The cursor from the first response is still live and sees exactly the
	// new convoy once more data closes it.
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/f/snapshots",
		ingestRequest{Snapshots: gapSnapshots(1, 2)[6:]}); code != http.StatusAccepted {
		t.Fatal("second ingest failed")
	}
	var second convoysResponse
	if code := getJSON(t, ts.URL+fmt.Sprintf("/v1/feeds/f/convoys?cursor=%d&wait=5s", first.Cursor), &second); code != http.StatusOK {
		t.Fatalf("second poll: status %d", code)
	}
	if len(second.Convoys) != 1 || second.Convoys[0].Start != 100 || second.Cursor != 2 {
		t.Fatalf("second poll: %+v, want exactly the [100,104] convoy at cursor 2", second)
	}
	if st := srv.Stats(); st.Memory.TruncatedTotal == 0 {
		t.Fatalf("truncated_convoys_total not counted: %+v", st.Memory)
	}
}

// TestKeepHistory: with truncation disabled, every cursor stays valid after
// persistence.
func TestKeepHistory(t *testing.T) {
	path := t.TempDir() + "/closed.k2cl"
	srv, ts := newTestServer(t, Config{
		Params:       gapParams,
		Shards:       1,
		PersistPath:  path,
		PersistEvery: 10 * time.Millisecond,
		KeepHistory:  true,
	})
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/f/snapshots",
		ingestRequest{Snapshots: gapSnapshots(1, 2)}); code != http.StatusAccepted {
		t.Fatal("ingest failed")
	}
	waitFor(t, 5*time.Second, "persistence", func() bool {
		f, _ := srv.feedFor("f", false, "")
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.persisted == 2
	})
	var resp convoysResponse
	if code := getJSON(t, ts.URL+"/v1/feeds/f/convoys?cursor=0", &resp); code != http.StatusOK {
		t.Fatalf("cursor 0 after persist: status %d, want 200 with KeepHistory", code)
	}
	if len(resp.Convoys) != 2 || resp.TruncatedBefore != 0 {
		t.Fatalf("KeepHistory response: %+v, want both convoys and truncated_before 0", resp)
	}
}

// TestEvictionUnderConcurrentIngest hammers a mix of hot and intermittent
// feeds while the TTL sweep runs at full tilt: every response must be one
// of 202/410/429, evicted feeds must be transparently recreated, and the
// server must stay consistent (run under -race in CI).
func TestEvictionUnderConcurrentIngest(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Shards:     4,
		QueueLen:   8,
		FeedTTL:    20 * time.Millisecond,
		EvictEvery: 5 * time.Millisecond,
	})
	const feeds = 8
	stop := time.Now().Add(300 * time.Millisecond)
	var wg sync.WaitGroup
	errs := make(chan error, feeds)
	for i := 0; i < feeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			feed := fmt.Sprintf("feed-%d", i)
			var tt int32
			for time.Now().Before(stop) {
				one := ingestRequest{Snapshots: []snapshotJSON{{T: tt, Positions: []positionJSON{{OID: int32(i)}}}}}
				code, body := postJSON(t, ts.URL+"/v1/feeds/"+feed+"/snapshots", one)
				switch code {
				case http.StatusAccepted:
					tt++
				case http.StatusTooManyRequests, http.StatusGone:
					// Backpressure or eviction race: retry. After an
					// eviction the feed restarts at t=0 (fresh miner).
					tt = 0
				default:
					errs <- fmt.Errorf("feed %s: unexpected status %d: %s", feed, code, body)
					return
				}
				if i%2 == 1 {
					// Intermittent feeds sleep past the TTL so they get
					// evicted mid-run and recreated.
					time.Sleep(time.Duration(20+rng.Intn(20)) * time.Millisecond)
					tt = 0
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := srv.Stats(); st.Memory.EvictedTotal == 0 {
		t.Fatal("no feed was ever evicted under a 20ms TTL with intermittent feeds")
	}
}

// TestLongPollHoldsEviction: a blocked long-poll counts as activity — the
// feed survives a wait far longer than the TTL, serves the poll normally,
// and is only collected once no one is waiting on it.
func TestLongPollHoldsEviction(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 1, FeedTTL: 30 * time.Millisecond, EvictEvery: 10 * time.Millisecond})
	one := ingestRequest{Snapshots: []snapshotJSON{{T: 0, Positions: []positionJSON{{OID: 1}}}}}
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/f/snapshots", one); code != http.StatusAccepted {
		t.Fatal("ingest failed")
	}
	resp, err := http.Get(ts.URL + "/v1/feeds/f/convoys?cursor=0&wait=400ms")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("long-poll across >10 TTLs: status %d, want 200 (waiter must hold eviction)", resp.StatusCode)
	}
	// With the waiter gone and the feed idle, the sweep collects it.
	waitFor(t, 5*time.Second, "post-poll eviction", func() bool {
		_, ok := srv.Stats().Feeds["f"]
		return !ok
	})
}

// TestLongPollContextCancel: a canceled request releases its long-poll
// handler goroutine promptly even though the feed never progresses.
func TestLongPollContextCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	one := ingestRequest{Snapshots: []snapshotJSON{{T: 0, Positions: []positionJSON{{OID: 1}}}}}
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/f/snapshots", one); code != http.StatusAccepted {
		t.Fatal("ingest failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/feeds/f/convoys?cursor=0&wait=30s", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	begin := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("expected the canceled long-poll to error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("long-poll error: %v, want context.Canceled", err)
	}
	if took := time.Since(begin); took > 5*time.Second {
		t.Fatalf("canceled long-poll returned after %v", took)
	}
}

// TestEnqueueContextCancel: a canceled request stops waiting for queue
// space instead of sitting out the full EnqueueWait.
func TestEnqueueContextCancel(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	srv, err := New(Config{
		Params:      testParams,
		Shards:      1,
		QueueLen:    1,
		EnqueueWait: 30 * time.Second,
		testHook: func(int) {
			once.Do(func() { <-block })
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	defer close(block)

	// First message stalls the actor, second fills the queue.
	one := ingestRequest{Snapshots: []snapshotJSON{{T: 0, Positions: []positionJSON{{OID: 1}}}}}
	for i := 0; i < 2; i++ {
		one.Snapshots[0].T = int32(i)
		if code, _ := postJSON(t, ts.URL+"/v1/feeds/bp/snapshots", one); code != http.StatusAccepted {
			t.Fatalf("priming ingest %d failed", i)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	body := strings.NewReader(`{"snapshots":[{"t":9,"positions":[{"oid":1,"x":0,"y":0}]}]}`)
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/feeds/bp/snapshots", body)
	if err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("expected the canceled ingest to error")
	}
	if took := time.Since(begin); took > 5*time.Second {
		t.Fatalf("canceled ingest returned after %v (EnqueueWait ignored the context)", took)
	}
}

// logMultiset reads a convoy log into a (feed, convoy-key) → count map.
func logMultiset(t *testing.T, path string) map[string]int {
	t.Helper()
	recs, err := storage.ReadConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int{}
	for _, r := range recs {
		if storage.IsFlushMarker(r.Convoy) {
			continue // terminal-state sentinel, not a persisted convoy
		}
		out[r.Feed+"|"+r.Convoy.Key()]++
	}
	return out
}

// TestRestartRecovery is the kill/restart round-trip: a restarted server
// recovers per-feed cursor positions from the log, answers 410 for the
// persisted range, and deduplicates re-ingested data so the log gains no
// duplicate records.
func TestRestartRecovery(t *testing.T) {
	path := t.TempDir() + "/closed.k2cl"
	cfg := Config{Params: gapParams, Shards: 2, PersistPath: path, PersistEvery: 10 * time.Millisecond}

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	postJSON(t, ts1.URL+"/v1/feeds/a/snapshots", ingestRequest{Snapshots: gapSnapshots(1, 2)})
	postJSON(t, ts1.URL+"/v1/feeds/b/snapshots", ingestRequest{Snapshots: gapSnapshots(3, 4)[:6]})
	flushFeed(t, ts1.URL, "a")
	ts1.Close()
	if err := srv1.Close(); err != nil { // graceful kill: final persist
		t.Fatal(err)
	}
	before := logMultiset(t, path)
	if len(before) == 0 {
		t.Fatal("nothing persisted before restart")
	}
	for k, n := range before {
		if n != 1 {
			t.Fatalf("record %q appears %d times before restart", k, n)
		}
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if feeds, recs := srv2.RecoveryInfo(); feeds != 2 || recs != len(beforeTotal(before)) {
		t.Fatalf("recovered %d feeds / %d records, want 2 feeds / %d records", feeds, recs, len(beforeTotal(before)))
	}
	// Cursor positions survived the restart: the persisted range is 410,
	// the recovered head is live.
	fsA := srv2.Stats().Feeds["a"]
	if fsA.TruncatedBefore == 0 || int64(fsA.TruncatedBefore) != fsA.ClosedTotal {
		t.Fatalf("recovered feed a stats: %+v, want truncated_before == closed_total > 0", fsA)
	}
	resp, err := http.Get(ts2.URL + "/v1/feeds/a/convoys?cursor=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("cursor 0 on recovered feed: status %d, want 410", resp.StatusCode)
	}
	var live convoysResponse
	if code := getJSON(t, ts2.URL+fmt.Sprintf("/v1/feeds/a/convoys?cursor=%d", fsA.TruncatedBefore), &live); code != http.StatusOK {
		t.Fatalf("recovered cursor: status %d", code)
	}

	// Re-ingest feed a's exact data (a client replaying after the crash)
	// and finish feed b's second convoy; only b's new convoy may be
	// appended.
	postJSON(t, ts2.URL+"/v1/feeds/a/snapshots", ingestRequest{Snapshots: gapSnapshots(1, 2)})
	postJSON(t, ts2.URL+"/v1/feeds/b/snapshots", ingestRequest{Snapshots: gapSnapshots(3, 4)[6:]})
	flushFeed(t, ts2.URL, "b")
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	after := logMultiset(t, path)
	for k, n := range after {
		if n != 1 {
			t.Fatalf("record %q appears %d times after restart (duplicated)", k, n)
		}
	}
	for k := range before {
		if after[k] != 1 {
			t.Fatalf("record %q lost across restart", k)
		}
	}
	if len(after) <= len(before) {
		t.Fatalf("feed b's post-restart convoy missing: %d records before, %d after", len(before), len(after))
	}
}

// TestRestartRecoveryFlushedState: the flush sentinel makes the terminal
// flushed state survive a restart — ingest stays 409 and polls
// short-circuit with Flushed:true instead of hanging their full wait.
func TestRestartRecoveryFlushedState(t *testing.T) {
	path := t.TempDir() + "/closed.k2cl"
	cfg := Config{Params: gapParams, Shards: 1, PersistPath: path, PersistEvery: 10 * time.Millisecond}
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	postJSON(t, ts1.URL+"/v1/feeds/x/snapshots", ingestRequest{Snapshots: gapSnapshots(1, 2)})
	flushFeed(t, ts1.URL, "x")
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close()
	if code, _ := postJSON(t, ts2.URL+"/v1/feeds/x/snapshots",
		ingestRequest{Snapshots: []snapshotJSON{{T: 999}}}); code != http.StatusConflict {
		t.Fatalf("ingest to recovered flushed feed: status %d, want 409", code)
	}
	fs := srv2.Stats().Feeds["x"]
	begin := time.Now()
	var resp convoysResponse
	if code := getJSON(t, ts2.URL+fmt.Sprintf("/v1/feeds/x/convoys?cursor=%d&wait=20s", fs.TruncatedBefore), &resp); code != http.StatusOK {
		t.Fatalf("poll on recovered flushed feed: status %d", code)
	}
	if !resp.Flushed {
		t.Fatalf("recovered feed lost its flushed state: %+v", resp)
	}
	if took := time.Since(begin); took > 5*time.Second {
		t.Fatalf("flushed poll blocked %v instead of short-circuiting", took)
	}
}

func beforeTotal(m map[string]int) []string {
	var out []string
	for k, n := range m {
		for i := 0; i < n; i++ {
			out = append(out, k)
		}
	}
	return out
}

// TestEvictRecreateContinuesCursorDomain: a feed recreated after eviction
// continues its predecessor's cursor domain, so a returning client's stale
// cursor is either still meaningful or answered 410 — never served
// silently from a restarted numbering.
func TestEvictRecreateContinuesCursorDomain(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Params: gapParams, Shards: 1,
		FeedTTL: 30 * time.Millisecond, EvictEvery: 10 * time.Millisecond,
	})
	// First incarnation publishes one convoy (head=1), then goes idle.
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/f/snapshots",
		ingestRequest{Snapshots: gapSnapshots(1, 2)[:6]}); code != http.StatusAccepted {
		t.Fatal("ingest failed")
	}
	var first convoysResponse
	if code := getJSON(t, ts.URL+"/v1/feeds/f/convoys?cursor=0&wait=5s", &first); code != http.StatusOK || first.Cursor != 1 {
		t.Fatalf("first incarnation poll: %+v", first)
	}
	waitFor(t, 5*time.Second, "eviction", func() bool {
		_, ok := srv.Stats().Feeds["f"]
		return !ok
	})
	// Second incarnation: new data closes one new convoy. The domain must
	// continue at 1, not restart at 0.
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/f/snapshots",
		ingestRequest{Snapshots: gapSnapshots(3, 4)[:6]}); code != http.StatusAccepted {
		t.Fatal("re-ingest failed")
	}
	var second convoysResponse
	if code := getJSON(t, ts.URL+fmt.Sprintf("/v1/feeds/f/convoys?cursor=%d&wait=5s", first.Cursor), &second); code != http.StatusOK {
		t.Fatalf("continued-cursor poll: status %d", code)
	}
	if second.Cursor != 2 || second.TruncatedBefore != 1 || len(second.Convoys) != 1 {
		t.Fatalf("recreated feed domain: %+v, want cursor 2, truncated_before 1, one new convoy", second)
	}
	// The predecessor's history is 410, not shadowed.
	resp, err := http.Get(ts.URL + "/v1/feeds/f/convoys?cursor=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("pre-eviction cursor: status %d, want 410", resp.StatusCode)
	}
}

// TestCursorBeyondHead: a cursor the current feed incarnation never issued
// (evict + recreate resets the domain) answers 410, never a silent rewind.
func TestCursorBeyondHead(t *testing.T) {
	_, ts := newTestServer(t, Config{Params: gapParams, Shards: 1})
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/f/snapshots",
		ingestRequest{Snapshots: gapSnapshots(1, 2)[:6]}); code != http.StatusAccepted {
		t.Fatal("ingest failed")
	}
	var ok convoysResponse
	if code := getJSON(t, ts.URL+"/v1/feeds/f/convoys?cursor=0&wait=5s", &ok); code != http.StatusOK || ok.Cursor != 1 {
		t.Fatalf("in-domain poll: status %d, %+v", code, ok)
	}
	resp, err := http.Get(ts.URL + "/v1/feeds/f/convoys?cursor=7&wait=5s")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("cursor beyond head: status %d, want 410", resp.StatusCode)
	}
}

// TestRecoveryRespectsMaxFeeds: a log naming more feeds than MaxFeeds only
// resurrects the most recently appended-to MaxFeeds of them, so restart
// memory stays bounded by configuration, not by log age.
func TestRecoveryRespectsMaxFeeds(t *testing.T) {
	path := t.TempDir() + "/closed.k2cl"
	l, err := storage.CreateConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c := model.NewConvoy(model.NewObjSet(int32(i), int32(i+100)), 0, 4)
		if err := l.Append(fmt.Sprintf("old-%d", i), c); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Params: gapParams, Shards: 1, PersistPath: path, MaxFeeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	feeds, recs := srv.RecoveryInfo()
	if feeds != 2 || recs != 5 {
		t.Fatalf("recovered %d feeds / %d records, want 2 capped feeds / 5 replayed records", feeds, recs)
	}
	st := srv.Stats()
	for _, name := range []string{"old-4", "old-3"} {
		if _, ok := st.Feeds[name]; !ok {
			t.Fatalf("most recent feed %s not resurrected: %v", name, st.Feeds)
		}
	}
	if _, ok := st.Feeds["old-0"]; ok {
		t.Fatal("oldest feed resurrected past the MaxFeeds cap")
	}
	// Dropped feeds are tombstoned: recreating one continues its logged
	// cursor domain instead of restarting at 0.
	srv.mu.RLock()
	tomb := srv.tombs["old-0"]
	srv.mu.RUnlock()
	if tomb != 1 {
		t.Fatalf("dropped feed tombstone = %d, want its 1 logged record", tomb)
	}
}

// TestSoakLifecycle is the acceptance soak: many feeds ingest and go idle,
// TTL eviction and history truncation shrink the resident state to nothing
// (stats prove it), and a kill/restart round-trip neither loses nor
// duplicates any persisted convoy.
func TestSoakLifecycle(t *testing.T) {
	path := t.TempDir() + "/closed.k2cl"
	cfg := Config{
		Params:       gapParams,
		Shards:       4,
		PersistPath:  path,
		PersistEvery: 5 * time.Millisecond,
		FeedTTL:      60 * time.Millisecond,
		EvictEvery:   10 * time.Millisecond,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	const feeds = 12
	for i := 0; i < feeds; i++ {
		name := fmt.Sprintf("soak-%d", i)
		code, body := postJSON(t, ts.URL+"/v1/feeds/"+name+"/snapshots",
			ingestRequest{Snapshots: gapSnapshots(int32(2*i+1), int32(2*i+2))})
		if code != http.StatusAccepted {
			t.Fatalf("ingest %s: status %d: %s", name, code, body)
		}
		if i%2 == 0 {
			flushFeed(t, ts.URL, name)
		}
	}
	peak := srv.Stats()
	if peak.Memory.LiveFeeds != feeds {
		t.Fatalf("live feeds at peak = %d, want %d", peak.Memory.LiveFeeds, feeds)
	}
	// Bounded memory: every feed goes idle, so truncation drains the
	// resident history and eviction drains the feed table entirely.
	waitFor(t, 10*time.Second, "truncation and eviction to drain resident state", func() bool {
		st := srv.Stats()
		return st.Memory.ClosedInMemory == 0 && st.Memory.LiveFeeds == 0
	})
	st := srv.Stats()
	if st.Memory.EvictedTotal != feeds {
		t.Fatalf("evicted_feeds_total = %d, want %d", st.Memory.EvictedTotal, feeds)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Durability: the log holds each feed's two convoys exactly once.
	before := logMultiset(t, path)
	for i := 0; i < feeds; i++ {
		name := fmt.Sprintf("soak-%d", i)
		found := 0
		for k := range before {
			if strings.HasPrefix(k, name+"|") {
				found += before[k]
			}
		}
		if found != 2 {
			t.Fatalf("feed %s: %d persisted convoys, want 2 (log: %v)", name, found, before)
		}
	}

	// Kill/restart round-trip: recovery restores dedup state, so replaying
	// one feed's full data adds nothing to the log. (FeedTTL off on the
	// second incarnation so the replay cannot race an eviction.)
	cfg.FeedTTL = 0
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	if f, r := srv2.RecoveryInfo(); f != feeds || r != 2*feeds {
		t.Fatalf("recovered %d feeds / %d records, want %d / %d", f, r, feeds, 2*feeds)
	}
	postJSON(t, ts2.URL+"/v1/feeds/soak-1/snapshots", ingestRequest{Snapshots: gapSnapshots(3, 4)})
	flushFeed(t, ts2.URL, "soak-1")
	ts2.Close()
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	after := logMultiset(t, path)
	if len(after) != len(before) {
		t.Fatalf("log changed across restart+replay: %d unique records, want %d", len(after), len(before))
	}
	for k, n := range after {
		if n != 1 {
			t.Fatalf("record %q appears %d times after replay (duplicated)", k, n)
		}
	}
}
