package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	convoy "repro"
	"repro/internal/server"
)

// ExampleServer_query walks the whole archive lifecycle: serve, ingest a
// convoy, flush, wait for it to reach the historical archive, and query
// it back by object id — the API a monitoring job would use to ask
// "which convoys contained vehicle 2?" long after the feed is gone.
func ExampleServer_query() {
	dir, err := os.MkdirTemp("", "convoyd-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	srv, err := server.New(server.Config{
		Params:       convoy.Params{M: 2, K: 3, Eps: 5},
		Shards:       2,
		PersistPath:  filepath.Join(dir, "closed.k2cl"),
		PersistEvery: 20 * time.Millisecond,
		ArchiveDir:   filepath.Join(dir, "archive"),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Objects 1 and 2 travel together for ticks 0–3.
	body := `{"snapshots":[
	  {"t":0,"positions":[{"oid":1,"x":0,"y":0},{"oid":2,"x":1,"y":0}]},
	  {"t":1,"positions":[{"oid":1,"x":5,"y":0},{"oid":2,"x":6,"y":0}]},
	  {"t":2,"positions":[{"oid":1,"x":10,"y":0},{"oid":2,"x":11,"y":0}]},
	  {"t":3,"positions":[{"oid":1,"x":15,"y":0},{"oid":2,"x":16,"y":0}]}]}`
	http.Post(ts.URL+"/v1/feeds/harbor/snapshots", "application/json", bytes.NewBufferString(body))
	http.Post(ts.URL+"/v1/feeds/harbor/flush", "application/json", nil)

	// The archive is populated asynchronously from the persist path; poll
	// the query endpoint until the convoy lands.
	type convoyJSON struct {
		Feed  string  `json:"feed"`
		Objs  []int32 `json:"objs"`
		Start int32   `json:"start"`
		End   int32   `json:"end"`
	}
	var page struct {
		Convoys []convoyJSON `json:"convoys"`
	}
	for deadline := time.Now().Add(10 * time.Second); len(page.Convoys) == 0; {
		if time.Now().After(deadline) {
			fmt.Println("timed out")
			return
		}
		resp, err := http.Get(ts.URL + "/v1/query/object?oid=2&min_dur=4")
		if err != nil {
			fmt.Println(err)
			return
		}
		json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	c := page.Convoys[0]
	fmt.Printf("feed=%s objs=%v ticks=[%d,%d]\n", c.Feed, c.Objs, c.Start, c.End)
	// Output:
	// feed=harbor objs=[1 2] ticks=[0,3]
}
