package server

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndTotal(t *testing.T) {
	r1 := newRing(8, 0)
	r2 := newRing(8, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("feed-%d", i)
		s1, s2 := r1.lookup(key), r2.lookup(key)
		if s1 != s2 {
			t.Fatalf("key %q: lookup not deterministic (%d vs %d)", key, s1, s2)
		}
		if s1 < 0 || s1 >= 8 {
			t.Fatalf("key %q: shard %d out of range", key, s1)
		}
	}
}

func TestRingBalance(t *testing.T) {
	const shards, keys = 8, 4000
	r := newRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.lookup(fmt.Sprintf("dataset/region-%d", i))]++
	}
	mean := keys / shards
	for s, c := range counts {
		if c < mean/3 || c > mean*3 {
			t.Fatalf("shard %d holds %d of %d keys (mean %d): ring badly unbalanced %v",
				s, c, keys, mean, counts)
		}
	}
}

// TestRingStability: growing the shard count moves only a minority of keys —
// the property that distinguishes consistent hashing from hash-mod-N.
func TestRingStability(t *testing.T) {
	const keys = 2000
	small, big := newRing(8, 0), newRing(9, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("feed-%d", i)
		if small.lookup(key) != big.lookup(key) {
			moved++
		}
	}
	// Ideal is keys/9 ≈ 11%; anything under a third proves we are nowhere
	// near mod-N behaviour (which moves ~8/9 ≈ 89%).
	if moved > keys/3 {
		t.Fatalf("resharding 8→9 moved %d/%d keys", moved, keys)
	}
}
