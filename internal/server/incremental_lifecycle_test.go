package server

// Lifecycle seams of the incremental clustering state. Every feed's
// StreamMiner now carries a dbscan.Incremental across ticks; that state is
// deliberately not persisted — eviction drops it, crash recovery restarts
// it empty — so these tests pin down that every teardown/rebuild seam still
// produces convoys byte-identical to the batch oracle, on churn-heavy data
// where the delta engine is exercised hardest. The concurrent variant runs
// under -race in CI: shards must never share incremental state.

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/minetest"
	"repro/internal/model"
)

// churnSnapshots converts a dataset's ticks into wire snapshots with a
// timestamp offset, so one dataset can be streamed twice into a feed with a
// convoy-closing gap in between.
func churnSnapshots(ds *model.Dataset, offset int32) []snapshotJSON {
	ts, te := ds.TimeRange()
	out := snapshotsOf(ds, ts, te)
	for i := range out {
		out[i].T += offset
	}
	return out
}

// TestEvictRecreateChurnMatchesBatch: a feed whose incremental state was
// torn down by TTL eviction and whose client then replays from scratch
// must mine exactly the batch result — the recreated feed's empty engine
// rebuilds on first tick and diffs from there.
func TestEvictRecreateChurnMatchesBatch(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Shards:  2,
		FeedTTL: 40 * time.Millisecond, EvictEvery: 10 * time.Millisecond,
	})
	ds := minetest.RandomChurn(2, 12, 20)

	// First incarnation builds up incremental state, then goes idle.
	ingestDataset(t, ts.URL, "churn", ds, 3)
	waitFor(t, 5*time.Second, "feed eviction", func() bool {
		_, ok := srv.Stats().Feeds["churn"]
		return !ok
	})

	// Second incarnation replays the same feed from t=0 and must match the
	// batch oracle exactly.
	ingestDataset(t, ts.URL, "churn", ds, 3)
	got := flushFeed(t, ts.URL, "churn")
	want := batchPCCD(t, ds)
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("post-eviction replay %v != batch %v", got, want)
	}
}

// TestRestartRecoveryChurnReplay is the crash round-trip on churn data: the
// recovered feed's miner (and with it the incremental clustering state)
// restarts empty, a client replays the full history, and the final convoys
// equal the batch reference while the log gains no duplicate records.
func TestRestartRecoveryChurnReplay(t *testing.T) {
	path := t.TempDir() + "/closed.k2cl"
	cfg := Config{Params: testParams, Shards: 2, PersistPath: path, PersistEvery: 10 * time.Millisecond}
	ds := minetest.RandomChurn(2, 12, 20)
	// The full feed is the dataset streamed twice with a gap: the gap closes
	// the first pass's convoys, so some history is persisted pre-crash.
	full := append(churnSnapshots(ds, 0), churnSnapshots(ds, 100)...)

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	// Crash happens mid-stream: only the first pass plus a bit of the second
	// reaches the server.
	cut := len(churnSnapshots(ds, 0)) + 3
	if code, body := postJSON(t, ts1.URL+"/v1/feeds/churn/snapshots",
		ingestRequest{Snapshots: full[:cut]}); code != http.StatusAccepted {
		t.Fatalf("pre-crash ingest: status %d: %s", code, body)
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	before := logMultiset(t, path)
	if len(before) == 0 {
		t.Fatal("nothing persisted before the crash")
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	if feeds, _ := srv2.RecoveryInfo(); feeds != 1 {
		t.Fatalf("recovered %d feeds, want 1", feeds)
	}
	// Replay everything from t=0 (the recovered miner accepts any timestamp)
	// and finish the stream.
	if code, body := postJSON(t, ts2.URL+"/v1/feeds/churn/snapshots",
		ingestRequest{Snapshots: full}); code != http.StatusAccepted {
		t.Fatalf("replay ingest: status %d: %s", code, body)
	}
	got := flushFeed(t, ts2.URL, "churn")
	ts2.Close()
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}

	// The oracle: batch-mine the doubled dataset.
	var pts []model.Point
	for _, sn := range full {
		for _, p := range sn.Positions {
			pts = append(pts, model.Point{OID: p.OID, T: sn.T, X: p.X, Y: p.Y})
		}
	}
	want := batchPCCD(t, model.NewDataset(pts))
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("recovered replay %v != batch %v", got, want)
	}

	// Durability: nothing lost, nothing duplicated.
	after := logMultiset(t, path)
	for k, n := range after {
		if n != 1 {
			t.Fatalf("record %q appears %d times after replay", k, n)
		}
	}
	for k := range before {
		if after[k] != 1 {
			t.Fatalf("record %q lost across restart", k)
		}
	}
}

// TestConcurrentFeedsChurn is the -race soak for per-feed incremental
// state: 12 churn-heavy feeds stream concurrently through 4 shards, each
// shard's actor owning several engines, and every feed's flushed output
// must equal its batch reference.
func TestConcurrentFeedsChurn(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 4, QueueLen: 16})
	const feeds = 12
	var wg sync.WaitGroup
	errs := make(chan error, feeds)
	for i := 0; i < feeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			feed := fmt.Sprintf("churn-%d", i)
			ds := minetest.RandomChurn(int64(i), 10, 15)
			rng := rand.New(rand.NewSource(int64(i) * 31))
			dts, dte := ds.TimeRange()
			snaps := snapshotsOf(ds, dts, dte)
			for j := 0; j < len(snaps); {
				n := 1 + rng.Intn(4)
				end := min(j+n, len(snaps))
				code, body := postJSON(t, ts.URL+"/v1/feeds/"+feed+"/snapshots",
					ingestRequest{Snapshots: snaps[j:end]})
				if code == http.StatusTooManyRequests {
					time.Sleep(time.Millisecond) // backpressure: retry
					continue
				}
				if code != http.StatusAccepted {
					errs <- fmt.Errorf("feed %s: status %d: %s", feed, code, body)
					return
				}
				j = end
			}
			got := flushFeed(t, ts.URL, feed)
			want := batchPCCD(t, ds)
			if !model.ConvoysEqual(got, want) {
				errs <- fmt.Errorf("feed %s: served %v != batch %v", feed, got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
