package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// The ingest wire-path benchmarks: identical batches (16 ticks × 512
// objects) through parseJSONBatch and parseBinaryBatch, the exact code the
// negotiated handler runs between the socket and the shard queue. The
// acceptance bar for the binary protocol is ≥5× objects/sec at equal CPU.

const (
	benchTicks   = 16
	benchObjects = 512
)

func benchBatch() []snapshotJSON {
	rng := rand.New(rand.NewSource(42))
	snaps := make([]snapshotJSON, benchTicks)
	for i := range snaps {
		snaps[i].T = int32(i)
		snaps[i].Positions = make([]positionJSON, benchObjects)
		for j := range snaps[i].Positions {
			snaps[i].Positions[j] = positionJSON{
				OID: int32(j), X: rng.Float64() * 1000, Y: rng.Float64() * 1000,
			}
		}
	}
	return snaps
}

func BenchmarkIngestJSON(b *testing.B) {
	body, err := json.Marshal(ingestRequest{Snapshots: benchBatch()})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, aerr := parseJSONBatch(bytes.NewReader(body))
		if aerr != nil || len(batch) != benchTicks {
			b.Fatalf("parse: %v (%d ticks)", aerr, len(batch))
		}
	}
	b.ReportMetric(float64(b.N*benchTicks*benchObjects)/b.Elapsed().Seconds(), "objs/s")
}

func BenchmarkIngestBinary(b *testing.B) {
	var body []byte
	for _, sn := range benchBatch() {
		pos := make([]model.ObjPos, len(sn.Positions))
		for j, p := range sn.Positions {
			pos[j] = model.ObjPos{OID: p.OID, X: p.X, Y: p.Y}
		}
		var err error
		if body, err = storage.AppendBatchFrame(body, sn.T, pos); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, aerr := parseBinaryBatch(bytes.NewReader(body))
		if aerr != nil || len(batch) != benchTicks {
			b.Fatalf("parse: %v (%d ticks)", aerr, len(batch))
		}
	}
	b.ReportMetric(float64(b.N*benchTicks*benchObjects)/b.Elapsed().Seconds(), "objs/s")
}
