package server

import (
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/storage/archive"
)

// convoySnapshots builds ticks [0, n) with objects 1..size moving in a
// tight clump (a convoy under testParams) plus a lone straggler far away.
func convoySnapshots(n int, size int) []snapshotJSON {
	out := make([]snapshotJSON, 0, n)
	for t := 0; t < n; t++ {
		sn := snapshotJSON{T: int32(t)}
		for oid := 1; oid <= size; oid++ {
			sn.Positions = append(sn.Positions, positionJSON{
				OID: int32(oid), X: float64(t) * 10, Y: float64(oid) * 0.1})
		}
		sn.Positions = append(sn.Positions, positionJSON{OID: 999, X: -1e6, Y: 1e6})
		out = append(out, sn)
	}
	return out
}

// archiveTestServer starts a server with persistence + archive under a
// temp dir and a fast persist tick.
func archiveTestServer(t *testing.T, mutate func(*Config)) (*Server, string, string) {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{
		Shards:       2,
		Replicas:     16,
		PersistPath:  filepath.Join(dir, "closed.k2cl"),
		PersistEvery: 25 * time.Millisecond,
		ArchiveDir:   filepath.Join(dir, "archive"),
		EnqueueWait:  time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, ts := newTestServer(t, cfg)
	return srv, ts.URL, cfg.PersistPath
}

// waitForQuery polls url until the response has at least want convoys.
func waitForQuery(t *testing.T, url string, want int) queryResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var resp queryResponse
		if code := getJSON(t, url, &resp); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, code)
		}
		if len(resp.Convoys) >= want {
			return resp
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: still %d convoys, want ≥ %d", url, len(resp.Convoys), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestQueryEndpoints(t *testing.T) {
	srv, base, _ := archiveTestServer(t, nil)

	// A 6-tick convoy of objects {1,2,3}; the flush closes it, the persist
	// tick logs it, the archiver indexes it.
	code, body := postJSON(t, base+"/v1/feeds/q/snapshots",
		ingestRequest{Snapshots: convoySnapshots(6, 3)})
	if code != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", code, body)
	}
	flushFeed(t, base, "q")

	resp := waitForQuery(t, base+"/v1/query/object?oid=2", 1)
	found := false
	for _, c := range resp.Convoys {
		if c.Feed == "q" && len(c.Objs) == 3 && c.Start == 0 && c.End == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("object query did not return the {1,2,3}×[0,5] convoy: %+v", resp.Convoys)
	}

	// The same convoy through the time index…
	resp = waitForQuery(t, base+"/v1/query/time?from=2&to=3", 1)
	if len(resp.Convoys) == 0 || resp.Convoys[0].End != 5 {
		t.Fatalf("time query: %+v", resp.Convoys)
	}
	// …but not outside its lifespan.
	var miss queryResponse
	if code := getJSON(t, base+"/v1/query/time?from=50&to=90", &miss); code != http.StatusOK {
		t.Fatalf("time query: %d", code)
	}
	if len(miss.Convoys) != 0 {
		t.Fatalf("time query outside the lifespan returned %+v", miss.Convoys)
	}

	// Size/duration predicates through /v1/query/convoys.
	resp = waitForQuery(t, base+"/v1/query/convoys?min_size=3&min_dur=6", 1)
	if len(resp.Convoys) == 0 {
		t.Fatal("convoys query with satisfied predicates found nothing")
	}
	if code := getJSON(t, base+"/v1/query/convoys?min_size=4", &miss); code != http.StatusOK {
		t.Fatal("convoys query failed")
	}
	if len(miss.Convoys) != 0 {
		t.Fatalf("min_size=4 matched a 3-object convoy: %+v", miss.Convoys)
	}

	// Bad parameters are 400s.
	for _, bad := range []string{
		"/v1/query/time?from=zebra",
		"/v1/query/time?from=9&to=3",
		"/v1/query/object",
		"/v1/query/object?oid=big",
		"/v1/query/convoys?min_size=-1",
		"/v1/query/convoys?limit=99999999",
		"/v1/query/convoys?cursor=xyz",
	} {
		if code := getJSON(t, base+bad, nil); code != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", bad, code)
		}
	}

	// The stats payload gains an archive section.
	var st Stats
	if code := getJSON(t, base+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Archive == nil || st.Archive.Records == 0 || st.Archive.QueriesTotal == 0 {
		t.Fatalf("stats archive section: %+v", st.Archive)
	}
	if _, _, enabled := srv.ArchiveInfo(); !enabled {
		t.Fatal("ArchiveInfo reports archive disabled")
	}
}

func TestQueryPagination(t *testing.T) {
	_, base, _ := archiveTestServer(t, nil)

	// Several feeds, each one convoy, so pagination has distinct records.
	const feeds = 5
	for i := 0; i < feeds; i++ {
		name := fmt.Sprintf("f%d", i)
		code, body := postJSON(t, base+"/v1/feeds/"+name+"/snapshots",
			ingestRequest{Snapshots: convoySnapshots(4+i, 3)})
		if code != http.StatusAccepted {
			t.Fatalf("ingest %s: %d %s", name, code, body)
		}
		flushFeed(t, base, name)
	}
	waitForQuery(t, base+"/v1/query/convoys?min_size=3&limit=1000", feeds)

	var got []string
	url := base + "/v1/query/convoys?min_size=3&limit=2"
	pages := 0
	for {
		var resp queryResponse
		if code := getJSON(t, url, &resp); code != http.StatusOK {
			t.Fatalf("page %d: %d", pages, code)
		}
		if len(resp.Convoys) > 2 {
			t.Fatalf("page %d: %d convoys, limit was 2", pages, len(resp.Convoys))
		}
		for _, c := range resp.Convoys {
			got = append(got, fmt.Sprintf("%s:%d-%d", c.Feed, c.Start, c.End))
		}
		pages++
		if !resp.More {
			break
		}
		if resp.Cursor == "" {
			t.Fatal("more=true with no cursor")
		}
		url = base + "/v1/query/convoys?min_size=3&limit=2&cursor=" + resp.Cursor
	}
	if pages < 3 {
		t.Fatalf("expected ≥3 pages for %d records at limit 2, got %d", feeds, pages)
	}
	sort.Strings(got)
	if len(got) != feeds {
		t.Fatalf("paged %d records, want %d: %v", len(got), feeds, got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("duplicate record across pages: %s", got[i])
		}
	}
}

// TestQueryWithoutArchive: the query routes are always registered; without
// an archive they answer 501, pointing at the flag.
func TestQueryWithoutArchive(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Replicas: 16})
	for _, p := range []string{"/v1/query/time", "/v1/query/object?oid=1", "/v1/query/convoys"} {
		if code := getJSON(t, ts.URL+p, nil); code != http.StatusNotImplemented {
			t.Fatalf("GET %s without archive: status %d, want 501", p, code)
		}
	}
}

func TestArchiveRequiresPersist(t *testing.T) {
	if _, err := New(Config{ArchiveDir: t.TempDir()}); err == nil {
		t.Fatal("New accepted ArchiveDir without PersistPath")
	}
}

// TestQuerySoakNeverBlocksIngest sustains ingest over several feeds while
// eight parallel readers hammer every query endpoint. The ingest path must
// see zero backpressure beyond what PR 3's configuration saw without
// queries (here: none at all), queries must all succeed, the archive's
// reader gauges must drain back to zero once the hammering stops, and
// afterwards the archive must byte-identically mirror a brute-force scan
// of the convoy log.
func TestQuerySoakNeverBlocksIngest(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "closed.k2cl")
	archDir := filepath.Join(dir, "archive")
	cfg := Config{
		Shards:       4,
		Replicas:     16,
		QueueLen:     64,
		EnqueueWait:  2 * time.Second,
		PersistPath:  logPath,
		PersistEvery: 15 * time.Millisecond,
		ArchiveDir:   archDir,
	}
	srv, ts := newTestServer(t, cfg)
	base := ts.URL

	const feeds = 6
	var (
		wg        sync.WaitGroup // ingesters only
		queryWg   sync.WaitGroup
		rejected  atomic.Int64
		queryErrs atomic.Int64
		stop      = make(chan struct{})
	)
	for f := 0; f < feeds; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			name := fmt.Sprintf("soak%d", f)
			for tick := 0; tick < 40; tick++ {
				sn := snapshotJSON{T: int32(tick)}
				for oid := 1; oid <= 4; oid++ {
					sn.Positions = append(sn.Positions, positionJSON{
						OID: int32(oid), X: float64(tick), Y: float64(oid) * 0.1})
				}
				// Break the clump periodically so convoys keep closing (and
				// keep flowing into the log + archive) mid-soak.
				if tick%10 == 9 {
					for i := range sn.Positions {
						sn.Positions[i].X += float64(i) * 1e5
					}
				}
				code, _ := postJSON(t, base+"/v1/feeds/"+name+"/snapshots",
					ingestRequest{Snapshots: []snapshotJSON{sn}})
				if code == http.StatusTooManyRequests {
					rejected.Add(1)
				}
			}
			flushFeed(t, base, name)
		}(f)
	}
	for q := 0; q < 8; q++ {
		queryWg.Add(1)
		go func(q int) {
			defer queryWg.Done()
			urls := []string{
				base + "/v1/query/time?from=0&to=40",
				base + "/v1/query/object?oid=1",
				base + "/v1/query/convoys?min_size=2",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if code := getJSON(t, urls[(q+i)%len(urls)], nil); code != http.StatusOK {
					queryErrs.Add(1)
				}
			}
		}(q)
	}
	// Stop the query hammering once every ingester+flush finished.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("soak did not finish")
	}
	close(stop)
	queryWg.Wait()

	if n := rejected.Load(); n != 0 {
		t.Fatalf("%d ingests hit 429 while queries ran", n)
	}
	if n := queryErrs.Load(); n != 0 {
		t.Fatalf("%d queries failed during the soak", n)
	}

	// Every page releases its read view on completion: with the hammering
	// stopped, the snapshot/reader gauges must have drained to zero.
	var st Stats
	if code := getJSON(t, base+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats after soak: status %d", code)
	}
	if st.Archive == nil {
		t.Fatal("stats missing archive section")
	}
	if st.Archive.LiveReaders != 0 || st.Archive.LiveSnapshots != 0 {
		t.Fatalf("reader gauges not drained: live_readers=%d live_snapshots=%d",
			st.Archive.LiveReaders, st.Archive.LiveSnapshots)
	}

	// Drain everything to disk, then diff archive against the log.
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var want []string
	if _, err := storage.ScanConvoyLog(logPath, func(r storage.LoggedConvoy) error {
		if !storage.IsFlushMarker(r.Convoy) {
			want = append(want, r.Feed+"\x00"+r.Convoy.Key())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	a, err := archive.Open(archDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var got []string
	q := archive.Query{Limit: 100}
	for {
		res, err := a.QueryTime(-1<<31, 1<<31-1, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Records {
			got = append(got, r.Feed+"\x00"+r.Convoy.Key())
		}
		if !res.More {
			break
		}
		q.Cursor = res.Next
	}
	sort.Strings(want)
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("archive holds %d records, log %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: archive %q, log %q", i, got[i], want[i])
		}
	}
	if len(want) == 0 {
		t.Fatal("soak closed no convoys; scenario broken")
	}
}
