package server

import (
	"sort"

	"repro/internal/model"
)

// reorder is the bounded per-feed reordering buffer: it absorbs snapshots
// that arrive out of timestamp order and releases them to the miner in
// strictly increasing order, tolerating disorder within a window of W
// ticks.
//
// The rule is classic watermarking: after the buffer has seen a snapshot
// for tick T, every tick ≤ T−W is sealed — released to the miner in order —
// and the watermark advances. A snapshot arriving for a tick at or below
// the watermark is too late (its tick was already mined) and is dropped.
// Pending ticks therefore always lie in (maxSeen−W, maxSeen], so the buffer
// holds at most W+1 distinct ticks: bounded by construction, no eviction
// policy needed.
//
// Partial snapshots merge: two batches for the same pending tick append
// their positions, and the merged snapshot is deduplicated by OID (last
// write wins, matching model.NewDataset) and sorted by OID when sealed.
type reorder struct {
	window  int32
	pending map[int32][]model.ObjPos
	maxSeen int32
	// watermark is the highest tick already released. It is an int64 so the
	// pre-release state (first tick − window − 1) cannot underflow when a
	// feed starts near the bottom of the int32 tick range.
	watermark int64
	started   bool
}

// tick is one sealed snapshot released to the miner.
type tick struct {
	t   int32
	pos []model.ObjPos
}

func newReorder(window int32) *reorder {
	if window < 0 {
		window = 0
	}
	return &reorder{window: window, pending: map[int32][]model.ObjPos{}}
}

// add ingests one (possibly partial, possibly out-of-order) snapshot and
// returns the ticks it seals, in increasing timestamp order. late reports
// that t was at or below the watermark and the snapshot was dropped.
func (b *reorder) add(t int32, pos []model.ObjPos) (ready []tick, late bool) {
	if b.started && int64(t) <= b.watermark {
		return nil, true
	}
	b.pending[t] = append(b.pending[t], pos...)
	if !b.started || t > b.maxSeen {
		b.maxSeen = t
	}
	if !b.started {
		b.started = true
		b.watermark = int64(t) - int64(b.window) - 1 // nothing released yet
	}
	return b.release(int64(b.maxSeen) - int64(b.window)), false
}

// drain seals every pending tick regardless of the window — the end-of-feed
// flush path.
func (b *reorder) drain() []tick {
	if !b.started {
		return nil
	}
	return b.release(int64(b.maxSeen))
}

// pendingTicks returns the number of buffered (unsealed) ticks.
func (b *reorder) pendingTicks() int { return len(b.pending) }

// release seals every pending tick ≤ upTo, in increasing order.
func (b *reorder) release(upTo int64) []tick {
	var ts []int32
	for t := range b.pending {
		if int64(t) <= upTo {
			ts = append(ts, t)
		}
	}
	if len(ts) == 0 {
		return nil
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]tick, 0, len(ts))
	for _, t := range ts {
		out = append(out, tick{t: t, pos: canonSnapshot(b.pending[t])})
		delete(b.pending, t)
	}
	if last := int64(ts[len(ts)-1]); last > b.watermark {
		b.watermark = last
	}
	return out
}

// canonSnapshot sorts positions by OID and deduplicates (last write wins),
// the canonical snapshot form the rest of the system assumes.
func canonSnapshot(pos []model.ObjPos) []model.ObjPos {
	if len(pos) == 0 {
		return nil
	}
	sort.SliceStable(pos, func(i, j int) bool { return pos[i].OID < pos[j].OID })
	out := pos[:0]
	for i := 0; i < len(pos); i++ {
		if i+1 < len(pos) && pos[i+1].OID == pos[i].OID {
			continue // keep the last occurrence
		}
		out = append(out, pos[i])
	}
	return out
}
