package server

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"
)

func TestRetentionEndpoint(t *testing.T) {
	_, base, _ := archiveTestServer(t, nil)

	// Two convoys a generation apart: "old" lives on ticks [0,5], "fresh"
	// on [20,29]. Retention at tick 6 must remove exactly the first.
	code, body := postJSON(t, base+"/v1/feeds/old/snapshots",
		ingestRequest{Snapshots: convoySnapshots(6, 3)})
	if code != http.StatusAccepted {
		t.Fatalf("ingest old: %d %s", code, body)
	}
	flushFeed(t, base, "old")
	freshSnaps := convoySnapshots(10, 3)
	for i := range freshSnaps {
		freshSnaps[i].T += 20
	}
	code, body = postJSON(t, base+"/v1/feeds/fresh/snapshots",
		ingestRequest{Snapshots: freshSnaps})
	if code != http.StatusAccepted {
		t.Fatalf("ingest fresh: %d %s", code, body)
	}
	flushFeed(t, base, "fresh")
	waitForQuery(t, base+"/v1/query/time", 2)

	var resp retentionResponse
	code, body = postJSON(t, base+"/v1/admin/retention", retentionRequest{Before: ptr(int32(6))})
	if code != http.StatusOK {
		t.Fatalf("retention: %d %s", code, body)
	}
	unmarshal(t, body, &resp)
	if resp.Expired != 1 || resp.Before != 6 {
		t.Fatalf("retention response: %+v, want expired 1 before 6", resp)
	}

	var page queryResponse
	if code := getJSON(t, base+"/v1/query/time", &page); code != http.StatusOK {
		t.Fatalf("query after retention: %d", code)
	}
	if len(page.Convoys) != 1 || page.Convoys[0].Feed != "fresh" {
		t.Fatalf("query after retention: %+v, want only the fresh convoy", page.Convoys)
	}

	// The watermark is monotonic: a lower tick is a no-op and the response
	// reports the watermark actually in force.
	code, body = postJSON(t, base+"/v1/admin/retention", retentionRequest{Before: ptr(int32(3))})
	if code != http.StatusOK {
		t.Fatalf("no-op retention: %d %s", code, body)
	}
	unmarshal(t, body, &resp)
	if resp.Expired != 0 || resp.Before != 6 {
		t.Fatalf("no-op retention response: %+v, want expired 0 before 6", resp)
	}

	// Malformed bodies are 400s.
	for _, bad := range []any{struct{}{}, "not an object", map[string]any{"before": "soon"}} {
		if code, body := postJSON(t, base+"/v1/admin/retention", bad); code != http.StatusBadRequest {
			t.Fatalf("retention with body %v: %d %s, want 400", bad, code, body)
		}
	}

	// Stats surface the expiry.
	var st Stats
	if code := getJSON(t, base+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Archive == nil || st.Archive.ExpiredTotal != 1 ||
		st.Archive.ExpiredBefore == nil || *st.Archive.ExpiredBefore != 6 {
		t.Fatalf("stats after retention: %+v", st.Archive)
	}
}

func TestRetentionWithoutArchive(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Replicas: 16})
	code, _ := postJSON(t, ts.URL+"/v1/admin/retention", retentionRequest{Before: ptr(int32(1))})
	if code != http.StatusNotImplemented {
		t.Fatalf("retention without archive: %d, want 501", code)
	}
}

func TestRetentionConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: 1, Retention: -1}); err == nil {
		t.Fatal("New accepted a negative Retention")
	}
	if _, err := New(Config{Shards: 1, Retention: 10}); err == nil {
		t.Fatal("New accepted Retention without ArchiveDir")
	}
}

func TestRetentionFloor(t *testing.T) {
	// retentionFloor needs an archive with a MaxEnd; build a tiny one.
	srv, _, _ := archiveTestServer(t, nil)
	if _, ok := retentionFloor(srv.arch, 10); ok {
		t.Fatal("retentionFloor reported a floor for an empty archive")
	}
	// A keep window reaching past the int32 range must not wrap around.
	if _, ok := retentionFloor(srv.arch, math.MaxInt32); ok {
		t.Fatal("retentionFloor wrapped for an empty archive with a huge window")
	}
}

func ptr[T any](v T) *T { return &v }

func unmarshal(t *testing.T, data []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshal %q: %v", data, err)
	}
}
