package server

import (
	"os"
	"regexp"
	"sort"
	"testing"
)

// apiDocPath locates docs/API.md from this package's directory.
const apiDocPath = "../../docs/API.md"

// endpointHeadingRe matches the reference's per-endpoint headings:
//
//	### `GET /v1/query/time`
var endpointHeadingRe = regexp.MustCompile("(?m)^### `((?:GET|POST|PUT|DELETE|PATCH) /\\S+)`\\s*$")

// TestRoutesMatchAPIReference diffs the server's registered route table
// against the endpoint headings of docs/API.md, in both directions: every
// served route must be documented, and every documented route must exist.
// This is what keeps the API reference from rotting.
func TestRoutesMatchAPIReference(t *testing.T) {
	data, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("read %s: %v", apiDocPath, err)
	}
	documented := map[string]bool{}
	for _, m := range endpointHeadingRe.FindAllStringSubmatch(string(data), -1) {
		if documented[m[1]] {
			t.Errorf("endpoint %q documented twice", m[1])
		}
		documented[m[1]] = true
	}

	srv, err := New(Config{Params: testParams, Shards: 1, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	served := map[string]bool{}
	for _, r := range srv.Routes() {
		served[r] = true
	}

	for r := range served {
		if !documented[r] {
			t.Errorf("route %q is served but has no `### `%s`` heading in %s", r, r, apiDocPath)
		}
	}
	for r := range documented {
		if !served[r] {
			t.Errorf("endpoint %q is documented in %s but not served", r, apiDocPath)
		}
	}
	if len(documented) == 0 {
		t.Fatal("no endpoint headings found; did the doc's heading format change?")
	}

	var list []string
	for r := range served {
		list = append(list, r)
	}
	sort.Strings(list)
	t.Logf("verified %d routes: %v", len(list), list)
}
