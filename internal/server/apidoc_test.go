package server

import (
	"os"
	"regexp"
	"sort"
	"testing"
)

// apiDocPath locates docs/API.md from this package's directory.
const apiDocPath = "../../docs/API.md"

// endpointHeadingRe matches the reference's per-endpoint headings:
//
//	### `GET /v1/query/time`
var endpointHeadingRe = regexp.MustCompile("(?m)^### `((?:GET|POST|PUT|DELETE|PATCH) /\\S+)`\\s*$")

// TestRoutesMatchAPIReference diffs the server's registered route table
// against the endpoint headings of docs/API.md, in both directions: every
// served route must be documented, and every documented route must exist.
// This is what keeps the API reference from rotting.
func TestRoutesMatchAPIReference(t *testing.T) {
	data, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("read %s: %v", apiDocPath, err)
	}
	documented := map[string]bool{}
	for _, m := range endpointHeadingRe.FindAllStringSubmatch(string(data), -1) {
		if documented[m[1]] {
			t.Errorf("endpoint %q documented twice", m[1])
		}
		documented[m[1]] = true
	}

	srv, err := New(Config{Params: testParams, Shards: 1, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	served := map[string]bool{}
	for _, r := range srv.Routes() {
		served[r] = true
	}

	for r := range served {
		if !documented[r] {
			t.Errorf("route %q is served but has no `### `%s`` heading in %s", r, r, apiDocPath)
		}
	}
	for r := range documented {
		if !served[r] {
			t.Errorf("endpoint %q is documented in %s but not served", r, apiDocPath)
		}
	}
	if len(documented) == 0 {
		t.Fatal("no endpoint headings found; did the doc's heading format change?")
	}

	var list []string
	for r := range served {
		list = append(list, r)
	}
	sort.Strings(list)
	t.Logf("verified %d routes: %v", len(list), list)
}

// errorCodeRowRe matches the error-code table rows of docs/API.md:
//
//	| `queue_full` | 429 | shard ingest queue full |
var errorCodeRowRe = regexp.MustCompile("(?m)^\\| `([a-z_]+)` \\| [0-9]{3} \\|")

// TestErrorCodesDocumented diffs the server's error-code registry against
// the error-code table of docs/API.md, in both directions: every code the
// server can emit must have a table row, and every documented code must be
// registered. Together with writeError's panic on unregistered codes, this
// makes the documented code set exactly the emittable one.
func TestErrorCodesDocumented(t *testing.T) {
	data, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("read %s: %v", apiDocPath, err)
	}
	documented := map[string]bool{}
	for _, m := range errorCodeRowRe.FindAllStringSubmatch(string(data), -1) {
		if documented[m[1]] {
			t.Errorf("error code %q documented twice", m[1])
		}
		documented[m[1]] = true
	}

	for code := range errorCodes() {
		if !documented[string(code)] {
			t.Errorf("error code %q is registered but missing from the table in %s", code, apiDocPath)
		}
	}
	for code := range documented {
		if _, ok := errorCodes()[apiCode(code)]; !ok {
			t.Errorf("error code %q is documented in %s but not registered", code, apiDocPath)
		}
	}
	if len(documented) == 0 {
		t.Fatal("no error-code table rows found; did the doc's table format change?")
	}
	t.Logf("verified %d error codes", len(documented))
}
