package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	convoy "repro"
	"repro/internal/model"
)

// The wire types of the JSON API. Positions mirror model.ObjPos; convoys
// mirror model.Convoy.

type positionJSON struct {
	OID int32   `json:"oid"`
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
}

type snapshotJSON struct {
	T         int32          `json:"t"`
	Positions []positionJSON `json:"positions"`
}

type ingestRequest struct {
	Snapshots []snapshotJSON `json:"snapshots"`
}

type ingestResponse struct {
	Accepted int `json:"accepted"`
}

type convoyJSON struct {
	Objs  []int32 `json:"objs"`
	Start int32   `json:"start"`
	End   int32   `json:"end"`
}

type convoysResponse struct {
	Cursor int `json:"cursor"`
	// TruncatedBefore is the lower bound of the live cursor domain: convoys
	// below it were persisted to the log and dropped from memory, and
	// querying them answers 410 Gone.
	TruncatedBefore int          `json:"truncated_before"`
	Convoys         []convoyJSON `json:"convoys"`
	Flushed         bool         `json:"flushed"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxIngestBody bounds one ingest request (16 MiB of JSON).
const maxIngestBody = 16 << 20

// maxLongPoll caps the wait parameter of the convoys endpoint.
const maxLongPoll = 60 * time.Second

// route is one registered endpoint. The table (not the mux) is the single
// source of truth for what the server serves: Handler builds the mux from
// it, Routes exposes it, and a test diffs it against docs/API.md so the
// reference cannot drift from the code.
type route struct {
	pattern string
	handler http.HandlerFunc
}

func (s *Server) routes() []route {
	return []route{
		{"POST /v1/feeds/{feed}/snapshots", s.handleIngest},
		{"GET /v1/feeds/{feed}/convoys", s.handleConvoys},
		{"POST /v1/feeds/{feed}/flush", s.handleFlush},
		{"GET /v1/query/time", s.handleQueryTime},
		{"GET /v1/query/object", s.handleQueryObject},
		{"GET /v1/query/convoys", s.handleQueryConvoys},
		{"POST /v1/admin/retention", s.handleRetention},
		{"GET /v1/stats", s.handleStats},
		{"GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("ok\n"))
		}},
	}
}

// Routes returns every registered "METHOD /path" pattern.
func (s *Server) Routes() []string {
	var out []string
	for _, r := range s.routes() {
		out = append(out, r.pattern)
	}
	return out
}

// Handler returns the convoyd HTTP API:
//
//	POST /v1/feeds/{feed}/snapshots   JSON ingest (batch of snapshots)
//	GET  /v1/feeds/{feed}/convoys     closed convoys since ?cursor, long-poll via ?wait
//	POST /v1/feeds/{feed}/flush       end the feed, return the full maximal set
//	GET  /v1/query/time               archived convoys overlapping [?from, ?to]
//	GET  /v1/query/object             archived convoys containing ?oid
//	GET  /v1/query/convoys            archived convoys by ?min_size / ?min_dur
//	POST /v1/admin/retention          expire archived convoys ending before a tick
//	GET  /v1/stats                    shard queues + per-feed counters + archive
//	GET  /healthz                     liveness
//
// docs/API.md is the request/response reference for all of them.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range s.routes() {
		mux.HandleFunc(r.pattern, r.handler)
	}
	return mux
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("feed")
	if name == "" {
		writeError(w, http.StatusBadRequest, "empty feed name")
		return
	}
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad ingest body: "+err.Error())
		return
	}
	if len(req.Snapshots) == 0 {
		writeError(w, http.StatusBadRequest, "no snapshots in batch")
		return
	}
	batch := make([]tick, 0, len(req.Snapshots))
	for _, sn := range req.Snapshots {
		pos := make([]model.ObjPos, 0, len(sn.Positions))
		for _, p := range sn.Positions {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				writeError(w, http.StatusBadRequest,
					fmt.Sprintf("non-finite coordinate for oid %d at t=%d", p.OID, sn.T))
				return
			}
			pos = append(pos, model.ObjPos{OID: p.OID, X: p.X, Y: p.Y})
		}
		batch = append(batch, tick{t: sn.T, pos: pos})
	}
	f, err := s.feedFor(name, true)
	if err != nil {
		writeServerError(w, err)
		return
	}
	if _, flushed := f.snapshotStats(); flushed {
		writeError(w, http.StatusConflict, "feed already flushed")
		return
	}
	err = s.enqueue(r.Context(), shardMsg{feed: f, snaps: batch})
	if errors.Is(err, ErrFeedEvicted) {
		// The feed was TTL-evicted between lookup and enqueue; start a
		// fresh feed lifecycle under the same name and retry once.
		if f, err = s.feedFor(name, true); err == nil {
			err = s.enqueue(r.Context(), shardMsg{feed: f, snaps: batch})
		}
	}
	if err != nil {
		writeServerError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(ingestResponse{Accepted: len(batch)})
}

func (s *Server) handleConvoys(w http.ResponseWriter, r *http.Request) {
	f, err := s.feedFor(r.PathValue("feed"), false)
	if err != nil {
		writeServerError(w, err)
		return
	}
	if f == nil {
		writeError(w, http.StatusNotFound, "unknown feed")
		return
	}
	var cursor int
	if c := r.URL.Query().Get("cursor"); c != "" {
		cursor, err = strconv.Atoi(c)
		if err != nil || cursor < 0 {
			writeError(w, http.StatusBadRequest, "bad cursor")
			return
		}
	}
	var wait time.Duration
	if ws := r.URL.Query().Get("wait"); ws != "" {
		wait, err = time.ParseDuration(ws)
		if err != nil || wait < 0 {
			writeError(w, http.StatusBadRequest, "bad wait duration")
			return
		}
		if wait > maxLongPoll {
			wait = maxLongPoll
		}
	}
	if !s.touchFeed(f) {
		writeError(w, http.StatusGone, ErrFeedEvicted.Error())
		return
	}
	if wait > 0 {
		// A blocked long-poll counts as activity: the sweep skips feeds
		// with waiters, so a connected client's feed cannot be evicted
		// under it no matter how its wait compares to FeedTTL. (A sweep
		// already past this check still wakes us to an explicit 410.)
		f.waiters.Add(1)
		defer f.waiters.Add(-1)
	}
	deadline := time.Now().Add(wait)
	for {
		f.mu.Lock()
		// Checked under f.mu: eviction stores the flag before wake() takes
		// this lock to close notify, so a poller either sees the flag here
		// or captures the notify channel that wake() is about to close —
		// it can never sleep through its own eviction.
		if f.evicted.Load() {
			f.mu.Unlock()
			writeError(w, http.StatusGone, ErrFeedEvicted.Error())
			return
		}
		head, flushed := f.head(), f.flushed
		if cursor < f.start {
			// The requested range was persisted to the log and truncated
			// from memory: the live cursor domain is [truncatedBefore,
			// head). 410 tells the client to restart from truncatedBefore
			// (or replay the persisted log for the full history).
			start := f.start
			f.mu.Unlock()
			writeError(w, http.StatusGone, fmt.Sprintf(
				"cursor %d predates truncated history; live cursor domain is [%d,%d)", cursor, start, head))
			return
		}
		if cursor > head {
			// A cursor the current feed incarnation never issued: the feed
			// was evicted and recreated (the domain restarted), or the
			// client is confused. Silently clamping would rewind the
			// client's position and re-deliver convoys it thinks it has
			// seen — 410 makes the domain reset explicit instead.
			start := f.start
			f.mu.Unlock()
			writeError(w, http.StatusGone, fmt.Sprintf(
				"cursor %d is beyond this feed's history; live cursor domain is [%d,%d)", cursor, start, head))
			return
		}
		if head > cursor || flushed || wait == 0 || !time.Now().Before(deadline) {
			lo := cursor - f.start
			out := make([]convoyJSON, 0, len(f.closed)-lo)
			for _, c := range f.closed[lo:] {
				out = append(out, toConvoyJSON(c))
			}
			tb := f.start
			f.mu.Unlock()
			writeJSON(w, convoysResponse{Cursor: head, TruncatedBefore: tb, Convoys: out, Flushed: flushed})
			return
		}
		ch := f.notify
		f.mu.Unlock()
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	f, err := s.feedFor(r.PathValue("feed"), false)
	if err != nil {
		writeServerError(w, err)
		return
	}
	if f == nil {
		writeError(w, http.StatusNotFound, "unknown feed")
		return
	}
	reply := make(chan []convoy.Convoy, 1)
	if err := s.enqueue(r.Context(), shardMsg{feed: f, flushReply: reply}); err != nil {
		writeServerError(w, err)
		return
	}
	select {
	case final := <-reply:
		out := make([]convoyJSON, 0, len(final))
		for _, c := range final {
			out = append(out, toConvoyJSON(c))
		}
		// The cursor lives in the /convoys domain (an index into the feed's
		// published-closed list), which is not the same as len(final): the
		// published list also holds convoys later superseded in the maximal
		// set. Report the real position so a client can keep polling with it.
		f.mu.Lock()
		cursor, tb := f.head(), f.start
		f.mu.Unlock()
		writeJSON(w, convoysResponse{Cursor: cursor, TruncatedBefore: tb, Convoys: out, Flushed: true})
	case <-r.Context().Done():
		// The flush still completes server-side; the client just left.
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func toConvoyJSON(c convoy.Convoy) convoyJSON {
	return convoyJSON{Objs: append([]int32(nil), c.Objs...), Start: c.Start, End: c.End}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// writeServerError maps sentinel errors to HTTP statuses. A canceled or
// timed-out request context writes nothing: the client is gone, and the
// point of threading the context into enqueue is to release the handler
// goroutine promptly, not to craft a response nobody reads.
func writeServerError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
	case errors.Is(err, ErrBackpressure), errors.Is(err, ErrFeedLimit):
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrFeedEvicted):
		writeError(w, http.StatusGone, err.Error())
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}
