package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	convoy "repro"
)

// The wire types of the JSON API. Positions mirror model.ObjPos; convoys
// mirror model.Convoy.

type positionJSON struct {
	OID int32   `json:"oid"`
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
}

type snapshotJSON struct {
	T         int32          `json:"t"`
	Positions []positionJSON `json:"positions"`
}

type ingestRequest struct {
	Snapshots []snapshotJSON `json:"snapshots"`
}

type ingestResponse struct {
	Accepted int `json:"accepted"`
	// Frames is the number of binary frames decoded; only set on the K2BI
	// paths (a JSON batch has no frames).
	Frames int `json:"frames,omitempty"`
}

type convoyJSON struct {
	Objs  []int32 `json:"objs"`
	Start int32   `json:"start"`
	End   int32   `json:"end"`
	// Clusters is the per-tick cluster sequence (Clusters[i] is the cluster
	// at Start+i); only moving-cluster feeds set it. For them Objs is the
	// lifetime footprint, not a co-present group.
	Clusters [][]int32 `json:"clusters,omitempty"`
}

type convoysResponse struct {
	// Pattern is the feed's pattern family ("convoy", "flock" or "mc").
	Pattern string `json:"pattern"`
	Cursor  int    `json:"cursor"`
	// TruncatedBefore is the lower bound of the live cursor domain: convoys
	// below it were persisted to the log and dropped from memory, and
	// querying them answers 410 Gone.
	TruncatedBefore int          `json:"truncated_before"`
	Convoys         []convoyJSON `json:"convoys"`
	Flushed         bool         `json:"flushed"`
}

// maxIngestBody bounds one ingest request (16 MiB, JSON or binary). The
// sticky stream endpoint is exempt — bounding a deliberately long-lived
// stream by bytes would just force clients to reconnect; its resource
// bounds are per-frame caps and admission control.
const maxIngestBody = 16 << 20

// maxLongPoll caps the wait parameter of the convoys endpoint.
const maxLongPoll = 60 * time.Second

// maxLiveLimit caps the limit parameter of the live convoys endpoint,
// matching archive.MaxLimit so both query families speak one vocabulary.
const maxLiveLimit = 1000

// route is one registered endpoint. The table (not the mux) is the single
// source of truth for what the server serves: Handler builds the mux from
// it, Routes exposes it, and a test diffs it against docs/API.md so the
// reference cannot drift from the code.
type route struct {
	pattern string
	handler http.HandlerFunc
}

func (s *Server) routes() []route {
	return []route{
		{"POST /v1/feeds/{feed}/ingest", s.handleIngest},
		// Alias: the ingest endpoint's original spelling. Same handler, same
		// negotiation; kept so existing clients never break.
		{"POST /v1/feeds/{feed}/snapshots", s.handleIngest},
		{"POST /v1/feeds/{feed}/ingest/stream", s.handleIngestStream},
		{"GET /v1/feeds/{feed}/convoys", s.handleConvoys},
		{"POST /v1/feeds/{feed}/flush", s.handleFlush},
		{"GET /v1/query/time", s.handleQueryTime},
		{"GET /v1/query/object", s.handleQueryObject},
		{"GET /v1/query/convoys", s.handleQueryConvoys},
		{"POST /v1/admin/retention", s.handleRetention},
		{"GET /v1/stats", s.handleStats},
		{"GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("ok\n"))
		}},
	}
}

// Routes returns every registered "METHOD /path" pattern.
func (s *Server) Routes() []string {
	var out []string
	for _, r := range s.routes() {
		out = append(out, r.pattern)
	}
	return out
}

// Handler returns the convoyd HTTP API:
//
//	POST /v1/feeds/{feed}/ingest          ingest (JSON or K2BI binary, by Content-Type)
//	POST /v1/feeds/{feed}/snapshots       alias of /ingest (the original spelling)
//	POST /v1/feeds/{feed}/ingest/stream   sticky binary ingest: many K2BI frames, one connection
//	GET  /v1/feeds/{feed}/convoys         closed convoys since ?cursor, long-poll via ?wait
//	POST /v1/feeds/{feed}/flush           end the feed, return the full maximal set
//	GET  /v1/query/time                   archived convoys overlapping [?from, ?to]
//	GET  /v1/query/object                 archived convoys containing ?oid
//	GET  /v1/query/convoys                archived convoys by ?min_size / ?min_dur
//	POST /v1/admin/retention              expire archived convoys ending before a tick
//	GET  /v1/stats                        shard queues + per-feed counters + archive + admission
//	GET  /healthz                         liveness
//
// docs/API.md is the request/response reference for all of them.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range s.routes() {
		mux.HandleFunc(r.pattern, r.handler)
	}
	return mux
}

// handleIngest serves one ingest batch, negotiating the wire format on
// Content-Type: application/json (or none) takes the original JSON body,
// application/x-k2bi takes a sequence of K2BI binary frames. Anything else
// is 415.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("feed")
	if name == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "empty feed name")
		return
	}
	var batch []tick
	var frames int
	var aerr *apiError
	binary, ok := negotiateIngest(w, r)
	if !ok {
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	if binary {
		batch, aerr = parseBinaryBatch(body)
		frames = len(batch)
	} else {
		batch, aerr = parseJSONBatch(body)
	}
	if aerr != nil {
		aerr.write(w)
		return
	}
	pat, aerr := patternParam(r)
	if aerr != nil {
		aerr.write(w)
		return
	}
	f, err := s.feedFor(name, true, pat)
	if err != nil {
		writeServerError(w, err)
		return
	}
	if _, flushed := f.snapshotStats(); flushed {
		writeError(w, http.StatusConflict, codeFeedFlushed, "feed already flushed")
		return
	}
	err = s.admitIngest(r.Context(), f, batch)
	if errors.Is(err, ErrFeedEvicted) {
		// The feed was TTL-evicted between lookup and enqueue; start a
		// fresh feed lifecycle under the same name and retry once.
		if f, err = s.feedFor(name, true, pat); err == nil {
			err = s.admitIngest(r.Context(), f, batch)
		}
	}
	if err != nil {
		writeServerError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(ingestResponse{Accepted: len(batch), Frames: frames})
}

// patternParam parses the optional ?pattern= query parameter. Absent means
// unconstrained (match any existing feed; create the default family).
func patternParam(r *http.Request) (convoy.Pattern, *apiError) {
	ps := r.URL.Query().Get("pattern")
	if ps == "" {
		return "", nil
	}
	pat, err := convoy.ParsePattern(ps)
	if err != nil {
		return "", &apiError{status: http.StatusBadRequest, code: codeBadParam, msg: err.Error()}
	}
	return pat, nil
}

func (s *Server) handleConvoys(w http.ResponseWriter, r *http.Request) {
	f, err := s.feedFor(r.PathValue("feed"), false, "")
	if err != nil {
		writeServerError(w, err)
		return
	}
	if f == nil {
		writeError(w, http.StatusNotFound, codeUnknownFeed, "unknown feed")
		return
	}
	var cursor int
	if c := r.URL.Query().Get("cursor"); c != "" {
		cursor, err = strconv.Atoi(c)
		if err != nil || cursor < 0 {
			writeError(w, http.StatusBadRequest, codeBadCursor, "bad cursor")
			return
		}
	}
	// limit caps one response page, sharing the archive endpoints'
	// vocabulary (same name, same 1000 cap). 0 (the default) keeps the
	// original behavior: everything from the cursor to the head.
	var limit int
	if ls := r.URL.Query().Get("limit"); ls != "" {
		limit, err = strconv.Atoi(ls)
		if err != nil || limit <= 0 {
			writeError(w, http.StatusBadRequest, codeBadParam, "bad limit")
			return
		}
		if limit > maxLiveLimit {
			writeError(w, http.StatusBadRequest, codeBadParam,
				fmt.Sprintf("limit %d exceeds the maximum %d", limit, maxLiveLimit))
			return
		}
	}
	var wait time.Duration
	if ws := r.URL.Query().Get("wait"); ws != "" {
		wait, err = time.ParseDuration(ws)
		if err != nil || wait < 0 {
			writeError(w, http.StatusBadRequest, codeBadParam, "bad wait duration")
			return
		}
		if wait > maxLongPoll {
			wait = maxLongPoll
		}
	}
	if !s.touchFeed(f) {
		writeError(w, http.StatusGone, codeFeedEvicted, ErrFeedEvicted.Error())
		return
	}
	if wait > 0 {
		// A blocked long-poll counts as activity: the sweep skips feeds
		// with waiters, so a connected client's feed cannot be evicted
		// under it no matter how its wait compares to FeedTTL. (A sweep
		// already past this check still wakes us to an explicit 410.)
		f.waiters.Add(1)
		defer f.waiters.Add(-1)
	}
	deadline := time.Now().Add(wait)
	for {
		f.mu.Lock()
		// Checked under f.mu: eviction stores the flag before wake() takes
		// this lock to close notify, so a poller either sees the flag here
		// or captures the notify channel that wake() is about to close —
		// it can never sleep through its own eviction.
		if f.evicted.Load() {
			f.mu.Unlock()
			writeError(w, http.StatusGone, codeFeedEvicted, ErrFeedEvicted.Error())
			return
		}
		head, flushed := f.head(), f.flushed
		if cursor < f.start {
			// The requested range was persisted to the log and truncated
			// from memory: the live cursor domain is [truncatedBefore,
			// head). 410 tells the client to restart from truncatedBefore
			// (or replay the persisted log for the full history).
			start := f.start
			f.mu.Unlock()
			writeError(w, http.StatusGone, codeCursorGone, fmt.Sprintf(
				"cursor %d predates truncated history; live cursor domain is [%d,%d)", cursor, start, head))
			return
		}
		if cursor > head {
			// A cursor the current feed incarnation never issued: the feed
			// was evicted and recreated (the domain restarted), or the
			// client is confused. Silently clamping would rewind the
			// client's position and re-deliver convoys it thinks it has
			// seen — 410 makes the domain reset explicit instead.
			start := f.start
			f.mu.Unlock()
			writeError(w, http.StatusGone, codeCursorGone, fmt.Sprintf(
				"cursor %d is beyond this feed's history; live cursor domain is [%d,%d)", cursor, start, head))
			return
		}
		if head > cursor || flushed || wait == 0 || !time.Now().Before(deadline) {
			lo := cursor - f.start
			avail := f.closed[lo:]
			if limit > 0 && len(avail) > limit {
				avail = avail[:limit]
			}
			out := make([]convoyJSON, 0, len(avail))
			for _, c := range avail {
				out = append(out, toConvoyJSON(c))
			}
			next := cursor + len(out)
			tb := f.start
			f.mu.Unlock()
			// A truncated page must not report flushed: a client that stops
			// polling at flushed=true would miss the convoys past the limit.
			writeJSON(w, convoysResponse{
				Pattern: string(f.pattern),
				Cursor:  next, TruncatedBefore: tb, Convoys: out,
				Flushed: flushed && next == head,
			})
			return
		}
		ch := f.notify
		f.mu.Unlock()
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	f, err := s.feedFor(r.PathValue("feed"), false, "")
	if err != nil {
		writeServerError(w, err)
		return
	}
	if f == nil {
		writeError(w, http.StatusNotFound, codeUnknownFeed, "unknown feed")
		return
	}
	reply := make(chan []convoy.PatternResult, 1)
	if err := s.enqueue(r.Context(), shardMsg{feed: f, flushReply: reply}); err != nil {
		writeServerError(w, err)
		return
	}
	select {
	case final := <-reply:
		out := make([]convoyJSON, 0, len(final))
		for _, c := range final {
			out = append(out, toConvoyJSON(c))
		}
		// The cursor lives in the /convoys domain (an index into the feed's
		// published-closed list), which is not the same as len(final): the
		// published list also holds convoys later superseded in the maximal
		// set. Report the real position so a client can keep polling with it.
		f.mu.Lock()
		cursor, tb := f.head(), f.start
		f.mu.Unlock()
		writeJSON(w, convoysResponse{
			Pattern: string(f.pattern),
			Cursor:  cursor, TruncatedBefore: tb, Convoys: out, Flushed: true,
		})
	case <-r.Context().Done():
		// The flush still completes server-side; the client just left.
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func toConvoyJSON(c convoy.PatternResult) convoyJSON {
	out := convoyJSON{Objs: append([]int32(nil), c.Objs...), Start: c.Start, End: c.End}
	for _, cl := range c.Clusters {
		out.Clusters = append(out.Clusters, append([]int32(nil), cl...))
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeServerError maps sentinel errors to HTTP statuses. A canceled or
// timed-out request context writes nothing: the client is gone, and the
// point of threading the context into enqueue is to release the handler
// goroutine promptly, not to craft a response nobody reads. Every 429
// carries Retry-After — the explicit backpressure contract.
func writeServerError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
	case errors.Is(err, ErrBackpressure):
		writeRetryError(w, codeQueueFull, err.Error(), retryAfter(err, time.Second))
	case errors.Is(err, ErrRateLimited):
		writeRetryError(w, codeRateLimited, err.Error(), retryAfter(err, time.Second))
	case errors.Is(err, ErrBreakerOpen):
		writeRetryError(w, codeBreakerOpen, err.Error(), retryAfter(err, time.Second))
	case errors.Is(err, ErrFeedLimit):
		writeRetryError(w, codeFeedLimit, err.Error(), retryAfter(err, time.Second))
	case errors.Is(err, ErrPatternMismatch):
		writeError(w, http.StatusConflict, codePatternMismatch, err.Error())
	case errors.Is(err, ErrFeedEvicted):
		writeError(w, http.StatusGone, codeFeedEvicted, err.Error())
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, codeShuttingDown, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
	}
}
