package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Admission control for the ingest path: requests are shed at the HTTP edge
// — before shard routing, before queue waits — when accepting them could
// only deepen an overload. Two independent mechanisms compose:
//
//   - a per-feed token bucket (Config.IngestRate/IngestBurst) bounds how
//     many snapshots per second one feed may push, so a single hot feed
//     cannot starve the other feeds hashed to its shard;
//   - a per-shard circuit breaker (Config.BreakerThreshold/BreakerCooldown)
//     watches for consecutive queue-full rejections and, once tripped,
//     rejects the shard's ingest outright for a cooldown — the herd stops
//     hammering a saturated queue's lock and wait path, and the actor gets
//     slack to drain.
//
// Both reject with 429 plus a machine-readable code (rate_limited /
// breaker_open) and a Retry-After telling the client when capacity is
// expected back; queue-full itself (the pre-existing backpressure) keeps
// its own code (queue_full). Flush and query traffic is never shed — only
// snapshot ingest, the one load source a client can meaningfully back off.

// ErrRateLimited is returned when a feed's token bucket is exhausted; the
// HTTP layer maps it to 429 rate_limited.
var ErrRateLimited = errors.New("server: feed ingest rate limit exceeded")

// ErrBreakerOpen is returned while a shard's circuit breaker sheds load;
// the HTTP layer maps it to 429 breaker_open.
var ErrBreakerOpen = errors.New("server: shard circuit breaker open")

// retryableError decorates a sentinel with the wait after which the client
// should retry; writeServerError surfaces it as Retry-After.
type retryableError struct {
	err   error
	after time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// retryAfter extracts the wait hint from an error chain, or def.
func retryAfter(err error, def time.Duration) time.Duration {
	var re *retryableError
	if errors.As(err, &re) {
		return re.after
	}
	return def
}

// tokenBucket is a classic leaky-bucket rate limiter: tokens accrue at
// rate per second up to burst, and each admitted snapshot spends one.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   int64 // unix nanos of the last refill
}

func newTokenBucket(rate float64, burst int, now int64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// take spends n tokens if available. When the bucket cannot cover them it
// reports the wait until it could; the caller turns that into Retry-After.
// A batch larger than the whole bucket is charged the full bucket instead
// of being unservable forever — one oversized batch then empties the
// bucket, which is the intended outcome (admit it, make the feed pay).
func (b *tokenBucket) take(n int, now int64) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if elapsed := now - b.last; elapsed > 0 {
		b.tokens = min(b.burst, b.tokens+b.rate*float64(elapsed)/float64(time.Second))
	}
	b.last = now
	cost := min(float64(n), b.burst)
	if b.tokens >= cost {
		b.tokens -= cost
		return 0, true
	}
	wait := time.Duration((cost - b.tokens) / b.rate * float64(time.Second))
	return wait, false
}

// Circuit breaker states.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateName maps a state to the label /v1/stats exposes.
func breakerStateName(s int32) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// breaker is one shard's circuit breaker. Closed, it only counts: every
// queue-full rejection increments a consecutive-failure streak and any
// successful enqueue resets it. At threshold the breaker opens: ingest to
// the shard is rejected immediately (no routing, no enqueue attempt, no
// wait) until the cooldown elapses, then a single half-open probe is let
// through — its success closes the breaker, its failure re-opens it for
// another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    int32
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	trips atomic.Int64 // times the breaker opened (lifetime)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may proceed to the shard queue; when it
// may not, the remaining cooldown is returned for Retry-After.
func (b *breaker) allow(now time.Time) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return 0, true
	case breakerOpen:
		if rest := b.cooldown - now.Sub(b.openedAt); rest > 0 {
			return rest, false
		}
		b.state = breakerHalfOpen
		b.probing = false
		fallthrough
	default: // half-open: exactly one probe at a time
		if b.probing {
			return b.cooldown, false
		}
		b.probing = true
		return 0, true
	}
}

// record feeds the outcome of an admitted enqueue back: success closes (or
// keeps closed) the breaker, a queue-full failure advances it toward (or
// back to) open. Outcomes other than success/queue-full — eviction races,
// shutdown — are neutral: they say nothing about queue health.
func (b *breaker) record(err error, now time.Time) {
	success := err == nil
	full := errors.Is(err, ErrBackpressure)
	if !success && !full {
		b.mu.Lock()
		b.probing = false
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if success {
		b.state = breakerClosed
		b.failures = 0
		return
	}
	if b.state == breakerHalfOpen {
		// The probe hit a still-full queue: straight back to open.
		b.state = breakerOpen
		b.openedAt = now
		b.trips.Add(1)
		return
	}
	b.failures++
	if b.threshold > 0 && b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
		b.failures = 0
		b.trips.Add(1)
	}
}

// stateName returns the breaker's current state label for /v1/stats.
func (b *breaker) stateName(now time.Time) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && now.Sub(b.openedAt) >= b.cooldown {
		// Cooldown elapsed but no request has probed yet; report half_open,
		// which is what the next allow() will decide.
		return breakerStateName(breakerHalfOpen)
	}
	return breakerStateName(b.state)
}

// admitIngest runs one ingest batch through admission control and the shard
// queue: the feed's token bucket first (cheapest, most specific), then the
// shard breaker, then the real enqueue, whose outcome trains the breaker.
func (s *Server) admitIngest(ctx context.Context, f *feed, batch []tick) error {
	if b := f.bucket; b != nil {
		if wait, ok := b.take(len(batch), time.Now().UnixNano()); !ok {
			s.rateLimited.Add(1)
			return &retryableError{err: ErrRateLimited, after: wait}
		}
	}
	var br *breaker
	if s.breakers != nil {
		br = s.breakers[f.shard]
		if wait, ok := br.allow(time.Now()); !ok {
			s.breakerRejected.Add(1)
			return &retryableError{err: ErrBreakerOpen, after: wait}
		}
	}
	err := s.enqueue(ctx, shardMsg{feed: f, snaps: batch})
	if br != nil {
		br.record(err, time.Now())
	}
	if errors.Is(err, ErrBackpressure) {
		s.queueFull.Add(1)
	}
	return err
}

// AdmissionStats is the admission section of /v1/stats: how often each
// shedding mechanism fired over the server's lifetime.
type AdmissionStats struct {
	RateLimitedTotal     int64 `json:"rate_limited_total"`
	BreakerRejectedTotal int64 `json:"breaker_rejected_total"`
	BreakerTripsTotal    int64 `json:"breaker_trips_total"`
	QueueFullTotal       int64 `json:"queue_full_total"`
}
