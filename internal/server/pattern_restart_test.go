package server

// Kill/restart differential for the flock and moving-cluster feed modes: the
// root-package wall (pattern_differential_test.go) proves the streaming
// miners byte-identical to the batch oracles over the 120-seed corpus; this
// file proves the same equality survives the recovery seam. Each seed's
// churn dataset is streamed twice with a convoy-closing gap, the server is
// killed mid-second-pass, restarted, and the client replays the full
// history — the flush must equal the batch oracle over the doubled dataset,
// the feed's family must survive recovery, and dedup must leave every
// persisted result in the log exactly once.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	convoy "repro"
	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

// patternLogMultiset reads one feed's log into a family-aware key multiset
// (logMultiset keys on Convoy.Key, which would conflate moving-cluster
// chains sharing a span).
func patternLogMultiset(t *testing.T, path, feed string) map[string]int {
	t.Helper()
	recs, err := storage.ReadConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int{}
	for _, r := range recs {
		if r.Feed != feed {
			t.Fatalf("log names unknown feed %q", r.Feed)
		}
		if storage.IsFlushMarker(r.Convoy) {
			continue
		}
		out[loggedKey(r)]++
	}
	return out
}

func patternRestartSeed(t *testing.T, pat convoy.Pattern, seed int64) {
	path := t.TempDir() + "/closed.k2cl"
	cfg := Config{Params: patternSoakParams, Shards: 1, PersistPath: path, PersistEvery: 5 * time.Millisecond}
	ds := minetest.RandomChurn(seed, 8+int(seed%5), 10+int(seed%7))
	full := append(churnSnapshots(ds, 0), churnSnapshots(ds, 200)...)
	var pts []model.Point
	for _, sn := range full {
		for _, p := range sn.Positions {
			pts = append(pts, model.Point{OID: p.OID, T: sn.T, X: p.X, Y: p.Y})
		}
	}
	want := patternSoakWant(t, pat, pts)

	// Crash mid-second-pass: the gap has closed the first pass's patterns,
	// so (on most seeds) some history is persisted before the kill.
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	cut := len(full)/2 + 3
	if code, body := postJSON(t, ts1.URL+"/v1/feeds/churn/snapshots?pattern="+string(pat),
		ingestRequest{Snapshots: full[:cut]}); code != http.StatusAccepted {
		t.Fatalf("seed %d: pre-crash ingest: status %d: %s", seed, code, body)
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	before := patternLogMultiset(t, path, "churn")

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	if len(before) > 0 {
		if f, _ := srv2.RecoveryInfo(); f != 1 {
			t.Fatalf("seed %d: recovered %d feeds, want 1", seed, f)
		}
		if got := srv2.Stats().Feeds["churn"].Pattern; got != string(pat) {
			t.Fatalf("seed %d: recovered feed reports pattern %q, want %q", seed, got, pat)
		}
	}
	if code, body := postJSON(t, ts2.URL+"/v1/feeds/churn/snapshots?pattern="+string(pat),
		ingestRequest{Snapshots: full}); code != http.StatusAccepted {
		t.Fatalf("seed %d: replay ingest: status %d: %s", seed, code, body)
	}
	code, body := postJSON(t, ts2.URL+"/v1/feeds/churn/flush", nil)
	if code != http.StatusOK {
		t.Fatalf("seed %d: flush: status %d: %s", seed, code, body)
	}
	var resp convoysResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Flushed || resp.Pattern != string(pat) {
		t.Fatalf("seed %d: flush: flushed=%v pattern=%q, want flushed %s", seed, resp.Flushed, resp.Pattern, pat)
	}
	got := map[string]int{}
	for _, c := range resp.Convoys {
		got[respKey(pat, c)]++
	}
	if d := multisetDiff(want, got); d != "" {
		t.Fatalf("seed %d (%s): flush after kill/restart differs from the batch oracle:\n%s", seed, pat, d)
	}
	ts2.Close()
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}

	// Durability: the log converges to exactly the oracle (dedup kept each
	// pre-crash record single across the replay), nothing lost.
	after := patternLogMultiset(t, path, "churn")
	if d := multisetDiff(want, after); d != "" {
		t.Fatalf("seed %d (%s): log after replay differs from the batch oracle:\n%s", seed, pat, d)
	}
	for k := range before {
		if after[k] != 1 {
			t.Fatalf("seed %d: record %q appears %d times after replay", seed, k, after[k])
		}
	}
}

// TestPatternRestartDifferential runs the kill/restart round-trip over the
// 120-seed churn corpus for both new pattern families.
func TestPatternRestartDifferential(t *testing.T) {
	seeds := int64(120)
	if testing.Short() {
		seeds = 12
	}
	for _, pat := range []convoy.Pattern{convoy.PatternFlock, convoy.PatternMC} {
		t.Run(string(pat), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < seeds; seed++ {
				patternRestartSeed(t, pat, seed)
			}
		})
	}
}
