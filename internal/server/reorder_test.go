package server

import (
	"testing"

	"repro/internal/model"
)

func pos(oids ...int32) []model.ObjPos {
	out := make([]model.ObjPos, len(oids))
	for i, o := range oids {
		out[i] = model.ObjPos{OID: o, X: float64(o)}
	}
	return out
}

func ticksOf(ts []tick) []int32 {
	out := make([]int32, len(ts))
	for i, t := range ts {
		out[i] = t.t
	}
	return out
}

func eqI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReorderInOrderWindowZero(t *testing.T) {
	b := newReorder(0)
	for tt := int32(0); tt < 5; tt++ {
		ready, late := b.add(tt, pos(1))
		if late {
			t.Fatalf("t=%d: unexpectedly late", tt)
		}
		if !eqI32(ticksOf(ready), []int32{tt}) {
			t.Fatalf("t=%d: ready %v, want [%d]", tt, ticksOf(ready), tt)
		}
	}
	if out := b.drain(); len(out) != 0 {
		t.Fatalf("drain after full release: %v", ticksOf(out))
	}
}

func TestReorderOutOfOrderWithinWindow(t *testing.T) {
	b := newReorder(3)
	order := []int32{2, 0, 1, 3, 5, 4, 6, 9, 7, 8}
	var sealed []int32
	for _, tt := range order {
		ready, late := b.add(tt, pos(1))
		if late {
			t.Fatalf("t=%d late within window", tt)
		}
		sealed = append(sealed, ticksOf(ready)...)
	}
	sealed = append(sealed, ticksOf(b.drain())...)
	want := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !eqI32(sealed, want) {
		t.Fatalf("sealed %v, want %v", sealed, want)
	}
}

func TestReorderLateDropped(t *testing.T) {
	b := newReorder(1)
	b.add(0, pos(1))
	b.add(5, pos(1)) // seals t=0 → watermark 0
	if _, late := b.add(0, pos(1)); !late {
		t.Fatal("t=0 at the watermark should be late")
	}
	// t=3 is between the watermark and the sealing frontier: it can still
	// be sequenced before the pending t=5, so it is accepted and sealed
	// right away (it is already behind the frontier).
	ready, late := b.add(3, pos(1))
	if late {
		t.Fatal("t=3 above the watermark should be accepted")
	}
	if !eqI32(ticksOf(ready), []int32{3}) {
		t.Fatalf("add(3) sealed %v, want [3]", ticksOf(ready))
	}
	if _, late := b.add(5, pos(2)); late {
		t.Fatal("t=5 is pending, not late")
	}
	out := b.drain()
	if !eqI32(ticksOf(out), []int32{5}) {
		t.Fatalf("drain %v, want [5]", ticksOf(out))
	}
	// The two partial snapshots for t=5 merged.
	if len(out[0].pos) != 2 {
		t.Fatalf("merged positions = %v", out[0].pos)
	}
}

func TestReorderPartialSnapshotMergeDedup(t *testing.T) {
	b := newReorder(2)
	b.add(0, []model.ObjPos{{OID: 7, X: 1}, {OID: 3, X: 2}})
	b.add(0, []model.ObjPos{{OID: 7, X: 9}}) // overwrites OID 7: last write wins
	out := b.drain()
	if len(out) != 1 || out[0].t != 0 {
		t.Fatalf("drain = %v", out)
	}
	got := out[0].pos
	if len(got) != 2 || got[0].OID != 3 || got[1].OID != 7 || got[1].X != 9 {
		t.Fatalf("canonical snapshot = %v, want sorted dedup with OID 7 → X=9", got)
	}
}

func TestReorderBounded(t *testing.T) {
	const window = 8
	b := newReorder(window)
	for tt := int32(0); tt < 1000; tt++ {
		b.add(tt, pos(1))
		if n := b.pendingTicks(); n > window+1 {
			t.Fatalf("t=%d: %d pending ticks exceeds window bound %d", tt, n, window+1)
		}
	}
}
