package server

// Multi-pattern lifecycle soak: 12 feeds mixing all three pattern families
// (convoy, flock, moving cluster) through TTL eviction, crash recovery and a
// second restart, asserting no pattern-mode bleed anywhere — live stats, the
// persisted log, recovered negotiation state and flush responses must all
// keep each feed in its own family, and the persisted results must match the
// batch miners exactly once each across the whole lifecycle. Runs under
// -race in CI.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	convoy "repro"
	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

// patternSoakParams are shared by the server and the batch oracles: m=2 and
// k=3 so the soak trajectories close patterns in every family, flock radius
// and theta left at the server defaults (eps and 0.5).
var patternSoakParams = convoy.Params{M: 2, K: 3, Eps: minetest.Eps}

// patternFeedCase is one soak feed: its negotiated family, its ingest body,
// and the batch-oracle result multiset the log must converge to.
type patternFeedCase struct {
	name  string
	pat   convoy.Pattern
	snaps []snapshotJSON
	want  map[string]int
}

// patternSoakSnapshots builds the soak trajectory for one feed: four objects
// riding in a line (X = 0, 1.4, 2.8, 4.2) over ticks [0,4] and [100,104],
// plus a lone object at tick 200 whose gap closes the second segment before
// any flush. The 1.4 spacing chains under eps=1.5, so DBSCAN sees one
// 4-object cluster per tick (one convoy, one moving-cluster chain per
// segment) — but the 4.2 span exceeds the flock disk diameter 2·eps=3, so
// the flock sweep must split it. A mined mode bleed therefore changes the
// result set itself, not just the labels.
func patternSoakSnapshots(base int32) ([]snapshotJSON, []model.Point) {
	xs := []float64{0, 1.4, 2.8, 4.2}
	var snaps []snapshotJSON
	var pts []model.Point
	for _, tt := range []int32{0, 1, 2, 3, 4, 100, 101, 102, 103, 104} {
		var pos []positionJSON
		for j, x := range xs {
			pos = append(pos, positionJSON{OID: base + int32(j), X: x})
			pts = append(pts, model.Point{OID: base + int32(j), T: tt, X: x})
		}
		snaps = append(snaps, snapshotJSON{T: tt, Positions: pos})
	}
	snaps = append(snaps, snapshotJSON{T: 200, Positions: []positionJSON{{OID: base}}})
	pts = append(pts, model.Point{OID: base, T: 200})
	return snaps, pts
}

// patternSoakWant mines the oracle dataset with the batch miner of the
// feed's family and returns the expected result-key multiset.
func patternSoakWant(t *testing.T, pat convoy.Pattern, pts []model.Point) map[string]int {
	t.Helper()
	ds := model.NewDataset(pts)
	want := map[string]int{}
	switch pat {
	case convoy.PatternFlock:
		fs, err := convoy.MineFlocks(convoy.NewMemStore(ds),
			convoy.FlockParams{M: patternSoakParams.M, K: patternSoakParams.K, R: patternSoakParams.Eps}, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			want[f.Key()]++
		}
	case convoy.PatternMC:
		ms, err := convoy.MineMovingClusters(convoy.NewMemStore(ds),
			convoy.MovingClusterParams{M: patternSoakParams.M, Eps: patternSoakParams.Eps, Theta: 0.5, K: patternSoakParams.K})
		if err != nil {
			t.Fatal(err)
		}
		for _, mc := range ms {
			want[mc.Key()]++
		}
	default:
		res, err := convoy.MineDataset(ds, patternSoakParams, &convoy.Options{Algorithm: convoy.PCCD})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Convoys {
			want[c.Key()]++
		}
	}
	return want
}

// patternTag maps a pattern family to its log-record tag.
func patternTag(p convoy.Pattern) uint8 {
	switch p {
	case convoy.PatternFlock:
		return storage.LogPatternFlock
	case convoy.PatternMC:
		return storage.LogPatternMC
	}
	return storage.LogPatternConvoy
}

// loggedKey renders one log record with its family's canonical key — moving
// clusters key on the per-tick cluster sequence, everything else on the
// convoy itself.
func loggedKey(r storage.LoggedConvoy) string {
	if r.Pattern == storage.LogPatternMC {
		return convoy.MovingCluster{Start: r.Convoy.Start, Clusters: r.Clusters}.Key()
	}
	return r.Convoy.Key()
}

// respKey is loggedKey for a flush-response entry.
func respKey(pat convoy.Pattern, c convoyJSON) string {
	if pat == convoy.PatternMC {
		cls := make([]model.ObjSet, len(c.Clusters))
		for i, ids := range c.Clusters {
			cls[i] = model.NewObjSet(ids...)
		}
		return convoy.MovingCluster{Start: c.Start, Clusters: cls}.Key()
	}
	return model.NewConvoy(model.NewObjSet(c.Objs...), c.Start, c.End).Key()
}

// multisetDiff reports where two key multisets disagree ("" when equal).
func multisetDiff(want, got map[string]int) string {
	var sb strings.Builder
	for k, n := range want {
		if got[k] != n {
			fmt.Fprintf(&sb, "  %q: got %d, want %d\n", k, got[k], n)
		}
	}
	for k, n := range got {
		if _, ok := want[k]; !ok {
			fmt.Fprintf(&sb, "  %q: got %d, want 0\n", k, n)
		}
	}
	return sb.String()
}

// assertPatternStats checks /v1/stats-level isolation: every feed reports
// its own family and the per-pattern aggregates count exactly the feeds
// negotiated into each family.
func assertPatternStats(t *testing.T, srv *Server, cases []patternFeedCase, perPattern int, where string) {
	t.Helper()
	st := srv.Stats()
	for _, fc := range cases {
		fs, ok := st.Feeds[fc.name]
		if !ok {
			t.Fatalf("%s: feed %s missing from stats", where, fc.name)
		}
		if fs.Pattern != string(fc.pat) {
			t.Fatalf("%s: feed %s reports pattern %q, want %q (mode bleed)", where, fc.name, fs.Pattern, fc.pat)
		}
	}
	for _, pat := range []convoy.Pattern{convoy.PatternConvoy, convoy.PatternFlock, convoy.PatternMC} {
		if got := st.Patterns[string(pat)].LiveFeeds; got != perPattern {
			t.Fatalf("%s: %d live %s feeds, want %d", where, got, pat, perPattern)
		}
	}
}

// assertPatternLog checks the persisted log: every record is tagged with its
// feed's family, clusters ride only on moving-cluster records, each feed's
// record multiset equals its batch oracle exactly, and (once flushed) each
// feed has exactly one flush sentinel carrying the family tag.
func assertPatternLog(t *testing.T, path string, cases []patternFeedCase, wantSentinels bool) {
	t.Helper()
	recs, err := storage.ReadConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]patternFeedCase{}
	for _, fc := range cases {
		byName[fc.name] = fc
	}
	got := map[string]map[string]int{}
	sentinels := map[string]int{}
	for _, r := range recs {
		fc, ok := byName[r.Feed]
		if !ok {
			t.Fatalf("log names unknown feed %q", r.Feed)
		}
		if r.Pattern != patternTag(fc.pat) {
			t.Fatalf("feed %s: logged pattern tag %d, want %d (mode bleed in the log)", r.Feed, r.Pattern, patternTag(fc.pat))
		}
		if storage.IsFlushMarker(r.Convoy) {
			sentinels[r.Feed]++
			continue
		}
		if fc.pat == convoy.PatternMC {
			if len(r.Clusters) != int(r.Convoy.End-r.Convoy.Start+1) {
				t.Fatalf("feed %s: mc record %s has %d clusters over %d ticks", r.Feed, r.Convoy.Key(), len(r.Clusters), r.Convoy.End-r.Convoy.Start+1)
			}
		} else if len(r.Clusters) != 0 {
			t.Fatalf("feed %s: %s record carries a cluster block", r.Feed, fc.pat)
		}
		m := got[r.Feed]
		if m == nil {
			m = map[string]int{}
			got[r.Feed] = m
		}
		m[loggedKey(r)]++
	}
	for _, fc := range cases {
		if d := multisetDiff(fc.want, got[fc.name]); d != "" {
			t.Fatalf("feed %s (%s): log differs from the batch oracle:\n%s", fc.name, fc.pat, d)
		}
		switch {
		case wantSentinels && sentinels[fc.name] != 1:
			t.Fatalf("feed %s: %d flush sentinels, want 1", fc.name, sentinels[fc.name])
		case !wantSentinels && sentinels[fc.name] != 0:
			t.Fatalf("feed %s: flush sentinel before any flush", fc.name)
		}
	}
}

// TestMultiPatternLifecycleSoak is the acceptance soak for the pattern feed
// modes: 12 feeds (4 per family) ingest with negotiated patterns, mismatched
// negotiation answers 409 at every lifecycle stage, TTL eviction drains all
// resident state after persistence, a kill/restart recovers every feed's
// family and dedup keys so a full client replay appends nothing, flushes
// return the batch-oracle final sets in the right family, and a second
// restart recovers the flushed terminal state — with the log byte-equal to
// the batch miners (each result exactly once) throughout.
func TestMultiPatternLifecycleSoak(t *testing.T) {
	path := t.TempDir() + "/closed.k2cl"
	cfg := Config{
		Params:       patternSoakParams,
		Shards:       4,
		PersistPath:  path,
		PersistEvery: 5 * time.Millisecond,
		FeedTTL:      120 * time.Millisecond,
		EvictEvery:   10 * time.Millisecond,
	}
	pats := []convoy.Pattern{convoy.PatternConvoy, convoy.PatternFlock, convoy.PatternMC}
	const feeds = 12
	cases := make([]patternFeedCase, feeds)
	for i := range cases {
		snaps, pts := patternSoakSnapshots(int32(4*i + 1))
		pat := pats[i%3]
		cases[i] = patternFeedCase{
			name:  fmt.Sprintf("soak-%d", i),
			pat:   pat,
			snaps: snaps,
			want:  patternSoakWant(t, pat, pts),
		}
		if len(cases[i].want) == 0 {
			t.Fatalf("feed %s: batch oracle found no %s patterns — soak data broken", cases[i].name, pat)
		}
	}
	// The families must genuinely disagree on this data (the flock disk
	// constraint splits the 4-object convoy), or a mined mode bleed could
	// hide behind identical result sets.
	if len(cases[1].want) <= len(cases[0].want) {
		t.Fatalf("flock oracle (%d results) does not split the convoy oracle (%d) — soak data too degenerate to detect bleed",
			len(cases[1].want), len(cases[0].want))
	}

	// Phase 1: ingest with negotiated patterns, probe negotiation, let TTL
	// eviction drain everything, then crash.
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	for _, fc := range cases {
		code, body := postJSON(t, ts1.URL+"/v1/feeds/"+fc.name+"/snapshots?pattern="+string(fc.pat),
			ingestRequest{Snapshots: fc.snaps})
		if code != http.StatusAccepted {
			t.Fatalf("ingest %s (%s): status %d: %s", fc.name, fc.pat, code, body)
		}
	}
	probe := ingestRequest{Snapshots: []snapshotJSON{{T: 999, Positions: []positionJSON{{OID: 1}}}}}
	for i, fc := range cases {
		wrong := pats[(i+1)%3]
		code, body := postJSON(t, ts1.URL+"/v1/feeds/"+fc.name+"/snapshots?pattern="+string(wrong), probe)
		if code != http.StatusConflict || !strings.Contains(string(body), string(codePatternMismatch)) {
			t.Fatalf("wrong-pattern ingest %s as %s: status %d: %s", fc.name, wrong, code, body)
		}
	}
	if code, body := postJSON(t, ts1.URL+"/v1/feeds/"+cases[0].name+"/snapshots?pattern=swarm", probe); code != http.StatusBadRequest {
		t.Fatalf("unknown pattern: status %d: %s", code, body)
	}
	assertPatternStats(t, srv1, cases, feeds/3, "live")
	waitFor(t, 10*time.Second, "truncation and eviction to drain all pattern feeds", func() bool {
		st := srv1.Stats()
		return st.Memory.ClosedInMemory == 0 && st.Memory.LiveFeeds == 0
	})
	if st := srv1.Stats(); st.Memory.EvictedTotal != feeds {
		t.Fatalf("evicted %d feeds, want %d", st.Memory.EvictedTotal, feeds)
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	assertPatternLog(t, path, cases, false)

	// Phase 2: recovery restores every feed's family and dedup keys. A full
	// client replay (unconstrained on even feeds — absent pattern matches
	// whatever the feed mines — explicit on odd) appends nothing; flush
	// returns the batch-oracle final set in the negotiated family.
	cfg2 := cfg
	cfg2.FeedTTL, cfg2.EvictEvery = 0, 0
	srv2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	if f, _ := srv2.RecoveryInfo(); f != feeds {
		t.Fatalf("recovered %d feeds, want %d", f, feeds)
	}
	assertPatternStats(t, srv2, cases, feeds/3, "recovered")
	st2 := srv2.Stats()
	for _, pat := range pats {
		if st2.Patterns[string(pat)].ClosedTotal == 0 {
			t.Fatalf("recovered %s feeds report closed_total 0", pat)
		}
	}
	for i, fc := range cases {
		wrong := pats[(i+1)%3]
		code, body := postJSON(t, ts2.URL+"/v1/feeds/"+fc.name+"/snapshots?pattern="+string(wrong), probe)
		if code != http.StatusConflict {
			t.Fatalf("wrong-pattern ingest on recovered %s: status %d: %s", fc.name, code, body)
		}
	}
	for i, fc := range cases {
		url := ts2.URL + "/v1/feeds/" + fc.name + "/snapshots"
		if i%2 == 1 {
			url += "?pattern=" + string(fc.pat)
		}
		code, body := postJSON(t, url, ingestRequest{Snapshots: fc.snaps})
		if code != http.StatusAccepted {
			t.Fatalf("replay %s: status %d: %s", fc.name, code, body)
		}
	}
	for _, fc := range cases {
		code, body := postJSON(t, ts2.URL+"/v1/feeds/"+fc.name+"/flush", nil)
		if code != http.StatusOK {
			t.Fatalf("flush %s: status %d: %s", fc.name, code, body)
		}
		var resp convoysResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Flushed || resp.Pattern != string(fc.pat) {
			t.Fatalf("flush %s: flushed=%v pattern=%q, want flushed %s", fc.name, resp.Flushed, resp.Pattern, fc.pat)
		}
		got := map[string]int{}
		for _, c := range resp.Convoys {
			if (fc.pat == convoy.PatternMC) != (len(c.Clusters) > 0) {
				t.Fatalf("flush %s (%s): entry %v carries clusters=%d", fc.name, fc.pat, c.Objs, len(c.Clusters))
			}
			got[respKey(fc.pat, c)]++
		}
		if d := multisetDiff(fc.want, got); d != "" {
			t.Fatalf("flush %s (%s) differs from the batch oracle after kill/restart:\n%s", fc.name, fc.pat, d)
		}
	}
	ts2.Close()
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	assertPatternLog(t, path, cases, true)

	// Phase 3: a second restart recovers the flushed terminal state per
	// family — stats still bleed-free, ingest answers 409 feed_flushed.
	srv3, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	defer srv3.Close()
	assertPatternStats(t, srv3, cases, feeds/3, "restarted")
	for _, fc := range cases[:3] {
		code, body := postJSON(t, ts3.URL+"/v1/feeds/"+fc.name+"/snapshots?pattern="+string(fc.pat), probe)
		if code != http.StatusConflict || !strings.Contains(string(body), string(codeFeedFlushed)) {
			t.Fatalf("ingest to recovered flushed %s feed: status %d: %s", fc.pat, code, body)
		}
	}
}
