package server

import "time"

// Feed lifecycle: TTL eviction of idle feeds.
//
// A convoyd that serves an open-ended feed namespace must eventually forget
// feeds nobody talks to, or its memory grows with the lifetime of the
// process (ROADMAP: "convoyd feed retention"). The sweep below evicts any
// feed — flushed or not — whose last ingest, query, or flush activity is
// older than Config.FeedTTL, with one safety rail: while a healthy sink is
// configured, a feed is only evicted once its entire published history is
// durably in the log (fsynced, not merely handed to the sink's buffer), so
// eviction never loses a closed convoy that could still reach the log.
// (The periodic persist tick catches the feed up; a later sweep then
// collects it.)
//
// Eviction is coordinated with ingest through two invariants:
//
//   - enqueue bumps feed.pending and checks feed.evicted while holding the
//     server's read lock; eviction flips evicted and requires pending == 0
//     while holding the write lock. The locks exclude each other, so either
//     the enqueue completes first (pending > 0 → eviction aborts and
//     retries next sweep) or the eviction completes first (enqueue sees
//     evicted and fails with ErrFeedEvicted, which ingest answers by
//     recreating the feed);
//   - pending is decremented by the shard actor only after the message is
//     fully processed, so pending == 0 also means no in-queue work can
//     outlive the feed.
//
// An evicted feed's miner, reorder buffer, history, and dedup keys are all
// dropped. Ingest under the same name later starts a fresh feed lifecycle:
// convoys already persisted by the evicted incarnation can then be appended
// again if the same data is re-sent (the dedup keys died with the feed) —
// storage.CompactConvoyLog removes such duplicates offline.

// evictLoop runs the TTL sweep every Config.EvictEvery until Close.
func (s *Server) evictLoop() {
	defer close(s.evictDone)
	ticker := time.NewTicker(s.cfg.EvictEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.sweep(time.Now())
		case <-s.evictStop:
			return
		}
	}
}

// sweep collects the idle candidates under the read lock, then evicts each
// one under the write lock (re-validating per feed, since activity may have
// resumed in between).
func (s *Server) sweep(now time.Time) {
	cutoff := now.Add(-s.cfg.FeedTTL).UnixNano()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return
	}
	var idle []*feed
	for _, f := range s.feeds {
		if f.lastActive.Load() <= cutoff {
			idle = append(idle, f)
		}
	}
	s.mu.RUnlock()
	for _, f := range idle {
		s.evict(f, cutoff)
	}
}

// evict removes one idle feed if it is still safe to do so; otherwise it
// leaves the feed for a later sweep. See the package comment above for the
// enqueue/evict exclusion argument.
func (s *Server) evict(f *feed, cutoff int64) {
	s.mu.Lock()
	if s.closed || s.feeds[f.name] != f {
		s.mu.Unlock()
		return
	}
	if f.lastActive.Load() > cutoff || f.pending.Load() != 0 || f.waiters.Load() != 0 {
		s.mu.Unlock()
		return
	}
	if s.sink != nil {
		// Durable, not persisted: the persisted marker advances before the
		// write (at-most-once guard), so records can sit in the sink's
		// unflushed buffer with persisted == head. Only a successful Sync
		// advances durable, and only a fully durable feed may be dropped.
		// This deliberately also applies when the sink is broken: durable
		// is frozen then, so feeds holding convoys that never reached the
		// log stay resident forever — the server degrades toward keeping
		// data over keeping its memory bound, and /v1/stats flags
		// sink_broken so the operator knows to restart.
		f.mu.Lock()
		undurable := f.head() != f.durable
		f.mu.Unlock()
		if undurable {
			s.mu.Unlock()
			return
		}
	}
	f.evicted.Store(true)
	delete(s.feeds, f.name)
	f.mu.Lock()
	head := f.head()
	f.mu.Unlock()
	if head > 0 {
		// Tombstone the cursor head so a future incarnation under this
		// name continues the domain (see Server.tombs). Wholesale clear
		// keeps an adversarial feed namespace from growing this forever.
		if len(s.tombs) >= 4*s.cfg.MaxFeeds {
			clear(s.tombs)
		}
		s.tombs[f.name] = head
	}
	s.mu.Unlock()
	s.evictedTotal.Add(1)
	f.wake() // long-pollers observe f.evicted and answer 410
}
