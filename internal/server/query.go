package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro/internal/storage/archive"
)

// The historical query endpoints. They read the LSM-indexed archive, never
// the live feeds: results cover everything persisted to the convoy log
// (minus the latest batches still in the archiver's queue), and the
// handlers share no locks with the ingest path.

// archivedConvoyJSON is one archived convoy with the feed it was mined
// from — the /v1/query result element.
type archivedConvoyJSON struct {
	Feed  string  `json:"feed"`
	Objs  []int32 `json:"objs"`
	Start int32   `json:"start"`
	End   int32   `json:"end"`
}

// queryResponse is one page of /v1/query results. Cursor is the opaque
// resume token: present exactly when More, pass it back verbatim as
// ?cursor= to continue. Scanned counts the index entries the page
// examined (the budget currency).
type queryResponse struct {
	Convoys []archivedConvoyJSON `json:"convoys"`
	Cursor  string               `json:"cursor,omitempty"`
	More    bool                 `json:"more"`
	Scanned int                  `json:"scanned"`
}

// queryParams parses the controls shared by all three query endpoints:
// limit, cursor, min_size, min_dur, feed. Returns ok=false after writing
// the 400.
func (s *Server) queryParams(w http.ResponseWriter, r *http.Request) (archive.Query, bool) {
	q := archive.Query{Budget: s.cfg.QueryBudget}
	get := r.URL.Query()
	for name, dst := range map[string]*int{"limit": &q.Limit, "min_size": &q.MinSize, "min_dur": &q.MinDur} {
		if v := get.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, codeBadParam, "bad "+name)
				return archive.Query{}, false
			}
			*dst = n
		}
	}
	if v := get.Get("limit"); v != "" && q.Limit > archive.MaxLimit {
		writeError(w, http.StatusBadRequest, codeBadParam,
			fmt.Sprintf("limit %d exceeds the maximum %d", q.Limit, archive.MaxLimit))
		return archive.Query{}, false
	}
	cur, err := archive.ParseCursor(get.Get("cursor"))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadCursor, "bad cursor")
		return archive.Query{}, false
	}
	q.Cursor = cur
	q.Feed = get.Get("feed")
	return q, true
}

// parseTick parses an int32 query parameter, substituting def when absent.
func parseTick(get map[string][]string, name string, def int32) (int32, error) {
	vs := get[name]
	if len(vs) == 0 || vs[0] == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(vs[0], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad %s", name)
	}
	return int32(n), nil
}

// queryArchive guards the common preconditions and writes the page.
func (s *Server) queryArchive(w http.ResponseWriter,
	run func() (archive.Result, error)) {
	if s.arch == nil {
		writeError(w, http.StatusNotImplemented, codeNoArchive,
			"historical queries need an archive; start convoyd with -archive-dir")
		return
	}
	res, err := run()
	if err != nil {
		// Every user-input error is rejected during parameter parsing, so
		// an error out of the archive itself is internal (a records-file
		// or index read failure), never the caller's fault.
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	out := queryResponse{
		Convoys: make([]archivedConvoyJSON, 0, len(res.Records)),
		More:    res.More,
		Scanned: res.Scanned,
	}
	if res.More {
		out.Cursor = res.Next.String()
	}
	for _, rec := range res.Records {
		out.Convoys = append(out.Convoys, archivedConvoyJSON{
			Feed:  rec.Feed,
			Objs:  append([]int32(nil), rec.Convoy.Objs...),
			Start: rec.Convoy.Start,
			End:   rec.Convoy.End,
		})
	}
	writeJSON(w, out)
}

// handleQueryTime serves GET /v1/query/time: archived convoys whose
// lifespan overlaps the inclusive tick interval [?from, ?to] (defaults:
// the whole axis).
func (s *Server) handleQueryTime(w http.ResponseWriter, r *http.Request) {
	q, ok := s.queryParams(w, r)
	if !ok {
		return
	}
	get := r.URL.Query()
	from, err := parseTick(get, "from", math.MinInt32)
	if err == nil {
		var to int32
		if to, err = parseTick(get, "to", math.MaxInt32); err == nil {
			if from > to {
				writeError(w, http.StatusBadRequest, codeBadParam,
					fmt.Sprintf("empty interval [%d,%d]", from, to))
				return
			}
			s.queryArchive(w, func() (archive.Result, error) { return s.arch.QueryTime(from, to, q) })
			return
		}
	}
	writeError(w, http.StatusBadRequest, codeBadParam, err.Error())
}

// handleQueryObject serves GET /v1/query/object: archived convoys
// containing the object ?oid (required).
func (s *Server) handleQueryObject(w http.ResponseWriter, r *http.Request) {
	q, ok := s.queryParams(w, r)
	if !ok {
		return
	}
	v := r.URL.Query().Get("oid")
	if v == "" {
		writeError(w, http.StatusBadRequest, codeBadParam, "missing oid")
		return
	}
	oid, err := strconv.ParseInt(v, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadParam, "bad oid")
		return
	}
	s.queryArchive(w, func() (archive.Result, error) { return s.arch.QueryObject(int32(oid), q) })
}

// handleQueryConvoys serves GET /v1/query/convoys: archived convoys with
// at least ?min_size objects and ?min_dur ticks, in ascending size order.
func (s *Server) handleQueryConvoys(w http.ResponseWriter, r *http.Request) {
	q, ok := s.queryParams(w, r)
	if !ok {
		return
	}
	s.queryArchive(w, func() (archive.Result, error) { return s.arch.QueryConvoys(q) })
}

// retentionRequest is the POST /v1/admin/retention body. Before is a
// pointer so "absent" and "tick 0" are distinguishable.
type retentionRequest struct {
	Before *int32 `json:"before"`
}

// retentionResponse reports what the expiry did: the number of convoys
// removed and the watermark now in force (which can exceed the requested
// tick when a previous call set a higher one — the watermark is
// monotonic).
type retentionResponse struct {
	Expired int64 `json:"expired"`
	Before  int32 `json:"before"`
}

// maxRetentionBody bounds the admin request body.
const maxRetentionBody = 1 << 16

// handleRetention serves POST /v1/admin/retention: expire archived
// convoys whose End tick precedes the requested one. The expiry runs
// synchronously under the archive's write lock (AddBatch from the
// archiver loop simply waits; retention never reorders its appends), and
// a failure latches the archive broken exactly like a write error —
// a half-applied expiry must not keep accepting records it might
// resurrect. The convoy log is never touched: a rebuild from the full
// log re-drops everything below the durable watermark.
func (s *Server) handleRetention(w http.ResponseWriter, r *http.Request) {
	if s.arch == nil {
		writeError(w, http.StatusNotImplemented, codeNoArchive,
			"retention needs an archive; start convoyd with -archive-dir")
		return
	}
	if s.archBroken.Load() {
		writeError(w, http.StatusInternalServerError, codeInternal, "archive disabled by an earlier write error")
		return
	}
	var req retentionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRetentionBody)).Decode(&req); err != nil || req.Before == nil {
		writeError(w, http.StatusBadRequest, codeBadParam, `body must be {"before": <tick>}`)
		return
	}
	expired, err := s.arch.Expire(*req.Before)
	if err != nil {
		s.archBroken.Store(true)
		writeError(w, http.StatusInternalServerError, codeInternal, "retention: "+err.Error())
		return
	}
	st := s.arch.Stats()
	resp := retentionResponse{Expired: expired, Before: *req.Before}
	if st.ExpiredBefore != nil {
		resp.Before = *st.ExpiredBefore
	}
	writeJSON(w, resp)
}

// ArchiveInfo reports what the startup backfill did: the number of log
// records archived and whether a diverged archive was rebuilt. enabled is
// false when no archive is configured.
func (s *Server) ArchiveInfo() (backfilled int64, rebuilt, enabled bool) {
	return s.backfilled, s.archRebuilt, s.arch != nil
}
