package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	convoy "repro"
	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

// testParams matches the minetest scenario calibration.
var testParams = convoy.Params{M: 3, K: 4, Eps: minetest.Eps}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Params == (convoy.Params{}) {
		cfg.Params = testParams
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshal %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// snapshotsOf converts dataset ticks [ts, te] into wire snapshots.
func snapshotsOf(ds *model.Dataset, ts, te int32) []snapshotJSON {
	var out []snapshotJSON
	for tt := ts; tt <= te; tt++ {
		sn := snapshotJSON{T: tt}
		for _, p := range ds.Snapshot(tt) {
			sn.Positions = append(sn.Positions, positionJSON{OID: p.OID, X: p.X, Y: p.Y})
		}
		out = append(out, sn)
	}
	return out
}

// ingestDataset streams a dataset into a feed in batches of batchTicks.
func ingestDataset(t *testing.T, base, feed string, ds *model.Dataset, batchTicks int) {
	t.Helper()
	ts, te := ds.TimeRange()
	snaps := snapshotsOf(ds, ts, te)
	for i := 0; i < len(snaps); i += batchTicks {
		end := min(i+batchTicks, len(snaps))
		code, body := postJSON(t, base+"/v1/feeds/"+feed+"/snapshots",
			ingestRequest{Snapshots: snaps[i:end]})
		if code != http.StatusAccepted {
			t.Fatalf("ingest %s: status %d: %s", feed, code, body)
		}
	}
}

// flushFeed flushes a feed and returns the final maximal convoy set.
func flushFeed(t *testing.T, base, feed string) []model.Convoy {
	t.Helper()
	code, body := postJSON(t, base+"/v1/feeds/"+feed+"/flush", nil)
	if code != http.StatusOK {
		t.Fatalf("flush %s: status %d: %s", feed, code, body)
	}
	var resp convoysResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Flushed {
		t.Fatalf("flush %s: response not flushed", feed)
	}
	out := make([]model.Convoy, 0, len(resp.Convoys))
	for _, c := range resp.Convoys {
		out = append(out, model.Convoy{Objs: model.NewObjSet(c.Objs...), Start: c.Start, End: c.End})
	}
	return out
}

func batchPCCD(t *testing.T, ds *model.Dataset) []model.Convoy {
	t.Helper()
	res, err := convoy.MineDataset(ds, testParams, &convoy.Options{Algorithm: convoy.PCCD})
	if err != nil {
		t.Fatal(err)
	}
	return res.Convoys
}

func TestServeSingleFeedMatchesBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 4})
	ds := minetest.Random(1, 10, 16)
	ingestDataset(t, ts.URL, "tokyo", ds, 3)
	got := flushFeed(t, ts.URL, "tokyo")
	want := batchPCCD(t, ds)
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("served %v != batch %v", got, want)
	}
}

// TestConcurrentFeeds serves 12 concurrent feeds (the acceptance bar is 8)
// and checks every feed's flushed output equals its batch-mined reference —
// per-feed determinism under concurrency. Run under -race in CI.
func TestConcurrentFeeds(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 4, QueueLen: 16})
	const feeds = 12
	var wg sync.WaitGroup
	errs := make(chan error, feeds)
	for i := 0; i < feeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			feed := fmt.Sprintf("region-%d", i)
			ds := minetest.Random(int64(i), 10, 15)
			rng := rand.New(rand.NewSource(int64(i) * 77))
			dts, dte := ds.TimeRange()
			snaps := snapshotsOf(ds, dts, dte)
			for j := 0; j < len(snaps); {
				n := 1 + rng.Intn(4)
				end := min(j+n, len(snaps))
				code, body := postJSON(t, ts.URL+"/v1/feeds/"+feed+"/snapshots",
					ingestRequest{Snapshots: snaps[j:end]})
				if code == http.StatusTooManyRequests {
					time.Sleep(time.Millisecond) // backpressure: retry
					continue
				}
				if code != http.StatusAccepted {
					errs <- fmt.Errorf("feed %s: status %d: %s", feed, code, body)
					return
				}
				j = end
			}
			got := flushFeed(t, ts.URL, feed)
			want := batchPCCD(t, ds)
			if !model.ConvoysEqual(got, want) {
				errs <- fmt.Errorf("feed %s: served %v != batch %v", feed, got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestReorderWindow shuffles each dataset's ticks within a bounded distance
// of their in-order position and serves them through a matching reordering
// window; the output must equal the in-order batch reference.
func TestReorderWindow(t *testing.T) {
	const window = 5
	_, ts := newTestServer(t, Config{Shards: 2, Window: window})
	ds := minetest.Random(7, 10, 20)
	dts, dte := ds.TimeRange()
	snaps := snapshotsOf(ds, dts, dte)
	// Bounded shuffle: permute within consecutive blocks of `window` ticks,
	// so no tick is preceded by a tick ≥ window ahead of it and nothing can
	// fall behind the watermark.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < len(snaps); i += window {
		block := snaps[i:min(i+window, len(snaps))]
		rng.Shuffle(len(block), func(a, b int) { block[a], block[b] = block[b], block[a] })
	}
	for _, sn := range snaps {
		code, body := postJSON(t, ts.URL+"/v1/feeds/shuffled/snapshots",
			ingestRequest{Snapshots: []snapshotJSON{sn}})
		if code != http.StatusAccepted {
			t.Fatalf("ingest: status %d: %s", code, body)
		}
	}
	got := flushFeed(t, ts.URL, "shuffled")
	want := batchPCCD(t, ds)
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("reordered serve %v != batch %v", got, want)
	}
}

// TestLateSnapshotsDropped sends a snapshot behind the watermark and checks
// it is counted as late, not mined.
func TestLateSnapshotsDropped(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 1})
	for _, tt := range []int32{0, 1, 2} {
		postJSON(t, ts.URL+"/v1/feeds/f/snapshots", ingestRequest{Snapshots: []snapshotJSON{{T: tt}}})
	}
	postJSON(t, ts.URL+"/v1/feeds/f/snapshots", ingestRequest{Snapshots: []snapshotJSON{{T: 1}}}) // late
	flushFeed(t, ts.URL, "f")
	st := srv.Stats()
	fs := st.Feeds["f"]
	if fs.LateDropped != 1 {
		t.Fatalf("LateDropped = %d, want 1 (stats: %+v)", fs.LateDropped, fs)
	}
	if fs.TicksMined != 3 {
		t.Fatalf("TicksMined = %d, want 3", fs.TicksMined)
	}
}

// TestGapClosesConvoysLongPoll checks the streaming contract end to end: a
// timestamp gap closes the open convoy, and a long-poll on the convoys
// endpoint sees it without flushing the feed.
func TestGapClosesConvoysLongPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Params: convoy.Params{M: 2, K: 3, Eps: minetest.Eps}, Shards: 2})
	pair := []positionJSON{{OID: 1, X: 0}, {OID: 2, X: 1}}
	var snaps []snapshotJSON
	for _, tt := range []int32{0, 1, 2, 3, 4} {
		snaps = append(snaps, snapshotJSON{T: tt, Positions: pair})
	}
	snaps = append(snaps, snapshotJSON{T: 100, Positions: pair}) // gap closes [0,4]
	code, body := postJSON(t, ts.URL+"/v1/feeds/gappy/snapshots", ingestRequest{Snapshots: snaps})
	if code != http.StatusAccepted {
		t.Fatalf("ingest: status %d: %s", code, body)
	}
	var resp convoysResponse
	if code := getJSON(t, ts.URL+"/v1/feeds/gappy/convoys?cursor=0&wait=5s", &resp); code != http.StatusOK {
		t.Fatalf("convoys: status %d", code)
	}
	want := model.NewConvoy(model.NewObjSet(1, 2), 0, 4)
	if len(resp.Convoys) != 1 {
		t.Fatalf("closed convoys = %+v, want exactly one", resp.Convoys)
	}
	got := model.Convoy{Objs: model.NewObjSet(resp.Convoys[0].Objs...), Start: resp.Convoys[0].Start, End: resp.Convoys[0].End}
	if !got.Equal(want) {
		t.Fatalf("closed = %v, want %v", got, want)
	}
	if resp.Flushed {
		t.Fatal("feed reported flushed before flush")
	}
}

// TestBackpressure fills a stalled shard's queue and checks ingest fails
// with 429 until the shard drains.
func TestBackpressure(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	srv, err := New(Config{
		Params:   testParams,
		Shards:   1,
		QueueLen: 2,
		testHook: func(int) {
			// Stall the actor on its first message until released.
			once.Do(func() { <-block })
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	one := ingestRequest{Snapshots: []snapshotJSON{{T: 0, Positions: []positionJSON{{OID: 1}}}}}
	// First message stalls in the actor; two more fill the queue.
	saw429 := false
	for i := 0; i < 10; i++ {
		one.Snapshots[0].T = int32(i)
		code, _ := postJSON(t, ts.URL+"/v1/feeds/bp/snapshots", one)
		if code == http.StatusTooManyRequests {
			saw429 = true
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("ingest %d: unexpected status %d", i, code)
		}
	}
	if !saw429 {
		t.Fatal("never saw 429 with a stalled shard and QueueLen=2")
	}
	close(block) // drain
	flushFeed(t, ts.URL, "bp")
	if st := srv.Stats(); st.Shards[0].QueueLen != 0 {
		t.Fatalf("queue not drained: %+v", st.Shards[0])
	}
}

// TestPersistSink checks the periodic persistence path: closed convoys land
// in the convoy log, and Close writes the tail.
func TestPersistSink(t *testing.T) {
	path := t.TempDir() + "/closed.k2cl"
	srv, err := New(Config{
		Params:       convoy.Params{M: 2, K: 3, Eps: minetest.Eps},
		Shards:       2,
		PersistPath:  path,
		PersistEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pair := []positionJSON{{OID: 1, X: 0}, {OID: 2, X: 1}}
	var snaps []snapshotJSON
	for _, tt := range []int32{0, 1, 2, 3, 4} {
		snaps = append(snaps, snapshotJSON{T: tt, Positions: pair})
	}
	postJSON(t, ts.URL+"/v1/feeds/persisted/snapshots", ingestRequest{Snapshots: snaps})
	want := flushFeed(t, ts.URL, "persisted")
	if len(want) == 0 {
		t.Fatal("expected at least one convoy")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := storage.ReadConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]model.Convoy, 0, len(recs))
	for _, r := range recs {
		if r.Feed != "persisted" {
			t.Fatalf("unexpected feed %q in sink", r.Feed)
		}
		if storage.IsFlushMarker(r.Convoy) {
			continue // terminal-state sentinel, not a convoy
		}
		got = append(got, r.Convoy)
	}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("sink %v != flushed %v", got, want)
	}
}

// TestFlushSemantics: flush is idempotent, and ingest after flush is 409.
func TestFlushSemantics(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	ds := minetest.Random(3, 8, 12)
	ingestDataset(t, ts.URL, "done", ds, 4)
	first := flushFeed(t, ts.URL, "done")
	second := flushFeed(t, ts.URL, "done")
	if !model.ConvoysEqual(first, second) {
		t.Fatalf("flush not idempotent: %v then %v", first, second)
	}
	code, _ := postJSON(t, ts.URL+"/v1/feeds/done/snapshots",
		ingestRequest{Snapshots: []snapshotJSON{{T: 999}}})
	if code != http.StatusConflict {
		t.Fatalf("ingest after flush: status %d, want 409", code)
	}
}

func TestUnknownFeedAndBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1})
	if code := getJSON(t, ts.URL+"/v1/feeds/nope/convoys", nil); code != http.StatusNotFound {
		t.Fatalf("unknown feed convoys: status %d, want 404", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/nope/flush", nil); code != http.StatusNotFound {
		t.Fatalf("unknown feed flush: status %d, want 404", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/f/snapshots", ingestRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/v1/feeds/f/snapshots", "application/json",
		bytes.NewBufferString(`{"snapshots":[{"t":0,"positions":[{"oid":1,"x":1e999}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-finite coordinate: status %d, want 400", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
}

// TestFeedLimit: creating feeds beyond MaxFeeds fails with 429 while
// existing feeds keep working.
func TestFeedLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, MaxFeeds: 2})
	one := ingestRequest{Snapshots: []snapshotJSON{{T: 0, Positions: []positionJSON{{OID: 1}}}}}
	for _, feed := range []string{"a", "b"} {
		if code, body := postJSON(t, ts.URL+"/v1/feeds/"+feed+"/snapshots", one); code != http.StatusAccepted {
			t.Fatalf("feed %s: status %d: %s", feed, code, body)
		}
	}
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/c/snapshots", one); code != http.StatusTooManyRequests {
		t.Fatalf("feed beyond cap: status %d, want 429", code)
	}
	one.Snapshots[0].T = 1
	if code, _ := postJSON(t, ts.URL+"/v1/feeds/a/snapshots", one); code != http.StatusAccepted {
		t.Fatal("existing feed rejected after cap hit")
	}
}

// TestStatsEndpoint smoke-tests /v1/stats JSON.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 3})
	ds := minetest.Random(5, 8, 10)
	ingestDataset(t, ts.URL, "statsy", ds, 5)
	flushFeed(t, ts.URL, "statsy")
	var st Stats
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(st.Shards))
	}
	fs, ok := st.Feeds["statsy"]
	if !ok || fs.TicksMined == 0 {
		t.Fatalf("missing feed stats: %+v", st.Feeds)
	}
}
