package server

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring mapping feed keys onto shard indices.
// Each shard owns `replicas` virtual points on a uint64 circle; a feed is
// owned by the shard whose point follows the feed's hash clockwise.
//
// Consistent hashing (rather than hash-mod-N) keeps feed→shard assignments
// mostly stable when the operator changes the shard count between restarts:
// growing from S to S+1 shards moves only ~1/(S+1) of the feeds, so a
// persisted convoy log keyed by feed stays colocated with its shard's
// output for the bulk of the keyspace.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

// defaultReplicas is the virtual-node count per shard. A few hundred points
// per shard keeps every shard's share of the keyspace within a small factor
// of the mean (ring construction is a one-off cost at startup).
const defaultReplicas = 512

func newRing(shards, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{points: make([]ringPoint, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			h := hashKey("shard-" + strconv.Itoa(s) + "-vnode-" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.shard < b.shard // stable tie-break keeps lookup deterministic
	})
	return r
}

// lookup returns the shard owning key.
func (r *ring) lookup(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
