package server

import (
	"sync"
	"sync/atomic"

	convoy "repro"
)

// feed is one trajectory feed (a dataset/region key). Its mining state —
// the StreamMiner, the reordering buffer, and the published-convoy
// bookkeeping used to detect novelty — is owned exclusively by the shard
// actor the feed hashes to; no lock protects it and none is needed.
//
// The published state below mu is the read side: HTTP handlers serve
// long-polls and stats from it, and the persistence tick drains it.
//
// A feed's published history lives in an absolute cursor domain: convoys
// are numbered from 0 in publish order, but only the suffix
// [start, start+len(closed)) is resident — the prefix below start
// (truncatedBefore) was persisted to the convoy log and dropped from
// memory. Queries with a cursor below start answer 410 Gone.
type feed struct {
	name  string
	shard int
	// pattern is the movement-pattern family this feed mines (negotiated at
	// creation, immutable for the feed's lifetime — recovery restores it
	// from the convoy log and mismatching ingests are rejected).
	pattern convoy.Pattern

	// --- owned by the shard actor goroutine, unguarded -------------------
	miner   convoy.PatternMiner
	buf     *reorder
	pubSeen map[string]bool // pattern keys already published (or recovered from the log)
	done    bool            // feed was flushed; further ingest is dropped

	// --- lifecycle coordination (see lifecycle.go) -----------------------
	// pending counts shard messages enqueued but not yet fully processed;
	// eviction requires it to be zero so no in-queue work can outlive the
	// feed. evicted flips once, under the server's write lock; enqueue
	// checks it under the read lock, so the two can never miss each other.
	// lastActive is the unix-nano time of the latest ingest, query or
	// flush touching the feed.
	// waiters counts long-polls currently blocked on this feed; the sweep
	// treats a waited-on feed as active, so a poller whose wait exceeds
	// FeedTTL cannot have the feed evicted out from under it.
	pending    atomic.Int64
	waiters    atomic.Int64
	evicted    atomic.Bool
	lastActive atomic.Int64

	// bucket is the feed's ingest token bucket (nil when Config.IngestRate
	// is 0). Internally synchronized; set once at feed creation.
	bucket *tokenBucket

	// --- published state, guarded by mu ----------------------------------
	mu     sync.Mutex
	closed []convoy.PatternResult // resident history suffix: absolute indices [start, head)
	start  int                    // absolute index of closed[0] (truncatedBefore)
	// persisted is the at-most-once append guard: it advances before the
	// write so a sink error can never re-append. durable advances only
	// after a successful Sync covering the records, so it is the safe
	// bound for anything that discards in-memory state (eviction,
	// truncation). Invariant: start ≤ durable ≤ persisted ≤ head.
	persisted int
	durable   int
	flushed   bool
	// flushLogged records that the flush sentinel reached the log, making
	// the flushed state restart-durable (written by persistAll once the
	// whole history is durable).
	flushLogged bool
	final       []convoy.PatternResult // full maximal set, valid once flushed
	notify      chan struct{}          // closed and replaced on every publish/flush/evict
	stats       FeedStats
}

// FeedStats are the per-feed counters exposed by /v1/stats.
type FeedStats struct {
	Pattern         string `json:"pattern"`          // the feed's pattern family
	SnapshotsIn     int64  `json:"snapshots_in"`     // snapshots accepted into the buffer
	TicksMined      int64  `json:"ticks_mined"`      // sealed ticks fed to the miner
	LateDropped     int64  `json:"late_dropped"`     // snapshots behind the watermark
	FlushedDropped  int64  `json:"flushed_dropped"`  // snapshots racing an earlier flush
	ClosedTotal     int64  `json:"closed_total"`     // head: convoys ever published (incl. recovered)
	TruncatedBefore int    `json:"truncated_before"` // lower bound of the live cursor domain
	ClosedInMemory  int    `json:"closed_in_memory"` // resident history length (head − truncated_before)
	PendingTicks    int    `json:"pending_ticks"`    // buffered, not yet sealed
}

func newFeed(name string, shard int, pat convoy.Pattern, pp convoy.PatternParams, window int32) (*feed, error) {
	m, err := convoy.NewPatternMiner(pat, pp)
	if err != nil {
		return nil, err
	}
	f := &feed{
		name:    name,
		shard:   shard,
		pattern: pat,
		miner:   m,
		buf:     newReorder(window),
		pubSeen: map[string]bool{},
		notify:  make(chan struct{}),
	}
	f.stats.Pattern = string(pat)
	return f, nil
}

// head is the absolute end of the published history. Caller holds f.mu.
func (f *feed) head() int { return f.start + len(f.closed) }

// touch records activity for TTL eviction.
func (f *feed) touch(nowNanos int64) { f.lastActive.Store(nowNanos) }

// publish appends newly closed patterns to the published list and wakes all
// long-pollers. Called only from the owning shard actor.
func (f *feed) publish(cs []convoy.PatternResult) {
	fresh := cs[:0:0]
	for _, c := range cs {
		if !f.pubSeen[c.PatternKey()] {
			f.pubSeen[c.PatternKey()] = true
			fresh = append(fresh, c)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.PendingTicks = f.buf.pendingTicks()
	if len(fresh) == 0 {
		return
	}
	f.closed = append(f.closed, fresh...)
	f.stats.ClosedTotal = int64(f.head())
	f.stats.ClosedInMemory = len(f.closed)
	close(f.notify)
	f.notify = make(chan struct{})
}

// markFlushed records the final result set and wakes all long-pollers.
// Called only from the owning shard actor.
func (f *feed) markFlushed(final []convoy.PatternResult) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flushed = true
	f.final = final
	f.stats.PendingTicks = 0
	close(f.notify)
	f.notify = make(chan struct{})
}

// wake unblocks every long-poller without publishing anything; eviction
// uses it so pollers observe f.evicted instead of sleeping forever.
func (f *feed) wake() {
	f.mu.Lock()
	defer f.mu.Unlock()
	close(f.notify)
	f.notify = make(chan struct{})
}

// truncateTo drops the resident history below the absolute index upTo
// (callers pass a durability watermark, never more than f.durable). The
// remainder is copied to a fresh slice so the old backing array is
// released. Returns the number of convoys dropped.
func (f *feed) truncateTo(upTo int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if upTo > f.durable {
		upTo = f.durable // never discard anything not yet fsynced
	}
	drop := upTo - f.start
	if drop <= 0 {
		return 0
	}
	rest := make([]convoy.PatternResult, len(f.closed)-drop)
	copy(rest, f.closed[drop:])
	f.closed = rest
	f.start = upTo
	f.stats.TruncatedBefore = f.start
	f.stats.ClosedInMemory = len(f.closed)
	return drop
}

// snapshotStats returns a consistent copy of the published counters.
func (f *feed) snapshotStats() (FeedStats, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats, f.flushed
}
