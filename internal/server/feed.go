package server

import (
	"sync"

	convoy "repro"
)

// feed is one trajectory feed (a dataset/region key). Its mining state —
// the StreamMiner, the reordering buffer, and the published-convoy
// bookkeeping used to detect novelty — is owned exclusively by the shard
// actor the feed hashes to; no lock protects it and none is needed.
//
// The published state below mu is the read side: HTTP handlers serve
// long-polls and stats from it, and the persistence tick drains it.
type feed struct {
	name  string
	shard int

	// --- owned by the shard actor goroutine, unguarded -------------------
	miner   *convoy.StreamMiner
	buf     *reorder
	pubSeen map[string]bool // convoy keys already published
	done    bool            // feed was flushed; further ingest is dropped

	// --- published state, guarded by mu ----------------------------------
	mu        sync.Mutex
	closed    []convoy.Convoy // every closed convoy, in discovery order
	flushed   bool
	final     []convoy.Convoy // full maximal set, valid once flushed
	notify    chan struct{}   // closed and replaced on every publish
	persisted int             // prefix of closed already in the sink
	stats     FeedStats
}

// FeedStats are the per-feed counters exposed by /v1/stats.
type FeedStats struct {
	SnapshotsIn    int64 `json:"snapshots_in"`    // snapshots accepted into the buffer
	TicksMined     int64 `json:"ticks_mined"`     // sealed ticks fed to the miner
	LateDropped    int64 `json:"late_dropped"`    // snapshots behind the watermark
	FlushedDropped int64 `json:"flushed_dropped"` // snapshots racing an earlier flush
	ClosedTotal    int64 `json:"closed_total"`    // convoys published so far
	PendingTicks   int   `json:"pending_ticks"`   // buffered, not yet sealed
}

func newFeed(name string, shard int, p convoy.Params, window int32) (*feed, error) {
	m, err := convoy.NewStreamMiner(p)
	if err != nil {
		return nil, err
	}
	return &feed{
		name:    name,
		shard:   shard,
		miner:   m,
		buf:     newReorder(window),
		pubSeen: map[string]bool{},
		notify:  make(chan struct{}),
	}, nil
}

// publish appends newly closed convoys to the published list and wakes all
// long-pollers. Called only from the owning shard actor.
func (f *feed) publish(cs []convoy.Convoy) {
	fresh := cs[:0:0]
	for _, c := range cs {
		if !f.pubSeen[c.Key()] {
			f.pubSeen[c.Key()] = true
			fresh = append(fresh, c)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.PendingTicks = f.buf.pendingTicks()
	if len(fresh) == 0 {
		return
	}
	f.closed = append(f.closed, fresh...)
	f.stats.ClosedTotal = int64(len(f.closed))
	close(f.notify)
	f.notify = make(chan struct{})
}

// markFlushed records the final result set and wakes all long-pollers.
// Called only from the owning shard actor.
func (f *feed) markFlushed(final []convoy.Convoy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flushed = true
	f.final = final
	f.stats.PendingTicks = 0
	close(f.notify)
	f.notify = make(chan struct{})
}

// snapshotStats returns a consistent copy of the published counters.
func (f *feed) snapshotStats() (FeedStats, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats, f.flushed
}
