// Package server implements convoyd, the sharded streaming convoy-mining
// service: many concurrent trajectory feeds arrive over HTTP (JSON ingest),
// each feed key is routed by consistent hashing to one of a configurable
// number of shard actors, and each actor owns the StreamMiners of its
// feeds. Closed convoys are queryable per feed (long-poll or flush) and are
// periodically persisted to the closed-convoy sink in internal/storage.
//
// The concurrency design is actor-per-shard:
//
//   - the HTTP layer parses and routes, but never mines;
//   - a bounded ingest queue per shard gives backpressure (enqueue fails
//     with ErrBackpressure once the queue is full and the configured wait
//     has elapsed; the HTTP layer maps that to 429);
//   - one goroutine per shard consumes its queue, so per-feed mining state
//     is single-owner and lock-free, and per-feed output is deterministic:
//     it depends only on the sequence of batches for that feed, never on
//     scheduling;
//   - a bounded reordering buffer per feed tolerates out-of-order snapshot
//     arrival within a configurable time window (see reorder.go).
//
// Long-lived serving is memory-bounded by the feed lifecycle (see
// lifecycle.go): idle feeds are evicted after FeedTTL, persisted history is
// truncated from memory, and a restart replays the convoy log to restore
// cursor positions and dedup state.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	convoy "repro"
	"repro/internal/pool"
	"repro/internal/storage"
	"repro/internal/storage/archive"
)

// ErrBackpressure is returned by enqueue when a shard's ingest queue stayed
// full for the configured wait; the HTTP layer maps it to 429.
var ErrBackpressure = errors.New("server: shard ingest queue full")

// ErrClosed is returned once the server is shutting down.
var ErrClosed = errors.New("server: closed")

// ErrFeedLimit is returned when creating one more feed would exceed
// Config.MaxFeeds; the HTTP layer maps it to 429.
var ErrFeedLimit = errors.New("server: feed limit reached")

// ErrFeedEvicted is returned when a request raced the TTL eviction of its
// feed; the HTTP layer maps it to 410 (ingest retries with a fresh feed).
var ErrFeedEvicted = errors.New("server: feed evicted")

// ErrPatternMismatch is returned when an ingest names a pattern different
// from the one the feed was created with; the HTTP layer maps it to 409
// pattern_mismatch. A feed's pattern is immutable — flush (or evict) the
// feed and recreate it to change families.
var ErrPatternMismatch = errors.New("server: feed mines a different pattern")

// Config tunes a convoyd server. The zero value of each field selects the
// documented default.
type Config struct {
	// Params are the convoy parameters every feed is mined with. Flock
	// feeds reuse M and K; moving-cluster feeds reuse M, K and Eps.
	Params convoy.Params
	// FlockR is the disk radius flock-pattern feeds are mined with
	// (default Params.Eps).
	FlockR float64
	// MCTheta is the minimum consecutive Jaccard overlap moving-cluster
	// feeds are mined with, in (0, 1] (default 0.5).
	MCTheta float64
	// Shards is the number of shard actors (default 8).
	Shards int
	// QueueLen is the per-shard ingest queue capacity, in batches
	// (default 128).
	QueueLen int
	// Window is the reordering window in ticks: snapshots arriving out of
	// order within the window are resequenced; later ones are dropped as
	// late (default 0 = strict in-order ingest).
	Window int32
	// EnqueueWait bounds how long an ingest blocks waiting for queue space
	// before failing with ErrBackpressure (default 0 = fail immediately).
	EnqueueWait time.Duration
	// PersistPath, when non-empty, is the closed-convoy sink: every closed
	// convoy is appended to this log by a periodic background tick. If the
	// log already exists, New replays it first — recovered feeds start with
	// their cursor domain fully truncated (everything is in the log) and
	// with the logged convoy keys preloaded for dedup, so re-ingesting
	// already-persisted data does not duplicate log records.
	PersistPath string
	// PersistEvery is the persistence interval (default 2s).
	PersistEvery time.Duration
	// MaxFeeds caps the number of live feeds; ingest to a new feed key
	// beyond the cap fails with ErrFeedLimit (default 65536). Each feed
	// owns a miner and result history, so an unbounded feed namespace
	// would let one misbehaving client exhaust memory. TTL eviction frees
	// slots under the cap.
	MaxFeeds int
	// Replicas is the virtual-node count per shard on the consistent-hash
	// ring (default 512, see ring.go); tests lower it.
	Replicas int
	// FeedTTL, when positive, evicts feeds with no ingest, query, or flush
	// activity for this long; a blocked long-poll counts as activity for
	// as long as it waits. When a sink is configured a feed is only
	// evicted once its whole history is durably in the log — if the sink
	// breaks, feeds with unsynced history are simply never evicted (data
	// wins over the memory bound; restart to recover). Without a sink,
	// eviction drops the idle feed's state outright.
	// Eviction also drops the feed's dedup keys, so data re-ingested after
	// an eviction can append duplicate records to the log — compaction
	// (storage.CompactConvoyLog) removes them offline. 0 disables
	// eviction.
	FeedTTL time.Duration
	// EvictEvery is the eviction sweep interval (default FeedTTL/4,
	// at least 10ms).
	EvictEvery time.Duration
	// KeepHistory disables truncation of persisted history. By default,
	// once a feed's closed convoys have been persisted to the sink they
	// are dropped from memory and the feed's live cursor domain becomes
	// [truncatedBefore, head); queries with a cursor below truncatedBefore
	// answer 410 Gone and must restart from truncatedBefore (or replay the
	// log). With KeepHistory (or without a sink) the full history stays
	// resident and every cursor remains valid.
	KeepHistory bool
	// ArchiveDir, when non-empty, enables the historical query archive
	// (GET /v1/query/*): every convoy persisted to the sink is also
	// indexed in an LSM-backed archive under this directory, populated
	// asynchronously from the persist path and backfilled from the
	// existing log at startup. Requires PersistPath — the log is the
	// archive's source of truth.
	ArchiveDir string
	// ArchiveCache is the combined in-memory write-buffer budget of the
	// archive's three secondary indexes, in bytes (default 12 MiB).
	ArchiveCache int
	// QueryBudget caps the index entries one /v1/query page may examine
	// before returning a resume cursor (default archive.DefaultBudget).
	// It bounds the cost of a page whose filter rejects almost every
	// entry.
	QueryBudget int
	// IngestRate, when positive, rate-limits each feed's ingest to this
	// many snapshots per second via a token bucket; excess is shed with
	// 429 rate_limited + Retry-After before it reaches the shard queue.
	// 0 disables per-feed rate limiting.
	IngestRate float64
	// IngestBurst is the token bucket's capacity in snapshots (default
	// 2×IngestRate, at least 1): the largest burst one feed may push at
	// once after idling.
	IngestBurst int
	// BreakerThreshold, when positive, arms a circuit breaker per shard:
	// after this many consecutive queue-full rejections the shard's ingest
	// is shed outright with 429 breaker_open for BreakerCooldown, then a
	// single probe decides whether to close it again. 0 disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds before probing
	// (default 1s).
	BreakerCooldown time.Duration
	// Retention, when positive, bounds the archive's history: at every
	// archive flush tick, convoys whose End tick has fallen more than
	// Retention ticks behind the newest archived End are expired
	// (archive.Expire keeps End >= maxEnd−Retention+1). Expired convoys
	// leave the archive but never the convoy log. Requires ArchiveDir;
	// 0 keeps everything. POST /v1/admin/retention expires on demand
	// with an absolute tick, independent of this setting.
	Retention int32

	// testHook, when set (same-package tests only), runs at the start of
	// every shard-actor message; tests use it to stall a shard and exercise
	// backpressure. It must be set before New so actors never race on it.
	testHook func(shardID int)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 128
	}
	if c.Window < 0 {
		c.Window = 0
	}
	if c.PersistEvery <= 0 {
		c.PersistEvery = 2 * time.Second
	}
	if c.MaxFeeds <= 0 {
		c.MaxFeeds = 65536
	}
	if c.FeedTTL > 0 && c.EvictEvery <= 0 {
		c.EvictEvery = max(c.FeedTTL/4, 10*time.Millisecond)
	}
	if c.IngestRate > 0 && c.IngestBurst <= 0 {
		c.IngestBurst = max(int(2*c.IngestRate), 1)
	}
	if c.BreakerThreshold > 0 && c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	return c
}

// Server is a convoyd instance. Create with New, serve via Handler, stop
// with Close.
type Server struct {
	cfg  Config
	ring *ring

	shards  []*shard
	workers *pool.Group

	mu    sync.RWMutex // guards feeds, tombs and closed
	feeds map[string]*feed
	// tombs remembers the cursor head of evicted feeds so a feed recreated
	// under the same name continues its cursor domain instead of
	// restarting at 0 — without it, a returning client whose stale cursor
	// happens to fall inside the new incarnation's smaller domain would be
	// served silently from the wrong history. Bounded: cleared wholesale
	// if an adversarial feed namespace grows it past 4×MaxFeeds (those
	// names then restart their domain, the pre-tombstone behavior).
	tombs map[string]int
	// closed is set by Close before the shard queues are closed; enqueue
	// holds mu.RLock while sending, so no send can race the close.
	closed bool

	sink        *storage.ConvoyLog
	sinkBroken  atomic.Bool // first sink write error disables persistence
	persistStop chan struct{}
	persistDone chan struct{}

	// The historical query archive (nil unless Config.ArchiveDir is set).
	// It is fed asynchronously: persistAll hands each synced batch to
	// archCh and the archiveLoop goroutine indexes it, so a slow archive
	// disk can never stall the ingest path (at worst it delays the persist
	// tick once archCh fills). The first archive write error flips
	// archBroken: the loop keeps draining but stops writing, and the next
	// startup's backfill repairs the gap from the log.
	arch        *archive.Archive
	archCh      chan []storage.LoggedConvoy
	archDone    chan struct{}
	archBroken  atomic.Bool
	backfilled  int64 // records backfilled from the log at startup
	archRebuilt bool  // startup backfill rebuilt a diverged archive

	evictStop chan struct{}
	evictDone chan struct{}

	// Admission control (see admission.go): one breaker per shard (nil
	// when Config.BreakerThreshold is 0) and the lifetime shed counters
	// exposed by /v1/stats.
	breakers        []*breaker
	rateLimited     atomic.Int64
	breakerRejected atomic.Int64
	queueFull       atomic.Int64

	evictedTotal   atomic.Int64 // feeds evicted over the server's lifetime
	truncatedTotal atomic.Int64 // convoys truncated from memory over the server's lifetime
	recoveredFeeds int          // feeds restored from the log at startup
	recoveredRecs  int          // log records replayed at startup

	// testHook is copied from Config.testHook before the actors start.
	testHook func(shardID int)
}

// patternParams bundles the configured parameters of every pattern family.
func (c Config) patternParams() convoy.PatternParams {
	return convoy.PatternParams{Params: c.Params, R: c.FlockR, Theta: c.MCTheta}
}

// New creates a server. Params are validated by the first feed's miner
// construction, so invalid params are rejected eagerly here instead — for
// every pattern family a feed could negotiate, not just the default. When
// PersistPath names an existing log, New recovers from it (see
// Config.PersistPath).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	for _, pat := range []convoy.Pattern{convoy.PatternConvoy, convoy.PatternFlock, convoy.PatternMC} {
		if _, err := convoy.NewPatternMiner(pat, cfg.patternParams()); err != nil {
			return nil, err
		}
	}
	if cfg.ArchiveDir != "" && cfg.PersistPath == "" {
		return nil, errors.New("server: ArchiveDir requires PersistPath (the log is the archive's source of truth)")
	}
	if cfg.Retention < 0 {
		return nil, errors.New("server: Retention must be >= 0")
	}
	if cfg.Retention > 0 && cfg.ArchiveDir == "" {
		return nil, errors.New("server: Retention requires ArchiveDir (retention expires archived convoys)")
	}
	s := &Server{
		cfg:      cfg,
		ring:     newRing(cfg.Shards, cfg.Replicas),
		feeds:    map[string]*feed{},
		tombs:    map[string]int{},
		testHook: cfg.testHook,
	}
	if cfg.PersistPath != "" {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	if cfg.ArchiveDir != "" {
		// Backfill before the shard actors start: the persist loop cannot
		// append to the log while the archive catches up with it.
		arch, added, rebuilt, err := archive.OpenAndBackfill(cfg.ArchiveDir, cfg.PersistPath,
			&archive.Options{CacheBytes: cfg.ArchiveCache})
		if err != nil {
			s.sink.Close()
			return nil, fmt.Errorf("server: archive: %w", err)
		}
		s.arch, s.backfilled, s.archRebuilt = arch, added, rebuilt
		s.archCh = make(chan []storage.LoggedConvoy, 256)
		s.archDone = make(chan struct{})
		go s.archiveLoop()
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{id: i, in: make(chan shardMsg, cfg.QueueLen), srv: s}
	}
	if cfg.BreakerThreshold > 0 {
		s.breakers = make([]*breaker, cfg.Shards)
		for i := range s.breakers {
			s.breakers[i] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		}
	}
	s.workers = pool.Go(cfg.Shards, func(i int) { s.shards[i].run() })
	if s.sink != nil {
		s.persistStop = make(chan struct{})
		s.persistDone = make(chan struct{})
		go s.persistLoop()
	}
	if cfg.FeedTTL > 0 {
		s.evictStop = make(chan struct{})
		s.evictDone = make(chan struct{})
		go s.evictLoop()
	}
	return s, nil
}

// recover opens (or creates) the convoy log, replaying any existing
// records: each feed found in the log is recreated with its cursor at the
// end of its logged history and the logged convoy keys preloaded for
// dedup. The feeds map is populated before the shard actors start, so no
// locking is needed. Recovered feeds restart with a fresh miner — in-flight
// (unclosed) mining state is not logged, so clients re-send from their last
// snapshot and already-persisted convoys are deduplicated rather than
// re-appended.
func (s *Server) recover() error {
	type recovered struct {
		keys    map[string]bool
		pattern convoy.Pattern
		count   int
		lastIdx int // index of the feed's newest log record (recency proxy)
		flushed bool
	}
	rec := map[string]*recovered{}
	idx := 0
	sink, err := storage.OpenConvoyLog(s.cfg.PersistPath, func(lc storage.LoggedConvoy) error {
		r := rec[lc.Feed]
		if r == nil {
			r = &recovered{keys: map[string]bool{}, pattern: convoy.DefaultPattern}
			rec[lc.Feed] = r
		}
		// Every record carries the feed's pattern tag (including the flush
		// sentinel), so recovery restores the negotiated pattern mode.
		r.pattern = patternFromLog(lc.Pattern)
		if storage.IsFlushMarker(lc.Convoy) {
			// Terminal-state sentinel, not a convoy: restores the flushed
			// bit without entering the cursor domain or the dedup keys.
			r.flushed = true
			return nil
		}
		r.keys[loggedResult(lc).PatternKey()] = true
		r.count++
		r.lastIdx = idx
		idx++
		s.recoveredRecs++
		return nil
	})
	if err != nil {
		return err
	}
	// The log accumulates every feed ever served (eviction removes feeds
	// from memory, never records from the log), so an old log can name far
	// more feeds than the server should hold resident. Cap resurrection at
	// MaxFeeds, keeping the most recently appended-to feeds; the rest lose
	// their dedup state exactly as if they had been TTL-evicted (their
	// records stay in the log, and compaction removes any duplicates a
	// later replay appends).
	if len(rec) > s.cfg.MaxFeeds {
		names := make([]string, 0, len(rec))
		for name := range rec {
			names = append(names, name)
		}
		sort.Slice(names, func(a, b int) bool { return rec[names[a]].lastIdx > rec[names[b]].lastIdx })
		for i, name := range names[s.cfg.MaxFeeds:] {
			// Tombstone the dropped feed's cursor head, exactly as TTL
			// eviction does: a later incarnation under this name must
			// continue the domain, not restart it under a returning
			// client's stale cursor. The same 4×MaxFeeds bound applies —
			// beyond it (recency order), dropped names simply restart
			// their domain, keeping startup memory configured-bounded
			// rather than log-age-bounded.
			if i < 4*s.cfg.MaxFeeds {
				s.tombs[name] = rec[name].count
			}
			delete(rec, name)
		}
	}
	now := time.Now().UnixNano()
	for name, r := range rec {
		f, err := newFeed(name, s.ring.lookup(name), r.pattern, s.cfg.patternParams(), s.cfg.Window)
		if err != nil {
			sink.Close()
			return fmt.Errorf("server: recover feed %q: %w", name, err)
		}
		f.bucket = s.newBucket(now)
		f.pubSeen = r.keys
		f.start, f.persisted, f.durable = r.count, r.count, r.count
		f.stats.ClosedTotal = int64(r.count)
		f.stats.TruncatedBefore = r.count
		if r.flushed {
			// The flush sentinel restores the terminal state: ingest stays
			// 409 and polls short-circuit with Flushed:true across the
			// restart. The final maximal set itself lives in the log, not
			// in memory (f.final stays empty — /flush replies with the
			// cursor position, and the history is replayable from the
			// log).
			f.flushed = true
			f.flushLogged = true
			f.done = true
		}
		f.touch(now)
		s.feeds[name] = f
	}
	s.recoveredFeeds = len(rec)
	s.sink = sink
	return nil
}

// RecoveryInfo reports what New replayed from an existing convoy log:
// the number of feeds restored and log records read.
func (s *Server) RecoveryInfo() (feeds, records int) {
	return s.recoveredFeeds, s.recoveredRecs
}

// Close drains the shard actors and, when persistence is configured, writes
// every remaining closed convoy to the sink. In-flight enqueues finish
// first; new requests fail with ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.in)
	}
	s.mu.Unlock()
	if s.evictStop != nil {
		close(s.evictStop)
		<-s.evictDone
	}
	s.workers.Wait()
	var err error
	if s.sink != nil {
		close(s.persistStop)
		<-s.persistDone
		s.persistAll()
		err = s.sink.Close()
	}
	if s.arch != nil {
		// The persist loop is stopped and the final persistAll above has
		// already queued its batches, so closing the channel is safe; the
		// loop drains it before exiting.
		close(s.archCh)
		<-s.archDone
		if aerr := s.arch.Close(); aerr != nil && err == nil {
			err = aerr
		}
	}
	return err
}

// archiveLoop indexes persisted batches into the historical archive. It is
// the only goroutine that writes the archive while the server runs, so
// archive writes are ordered exactly as the log's appends. A write error
// permanently disables archiving for this process (the archive can no
// longer be trusted to mirror the log); the loop keeps draining so the
// persist tick never blocks, and the next startup rebuilds from the log.
func (s *Server) archiveLoop() {
	defer close(s.archDone)
	// Periodically make the index watermark durable so a crash replays
	// only a bounded tail of the records file at the next startup.
	ticker := time.NewTicker(archiveFlushEvery)
	defer ticker.Stop()
	for {
		select {
		case batch, ok := <-s.archCh:
			if !ok {
				return
			}
			if s.archBroken.Load() {
				continue
			}
			if err := s.arch.AddBatch(batch); err != nil {
				s.archBroken.Store(true)
			}
		case <-ticker.C:
			if s.archBroken.Load() {
				continue
			}
			if err := s.arch.Flush(); err != nil {
				s.archBroken.Store(true)
				continue
			}
			if s.cfg.Retention > 0 {
				if before, ok := retentionFloor(s.arch, s.cfg.Retention); ok {
					if _, err := s.arch.Expire(before); err != nil {
						s.archBroken.Store(true)
					}
				}
			}
		}
	}
}

// retentionFloor computes the absolute watermark for a relative retention
// of keep ticks: convoys with End >= maxEnd−keep+1 stay. ok is false when
// the archive has never held a record (nothing anchors the window) or the
// window still reaches the beginning of time.
func retentionFloor(a *archive.Archive, keep int32) (int32, bool) {
	maxEnd, ok := a.MaxEnd()
	if !ok {
		return 0, false
	}
	floor := int64(maxEnd) - int64(keep) + 1
	if floor <= math.MinInt32 {
		return 0, false
	}
	return int32(floor), true
}

// archiveFlushEvery is the cadence at which the archive's index watermark
// is made durable. It bounds startup re-indexing work, not durability —
// records reach the archive's fsynced records file with every batch.
const archiveFlushEvery = 30 * time.Second

// logPattern maps a feed's pattern family to its convoy-log tag.
func logPattern(p convoy.Pattern) uint8 {
	switch p {
	case convoy.PatternFlock:
		return storage.LogPatternFlock
	case convoy.PatternMC:
		return storage.LogPatternMC
	default:
		return storage.LogPatternConvoy
	}
}

// patternFromLog is the inverse of logPattern. Untagged (v1) records map to
// the convoy pattern, so logs written before pattern modes existed recover
// exactly as before.
func patternFromLog(tag uint8) convoy.Pattern {
	switch tag {
	case storage.LogPatternFlock:
		return convoy.PatternFlock
	case storage.LogPatternMC:
		return convoy.PatternMC
	default:
		return convoy.PatternConvoy
	}
}

// loggedResult reconstructs the published PatternResult a log record
// persisted, so recovery rebuilds the same dedup keys publish used.
func loggedResult(lc storage.LoggedConvoy) convoy.PatternResult {
	return convoy.PatternResult{Convoy: lc.Convoy, Clusters: lc.Clusters}
}

// feedFor returns the feed for name, creating it on first use when create
// is set. pat constrains the feed's pattern family: an existing feed of a
// different family fails with ErrPatternMismatch, and a created feed mines
// pat. The empty pattern is unconstrained — it matches any existing feed
// and creates DefaultPattern feeds (read paths pass it; only ingest, which
// parsed an explicit ?pattern=, constrains).
func (s *Server) feedFor(name string, create bool, pat convoy.Pattern) (*feed, error) {
	s.mu.RLock()
	f := s.feeds[name]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if f != nil || !create {
		if f != nil && pat != "" && f.pattern != pat {
			return nil, ErrPatternMismatch
		}
		return f, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if f = s.feeds[name]; f != nil {
		if pat != "" && f.pattern != pat {
			return nil, ErrPatternMismatch
		}
		return f, nil
	}
	if len(s.feeds) >= s.cfg.MaxFeeds {
		return nil, ErrFeedLimit
	}
	if pat == "" {
		pat = convoy.DefaultPattern
	}
	f, err := newFeed(name, s.ring.lookup(name), pat, s.cfg.patternParams(), s.cfg.Window)
	if err != nil {
		return nil, fmt.Errorf("server: feed %q: %w", name, err)
	}
	f.bucket = s.newBucket(time.Now().UnixNano())
	if head, ok := s.tombs[name]; ok {
		// Continue the evicted predecessor's cursor domain: everything it
		// published stays 410 (truncated) rather than being shadowed by
		// the new incarnation's counting restarting at 0. Dedup keys are
		// not resurrected — see Config.FeedTTL.
		f.start, f.persisted, f.durable = head, head, head
		f.stats.ClosedTotal = int64(head)
		f.stats.TruncatedBefore = head
		delete(s.tombs, name)
	}
	f.touch(time.Now().UnixNano())
	s.feeds[name] = f
	return f, nil
}

// enqueue routes msg to its feed's shard, applying backpressure. It holds
// the read lock across the channel send so Close cannot close the queue
// under it, and it bumps the feed's pending count under the same lock so
// eviction (which requires pending == 0 under the write lock) can never
// race a message into a dead feed. A canceled request context stops the
// backpressure wait early.
func (s *Server) enqueue(ctx context.Context, msg shardMsg) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	f := msg.feed
	if f.evicted.Load() {
		return ErrFeedEvicted
	}
	f.touch(time.Now().UnixNano())
	f.pending.Add(1)
	sh := s.shards[f.shard]
	select {
	case sh.in <- msg:
		return nil
	default:
	}
	if s.cfg.EnqueueWait <= 0 {
		f.pending.Add(-1)
		return ErrBackpressure
	}
	timer := time.NewTimer(s.cfg.EnqueueWait)
	defer timer.Stop()
	select {
	case sh.in <- msg:
		return nil
	case <-timer.C:
		f.pending.Add(-1)
		return ErrBackpressure
	case <-ctx.Done():
		f.pending.Add(-1)
		return ctx.Err()
	}
}

// newBucket builds a feed's ingest token bucket, or nil when per-feed rate
// limiting is off.
func (s *Server) newBucket(now int64) *tokenBucket {
	if s.cfg.IngestRate <= 0 {
		return nil
	}
	return newTokenBucket(s.cfg.IngestRate, s.cfg.IngestBurst, now)
}

// touchFeed refreshes a feed's activity clock for TTL purposes and reports
// whether the feed is still live. The touch happens under the read lock so
// it is mutually exclusive with the eviction sweep's revalidation (which
// holds the write lock): a query can therefore never refresh a feed in the
// same instant eviction collects it — one of the two strictly wins.
func (s *Server) touchFeed(f *feed) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if f.evicted.Load() {
		return false
	}
	f.touch(time.Now().UnixNano())
	return true
}

// Stats is the /v1/stats payload.
type Stats struct {
	Shards []ShardStats         `json:"shards"`
	Feeds  map[string]FeedStats `json:"feeds"`
	// Patterns breaks the live feeds down per pattern family: how many
	// resident feeds mine each family and how many patterns they have
	// closed in total (including recovered history).
	Patterns map[string]PatternStats `json:"patterns"`
	Memory   MemoryStats             `json:"memory"`
	// Archive reports the historical query archive (absent when no
	// ArchiveDir is configured).
	Archive *ArchiveStats `json:"archive,omitempty"`
	// SinkBroken reports that persistence was disabled by a write error.
	SinkBroken bool `json:"sink_broken,omitempty"`
	// Admission reports how often each ingest-shedding mechanism fired
	// (see admission.go).
	Admission AdmissionStats `json:"admission"`
}

// ArchiveStats is the archive section of /v1/stats: the archive's own
// size/query counters plus the server-side feed machinery around it.
type ArchiveStats struct {
	archive.Stats
	// QueueLen is the number of persisted batches waiting to be indexed.
	QueueLen int `json:"queue_len"`
	// Backfilled is the number of records replayed from the convoy log at
	// startup; Rebuilt reports that the log had diverged (e.g. offline
	// compaction) and the archive was rebuilt from scratch.
	Backfilled int64 `json:"backfilled_records"`
	Rebuilt    bool  `json:"rebuilt_on_start,omitempty"`
	// Broken reports that an archive write error disabled archiving for
	// this process; queries keep serving the archived prefix, and the
	// next startup repairs the gap from the log.
	Broken bool `json:"broken,omitempty"`
}

// PatternStats aggregates one pattern family across the live feeds.
type PatternStats struct {
	LiveFeeds   int   `json:"live_feeds"`
	ClosedTotal int64 `json:"closed_total"`
}

// ShardStats is one shard's queue occupancy.
type ShardStats struct {
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	Feeds    int `json:"feeds"`
	// BreakerState is the shard circuit breaker's state (closed / open /
	// half_open); absent when breakers are disabled.
	BreakerState string `json:"breaker_state,omitempty"`
}

// MemoryStats summarises what bounds the server's resident footprint: how
// many feeds are live, how much published history is resident versus
// truncated to the log, and the lifetime eviction/recovery counters.
type MemoryStats struct {
	LiveFeeds        int    `json:"live_feeds"`
	EvictedTotal     int64  `json:"evicted_feeds_total"`
	ClosedInMemory   int    `json:"closed_convoys_in_memory"`
	TruncatedTotal   int64  `json:"truncated_convoys_total"`
	RecoveredFeeds   int    `json:"recovered_feeds,omitempty"`
	RecoveredConvoys int    `json:"recovered_convoys,omitempty"`
	HeapAllocBytes   uint64 `json:"heap_alloc_bytes"`
}

// Stats returns a point-in-time snapshot of server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Feeds:      map[string]FeedStats{},
		Patterns:   map[string]PatternStats{},
		SinkBroken: s.sinkBroken.Load(),
	}
	st.Shards = make([]ShardStats, len(s.shards))
	now := time.Now()
	for i, sh := range s.shards {
		st.Shards[i] = ShardStats{QueueLen: len(sh.in), QueueCap: cap(sh.in)}
		if s.breakers != nil {
			st.Shards[i].BreakerState = s.breakers[i].stateName(now)
			st.Admission.BreakerTripsTotal += s.breakers[i].trips.Load()
		}
	}
	st.Admission.RateLimitedTotal = s.rateLimited.Load()
	st.Admission.BreakerRejectedTotal = s.breakerRejected.Load()
	st.Admission.QueueFullTotal = s.queueFull.Load()
	s.mu.RLock()
	for name, f := range s.feeds {
		fs, _ := f.snapshotStats()
		st.Feeds[name] = fs
		st.Shards[f.shard].Feeds++
		st.Memory.ClosedInMemory += fs.ClosedInMemory
		ps := st.Patterns[fs.Pattern]
		ps.LiveFeeds++
		ps.ClosedTotal += fs.ClosedTotal
		st.Patterns[fs.Pattern] = ps
	}
	st.Memory.LiveFeeds = len(s.feeds)
	s.mu.RUnlock()
	st.Memory.EvictedTotal = s.evictedTotal.Load()
	st.Memory.TruncatedTotal = s.truncatedTotal.Load()
	st.Memory.RecoveredFeeds = s.recoveredFeeds
	st.Memory.RecoveredConvoys = s.recoveredRecs
	if s.arch != nil {
		st.Archive = &ArchiveStats{
			Stats:      s.arch.Stats(),
			QueueLen:   len(s.archCh),
			Backfilled: s.backfilled,
			Rebuilt:    s.archRebuilt,
			Broken:     s.archBroken.Load(),
		}
	}
	// runtime/metrics, not runtime.ReadMemStats: stats endpoints get polled
	// every few seconds by monitoring, and ReadMemStats stops the world.
	heap := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(heap)
	if heap[0].Value.Kind() == metrics.KindUint64 {
		st.Memory.HeapAllocBytes = heap[0].Value.Uint64()
	}
	return st
}

// persistLoop appends newly closed convoys to the sink every PersistEvery.
func (s *Server) persistLoop() {
	defer close(s.persistDone)
	ticker := time.NewTicker(s.cfg.PersistEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.persistAll()
		case <-s.persistStop:
			return
		}
	}
}

// persistAll writes every feed's not-yet-persisted closed convoys to the
// sink, in discovery order, then syncs. Persistence is at-most-once: the
// persisted marker advances before the write, and the first write error
// disables the sink for the rest of the server's life. Retrying into an
// append-only buffered log would duplicate the records already in its
// buffer (and possibly follow a partially flushed record), corrupting the
// log — a broken disk ends the log at its last good Sync instead. Each
// feed's durable watermark advances only after the Sync that covers its
// records succeeds, and it is durable — not persisted — that licenses
// discarding in-memory state (truncation here, whole feeds in
// lifecycle.go), so a sync failure can never lose convoys from both
// memory and the log at once.
//
// Truncation (unless Config.KeepHistory) deliberately lags durability by
// one round: this round truncates up to the durable watermark as of the
// round's start. A long-poller woken by a publish therefore always has a
// full PersistEvery to collect the convoys it was woken for before they
// can leave memory, and resident history stays bounded by about two
// persistence intervals' worth of convoys per feed.
func (s *Server) persistAll() {
	if s.sinkBroken.Load() {
		return
	}
	s.mu.RLock()
	feeds := make([]*feed, 0, len(s.feeds))
	for _, f := range s.feeds {
		feeds = append(feeds, f)
	}
	s.mu.RUnlock()
	type written struct {
		f      *feed
		synced int // durable watermark once this round's Sync succeeds
	}
	var wrote []written
	var archBatch []storage.LoggedConvoy // mirror of this round's appends, in log order
	truncUpTo := make([]int, len(feeds)) // durable as of the round's start
	for i, f := range feeds {
		f.mu.Lock()
		truncUpTo[i] = f.durable
		fresh := f.closed[f.persisted-f.start:]
		if len(fresh) == 0 {
			f.mu.Unlock()
			continue
		}
		// Copy under the lock; write outside it so a slow disk does not
		// stall the actor's publish path.
		batch := make([]convoy.PatternResult, len(fresh))
		copy(batch, fresh)
		f.persisted = f.head()
		newPersisted := f.persisted
		f.mu.Unlock()
		tag := logPattern(f.pattern)
		for _, c := range batch {
			rec := storage.LoggedConvoy{Feed: f.name, Convoy: c.Convoy, Pattern: tag, Clusters: c.Clusters}
			if err := s.sink.AppendRecord(rec); err != nil {
				s.sinkBroken.Store(true)
				return
			}
			if s.arch != nil {
				archBatch = append(archBatch, rec)
			}
		}
		wrote = append(wrote, written{f: f, synced: newPersisted})
	}
	if len(wrote) > 0 {
		if err := s.sink.Sync(); err != nil {
			s.sinkBroken.Store(true)
			return
		}
		for _, w := range wrote {
			w.f.mu.Lock()
			if w.synced > w.f.durable {
				w.f.durable = w.synced
			}
			w.f.mu.Unlock()
		}
		if s.arch != nil {
			// Hand the synced batch to the archiver only after the log fsync:
			// the archive must never hold a record the log could lose, or the
			// two would diverge at the next backfill. The send can block once
			// the channel is full — that stalls this background tick, never
			// the ingest path.
			s.archCh <- archBatch
		}
	}
	// Second pass: once a flushed feed's whole history is durable, append
	// the flush sentinel so the terminal state survives a restart. The
	// window where a crash loses only the sentinel (feed reopens, clients
	// re-flush) is bounded by one persistence interval.
	var marked []*feed
	for _, f := range feeds {
		f.mu.Lock()
		mark := f.flushed && !f.flushLogged && f.durable == f.head()
		f.mu.Unlock()
		if !mark {
			continue
		}
		// The sentinel carries the feed's pattern tag too, so a flushed feed
		// that never closed a single pattern still recovers its mode.
		rec := storage.LoggedConvoy{Feed: f.name, Convoy: storage.FlushMarker(), Pattern: logPattern(f.pattern)}
		if err := s.sink.AppendRecord(rec); err != nil {
			s.sinkBroken.Store(true)
			return
		}
		marked = append(marked, f)
	}
	if len(marked) > 0 {
		if err := s.sink.Sync(); err != nil {
			s.sinkBroken.Store(true)
			return
		}
		for _, f := range marked {
			f.mu.Lock()
			f.flushLogged = true
			f.mu.Unlock()
		}
	}
	if s.cfg.KeepHistory {
		return
	}
	for i, f := range feeds {
		s.truncatedTotal.Add(int64(f.truncateTo(truncUpTo[i])))
	}
}
