// Package server implements convoyd, the sharded streaming convoy-mining
// service: many concurrent trajectory feeds arrive over HTTP (JSON ingest),
// each feed key is routed by consistent hashing to one of a configurable
// number of shard actors, and each actor owns the StreamMiners of its
// feeds. Closed convoys are queryable per feed (long-poll or flush) and are
// periodically persisted to the closed-convoy sink in internal/storage.
//
// The concurrency design is actor-per-shard:
//
//   - the HTTP layer parses and routes, but never mines;
//   - a bounded ingest queue per shard gives backpressure (enqueue fails
//     with ErrBackpressure once the queue is full and the configured wait
//     has elapsed; the HTTP layer maps that to 429);
//   - one goroutine per shard consumes its queue, so per-feed mining state
//     is single-owner and lock-free, and per-feed output is deterministic:
//     it depends only on the sequence of batches for that feed, never on
//     scheduling;
//   - a bounded reordering buffer per feed tolerates out-of-order snapshot
//     arrival within a configurable time window (see reorder.go).
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	convoy "repro"
	"repro/internal/pool"
	"repro/internal/storage"
)

// ErrBackpressure is returned by enqueue when a shard's ingest queue stayed
// full for the configured wait; the HTTP layer maps it to 429.
var ErrBackpressure = errors.New("server: shard ingest queue full")

// ErrClosed is returned once the server is shutting down.
var ErrClosed = errors.New("server: closed")

// ErrFeedLimit is returned when creating one more feed would exceed
// Config.MaxFeeds; the HTTP layer maps it to 429.
var ErrFeedLimit = errors.New("server: feed limit reached")

// Config tunes a convoyd server. The zero value of each field selects the
// documented default.
type Config struct {
	// Params are the convoy parameters every feed is mined with.
	Params convoy.Params
	// Shards is the number of shard actors (default 8).
	Shards int
	// QueueLen is the per-shard ingest queue capacity, in batches
	// (default 128).
	QueueLen int
	// Window is the reordering window in ticks: snapshots arriving out of
	// order within the window are resequenced; later ones are dropped as
	// late (default 0 = strict in-order ingest).
	Window int32
	// EnqueueWait bounds how long an ingest blocks waiting for queue space
	// before failing with ErrBackpressure (default 0 = fail immediately).
	EnqueueWait time.Duration
	// PersistPath, when non-empty, is the closed-convoy sink: every closed
	// convoy is appended to this log by a periodic background tick.
	PersistPath string
	// PersistEvery is the persistence interval (default 2s).
	PersistEvery time.Duration
	// MaxFeeds caps the number of live feeds; ingest to a new feed key
	// beyond the cap fails with ErrFeedLimit (default 65536). Each feed
	// owns a miner and result history, so an unbounded feed namespace
	// would let one misbehaving client exhaust memory.
	MaxFeeds int
	// Replicas is the virtual-node count per shard on the consistent-hash
	// ring (default 512, see ring.go); tests lower it.
	Replicas int

	// testHook, when set (same-package tests only), runs at the start of
	// every shard-actor message; tests use it to stall a shard and exercise
	// backpressure. It must be set before New so actors never race on it.
	testHook func(shardID int)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 128
	}
	if c.Window < 0 {
		c.Window = 0
	}
	if c.PersistEvery <= 0 {
		c.PersistEvery = 2 * time.Second
	}
	if c.MaxFeeds <= 0 {
		c.MaxFeeds = 65536
	}
	return c
}

// Server is a convoyd instance. Create with New, serve via Handler, stop
// with Close.
type Server struct {
	cfg  Config
	ring *ring

	shards  []*shard
	workers *pool.Group

	mu    sync.RWMutex // guards feeds and closed
	feeds map[string]*feed
	// closed is set by Close before the shard queues are closed; enqueue
	// holds mu.RLock while sending, so no send can race the close.
	closed bool

	sink        *storage.ConvoyLog
	sinkBroken  atomic.Bool // first sink write error disables persistence
	persistStop chan struct{}
	persistDone chan struct{}

	// testHook is copied from Config.testHook before the actors start.
	testHook func(shardID int)
}

// New creates a server. Params are validated by the first feed's miner
// construction, so invalid params are rejected eagerly here instead.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if _, err := convoy.NewStreamMiner(cfg.Params); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		ring:     newRing(cfg.Shards, cfg.Replicas),
		feeds:    map[string]*feed{},
		testHook: cfg.testHook,
	}
	if cfg.PersistPath != "" {
		sink, err := storage.CreateConvoyLog(cfg.PersistPath)
		if err != nil {
			return nil, err
		}
		s.sink = sink
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{id: i, in: make(chan shardMsg, cfg.QueueLen), srv: s}
	}
	s.workers = pool.Go(cfg.Shards, func(i int) { s.shards[i].run() })
	if s.sink != nil {
		s.persistStop = make(chan struct{})
		s.persistDone = make(chan struct{})
		go s.persistLoop()
	}
	return s, nil
}

// Close drains the shard actors and, when persistence is configured, writes
// every remaining closed convoy to the sink. In-flight enqueues finish
// first; new requests fail with ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.in)
	}
	s.mu.Unlock()
	s.workers.Wait()
	var err error
	if s.sink != nil {
		close(s.persistStop)
		<-s.persistDone
		s.persistAll()
		err = s.sink.Close()
	}
	return err
}

// feedFor returns the feed for name, creating it on first use when create
// is set.
func (s *Server) feedFor(name string, create bool) (*feed, error) {
	s.mu.RLock()
	f := s.feeds[name]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if f != nil || !create {
		return f, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if f = s.feeds[name]; f != nil {
		return f, nil
	}
	if len(s.feeds) >= s.cfg.MaxFeeds {
		return nil, ErrFeedLimit
	}
	f, err := newFeed(name, s.ring.lookup(name), s.cfg.Params, s.cfg.Window)
	if err != nil {
		return nil, fmt.Errorf("server: feed %q: %w", name, err)
	}
	s.feeds[name] = f
	return f, nil
}

// enqueue routes msg to its feed's shard, applying backpressure. It holds
// the read lock across the channel send so Close cannot close the queue
// under it.
func (s *Server) enqueue(msg shardMsg) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	sh := s.shards[msg.feed.shard]
	select {
	case sh.in <- msg:
		return nil
	default:
	}
	if s.cfg.EnqueueWait <= 0 {
		return ErrBackpressure
	}
	timer := time.NewTimer(s.cfg.EnqueueWait)
	defer timer.Stop()
	select {
	case sh.in <- msg:
		return nil
	case <-timer.C:
		return ErrBackpressure
	}
}

// Stats is the /v1/stats payload.
type Stats struct {
	Shards []ShardStats         `json:"shards"`
	Feeds  map[string]FeedStats `json:"feeds"`
	// SinkBroken reports that persistence was disabled by a write error.
	SinkBroken bool `json:"sink_broken,omitempty"`
}

// ShardStats is one shard's queue occupancy.
type ShardStats struct {
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	Feeds    int `json:"feeds"`
}

// Stats returns a point-in-time snapshot of server counters.
func (s *Server) Stats() Stats {
	st := Stats{Feeds: map[string]FeedStats{}, SinkBroken: s.sinkBroken.Load()}
	st.Shards = make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		st.Shards[i] = ShardStats{QueueLen: len(sh.in), QueueCap: cap(sh.in)}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name, f := range s.feeds {
		fs, _ := f.snapshotStats()
		st.Feeds[name] = fs
		st.Shards[f.shard].Feeds++
	}
	return st
}

// persistLoop appends newly closed convoys to the sink every PersistEvery.
func (s *Server) persistLoop() {
	defer close(s.persistDone)
	ticker := time.NewTicker(s.cfg.PersistEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.persistAll()
		case <-s.persistStop:
			return
		}
	}
}

// persistAll writes every feed's not-yet-persisted closed convoys to the
// sink, in discovery order, then syncs. Persistence is at-most-once: the
// cursor advances before the write, and the first write error disables the
// sink for the rest of the server's life. Retrying into an append-only
// buffered log would duplicate the records already in its buffer (and
// possibly follow a partially flushed record), corrupting the log — a
// broken disk ends the log at its last good Sync instead.
func (s *Server) persistAll() {
	if s.sinkBroken.Load() {
		return
	}
	s.mu.RLock()
	feeds := make([]*feed, 0, len(s.feeds))
	for _, f := range s.feeds {
		feeds = append(feeds, f)
	}
	s.mu.RUnlock()
	wrote := false
	for _, f := range feeds {
		f.mu.Lock()
		fresh := f.closed[f.persisted:]
		if len(fresh) == 0 {
			f.mu.Unlock()
			continue
		}
		// Copy under the lock; write outside it so a slow disk does not
		// stall the actor's publish path.
		batch := make([]convoy.Convoy, len(fresh))
		copy(batch, fresh)
		f.persisted = len(f.closed)
		f.mu.Unlock()
		if err := s.sink.AppendAll(f.name, batch); err != nil {
			s.sinkBroken.Store(true)
			return
		}
		wrote = true
	}
	if wrote {
		if err := s.sink.Sync(); err != nil {
			s.sinkBroken.Store(true)
		}
	}
}
