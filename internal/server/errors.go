package server

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"time"
)

// The unified error envelope of the convoyd API: every non-2xx response is
//
//	{"error": "<human-readable message>", "code": "<machine-readable slug>"}
//
// The `error` field predates the envelope and is kept for existing clients;
// `code` is the field programs should switch on. Codes are a closed,
// documented set: apiCodes below is the registry, docs/API.md carries the
// matching table, and TestErrorCodesDocumented diffs the two in both
// directions so an undocumented (or phantom-documented) code cannot ship.
// writeError refuses unregistered codes outright — a handler error path
// cannot emit a slug the registry has never heard of.

// apiCode is one machine-readable error code slug.
type apiCode string

const (
	// 400 — the request itself is malformed.
	codeBadRequest apiCode = "bad_request" // unparseable/empty body, body too large, bad feed name
	codeBadParam   apiCode = "bad_param"   // a query/body parameter fails validation
	codeBadCursor  apiCode = "bad_cursor"  // a cursor that never came from this API
	codeBadFrame   apiCode = "bad_frame"   // a K2BI frame fails its structural or CRC checks

	// 404 / 409 / 410 — the request is well-formed but the target is not
	// in a state that can serve it.
	codeUnknownFeed     apiCode = "unknown_feed"
	codeFeedFlushed     apiCode = "feed_flushed"
	codePatternMismatch apiCode = "pattern_mismatch" // ?pattern= differs from the feed's negotiated family
	codeFeedEvicted     apiCode = "feed_evicted"
	codeCursorGone      apiCode = "cursor_gone" // live cursor outside [truncated_before, head)

	// 415 — the ingest content negotiation failed.
	codeUnsupportedMedia apiCode = "unsupported_media_type"

	// 429 — admission control; all of them carry Retry-After.
	codeQueueFull   apiCode = "queue_full"   // shard ingest queue stayed full for -enqueue-wait
	codeRateLimited apiCode = "rate_limited" // per-feed token bucket exhausted (-ingest-rate)
	codeBreakerOpen apiCode = "breaker_open" // shard circuit breaker shedding load (-breaker-threshold)
	codeFeedLimit   apiCode = "feed_limit"   // -max-feeds cap reached

	// 5xx.
	codeInternal     apiCode = "internal"
	codeNoArchive    apiCode = "no_archive" // /v1/query or retention without -archive-dir
	codeShuttingDown apiCode = "shutting_down"
)

// apiCodes is the registry of every code the server may emit, mapped to a
// one-line meaning. TestErrorCodesDocumented keeps it equal to the error
// code table in docs/API.md.
var apiCodes = map[apiCode]string{
	codeBadRequest:       "malformed request body or feed name",
	codeBadParam:         "a parameter fails validation",
	codeBadCursor:        "unparseable cursor",
	codeBadFrame:         "invalid K2BI binary frame",
	codeUnknownFeed:      "feed was never ingested",
	codeFeedFlushed:      "ingest into a flushed feed",
	codePatternMismatch:  "feed mines a different pattern family",
	codeFeedEvicted:      "feed was TTL-evicted",
	codeCursorGone:       "live cursor outside the feed's domain",
	codeUnsupportedMedia: "Content-Type not negotiable",
	codeQueueFull:        "shard ingest queue full",
	codeRateLimited:      "per-feed ingest rate limit exceeded",
	codeBreakerOpen:      "shard circuit breaker open",
	codeFeedLimit:        "live feed cap reached",
	codeInternal:         "internal server error",
	codeNoArchive:        "no archive configured",
	codeShuttingDown:     "server is shutting down",
}

// errorCodes returns the sorted registry for enforcement tests.
func errorCodes() map[apiCode]string { return apiCodes }

type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// writeError writes the unified error envelope. The code must come from the
// registry above — an unregistered slug is a server bug and panics (net/http
// recovers it into a 500, and any test touching the path fails loudly).
func writeError(w http.ResponseWriter, status int, code apiCode, msg string) {
	if _, ok := apiCodes[code]; !ok {
		panic("server: undocumented API error code " + string(code))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: msg, Code: string(code)})
}

// writeRetryError is writeError for 429s: the backpressure contract says
// every 429 tells the client when to come back. Retry-After is expressed in
// whole seconds, rounded up, at least 1.
func writeRetryError(w http.ResponseWriter, code apiCode, msg string, after time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(after)))
	writeError(w, http.StatusTooManyRequests, code, msg)
}

// retryAfterSeconds converts a wait hint to the Retry-After value: whole
// seconds, rounded up, floored at 1 (a "0" would invite an immediate retry
// storm from the very clients being shed).
func retryAfterSeconds(after time.Duration) int {
	if after <= 0 {
		return 1
	}
	secs := int(math.Ceil(after.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// apiError carries a ready-to-write error response through parsing helpers
// that run before any status has been committed.
type apiError struct {
	status int
	code   apiCode
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func (e *apiError) write(w http.ResponseWriter) {
	writeError(w, e.status, e.code, e.msg)
}
