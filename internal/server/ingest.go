package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"strings"

	"repro/internal/model"
	"repro/internal/storage"
)

// The negotiated ingest wire formats. JSON is the original protocol and the
// default; K2BI is the binary batch-frame protocol (see
// internal/storage/batchframe.go and docs/API.md) for high-rate feeds.
const (
	contentTypeJSON = "application/json"
	contentTypeK2BI = "application/x-k2bi"
)

// negotiateIngest picks the wire format from the request's Content-Type.
// Absent or empty Content-Type means JSON (the pre-negotiation protocol),
// and so does application/x-www-form-urlencoded — curl's -d default, which
// every documented quickstart client sent before negotiation existed.
// Anything other than those is answered with 415 and the negotiable set,
// per RFC 9110.
func negotiateIngest(w http.ResponseWriter, r *http.Request) (binary, ok bool) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false, true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		writeError(w, http.StatusUnsupportedMediaType, codeUnsupportedMedia,
			fmt.Sprintf("unparseable Content-Type %q; use %s or %s", ct, contentTypeJSON, contentTypeK2BI))
		return false, false
	}
	switch mt {
	case contentTypeJSON, "application/x-www-form-urlencoded":
		return false, true
	case contentTypeK2BI:
		return true, true
	default:
		writeError(w, http.StatusUnsupportedMediaType, codeUnsupportedMedia,
			fmt.Sprintf("unsupported Content-Type %q; use %s or %s", mt, contentTypeJSON, contentTypeK2BI))
		return false, false
	}
}

// checkFinite rejects the coordinates the miner cannot digest. Both wire
// formats share this rule — K2BI can physically carry NaN/Inf bits (the
// codec round-trips them so corruption surfaces as a CRC error, not a
// silent value change), but the API contract is finite coordinates only.
func checkFinite(t int32, pos []model.ObjPos) *apiError {
	for _, p := range pos {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return &apiError{
				status: http.StatusBadRequest, code: codeBadParam,
				msg: fmt.Sprintf("non-finite coordinate for oid %d at t=%d", p.OID, t),
			}
		}
	}
	return nil
}

// parseJSONBatch decodes the original JSON ingest body into shard ticks.
func parseJSONBatch(body io.Reader) ([]tick, *apiError) {
	var req ingestRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		return nil, &apiError{status: http.StatusBadRequest, code: codeBadRequest, msg: "bad ingest body: " + err.Error()}
	}
	if len(req.Snapshots) == 0 {
		return nil, &apiError{status: http.StatusBadRequest, code: codeBadRequest, msg: "no snapshots in batch"}
	}
	batch := make([]tick, 0, len(req.Snapshots))
	for _, sn := range req.Snapshots {
		pos := make([]model.ObjPos, 0, len(sn.Positions))
		for _, p := range sn.Positions {
			pos = append(pos, model.ObjPos{OID: p.OID, X: p.X, Y: p.Y})
		}
		if aerr := checkFinite(sn.T, pos); aerr != nil {
			return nil, aerr
		}
		batch = append(batch, tick{t: sn.T, pos: pos})
	}
	return batch, nil
}

// parseBinaryBatch decodes a body of concatenated K2BI frames into shard
// ticks, one tick per frame. The whole body must parse: a structurally bad
// or truncated frame rejects the request (the shard never sees a partial
// batch), mirroring how an unparseable JSON body rejects wholesale.
func parseBinaryBatch(body io.Reader) ([]tick, *apiError) {
	dec := storage.NewBatchFrameReader(body)
	var batch []tick
	for {
		t, pos, err := dec.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, frameError(err, len(batch))
		}
		if aerr := checkFinite(t, pos); aerr != nil {
			return nil, aerr
		}
		batch = append(batch, tick{t: t, pos: pos})
	}
	if len(batch) == 0 {
		return nil, &apiError{status: http.StatusBadRequest, code: codeBadRequest, msg: "no frames in batch"}
	}
	return batch, nil
}

// frameError maps a K2BI decode failure to the API error envelope.
func frameError(err error, frame int) *apiError {
	switch {
	case errors.Is(err, io.ErrUnexpectedEOF):
		return &apiError{status: http.StatusBadRequest, code: codeBadFrame,
			msg: fmt.Sprintf("frame %d truncated", frame)}
	case errors.Is(err, storage.ErrBadFrame):
		return &apiError{status: http.StatusBadRequest, code: codeBadFrame,
			msg: fmt.Sprintf("frame %d: %v", frame, err)}
	case strings.Contains(err.Error(), "request body too large"):
		// http.MaxBytesReader's error surfaces through the frame reader.
		return &apiError{status: http.StatusBadRequest, code: codeBadRequest,
			msg: fmt.Sprintf("ingest body exceeds %d bytes", maxIngestBody)}
	default:
		return &apiError{status: http.StatusBadRequest, code: codeBadFrame,
			msg: fmt.Sprintf("frame %d: %v", frame, err)}
	}
}

// streamChunkTicks is how many decoded frames the stream endpoint coalesces
// into one shard enqueue. Admission (token bucket, breaker, queue) runs per
// chunk, so a stream client gets backpressure at tick granularity instead
// of per-request granularity.
const streamChunkTicks = 16

type streamResponse struct {
	Accepted int `json:"accepted"`
	Frames   int `json:"frames"`
}

// handleIngestStream serves the sticky binary ingest endpoint: the client
// holds one connection open and writes K2BI frames back to back; the server
// resolves the feed and shard once and enqueues decoded ticks in chunks.
// The response reports totals once the stream ends. Mid-stream failures
// (bad frame, admission rejection) terminate the stream with the usual
// error envelope; everything enqueued before the failure stays enqueued,
// and the client resumes by reconnecting and sending from the first
// unaccepted frame.
func (s *Server) handleIngestStream(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("feed")
	if name == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, "empty feed name")
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err != nil || mt != contentTypeK2BI {
			writeError(w, http.StatusUnsupportedMediaType, codeUnsupportedMedia,
				fmt.Sprintf("stream ingest is %s only, got %q", contentTypeK2BI, ct))
			return
		}
	}
	pat, aerr := patternParam(r)
	if aerr != nil {
		aerr.write(w)
		return
	}
	f, err := s.feedFor(name, true, pat)
	if err != nil {
		writeServerError(w, err)
		return
	}
	if _, flushed := f.snapshotStats(); flushed {
		writeError(w, http.StatusConflict, codeFeedFlushed, "feed already flushed")
		return
	}

	dec := storage.NewBatchFrameReader(r.Body)
	var accepted, frames int
	chunk := make([]tick, 0, streamChunkTicks)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		err := s.admitIngest(r.Context(), f, chunk)
		if errors.Is(err, ErrFeedEvicted) {
			// Same one-shot recovery as the unary path: the feed idled out
			// mid-stream (possible under a slow client); restart its
			// lifecycle and retry once.
			if f, err = s.feedFor(name, true, pat); err == nil {
				err = s.admitIngest(r.Context(), f, chunk)
			}
		}
		if err != nil {
			return err
		}
		accepted += len(chunk)
		// Fresh slice, not chunk[:0]: the enqueued message owns the old
		// backing array until the shard actor has processed it.
		chunk = make([]tick, 0, streamChunkTicks)
		return nil
	}
	for {
		t, pos, err := dec.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			frameError(err, frames).write(w)
			return
		}
		if aerr := checkFinite(t, pos); aerr != nil {
			aerr.write(w)
			return
		}
		frames++
		chunk = append(chunk, tick{t: t, pos: pos})
		if len(chunk) >= streamChunkTicks {
			if err := flush(); err != nil {
				writeServerError(w, err)
				return
			}
		}
	}
	if err := flush(); err != nil {
		writeServerError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(streamResponse{Accepted: accepted, Frames: frames})
}
