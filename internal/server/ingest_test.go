package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

// encodeDataset encodes ticks [ts, te] of a dataset as one K2BI frame per
// tick, concatenated.
func encodeDataset(t testing.TB, ds *model.Dataset, ts, te int32) []byte {
	t.Helper()
	var buf []byte
	var err error
	for tt := ts; tt <= te; tt++ {
		if buf, err = storage.AppendBatchFrame(buf, tt, ds.Snapshot(tt)); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// postBinary posts a K2BI body.
func postBinary(t testing.TB, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentTypeK2BI, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// decodeEnvelope parses the unified error envelope and requires both fields.
func decodeEnvelope(t *testing.T, body []byte) errorResponse {
	t.Helper()
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body %q is not the envelope: %v", body, err)
	}
	if e.Error == "" || e.Code == "" {
		t.Fatalf("error envelope %q is missing a field", body)
	}
	if _, ok := apiCodes[apiCode(e.Code)]; !ok {
		t.Fatalf("error envelope carries unregistered code %q", e.Code)
	}
	return e
}

// TestIngestNegotiation covers the Content-Type dispatch of the unary
// ingest endpoint: JSON by default, binary on application/x-k2bi, 415 with
// the envelope for anything else — on both the canonical /ingest route and
// the /snapshots alias.
func TestIngestNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	ds := minetest.Random(1, 10, 16)

	jsonBody, _ := json.Marshal(ingestRequest{Snapshots: snapshotsOf(ds, 0, 0)})
	// x-www-form-urlencoded is what curl -d sends; clients from before
	// negotiation existed used exactly that, so it must stay JSON.
	for _, ct := range []string{"", "application/json", "application/json; charset=utf-8",
		"application/x-www-form-urlencoded"} {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/feeds/neg/ingest", bytes.NewReader(jsonBody))
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("Content-Type %q: status %d, want 202", ct, resp.StatusCode)
		}
	}

	frame := encodeDataset(t, ds, 1, 1)
	for _, route := range []string{"/v1/feeds/neg/ingest", "/v1/feeds/neg2/snapshots"} {
		code, body := postBinary(t, ts.URL+route, frame)
		if code != http.StatusAccepted {
			t.Fatalf("binary on %s: status %d: %s", route, code, body)
		}
		var acc ingestResponse
		if err := json.Unmarshal(body, &acc); err != nil || acc.Accepted != 1 || acc.Frames != 1 {
			t.Fatalf("binary on %s: response %s", route, body)
		}
	}

	for _, ct := range []string{"text/plain", "application/octet-stream", "such;;garbage"} {
		resp, err := http.Post(ts.URL+"/v1/feeds/neg/ingest", ct, bytes.NewReader(jsonBody))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("Content-Type %q: status %d, want 415", ct, resp.StatusCode)
		}
		if e := decodeEnvelope(t, data); e.Code != string(codeUnsupportedMedia) {
			t.Fatalf("Content-Type %q: code %q", ct, e.Code)
		}
	}
}

// TestIngestBinaryRejects covers the binary parse failure modes: a
// structurally bad frame, a torn frame, and an empty body — all 400, all
// with a machine-readable code, and none of them enqueue anything.
func TestIngestBinaryRejects(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 2})
	ds := minetest.Random(2, 10, 16)
	frame := encodeDataset(t, ds, 0, 0)

	corrupt := append([]byte(nil), frame...)
	corrupt[len(corrupt)/2] ^= 0xff
	for name, tc := range map[string]struct {
		body []byte
		code apiCode
	}{
		"corrupt": {corrupt, codeBadFrame},
		"torn":    {frame[:len(frame)-3], codeBadFrame},
		"empty":   {nil, codeBadRequest},
	} {
		status, body := postBinary(t, ts.URL+"/v1/feeds/rej/ingest", tc.body)
		if status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", name, status, body)
		}
		if e := decodeEnvelope(t, body); e.Code != string(tc.code) {
			t.Fatalf("%s: code %q, want %q", name, e.Code, tc.code)
		}
	}
	// NaN coordinates are representable in K2BI but rejected by the API
	// contract, same as the JSON path.
	nan, err := storage.AppendBatchFrame(nil, 0, []model.ObjPos{{OID: 1, X: nanFloat(), Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	status, body := postBinary(t, ts.URL+"/v1/feeds/rej/ingest", nan)
	if status != http.StatusBadRequest {
		t.Fatalf("NaN frame: status %d: %s", status, body)
	}
	if e := decodeEnvelope(t, body); e.Code != string(codeBadParam) {
		t.Fatalf("NaN frame: code %q, want %q", e.Code, codeBadParam)
	}
	if f, _ := srv.feedFor("rej", false, ""); f != nil {
		if fs, _ := f.snapshotStats(); fs.SnapshotsIn != 0 {
			t.Fatalf("rejected bodies reached the shard: %+v", fs)
		}
	}
}

func nanFloat() float64 {
	var zero float64
	return zero / zero
}

// streamIngest sends a K2BI byte stream to the sticky endpoint.
func streamIngest(t testing.TB, base, feed string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/feeds/"+feed+"/ingest/stream", contentTypeK2BI, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestIngestStream drives a whole dataset through the sticky stream
// endpoint in one request and checks the mined result matches batch PCCD.
func TestIngestStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	ds := minetest.Random(3, 10, 16)
	lo, hi := ds.TimeRange()
	status, body := streamIngest(t, ts.URL, "stream", encodeDataset(t, ds, lo, hi))
	if status != http.StatusAccepted {
		t.Fatalf("stream: status %d: %s", status, body)
	}
	var resp streamResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if want := int(hi - lo + 1); resp.Frames != want || resp.Accepted != want {
		t.Fatalf("stream response %+v, want %d frames accepted", resp, want)
	}
	got := flushFeed(t, ts.URL, "stream")
	if want := batchPCCD(t, ds); !model.ConvoysEqual(got, want) {
		t.Fatalf("streamed %v != batch %v", got, want)
	}
	// Wrong Content-Type on the stream endpoint is 415: it has no JSON mode.
	r2, err := http.Post(ts.URL+"/v1/feeds/stream2/ingest/stream", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("JSON stream: status %d, want 415", r2.StatusCode)
	}
}

// TestBinaryMatchesJSON is the protocol-equivalence differential: 120
// random datasets, each ingested twice into one server — once over JSON,
// once over K2BI (alternating the one-shot and stream endpoints) — must
// mine exactly the same convoys, which must also equal the batch PCCD
// reference. The binary protocol is a wire-format change only; it can
// never change a mining result.
func TestBinaryMatchesJSON(t *testing.T) {
	const seeds = 120
	_, ts := newTestServer(t, Config{Shards: 4, QueueLen: 64})
	for seed := int64(1); seed <= seeds; seed++ {
		ds := minetest.Random(seed, 8, 12)
		lo, hi := ds.TimeRange()
		jsonFeed := fmt.Sprintf("json-%d", seed)
		binFeed := fmt.Sprintf("bin-%d", seed)
		ingestDataset(t, ts.URL, jsonFeed, ds, 3)
		frames := encodeDataset(t, ds, lo, hi)
		var status int
		var body []byte
		if seed%2 == 0 {
			status, body = postBinary(t, ts.URL+"/v1/feeds/"+binFeed+"/ingest", frames)
		} else {
			status, body = streamIngest(t, ts.URL, binFeed, frames)
		}
		if status != http.StatusAccepted {
			t.Fatalf("seed %d: binary ingest status %d: %s", seed, status, body)
		}
		fromJSON := flushFeed(t, ts.URL, jsonFeed)
		fromBin := flushFeed(t, ts.URL, binFeed)
		if !model.ConvoysEqual(fromJSON, fromBin) {
			t.Fatalf("seed %d: binary %v != JSON %v", seed, fromBin, fromJSON)
		}
		if want := batchPCCD(t, ds); !model.ConvoysEqual(fromJSON, want) {
			t.Fatalf("seed %d: served %v != batch %v", seed, fromJSON, want)
		}
	}
}

// TestErrorEnvelope spot-checks that error responses across the API carry
// the unified {error, code} envelope with the expected codes.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	get := func(url string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}

	ingestDataset(t, ts.URL, "env", minetest.Random(4, 10, 16), 4)
	flushFeed(t, ts.URL, "env")
	for name, tc := range map[string]struct {
		status int
		code   apiCode
		do     func() (int, []byte)
	}{
		"unknown feed": {404, codeUnknownFeed, func() (int, []byte) {
			return get(ts.URL + "/v1/feeds/nobody/convoys")
		}},
		"bad cursor": {400, codeBadCursor, func() (int, []byte) {
			return get(ts.URL + "/v1/feeds/env/convoys?cursor=nope")
		}},
		"bad wait": {400, codeBadParam, func() (int, []byte) {
			return get(ts.URL + "/v1/feeds/env/convoys?wait=-3s")
		}},
		"bad limit": {400, codeBadParam, func() (int, []byte) {
			return get(ts.URL + "/v1/feeds/env/convoys?limit=0")
		}},
		"ingest after flush": {409, codeFeedFlushed, func() (int, []byte) {
			return postJSON(t, ts.URL+"/v1/feeds/env/ingest",
				ingestRequest{Snapshots: []snapshotJSON{{T: 99}}})
		}},
		"bad JSON": {400, codeBadRequest, func() (int, []byte) {
			resp, err := http.Post(ts.URL+"/v1/feeds/env2/ingest", "application/json",
				bytes.NewReader([]byte("{nope")))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, data
		}},
		"no archive": {501, codeNoArchive, func() (int, []byte) {
			return get(ts.URL + "/v1/query/time")
		}},
	} {
		status, body := tc.do()
		if status != tc.status {
			t.Fatalf("%s: status %d, want %d: %s", name, status, tc.status, body)
		}
		if e := decodeEnvelope(t, body); e.Code != string(tc.code) {
			t.Fatalf("%s: code %q, want %q", name, e.Code, tc.code)
		}
	}
}

// TestLiveConvoysLimit pages the live convoys endpoint with ?limit: pages
// advance the cursor without skipping or repeating, and flushed is only
// reported once the page reaches the head (so a paging client can never
// stop early and miss convoys).
func TestLiveConvoysLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2})
	ds := minetest.Random(5, 10, 20)
	ingestDataset(t, ts.URL, "paged", ds, 4)
	want := flushFeed(t, ts.URL, "paged")

	var got []model.Convoy
	cursor, pages := 0, 0
	for {
		var page convoysResponse
		if code := getJSON(t, ts.URL+"/v1/feeds/paged/convoys?limit=1&cursor="+strconv.Itoa(cursor), &page); code != http.StatusOK {
			t.Fatalf("page at cursor %d: status %d", cursor, code)
		}
		if len(page.Convoys) > 1 {
			t.Fatalf("page at cursor %d: %d convoys exceed limit", cursor, len(page.Convoys))
		}
		for _, c := range page.Convoys {
			got = append(got, model.Convoy{Objs: model.NewObjSet(c.Objs...), Start: c.Start, End: c.End})
		}
		if page.Flushed {
			if page.Cursor != cursor+len(page.Convoys) {
				t.Fatalf("cursor %d + %d convoys but next is %d", cursor, len(page.Convoys), page.Cursor)
			}
			break
		}
		if len(page.Convoys) == 0 {
			t.Fatalf("unflushed empty page at cursor %d", cursor)
		}
		cursor = page.Cursor
		if pages++; pages > 10000 {
			t.Fatal("paging does not terminate")
		}
	}
	// The published pages are a superset story: every flush-final convoy
	// was published (possibly among superseded intermediates), so check
	// containment of the final set in the paged set.
	for _, w := range want {
		found := false
		for _, g := range got {
			if g.Start == w.Start && g.End == w.End && g.Objs.Equal(w.Objs) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("final convoy %v never appeared in paged output", w)
		}
	}
}
