package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/minetest"
	"repro/internal/model"
)

// jsonBody marshals v for a raw http.Post (used when the test needs the
// response headers, which postJSON discards).
func jsonBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

func TestTokenBucket(t *testing.T) {
	now := int64(0)
	b := newTokenBucket(10, 5, now) // 10 snapshots/s, burst 5

	if _, ok := b.take(5, now); !ok {
		t.Fatal("full bucket refused its burst")
	}
	wait, ok := b.take(1, now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("wait for 1 token at 10/s: %v, want ~100ms", wait)
	}
	// Refill: 250ms at 10/s is 2.5 tokens.
	now += int64(250 * time.Millisecond)
	if _, ok := b.take(2, now); !ok {
		t.Fatal("bucket did not refill")
	}
	if _, ok := b.take(1, now); ok {
		t.Fatal("bucket over-refilled")
	}
	// Refill caps at burst.
	now += int64(time.Hour)
	if _, ok := b.take(5, now); !ok {
		t.Fatal("bucket did not cap refill at burst")
	}
	// A batch larger than the whole bucket is charged the full bucket, not
	// rejected forever.
	now += int64(time.Hour)
	if _, ok := b.take(100, now); !ok {
		t.Fatal("oversized batch unservable")
	}
	if _, ok := b.take(1, now); ok {
		t.Fatal("oversized batch did not drain the bucket")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Second)

	for i := 0; i < 3; i++ {
		if _, ok := b.allow(now); !ok {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.record(ErrBackpressure, now)
	}
	if wait, ok := b.allow(now); ok || wait != time.Second {
		t.Fatalf("breaker not open after threshold: ok=%v wait=%v", ok, wait)
	}
	if got := b.trips.Load(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	if b.stateName(now) != "open" {
		t.Fatalf("state %q, want open", b.stateName(now))
	}

	// Cooldown over: exactly one probe gets through.
	now = now.Add(time.Second)
	if b.stateName(now) != "half_open" {
		t.Fatalf("state %q, want half_open", b.stateName(now))
	}
	if _, ok := b.allow(now); !ok {
		t.Fatal("half-open breaker refused the probe")
	}
	if _, ok := b.allow(now); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: straight back to open for another cooldown.
	b.record(ErrBackpressure, now)
	if _, ok := b.allow(now.Add(time.Second - 1)); ok {
		t.Fatal("reopened breaker admitted inside cooldown")
	}
	if got := b.trips.Load(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
	// Next probe succeeds: closed again, failure streak reset.
	now = now.Add(2 * time.Second)
	if _, ok := b.allow(now); !ok {
		t.Fatal("breaker refused the second probe")
	}
	b.record(nil, now)
	if b.stateName(now) != "closed" {
		t.Fatalf("state %q after successful probe, want closed", b.stateName(now))
	}
	// Neutral outcomes (eviction races, shutdown) say nothing about queue
	// health: they neither advance nor reset the queue-full streak.
	b.record(ErrBackpressure, now)
	b.record(ErrFeedEvicted, now)
	b.record(ErrBackpressure, now)
	if _, ok := b.allow(now); !ok {
		t.Fatal("a streak of 2 queue-fulls tripped a threshold-3 breaker")
	}
	b.record(ErrBackpressure, now)
	if _, ok := b.allow(now); ok {
		t.Fatal("the third queue-full did not trip the breaker")
	}
}

// TestIngestRateLimit exercises the per-feed token bucket end to end: a
// feed over its budget gets 429 rate_limited with Retry-After, other feeds
// are unaffected, and /v1/stats counts the sheds.
func TestIngestRateLimit(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 2, IngestRate: 0.001, IngestBurst: 3})
	ds := minetest.Random(6, 10, 16)
	snaps := snapshotsOf(ds, 0, 5)

	// Burst of 3 admitted, the 4th snapshot is over budget (refill is ~0 at
	// 0.001/s, so the test cannot flake on timing).
	code, body := postJSON(t, ts.URL+"/v1/feeds/limited/ingest", ingestRequest{Snapshots: snaps[:3]})
	if code != http.StatusAccepted {
		t.Fatalf("burst: status %d: %s", code, body)
	}
	code, body = postJSON(t, ts.URL+"/v1/feeds/limited/ingest", ingestRequest{Snapshots: snaps[3:4]})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over budget: status %d, want 429: %s", code, body)
	}
	if e := decodeEnvelope(t, body); e.Code != string(codeRateLimited) {
		t.Fatalf("over budget: code %q, want %q", e.Code, codeRateLimited)
	}
	resp, err := http.Post(ts.URL+"/v1/feeds/limited/ingest", "application/json",
		jsonBody(t, ingestRequest{Snapshots: snaps[4:5]}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over budget: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After breaks the backpressure contract")
	}
	// The bucket is per feed: a different feed still ingests.
	code, body = postJSON(t, ts.URL+"/v1/feeds/other/ingest", ingestRequest{Snapshots: snaps[:3]})
	if code != http.StatusAccepted {
		t.Fatalf("other feed: status %d: %s", code, body)
	}
	if st := srv.Stats(); st.Admission.RateLimitedTotal < 2 {
		t.Fatalf("stats count %d rate-limited sheds, want >= 2", st.Admission.RateLimitedTotal)
	}
}

// TestBreakerSheds stalls a shard so its queue jams, drives ingest until
// the queue-full streak trips the breaker, and checks the failure mode
// changes from queue_full to breaker_open — i.e. load is being shed before
// the queue (and its enqueue-wait) is even touched. Releasing the shard
// closes the breaker again via the half-open probe.
func TestBreakerSheds(t *testing.T) {
	release := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		Shards: 1, QueueLen: 2, BreakerThreshold: 3, BreakerCooldown: time.Second,
		testHook: func(int) { <-release },
	})
	ds := minetest.Random(7, 10, 16)
	one := snapshotsOf(ds, 0, 0)

	var queueFull, breakerOpen int
	deadline := time.Now().Add(10 * time.Second)
	for breakerOpen == 0 {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened")
		}
		code, body := postJSON(t, ts.URL+"/v1/feeds/jam/ingest", ingestRequest{Snapshots: one})
		switch code {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			switch e := decodeEnvelope(t, body); e.Code {
			case string(codeQueueFull):
				queueFull++
			case string(codeBreakerOpen):
				breakerOpen++
			default:
				t.Fatalf("unexpected 429 code %q", e.Code)
			}
		default:
			t.Fatalf("status %d: %s", code, body)
		}
	}
	if queueFull < 3 {
		t.Fatalf("breaker opened after %d queue-full rejections, want >= threshold 3", queueFull)
	}
	st := srv.Stats()
	if st.Shards[0].BreakerState != "open" {
		t.Fatalf("breaker state %q, want open", st.Shards[0].BreakerState)
	}
	if st.Admission.BreakerTripsTotal < 1 || st.Admission.BreakerRejectedTotal < 1 || st.Admission.QueueFullTotal < 3 {
		t.Fatalf("admission stats %+v do not reflect the incident", st.Admission)
	}

	// Unjam the shard; after the cooldown a probe succeeds and ingest flows
	// again.
	close(release)
	deadline = time.Now().Add(10 * time.Second)
	for {
		code, _ := postJSON(t, ts.URL+"/v1/feeds/jam/ingest", ingestRequest{Snapshots: snapshotsOf(ds, 1, 1)})
		if code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after the shard drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamCoalescingAvoidsBackpressure is the soak regression for the
// binary protocol's raison d'être: a snapshot-per-request JSON load that
// reliably trips queue-full on a stalled shard is replayed as one binary
// stream, whose chunked enqueues fit the same queue with zero 429s — and
// the mined output still matches batch PCCD.
func TestStreamCoalescingAvoidsBackpressure(t *testing.T) {
	ds := minetest.Random(8, 10, 64)
	lo, hi := ds.TimeRange()
	nTicks := int(hi - lo + 1)

	run := func(t *testing.T, send func(ts string) int) int {
		release := make(chan struct{})
		stalled := false
		srv, ts := newTestServer(t, Config{
			Shards: 1, QueueLen: 8,
			testHook: func(int) {
				if !stalled {
					stalled = true
					<-release
				}
			},
		})
		rejected := send(ts.URL)
		close(release)
		got := flushFeed(t, ts.URL, "soak")
		if rejected == 0 {
			if want := batchPCCD(t, ds); !model.ConvoysEqual(got, want) {
				t.Fatalf("soak output %v != batch %v", got, want)
			}
		}
		_ = srv
		return rejected
	}

	// JSON, one request per snapshot: the stalled actor takes the first
	// message, the queue holds 8, so 64 sequential requests must shed.
	t.Run("json-per-snapshot", func(t *testing.T) {
		rejected := run(t, func(base string) int {
			rejected := 0
			for i := 0; i < nTicks; i++ {
				code, body := postJSON(t, base+"/v1/feeds/soak/ingest",
					ingestRequest{Snapshots: snapshotsOf(ds, lo+int32(i), lo+int32(i))})
				switch code {
				case http.StatusAccepted:
				case http.StatusTooManyRequests:
					if e := decodeEnvelope(t, body); e.Code != string(codeQueueFull) {
						t.Fatalf("429 code %q, want queue_full", e.Code)
					}
					rejected++
				default:
					t.Fatalf("status %d: %s", code, body)
				}
			}
			return rejected
		})
		if rejected == 0 {
			t.Fatal("the JSON load no longer trips queue-full; the soak comparison is vacuous")
		}
	})

	// The same 64 snapshots as one binary stream: 16-tick chunks mean at
	// most 4 queue slots, so the identical server config sheds nothing.
	t.Run("binary-stream", func(t *testing.T) {
		rejected := run(t, func(base string) int {
			status, body := streamIngest(t, base, "soak", encodeDataset(t, ds, lo, hi))
			if status == http.StatusTooManyRequests {
				return 1
			}
			if status != http.StatusAccepted {
				t.Fatalf("stream: status %d: %s", status, body)
			}
			return 0
		})
		if rejected != 0 {
			t.Fatal("binary stream hit backpressure at a load the protocol is sized to absorb")
		}
	})
}

// TestRetryAfterHelpers pins the backpressure contract's arithmetic.
func TestRetryAfterHelpers(t *testing.T) {
	for _, tc := range []struct {
		in   time.Duration
		want int
	}{
		{0, 1}, {-time.Second, 1}, {time.Millisecond, 1},
		{time.Second, 1}, {1100 * time.Millisecond, 2}, {5 * time.Second, 5},
	} {
		if got := retryAfterSeconds(tc.in); got != tc.want {
			t.Fatalf("retryAfterSeconds(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
	err := &retryableError{err: ErrRateLimited, after: 3 * time.Second}
	if !errors.Is(err, ErrRateLimited) {
		t.Fatal("retryableError does not unwrap")
	}
	if got := retryAfter(err, time.Second); got != 3*time.Second {
		t.Fatalf("retryAfter = %v, want 3s", got)
	}
	if got := retryAfter(ErrBackpressure, time.Second); got != time.Second {
		t.Fatalf("retryAfter default = %v, want 1s", got)
	}
}
