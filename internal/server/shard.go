package server

import (
	convoy "repro"
)

// shardMsg is one unit of work on a shard's ingest queue: either a batch of
// snapshots for a feed, or (when flushReply is non-nil) a flush request.
// Flushes travel through the same queue as ingest, so a flush observes
// every batch enqueued before it — FIFO per shard is what makes per-feed
// output deterministic.
type shardMsg struct {
	feed       *feed
	snaps      []tick
	flushReply chan []convoy.PatternResult
}

// shard is one actor: a bounded ingest queue plus the goroutine that owns
// every feed hashed to it. All mining for those feeds happens on this one
// goroutine, so per-feed state needs no locks and per-feed processing order
// equals queue order.
type shard struct {
	id  int
	in  chan shardMsg
	srv *Server
}

// run is the actor loop; it exits when the queue is closed by Server.Close.
// The feed's pending count drops only after the message is fully processed,
// so TTL eviction (which requires pending == 0) can never collect a feed
// with work still in flight.
func (sh *shard) run() {
	for msg := range sh.in {
		if hook := sh.srv.testHook; hook != nil {
			hook(sh.id)
		}
		if msg.flushReply != nil {
			sh.flush(msg.feed, msg.flushReply)
		} else {
			sh.ingest(msg.feed, msg.snaps)
		}
		msg.feed.pending.Add(-1)
	}
}

// ingest runs one batch through the feed's reordering buffer and miner.
func (sh *shard) ingest(f *feed, snaps []tick) {
	if f.done {
		// The feed was flushed while this batch sat in the queue. This is a
		// different failure mode than watermark lateness, so it gets its own
		// counter — late_dropped stays meaningful for -window tuning.
		f.mu.Lock()
		f.stats.FlushedDropped += int64(len(snaps))
		f.mu.Unlock()
		return
	}
	var accepted, late, mined int64
	for _, s := range snaps {
		ready, isLate := f.buf.add(s.t, s.pos)
		if isLate {
			late++
			continue
		}
		accepted++
		mined += int64(len(ready))
		sh.observe(f, ready)
	}
	f.mu.Lock()
	f.stats.SnapshotsIn += accepted
	f.stats.LateDropped += late
	f.stats.TicksMined += mined
	f.mu.Unlock()
	f.publish(f.miner.Closed())
}

// flush drains the reordering buffer, ends the stream, publishes everything
// and replies with the full maximal result set.
func (sh *shard) flush(f *feed, reply chan []convoy.PatternResult) {
	if !f.done {
		rest := f.buf.drain()
		f.mu.Lock()
		f.stats.TicksMined += int64(len(rest))
		f.mu.Unlock()
		sh.observe(f, rest)
		final := f.miner.Flush()
		f.done = true
		f.publish(final) // convoys first closed by the flush itself
		f.markFlushed(final)
	}
	f.mu.Lock()
	final := f.final
	f.mu.Unlock()
	reply <- final
}

// observe feeds sealed ticks to the miner. The reordering buffer guarantees
// strictly increasing timestamps, so Observe cannot fail here; a failure
// would be a server bug and panics loudly rather than silently dropping
// data.
func (sh *shard) observe(f *feed, ticks []tick) {
	for _, tk := range ticks {
		if err := f.miner.Observe(tk.t, tk.pos); err != nil {
			panic("server: reorder buffer emitted non-monotonic tick: " + err.Error())
		}
	}
}
