package dbscan

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/model"
)

// stepEqualsScratch asserts the one invariant everything else builds on:
// Step's output is byte-identical (reflect.DeepEqual, so same clusters, same
// member order, same cluster order, nil-vs-empty included) to a scratch
// Cluster call on the same snapshot.
func stepEqualsScratch(t *testing.T, inc *Incremental, objs []model.ObjPos, eps float64, minPts int, tick int) {
	t.Helper()
	got := inc.Step(objs)
	want := Cluster(objs, eps, minPts)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tick %d: incremental %v != scratch %v", tick, got, want)
	}
}

// randomEvolution drives inc through nTicks of randomly evolving snapshots —
// jittering moves, teleports, appears, disappears, permuted input order —
// checking byte-identity against scratch after every tick.
func randomEvolution(t *testing.T, seed int64, eps float64, minPts, nObj, nTicks int) *Incremental {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inc, err := NewIncremental(eps, minPts)
	if err != nil {
		t.Fatal(err)
	}
	type state struct {
		x, y float64
		in   bool
	}
	world := make([]state, nObj)
	for i := range world {
		world[i] = state{x: rng.Float64() * 12, y: rng.Float64() * 12, in: rng.Intn(4) > 0}
	}
	for tick := 0; tick < nTicks; tick++ {
		for i := range world {
			switch r := rng.Float64(); {
			case r < 0.05:
				world[i].in = !world[i].in // churn: join or leave
			case r < 0.45:
				world[i].x += rng.NormFloat64() * 0.3 // drift
				world[i].y += rng.NormFloat64() * 0.3
			case r < 0.50:
				world[i].x = rng.Float64() * 12 // teleport
				world[i].y = rng.Float64() * 12
			}
		}
		var objs []model.ObjPos
		for i, s := range world {
			if s.in {
				objs = append(objs, pos(int32(i), s.x, s.y))
			}
		}
		// Input order is part of Cluster's contract (cluster order follows
		// first-core input index), so shuffle to prove the replay tracks it.
		rng.Shuffle(len(objs), func(a, b int) { objs[a], objs[b] = objs[b], objs[a] })
		stepEqualsScratch(t, inc, objs, eps, minPts, tick)
	}
	return inc
}

func TestIncrementalMatchesScratchRandomEvolution(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		inc := randomEvolution(t, seed, 1.0, 3, 60, 40)
		st := inc.Stats()
		if st.Fallbacks != 0 {
			t.Fatalf("seed %d: unexpected fallbacks: %+v", seed, st)
		}
		if st.Rebuilds != 1 {
			t.Fatalf("seed %d: want exactly the initial rebuild, got %+v", seed, st)
		}
	}
}

func TestIncrementalMatchesScratchParamSweep(t *testing.T) {
	for _, minPts := range []int{1, 2, 4} {
		for _, eps := range []float64{0.4, 1.5, 3.0} {
			randomEvolution(t, 99, eps, minPts, 40, 25)
		}
	}
}

// A tick with zero deltas must not touch the grid at all: same positions,
// even in a different input order, answer purely from cache.
func TestIncrementalNoDeltaTickSkipsQueries(t *testing.T) {
	inc, err := NewIncremental(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	objs := []model.ObjPos{pos(1, 0, 0), pos(2, 0.5, 0), pos(3, 5, 5), pos(4, 5.5, 5)}
	stepEqualsScratch(t, inc, objs, 1.0, 2, 0)
	q0 := inc.Stats().GridQueries
	stepEqualsScratch(t, inc, objs, 1.0, 2, 1)
	perm := []model.ObjPos{objs[2], objs[0], objs[3], objs[1]}
	stepEqualsScratch(t, inc, perm, 1.0, 2, 2)
	if q := inc.Stats().GridQueries; q != q0 {
		t.Fatalf("no-delta ticks ran %d grid queries", q-q0)
	}
	if inc.Stats().Recomputed != 0 {
		t.Fatalf("no-delta ticks recomputed neighbourhoods: %+v", inc.Stats())
	}
}

// A localized delta must dirty only nearby neighbourhoods, not the world.
func TestIncrementalLocalizedDeltaStaysLocal(t *testing.T) {
	inc, err := NewIncremental(1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 30 well-separated triads; then jiggle one point of one triad.
	var objs []model.ObjPos
	for g := 0; g < 30; g++ {
		bx := float64(g) * 100
		objs = append(objs, pos(int32(3*g), bx, 0), pos(int32(3*g+1), bx+0.4, 0), pos(int32(3*g+2), bx, 0.4))
	}
	stepEqualsScratch(t, inc, objs, 1.0, 3, 0)
	objs2 := append([]model.ObjPos(nil), objs...)
	objs2[0].Y += 0.1
	stepEqualsScratch(t, inc, objs2, 1.0, 3, 1)
	if rc := inc.Stats().Recomputed; rc != 3 {
		t.Fatalf("one in-triad move should recompute exactly its triad, recomputed %d", rc)
	}
}

// Duplicate OIDs in one snapshot are outside the identity-diff regime: the
// tick must fall back to scratch (still byte-identical) and the next clean
// tick must rebuild and carry on incrementally.
func TestIncrementalDuplicateOIDFallsBack(t *testing.T) {
	inc, err := NewIncremental(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	clean := []model.ObjPos{pos(1, 0, 0), pos(2, 0.5, 0), pos(3, 1.0, 0)}
	stepEqualsScratch(t, inc, clean, 1.0, 2, 0)
	dup := []model.ObjPos{pos(1, 0, 0), pos(2, 0.5, 0), pos(1, 1.0, 0)}
	stepEqualsScratch(t, inc, dup, 1.0, 2, 1)
	if inc.Stats().Fallbacks != 1 {
		t.Fatalf("dup tick should fall back: %+v", inc.Stats())
	}
	stepEqualsScratch(t, inc, clean, 1.0, 2, 2)
	if inc.Stats().Rebuilds != 2 {
		t.Fatalf("clean tick after dup should rebuild: %+v", inc.Stats())
	}
	stepEqualsScratch(t, inc, clean, 1.0, 2, 3)
	if inc.Stats().Fallbacks != 1 || inc.Stats().Rebuilds != 2 {
		t.Fatalf("engine should be incremental again: %+v", inc.Stats())
	}
}

// Dup on the very first tick (rebuild path) must also fall back cleanly.
func TestIncrementalDuplicateOIDOnFirstTick(t *testing.T) {
	inc, err := NewIncremental(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	dup := []model.ObjPos{pos(7, 0, 0), pos(7, 0.1, 0), pos(8, 0.2, 0)}
	stepEqualsScratch(t, inc, dup, 1.0, 2, 0)
	if inc.Stats().Fallbacks != 1 {
		t.Fatalf("want fallback on first-tick dup: %+v", inc.Stats())
	}
}

// Coordinates whose cell index leaves int32 (astronomic values, NaN, Inf)
// break grid geometry; those ticks must answer from scratch.
func TestIncrementalExtremeCoordsFallBack(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), 1e30, -1e30} {
		inc, err := NewIncremental(1.0, 2)
		if err != nil {
			t.Fatal(err)
		}
		clean := []model.ObjPos{pos(1, 0, 0), pos(2, 0.5, 0)}
		stepEqualsScratch(t, inc, clean, 1.0, 2, 0)
		weird := []model.ObjPos{pos(1, 0, 0), pos(2, 0.5, 0), pos(3, bad, 0)}
		stepEqualsScratch(t, inc, weird, 1.0, 2, 1)
		if inc.Stats().Fallbacks == 0 {
			t.Fatalf("coord %v should force a scratch tick", bad)
		}
		stepEqualsScratch(t, inc, clean, 1.0, 2, 2)
	}
	// The int32-extreme cells themselves are still *inside* the regime —
	// Cluster clamps there and so does the incremental grid.
	inc, err := NewIncremental(1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	edge := []model.ObjPos{pos(1, 0, 2147483647.0), pos(2, 0.1, 2147483647.0), pos(3, 0.2, 2147483647.0)}
	stepEqualsScratch(t, inc, edge, 1.0, 3, 0)
	edge[0].X = 0.05
	stepEqualsScratch(t, inc, edge, 1.0, 3, 1)
	if inc.Stats().Fallbacks != 0 {
		t.Fatalf("extreme-but-representable cells should stay incremental: %+v", inc.Stats())
	}
}

// Degenerate eps pins the engine to scratch permanently (Cluster's grid is
// already clamped to a point-sized cell there; nothing to amortise).
func TestIncrementalDegenerateEps(t *testing.T) {
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		inc, err := NewIncremental(eps, 1)
		if err != nil {
			t.Fatal(err)
		}
		objs := []model.ObjPos{pos(1, 0, 0), pos(2, 0, 0)}
		stepEqualsScratch(t, inc, objs, eps, 1, 0)
		stepEqualsScratch(t, inc, objs, eps, 1, 1)
		if st := inc.Stats(); st.Fallbacks != 2 || st.Rebuilds != 0 {
			t.Fatalf("eps=%v: want permanent scratch, got %+v", eps, st)
		}
	}
	if _, err := NewIncremental(1.0, 0); err == nil {
		t.Fatal("minPts=0 should be rejected")
	}
}

// Pathologically dense data (here: everyone coincident) would make the
// neighbourhood cache quadratic; the edge cap must degrade to scratch with
// backoff instead, and output must stay byte-identical throughout.
func TestIncrementalEdgeCapDegradesToScratch(t *testing.T) {
	inc, err := NewIncremental(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := 300 // 300² = 90000 edges > 64·300+4096
	objs := make([]model.ObjPos, n)
	for i := range objs {
		objs[i] = pos(int32(i), 0, 0)
	}
	for tick := 0; tick < 3; tick++ {
		stepEqualsScratch(t, inc, objs, 1.0, 2, tick)
	}
	st := inc.Stats()
	if st.Fallbacks != 3 {
		t.Fatalf("all dense ticks should answer from scratch: %+v", st)
	}
	if st.Rebuilds != 1 {
		t.Fatalf("backoff should prevent rebuild thrash: %+v", st)
	}
}

// Emptying and refilling the feed mid-stream must work: the carried state
// can shrink to nothing and grow back without a rebuild.
func TestIncrementalEmptyTicksMidStream(t *testing.T) {
	inc, err := NewIncremental(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	objs := []model.ObjPos{pos(1, 0, 0), pos(2, 0.5, 0)}
	stepEqualsScratch(t, inc, objs, 1.0, 2, 0)
	stepEqualsScratch(t, inc, nil, 1.0, 2, 1)
	stepEqualsScratch(t, inc, objs, 1.0, 2, 2)
	if st := inc.Stats(); st.Rebuilds != 1 || st.Fallbacks != 0 {
		t.Fatalf("empty tick should not reset the engine: %+v", st)
	}
}

// Reset must drop all carried state: the next Step rebuilds and sees none
// of the pre-Reset world.
func TestIncrementalReset(t *testing.T) {
	inc := randomEvolution(t, 5, 1.0, 3, 40, 10)
	inc.Reset()
	if len(inc.oidSlot) != 0 || len(inc.entries) != 0 || len(inc.nbr) != 0 || inc.valid {
		t.Fatalf("Reset left state behind")
	}
	before := inc.Stats().Rebuilds
	objs := []model.ObjPos{pos(1, 0, 0), pos(2, 0.5, 0), pos(3, 1.0, 0)}
	stepEqualsScratch(t, inc, objs, 1.0, 3, 0)
	if inc.Stats().Rebuilds != before+1 {
		t.Fatalf("Step after Reset should rebuild: %+v", inc.Stats())
	}
}

// Slot recycling across ticks: objects leaving and unrelated objects
// arriving later must not inherit stale neighbourhood state.
func TestIncrementalSlotRecycling(t *testing.T) {
	inc, err := NewIncremental(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	tickA := []model.ObjPos{pos(1, 0, 0), pos(2, 0.5, 0), pos(3, 10, 10), pos(4, 10.5, 10)}
	tickB := []model.ObjPos{pos(1, 0, 0), pos(2, 0.5, 0)} // 3,4 leave
	tickC := []model.ObjPos{pos(1, 0, 0), pos(2, 0.5, 0), pos(5, 0.9, 0), pos(6, 20, 20)}
	for i, objs := range [][]model.ObjPos{tickA, tickB, tickC, tickB, tickA} {
		stepEqualsScratch(t, inc, objs, 1.0, 2, i)
	}
	if st := inc.Stats(); st.Fallbacks != 0 || st.Rebuilds != 1 {
		t.Fatalf("churn should stay incremental: %+v", st)
	}
}
