package dbscan

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// The churn benchmarks model a convoyd feed at steady state: 4000 objects
// in 125 well-separated groups of 32, where each tick a churn-fraction of
// the groups jiggles (sub-eps moves, the common GPS-fix case) and the rest
// hold position. churn=100 moves every group every tick — the worst case
// for delta reasoning, where the incremental engine degenerates to
// re-querying everything; churn=1 is the "mostly parked" regime the
// ROADMAP's feeds-per-node target cares about.

const (
	benchGroups   = 125
	benchPerGroup = 32
	benchEps      = 1.5
	benchMinPts   = 4
)

func benchWorld() []model.ObjPos {
	objs := make([]model.ObjPos, 0, benchGroups*benchPerGroup)
	for g := 0; g < benchGroups; g++ {
		cx, cy := float64(g%12)*50, float64(g/12)*50
		for m := 0; m < benchPerGroup; m++ {
			objs = append(objs, model.ObjPos{
				OID: int32(g*benchPerGroup + m),
				X:   cx + float64(m%6)*0.9,
				Y:   cy + float64(m/6)*0.9,
			})
		}
	}
	return objs
}

// jiggleGroups applies one tick of churn in place: `count` groups, rotating
// through the group list so every group eventually moves, each member
// drifting by a sub-eps random walk.
func jiggleGroups(objs []model.ObjPos, rng *rand.Rand, next, count int) int {
	for c := 0; c < count; c++ {
		g := next % benchGroups
		next++
		for m := 0; m < benchPerGroup; m++ {
			i := g*benchPerGroup + m
			objs[i].X += (rng.Float64() - 0.5) * 0.2
			objs[i].Y += (rng.Float64() - 0.5) * 0.2
		}
	}
	return next
}

func churnCounts(churnPct int) int {
	n := benchGroups * churnPct / 100
	if n < 1 {
		n = 1
	}
	return n
}

// BenchmarkIncrementalStep measures one delta-fed clustering tick at each
// churn fraction. The mutation between ticks happens outside the timer, so
// ns/op is purely Step: diff, grid patch, dirty re-queries, replay.
func BenchmarkIncrementalStep(b *testing.B) {
	for _, churn := range []int{1, 10, 50, 100} {
		b.Run(fmt.Sprintf("churn=%d", churn), func(b *testing.B) {
			objs := benchWorld()
			rng := rand.New(rand.NewSource(7))
			count := churnCounts(churn)
			inc, err := NewIncremental(benchEps, benchMinPts)
			if err != nil {
				b.Fatal(err)
			}
			inc.Step(objs) // pay the initial rebuild outside the loop
			next := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				next = jiggleGroups(objs, rng, next, count)
				b.StartTimer()
				inc.Step(objs)
			}
			if st := inc.Stats(); st.Fallbacks != 0 || st.Rebuilds != 1 {
				b.Fatalf("benchmark fell out of the incremental path: %+v", st)
			}
		})
	}
}

// BenchmarkScratchStep is the before picture: the same worlds clustered
// from scratch each tick, exactly what StreamMiner.Observe did before the
// incremental engine.
func BenchmarkScratchStep(b *testing.B) {
	for _, churn := range []int{1, 10, 50, 100} {
		b.Run(fmt.Sprintf("churn=%d", churn), func(b *testing.B) {
			objs := benchWorld()
			rng := rand.New(rand.NewSource(7))
			count := churnCounts(churn)
			next := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				next = jiggleGroups(objs, rng, next, count)
				b.StartTimer()
				Cluster(objs, benchEps, benchMinPts)
			}
		})
	}
}
