// Package dbscan implements density-based clustering of 2-D object
// positions (Ester et al., KDD'96) with a uniform-grid spatial index, which
// is the clustering substrate every convoy miner in this repository builds
// on.
//
// Convoy semantics (paper §3.1): an (m,eps)-cluster is a maximal set of
// density-connected objects of size ≥ m. Running DBSCAN with minPts = m and
// radius eps yields exactly those clusters; noise points belong to no
// cluster. Border points are assigned to the first cluster that reaches
// them, matching the reference implementations the paper compares against.
//
// The grid index buckets points into eps×eps cells, so an eps-neighbourhood
// query inspects at most the 3×3 surrounding cells: expected O(1) per query
// for non-degenerate data, O(n) per clustering run, instead of the O(n²) of
// index-free DBSCAN that the paper identifies as a bottleneck.
package dbscan

import (
	"slices"

	"repro/internal/model"
)

const (
	unvisited = -2 // not yet processed
	noise     = -1 // processed, not (yet) in any cluster
)

// Cluster runs DBSCAN over objs and returns the (minPts,eps)-clusters as
// sorted object sets in deterministic order. Objects that end up as noise
// are omitted. The input slice is not modified.
//
// Cluster is goroutine-safe: it holds no package state and allocates its
// index, labels and buffers per call, so independent calls may run
// concurrently (the parallel k/2-hop phases rely on this). Concurrent
// calls must not mutate a shared input slice while a call is in flight.
func Cluster(objs []model.ObjPos, eps float64, minPts int) []model.ObjSet {
	n := len(objs)
	if n == 0 || minPts <= 0 || n < minPts {
		return nil
	}
	idx := newGrid(objs, eps)
	labels := make([]int32, n) // int32 halves the per-call zeroing cost
	for i := range labels {
		labels[i] = unvisited
	}
	epsSq := eps * eps

	var clusters []model.ObjSet
	var frontier []int // BFS queue, reused across seeds
	var nbuf []int     // neighbour buffer, reused across queries

	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nbuf = idx.neighbors(i, epsSq, nbuf[:0])
		if len(nbuf) < minPts {
			labels[i] = noise
			continue
		}
		// i is a core point: start a new cluster and expand it BFS-style.
		cid := int32(len(clusters))
		labels[i] = cid
		cluster := model.ObjSet{objs[i].OID}
		frontier = frontier[:0]
		for _, j := range nbuf {
			if j != i {
				frontier = append(frontier, j)
			}
		}
		for len(frontier) > 0 {
			j := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			switch labels[j] {
			case unvisited:
				labels[j] = cid
				cluster = append(cluster, objs[j].OID)
				nbuf = idx.neighbors(j, epsSq, nbuf[:0])
				if len(nbuf) >= minPts {
					// j is core: its whole neighbourhood joins the frontier.
					for _, q := range nbuf {
						if labels[q] == unvisited || labels[q] == noise {
							frontier = append(frontier, q)
						}
					}
				}
			case noise:
				// Border point previously dismissed as noise.
				labels[j] = cid
				cluster = append(cluster, objs[j].OID)
			}
		}
		if len(cluster) >= minPts {
			// Each point index joins a cluster exactly once (the labels
			// array guards), so after an in-place sort only duplicate OIDs —
			// distinct points sharing an id, which the snapshot contract
			// discourages but Cluster's API does not forbid — can break the
			// ObjSet invariant. The common case is a branch-predicted scan;
			// the dedup pass runs only when a duplicate actually exists.
			slices.Sort(cluster)
			for j := 1; j < len(cluster); j++ {
				if cluster[j] == cluster[j-1] {
					cluster = slices.Compact(cluster)
					break
				}
			}
			clusters = append(clusters, cluster)
		} else {
			// Cannot happen with standard DBSCAN (a core point has ≥ minPts
			// neighbours, all of which join its cluster), but guard anyway.
			for k := range labels {
				if labels[k] == cid {
					labels[k] = noise
				}
			}
		}
	}
	return clusters
}

// ClusterContaining returns the members of each cluster as index slices into
// objs instead of OIDs. Used by tests that verify density-connectivity
// directly on positions.
func ClusterContaining(objs []model.ObjPos, eps float64, minPts int) [][]int {
	n := len(objs)
	if n == 0 || minPts <= 0 || n < minPts {
		return nil
	}
	clusters := Cluster(objs, eps, minPts)
	byOID := make(map[int32]int, n)
	for i, p := range objs {
		byOID[p.OID] = i
	}
	out := make([][]int, len(clusters))
	for ci, c := range clusters {
		for _, oid := range c {
			out[ci] = append(out[ci], byOID[oid])
		}
	}
	return out
}
