package dbscan

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"repro/internal/model"
)

// Incremental maintains DBSCAN clustering across a stream of snapshots.
// Consecutive ticks of a trajectory feed share almost all objects and almost
// all cluster structure, so instead of rebuilding the grid index and
// re-running every eps-neighbourhood query per tick (what Cluster does), an
// Incremental carries three things across ticks:
//
//   - the flat sorted (packed cell key, point slot) grid, patched by a
//     filter+merge pass instead of a full rebuild+sort;
//   - each live object's cached eps-neighbourhood (as point slots);
//   - the object→slot identity map used to diff snapshots by OID.
//
// Each Step diffs the new snapshot against the previous one, classifying
// every object as unchanged, moved, appeared or disappeared. Only the
// neighbourhoods those deltas touch are dirty — a point's eps-neighbourhood
// can change only if the point itself is a delta or lies within eps of a
// delta's old or new position — so only those are re-queried against the
// grid. Clustering is then *replayed* over the cached neighbourhoods with
// exactly the control flow of Cluster (same seed scan in input order, same
// BFS expansion, same border-point first-reach assignment, same sub-minPts
// discard guard), which makes the output byte-identical to a from-scratch
// Cluster call on the same snapshot: neighbourhood *contents* fully
// determine Cluster's output, and the cache holds exactly the sets the
// scratch grid would compute.
//
// When a snapshot falls outside the regime the delta reasoning is proven
// for, Step degrades to scratch Cluster (still byte-identical, trivially)
// and drops its state:
//
//   - duplicate OIDs within one snapshot (identity diffing is ill-defined);
//   - coordinates whose cell index would overflow int32 (grid geometry, and
//     with it the dirty-neighbourhood argument, breaks down), including
//     NaN/Inf positions;
//   - degenerate eps (≤ 0, NaN or Inf), where Cluster's own grid is already
//     clamped to a point-sized cell;
//   - cached neighbourhoods exceeding the memory cap (pathologically dense
//     data), with a backoff so near-quadratic inputs don't thrash rebuilds.
//
// An Incremental is not safe for concurrent use; like cmc.Miner it relies
// on the single-owner-per-feed rule of the convoyd shard actors. Batch
// miners (k/2-hop, DCM, CMC reference) keep calling scratch Cluster — their
// phases cluster arbitrary timestamps in arbitrary order, so there is no
// previous tick to diff against, and the scratch path doubles as the frozen
// oracle the differential and fuzz suites compare this engine to.
type Incremental struct {
	rawEps float64 // as given; used for scratch fallback calls
	eps    float64 // clamped like newGrid; used for cell math
	epsSq  float64 // rawEps², matching Cluster's distance threshold
	minPts int

	// degenerate pins the engine to scratch Cluster forever: with eps ≤ 0
	// every point is its own sole neighbour and there is nothing to amortise.
	degenerate bool
	// valid reports whether the carried state describes the previous tick.
	// False initially, after Reset, and after any fallback tick.
	valid bool
	// scratchTicks > 0 forces that many Steps through scratch Cluster before
	// the next rebuild attempt (set when the edge cap trips).
	scratchTicks int

	// --- carried state (valid == true) -----------------------------------
	oidSlot    map[int32]int32 // OID → slot
	oids       []int32         // slot → OID
	posX       []float64       // slot → position
	posY       []float64
	nbr        [][]int32  // slot → cached eps-neighbourhood (slots, incl. self)
	alive      []int32    // live slots, arbitrary order
	freeSlots  []int32    // recyclable slots; freed at end of tick, so a slot
	entries    []incEntry // never moves between objects within one tick
	totalEdges int

	// --- per-tick scratch, reused across ticks ---------------------------
	epoch    int64
	seenTick []int64 // slot → epoch when matched in the input pass
	affTick  []int64 // slot → epoch when marked dirty
	rmTick   []int64 // slot → epoch when its grid entry is scheduled out
	labels   []int32 // slot → replay label (unvisited/noise/cluster id)
	inOrder  []int32 // input index → slot
	moved    []movedRec
	gone     []goneRec
	appeared []int32
	affected []int32
	adds     []incEntry
	mergeBuf []incEntry
	qbuf     []int32
	frontier []int32

	stats IncrementalStats
}

// incEntry locates one live slot in cell-key order (see gridEntry).
type incEntry struct {
	key  uint64
	slot int32
}

type movedRec struct {
	slot       int32
	oldX, oldY float64
}

type goneRec struct {
	slot int32
	x, y float64
}

// IncrementalStats counts what the engine did since construction (they
// survive Reset). Tests assert the delta machinery through these: a
// no-delta tick must run zero grid queries, a localized delta must
// recompute only nearby neighbourhoods, a fallback must be visible.
type IncrementalStats struct {
	Ticks       int64 // Step calls
	Rebuilds    int64 // full state rebuilds (first tick, post-Reset, post-fallback)
	Fallbacks   int64 // ticks answered by scratch Cluster
	GridQueries int64 // eps-neighbourhood queries against the incremental grid
	Recomputed  int64 // cached neighbourhoods recomputed by delta ticks
}

const (
	// edgeCap bounds the cached-neighbourhood memory: past 64 neighbours per
	// point on average the data is far denser than convoy workloads (group
	// sizes of tens), the incremental win evaporates, and the cache would
	// approach O(n²); degrade to scratch instead.
	edgeCapPerPoint = 64
	edgeCapSlack    = 4096
	// scratchBackoff is how many ticks to stay on scratch Cluster after the
	// edge cap trips, so a persistently dense feed pays one wasted rebuild
	// per backoff window instead of per tick.
	scratchBackoff = 16
)

func edgeCap(n int) int { return edgeCapPerPoint*n + edgeCapSlack }

// NewIncremental creates an incremental clustering engine for the given
// DBSCAN parameters (the same eps and minPts that would be passed to
// Cluster).
func NewIncremental(eps float64, minPts int) (*Incremental, error) {
	if minPts < 1 {
		return nil, fmt.Errorf("dbscan: minPts must be ≥ 1, got %d", minPts)
	}
	inc := &Incremental{
		rawEps:  eps,
		eps:     eps,
		epsSq:   eps * eps,
		minPts:  minPts,
		oidSlot: make(map[int32]int32),
	}
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		inc.degenerate = true
		inc.eps = math.SmallestNonzeroFloat64
	}
	return inc, nil
}

// Stats returns the cumulative counters.
func (inc *Incremental) Stats() IncrementalStats { return inc.stats }

// Reset discards all carried state and releases its memory, returning the
// engine to its initial condition (counters excepted). The next Step
// rebuilds from scratch. StreamMiner.Reset and convoyd feed eviction route
// here.
func (inc *Incremental) Reset() {
	*inc = Incremental{
		rawEps:     inc.rawEps,
		eps:        inc.eps,
		epsSq:      inc.epsSq,
		minPts:     inc.minPts,
		degenerate: inc.degenerate,
		oidSlot:    make(map[int32]int32),
		epoch:      inc.epoch,
		stats:      inc.stats,
	}
}

// Step ingests the next snapshot and returns its (minPts,eps)-clusters,
// byte-identical to Cluster(objs, eps, minPts): same sorted member sets in
// the same deterministic order. The input slice is not modified and not
// retained. Unlike Cluster, Step is stateful: consecutive calls must carry
// consecutive snapshots of the same feed for the delta reasoning to pay
// off (correctness never depends on it — any sequence of snapshots yields
// scratch-identical output, a fully disjoint one just rebuilds everything).
func (inc *Incremental) Step(objs []model.ObjPos) []model.ObjSet {
	inc.stats.Ticks++
	if inc.degenerate {
		return inc.fallback(objs)
	}
	if inc.scratchTicks > 0 {
		inc.scratchTicks--
		return inc.fallback(objs)
	}
	if !inc.valid {
		return inc.rebuild(objs)
	}
	return inc.advance(objs)
}

// fallback answers one tick with scratch Cluster. Callers that detected an
// inconsistency mid-update must clearState first.
func (inc *Incremental) fallback(objs []model.ObjPos) []model.ObjSet {
	inc.stats.Fallbacks++
	return Cluster(objs, inc.rawEps, inc.minPts)
}

// cellable reports whether v lands in a cell whose coordinate fits int32.
// Beyond that the float→int32 conversion in cellOf is implementation-
// defined and the "neighbours live in the 3×3 block" invariant breaks, so
// such snapshots (astronomic coordinates, NaN, Inf) go to scratch. NaN
// fails both comparisons.
func (inc *Incremental) cellable(v float64) bool {
	c := math.Floor(v / inc.eps)
	return c >= math.MinInt32 && c <= math.MaxInt32
}

func (inc *Incremental) keyOf(x, y float64) uint64 {
	return packKey(int32(math.Floor(x/inc.eps)), int32(math.Floor(y/inc.eps)))
}

// clearState drops all carried state (releasing neighbourhood memory) but
// keeps slice capacity where harmless, so the rebuild after a transient
// fallback reuses buffers.
func (inc *Incremental) clearState() {
	inc.valid = false
	clear(inc.oidSlot)
	for i := range inc.nbr {
		inc.nbr[i] = nil
	}
	inc.nbr = inc.nbr[:0]
	inc.oids = inc.oids[:0]
	inc.posX = inc.posX[:0]
	inc.posY = inc.posY[:0]
	inc.alive = inc.alive[:0]
	inc.freeSlots = inc.freeSlots[:0]
	inc.entries = inc.entries[:0]
	inc.adds = inc.adds[:0]
	inc.seenTick = inc.seenTick[:0]
	inc.affTick = inc.affTick[:0]
	inc.rmTick = inc.rmTick[:0]
	inc.labels = inc.labels[:0]
	inc.totalEdges = 0
}

// allocSlot assigns a slot to a newly appeared object. Freed slots are only
// recycled on later ticks (freeSlots grows at end-of-tick), so within one
// tick a slot identifies one object in every cached structure.
func (inc *Incremental) allocSlot(oid int32, x, y float64) int32 {
	var s int32
	if k := len(inc.freeSlots); k > 0 {
		s = inc.freeSlots[k-1]
		inc.freeSlots = inc.freeSlots[:k-1]
		inc.oids[s], inc.posX[s], inc.posY[s] = oid, x, y
		inc.nbr[s] = inc.nbr[s][:0]
	} else {
		s = int32(len(inc.oids))
		inc.oids = append(inc.oids, oid)
		inc.posX = append(inc.posX, x)
		inc.posY = append(inc.posY, y)
		inc.nbr = append(inc.nbr, nil)
		inc.seenTick = append(inc.seenTick, 0)
		inc.affTick = append(inc.affTick, 0)
		inc.rmTick = append(inc.rmTick, 0)
		inc.labels = append(inc.labels, 0)
	}
	inc.oidSlot[oid] = s
	inc.alive = append(inc.alive, s)
	return s
}

// queryAt returns the slots of all live points within eps of (x, y),
// mirroring grid.neighbors: 3 binary searches plus 3 linear scans over the
// sorted entries, with the same int32-extreme clamping and the same
// model.DistSq comparison so float behaviour is bit-identical to scratch.
func (inc *Incremental) queryAt(x, y float64, dst []int32) []int32 {
	inc.stats.GridQueries++
	p := model.ObjPos{X: x, Y: y}
	cx := int32(math.Floor(x / inc.eps))
	cy := int32(math.Floor(y / inc.eps))
	cyLo, cyHi := cy-1, cy+1
	if cy == math.MinInt32 {
		cyLo = cy
	}
	if cy == math.MaxInt32 {
		cyHi = cy
	}
	e := inc.entries
	for dx := int32(-1); dx <= 1; dx++ {
		if (dx < 0 && cx == math.MinInt32) || (dx > 0 && cx == math.MaxInt32) {
			continue
		}
		lo := packKey(cx+dx, cyLo)
		hi := packKey(cx+dx, cyHi)
		a, b := 0, len(e)
		for a < b {
			mid := int(uint(a+b) >> 1)
			if e[mid].key < lo {
				a = mid + 1
			} else {
				b = mid
			}
		}
		for ; a < len(e) && e[a].key <= hi; a++ {
			s := e[a].slot
			if model.DistSq(p, model.ObjPos{X: inc.posX[s], Y: inc.posY[s]}) <= inc.epsSq {
				dst = append(dst, s)
			}
		}
	}
	return dst
}

// rebuild constructs the full state from one snapshot: every slot, the
// sorted grid, every neighbourhood. Costs one scratch clustering plus the
// cache fill; subsequent ticks amortise it.
func (inc *Incremental) rebuild(objs []model.ObjPos) []model.ObjSet {
	inc.stats.Rebuilds++
	inc.clearState()
	inc.epoch++
	ep := inc.epoch
	inOrder := inc.inOrder[:0]
	for _, p := range objs {
		if _, dup := inc.oidSlot[p.OID]; dup || !inc.cellable(p.X) || !inc.cellable(p.Y) {
			inc.inOrder = inOrder[:0]
			inc.clearState()
			return inc.fallback(objs)
		}
		s := inc.allocSlot(p.OID, p.X, p.Y)
		inc.seenTick[s] = ep
		inc.labels[s] = unvisited
		inOrder = append(inOrder, s)
	}
	inc.inOrder = inOrder
	es := inc.entries[:0]
	for _, s := range inOrder {
		es = append(es, incEntry{key: inc.keyOf(inc.posX[s], inc.posY[s]), slot: s})
	}
	slices.SortFunc(es, func(a, b incEntry) int { return cmp.Compare(a.key, b.key) })
	inc.entries = es
	cap := edgeCap(len(objs))
	for _, s := range inOrder {
		inc.nbr[s] = inc.queryAt(inc.posX[s], inc.posY[s], inc.nbr[s][:0])
		inc.totalEdges += len(inc.nbr[s])
		if inc.totalEdges > cap {
			inc.clearState()
			inc.scratchTicks = scratchBackoff
			return inc.fallback(objs)
		}
	}
	inc.valid = true
	return inc.replay()
}

// advance is the incremental tick: diff, patch the grid, re-query dirty
// neighbourhoods, replay.
func (inc *Incremental) advance(objs []model.ObjPos) []model.ObjSet {
	inc.epoch++
	ep := inc.epoch

	// Pass 1 — match the snapshot against carried identity, in input order.
	inOrder := inc.inOrder[:0]
	moved := inc.moved[:0]
	appeared := inc.appeared[:0]
	for _, p := range objs {
		s, ok := inc.oidSlot[p.OID]
		if ok && inc.seenTick[s] == ep {
			// Duplicate OID in one snapshot: identity diffing is ill-defined
			// and earlier iterations already mutated positions, so drop the
			// state wholesale and answer from scratch.
			inc.inOrder = inOrder[:0]
			inc.moved, inc.appeared = moved[:0], appeared[:0]
			inc.clearState()
			return inc.fallback(objs)
		}
		if ok {
			if p.X != inc.posX[s] || p.Y != inc.posY[s] {
				if !inc.cellable(p.X) || !inc.cellable(p.Y) {
					inc.inOrder = inOrder[:0]
					inc.moved, inc.appeared = moved[:0], appeared[:0]
					inc.clearState()
					return inc.fallback(objs)
				}
				moved = append(moved, movedRec{slot: s, oldX: inc.posX[s], oldY: inc.posY[s]})
				inc.posX[s], inc.posY[s] = p.X, p.Y
			}
		} else {
			if !inc.cellable(p.X) || !inc.cellable(p.Y) {
				inc.inOrder = inOrder[:0]
				inc.moved, inc.appeared = moved[:0], appeared[:0]
				inc.clearState()
				return inc.fallback(objs)
			}
			s = inc.allocSlot(p.OID, p.X, p.Y)
			appeared = append(appeared, s)
		}
		inc.seenTick[s] = ep
		inc.labels[s] = unvisited
		inOrder = append(inOrder, s)
	}
	inc.inOrder, inc.moved, inc.appeared = inOrder, moved, appeared

	// Pass 2 — live slots the snapshot did not mention have disappeared.
	gone := inc.gone[:0]
	w := 0
	for _, s := range inc.alive {
		if inc.seenTick[s] == ep {
			inc.alive[w] = s
			w++
		} else {
			gone = append(gone, goneRec{slot: s, x: inc.posX[s], y: inc.posY[s]})
			delete(inc.oidSlot, inc.oids[s])
		}
	}
	inc.alive = inc.alive[:w]
	inc.gone = gone

	if len(moved)+len(appeared)+len(gone) > 0 {
		inc.applyDeltas(ep)
	}

	out := inc.replay()

	// Free disappeared slots only now: nothing in this tick may recycle
	// them, and every stale reference to them was recomputed away above.
	for _, g := range gone {
		inc.totalEdges -= len(inc.nbr[g.slot])
		inc.nbr[g.slot] = inc.nbr[g.slot][:0]
		inc.freeSlots = append(inc.freeSlots, g.slot)
	}
	if inc.totalEdges > edgeCap(len(objs)) {
		// This tick's answer is already consistent; stop carrying the cache
		// for data this dense.
		inc.clearState()
		inc.scratchTicks = scratchBackoff
	}
	return out
}

// applyDeltas patches the sorted grid and recomputes exactly the dirty
// neighbourhoods: those of points within eps of some delta's old or new
// position (which includes every moved/appeared point itself, at distance
// zero from its own new position).
func (inc *Incremental) applyDeltas(ep int64) {
	// Patch the grid: schedule entry removals for disappeared slots and for
	// moved slots that changed cell, collect additions, then filter+merge —
	// O(n + d·log d) instead of a full rebuild's O(n·log n).
	adds := inc.adds[:0]
	removed := len(inc.gone)
	for _, g := range inc.gone {
		inc.rmTick[g.slot] = ep
	}
	for _, m := range inc.moved {
		oldKey := inc.keyOf(m.oldX, m.oldY)
		newKey := inc.keyOf(inc.posX[m.slot], inc.posY[m.slot])
		if oldKey != newKey {
			inc.rmTick[m.slot] = ep
			adds = append(adds, incEntry{key: newKey, slot: m.slot})
			removed++
		}
	}
	for _, s := range inc.appeared {
		adds = append(adds, incEntry{key: inc.keyOf(inc.posX[s], inc.posY[s]), slot: s})
	}
	if removed > 0 || len(adds) > 0 {
		slices.SortFunc(adds, func(a, b incEntry) int { return cmp.Compare(a.key, b.key) })
		out := inc.mergeBuf[:0]
		ai := 0
		for _, e := range inc.entries {
			if inc.rmTick[e.slot] == ep {
				continue
			}
			for ai < len(adds) && adds[ai].key < e.key {
				out = append(out, adds[ai])
				ai++
			}
			out = append(out, e)
		}
		out = append(out, adds[ai:]...)
		inc.mergeBuf = inc.entries
		inc.entries = out
	}
	inc.adds = adds[:0]

	// Mark dirty neighbourhoods by querying the *patched* grid around every
	// delta's old and new position.
	affected := inc.affected[:0]
	q := inc.qbuf
	mark := func(x, y float64) {
		q = inc.queryAt(x, y, q[:0])
		for _, s := range q {
			if inc.affTick[s] != ep {
				inc.affTick[s] = ep
				affected = append(affected, s)
			}
		}
	}
	for _, m := range inc.moved {
		mark(m.oldX, m.oldY)
		mark(inc.posX[m.slot], inc.posY[m.slot])
	}
	for _, g := range inc.gone {
		mark(g.x, g.y)
	}
	for _, s := range inc.appeared {
		mark(inc.posX[s], inc.posY[s])
	}
	inc.qbuf = q[:0]

	for _, s := range affected {
		inc.totalEdges -= len(inc.nbr[s])
		inc.nbr[s] = inc.queryAt(inc.posX[s], inc.posY[s], inc.nbr[s][:0])
		inc.totalEdges += len(inc.nbr[s])
	}
	inc.stats.Recomputed += int64(len(affected))
	inc.affected = affected[:0]
}

// replay runs Cluster's exact control flow over the cached neighbourhoods:
// seed scan in input order, BFS expansion through core points, first-reach
// border assignment, sub-minPts discard. Because the cached sets equal what
// a fresh grid would answer, the result is byte-identical to scratch — and
// it costs integer work only, no distance computations.
func (inc *Incremental) replay() []model.ObjSet {
	n := len(inc.inOrder)
	if n == 0 || n < inc.minPts {
		return nil
	}
	var clusters []model.ObjSet
	frontier := inc.frontier[:0]
	for _, s := range inc.inOrder {
		if inc.labels[s] != unvisited {
			continue
		}
		if len(inc.nbr[s]) < inc.minPts {
			inc.labels[s] = noise
			continue
		}
		cid := int32(len(clusters))
		inc.labels[s] = cid
		cluster := model.ObjSet{inc.oids[s]}
		frontier = frontier[:0]
		for _, j := range inc.nbr[s] {
			if j != s {
				frontier = append(frontier, j)
			}
		}
		for len(frontier) > 0 {
			j := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			switch inc.labels[j] {
			case unvisited:
				inc.labels[j] = cid
				cluster = append(cluster, inc.oids[j])
				if nb := inc.nbr[j]; len(nb) >= inc.minPts {
					for _, q := range nb {
						if inc.labels[q] == unvisited || inc.labels[q] == noise {
							frontier = append(frontier, q)
						}
					}
				}
			case noise:
				inc.labels[j] = cid
				cluster = append(cluster, inc.oids[j])
			}
		}
		if len(cluster) >= inc.minPts {
			slices.Sort(cluster)
			for k := 1; k < len(cluster); k++ {
				if cluster[k] == cluster[k-1] {
					cluster = slices.Compact(cluster)
					break
				}
			}
			clusters = append(clusters, cluster)
		} else {
			for _, s2 := range inc.inOrder {
				if inc.labels[s2] == cid {
					inc.labels[s2] = noise
				}
			}
		}
	}
	inc.frontier = frontier[:0]
	return clusters
}
