package dbscan

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

func pos(oid int32, x, y float64) model.ObjPos { return model.ObjPos{OID: oid, X: x, Y: y} }

func TestEmptyAndDegenerateInputs(t *testing.T) {
	if got := Cluster(nil, 1, 2); got != nil {
		t.Fatalf("nil input should give nil, got %v", got)
	}
	objs := []model.ObjPos{pos(1, 0, 0)}
	if got := Cluster(objs, 1, 2); got != nil {
		t.Fatalf("fewer points than minPts should give nil, got %v", got)
	}
	if got := Cluster(objs, 1, 0); got != nil {
		t.Fatalf("minPts=0 should give nil, got %v", got)
	}
	if got := Cluster(objs, 0, 1); len(got) != 1 {
		t.Fatalf("eps=0 minPts=1 should give singleton cluster, got %v", got)
	}
}

func TestTwoSeparatedClusters(t *testing.T) {
	objs := []model.ObjPos{
		pos(1, 0, 0), pos(2, 0.5, 0), pos(3, 1.0, 0),
		pos(4, 100, 0), pos(5, 100.5, 0), pos(6, 101, 0),
		pos(7, 50, 50), // noise
	}
	got := Cluster(objs, 0.6, 3)
	if len(got) != 2 {
		t.Fatalf("want 2 clusters, got %v", got)
	}
	want1, want2 := model.NewObjSet(1, 2, 3), model.NewObjSet(4, 5, 6)
	found1, found2 := false, false
	for _, c := range got {
		if c.Equal(want1) {
			found1 = true
		}
		if c.Equal(want2) {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Fatalf("clusters wrong: %v", got)
	}
}

func TestChainIsDensityConnected(t *testing.T) {
	// A long chain: each point within eps of the next, so with minPts=2 all
	// points are density connected through the chain.
	var objs []model.ObjPos
	for i := 0; i < 50; i++ {
		objs = append(objs, pos(int32(i), float64(i)*0.9, 0))
	}
	got := Cluster(objs, 1.0, 2)
	if len(got) != 1 || len(got[0]) != 50 {
		t.Fatalf("chain should form one cluster of 50, got %v", got)
	}
}

func TestChainBreaksWithHigherMinPts(t *testing.T) {
	// Same chain, minPts=3: interior points have 3 neighbours (self + 2),
	// endpoints only 2, so endpoints become border points of the single
	// cluster; the chain still holds together.
	var objs []model.ObjPos
	for i := 0; i < 10; i++ {
		objs = append(objs, pos(int32(i), float64(i)*0.9, 0))
	}
	got := Cluster(objs, 1.0, 3)
	if len(got) != 1 || len(got[0]) != 10 {
		t.Fatalf("chain with minPts=3 should still be one cluster, got %v", got)
	}
}

func TestBridgeObjectConnectsGroups(t *testing.T) {
	// Two pairs connected only through a bridge point in the middle. This is
	// the "partial connectivity" situation fully-connected convoy validation
	// cares about: removing the bridge splits the cluster.
	objs := []model.ObjPos{
		pos(1, 0, 0), pos(2, 0.4, 0),
		pos(10, 1.0, 0), // bridge
		pos(3, 1.6, 0), pos(4, 2.0, 0),
	}
	withBridge := Cluster(objs, 0.7, 2)
	if len(withBridge) != 1 || len(withBridge[0]) != 5 {
		t.Fatalf("with bridge: want one cluster of 5, got %v", withBridge)
	}
	noBridge := Cluster([]model.ObjPos{objs[0], objs[1], objs[3], objs[4]}, 0.7, 2)
	if len(noBridge) != 2 {
		t.Fatalf("without bridge: want two clusters, got %v", noBridge)
	}
}

func TestNoiseExcluded(t *testing.T) {
	objs := []model.ObjPos{
		pos(1, 0, 0), pos(2, 0.1, 0), pos(3, 0.2, 0),
		pos(99, 10, 10),
	}
	got := Cluster(objs, 0.5, 3)
	if len(got) != 1 {
		t.Fatalf("want 1 cluster, got %v", got)
	}
	if got[0].Contains(99) {
		t.Fatalf("noise point 99 should not be clustered")
	}
}

func TestMinClusterSizeRespected(t *testing.T) {
	// With minPts = m, every returned cluster must have ≥ m members.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var objs []model.ObjPos
		n := rng.Intn(80) + 1
		for i := 0; i < n; i++ {
			objs = append(objs, pos(int32(i), rng.Float64()*10, rng.Float64()*10))
		}
		m := rng.Intn(5) + 2
		for _, c := range Cluster(objs, 0.8, m) {
			if len(c) < m {
				t.Fatalf("cluster %v smaller than m=%d", c, m)
			}
		}
	}
}

func TestClustersDisjointAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var objs []model.ObjPos
		n := rng.Intn(120) + 2
		for i := 0; i < n; i++ {
			objs = append(objs, pos(int32(i), rng.Float64()*5, rng.Float64()*5))
		}
		clusters := Cluster(objs, 0.5, 3)
		seen := map[int32]bool{}
		for _, c := range clusters {
			if !c.Valid() {
				t.Fatalf("cluster not sorted/deduped: %v", c)
			}
			for _, oid := range c {
				if seen[oid] {
					t.Fatalf("object %d in two clusters", oid)
				}
				seen[oid] = true
			}
		}
	}
}

// Brute-force DBSCAN used as a reference: O(n²) neighbourhoods, same border
// semantics do not necessarily match, so we compare the partition of CORE
// points (which is unique for DBSCAN regardless of visit order) plus total
// membership counts of clusters when borders are unambiguous.
func bruteCorePartition(objs []model.ObjPos, eps float64, minPts int) map[int32]int32 {
	n := len(objs)
	epsSq := eps * eps
	nbrs := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if model.DistSq(objs[i], objs[j]) <= epsSq {
				nbrs[i] = append(nbrs[i], j)
			}
		}
	}
	core := make([]bool, n)
	for i := range nbrs {
		core[i] = len(nbrs[i]) >= minPts
	}
	// Union core points that are within eps of each other.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		for _, j := range nbrs[i] {
			if core[j] {
				union(i, j)
			}
		}
	}
	// Map each core point's OID to a canonical root OID.
	out := map[int32]int32{}
	rootOID := map[int]int32{}
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		r := find(i)
		if _, ok := rootOID[r]; !ok || objs[i].OID < rootOID[r] {
			rootOID[r] = objs[i].OID
		}
	}
	for i := 0; i < n; i++ {
		if core[i] {
			out[objs[i].OID] = rootOID[find(i)]
		}
	}
	return out
}

func TestCorePartitionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		var objs []model.ObjPos
		n := rng.Intn(60) + 5
		for i := 0; i < n; i++ {
			objs = append(objs, pos(int32(i), rng.Float64()*4, rng.Float64()*4))
		}
		eps := 0.3 + rng.Float64()*0.5
		minPts := rng.Intn(4) + 2
		want := bruteCorePartition(objs, eps, minPts)
		clusters := Cluster(objs, eps, minPts)
		// Every pair of core points with the same brute-force root must be in
		// the same cluster, and pairs with different roots in different ones.
		clusterOf := map[int32]int{}
		for ci, c := range clusters {
			for _, oid := range c {
				clusterOf[oid] = ci
			}
		}
		for a, ra := range want {
			ca, ok := clusterOf[a]
			if !ok {
				t.Fatalf("trial %d: core point %d not clustered", trial, a)
			}
			for b, rb := range want {
				cb := clusterOf[b]
				if (ra == rb) != (ca == cb) {
					t.Fatalf("trial %d: core grouping mismatch for %d,%d", trial, a, b)
				}
			}
		}
	}
}

func TestGridHandlesNegativeCoords(t *testing.T) {
	objs := []model.ObjPos{
		pos(1, -0.1, -0.1), pos(2, 0.1, 0.1), pos(3, -0.1, 0.1),
	}
	got := Cluster(objs, 0.5, 3)
	if len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("cells straddling the origin should still cluster: %v", got)
	}
}

// Duplicate OIDs (two points sharing an id — discouraged but not forbidden
// by Cluster's API) must not leak into the result: an ObjSet is strictly
// increasing.
func TestClusterDedupsDuplicateOIDs(t *testing.T) {
	objs := []model.ObjPos{
		pos(5, 0, 0), pos(5, 0.1, 0), pos(2, 0, 0.1),
	}
	got := Cluster(objs, 1.0, 2)
	if len(got) != 1 {
		t.Fatalf("expected one cluster, got %v", got)
	}
	if !got[0].Valid() {
		t.Fatalf("cluster is not a valid ObjSet: %v", got[0])
	}
	if want := model.NewObjSet(2, 5); !got[0].Equal(want) {
		t.Fatalf("cluster = %v, want %v", got[0], want)
	}
}

// Cells at the int32 cell-coordinate extremes must still see their own
// column: the packed-key ranges clamp at the boundary instead of wrapping
// (a wrapped range used to skip the whole column, turning boundary points
// into noise).
func TestGridHandlesExtremeCoords(t *testing.T) {
	// With eps=1, y=±2^31∓ε lands in cell cy=MaxInt32 / MinInt32, where
	// cy±1 would wrap.
	for _, yy := range []float64{2147483647.0, -2147483648.0} {
		objs := []model.ObjPos{
			pos(1, 0, yy), pos(2, 0.1, yy), pos(3, 0.2, yy),
		}
		got := Cluster(objs, 1.0, 3)
		if len(got) != 1 || len(got[0]) != 3 {
			t.Fatalf("y=%v: boundary-cell points should cluster, got %v", yy, got)
		}
	}
}

func TestClusterContaining(t *testing.T) {
	objs := []model.ObjPos{
		pos(10, 0, 0), pos(20, 0.1, 0), pos(30, 0.2, 0),
	}
	idxs := ClusterContaining(objs, 0.5, 3)
	if len(idxs) != 1 || len(idxs[0]) != 3 {
		t.Fatalf("ClusterContaining = %v", idxs)
	}
}

func BenchmarkCluster1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	objs := make([]model.ObjPos, 1000)
	for i := range objs {
		objs[i] = pos(int32(i), rng.Float64()*100, rng.Float64()*100)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(objs, 2.0, 3)
	}
}
