package dbscan

import (
	"math"

	"repro/internal/model"
)

// grid is a uniform spatial hash over the input points with cell side eps.
// All points within distance eps of a point p lie in the 3×3 block of cells
// around p's cell.
type grid struct {
	objs  []model.ObjPos
	eps   float64
	cells map[cellKey][]int
}

type cellKey struct{ cx, cy int32 }

func newGrid(objs []model.ObjPos, eps float64) *grid {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		// Degenerate radius: every point is only its own neighbour. Use a
		// tiny positive cell so keys stay finite.
		eps = math.SmallestNonzeroFloat64
	}
	g := &grid{objs: objs, eps: eps, cells: make(map[cellKey][]int, len(objs))}
	for i, p := range objs {
		k := g.key(p.X, p.Y)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

func (g *grid) key(x, y float64) cellKey {
	return cellKey{cx: int32(math.Floor(x / g.eps)), cy: int32(math.Floor(y / g.eps))}
}

// neighbors appends to dst the indices of all points within eps of point i
// (including i itself) and returns the extended slice.
func (g *grid) neighbors(i int, epsSq float64, dst []int) []int {
	p := g.objs[i]
	center := g.key(p.X, p.Y)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			bucket, ok := g.cells[cellKey{cx: center.cx + dx, cy: center.cy + dy}]
			if !ok {
				continue
			}
			for _, j := range bucket {
				if model.DistSq(p, g.objs[j]) <= epsSq {
					dst = append(dst, j)
				}
			}
		}
	}
	return dst
}
