package dbscan

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/model"
)

// grid is a uniform spatial index over the input points with cell side eps.
// All points within distance eps of a point p lie in the 3×3 block of cells
// around p's cell.
//
// The index is a flat array of (packed cell key, point index) entries
// sorted by key — no hash map. Cell coordinates pack into one ordered
// uint64 (offset-encoded so negative coordinates sort correctly), which
// makes the three cells of one grid row a single contiguous key range: a
// neighbourhood query is three binary searches plus three linear scans
// over adjacent memory. Compared to the previous map[cellKey][]int this
// removes all hashing from the query path and all per-cell slice growth
// from construction — the two biggest CPU and allocation sinks the k/2-hop
// profile showed, since every re-clustering builds a fresh index.
type grid struct {
	objs    []model.ObjPos
	eps     float64
	entries []gridEntry
}

// gridEntry locates one point in cell-key order.
type gridEntry struct {
	key uint64
	i   int32
}

// packKey builds the ordered cell key: biased cx in the high 32 bits,
// biased cy in the low. Lexicographic (cx, cy) order equals numeric key
// order, so cells (cx, cy-1..cy+1) occupy the contiguous key range
// [packKey(cx,cy-1), packKey(cx,cy+1)].
func packKey(cx, cy int32) uint64 {
	return uint64(uint32(cx)^0x80000000)<<32 | uint64(uint32(cy)^0x80000000)
}

func newGrid(objs []model.ObjPos, eps float64) *grid {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		// Degenerate radius: every point is only its own neighbour. Use a
		// tiny positive cell so keys stay finite.
		eps = math.SmallestNonzeroFloat64
	}
	g := &grid{objs: objs, eps: eps, entries: make([]gridEntry, len(objs))}
	for i, p := range objs {
		cx, cy := g.cellOf(p.X, p.Y)
		g.entries[i] = gridEntry{key: packKey(cx, cy), i: int32(i)}
	}
	slices.SortFunc(g.entries, func(a, b gridEntry) int { return cmp.Compare(a.key, b.key) })
	return g
}

func (g *grid) cellOf(x, y float64) (cx, cy int32) {
	return int32(math.Floor(x / g.eps)), int32(math.Floor(y / g.eps))
}

// neighbors appends to dst the indices of all points within eps of point i
// (including i itself) and returns the extended slice.
func (g *grid) neighbors(i int, epsSq float64, dst []int) []int {
	p := g.objs[i]
	cx, cy := g.cellOf(p.X, p.Y)
	// Clamp the 3×3 block at the int32 extremes: a wrapped coordinate would
	// either skip cells that do hold points (cy) or scan a far-away column
	// (cx). Cells beyond the extreme cannot exist, so clamping only narrows
	// the block to the cells that do.
	cyLo, cyHi := cy-1, cy+1
	if cy == math.MinInt32 {
		cyLo = cy
	}
	if cy == math.MaxInt32 {
		cyHi = cy
	}
	e := g.entries
	for dx := int32(-1); dx <= 1; dx++ {
		if (dx < 0 && cx == math.MinInt32) || (dx > 0 && cx == math.MaxInt32) {
			continue // no column beyond the extreme
		}
		lo := packKey(cx+dx, cyLo)
		hi := packKey(cx+dx, cyHi)
		// First entry with key ≥ lo (manual binary search keeps this
		// allocation-free and inlinable).
		a, b := 0, len(e)
		for a < b {
			mid := int(uint(a+b) >> 1)
			if e[mid].key < lo {
				a = mid + 1
			} else {
				b = mid
			}
		}
		for ; a < len(e) && e[a].key <= hi; a++ {
			j := int(e[a].i)
			if model.DistSq(p, g.objs[j]) <= epsSq {
				dst = append(dst, j)
			}
		}
	}
	return dst
}
