package dbscan

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
)

// TestClusterConcurrent exercises the goroutine-safety contract the
// parallel k/2-hop phases depend on: many concurrent Cluster calls over a
// shared read-only input must race-detect clean and return exactly what a
// single sequential call returns. Run with -race (the CI suite does).
func TestClusterConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := make([]model.ObjPos, 400)
	for i := range objs {
		objs[i] = model.ObjPos{
			OID: int32(i),
			X:   rng.Float64() * 100,
			Y:   rng.Float64() * 100,
		}
	}
	const eps, minPts = 4.0, 3
	want := Cluster(objs, eps, minPts)
	if len(want) == 0 {
		t.Fatal("degenerate fixture: no clusters")
	}

	const goroutines = 16
	got := make([][]model.ObjSet, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			got[g] = Cluster(objs, eps, minPts)
		}(g)
	}
	wg.Wait()
	for g := range got {
		if !reflect.DeepEqual(got[g], want) {
			t.Fatalf("goroutine %d: concurrent result differs from sequential", g)
		}
	}
}
