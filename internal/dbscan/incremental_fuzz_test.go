package dbscan

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

// FuzzIncrementalDBSCAN drives one Incremental through a random *sequence*
// of snapshots — moves (including sub-eps jiggles), appearances, removals,
// no-op ticks, input-order permutations, duplicate OIDs and coincident
// coordinates — and after every tick requires the output to be
// reflect.DeepEqual to a from-scratch Cluster call on the same snapshot.
// Where FuzzDBSCANCluster checks one snapshot against DBSCAN's definition,
// this target checks the *delta machinery*: any stale cached
// neighbourhood, missed dirty point, mis-patched grid entry or slot-
// recycling bug surfaces as a byte diff against the scratch oracle.
//
// Input encoding: byte 0 → minPts ∈ [1,6], byte 1 → eps ∈ {0.5,…,4.0},
// then an op stream over a world of ≤ 24 objects (oid = op mod 24):
//
//   - op < 0x50: upsert oid at (x, y) from the next two bytes as signed
//     integers — coarse placement, coincidences common;
//   - op < 0xA0: upsert oid at (x/16, y/16) — sub-eps jiggles;
//   - op < 0xD0: remove oid;
//   - else: tick boundary — cluster the current world and compare. The op
//     also picks an input-order variant (as inserted, reversed, rotated, or
//     with a duplicated first entry to force the scratch fallback and
//     rebuild), so cluster ordering and border ties track input order.
//
// The world persists across ticks, so consecutive snapshots differ by
// exactly the ops between two boundaries: genuine deltas, the regime the
// engine carries state through. A final implicit boundary flushes the tail.
func FuzzIncrementalDBSCAN(f *testing.F) {
	f.Add([]byte{})
	// Two triads drifting apart over three ticks.
	f.Add([]byte{2, 2,
		0, 0, 0, 1, 1, 0, 2, 0, 1, 10, 100, 100, 11, 101, 100, 0xE0,
		0, 2, 0, 1, 3, 0, 0xE1,
		10, 50, 50, 0xE2,
	})
	// Churn: appear, remove, reappear coincident.
	f.Add([]byte{3, 1, 5, 10, 10, 6, 10, 10, 7, 11, 10, 0xE0, 0xA5, 0xE1, 5, 10, 10, 0xE3, 0xE4})
	// Sub-eps jiggle stream.
	f.Add([]byte{2, 1, 0, 16, 16, 1, 17, 16, 0xE0, 0x50, 18, 16, 0xE1, 0x51, 17, 17, 0xE2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		minPts := 1 + int(data[0]%6)
		eps := 0.5 + float64(data[1]%8)*0.5
		inc, err := NewIncremental(eps, minPts)
		if err != nil {
			t.Fatal(err)
		}

		const maxObj = 24
		const maxTicks = 48
		order := []int32{} // insertion order of live OIDs
		world := map[int32]model.ObjPos{}
		ticks := 0

		snapshot := func(variant byte) []model.ObjPos {
			objs := make([]model.ObjPos, 0, len(order)+1)
			for _, oid := range order {
				objs = append(objs, world[oid])
			}
			switch variant % 5 {
			case 1: // reversed
				for i, j := 0, len(objs)-1; i < j; i, j = i+1, j-1 {
					objs[i], objs[j] = objs[j], objs[i]
				}
			case 2: // rotated by one
				if len(objs) > 1 {
					objs = append(objs[1:], objs[0])
				}
			case 3: // duplicate first entry at a shifted position
				if len(objs) > 0 {
					d := objs[0]
					d.X++
					objs = append(objs, d)
				}
			}
			return objs
		}
		step := func(variant byte) {
			objs := snapshot(variant)
			got := inc.Step(objs)
			want := Cluster(objs, eps, minPts)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("tick %d (variant %d, %d objs): incremental %v != scratch %v",
					ticks, variant%5, len(objs), got, want)
			}
			ticks++
		}

		for i := 2; i < len(data) && ticks < maxTicks; i++ {
			op := data[i]
			oid := int32(op % maxObj)
			switch {
			case op < 0xA0 && i+2 < len(data):
				x, y := float64(int8(data[i+1])), float64(int8(data[i+2]))
				if op >= 0x50 {
					x, y = x/16, y/16
				}
				if _, ok := world[oid]; !ok {
					order = append(order, oid)
				}
				world[oid] = model.ObjPos{OID: oid, X: x, Y: y}
				i += 2
			case op < 0xA0:
				i = len(data) // truncated upsert: stop
			case op < 0xD0:
				if _, ok := world[oid]; ok {
					delete(world, oid)
					for k, o := range order {
						if o == oid {
							order = append(order[:k], order[k+1:]...)
							break
						}
					}
				}
			default:
				step(op)
			}
		}
		if ticks < maxTicks {
			step(0) // flush the tail
		}
	})
}
