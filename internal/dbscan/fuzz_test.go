package dbscan

import (
	"testing"

	"repro/internal/model"
)

// FuzzDBSCANCluster feeds arbitrary point sets through Cluster and checks
// the DBSCAN invariants against a brute-force O(n²) reference:
//
//   - no cluster below minPts members;
//   - cluster object sets are valid (strictly increasing, duplicate-free)
//     and pairwise disjoint (border points are assigned exactly once);
//   - every cluster member is density-reachable: it is within eps of a core
//     point of its own cluster, and the cluster's core points form one
//     eps-connected component;
//   - completeness: every core point is in some cluster, and two core
//     points within eps of each other share a cluster.
//
// Input encoding: byte 0 → minPts ∈ [1,6], byte 1 → eps ∈ {0.5,…,4.0},
// then 3-byte chunks (oid, x, y) with coordinates as signed bytes, so
// coincident and adjacent points are common. Duplicate OIDs keep the first
// occurrence (snapshots have unique OIDs by model convention).
func FuzzDBSCANCluster(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 'a', 0, 0, 'b', 1, 0, 'c', 2, 0, 'z', 100, 100})
	f.Add([]byte{1, 1, 0, 0, 0, 1, 0, 0, 2, 0, 0}) // minPts 2, coincident-ish line
	f.Add([]byte{5, 7, 10, 5, 5, 11, 5, 6, 12, 6, 5, 13, 6, 6, 14, 5, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		minPts := 1 + int(data[0]%6)
		eps := 0.5 + float64(data[1]%8)*0.5
		const maxPoints = 192 // keep the O(n²) reference cheap
		var objs []model.ObjPos
		seen := map[int32]bool{}
		for i := 2; i+3 <= len(data) && len(objs) < maxPoints; i += 3 {
			oid := int32(int8(data[i]))
			if seen[oid] {
				continue
			}
			seen[oid] = true
			objs = append(objs, model.ObjPos{
				OID: oid,
				X:   float64(int8(data[i+1])),
				Y:   float64(int8(data[i+2])),
			})
		}

		clusters := Cluster(objs, eps, minPts)

		// Brute-force reference: neighbour counts and core flags.
		epsSq := eps * eps
		n := len(objs)
		neighbors := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if model.DistSq(objs[i], objs[j]) <= epsSq {
					neighbors[i] = append(neighbors[i], j)
				}
			}
		}
		core := make([]bool, n)
		for i := range core {
			core[i] = len(neighbors[i]) >= minPts
		}
		idxOf := map[int32]int{}
		for i, p := range objs {
			idxOf[p.OID] = i
		}

		clusterOf := make([]int, n)
		for i := range clusterOf {
			clusterOf[i] = -1
		}
		for ci, cl := range clusters {
			if len(cl) < minPts {
				t.Fatalf("cluster %d has %d members < minPts %d: %v", ci, len(cl), minPts, cl)
			}
			if !cl.Valid() {
				t.Fatalf("cluster %d is not a valid ObjSet: %v", ci, cl)
			}
			for _, oid := range cl {
				i, ok := idxOf[oid]
				if !ok {
					t.Fatalf("cluster %d contains unknown oid %d", ci, oid)
				}
				if clusterOf[i] != -1 {
					t.Fatalf("oid %d assigned to clusters %d and %d", oid, clusterOf[i], ci)
				}
				clusterOf[i] = ci
			}
		}

		// Density-reachability: every member within eps of a core member of
		// the same cluster.
		for ci, cl := range clusters {
			for _, oid := range cl {
				i := idxOf[oid]
				ok := false
				for _, j := range neighbors[i] {
					if core[j] && clusterOf[j] == ci {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("cluster %d member oid %d is not within eps of any core of its cluster", ci, oid)
				}
			}
		}

		// Core-graph connectivity inside each cluster (BFS over cores).
		for ci, cl := range clusters {
			var cores []int
			for _, oid := range cl {
				if i := idxOf[oid]; core[i] {
					cores = append(cores, i)
				}
			}
			if len(cores) == 0 {
				t.Fatalf("cluster %d has no core point", ci)
			}
			reach := map[int]bool{cores[0]: true}
			frontier := []int{cores[0]}
			for len(frontier) > 0 {
				i := frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				for _, j := range neighbors[i] {
					if core[j] && clusterOf[j] == ci && !reach[j] {
						reach[j] = true
						frontier = append(frontier, j)
					}
				}
			}
			for _, i := range cores {
				if !reach[i] {
					t.Fatalf("cluster %d cores are not eps-connected (oid %d unreachable)", ci, objs[i].OID)
				}
			}
		}

		// Completeness: cores always clustered; eps-close cores co-clustered.
		for i := 0; i < n; i++ {
			if core[i] && clusterOf[i] == -1 {
				t.Fatalf("core point oid %d left unclustered", objs[i].OID)
			}
		}
		for i := 0; i < n; i++ {
			if !core[i] {
				continue
			}
			for _, j := range neighbors[i] {
				if core[j] && clusterOf[i] != clusterOf[j] {
					t.Fatalf("cores oid %d and oid %d are within eps but in clusters %d and %d",
						objs[i].OID, objs[j].OID, clusterOf[i], clusterOf[j])
				}
			}
		}
	})
}
