// Package minetest provides shared scaffolding for convoy-miner tests: a
// scenario builder that places groups of objects at controlled distances, a
// random dataset generator tuned to produce convoys, and invariant checkers
// (is this really a convoy? is it fully connected?) used to cross-validate
// every miner against the reference implementation.
package minetest

import (
	"math/rand"

	"repro/internal/dbscan"
	"repro/internal/model"
)

// Eps is the clustering radius the scenario builder is calibrated for.
const Eps = 1.5

// Spacing is the gap between adjacent objects of the same group: below Eps,
// so a group forms a chain-connected cluster, but 2×Spacing > Eps, so
// non-adjacent members are NOT directly in range — removing a middle object
// splits the group, which is exactly what full-connectivity tests need.
const Spacing = 1.2

// Build lays out a scenario. groups[t] is the list of object groups present
// at tick t; each group's members are placed Spacing apart on the x-axis,
// groups are 1000 apart, and the group order is significant only for
// placement. Objects keep their slot within a group across ticks, so a
// stable group produces a stable cluster.
func Build(groups map[int32][][]int32) *model.Dataset {
	var pts []model.Point
	for t, gs := range groups {
		for gi, g := range gs {
			for oi, oid := range g {
				pts = append(pts, model.Point{
					OID: oid,
					T:   t,
					X:   float64(gi)*1000 + float64(oi)*Spacing,
					Y:   0,
				})
			}
		}
	}
	return model.NewDataset(pts)
}

// Range builds groups that persist over an interval: spec maps an interval
// to the groups alive throughout it. Later entries are appended after
// earlier ones at each tick (placement order).
type Range struct {
	Start, End int32
	Groups     [][]int32
}

// BuildRanges assembles a dataset from interval specs.
func BuildRanges(specs []Range) *model.Dataset {
	groups := map[int32][][]int32{}
	for _, sp := range specs {
		for t := sp.Start; t <= sp.End; t++ {
			groups[t] = append(groups[t], sp.Groups...)
		}
	}
	return Build(groups)
}

// Random produces a dataset where a few groups wander together and objects
// occasionally defect, generating convoys of assorted lengths plus noise.
// Deterministic in seed.
func Random(seed int64, nObj, nTicks int) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	nGroups := nObj/4 + 1
	group := make([]int, nObj) // group of each object; -1 = solo
	for o := range group {
		if rng.Float64() < 0.3 {
			group[o] = -1
		} else {
			group[o] = rng.Intn(nGroups)
		}
	}
	groupX := make([]float64, nGroups)
	for g := range groupX {
		groupX[g] = float64(g) * 1000
	}
	var pts []model.Point
	for t := 0; t < nTicks; t++ {
		// Groups drift; solo objects jump around.
		for g := range groupX {
			groupX[g] += rng.Float64() * 3
		}
		for o := 0; o < nObj; o++ {
			var x float64
			switch {
			case group[o] >= 0 && rng.Float64() < 0.9:
				slot := 0
				for q := 0; q < o; q++ {
					if group[q] == group[o] {
						slot++
					}
				}
				x = groupX[group[o]] + float64(slot)*Spacing
			default:
				x = rng.Float64() * float64(nGroups) * 1000
			}
			pts = append(pts, model.Point{OID: int32(o), T: int32(t), X: x, Y: 0})
		}
		// Occasionally reshuffle an object's group membership.
		if rng.Float64() < 0.2 {
			o := rng.Intn(nObj)
			group[o] = rng.Intn(nGroups+1) - 1
		}
	}
	return model.NewDataset(pts)
}

// RandomChurn is Random with presence churn: objects join and leave the
// feed mid-stream (each flips in/out with 10% probability per tick), groups
// drift, members defect — the adversarial regime for delta-fed clustering,
// where every tick mixes moved, appeared and disappeared objects.
// Deterministic in seed.
func RandomChurn(seed int64, nObj, nTicks int) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	nGroups := nObj/4 + 1
	group := make([]int, nObj) // group of each object; -1 = solo
	present := make([]bool, nObj)
	for o := range group {
		if rng.Float64() < 0.3 {
			group[o] = -1
		} else {
			group[o] = rng.Intn(nGroups)
		}
		present[o] = rng.Float64() < 0.8
	}
	groupX := make([]float64, nGroups)
	for g := range groupX {
		groupX[g] = float64(g) * 1000
	}
	var pts []model.Point
	for t := 0; t < nTicks; t++ {
		for g := range groupX {
			groupX[g] += rng.Float64() * 3
		}
		for o := 0; o < nObj; o++ {
			if rng.Float64() < 0.1 {
				present[o] = !present[o] // join or leave the feed
			}
			if !present[o] {
				continue
			}
			var x float64
			switch {
			case group[o] >= 0 && rng.Float64() < 0.9:
				slot := 0
				for q := 0; q < o; q++ {
					if group[q] == group[o] {
						slot++
					}
				}
				x = groupX[group[o]] + float64(slot)*Spacing
			default:
				x = rng.Float64() * float64(nGroups) * 1000
			}
			pts = append(pts, model.Point{OID: int32(o), T: int32(t), X: x, Y: 0})
		}
		if rng.Float64() < 0.2 {
			o := rng.Intn(nObj)
			group[o] = rng.Intn(nGroups+1) - 1
		}
	}
	return model.NewDataset(pts)
}

// IsConvoy verifies Definition 3 directly: at every tick of the interval
// the convoy's objects are inside a single (m,eps)-cluster of the full
// snapshot.
func IsConvoy(ds *model.Dataset, c model.Convoy, m int, eps float64) bool {
	if c.Size() < m || c.Len() < 1 {
		return false
	}
	for t := c.Start; t <= c.End; t++ {
		clusters := dbscan.Cluster(ds.Snapshot(t), eps, m)
		ok := false
		for _, cl := range clusters {
			if c.Objs.SubsetOf(cl) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// IsFCConvoy verifies Definition 4 directly: the convoy's objects form a
// convoy in the dataset restricted to exactly those objects.
func IsFCConvoy(ds *model.Dataset, c model.Convoy, m int, eps float64) bool {
	sub := ds.Restrict(c.Objs, c.Interval())
	return IsConvoy(sub, c, m, eps)
}

// AssertMaximal reports the first pair (i, j) where convoy i is a strict
// sub-convoy of convoy j, or (-1, -1) when the set is maximal.
func AssertMaximal(cs []model.Convoy) (int, int) {
	for i := range cs {
		for j := range cs {
			if i != j && cs[i].StrictSubConvoyOf(cs[j]) {
				return i, j
			}
		}
	}
	return -1, -1
}
