package minetest

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dbscan"
	"repro/internal/model"
)

// This file is the differential-testing harness: generators and comparators
// for cross-validating every miner against every other. Two result sets are
// comparable in two regimes:
//
//   - same pattern class (e.g. the streaming miner vs the batch PCCD
//     sweep): results must be identical on ANY dataset — use Random;
//   - different pattern classes (FC miners like k/2-hop vs PC miners like
//     PCCD): results coincide exactly when every density cluster is a
//     clique, because then any subset of a cluster is density-connected on
//     its own, making every partially connected convoy fully connected —
//     use RandomClique, whose construction guarantees clique clusters.

// ReferencePCCD is a deliberately naive PCCD sweep over sorted-slice
// ObjSets: cluster every snapshot, intersect every alive candidate with
// every cluster via ObjSet.Intersect, prune dominated candidates with
// ObjSet.SubsetOf, keep maximal results in a ConvoySet. It is a frozen
// transliteration of the algorithm's definition, kept free of the interned
// dense-set engine on purpose so the differential suite can assert that
// the word-parallel production path (cmc.Miner and everything stacked on
// it) is byte-identical to the representation it replaced.
func ReferencePCCD(ds *model.Dataset, m, k int, eps float64) []model.Convoy {
	type cand struct {
		objs  model.ObjSet
		start int32
	}
	results := model.NewConvoySet()
	var alive []cand
	ts, te := ds.TimeRange()
	for t := ts; t <= te; t++ {
		clusters := dbscan.Cluster(ds.Snapshot(t), eps, m)
		var next []cand
		for _, v := range alive {
			survived := false
			for _, c := range clusters {
				inter := v.objs.Intersect(c)
				if len(inter) < m {
					continue
				}
				if len(inter) == len(v.objs) {
					survived = true
				}
				next = append(next, cand{objs: inter, start: v.start})
			}
			if !survived && int(t-1-v.start)+1 >= k {
				results.Update(model.Convoy{Objs: v.objs, Start: v.start, End: t - 1})
			}
		}
		for _, c := range clusters {
			next = append(next, cand{objs: c, start: t})
		}
		// Domination pruning, in insertion order (same tie-breaking as the
		// production miner).
		var pruned []cand
		for _, c := range next {
			dominated := false
			for j := 0; j < len(pruned); j++ {
				switch {
				case pruned[j].start <= c.start && c.objs.SubsetOf(pruned[j].objs):
					dominated = true
				case c.start <= pruned[j].start && pruned[j].objs.SubsetOf(c.objs):
					pruned[j] = pruned[len(pruned)-1]
					pruned = pruned[:len(pruned)-1]
					j--
				}
				if dominated {
					break
				}
			}
			if !dominated {
				pruned = append(pruned, c)
			}
		}
		alive = pruned
	}
	for _, v := range alive {
		if int(te-v.start)+1 >= k {
			results.Update(model.Convoy{Objs: v.objs, Start: v.start, End: te})
		}
	}
	return results.Sorted()
}

// RandomClique produces a dataset like Random — wandering groups, defecting
// members, assorted convoy lengths — but with a geometric guarantee: every
// (m,eps)-cluster at every tick is a clique (all members pairwise within
// Eps). Three invariants deliver this:
//
//   - group members sit within a span strictly below Eps (slots are
//     Eps/(nObj+1) apart), so any subset of a group is pairwise in range;
//   - groups are 1000 apart and drift < 3 per tick, so members of
//     different groups are never within Eps of each other;
//   - objects that are solo (or defecting for a tick) park in a private
//     parcel at y = SoloY, one per object, ≥ 900 from everything else, so
//     they can never chain two groups or each other.
//
// Deterministic in seed. Verify the guarantee with CliqueClusters.
func RandomClique(seed int64, nObj, nTicks int) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	nGroups := nObj/4 + 1
	group := make([]int, nObj) // group of each object; -1 = solo
	for o := range group {
		if rng.Float64() < 0.3 {
			group[o] = -1
		} else {
			group[o] = rng.Intn(nGroups)
		}
	}
	groupX := make([]float64, nGroups)
	for g := range groupX {
		groupX[g] = float64(g) * 1000
	}
	slot := Eps / float64(nObj+1)
	var pts []model.Point
	for t := 0; t < nTicks; t++ {
		for g := range groupX {
			groupX[g] += rng.Float64() * 3
		}
		for o := 0; o < nObj; o++ {
			p := model.Point{OID: int32(o), T: int32(t)}
			if group[o] >= 0 && rng.Float64() < 0.9 {
				p.X = groupX[group[o]] + float64(o)*slot
				p.Y = 0
			} else {
				// Solo parcel: isolated by construction.
				p.X = -float64(o+1)*1000 + rng.Float64()*2
				p.Y = SoloY
			}
			pts = append(pts, p)
		}
		if rng.Float64() < 0.2 {
			o := rng.Intn(nObj)
			group[o] = rng.Intn(nGroups+1) - 1
		}
	}
	return model.NewDataset(pts)
}

// SoloY is the y-coordinate of RandomClique's solo parcels.
const SoloY = 10000

// CliqueClusters reports whether every (m,eps)-cluster at every tick of ds
// is a clique (all members pairwise within eps). This is the premise that
// makes FC and PC mining semantics coincide; the differential tests assert
// it on every RandomClique dataset they use.
func CliqueClusters(ds *model.Dataset, eps float64, m int) bool {
	ts, te := ds.TimeRange()
	for t := ts; t <= te; t++ {
		snap := ds.Snapshot(t)
		byOID := make(map[int32]model.ObjPos, len(snap))
		for _, p := range snap {
			byOID[p.OID] = p
		}
		for _, cl := range dbscan.Cluster(snap, eps, m) {
			for i := 0; i < len(cl); i++ {
				for j := i + 1; j < len(cl); j++ {
					if model.DistSq(byOID[cl[i]], byOID[cl[j]]) > eps*eps {
						return false
					}
				}
			}
		}
	}
	return true
}

// DiffConvoys compares two convoy sets and returns a human-readable
// description of the difference, or "" when they are identical (as sets;
// both inputs are sorted in place). The report names which side each
// unmatched convoy came from, which makes differential-test failures
// directly actionable.
func DiffConvoys(labelA string, a []model.Convoy, labelB string, b []model.Convoy) string {
	model.SortConvoys(a)
	model.SortConvoys(b)
	if model.ConvoysEqual(a, b) {
		return ""
	}
	keys := func(cs []model.Convoy) map[string]model.Convoy {
		m := make(map[string]model.Convoy, len(cs))
		for _, c := range cs {
			m[c.Key()] = c
		}
		return m
	}
	ka, kb := keys(a), keys(b)
	var sb strings.Builder
	fmt.Fprintf(&sb, "convoy sets differ (%s: %d, %s: %d)", labelA, len(a), labelB, len(b))
	for _, c := range a {
		if _, ok := kb[c.Key()]; !ok {
			fmt.Fprintf(&sb, "\n  only in %s: %v", labelA, c)
		}
	}
	for _, c := range b {
		if _, ok := ka[c.Key()]; !ok {
			fmt.Fprintf(&sb, "\n  only in %s: %v", labelB, c)
		}
	}
	return sb.String()
}

// Canonical renders a convoy set in canonical order as one string — the
// "byte-identical" comparison form used by the differential tests (sorts
// its input in place).
func Canonical(cs []model.Convoy) string {
	model.SortConvoys(cs)
	var sb strings.Builder
	for _, c := range cs {
		sb.WriteString(c.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
