package minetest

import (
	"strings"
	"testing"

	"repro/internal/dbscan"
	"repro/internal/model"
)

// TestRandomCliqueGuarantee verifies the generator's premise over many
// seeds and sizes: every cluster at every tick is a clique. The public
// differential tests build on exactly this property.
func TestRandomCliqueGuarantee(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		nObj := 6 + int(seed%7)
		nTicks := 10 + int(seed%11)
		ds := RandomClique(seed, nObj, nTicks)
		for _, m := range []int{2, 3} {
			if !CliqueClusters(ds, Eps, m) {
				t.Fatalf("seed %d (%d objs × %d ticks, m=%d): non-clique cluster", seed, nObj, nTicks, m)
			}
		}
	}
}

// TestRandomCliqueHasConvoys guards against a vacuous generator: across
// seeds, the datasets must actually contain groups that persist (otherwise
// the differential tests would compare empty sets).
func TestRandomCliqueHasConvoys(t *testing.T) {
	nonEmpty := 0
	for seed := int64(0); seed < 20; seed++ {
		ds := RandomClique(seed, 10, 16)
		if ds.NumPoints() == 0 {
			t.Fatalf("seed %d: empty dataset", seed)
		}
		ts, te := ds.TimeRange()
		if int(te-ts)+1 != 16 {
			t.Fatalf("seed %d: time range [%d,%d]", seed, ts, te)
		}
		// Count ticks with at least one cluster of size ≥ 3.
		if len(clustersAt(ds, 3)) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 15 {
		t.Fatalf("only %d/20 clique datasets have group structure", nonEmpty)
	}
}

func clustersAt(ds *model.Dataset, m int) []model.ObjSet {
	var all []model.ObjSet
	ts, te := ds.TimeRange()
	for tt := ts; tt <= te; tt++ {
		all = append(all, dbscan.Cluster(ds.Snapshot(tt), Eps, m)...)
	}
	return all
}

func TestDiffConvoys(t *testing.T) {
	a := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2), 0, 4)}
	b := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2), 0, 4)}
	if d := DiffConvoys("a", a, "b", b); d != "" {
		t.Fatalf("equal sets diffed: %s", d)
	}
	b = append(b, model.NewConvoy(model.NewObjSet(3, 4, 5), 2, 9))
	d := DiffConvoys("a", a, "b", b)
	if d == "" {
		t.Fatal("different sets reported equal")
	}
	if want := "only in b: ({3,4,5},[2,9])"; !strings.Contains(d, want) {
		t.Fatalf("diff %q does not mention %q", d, want)
	}
}

func TestCanonicalIsOrderInsensitive(t *testing.T) {
	c1 := model.NewConvoy(model.NewObjSet(1, 2), 0, 4)
	c2 := model.NewConvoy(model.NewObjSet(3, 4), 1, 6)
	if Canonical([]model.Convoy{c1, c2}) != Canonical([]model.Convoy{c2, c1}) {
		t.Fatal("Canonical depends on input order")
	}
}
