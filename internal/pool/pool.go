// Package pool provides the bounded worker pool the parallel mining
// pipeline fans out on. The design goal is determinism: callers address
// results by task index, so a fan-out over [0, n) produces exactly the
// same data structures regardless of the worker count or the order in
// which tasks happen to finish. A run with one worker is byte-identical
// to a run with many.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Size normalises a worker count: values ≤ 0 mean "one worker per core"
// (runtime.GOMAXPROCS(0)).
func Size(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Group manages a fixed set of long-lived workers — the shard actors of the
// convoyd server, as opposed to ForEach's run-to-completion task fan-out.
// Workers are expected to exit when their input source is closed; Wait
// blocks until all of them have returned.
type Group struct {
	wg sync.WaitGroup
}

// Go starts n long-lived workers running fn(i) for i in [0, n) and returns
// a Group to wait on. Unlike ForEach, n is the exact goroutine count (no
// normalisation): each worker owns the state at its index for its whole
// lifetime, which is what gives actor-per-shard designs their determinism.
func Go(n int, fn func(i int)) *Group {
	g := &Group{}
	g.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer g.wg.Done()
			fn(i)
		}()
	}
	return g
}

// Wait blocks until every worker started by Go has returned.
func (g *Group) Wait() { g.wg.Wait() }

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// and blocks until all tasks finish. Tasks are handed out in index order;
// callers write results into index-addressed slots, which keeps the
// overall computation deterministic independent of scheduling.
//
// If any invocation returns an error, ForEach stops handing out new
// tasks, waits for the tasks already claimed, and returns the error with
// the lowest task index. Every claimed index runs (the stop flag is
// checked before claiming, never after), and claims are handed out as a
// contiguous prefix of [0, n), so the lowest failing index is always
// claimed, always runs, and always wins — the returned error is
// deterministic whenever task outcomes are. Tasks never claimed are
// skipped; their indices are strictly above every claimed one.
func ForEach(workers, n int, fn func(i int) error) error {
	workers = Size(workers)
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return nil
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64 // next task index to hand out
		failed atomic.Bool  // stop handing out new tasks after an error
		mu     sync.Mutex
		errIdx = -1
		first  error
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
