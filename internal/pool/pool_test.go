package pool

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestSize(t *testing.T) {
	if got := Size(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Size(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Size(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Size(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Size(7); got != 7 {
		t.Fatalf("Size(7) = %d, want 7", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		const n = 100
		seen := make([]atomic.Int32, n)
		if err := ForEach(workers, n, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if c := seen[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	wantA := errors.New("a")
	wantB := errors.New("b")
	for _, workers := range []int{1, 8} {
		err := ForEach(workers, 50, func(i int) error {
			switch i {
			case 3:
				return wantA
			case 7:
				return wantB
			}
			return nil
		})
		// With one worker the walk stops at 3; with many workers index 7
		// may also fail, but 3 must still win.
		if !errors.Is(err, wantA) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, wantA)
		}
	}
}

func TestForEachStopsAfterError(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	err := ForEach(2, 1000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n > 100 {
		t.Fatalf("ran %d tasks after early error; fan-out did not stop", n)
	}
}
