package experiments

import (
	"fmt"

	convoy "repro"
	"repro/internal/core"
	"repro/internal/storage"
)

func init() {
	register("ablation", ablation)
}

// ablation quantifies two of k/2-hop's design choices (not a paper figure —
// see DESIGN.md §7): the HWMT bisection order vs a left-to-right sweep, and
// the post-extension fixpoint. Reported per dataset at the default k:
// wall-clock and points read for each variant.
func ablation(s Scale) (Table, error) {
	t := Table{
		ID:      "ablation",
		Title:   "k/2-hop design-choice ablations",
		Columns: []string{"dataset", "variant", "time", "points read"},
		Notes:   "bisection aborts dead hop-windows earlier; the fixpoint re-extension is the correctness patch from DESIGN.md §3",
	}
	for _, spec := range Datasets() {
		ds := spec.Build(s)
		k := spec.KMid(ds)
		variants := []struct {
			name string
			mut  func(*core.Config)
		}{
			{"baseline (bisect + re-extend)", func(*core.Config) {}},
			{"linear HWMT order", func(c *core.Config) { c.LinearHWMT = true }},
			{"no re-extension", func(c *core.Config) { c.ReExtend = false }},
		}
		var baseConvoys int
		for vi, v := range variants {
			cfg := core.DefaultConfig(spec.M, k, spec.Eps)
			cfg.Workers = 1 // ablate the algorithm, not the pool
			v.mut(&cfg)
			ms := storage.NewMemStore(ds)
			var convoys []convoy.Convoy
			dur, err := timeIt(func() error {
				out, _, err := core.Mine(ms, cfg)
				convoys = out
				return err
			})
			if err != nil {
				return t, err
			}
			if vi == 0 {
				baseConvoys = len(convoys)
			} else if v.name == "linear HWMT order" && len(convoys) != baseConvoys {
				return t, fmt.Errorf("ablation: linear order changed results on %s", spec.Name)
			}
			reads := ms.Stats().Snapshot().PointsRead
			t.Rows = append(t.Rows, []string{
				spec.Name, v.name, secs(dur), fmt.Sprintf("%d", reads),
			})
		}
	}
	return t, nil
}
