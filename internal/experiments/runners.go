package experiments

import (
	"os"
	"time"

	convoy "repro"
	"repro/internal/model"
	"repro/internal/storage/flatfile"
)

// MineResult is one measured mining run.
type MineResult struct {
	Convoys  []model.Convoy
	Duration time.Duration
	Points   int64 // points read from the store
	Report   *convoy.K2HopReport
	PreVal   int
}

// seqOpts pins unset worker counts to a single worker: the
// paper-reproduction experiments compare algorithms on one core (the
// paper's sequential setups), so their gain tables must not silently
// inherit the library's workers-per-core default, which would skew
// k/2-hop's measured gains by the machine's core count. Both nil options
// and options with Workers == 0 are pinned — callers that really want the
// parallel engine must say so explicitly (cmd/convoymine resolves its
// per-core default itself). The parallel engine is measured on its own by
// BenchmarkK2HopParallel and the Compare runner.
func seqOpts(opts *convoy.Options) *convoy.Options {
	if opts == nil {
		return &convoy.Options{Workers: 1}
	}
	if opts.Workers == 0 {
		o := *opts
		o.Workers = 1
		return &o
	}
	return opts
}

// MineOn runs an algorithm against a dataset materialised under a storage
// engine and measures wall clock including all store I/O. Nil opts or an
// unset Workers means the paper's sequential setup (Workers: 1), not the
// library default.
//
// StoreFile reproduces the paper's k2-File semantics: the flat file is
// loaded into memory first (that cost is part of the measured time) and the
// miner runs in memory — flat files have no index, so that is their best
// strategy.
func MineOn(kind StoreKind, ds *model.Dataset, params convoy.Params, opts *convoy.Options) (*MineResult, error) {
	opts = seqOpts(opts)
	dir, err := os.MkdirTemp("", "k2exp")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	if kind == StoreFile {
		path := dir + "/data.k2f"
		if err := flatfile.WriteDataset(path, ds); err != nil {
			return nil, err
		}
		start := time.Now()
		fs, err := flatfile.Open(path)
		if err != nil {
			return nil, err
		}
		defer fs.Close()
		mem, err := fs.Load()
		if err != nil {
			return nil, err
		}
		res, err := convoy.MineDataset(mem, params, opts)
		if err != nil {
			return nil, err
		}
		return &MineResult{
			Convoys:  res.Convoys,
			Duration: time.Since(start),
			Points:   int64(mem.NumPoints()), // whole file touched
			Report:   res.K2Hop,
			PreVal:   res.PreValidation,
		}, nil
	}

	st, cleanup, err := OpenStore(kind, ds, dir)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	res, err := convoy.Mine(st, params, opts)
	if err != nil {
		return nil, err
	}
	return &MineResult{
		Convoys:  res.Convoys,
		Duration: res.Duration,
		Points:   res.PointsProcessed,
		Report:   res.K2Hop,
		PreVal:   res.PreValidation,
	}, nil
}

// MineMem runs an algorithm on the in-memory store. Nil opts or an unset
// Workers means the paper's sequential setup (Workers: 1), not the
// library default.
func MineMem(ds *model.Dataset, params convoy.Params, opts *convoy.Options) (*MineResult, error) {
	res, err := convoy.MineDataset(ds, params, seqOpts(opts))
	if err != nil {
		return nil, err
	}
	return &MineResult{
		Convoys:  res.Convoys,
		Duration: res.Duration,
		Points:   res.PointsProcessed,
		Report:   res.K2Hop,
		PreVal:   res.PreValidation,
	}, nil
}
