package experiments

import (
	"strings"
	"testing"

	convoy "repro"
)

func TestParseAlgorithms(t *testing.T) {
	all, err := ParseAlgorithms("")
	if err != nil || len(all) != 7 {
		t.Fatalf("empty list should give all 7 algorithms, got %v, %v", all, err)
	}
	got, err := ParseAlgorithms("K2Hop, vcoda*")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != convoy.K2Hop || got[1] != convoy.VCoDAStar {
		t.Fatalf("parsed %v", got)
	}
	if _, err := ParseAlgorithms("nope"); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestCompareRunsAllAlgorithmsConcurrently(t *testing.T) {
	tb, err := Compare(Tiny, "Trucks", AllAlgorithms(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(AllAlgorithms()) {
		t.Fatalf("want %d rows, got %d", len(AllAlgorithms()), len(tb.Rows))
	}
	// All miners must agree on the result count for this dataset: the FC
	// and PC classes coincide on the generated Trucks platoons.
	count := tb.Rows[0][2]
	for _, row := range tb.Rows {
		if row[2] != count {
			t.Fatalf("algorithms disagree on convoy count: %v", tb.Rows)
		}
	}
}

func TestCompareUnknownDataset(t *testing.T) {
	if _, err := Compare(Tiny, "Mars", AllAlgorithms(), 1); err == nil ||
		!strings.Contains(err.Error(), "unknown dataset") {
		t.Fatalf("want unknown-dataset error, got %v", err)
	}
}
