package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	convoy "repro"
	"repro/internal/pool"
)

func init() {
	register("compare", func(s Scale) (Table, error) {
		return Compare(s, "Trucks", AllAlgorithms(), 0)
	})
}

// AllAlgorithms returns every mining algorithm in the paper's order.
func AllAlgorithms() []convoy.Algorithm {
	return []convoy.Algorithm{
		convoy.K2Hop, convoy.VCoDA, convoy.VCoDAStar,
		convoy.PCCD, convoy.CuTS, convoy.DCM, convoy.SPARE,
	}
}

// ParseAlgorithms parses a comma-separated algorithm list ("k2hop,vcoda").
// An empty string means all algorithms.
func ParseAlgorithms(s string) ([]convoy.Algorithm, error) {
	if strings.TrimSpace(s) == "" {
		return AllAlgorithms(), nil
	}
	known := map[string]convoy.Algorithm{}
	for _, a := range AllAlgorithms() {
		known[string(a)] = a
	}
	var out []convoy.Algorithm
	for _, part := range strings.Split(s, ",") {
		a, ok := known[strings.ToLower(strings.TrimSpace(part))]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown algorithm %q", part)
		}
		out = append(out, a)
	}
	return out, nil
}

// patternClass names the convoy class an algorithm guarantees.
func patternClass(a convoy.Algorithm) string {
	switch a {
	case convoy.K2Hop, convoy.VCoDA, convoy.VCoDAStar:
		return "fully connected"
	default:
		return "partially connected"
	}
}

// Compare mines one dataset with several algorithms side by side and
// returns one row per algorithm: convoy class, result count, wall clock
// and points read. The algorithms fan out over a bounded pool (workers ≤ 0
// = one per core), which is how cmd/experiments builds comparison tables
// in one dataset-generation pass instead of one sequential run per
// baseline. Each algorithm runs with Workers: 1 internally so the
// side-by-side wall clocks measure the algorithms, not the pool — except
// DCM and SPARE, which interpret Workers as map-reduce task slots and get
// the paper's default of 4. Rows are collected index-addressed, so the
// table order is deterministic.
func Compare(s Scale, dataset string, algos []convoy.Algorithm, workers int) (Table, error) {
	var spec DatasetSpec
	found := false
	for _, d := range Datasets() {
		if strings.EqualFold(d.Name, dataset) {
			spec, found = d, true
			break
		}
	}
	if !found {
		return Table{}, fmt.Errorf("experiments: unknown dataset %q (have Trucks, T-Drive, Brinkhoff)", dataset)
	}
	ds := spec.Build(s)
	k := spec.Ks(ds)[1]
	t := Table{
		ID:    "compare",
		Title: fmt.Sprintf("algorithm comparison on %s (m=%d k=%d eps=%g)", spec.Name, spec.M, k, spec.Eps),
		Columns: []string{
			"algorithm", "class", "convoys", "time", "points read",
		},
		Notes: fmt.Sprintf("algorithms ran concurrently on %d workers; times are per-algorithm wall clock under that load", min(pool.Size(workers), len(algos))),
	}

	rows := make([][]string, len(algos))
	var wall atomic.Int64
	err := pool.ForEach(workers, len(algos), func(i int) error {
		algo := algos[i]
		opts := &convoy.Options{Algorithm: algo, Workers: 1}
		if algo == convoy.DCM || algo == convoy.SPARE {
			// The map-reduce baselines interpret Workers as task slots;
			// give them the paper's default of 4.
			opts.Workers = 4
		}
		res, err := MineMem(ds, convoy.Params{M: spec.M, K: k, Eps: spec.Eps}, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		wall.Add(int64(res.Duration))
		rows[i] = []string{
			string(algo), patternClass(algo), itoa(len(res.Convoys)), secs(res.Duration), fmt.Sprintf("%d", res.Points),
		}
		return nil
	})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Notes += fmt.Sprintf("; summed algorithm time %s", secs(time.Duration(wall.Load())))
	return t, nil
}
