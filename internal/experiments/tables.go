package experiments

import (
	"fmt"
	"math/rand"

	convoy "repro"
	"repro/internal/datagen"
	"repro/internal/datagen/brinkhoff"
)

func init() {
	register("table4", table4)
	register("table5", table5)
}

// table4 reproduces the paper's Table 4: properties of the generated
// Brinkhoff dataset.
func table4(s Scale) (Table, error) {
	spec := BrinkhoffSpec()
	ds := spec.Build(s)
	st := datagen.Describe(ds)

	// Rebuild the network deterministically to report its size.
	p := brinkhoff.DefaultParams(3)
	switch s {
	case Tiny:
		p.GridW, p.GridH, p.MaxTime, p.ObjBegin, p.ObjPerTick = 10, 10, 150, 120, 3
	case Small:
		p.MaxTime, p.ObjBegin, p.ObjPerTick = 300, 900, 18
	case Mid:
		p.MaxTime, p.ObjBegin, p.ObjPerTick = 500, 2000, 40
	}
	nw := brinkhoff.NewNetwork(p, rand.New(rand.NewSource(p.Seed)))

	t := Table{
		ID:      "table4",
		Title:   "Brinkhoff dataset properties (scaled; paper values in parentheses)",
		Columns: []string{"property", "value", "paper"},
	}
	add := func(name, value, paper string) {
		t.Rows = append(t.Rows, []string{name, value, paper})
	}
	add("MaxTime", itoa(int(p.MaxTime)), "25000")
	add("ObjBegin", itoa(p.ObjBegin), "5000")
	add("ObjPerTick", itoa(p.ObjPerTick), "100")
	add("data space width", fmt.Sprintf("%.0f", p.SpaceW), "23572")
	add("data space height", fmt.Sprintf("%.0f", p.SpaceH), "26915")
	add("number of nodes", itoa(len(nw.Nodes)), "6105")
	add("number of edges", itoa(nw.NumEdges()), "7035")
	add("moving objects", itoa(st.Objects), "2505000")
	add("points", itoa(st.Points), "122014762")
	add("timestamps", itoa(st.Timestamps), "25000")
	return t, nil
}

// table5 reproduces the paper's Table 5: how much of each dataset k/2-hop
// prunes, as min/max over the (k, m) parameter grid.
func table5(s Scale) (Table, error) {
	t := Table{
		ID:      "table5",
		Title:   "k/2-hop data pruning performance",
		Columns: []string{"", "Trucks", "T-Drive", "Brinkhoff"},
		Notes:   "paper: >99% pruned in most cases (its datasets are far larger and sparser in convoys)",
	}
	totals := []string{"Total points"}
	minPts := []string{"Min points processed"}
	maxPts := []string{"Max points processed"}
	minPrune := []string{"Min pruning"}
	maxPrune := []string{"Max pruning"}
	for _, spec := range Datasets() {
		ds := spec.Build(s)
		total := int64(ds.NumPoints())
		lo, hi := int64(1)<<62, int64(0)
		ks := spec.Ks(ds)
		for _, k := range []int{ks[1], ks[3], ks[5]} {
			for _, m := range []int{3, 6} {
				r, err := MineMem(ds, convoy.Params{M: m, K: k, Eps: spec.Eps}, nil)
				if err != nil {
					return t, err
				}
				pts := r.Points
				if pts > total {
					pts = total // re-reads can exceed the distinct total
				}
				if pts < lo {
					lo = pts
				}
				if pts > hi {
					hi = pts
				}
			}
		}
		totals = append(totals, itoa(int(total)))
		minPts = append(minPts, itoa(int(lo)))
		maxPts = append(maxPts, itoa(int(hi)))
		minPrune = append(minPrune, fmt.Sprintf("%.2f%%", 100*(1-float64(hi)/float64(total))))
		maxPrune = append(maxPrune, fmt.Sprintf("%.2f%%", 100*(1-float64(lo)/float64(total))))
	}
	t.Rows = [][]string{totals, minPts, maxPts, minPrune, maxPrune}
	return t, nil
}
