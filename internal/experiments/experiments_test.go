package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	convoy "repro"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation", "compare", "fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig7f", "fig7g", "fig7h",
		"fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f", "fig8g", "fig8h",
		"fig8i", "fig8j", "fig8k", "fig8l", "table4", "table5",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d ids, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("fig99", Tiny); err == nil {
		t.Fatalf("unknown id should fail")
	}
}

func TestDatasetsYieldConvoys(t *testing.T) {
	// Every dataset must produce at least one convoy at its default
	// parameters, or the whole experiment suite is vacuous.
	for _, spec := range Datasets() {
		ds := spec.Build(Tiny)
		if ds.NumPoints() == 0 {
			t.Fatalf("%s: empty dataset", spec.Name)
		}
		k := spec.Ks(ds)[1]
		res, err := MineMem(ds, convoy.Params{M: spec.M, K: k, Eps: spec.Eps}, nil)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(res.Convoys) == 0 {
			t.Fatalf("%s: no convoys at m=%d k=%d eps=%g", spec.Name, spec.M, k, spec.Eps)
		}
	}
}

func TestKsMonotoneAndValid(t *testing.T) {
	for _, spec := range Datasets() {
		ds := spec.Build(Tiny)
		ks := spec.Ks(ds)
		if len(ks) != 6 {
			t.Fatalf("%s: want 6 k values, got %v", spec.Name, ks)
		}
		for i, k := range ks {
			if k < 2 {
				t.Fatalf("%s: k=%d too small", spec.Name, k)
			}
			if i > 0 && k < ks[i-1] {
				t.Fatalf("%s: ks not monotone: %v", spec.Name, ks)
			}
		}
		if mid := spec.KMid(ds); mid != ks[3] {
			t.Fatalf("%s: KMid = %d, want %d", spec.Name, mid, ks[3])
		}
	}
}

func TestStoreKindsAgree(t *testing.T) {
	// The same mining run on every storage engine must return identical
	// convoys (storage is an access path, not a semantics change).
	spec := TrucksSpec()
	ds := spec.Build(Tiny)
	p := convoy.Params{M: spec.M, K: spec.Ks(ds)[1], Eps: spec.Eps}
	base, err := MineMem(ds, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []StoreKind{StoreFile, StoreRDBMS, StoreLSMT} {
		r, err := MineOn(kind, ds, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(r.Convoys) != len(base.Convoys) {
			t.Fatalf("%s: %d convoys, mem store found %d", kind, len(r.Convoys), len(base.Convoys))
		}
		for i := range r.Convoys {
			if !r.Convoys[i].Equal(base.Convoys[i]) {
				t.Fatalf("%s: convoy %d differs: %v vs %v", kind, i, r.Convoys[i], base.Convoys[i])
			}
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "n",
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// Smoke-run a representative subset of experiments at tiny scale; the rest
// share all the same code paths.
func TestRunExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range []string{"table4", "table5", "fig7a", "fig7c", "fig8i", "fig8j", "fig8k"} {
		tab, err := Run(id, Tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: no rows", id)
		}
		var buf bytes.Buffer
		tab.Render(&buf)
		if buf.Len() == 0 {
			t.Fatalf("%s: empty render", id)
		}
	}
}

func TestTable5PruningPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := Run("table5", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Max pruning row must show a positive percentage for every dataset.
	var maxPrune []string
	for _, row := range tab.Rows {
		if row[0] == "Max pruning" {
			maxPrune = row[1:]
		}
	}
	if maxPrune == nil {
		t.Fatalf("missing Max pruning row: %v", tab.Rows)
	}
	for i, cell := range maxPrune {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil || v <= 0 {
			t.Fatalf("dataset %d: max pruning %q not positive", i, cell)
		}
	}
}
