package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/datagen/brinkhoff"
	"repro/internal/datagen/tdrive"
	"repro/internal/datagen/trucks"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/storage/flatfile"
	"repro/internal/storage/lsm"
	"repro/internal/storage/relational"
)

// DatasetSpec bundles a named dataset with the parameter grid the paper
// sweeps on it. Eps/M are the defaults; Ks returns the k sweep as fractions
// of the dataset timeline, mirroring the paper's 200..1200 over ~3000-25000
// tick datasets.
type DatasetSpec struct {
	Name string
	// Eps is the default clustering radius, calibrated to the generator's
	// platoon spread + GPS jitter.
	Eps float64
	// M is the default minimum convoy size.
	M     int
	build func(Scale) *model.Dataset
}

// Datasets returns the three dataset specs in the paper's order.
func Datasets() []DatasetSpec {
	return []DatasetSpec{TrucksSpec(), TDriveSpec(), BrinkhoffSpec()}
}

// TrucksSpec is the Trucks stand-in (smallest dataset).
func TrucksSpec() DatasetSpec {
	return DatasetSpec{
		Name: "Trucks",
		Eps:  40,
		M:    3,
		build: func(s Scale) *model.Dataset {
			p := trucks.DefaultParams(1)
			switch s {
			case Tiny:
				p.Trucks, p.Days, p.TicksPerDay = 25, 2, 120
			case Small:
				p.Trucks, p.Days, p.TicksPerDay = 50, 4, 250
			case Mid:
				p.Trucks, p.Days, p.TicksPerDay = 50, 8, 400
			}
			return trucks.Generate(p)
		},
	}
}

// TDriveSpec is the T-Drive stand-in (medium dataset).
func TDriveSpec() DatasetSpec {
	return DatasetSpec{
		Name: "T-Drive",
		Eps:  120,
		M:    3,
		build: func(s Scale) *model.Dataset {
			p := tdrive.DefaultParams(2)
			switch s {
			case Tiny:
				p.Taxis, p.Ticks = 150, 120
			case Small:
				p.Taxis, p.Ticks = 1200, 250
			case Mid:
				p.Taxis, p.Ticks = 3000, 400
			}
			return tdrive.Generate(p)
		},
	}
}

// BrinkhoffSpec is the Brinkhoff generator stand-in (largest dataset).
func BrinkhoffSpec() DatasetSpec {
	return DatasetSpec{
		Name: "Brinkhoff",
		Eps:  180,
		M:    3,
		build: func(s Scale) *model.Dataset {
			p := brinkhoff.DefaultParams(3)
			switch s {
			case Tiny:
				p.GridW, p.GridH, p.MaxTime, p.ObjBegin, p.ObjPerTick = 10, 10, 150, 120, 3
			case Small:
				p.MaxTime, p.ObjBegin, p.ObjPerTick = 300, 900, 18
			case Mid:
				p.MaxTime, p.ObjBegin, p.ObjPerTick = 500, 2000, 40
			}
			return brinkhoff.Generate(p)
		},
	}
}

// Ks returns the k sweep for a dataset at a scale: six values spanning
// ~5%..40% of the timeline, the paper's relative range.
func (d DatasetSpec) Ks(ds *model.Dataset) []int {
	ts, te := ds.TimeRange()
	ticks := int(te-ts) + 1
	fracs := []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.40}
	ks := make([]int, 0, len(fracs))
	for _, f := range fracs {
		k := int(float64(ticks) * f)
		if k < 2 {
			k = 2
		}
		ks = append(ks, k)
	}
	return ks
}

// KMid returns the middle of the k sweep (the default k).
func (d DatasetSpec) KMid(ds *model.Dataset) int {
	ks := d.Ks(ds)
	return ks[len(ks)/2]
}

// datasetCache memoises generated datasets per (name, scale) — experiments
// share them, and benchmarks re-run experiments repeatedly.
var (
	dsMu    sync.Mutex
	dsCache = map[string]*model.Dataset{}
)

// Build returns the (cached) dataset for a scale.
func (d DatasetSpec) Build(s Scale) *model.Dataset {
	dsMu.Lock()
	defer dsMu.Unlock()
	key := d.Name + "/" + string(s)
	if ds, ok := dsCache[key]; ok {
		return ds
	}
	ds := d.build(s)
	dsCache[key] = ds
	return ds
}

// StoreKind names a storage engine variant (paper §5 / k2-* algorithms).
type StoreKind string

// Available store kinds.
const (
	StoreMem   StoreKind = "mem"
	StoreFile  StoreKind = "k2-File"
	StoreRDBMS StoreKind = "k2-RDBMS"
	StoreLSMT  StoreKind = "k2-LSMT"
)

// OpenStore materialises ds under the given engine in dir and opens it.
// The returned cleanup closes (and for disk engines leaves files in dir,
// which the caller owns — use a temp dir).
func OpenStore(kind StoreKind, ds *model.Dataset, dir string) (storage.Store, func(), error) {
	switch kind {
	case StoreMem:
		ms := storage.NewMemStore(ds)
		return ms, func() {}, nil
	case StoreFile:
		path := filepath.Join(dir, "data.k2f")
		if err := flatfile.WriteDataset(path, ds); err != nil {
			return nil, nil, err
		}
		fs, err := flatfile.Open(path)
		if err != nil {
			return nil, nil, err
		}
		return fs, func() { fs.Close(); os.Remove(path) }, nil
	case StoreRDBMS:
		path := filepath.Join(dir, "data.k2r")
		if err := relational.WriteDataset(path, ds, nil); err != nil {
			return nil, nil, err
		}
		rs, err := relational.Open(path, nil)
		if err != nil {
			return nil, nil, err
		}
		return rs, func() { rs.Close(); os.Remove(path) }, nil
	case StoreLSMT:
		ldir := filepath.Join(dir, "lsm")
		if err := lsm.WriteDataset(ldir, ds, nil); err != nil {
			return nil, nil, err
		}
		db, err := lsm.Open(ldir, nil)
		if err != nil {
			return nil, nil, err
		}
		return db, func() { db.Close(); os.RemoveAll(ldir) }, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown store kind %q", kind)
	}
}
