package experiments

import (
	"fmt"

	convoy "repro"
	"repro/internal/datagen/tdrive"
	"repro/internal/datagen/trucks"
	"repro/internal/model"
)

func init() {
	register("fig8a", func(s Scale) (Table, error) { return effectOfK(TDriveSpec(), "fig8a", s, true) })
	register("fig8b", func(s Scale) (Table, error) { return effectOfK(BrinkhoffSpec(), "fig8b", s, false) })
	register("fig8c", func(s Scale) (Table, error) { return effectOfM(TrucksSpec(), "fig8c", s, true) })
	register("fig8d", func(s Scale) (Table, error) { return effectOfM(TDriveSpec(), "fig8d", s, true) })
	register("fig8e", func(s Scale) (Table, error) { return effectOfM(BrinkhoffSpec(), "fig8e", s, false) })
	register("fig8f", func(s Scale) (Table, error) { return effectOfEps(TrucksSpec(), "fig8f", s, true) })
	register("fig8g", func(s Scale) (Table, error) { return effectOfEps(TDriveSpec(), "fig8g", s, true) })
	register("fig8h", func(s Scale) (Table, error) { return effectOfEps(BrinkhoffSpec(), "fig8h", s, false) })
	register("fig8i", fig8i)
	register("fig8j", fig8j)
	register("fig8k", fig8k)
	register("fig8l", fig8l)
}

// seriesRow measures one parameter combination across the algorithm
// line-up: VCoDA, VCoDA* (flat-file resident, as the sequential baselines
// are), and the three k2-* storage variants.
func seriesRow(ds *model.Dataset, p convoy.Params, withBaselines bool) ([]string, error) {
	var cells []string
	if withBaselines {
		vc, err := MineOn(StoreFile, ds, p, &convoy.Options{Algorithm: convoy.VCoDA})
		if err != nil {
			return nil, err
		}
		vcs, err := MineOn(StoreFile, ds, p, &convoy.Options{Algorithm: convoy.VCoDAStar})
		if err != nil {
			return nil, err
		}
		cells = append(cells, secs(vc.Duration), secs(vcs.Duration))
	}
	for _, kind := range []StoreKind{StoreFile, StoreRDBMS, StoreLSMT} {
		r, err := MineOn(kind, ds, p, nil)
		if err != nil {
			return nil, err
		}
		cells = append(cells, secs(r.Duration))
	}
	return cells, nil
}

func seriesColumns(withBaselines bool) []string {
	if withBaselines {
		return []string{"VCoDA", "VCoDA*", "k2-File", "k2-RDBMS", "k2-LSMT"}
	}
	return []string{"k2-File", "k2-RDBMS", "k2-LSMT"}
}

// effectOfK reproduces Figs 7h/8a/8b: runtime of every algorithm as k
// varies. The paper omits the VCoDA baselines on Brinkhoff because they
// crashed (out of memory) at the paper's scale.
func effectOfK(spec DatasetSpec, id string, s Scale, baselines bool) (Table, error) {
	ds := spec.Build(s)
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("Effect of varying k (%s)", spec.Name),
		Columns: append([]string{"k"}, seriesColumns(baselines)...),
		Notes:   "paper: VCoDA* flat with k; k2-* falls as k grows (more pruning)",
	}
	p := convoy.Params{M: spec.M, Eps: spec.Eps}
	for _, k := range spec.Ks(ds) {
		p.K = k
		cells, err := seriesRow(ds, p, baselines)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, append([]string{itoa(k)}, cells...))
	}
	return t, nil
}

// effectOfM reproduces Figs 8c/8d/8e: runtime as m varies over {3,6,9}.
func effectOfM(spec DatasetSpec, id string, s Scale, baselines bool) (Table, error) {
	ds := spec.Build(s)
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("Effect of varying m (%s)", spec.Name),
		Columns: append([]string{"m"}, seriesColumns(baselines)...),
		Notes:   "paper: k2-* speeds up with m (fewer candidate clusters)",
	}
	p := convoy.Params{K: spec.KMid(ds), Eps: spec.Eps}
	for _, m := range []int{3, 6, 9} {
		p.M = m
		cells, err := seriesRow(ds, p, baselines)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, append([]string{itoa(m)}, cells...))
	}
	return t, nil
}

// effectOfEps reproduces Figs 8f/8g/8h: runtime as eps varies over
// {0.3x, 1x, 3x} of the dataset's calibrated radius (the paper sweeps three
// decades of geographic eps).
func effectOfEps(spec DatasetSpec, id string, s Scale, baselines bool) (Table, error) {
	ds := spec.Build(s)
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("Effect of varying eps (%s)", spec.Name),
		Columns: append([]string{"eps"}, seriesColumns(baselines)...),
		Notes:   "paper: larger eps -> more clusters that never become convoys -> slower",
	}
	p := convoy.Params{M: spec.M, K: spec.KMid(ds)}
	for _, f := range []float64{0.3, 1, 3} {
		p.Eps = spec.Eps * f
		cells, err := seriesRow(ds, p, baselines)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, append([]string{ftoa(p.Eps)}, cells...))
	}
	return t, nil
}

// fig8i reproduces the k2-LSMT phase breakdown: where the time goes as k
// varies.
func fig8i(s Scale) (Table, error) {
	spec := TDriveSpec()
	ds := spec.Build(s)
	t := Table{
		ID:      "fig8i",
		Title:   "Execution time of k2-LSMT phases (T-Drive)",
		Columns: []string{"k", "benchmark", "HWMT", "merge", "ext-right", "ext-left", "validate"},
		Notes:   "paper: HWMT dominates, extension second",
	}
	p := convoy.Params{M: spec.M, Eps: spec.Eps}
	for _, k := range spec.Ks(ds) {
		p.K = k
		r, err := MineOn(StoreLSMT, ds, p, nil)
		if err != nil {
			return t, err
		}
		rep := r.Report
		if rep == nil {
			return t, fmt.Errorf("fig8i: missing k2hop report")
		}
		t.Rows = append(t.Rows, []string{
			itoa(k),
			secs(rep.BenchmarkTime + rep.CandidateTime),
			secs(rep.HWMTTime),
			secs(rep.MergeTime),
			secs(rep.ExtendRight),
			secs(rep.ExtendLeft),
			secs(rep.ValidateTime),
		})
	}
	return t, nil
}

// fig8j reproduces the pre-validation convoy counts of k2-LSMT vs VCoDA.
func fig8j(s Scale) (Table, error) {
	spec := TDriveSpec()
	ds := spec.Build(s)
	t := Table{
		ID:      "fig8j",
		Title:   "Pre-validation convoys (T-Drive)",
		Columns: []string{"k", "k2-LSMT", "VCoDA"},
		Notes:   "paper: difference is small, so validation saves little",
	}
	p := convoy.Params{M: spec.M, Eps: spec.Eps}
	for _, k := range spec.Ks(ds) {
		p.K = k
		k2, err := MineOn(StoreLSMT, ds, p, nil)
		if err != nil {
			return t, err
		}
		vc, err := MineMem(ds, p, &convoy.Options{Algorithm: convoy.VCoDA})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{itoa(k), itoa(k2.PreVal), itoa(vc.PreVal)})
	}
	return t, nil
}

// fig8k reproduces the effect of convoy count: same Trucks-shaped dataset
// with the dispatch-batch knob swept, mined by k2-RDBMS and k2-LSMT.
func fig8k(s Scale) (Table, error) {
	t := Table{
		ID:      "fig8k",
		Title:   "Effect of convoy count (Trucks)",
		Columns: []string{"groups", "convoys", "k2-RDBMS", "k2-LSMT"},
		Notes:   "paper: time generally grows with convoy count (less pruning)",
	}
	spec := TrucksSpec()
	for _, groups := range []int{0, 1, 3, 6, 10} {
		p := trucks.DefaultParams(1)
		switch s {
		case Tiny:
			p.Trucks, p.Days, p.TicksPerDay = 25, 2, 120
		case Small:
			p.Trucks, p.Days, p.TicksPerDay = 50, 4, 250
		case Mid:
			p.Trucks, p.Days, p.TicksPerDay = 50, 8, 400
		}
		p.ConvoyGroups = groups
		ds := trucks.Generate(p)
		mp := convoy.Params{M: spec.M, K: spec.Ks(ds)[1], Eps: spec.Eps}
		rdbms, err := MineOn(StoreRDBMS, ds, mp, nil)
		if err != nil {
			return t, err
		}
		lsmt, err := MineOn(StoreLSMT, ds, mp, nil)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(groups), itoa(len(rdbms.Convoys)),
			secs(rdbms.Duration), secs(lsmt.Duration),
		})
	}
	return t, nil
}

// fig8l reproduces data-size scalability: T-Drive-shaped datasets of
// growing size, VCoDA* vs k2-RDBMS vs k2-LSMT.
func fig8l(s Scale) (Table, error) {
	t := Table{
		ID:      "fig8l",
		Title:   "Data size scalability (T-Drive shape)",
		Columns: []string{"points", "VCoDA*", "k2-RDBMS", "k2-LSMT"},
		Notes:   "paper: VCoDA* grows sharply with size, k2-* sub-linearly",
	}
	base := tdrive.DefaultParams(2)
	switch s {
	case Tiny:
		base.Taxis, base.Ticks = 60, 120
	case Small:
		base.Taxis, base.Ticks = 200, 300
	case Mid:
		base.Taxis, base.Ticks = 400, 500
	}
	spec := TDriveSpec()
	for _, mult := range []int{1, 2, 4} {
		p := base
		p.Taxis = base.Taxis * mult
		ds := tdrive.Generate(p)
		mp := convoy.Params{M: spec.M, K: spec.KMid(ds), Eps: spec.Eps}
		vcs, err := MineOn(StoreFile, ds, mp, &convoy.Options{Algorithm: convoy.VCoDAStar})
		if err != nil {
			return t, err
		}
		rdbms, err := MineOn(StoreRDBMS, ds, mp, nil)
		if err != nil {
			return t, err
		}
		lsmt, err := MineOn(StoreLSMT, ds, mp, nil)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(ds.NumPoints()), secs(vcs.Duration), secs(rdbms.Duration), secs(lsmt.Duration),
		})
	}
	return t, nil
}
