package experiments

import (
	"fmt"

	convoy "repro"
)

func init() {
	register("fig7a", func(s Scale) (Table, error) { return gainVsK(TrucksSpec(), "fig7a", s) })
	register("fig7b", func(s Scale) (Table, error) { return gainVsK(TDriveSpec(), "fig7b", s) })
	register("fig7c", fig7c)
	register("fig7d", func(s Scale) (Table, error) { return gainOverSPARE("fig7d", "single machine", s, spareLocal) })
	register("fig7e", func(s Scale) (Table, error) { return gainOverSPARE("fig7e", "YARN cluster (simulated)", s, spareYarn) })
	register("fig7f", func(s Scale) (Table, error) { return gainOverSPARE("fig7f", "NUMA machine (simulated)", s, spareNuma) })
	register("fig7g", fig7g)
	register("fig7h", func(s Scale) (Table, error) { return effectOfK(TrucksSpec(), "fig7h", s, true) })
}

// gainVsK reproduces Fig 7a/7b: the speedup of k2-RDBMS and k2-LSMT over
// VCoDA* as k varies. VCoDA* runs from the flat file (its natural layout,
// as in the paper's setup); the k2 variants run from their indexed stores.
func gainVsK(spec DatasetSpec, id string, s Scale) (Table, error) {
	ds := spec.Build(s)
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("Performance gain over VCoDA* (%s)", spec.Name),
		Columns: []string{"k", "vcoda*", "k2-RDBMS", "gain", "k2-LSMT", "gain"},
		Notes:   "paper: gains up to 8x (Trucks) / 260x (T-Drive), growing with data size",
	}
	p := convoy.Params{M: spec.M, Eps: spec.Eps}
	for _, k := range spec.Ks(ds) {
		p.K = k
		base, err := MineOn(StoreFile, ds, p, &convoy.Options{Algorithm: convoy.VCoDAStar})
		if err != nil {
			return t, err
		}
		rdbms, err := MineOn(StoreRDBMS, ds, p, nil)
		if err != nil {
			return t, err
		}
		lsmt, err := MineOn(StoreLSMT, ds, p, nil)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(k),
			secs(base.Duration),
			secs(rdbms.Duration), gain(base.Duration, rdbms.Duration),
			secs(lsmt.Duration), gain(base.Duration, lsmt.Duration),
		})
	}
	return t, nil
}

// fig7c compares k2-RDBMS and k2-LSMT on the largest dataset (Brinkhoff).
func fig7c(s Scale) (Table, error) {
	spec := BrinkhoffSpec()
	ds := spec.Build(s)
	t := Table{
		ID:      "fig7c",
		Title:   "k2-RDBMS vs k2-LSMT (Brinkhoff)",
		Columns: []string{"k", "k2-RDBMS", "k2-LSMT"},
		Notes:   "paper: k2-LSMT wins on the largest dataset",
	}
	p := convoy.Params{M: spec.M, Eps: spec.Eps}
	for _, k := range spec.Ks(ds) {
		p.K = k
		rdbms, err := MineOn(StoreRDBMS, ds, p, nil)
		if err != nil {
			return t, err
		}
		lsmt, err := MineOn(StoreLSMT, ds, p, nil)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{itoa(k), secs(rdbms.Duration), secs(lsmt.Duration)})
	}
	return t, nil
}

// spare run shapes for figs 7d/7e/7f.
type spareRun struct {
	label string
	cores []int
	opts  func(cores int) *convoy.Options
}

var spareLocal = spareRun{
	label: "cores",
	cores: []int{1, 2, 4, 8},
	opts: func(c int) *convoy.Options {
		return &convoy.Options{Algorithm: convoy.SPARE, Workers: c}
	},
}

var spareYarn = spareRun{
	label: "cores",
	cores: []int{2, 4, 8, 16},
	opts: func(c int) *convoy.Options {
		nodes := 2
		if c >= 8 {
			nodes = 4
		}
		return &convoy.Options{Algorithm: convoy.SPARE, Workers: c / nodes, Nodes: nodes}
	},
}

var spareNuma = spareRun{
	label: "cores",
	cores: []int{8, 16, 24, 32},
	opts: func(c int) *convoy.Options {
		return &convoy.Options{Algorithm: convoy.SPARE, Workers: c}
	},
}

// gainOverSPARE reproduces Figs 7d/e/f: sequential k/2-hop (one core, in
// memory) against SPARE running with growing parallelism, per dataset.
func gainOverSPARE(id, setup string, s Scale, run spareRun) (Table, error) {
	t := Table{
		ID:      id,
		Title:   "k/2-hop gain over SPARE — " + setup,
		Columns: []string{run.label, "Trucks", "T-Drive", "Brinkhoff"},
		Notes:   "gain = SPARE time / k2-hop(single core) time; paper: up to 43000x",
	}
	type base struct {
		spec DatasetSpec
		k2   *MineResult
		p    convoy.Params
	}
	var bases []base
	for _, spec := range Datasets() {
		ds := spec.Build(s)
		p := convoy.Params{M: spec.M, K: spec.KMid(ds), Eps: spec.Eps}
		k2, err := MineMem(ds, p, nil)
		if err != nil {
			return t, err
		}
		bases = append(bases, base{spec: spec, k2: k2, p: p})
	}
	for _, cores := range run.cores {
		row := []string{itoa(cores)}
		for _, b := range bases {
			ds := b.spec.Build(s)
			sp, err := MineMem(ds, b.p, run.opts(cores))
			if err != nil {
				return t, err
			}
			row = append(row, gain(sp.Duration, b.k2.Duration))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// fig7g reproduces the DCM comparison: k/2-hop (single core) against DCM on
// a simulated YARN cluster with 1..4 nodes.
func fig7g(s Scale) (Table, error) {
	t := Table{
		ID:      "fig7g",
		Title:   "k/2-hop gain over DCM on YARN (simulated)",
		Columns: []string{"nodes", "Trucks", "T-Drive", "Brinkhoff"},
		Notes:   "gain = DCM time / k2-hop(single core) time; paper: up to 140x",
	}
	type base struct {
		spec DatasetSpec
		k2   *MineResult
		p    convoy.Params
	}
	var bases []base
	for _, spec := range Datasets() {
		ds := spec.Build(s)
		p := convoy.Params{M: spec.M, K: spec.KMid(ds), Eps: spec.Eps}
		k2, err := MineMem(ds, p, nil)
		if err != nil {
			return t, err
		}
		bases = append(bases, base{spec: spec, k2: k2, p: p})
	}
	for _, nodes := range []int{1, 2, 3, 4} {
		row := []string{itoa(nodes)}
		for _, b := range bases {
			ds := b.spec.Build(s)
			dcmRes, err := MineMem(ds, b.p, &convoy.Options{
				Algorithm: convoy.DCM, Workers: 4, Nodes: nodes,
			})
			if err != nil {
				return t, err
			}
			row = append(row, gain(dcmRes.Duration, b.k2.Duration))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
