// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) against the synthetic datasets (see DESIGN.md §5 for the
// experiment index and §3 for the dataset substitutions). Each experiment
// returns a Table whose rows correspond to the series the paper plots;
// absolute numbers differ from the paper's testbed, but the comparisons —
// who wins, how gains move with k, m, eps, cores, nodes and data size —
// are the reproduction targets recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Scale selects the dataset sizes: Tiny keeps `go test -bench` snappy,
// Small is the default for the CLI, Mid approaches the paper's relative
// dataset-size ratios.
type Scale string

// Available scales.
const (
	Tiny  Scale = "tiny"
	Small Scale = "small"
	Mid   Scale = "mid"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries caveats (e.g. which substitution applies).
	Notes string
}

// Render writes the table as aligned text.
func (t Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Runner is one experiment generator.
type Runner func(Scale) (Table, error)

// registry maps experiment ids (paper figure/table names) to runners.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns the registered experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id ("fig7a", "table5", ...).
func Run(id string, scale Scale) (Table, error) {
	r, ok := registry[strings.ToLower(id)]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(scale)
}

// RunAll executes every experiment and writes the tables to w.
func RunAll(scale Scale, w io.Writer) error {
	for _, id := range IDs() {
		t, err := Run(id, scale)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		t.Render(w)
	}
	return nil
}

// --- small shared helpers ------------------------------------------------

func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

func secs(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }
func gain(base, fast time.Duration) string {
	if fast <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(fast))
}
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%g", v) }
