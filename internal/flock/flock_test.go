package flock

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

func pos(oid int32, x, y float64) model.ObjPos { return model.ObjPos{OID: oid, X: x, Y: y} }

// --- SEC (Welzl) ----------------------------------------------------------

// bruteSEC enumerates circles over all pairs and triples, returning the
// smallest one containing every point.
func bruteSEC(pts []model.ObjPos) Circle {
	if len(pts) == 0 {
		return Circle{}
	}
	if len(pts) == 1 {
		return Circle{X: pts[0].X, Y: pts[0].Y}
	}
	best := Circle{R: math.Inf(1)}
	containsAll := func(c Circle) bool {
		for _, p := range pts {
			if !c.Contains(p.X, p.Y) {
				return false
			}
		}
		return true
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if c := circleFrom2(pts[i], pts[j]); c.R < best.R && containsAll(c) {
				best = c
			}
			for k := j + 1; k < len(pts); k++ {
				if c := circleFrom3(pts[i], pts[j], pts[k]); c.R < best.R && containsAll(c) {
					best = c
				}
			}
		}
	}
	return best
}

func TestSECSimpleShapes(t *testing.T) {
	// Two points: circle over the diameter.
	c := SEC([]model.ObjPos{pos(1, 0, 0), pos(2, 2, 0)})
	if math.Abs(c.R-1) > 1e-9 || math.Abs(c.X-1) > 1e-9 {
		t.Fatalf("two-point SEC = %+v", c)
	}
	// Equilateral-ish triangle: circumcircle.
	c = SEC([]model.ObjPos{pos(1, 0, 0), pos(2, 2, 0), pos(3, 1, 2)})
	for _, p := range []model.ObjPos{pos(1, 0, 0), pos(2, 2, 0), pos(3, 1, 2)} {
		if !c.Contains(p.X, p.Y) {
			t.Fatalf("SEC %+v misses %v", c, p)
		}
	}
	// Single point: zero radius.
	c = SEC([]model.ObjPos{pos(1, 5, 7)})
	if c.R != 0 || c.X != 5 || c.Y != 7 {
		t.Fatalf("single-point SEC = %+v", c)
	}
	// Empty: zero circle.
	if SEC(nil) != (Circle{}) {
		t.Fatalf("empty SEC should be zero")
	}
}

func TestSECMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 120; trial++ {
		n := rng.Intn(12) + 2
		pts := make([]model.ObjPos, n)
		for i := range pts {
			pts[i] = pos(int32(i), rng.Float64()*10, rng.Float64()*10)
		}
		got := SEC(pts)
		want := bruteSEC(pts)
		for _, p := range pts {
			if !got.Contains(p.X, p.Y) {
				t.Fatalf("trial %d: SEC %+v misses %v", trial, got, p)
			}
		}
		if got.R > want.R*(1+1e-6)+1e-9 {
			t.Fatalf("trial %d: SEC radius %f > optimal %f", trial, got.R, want.R)
		}
	}
}

func TestSECCollinear(t *testing.T) {
	pts := []model.ObjPos{pos(1, 0, 0), pos(2, 1, 0), pos(3, 2, 0), pos(4, 3, 0)}
	c := SEC(pts)
	if math.Abs(c.R-1.5) > 1e-9 {
		t.Fatalf("collinear SEC radius = %f, want 1.5", c.R)
	}
}

func TestSECDuplicatePoints(t *testing.T) {
	pts := []model.ObjPos{pos(1, 1, 1), pos(2, 1, 1), pos(3, 1, 1)}
	c := SEC(pts)
	if c.R > 1e-9 {
		t.Fatalf("duplicate-point SEC radius = %f", c.R)
	}
}

func TestFitsDisk(t *testing.T) {
	pts := []model.ObjPos{pos(1, 0, 0), pos(2, 2, 0)}
	if !FitsDisk(pts, 1.0) {
		t.Fatalf("diameter-2 pair should fit radius 1")
	}
	if FitsDisk(pts, 0.9) {
		t.Fatalf("diameter-2 pair should not fit radius 0.9")
	}
	if !FitsDisk(nil, 0) {
		t.Fatalf("empty set fits any disk")
	}
}

// --- DiskGroups -------------------------------------------------------------

func TestDiskGroupsBasic(t *testing.T) {
	rows := []model.ObjPos{
		pos(1, 0, 0), pos(2, 0.5, 0), pos(3, 1.0, 0), // tight trio
		pos(9, 100, 100), // loner
	}
	groups := DiskGroups(rows, 0.6, 2)
	found := false
	for _, g := range groups {
		if g.Equal(model.NewObjSet(1, 2, 3)) {
			found = true
		}
		if g.Contains(9) && len(g) > 1 {
			t.Fatalf("loner grouped: %v", g)
		}
		// Every returned group must actually fit a disk of radius 0.6.
		var member []model.ObjPos
		for _, r := range rows {
			if g.Contains(r.OID) {
				member = append(member, r)
			}
		}
		if !FitsDisk(member, 0.6) {
			t.Fatalf("group %v does not fit the disk", g)
		}
	}
	if !found {
		t.Fatalf("trio not found: %v", groups)
	}
}

// Completeness: any subset that fits a radius-r disk must be contained in
// some returned group.
func TestDiskGroupsComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(10) + 3
		rows := make([]model.ObjPos, n)
		for i := range rows {
			rows[i] = pos(int32(i), rng.Float64()*4, rng.Float64()*4)
		}
		r := 0.5 + rng.Float64()
		groups := DiskGroups(rows, r, 2)
		// Enumerate pairs and triples.
		covered := func(set []model.ObjPos) bool {
			ids := make([]int32, len(set))
			for i, p := range set {
				ids[i] = p.OID
			}
			want := model.NewObjSet(ids...)
			for _, g := range groups {
				if want.SubsetOf(g) {
					return true
				}
			}
			return false
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pair := []model.ObjPos{rows[i], rows[j]}
				if FitsDisk(pair, r) && !covered(pair) {
					t.Fatalf("trial %d: pair %v fits but uncovered", trial, pair)
				}
				for k := j + 1; k < n; k++ {
					tri := []model.ObjPos{rows[i], rows[j], rows[k]}
					if FitsDisk(tri, r) && !covered(tri) {
						t.Fatalf("trial %d: triple fits but uncovered", trial)
					}
				}
			}
		}
	}
}

func TestDiskGroupsMaximalOnly(t *testing.T) {
	rows := []model.ObjPos{pos(1, 0, 0), pos(2, 0.2, 0), pos(3, 0.4, 0)}
	groups := DiskGroups(rows, 1, 2)
	for i := range groups {
		for j := range groups {
			if i != j && groups[i].SubsetOf(groups[j]) {
				t.Fatalf("subset group survived: %v ⊆ %v", groups[i], groups[j])
			}
		}
	}
}

// --- miners -----------------------------------------------------------------

// flockScenario: objects 1..3 fly in formation (diameter < 2) ticks 0..14;
// object 4 joins only ticks 5..9; group 10,11 far away, together throughout.
func flockScenario() *model.Dataset {
	var pts []model.Point
	for t := int32(0); t < 15; t++ {
		base := float64(t) * 5
		pts = append(pts,
			model.Point{OID: 1, T: t, X: base, Y: 0},
			model.Point{OID: 2, T: t, X: base + 0.8, Y: 0.3},
			model.Point{OID: 3, T: t, X: base + 0.4, Y: 0.8},
		)
		x4 := base + 0.6
		if t < 5 || t > 9 {
			x4 += 50
		}
		pts = append(pts, model.Point{OID: 4, T: t, X: x4, Y: 0.1})
		pts = append(pts,
			model.Point{OID: 10, T: t, X: 1000, Y: float64(t)},
			model.Point{OID: 11, T: t, X: 1000.5, Y: float64(t) + 0.5},
		)
	}
	return model.NewDataset(pts)
}

func TestSweepFindsFlocks(t *testing.T) {
	ds := flockScenario()
	got, err := Sweep(storage.NewMemStore(ds), Config{M: 2, K: 5, R: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	cover := model.NewConvoySet(got...)
	for _, want := range []Flock{
		model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 14),
		model.NewConvoy(model.NewObjSet(1, 2, 3, 4), 5, 9),
		model.NewConvoy(model.NewObjSet(10, 11), 0, 14),
	} {
		if !cover.Covers(want) {
			t.Fatalf("missing flock %v in %v", want, got)
		}
	}
}

func TestK2HopMatchesSweep(t *testing.T) {
	ds := flockScenario()
	ms := storage.NewMemStore(ds)
	for _, cfg := range []Config{
		{M: 2, K: 5, R: 1.0},
		{M: 3, K: 4, R: 1.0},
		{M: 2, K: 10, R: 1.0},
		{M: 2, K: 5, R: 0.5},
	} {
		want, err := Sweep(ms, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := MineK2Hop(ms, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !model.ConvoysEqual(got, want) {
			t.Fatalf("cfg %+v:\n got %v\nwant %v", cfg, got, want)
		}
	}
}

func TestK2HopMatchesSweepRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		// Random walkers, some paired.
		var pts []model.Point
		n := 8
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.Float64()*30, rng.Float64()*30
		}
		for t := int32(0); t < 16; t++ {
			for i := 0; i < n; i++ {
				if i%2 == 1 && rng.Float64() < 0.8 {
					// Follow the previous object closely.
					x[i], y[i] = x[i-1]+rng.Float64()*0.5, y[i-1]+rng.Float64()*0.5
				} else {
					x[i] += rng.Float64()*4 - 2
					y[i] += rng.Float64()*4 - 2
				}
				pts = append(pts, model.Point{OID: int32(i), T: t, X: x[i], Y: y[i]})
			}
		}
		ds := model.NewDataset(pts)
		ms := storage.NewMemStore(ds)
		cfg := Config{M: 2, K: 4, R: 1.2}
		want, err := Sweep(ms, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := MineK2Hop(ms, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !model.ConvoysEqual(got, want) {
			t.Fatalf("trial %d:\n got %v\nwant %v", trial, got, want)
		}
	}
}

func TestFlockVsConvoySemantics(t *testing.T) {
	// A chain of 5 objects spaced 1.0 apart: density-connected with eps=1.2
	// (a convoy), but the chain's diameter is 4 so it fits no radius-1 disk
	// as a whole — flocks with r=1 must be sub-groups.
	var pts []model.Point
	for t := int32(0); t < 10; t++ {
		for i := int32(0); i < 5; i++ {
			pts = append(pts, model.Point{OID: i, T: t, X: float64(i), Y: 0})
		}
	}
	ds := model.NewDataset(pts)
	got, err := Sweep(storage.NewMemStore(ds), Config{M: 5, K: 5, R: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("chain should not be a radius-1 flock of all 5: %v", got)
	}
	got, err = Sweep(storage.NewMemStore(ds), Config{M: 3, K: 5, R: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Any 3 consecutive chain members span diameter 2 = one radius-1 disk.
	if len(got) == 0 {
		t.Fatalf("3-member windows should be flocks")
	}
	for _, f := range got {
		if f.Size() > 3 {
			t.Fatalf("flock %v exceeds disk capacity", f)
		}
	}
}

func TestEmptyAndShortInputs(t *testing.T) {
	ms := storage.NewMemStore(model.NewDataset(nil))
	if got, err := Sweep(ms, Config{M: 2, K: 3, R: 1}); err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: %v %v", got, err)
	}
	if got, _, err := MineK2Hop(ms, Config{M: 2, K: 3, R: 1}); err != nil || len(got) != 0 {
		t.Fatalf("empty k2hop: %v %v", got, err)
	}
	if _, _, err := MineK2Hop(ms, Config{M: 2, K: 1, R: 1}); err == nil {
		t.Fatalf("K=1 should be rejected by the pipeline")
	}
}
