// Package flock implements flock pattern mining — the paper's §7 names
// flocks as the first pattern the k/2-hop technique should transfer to, and
// this package carries that out.
//
// A (m,r,k)-flock (Gudmundsson & van Kreveld, GIS'06) is a set of ≥ m
// objects that stay within one disk of radius r for ≥ k consecutive
// timestamps. Unlike a convoy's density connection, the disk bounds the
// group's diameter; like a convoy, the *same* objects must stay together
// for the whole lifetime — which is exactly the property k/2-hop's
// benchmark-point pruning needs (any flock of length ≥ k covers two
// consecutive benchmark points, and its members must share a disk at both).
//
// Two miners are provided: Sweep (the classical timestamp sweep over
// candidate disks, the baseline) and MineK2Hop (benchmark-point pruning +
// hop-window verification + extension, mirroring the convoy pipeline).
// They produce identical results; the tests cross-check them.
//
// This file: the smallest-enclosing-circle primitive (Welzl's algorithm) —
// a set of points fits in a radius-r disk exactly when its minimum
// enclosing circle has radius ≤ r.
package flock

import (
	"math"

	"repro/internal/model"
)

// Circle is a circle in the plane.
type Circle struct {
	X, Y float64
	R    float64
}

// Contains reports whether p lies in the closed disk (with a small epsilon
// for floating-point robustness).
func (c Circle) Contains(x, y float64) bool {
	dx, dy := x-c.X, y-c.Y
	return dx*dx+dy*dy <= c.R*c.R*(1+1e-12)+1e-12
}

// SEC returns the smallest enclosing circle of the points using Welzl's
// move-to-front algorithm (expected linear time). An empty input yields the
// zero circle.
func SEC(pts []model.ObjPos) Circle {
	// Work on a copy: the algorithm reorders points.
	ps := make([]model.ObjPos, len(pts))
	copy(ps, pts)
	// Deterministic shuffle (fixed LCG) to get expected-linear behaviour
	// without importing math/rand state into library code.
	seed := uint64(0x9E3779B97F4A7C15)
	for i := len(ps) - 1; i > 0; i-- {
		seed = seed*6364136223846793005 + 1442695040888963407
		j := int(seed % uint64(i+1))
		ps[i], ps[j] = ps[j], ps[i]
	}
	c := Circle{}
	for i, p := range ps {
		if i == 0 {
			c = Circle{X: p.X, Y: p.Y, R: 0}
			continue
		}
		if c.Contains(p.X, p.Y) {
			continue
		}
		// p is on the boundary of the circle of ps[:i+1].
		c = secWithOne(ps[:i], p)
	}
	return c
}

// secWithOne computes the SEC of pts ∪ {q} with q on the boundary.
func secWithOne(pts []model.ObjPos, q model.ObjPos) Circle {
	c := Circle{X: q.X, Y: q.Y, R: 0}
	for i, p := range pts {
		if c.Contains(p.X, p.Y) {
			continue
		}
		c = secWithTwo(pts[:i], q, p)
	}
	return c
}

// secWithTwo computes the SEC of pts ∪ {q1,q2} with q1 and q2 on the
// boundary.
func secWithTwo(pts []model.ObjPos, q1, q2 model.ObjPos) Circle {
	c := circleFrom2(q1, q2)
	for i, p := range pts {
		if c.Contains(p.X, p.Y) {
			continue
		}
		c = circleFrom3(q1, q2, p)
		// Degenerate (collinear) triples return an enclosing fallback; keep
		// scanning — later points may still force a recompute.
		_ = i
	}
	return c
}

func circleFrom2(a, b model.ObjPos) Circle {
	cx, cy := (a.X+b.X)/2, (a.Y+b.Y)/2
	r := math.Hypot(a.X-cx, a.Y-cy)
	return Circle{X: cx, Y: cy, R: r}
}

// circleFrom3 returns the circumcircle of a, b, c, falling back to the
// largest two-point circle when the points are (nearly) collinear.
func circleFrom3(a, b, c model.ObjPos) Circle {
	ax, ay := b.X-a.X, b.Y-a.Y
	bx, by := c.X-a.X, c.Y-a.Y
	d := 2 * (ax*by - ay*bx)
	if math.Abs(d) < 1e-12 {
		// Collinear: the SEC of three collinear points is the circle over
		// the farthest pair.
		best := circleFrom2(a, b)
		if cand := circleFrom2(a, c); cand.R > best.R {
			best = cand
		}
		if cand := circleFrom2(b, c); cand.R > best.R {
			best = cand
		}
		return best
	}
	ux := (by*(ax*ax+ay*ay) - ay*(bx*bx+by*by)) / d
	uy := (ax*(bx*bx+by*by) - bx*(ax*ax+ay*ay)) / d
	cx, cy := a.X+ux, a.Y+uy
	return Circle{X: cx, Y: cy, R: math.Hypot(ux, uy)}
}

// FitsDisk reports whether the points fit in a closed disk of radius r.
func FitsDisk(pts []model.ObjPos, r float64) bool {
	if len(pts) == 0 {
		return true
	}
	return SEC(pts).R <= r*(1+1e-9)
}
