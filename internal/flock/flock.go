package flock

import (
	"fmt"
	"math"

	"repro/internal/cmc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/storage"
)

// Flock is a mined flock: an object set plus an inclusive lifespan. It is
// structurally a model.Convoy; the semantics ("fits one radius-R disk at
// every tick" vs "density-connected at every tick") differ.
type Flock = model.Convoy

// Config carries the flock parameters: ≥ M objects within one disk of
// radius R for ≥ K consecutive timestamps. Workers bounds MineK2Hop's
// parallel phases like core.Config.Workers does (≤ 0 = one worker per
// core, 1 = the sequential path; output is identical either way); Sweep
// is inherently sequential and ignores it.
type Config struct {
	M       int
	K       int
	R       float64
	Workers int
}

// Sweep mines maximal flocks with the classical timestamp sweep
// (Gudmundsson & van Kreveld / Vieira et al.): candidate disks at every
// timestamp, CMC-style intersection across time. It is the baseline and
// oracle for MineK2Hop, and a thin loop over the streaming Miner, so the
// batch sweep and the convoyd feed mode share one code path.
func Sweep(store storage.Store, cfg Config) ([]Flock, error) {
	ts, te := store.TimeRange()
	mn := NewMiner(cfg)
	for t := ts; t <= te; t++ {
		snap, err := store.Snapshot(t)
		if err != nil {
			return nil, fmt.Errorf("flock: snapshot %d: %w", t, err)
		}
		mn.Step(t, snap)
	}
	return mn.Finish(), nil
}

// Miner is the incremental flock miner fed one snapshot at a time: each
// Step covers the snapshot with maximal candidate disks (DiskGroups) and
// feeds them to the shared dense-set sweep engine (cmc.Miner), which does
// the cross-tick intersection, domination pruning and emission. It mirrors
// cmc.Miner's streaming surface; gaps in the timestamp sequence close every
// open candidate, exactly as the sweep engine defines. Not safe for
// concurrent use.
type Miner struct {
	cfg Config
	mn  *cmc.Miner
}

// NewMiner creates a streaming flock miner for the given parameters.
func NewMiner(cfg Config) *Miner {
	return &Miner{cfg: cfg, mn: cmc.NewMiner(cfg.M, cfg.K)}
}

// Step feeds the snapshot of timestamp t. Timestamps must be strictly
// increasing (a violation panics, like cmc.Miner.Step).
func (m *Miner) Step(t int32, snap []model.ObjPos) {
	m.mn.Step(t, DiskGroups(snap, m.cfg.R, m.cfg.M))
}

// Drain returns the flocks accepted into the result set since the last
// Drain, in emission order. Like cmc.Miner.Drain, a drained flock may later
// be superseded by a longer/larger one; Drain never retracts.
func (m *Miner) Drain() []Flock { return m.mn.Drain() }

// Finish flushes candidates still alive at the final timestamp and returns
// all mined maximal flocks in canonical order — exactly what Sweep returns
// over the same tick sequence.
func (m *Miner) Finish() []Flock { return m.mn.Finish() }

// Last returns the most recently stepped timestamp; ok is false before the
// first Step (and after a Reset).
func (m *Miner) Last() (t int32, ok bool) { return m.mn.Last() }

// Reset returns the miner to its initial state, keeping the parameters.
func (m *Miner) Reset() { m.mn.Reset() }

// MineK2Hop mines maximal flocks with the k/2-hop pipeline: disks are
// computed in full only at benchmark points; candidates are the pairwise
// intersections; hop-windows verify by re-covering only the candidate's
// objects. No connectivity validation is needed — a subset of a disk is in
// the disk — so the generic pipeline's candidates are final (after a
// maximality filter).
//
// This implements the paper's §7 ("the k/2-hop technique can be applied to
// numerous movement patterns such as ... flock patterns").
func MineK2Hop(store storage.Store, cfg Config) ([]Flock, *core.Report, error) {
	ccfg := core.DefaultConfig(cfg.M, cfg.K, cfg.R)
	ccfg.Workers = cfg.Workers
	grouper := core.Grouper{
		Benchmark:  func(rows []model.ObjPos) []model.ObjSet { return DiskGroups(rows, cfg.R, cfg.M) },
		Restricted: func(rows []model.ObjPos) []model.ObjSet { return DiskGroups(rows, cfg.R, cfg.M) },
	}
	cands, rep, err := core.MineCandidates(store, ccfg, grouper)
	if err != nil {
		return nil, rep, err
	}
	out := model.MaximalConvoys(cands)
	if rep != nil {
		rep.Convoys = len(out)
	}
	return out, rep, nil
}

// DiskGroups returns the maximal groups of ≥ minSize objects that fit in a
// closed disk of radius r, using the classical candidate-disk construction:
// for every pair of points at distance ≤ 2r there are (at most) two disks
// of radius r with both points on the boundary, and any group fitting some
// radius-r disk is contained in the member set of one of these candidates
// (or of a disk centred on a single point, for groups whose SEC is a
// point). Groups that are subsets of other groups are dropped — CMC-style
// sweeping and the k/2-hop pipeline both only need maximal covers.
func DiskGroups(rows []model.ObjPos, r float64, minSize int) []model.ObjSet {
	n := len(rows)
	if n < minSize || minSize < 1 {
		return nil
	}
	g := newDiskGrid(rows, r)
	seen := map[string]bool{}
	var groups []model.ObjSet
	add := func(set model.ObjSet) {
		if len(set) < minSize {
			return
		}
		k := set.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		groups = append(groups, set)
	}
	// Singleton-centred disks (cover co-located points and tiny groups).
	for i := range rows {
		add(g.members(rows[i].X, rows[i].Y, r))
	}
	// Pair-boundary disks.
	for i := 0; i < n; i++ {
		for _, j := range g.near(i, 2*r) {
			if j <= i {
				continue
			}
			for _, c := range diskCentersThrough(rows[i], rows[j], r) {
				add(g.members(c.X, c.Y, r))
			}
		}
	}
	// Maximality filter: drop subset groups.
	var out []model.ObjSet
	for i, gi := range groups {
		dominated := false
		for j, gj := range groups {
			if i == j || len(gi) > len(gj) {
				continue
			}
			if gi.SubsetOf(gj) && (len(gi) < len(gj) || i > j) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, gi)
		}
	}
	return out
}

// diskCentersThrough returns the centres of the radius-r circles passing
// through both a and b (none when they are further than 2r apart).
func diskCentersThrough(a, b model.ObjPos, r float64) []struct{ X, Y float64 } {
	dx, dy := b.X-a.X, b.Y-a.Y
	d2 := dx*dx + dy*dy
	if d2 > 4*r*r || d2 == 0 {
		return nil
	}
	mx, my := (a.X+b.X)/2, (a.Y+b.Y)/2
	h := math.Sqrt(r*r - d2/4)
	d := math.Sqrt(d2)
	// Unit normal to ab.
	nx, ny := -dy/d, dx/d
	return []struct{ X, Y float64 }{
		{X: mx + nx*h, Y: my + ny*h},
		{X: mx - nx*h, Y: my - ny*h},
	}
}

// diskGrid is a uniform grid over the rows with cell side r, answering
// "members within r of (x,y)" and "indices within d of row i".
type diskGrid struct {
	rows []model.ObjPos
	r    float64
	cell map[[2]int32][]int
}

func newDiskGrid(rows []model.ObjPos, r float64) *diskGrid {
	if r <= 0 {
		r = math.SmallestNonzeroFloat64
	}
	g := &diskGrid{rows: rows, r: r, cell: make(map[[2]int32][]int, len(rows))}
	for i, p := range rows {
		k := g.key(p.X, p.Y)
		g.cell[k] = append(g.cell[k], i)
	}
	return g
}

func (g *diskGrid) key(x, y float64) [2]int32 {
	return [2]int32{int32(math.Floor(x / g.r)), int32(math.Floor(y / g.r))}
}

// members returns the OIDs of all rows within dist of (x, y), sorted.
func (g *diskGrid) members(x, y, dist float64) model.ObjSet {
	span := int32(math.Ceil(dist/g.r)) + 1
	center := g.key(x, y)
	var ids []int32
	d2 := dist * dist
	for cx := center[0] - span; cx <= center[0]+span; cx++ {
		for cy := center[1] - span; cy <= center[1]+span; cy++ {
			for _, i := range g.cell[[2]int32{cx, cy}] {
				dx, dy := g.rows[i].X-x, g.rows[i].Y-y
				if dx*dx+dy*dy <= d2*(1+1e-12)+1e-12 {
					ids = append(ids, g.rows[i].OID)
				}
			}
		}
	}
	return model.NewObjSet(ids...)
}

// near returns the indices of rows within dist of row i (excluding i).
func (g *diskGrid) near(i int, dist float64) []int {
	p := g.rows[i]
	span := int32(math.Ceil(dist/g.r)) + 1
	center := g.key(p.X, p.Y)
	var out []int
	d2 := dist * dist
	for cx := center[0] - span; cx <= center[0]+span; cx++ {
		for cy := center[1] - span; cy <= center[1]+span; cy++ {
			for _, j := range g.cell[[2]int32{cx, cy}] {
				if j == i {
					continue
				}
				dx, dy := g.rows[j].X-p.X, g.rows[j].Y-p.Y
				if dx*dx+dy*dy <= d2 {
					out = append(out, j)
				}
			}
		}
	}
	return out
}
