// Package cmc implements the snapshot-sweep convoy miner that underlies the
// sequential baselines: CMC (Jeung et al., PVLDB'08) in the corrected form
// PCCD (Partially Connected Convoy Discovery, Yoon & Shahabi, ICDMW'09).
//
// The miner sweeps timestamps in order, clustering every snapshot and
// intersecting each alive candidate convoy with the clusters of the current
// timestamp. A candidate that cannot continue intact is emitted when it is
// long enough. Candidate sets are kept maximal by domination pruning: a
// candidate (O₁, s₁) is dropped when another candidate (O₂, s₂) with
// O₁ ⊆ O₂ and s₂ ≤ s₁ exists, because every convoy reachable from the
// former is a sub-convoy of one reachable from the latter.
//
// The output is the set of maximal partially connected convoys — objects may
// be density-connected through objects outside the convoy. Full-connectivity
// validation (package vcoda) turns these into FC convoys.
package cmc

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/dbscan"
	"repro/internal/model"
	"repro/internal/storage"
)

// Miner is an incremental PCCD miner fed one clustered snapshot at a time.
// It is the building block shared by the sequential baseline, the DCM
// partition workers, the validation re-miners and the streaming front-ends
// (StreamMiner, and through it every convoyd shard).
//
// The per-tick work — intersecting every alive candidate with every cluster
// of the tick, then domination-pruning the result — runs on interned dense
// bitsets: a candidate can only survive tick t as a subset of some cluster
// of t, so the union of the tick's clusters is the entire live universe.
// Each Step interns that universe, encodes clusters and candidates once,
// and replaces the sorted-slice merges with word-parallel AND/popcount and
// subset tests. The dense buffers come from a pool owned by the miner, so
// a long-lived stream reaches a steady state where set algebra allocates
// only the surviving candidates' materialized ObjSets.
type Miner struct {
	m    int
	keep func(model.Convoy) bool
	// alive candidates; invariant: no candidate dominates another.
	alive   []candidate
	results *model.ConvoySet
	// fresh queues convoys accepted into the result set since the last
	// Drain, in emission order. This lets streaming consumers poll for
	// novelty in O(new) instead of re-deriving it from the full result set
	// (which is O(R log R) per poll and quadratic over a feed's lifetime).
	fresh   []model.Convoy
	lastT   int32
	started bool

	// Per-tick dense machinery, reused across Steps.
	uniBuf model.ObjSet   // universe assembly buffer
	bufs   bitset.Pool    // dense-set buffers, reset every Step
	clBits []*bitset.Bits // encoded clusters of the current tick
}

type candidate struct {
	objs  model.ObjSet
	start int32
	// bits is objs interned under the universe of the tick that created the
	// candidate. It is only valid inside that Step (the buffer is recycled
	// at the next one); Step re-encodes alive candidates each tick.
	bits *bitset.Bits
}

// NewMiner creates a miner for (m,eps)-convoys of length ≥ k. Clustering
// happens outside (callers pass cluster sets to Step), so eps is implicit.
func NewMiner(m, k int) *Miner {
	return &Miner{
		m:       m,
		keep:    func(c model.Convoy) bool { return c.Len() >= k },
		results: model.NewConvoySet(),
	}
}

// NewMinerKeep creates a miner with a custom output filter, used by DCM
// partitions that must also keep short convoys touching partition borders.
func NewMinerKeep(m int, keep func(model.Convoy) bool) *Miner {
	return &Miner{m: m, keep: keep, results: model.NewConvoySet()}
}

// Step feeds the cluster set of timestamp t. Timestamps must be fed in
// strictly increasing order; feeding a timestamp ≤ the previous one is a
// contract violation and panics (the callers that accept untrusted input —
// StreamMiner and the convoyd ingest path — validate before calling).
//
// The order may have gaps: a gap kills all candidates (an object cannot be
// "together" at a missing tick), so every candidate alive before the gap is
// closed at the last pre-gap timestamp and mining restarts fresh at t.
func (mn *Miner) Step(t int32, clusters []model.ObjSet) {
	if mn.started && t <= mn.lastT {
		panic(fmt.Sprintf("cmc: non-monotonic Step: t=%d after t=%d", t, mn.lastT))
	}
	if mn.started && t != mn.lastT+1 {
		// Discontinuity: candidates cannot span the gap.
		mn.flushAll(mn.lastT)
		mn.alive = nil
	}
	mn.started = true

	// Intern the tick: a candidate can only continue as a subset of some
	// cluster of t, so the clusters' members are the whole live universe.
	mn.uniBuf = model.Universe(mn.uniBuf, clusters)
	in := model.Intern(mn.uniBuf)
	mn.bufs.Reset()
	mn.clBits = mn.clBits[:0]
	for _, c := range clusters {
		mn.clBits = append(mn.clBits, in.Encode(c, mn.bufs.Get(in.Len())))
	}

	var next []candidate
	// Extend alive candidates through the clusters of t. The quick-reject
	// runs word-parallel with early exit at m; only intersections that meet
	// the threshold materialize an ObjSet.
	vBits := mn.bufs.Get(in.Len())
	for _, v := range mn.alive {
		in.Encode(v.objs, vBits)
		survived := false
		for j := range clusters {
			if !vBits.AndCountAtLeast(mn.clBits[j], mn.m) {
				continue
			}
			ib := mn.bufs.Get(in.Len())
			n := ib.AndOf(vBits, mn.clBits[j])
			if n == len(v.objs) {
				survived = true
			}
			next = append(next, candidate{objs: in.Decode(ib), start: v.start, bits: ib})
		}
		if !survived {
			mn.emit(model.Convoy{Objs: v.objs, Start: v.start, End: mn.lastT})
		}
	}
	// Every current cluster starts a fresh candidate (it may be dominated).
	for j, c := range clusters {
		next = append(next, candidate{objs: c, start: t, bits: mn.clBits[j]})
	}
	mn.alive = dominate(next)
	mn.lastT = t
}

// dominate removes duplicates and dominated candidates. All candidates of
// one tick are interned under the same universe, so the subset tests are
// word-parallel.
func dominate(cands []candidate) []candidate {
	var out []candidate
	for _, c := range cands {
		dominated := false
		for j := 0; j < len(out); j++ {
			switch {
			case out[j].start <= c.start && c.bits.SubsetOf(out[j].bits):
				dominated = true
			case c.start <= out[j].start && out[j].bits.SubsetOf(c.bits):
				// c dominates an existing candidate: drop it.
				out[j] = out[len(out)-1]
				out = out[:len(out)-1]
				j--
			}
			if dominated {
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

func (mn *Miner) emit(c model.Convoy) {
	if mn.keep(c) && mn.results.Update(c) {
		mn.fresh = append(mn.fresh, c)
	}
}

func (mn *Miner) flushAll(endT int32) {
	for _, v := range mn.alive {
		mn.emit(model.Convoy{Objs: v.objs, Start: v.start, End: endT})
	}
}

// Finish flushes candidates still alive at the final timestamp and returns
// all mined maximal convoys in canonical order.
func (mn *Miner) Finish() []model.Convoy {
	mn.flushAll(mn.lastT)
	mn.alive = nil
	return mn.results.Sorted()
}

// Results returns the convoys closed so far without flushing alive
// candidates — the streaming API's peek.
func (mn *Miner) Results() []model.Convoy { return mn.results.Sorted() }

// Drain returns the convoys accepted into the result set since the last
// Drain, in emission order, and clears the queue. A drained convoy may
// later be superseded by a longer/larger one (which will itself be drained
// when it closes); Drain never retracts. Cost is O(drained), independent of
// the accumulated result-set size — the property the convoyd ingest hot
// path relies on.
func (mn *Miner) Drain() []model.Convoy {
	out := mn.fresh
	mn.fresh = nil
	return out
}

// Last returns the most recently stepped timestamp; ok is false before the
// first Step (and after a Reset).
func (mn *Miner) Last() (t int32, ok bool) { return mn.lastT, mn.started }

// Reset returns the miner to its initial state: no alive candidates, no
// results, no timestamp history. The parameters are kept, so a reset miner
// can be reused for a fresh stream instead of allocating a new one.
func (mn *Miner) Reset() {
	mn.alive = nil
	mn.results = model.NewConvoySet()
	mn.fresh = nil
	mn.lastT = 0
	mn.started = false
}

// Mine runs PCCD over every snapshot of the store: the paper's sequential
// baseline access pattern (cluster all the data at every timestamp).
func Mine(store storage.Store, m, k int, eps float64) ([]model.Convoy, error) {
	ts, te := store.TimeRange()
	mn := NewMiner(m, k)
	for t := ts; t <= te; t++ {
		snap, err := store.Snapshot(t)
		if err != nil {
			return nil, fmt.Errorf("cmc: snapshot %d: %w", t, err)
		}
		mn.Step(t, dbscan.Cluster(snap, eps, m))
	}
	return mn.Finish(), nil
}

// MineDataset runs PCCD over an in-memory dataset restricted to an interval.
// Used by validation, which re-mines restricted datasets.
func MineDataset(ds *model.Dataset, iv model.Interval, m, k int, eps float64) []model.Convoy {
	ts, te := ds.TimeRange()
	if iv.Start > ts {
		ts = iv.Start
	}
	if iv.End < te {
		te = iv.End
	}
	mn := NewMiner(m, k)
	for t := ts; t <= te; t++ {
		mn.Step(t, dbscan.Cluster(ds.Snapshot(t), eps, m))
	}
	return mn.Finish()
}
