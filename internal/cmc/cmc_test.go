package cmc

import (
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

func mineDS(t *testing.T, ds *model.Dataset, m, k int) []model.Convoy {
	t.Helper()
	out, err := Mine(storage.NewMemStore(ds), m, k, minetest.Eps)
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	return out
}

func TestSingleStableConvoy(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2, 3}}},
	})
	got := mineDS(t, ds, 3, 5)
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9)}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTooShortConvoyDropped(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 3, Groups: [][]int32{{1, 2, 3}}},
	})
	if got := mineDS(t, ds, 3, 5); len(got) != 0 {
		t.Fatalf("short convoy should be dropped, got %v", got)
	}
}

func TestTooSmallGroupDropped(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2}}},
	})
	if got := mineDS(t, ds, 3, 5); len(got) != 0 {
		t.Fatalf("undersized group should be dropped, got %v", got)
	}
}

func TestShrinkingConvoyEmitsBoth(t *testing.T) {
	// abc together [0,9]; d joins them only [0,5].
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 5, Groups: [][]int32{{1, 2, 3, 4}}},
		{Start: 6, End: 9, Groups: [][]int32{{1, 2, 3}, {4}}},
	})
	got := mineDS(t, ds, 3, 3)
	want := []model.Convoy{
		model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9),
		model.NewConvoy(model.NewObjSet(1, 2, 3, 4), 0, 5),
	}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLateJoinerNotExtendedBackwards(t *testing.T) {
	// abc from 0; d joins at 4; convoy abcd must start at 4, not 0.
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 3, Groups: [][]int32{{1, 2, 3}, {4}}},
		{Start: 4, End: 9, Groups: [][]int32{{1, 2, 3, 4}}},
	})
	got := mineDS(t, ds, 3, 3)
	want := []model.Convoy{
		model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9),
		model.NewConvoy(model.NewObjSet(1, 2, 3, 4), 4, 9),
	}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestGapKillsConvoy(t *testing.T) {
	// Group together [0,4] and [6,10] but apart at 5.
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 4, Groups: [][]int32{{1, 2, 3}}},
		{Start: 5, End: 5, Groups: [][]int32{{1}, {2}, {3}}},
		{Start: 6, End: 10, Groups: [][]int32{{1, 2, 3}}},
	})
	got := mineDS(t, ds, 3, 5)
	want := []model.Convoy{
		model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 4),
		model.NewConvoy(model.NewObjSet(1, 2, 3), 6, 10),
	}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDisjointConvoysCoexist(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2, 3}, {10, 11, 12}}},
	})
	got := mineDS(t, ds, 3, 5)
	want := []model.Convoy{
		model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9),
		model.NewConvoy(model.NewObjSet(10, 11, 12), 0, 9),
	}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSplitConvoy(t *testing.T) {
	// abcdef together [0,4]; then split into abc / def [5,9].
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 4, Groups: [][]int32{{1, 2, 3, 4, 5, 6}}},
		{Start: 5, End: 9, Groups: [][]int32{{1, 2, 3}, {4, 5, 6}}},
	})
	got := mineDS(t, ds, 3, 3)
	want := []model.Convoy{
		model.NewConvoy(model.NewObjSet(1, 2, 3, 4, 5, 6), 0, 4),
		model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9),
		model.NewConvoy(model.NewObjSet(4, 5, 6), 0, 9),
	}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestOutputsAreConvoysAndMaximal(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ds := minetest.Random(seed, 12, 20)
		got := mineDS(t, ds, 3, 4)
		for _, c := range got {
			if !minetest.IsConvoy(ds, c, 3, minetest.Eps) {
				t.Fatalf("seed %d: output %v is not a convoy", seed, c)
			}
			if c.Len() < 4 {
				t.Fatalf("seed %d: output %v shorter than k", seed, c)
			}
		}
		if i, j := minetest.AssertMaximal(got); i >= 0 {
			t.Fatalf("seed %d: %v ⊑ %v", seed, got[i], got[j])
		}
	}
}

// Completeness against brute force: every (objs ⊆ cluster chain, interval)
// combination of length ≥ k must be covered by some output.
func TestCompletenessBruteForce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ds := minetest.Random(seed, 8, 12)
		m, k := 2, 3
		got := mineDS(t, ds, m, k)
		cover := model.NewConvoySet(got...)
		// Enumerate every interval and every pair of objects; if the pair is
		// co-clustered throughout, some output must cover it.
		objs := ds.Objects()
		ts, te := ds.TimeRange()
		for s := ts; s <= te; s++ {
			for e := s + int32(k) - 1; e <= te; e++ {
				for i := 0; i < len(objs); i++ {
					for j := i + 1; j < len(objs); j++ {
						pair := model.NewConvoy(model.NewObjSet(objs[i], objs[j]), s, e)
						if minetest.IsConvoy(ds, pair, m, minetest.Eps) && !cover.Covers(pair) {
							t.Fatalf("seed %d: pair convoy %v not covered by %v", seed, pair, got)
						}
					}
				}
			}
		}
	}
}

func TestMinerGapFlush(t *testing.T) {
	mn := NewMiner(2, 2)
	mn.Step(0, []model.ObjSet{model.NewObjSet(1, 2)})
	mn.Step(1, []model.ObjSet{model.NewObjSet(1, 2)})
	// Gap: t jumps to 5.
	mn.Step(5, []model.ObjSet{model.NewObjSet(1, 2)})
	mn.Step(6, []model.ObjSet{model.NewObjSet(1, 2)})
	got := mn.Finish()
	want := []model.Convoy{
		model.NewConvoy(model.NewObjSet(1, 2), 0, 1),
		model.NewConvoy(model.NewObjSet(1, 2), 5, 6),
	}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMinerKeepPredicate(t *testing.T) {
	// Keep everything, even length-1 convoys.
	mn := NewMinerKeep(2, func(model.Convoy) bool { return true })
	mn.Step(0, []model.ObjSet{model.NewObjSet(1, 2)})
	mn.Step(1, nil)
	got := mn.Finish()
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2), 0, 0)}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEmptyDataset(t *testing.T) {
	got := mineDS(t, model.NewDataset(nil), 3, 3)
	if len(got) != 0 {
		t.Fatalf("empty dataset should yield nothing, got %v", got)
	}
}

func TestMineDatasetRestrictedInterval(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2, 3}}},
	})
	got := MineDataset(ds, model.Interval{Start: 2, End: 6}, 3, 3, minetest.Eps)
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 2, 6)}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
