package model

// ConvoySet maintains a set of convoys closed under the maximality filter:
// inserting a convoy that is a sub-convoy of an existing member is a no-op,
// and inserting a convoy removes all existing members that are sub-convoys
// of it. This implements the update() function used throughout the paper's
// merge, extension and validation phases.
//
// The implementation is a simple slice; all the mining algorithms work with
// candidate sets that are small (convoys are rare), so the O(n) insert is
// not a bottleneck. A nil *ConvoySet is not usable; use new(ConvoySet).
type ConvoySet struct {
	items []Convoy
}

// NewConvoySet returns a set seeded with the given convoys (applying the
// maximality filter between them).
func NewConvoySet(cs ...Convoy) *ConvoySet {
	s := &ConvoySet{}
	for _, c := range cs {
		s.Update(c)
	}
	return s
}

// Update inserts v, preserving the maximality invariant. It reports whether
// v was actually added (false when v is a sub-convoy of an existing member).
func (s *ConvoySet) Update(v Convoy) bool {
	keep := s.items[:0]
	for _, w := range s.items {
		if v.SubConvoyOf(w) {
			// v adds nothing. The invariant guarantees no member is a
			// sub-convoy of another, so nothing can have been dropped
			// before this point (it would be a sub-convoy of w too) and
			// s.items is untouched.
			return false
		}
		if w.SubConvoyOf(v) {
			continue // superseded by v
		}
		keep = append(keep, w)
	}
	s.items = append(keep, v)
	return true
}

// UpdateAll inserts every convoy in vs.
func (s *ConvoySet) UpdateAll(vs []Convoy) {
	for _, v := range vs {
		s.Update(v)
	}
}

// Contains reports whether the set contains a convoy equal to v.
func (s *ConvoySet) Contains(v Convoy) bool {
	for _, w := range s.items {
		if w.Equal(v) {
			return true
		}
	}
	return false
}

// Covers reports whether v is a sub-convoy of some member of the set.
func (s *ConvoySet) Covers(v Convoy) bool {
	for _, w := range s.items {
		if v.SubConvoyOf(w) {
			return true
		}
	}
	return false
}

// Len returns the number of convoys in the set.
func (s *ConvoySet) Len() int { return len(s.items) }

// Slice returns the convoys in the set. The slice is owned by the set;
// callers must not modify it.
func (s *ConvoySet) Slice() []Convoy { return s.items }

// Sorted returns a canonical-ordered copy of the set's convoys.
func (s *ConvoySet) Sorted() []Convoy {
	out := make([]Convoy, len(s.items))
	copy(out, s.items)
	SortConvoys(out)
	return out
}

// MaximalConvoys applies the maximality filter to an arbitrary convoy slice
// and returns the surviving convoys in canonical order.
func MaximalConvoys(cs []Convoy) []Convoy {
	s := NewConvoySet(cs...)
	return s.Sorted()
}
