package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	ds := NewDataset([]Point{
		{OID: 1, T: 0, X: 1.5, Y: -2.25},
		{OID: 2, T: 0, X: 0, Y: 0},
		{OID: 1, T: 1, X: 3, Y: 4},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	pts, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := NewDataset(pts)
	if got.NumPoints() != ds.NumPoints() {
		t.Fatalf("round trip points = %d, want %d", got.NumPoints(), ds.NumPoints())
	}
	gp, wp := got.Points(), ds.Points()
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("point %d = %v, want %v", i, gp[i], wp[i])
		}
	}
}

func TestCSVHeaderOptional(t *testing.T) {
	withHeader := "oid,x,y,t\n1,2.0,3.0,4\n"
	noHeader := "1,2.0,3.0,4\n"
	for _, in := range []string{withHeader, noHeader} {
		pts, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if len(pts) != 1 || pts[0] != (Point{OID: 1, X: 2, Y: 3, T: 4}) {
			t.Fatalf("%q: pts = %v", in, pts)
		}
	}
}

func TestCSVExtraFieldsIgnored(t *testing.T) {
	pts, err := ReadCSV(strings.NewReader("7,1,2,3,extra,fields\n"))
	if err != nil || len(pts) != 1 || pts[0].OID != 7 {
		t.Fatalf("pts = %v, err = %v", pts, err)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"1,2,3\n",                   // too few fields
		"1,x,3,4\n",                 // bad x
		"1,2,y,4\n",                 // bad y
		"1,2,3,t\n",                 // bad t
		"1,2,3,4\nbad,row\n",        // short later row
		"hdr,a,b,c\nnothdr,1,2,3\n", // non-numeric oid after header
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("%q should fail", in)
		}
	}
	if pts, err := ReadCSV(strings.NewReader("")); err != nil || len(pts) != 0 {
		t.Fatalf("empty input: %v %v", pts, err)
	}
}
