package model

import (
	"slices"
	"sort"

	"repro/internal/bitset"
)

// Interner maps the object identifiers live in some scope — a partition, a
// hop-window, one tick of a stream — to dense local indices [0, Len()), so
// set algebra on those objects can run word-parallel on bitset.Bits instead
// of merging sorted ObjSet slices.
//
// The universe is sorted, and indices are assigned in id order, so index
// order equals id order: decoding a bitset by ascending bit index yields a
// valid (strictly increasing) ObjSet with a single append pass and no sort.
//
// An Interner is a small value (one slice header); create one per scope and
// let it die with the scope. ObjSet remains the representation at every
// public API and persistence boundary — interned bitsets never escape the
// mining internals.
type Interner struct {
	ids ObjSet // sorted universe; dense index i ↔ ids[i]
}

// Intern builds an interner over the given universe. The universe must be a
// valid ObjSet (strictly increasing); it is retained, not copied, so the
// caller must not mutate it while the interner is in use.
func Intern(universe ObjSet) Interner { return Interner{ids: universe} }

// Universe collects the union of all ids occurring in the given cluster
// sets into dst (reset to length 0 first), sorts and deduplicates it, and
// returns it. Passing the previous tick's buffer amortizes the allocation
// across a stream.
func Universe(dst ObjSet, sets ...[]ObjSet) ObjSet {
	dst = dst[:0]
	for _, ss := range sets {
		for _, s := range ss {
			dst = append(dst, s...)
		}
	}
	if len(dst) == 0 {
		return dst
	}
	slices.Sort(dst)
	out := dst[:1]
	for _, id := range dst[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// Len returns the universe size (the bit capacity dense sets need).
func (in Interner) Len() int { return len(in.ids) }

// OID returns the object id at dense index i.
func (in Interner) OID(i int) int32 { return in.ids[i] }

// Index returns the dense index of id, or ok=false when id is not in the
// universe.
func (in Interner) Index(id int32) (int, bool) {
	i := sort.Search(len(in.ids), func(i int) bool { return in.ids[i] >= id })
	if i < len(in.ids) && in.ids[i] == id {
		return i, true
	}
	return 0, false
}

// Encode sets dst to the dense representation of s ∩ universe and returns
// it (ids outside the universe are dropped, which is exactly the projection
// the per-tick miners need). dst is resized to the universe; pass nil to
// allocate. Both s and the universe are sorted, so this is a single merge
// walk, not per-id lookups.
func (in Interner) Encode(s ObjSet, dst *bitset.Bits) *bitset.Bits {
	if dst == nil {
		dst = bitset.New(len(in.ids))
	} else {
		dst.Resize(len(in.ids))
	}
	i, j := 0, 0
	for i < len(s) && j < len(in.ids) {
		switch {
		case s[i] == in.ids[j]:
			dst.Set(j)
			i++
			j++
		case s[i] < in.ids[j]:
			i++
		default:
			// Gallop: s is usually much smaller than the universe, so jump j
			// to the first universe id ≥ s[i] instead of stepping.
			lo := j + 1
			j += sort.Search(len(in.ids)-lo, func(k int) bool { return in.ids[lo+k] >= s[i] }) + 1
		}
	}
	return dst
}

// Decode materializes a dense set back into a sorted ObjSet. Cost is
// proportional to the popcount (one append per set bit), and the result is
// freshly allocated.
func (in Interner) Decode(b *bitset.Bits) ObjSet {
	return in.AppendDecode(nil, b)
}

// AppendDecode appends the ids of the set bits of b to dst in ascending
// order and returns the extended slice.
func (in Interner) AppendDecode(dst ObjSet, b *bitset.Bits) ObjSet {
	b.ForEach(func(i int) { dst = append(dst, in.ids[i]) })
	return dst
}
