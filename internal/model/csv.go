package model

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV import/export for the paper's physical schema <oid, x, y, t> (§3.2).
// The column order follows the paper; an optional header row "oid,x,y,t" is
// skipped on read. Real datasets (Trucks, T-Drive) ship as delimited text,
// so this is the ingestion path a downstream user starts from.

// ReadCSV parses points from r. Lines must have at least 4 fields
// (oid, x, y, t); extra fields are ignored. A leading header row is
// detected by a non-numeric first field and skipped.
func ReadCSV(r io.Reader) ([]Point, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1
	var pts []Point
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return pts, nil
		}
		if err != nil {
			return nil, fmt.Errorf("model: csv line %d: %w", line+1, err)
		}
		line++
		if len(rec) < 4 {
			return nil, fmt.Errorf("model: csv line %d: want ≥4 fields, got %d", line, len(rec))
		}
		oid, err := strconv.ParseInt(rec[0], 10, 32)
		if err != nil {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("model: csv line %d: oid: %w", line, err)
		}
		x, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("model: csv line %d: x: %w", line, err)
		}
		y, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("model: csv line %d: y: %w", line, err)
		}
		t, err := strconv.ParseInt(rec[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("model: csv line %d: t: %w", line, err)
		}
		pts = append(pts, Point{OID: int32(oid), X: x, Y: y, T: int32(t)})
	}
}

// WriteCSV writes the dataset's points to w in (oid, x, y, t) order with a
// header row.
func WriteCSV(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("oid,x,y,t\n"); err != nil {
		return err
	}
	for _, p := range ds.Points() {
		if _, err := fmt.Fprintf(bw, "%d,%g,%g,%d\n", p.OID, p.X, p.Y, p.T); err != nil {
			return err
		}
	}
	return bw.Flush()
}
