package model

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
)

// Dataset is an immutable in-memory trajectory dataset organised by
// timestamp. It is the canonical representation produced by the data
// generators and the backing store for the in-memory storage adapter.
//
// Snapshots are stored as ObjPos slices sorted by OID so restricted lookups
// can binary-search.
type Dataset struct {
	ts, te int32
	// snaps[t-ts] holds the objects present at tick t, sorted by OID.
	snaps [][]ObjPos
	n     int // total number of points
}

// NewDataset builds a dataset from raw points. The time range is the min/max
// timestamp observed. Duplicate (oid,t) pairs keep the last occurrence.
func NewDataset(points []Point) *Dataset {
	if len(points) == 0 {
		return &Dataset{ts: 0, te: -1}
	}
	ts, te := points[0].T, points[0].T
	for _, p := range points {
		if p.T < ts {
			ts = p.T
		}
		if p.T > te {
			te = p.T
		}
	}
	d := &Dataset{ts: ts, te: te, snaps: make([][]ObjPos, int(te-ts)+1)}
	for _, p := range points {
		i := int(p.T - ts)
		d.snaps[i] = append(d.snaps[i], ObjPos{OID: p.OID, X: p.X, Y: p.Y})
	}
	for i, snap := range d.snaps {
		// Stable sort so that "last occurrence" below really means last in
		// input order among equal OIDs (and no reflect swapper allocation).
		slices.SortStableFunc(snap, func(a, b ObjPos) int { return cmp.Compare(a.OID, b.OID) })
		// Deduplicate by OID, keeping the last occurrence.
		out := snap[:0]
		for j := 0; j < len(snap); j++ {
			if j+1 < len(snap) && snap[j+1].OID == snap[j].OID {
				continue
			}
			out = append(out, snap[j])
		}
		d.snaps[i] = out
		d.n += len(out)
	}
	return d
}

// TimeRange returns the inclusive timestamp range [Ts, Te] of the dataset.
// For an empty dataset Te < Ts.
func (d *Dataset) TimeRange() (ts, te int32) { return d.ts, d.te }

// NumPoints returns the total number of stored points.
func (d *Dataset) NumPoints() int { return d.n }

// NumTimestamps returns the number of ticks in the dataset's range.
func (d *Dataset) NumTimestamps() int {
	if d.te < d.ts {
		return 0
	}
	return int(d.te-d.ts) + 1
}

// Snapshot returns all objects present at tick t, sorted by OID. The
// returned slice is shared with the dataset and must not be modified.
func (d *Dataset) Snapshot(t int32) []ObjPos {
	if t < d.ts || t > d.te {
		return nil
	}
	return d.snaps[int(t-d.ts)]
}

// Fetch returns the positions at tick t of the requested objects, in OID
// order, skipping objects absent at t.
func (d *Dataset) Fetch(t int32, oids ObjSet) []ObjPos {
	snap := d.Snapshot(t)
	if len(snap) == 0 || len(oids) == 0 {
		return nil
	}
	out := make([]ObjPos, 0, len(oids))
	// Galloping merge: both sides are sorted by OID.
	i := 0
	for _, oid := range oids {
		i += sort.Search(len(snap)-i, func(k int) bool { return snap[i+k].OID >= oid })
		if i < len(snap) && snap[i].OID == oid {
			out = append(out, snap[i])
			i++
		}
		if i >= len(snap) {
			break
		}
	}
	return out
}

// Objects returns the set of all object ids appearing anywhere in the
// dataset.
func (d *Dataset) Objects() ObjSet {
	seen := make(map[int32]struct{})
	for _, snap := range d.snaps {
		for _, p := range snap {
			seen[p.OID] = struct{}{}
		}
	}
	ids := make([]int32, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	return NewObjSet(ids...)
}

// Restrict returns a new dataset containing only the given objects within
// the given interval, mirroring the paper's DB[T]|O notation. The interval
// is clamped to the dataset's range.
func (d *Dataset) Restrict(objs ObjSet, iv Interval) *Dataset {
	if iv.Start < d.ts {
		iv.Start = d.ts
	}
	if iv.End > d.te {
		iv.End = d.te
	}
	out := &Dataset{ts: iv.Start, te: iv.End}
	if iv.End < iv.Start {
		return out
	}
	out.snaps = make([][]ObjPos, iv.Len())
	for t := iv.Start; t <= iv.End; t++ {
		rows := d.Fetch(t, objs)
		out.snaps[int(t-iv.Start)] = rows
		out.n += len(rows)
	}
	return out
}

// Points flattens the dataset back to a point slice ordered by (t, oid).
func (d *Dataset) Points() []Point {
	out := make([]Point, 0, d.n)
	for i, snap := range d.snaps {
		t := d.ts + int32(i)
		for _, p := range snap {
			out = append(out, Point{OID: p.OID, T: t, X: p.X, Y: p.Y})
		}
	}
	return out
}

func (d *Dataset) String() string {
	return fmt.Sprintf("Dataset{t=[%d,%d] points=%d}", d.ts, d.te, d.n)
}
