package model

import (
	"bytes"
	"testing"

	"repro/internal/bitset"
)

// fuzzSet decodes raw fuzz bytes into an ObjSet: consecutive byte pairs
// become ids up to 2¹⁶, so universes routinely span multiple 64-bit words
// and ids are sparse (the interner must never assume contiguity).
func fuzzSet(raw []byte) ObjSet {
	var ids []int32
	for i := 0; i+1 < len(raw); i += 2 {
		ids = append(ids, int32(raw[i])<<8|int32(raw[i+1]))
	}
	return NewObjSet(ids...)
}

// FuzzDenseSetVsObjSet cross-checks every operation of the interned dense
// set engine (bitset.Bits over a model.Interner universe) against the
// sorted-slice ObjSet reference implementation. The mining hot path trusts
// the two to be interchangeable; any divergence here would mean silently
// wrong convoys.
func FuzzDenseSetVsObjSet(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 3}, []byte{0, 2, 0, 3, 0, 4})
	f.Add([]byte{}, []byte{0, 7})
	f.Add([]byte{1, 255, 1, 254}, []byte{1, 255, 1, 254})
	f.Add([]byte{0, 0, 255, 255}, []byte{128, 0})
	f.Add([]byte{0, 1, 0, 2}, []byte{0, 64, 0, 65, 0, 66, 0, 192})
	f.Fuzz(func(t *testing.T, araw, braw []byte) {
		a, b := fuzzSet(araw), fuzzSet(braw)
		in := Intern(Universe(nil, []ObjSet{a, b}))
		da, db := in.Encode(a, nil), in.Encode(b, nil)

		// Round trip: both inputs are subsets of the universe.
		if !in.Decode(da).Equal(a) || !in.Decode(db).Equal(b) {
			t.Fatalf("round trip broken: %v / %v", a, b)
		}

		// Intersection: fused AND+count, materialization, threshold tests.
		scratch := bitset.New(in.Len())
		wantInter := a.Intersect(b)
		if got := scratch.AndOf(da, db); got != a.IntersectSize(b) || got != len(wantInter) {
			t.Fatalf("AndOf count = %d, want %d", got, len(wantInter))
		}
		if got := in.Decode(scratch); !got.Equal(wantInter) {
			t.Fatalf("dense intersect = %v, want %v", got, wantInter)
		}
		if da.AndCount(db) != len(wantInter) {
			t.Fatalf("AndCount = %d, want %d", da.AndCount(db), len(wantInter))
		}
		for m := 0; m <= len(wantInter)+2; m++ {
			if da.AndCountAtLeast(db, m) != (len(wantInter) >= m) {
				t.Fatalf("AndCountAtLeast(%d) wrong for |∩| = %d", m, len(wantInter))
			}
		}

		// Union.
		wantUnion := a.Union(b)
		if got := scratch.OrOf(da, db); got != len(wantUnion) {
			t.Fatalf("OrOf count = %d, want %d", got, len(wantUnion))
		}
		if got := in.Decode(scratch); !got.Equal(wantUnion) {
			t.Fatalf("dense union = %v, want %v", got, wantUnion)
		}

		// Subset, both directions.
		if da.SubsetOf(db) != a.SubsetOf(b) || db.SubsetOf(da) != b.SubsetOf(a) {
			t.Fatalf("dense subset disagrees: %v ⊆ %v", a, b)
		}

		// Size with early exit.
		for m := 0; m <= len(a)+2; m++ {
			if da.CountAtLeast(m) != (len(a) >= m) {
				t.Fatalf("CountAtLeast(%d) wrong for |a| = %d", m, len(a))
			}
		}

		// Key: equal sets ⇔ equal keys (under one universe).
		sameKey := bytes.Equal(da.AppendKey(nil), db.AppendKey(nil))
		if sameKey != a.Equal(b) {
			t.Fatalf("AppendKey equality (%v) disagrees with set equality (%v)", sameKey, a.Equal(b))
		}

		// Encoding b under a's universe must project away everything not in
		// a — i.e. produce exactly a ∩ b.
		inA := Intern(a)
		if got := inA.Decode(inA.Encode(b, nil)); !got.Equal(wantInter) {
			t.Fatalf("projection encode = %v, want %v", got, wantInter)
		}
	})
}
