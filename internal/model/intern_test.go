package model

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func TestInternerRoundTrip(t *testing.T) {
	universe := NewObjSet(3, 7, 9, 40, 41, 1000)
	in := Intern(universe)
	if in.Len() != 6 {
		t.Fatalf("Len = %d", in.Len())
	}
	for i, id := range universe {
		if in.OID(i) != id {
			t.Fatalf("OID(%d) = %d", i, in.OID(i))
		}
		if idx, ok := in.Index(id); !ok || idx != i {
			t.Fatalf("Index(%d) = %d,%v", id, idx, ok)
		}
	}
	if _, ok := in.Index(8); ok {
		t.Fatalf("Index(8) should miss")
	}

	s := NewObjSet(7, 40, 1000)
	b := in.Encode(s, nil)
	if got := in.Decode(b); !got.Equal(s) {
		t.Fatalf("round trip: got %v want %v", got, s)
	}
	if !b.Get(1) || b.Get(0) {
		t.Fatalf("encode set the wrong bits")
	}
}

// Encoding drops ids outside the universe — the projection the per-tick
// miners rely on (a candidate's members that left the window simply vanish
// from the dense view).
func TestInternerEncodeProjects(t *testing.T) {
	in := Intern(NewObjSet(5, 6, 7))
	b := in.Encode(NewObjSet(1, 6, 9), nil)
	if want := NewObjSet(6); !in.Decode(b).Equal(want) {
		t.Fatalf("projection: got %v want %v", in.Decode(b), want)
	}
	// Empty universe: everything projects away.
	empty := Intern(nil)
	if eb := empty.Encode(NewObjSet(1, 2), nil); eb.Any() || eb.Len() != 0 {
		t.Fatalf("empty universe should produce the empty set")
	}
}

func TestInternerEncodeReusesBuffer(t *testing.T) {
	in := Intern(NewObjSet(1, 2, 3, 4, 5))
	buf := bitset.New(999)
	b := in.Encode(NewObjSet(2, 4), buf)
	if b != buf {
		t.Fatalf("Encode should reuse the passed buffer")
	}
	if b.Len() != 5 || b.Count() != 2 {
		t.Fatalf("len=%d count=%d", b.Len(), b.Count())
	}
	// A smaller follow-up encode must not see stale bits.
	in2 := Intern(NewObjSet(10))
	if b2 := in2.Encode(nil, buf); b2.Any() {
		t.Fatalf("stale bits survived Resize")
	}
}

func TestUniverse(t *testing.T) {
	u := Universe(nil,
		[]ObjSet{NewObjSet(5, 1), NewObjSet(9)},
		[]ObjSet{NewObjSet(1, 7)},
	)
	if want := NewObjSet(1, 5, 7, 9); !u.Equal(want) {
		t.Fatalf("Universe = %v, want %v", u, want)
	}
	// Buffer reuse: the returned slice may alias dst's backing array.
	u2 := Universe(u, []ObjSet{NewObjSet(2, 3)})
	if want := NewObjSet(2, 3); !u2.Equal(want) {
		t.Fatalf("Universe reuse = %v, want %v", u2, want)
	}
	if len(Universe(nil)) != 0 {
		t.Fatalf("empty Universe should be empty")
	}
}

// Dense encode/decode must agree with the sorted-slice reference algebra on
// random sets over random universes.
func TestDenseAlgebraMatchesObjSetQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%60 + 1
		pick := func(p float64) ObjSet {
			var out []int32
			for id := 0; id < n; id++ {
				if rng.Float64() < p {
					out = append(out, int32(id*3)) // sparse ids, not 0..n
				}
			}
			return NewObjSet(out...)
		}
		a, b := pick(0.4), pick(0.4)
		in := Intern(Universe(nil, []ObjSet{a, b}))
		da, db := in.Encode(a, nil), in.Encode(b, nil)
		scratch := bitset.New(in.Len())

		if got := scratch.AndOf(da, db); got != a.IntersectSize(b) {
			return false
		}
		if !in.Decode(scratch).Equal(a.Intersect(b)) {
			return false
		}
		scratch.OrOf(da, db)
		if !in.Decode(scratch).Equal(a.Union(b)) {
			return false
		}
		return da.SubsetOf(db) == a.SubsetOf(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
