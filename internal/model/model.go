// Package model defines the shared data model for convoy mining: raw
// trajectory points, per-timestamp object positions, object sets, time
// intervals and convoys, together with the (sub-)convoy ordering that the
// mining algorithms rely on.
//
// Conventions used across the repository:
//
//   - Timestamps are dense int32 ticks. A dataset covers the inclusive range
//     [Ts, Te]; an object may be absent at some ticks.
//   - Object identifiers are int32. An ObjSet is a strictly increasing slice
//     of identifiers, which makes intersection, union and subset tests cheap
//     and allocation-friendly.
//   - A Convoy is an object set plus an inclusive timestamp interval.
package model

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
)

// Point is one trajectory sample: object OID was at (X, Y) at tick T.
// This mirrors the paper's physical schema <oid, x, y, t>.
type Point struct {
	OID int32
	T   int32
	X   float64
	Y   float64
}

// ObjPos is an object's position within one snapshot (the timestamp is
// implied by the snapshot it belongs to).
type ObjPos struct {
	OID int32
	X   float64
	Y   float64
}

// Dist returns the Euclidean distance between two positions.
func Dist(a, b ObjPos) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between two positions.
// Mining code compares against eps² to avoid square roots in hot loops.
func DistSq(a, b ObjPos) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// ObjSet is a sorted, duplicate-free slice of object identifiers.
// The zero value is the empty set.
type ObjSet []int32

// NewObjSet builds an ObjSet from arbitrary ids (sorts and deduplicates).
func NewObjSet(ids ...int32) ObjSet {
	if len(ids) == 0 {
		return nil
	}
	s := make(ObjSet, len(ids))
	copy(s, ids)
	slices.Sort(s)
	out := s[:1]
	for _, id := range s[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// Valid reports whether s is strictly increasing (the ObjSet invariant).
func (s ObjSet) Valid() bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

// Contains reports whether id is a member of s.
func (s ObjSet) Contains(id int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// Equal reports whether s and t contain exactly the same ids.
func (s ObjSet) Equal(t ObjSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is also a member of t.
func (s ObjSet) SubsetOf(t ObjSet) bool {
	if len(s) > len(t) {
		return false
	}
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] > t[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s)
}

// Intersect returns the set of ids present in both s and t.
func (s ObjSet) Intersect(t ObjSet) ObjSet {
	var out ObjSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// IntersectSize returns |s ∩ t| without allocating.
func (s ObjSet) IntersectSize(t ObjSet) int {
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			n++
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Union returns the set of ids present in either s or t.
func (s ObjSet) Union(t ObjSet) ObjSet {
	out := make(ObjSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		default:
			out = append(out, t[j])
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Minus returns the ids of s that are not in t.
func (s ObjSet) Minus(t ObjSet) ObjSet {
	var out ObjSet
	i, j := 0, 0
	for i < len(s) {
		switch {
		case j >= len(t) || s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] == t[j]:
			i++
			j++
		default:
			j++
		}
	}
	return out
}

// Clone returns an independent copy of s.
func (s ObjSet) Clone() ObjSet {
	if s == nil {
		return nil
	}
	out := make(ObjSet, len(s))
	copy(out, s)
	return out
}

// Key returns a compact string key identifying the set, suitable for use as
// a map key during memoized validation.
func (s ObjSet) Key() string {
	var b strings.Builder
	b.Grow(len(s) * 4)
	for i, id := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}

func (s ObjSet) String() string { return "{" + s.Key() + "}" }

// Interval is an inclusive timestamp interval [Start, End].
type Interval struct {
	Start int32
	End   int32
}

// Len returns the number of timestamps covered by the interval.
func (iv Interval) Len() int {
	if iv.End < iv.Start {
		return 0
	}
	return int(iv.End-iv.Start) + 1
}

// Contains reports whether t lies within the interval.
func (iv Interval) Contains(t int32) bool { return iv.Start <= t && t <= iv.End }

// ContainsInterval reports whether o lies entirely within iv.
func (iv Interval) ContainsInterval(o Interval) bool {
	return iv.Start <= o.Start && o.End <= iv.End
}

// Overlaps reports whether the two intervals share at least one timestamp.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start <= o.End && o.Start <= iv.End
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Start, iv.End) }

// Convoy is a candidate or final convoy: the objects Objs moved together for
// every timestamp in [Start, End]. Whether "together" means partially or
// fully connected depends on the producing algorithm.
type Convoy struct {
	Objs  ObjSet
	Start int32
	End   int32
}

// NewConvoy builds a convoy from a set of ids and an inclusive interval.
func NewConvoy(objs ObjSet, start, end int32) Convoy {
	return Convoy{Objs: objs, Start: start, End: end}
}

// Interval returns the convoy's lifespan.
func (c Convoy) Interval() Interval { return Interval{Start: c.Start, End: c.End} }

// Len returns the convoy's lifetime in timestamps.
func (c Convoy) Len() int { return c.Interval().Len() }

// Size returns the number of objects in the convoy.
func (c Convoy) Size() int { return len(c.Objs) }

// Equal reports whether the two convoys have identical objects and lifespan.
func (c Convoy) Equal(d Convoy) bool {
	return c.Start == d.Start && c.End == d.End && c.Objs.Equal(d.Objs)
}

// SubConvoyOf reports whether c is a sub-convoy of d (Definition 5):
// O(c) ⊆ O(d) and T(c) ⊆ T(d).
func (c Convoy) SubConvoyOf(d Convoy) bool {
	return d.Start <= c.Start && c.End <= d.End && c.Objs.SubsetOf(d.Objs)
}

// StrictSubConvoyOf reports whether c is a sub-convoy of d and c ≠ d.
func (c Convoy) StrictSubConvoyOf(d Convoy) bool {
	return c.SubConvoyOf(d) && !c.Equal(d)
}

// Key returns a canonical string identity for the convoy, suitable for maps.
func (c Convoy) Key() string {
	return fmt.Sprintf("%d:%d:%s", c.Start, c.End, c.Objs.Key())
}

func (c Convoy) String() string {
	return fmt.Sprintf("(%s,%s)", c.Objs, c.Interval())
}

// SortConvoys orders convoys canonically (by start, end, size, then ids) so
// result sets can be compared in tests. The comparison-based generic sort
// avoids the reflect swapper sort.Slice would allocate — this runs on every
// ConvoySet.Sorted call in the extension phases, not just in tests.
func SortConvoys(cs []Convoy) {
	slices.SortFunc(cs, func(a, b Convoy) int {
		if c := cmp.Compare(a.Start, b.Start); c != 0 {
			return c
		}
		if c := cmp.Compare(a.End, b.End); c != 0 {
			return c
		}
		if c := cmp.Compare(len(a.Objs), len(b.Objs)); c != 0 {
			return c
		}
		for k := range a.Objs {
			if c := cmp.Compare(a.Objs[k], b.Objs[k]); c != 0 {
				return c
			}
		}
		return 0
	})
}

// ConvoysEqual reports whether two convoy slices contain the same convoys,
// ignoring order. Both slices are sorted in place.
func ConvoysEqual(a, b []Convoy) bool {
	if len(a) != len(b) {
		return false
	}
	SortConvoys(a)
	SortConvoys(b)
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
