package model

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewObjSetSortsAndDedupes(t *testing.T) {
	s := NewObjSet(5, 1, 3, 1, 5, 2)
	want := ObjSet{1, 2, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("NewObjSet = %v, want %v", s, want)
	}
	if !s.Valid() {
		t.Fatalf("NewObjSet produced invalid set %v", s)
	}
	if NewObjSet() != nil {
		t.Fatalf("empty NewObjSet should be nil")
	}
}

func TestObjSetContains(t *testing.T) {
	s := NewObjSet(2, 4, 6, 8)
	for _, id := range []int32{2, 4, 6, 8} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false, want true", id)
		}
	}
	for _, id := range []int32{1, 3, 5, 7, 9, -1} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true, want false", id)
		}
	}
}

func TestObjSetSubsetOf(t *testing.T) {
	cases := []struct {
		s, t ObjSet
		want bool
	}{
		{nil, nil, true},
		{nil, NewObjSet(1), true},
		{NewObjSet(1), nil, false},
		{NewObjSet(1, 3), NewObjSet(1, 2, 3), true},
		{NewObjSet(1, 4), NewObjSet(1, 2, 3), false},
		{NewObjSet(1, 2, 3), NewObjSet(1, 2, 3), true},
		{NewObjSet(0), NewObjSet(1, 2), false},
	}
	for _, c := range cases {
		if got := c.s.SubsetOf(c.t); got != c.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestObjSetIntersectUnionMinus(t *testing.T) {
	a := NewObjSet(1, 2, 3, 5, 8)
	b := NewObjSet(2, 3, 4, 8, 9)
	if got := a.Intersect(b); !got.Equal(NewObjSet(2, 3, 8)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.IntersectSize(b); got != 3 {
		t.Errorf("IntersectSize = %d, want 3", got)
	}
	if got := a.Union(b); !got.Equal(NewObjSet(1, 2, 3, 4, 5, 8, 9)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewObjSet(1, 5)) {
		t.Errorf("Minus = %v", got)
	}
	if got := a.Intersect(nil); got != nil {
		t.Errorf("Intersect(nil) = %v, want nil", got)
	}
}

// Property: set operations agree with a map-based model.
func TestObjSetOpsQuick(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var ai, bi []int32
		for _, x := range xs {
			ai = append(ai, int32(x))
		}
		for _, y := range ys {
			bi = append(bi, int32(y))
		}
		a, b := NewObjSet(ai...), NewObjSet(bi...)
		am := map[int32]bool{}
		bm := map[int32]bool{}
		for _, x := range a {
			am[x] = true
		}
		for _, y := range b {
			bm[y] = true
		}
		inter := a.Intersect(b)
		if !inter.Valid() {
			return false
		}
		for _, x := range inter {
			if !am[x] || !bm[x] {
				return false
			}
		}
		cnt := 0
		for x := range am {
			if bm[x] {
				cnt++
			}
		}
		if cnt != len(inter) || cnt != a.IntersectSize(b) {
			return false
		}
		u := a.Union(b)
		if !u.Valid() || len(u) != len(am)+len(bm)-cnt {
			return false
		}
		m := a.Minus(b)
		if !m.Valid() || len(m) != len(am)-cnt {
			return false
		}
		return inter.SubsetOf(a) && inter.SubsetOf(b) && a.SubsetOf(u) && b.SubsetOf(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalOps(t *testing.T) {
	iv := Interval{Start: 3, End: 7}
	if iv.Len() != 5 {
		t.Errorf("Len = %d, want 5", iv.Len())
	}
	if (Interval{Start: 4, End: 3}).Len() != 0 {
		t.Errorf("inverted interval should have Len 0")
	}
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(8) || iv.Contains(2) {
		t.Errorf("Contains boundary behaviour wrong")
	}
	if !iv.Overlaps(Interval{Start: 7, End: 10}) || iv.Overlaps(Interval{Start: 8, End: 10}) {
		t.Errorf("Overlaps boundary behaviour wrong")
	}
	if !iv.ContainsInterval(Interval{Start: 3, End: 7}) || iv.ContainsInterval(Interval{Start: 2, End: 7}) {
		t.Errorf("ContainsInterval wrong")
	}
}

func TestConvoyOrdering(t *testing.T) {
	a := NewConvoy(NewObjSet(1, 2, 3), 0, 9)
	b := NewConvoy(NewObjSet(1, 2), 2, 8)
	c := NewConvoy(NewObjSet(1, 4), 2, 8)
	if !b.SubConvoyOf(a) || !b.StrictSubConvoyOf(a) {
		t.Errorf("b should be strict sub-convoy of a")
	}
	if a.SubConvoyOf(b) {
		t.Errorf("a should not be sub-convoy of b")
	}
	if c.SubConvoyOf(a) {
		t.Errorf("c has object 4 not in a")
	}
	if !a.SubConvoyOf(a) || a.StrictSubConvoyOf(a) {
		t.Errorf("reflexivity wrong")
	}
	if a.Len() != 10 || a.Size() != 3 {
		t.Errorf("Len/Size wrong: %d %d", a.Len(), a.Size())
	}
}

func TestSortConvoysCanonical(t *testing.T) {
	cs := []Convoy{
		NewConvoy(NewObjSet(2, 3), 1, 5),
		NewConvoy(NewObjSet(1, 2), 0, 5),
		NewConvoy(NewObjSet(1, 3), 1, 5),
		NewConvoy(NewObjSet(1, 2, 3), 1, 4),
	}
	SortConvoys(cs)
	if cs[0].Start != 0 {
		t.Fatalf("first convoy should start at 0: %v", cs)
	}
	if !ConvoysEqual(
		[]Convoy{NewConvoy(NewObjSet(1), 0, 1), NewConvoy(NewObjSet(2), 0, 1)},
		[]Convoy{NewConvoy(NewObjSet(2), 0, 1), NewConvoy(NewObjSet(1), 0, 1)},
	) {
		t.Fatalf("ConvoysEqual should ignore order")
	}
	if ConvoysEqual(
		[]Convoy{NewConvoy(NewObjSet(1), 0, 1)},
		[]Convoy{NewConvoy(NewObjSet(1), 0, 2)},
	) {
		t.Fatalf("ConvoysEqual false positive")
	}
}

func TestConvoySetUpdate(t *testing.T) {
	s := NewConvoySet()
	big := NewConvoy(NewObjSet(1, 2, 3), 0, 10)
	small := NewConvoy(NewObjSet(1, 2), 2, 8)
	if !s.Update(small) {
		t.Fatalf("inserting into empty set should succeed")
	}
	if !s.Update(big) {
		t.Fatalf("inserting superset should succeed")
	}
	if s.Len() != 1 || !s.Contains(big) {
		t.Fatalf("superset should displace subset: %v", s.Slice())
	}
	if s.Update(small) {
		t.Fatalf("re-inserting sub-convoy should be a no-op")
	}
	other := NewConvoy(NewObjSet(4, 5), 0, 10)
	s.Update(other)
	if s.Len() != 2 {
		t.Fatalf("unrelated convoy should coexist")
	}
	if !s.Covers(small) || s.Covers(NewConvoy(NewObjSet(9), 0, 0)) {
		t.Fatalf("Covers wrong")
	}
}

// Property: after arbitrary updates, no member is a strict sub-convoy of
// another, and every inserted convoy is covered.
func TestConvoySetInvariantQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		s := NewConvoySet()
		var inserted []Convoy
		for i := 0; i < 30; i++ {
			n := rng.Intn(4) + 1
			ids := make([]int32, n)
			for j := range ids {
				ids[j] = int32(rng.Intn(6))
			}
			start := int32(rng.Intn(8))
			end := start + int32(rng.Intn(8))
			c := NewConvoy(NewObjSet(ids...), start, end)
			s.Update(c)
			inserted = append(inserted, c)
		}
		items := s.Slice()
		for i := range items {
			for j := range items {
				if i != j && items[i].StrictSubConvoyOf(items[j]) {
					t.Fatalf("iter %d: %v strict sub-convoy of %v", iter, items[i], items[j])
				}
				if i != j && items[i].Equal(items[j]) {
					t.Fatalf("iter %d: duplicate %v", iter, items[i])
				}
			}
		}
		for _, c := range inserted {
			if !s.Covers(c) {
				t.Fatalf("iter %d: inserted convoy %v not covered", iter, c)
			}
		}
	}
}

func TestMaximalConvoys(t *testing.T) {
	in := []Convoy{
		NewConvoy(NewObjSet(1, 2), 0, 5),
		NewConvoy(NewObjSet(1, 2, 3), 0, 5),
		NewConvoy(NewObjSet(1, 2), 0, 6),
	}
	out := MaximalConvoys(in)
	if len(out) != 2 {
		t.Fatalf("MaximalConvoys = %v, want 2 convoys", out)
	}
}

func TestDatasetBasics(t *testing.T) {
	pts := []Point{
		{OID: 1, T: 5, X: 0, Y: 0},
		{OID: 2, T: 5, X: 1, Y: 1},
		{OID: 1, T: 6, X: 2, Y: 2},
		{OID: 3, T: 7, X: 3, Y: 3},
	}
	d := NewDataset(pts)
	ts, te := d.TimeRange()
	if ts != 5 || te != 7 {
		t.Fatalf("TimeRange = [%d,%d]", ts, te)
	}
	if d.NumPoints() != 4 || d.NumTimestamps() != 3 {
		t.Fatalf("NumPoints=%d NumTimestamps=%d", d.NumPoints(), d.NumTimestamps())
	}
	snap := d.Snapshot(5)
	if len(snap) != 2 || snap[0].OID != 1 || snap[1].OID != 2 {
		t.Fatalf("Snapshot(5) = %v", snap)
	}
	if d.Snapshot(4) != nil || d.Snapshot(8) != nil {
		t.Fatalf("out-of-range snapshot should be nil")
	}
	if got := d.Objects(); !got.Equal(NewObjSet(1, 2, 3)) {
		t.Fatalf("Objects = %v", got)
	}
}

func TestDatasetDedup(t *testing.T) {
	d := NewDataset([]Point{
		{OID: 1, T: 0, X: 1, Y: 1},
		{OID: 1, T: 0, X: 9, Y: 9},
	})
	snap := d.Snapshot(0)
	if len(snap) != 1 {
		t.Fatalf("duplicate (oid,t) should be deduped: %v", snap)
	}
	if snap[0].X != 9 {
		t.Fatalf("dedup should keep last occurrence, got %v", snap[0])
	}
}

func TestDatasetFetch(t *testing.T) {
	var pts []Point
	for oid := int32(0); oid < 20; oid += 2 {
		pts = append(pts, Point{OID: oid, T: 3, X: float64(oid), Y: 0})
	}
	d := NewDataset(pts)
	got := d.Fetch(3, NewObjSet(0, 1, 2, 7, 18, 19))
	if len(got) != 3 || got[0].OID != 0 || got[1].OID != 2 || got[2].OID != 18 {
		t.Fatalf("Fetch = %v", got)
	}
	if d.Fetch(99, NewObjSet(1)) != nil {
		t.Fatalf("Fetch out of range should be nil")
	}
}

func TestDatasetRestrict(t *testing.T) {
	var pts []Point
	for t32 := int32(0); t32 < 10; t32++ {
		for oid := int32(0); oid < 5; oid++ {
			pts = append(pts, Point{OID: oid, T: t32, X: float64(oid), Y: float64(t32)})
		}
	}
	d := NewDataset(pts)
	r := d.Restrict(NewObjSet(1, 3), Interval{Start: 2, End: 4})
	ts, te := r.TimeRange()
	if ts != 2 || te != 4 || r.NumPoints() != 6 {
		t.Fatalf("Restrict wrong: %v", r)
	}
	if got := r.Objects(); !got.Equal(NewObjSet(1, 3)) {
		t.Fatalf("Restrict objects = %v", got)
	}
	// Clamping.
	r2 := d.Restrict(NewObjSet(0), Interval{Start: -5, End: 100})
	ts, te = r2.TimeRange()
	if ts != 0 || te != 9 {
		t.Fatalf("Restrict should clamp: [%d,%d]", ts, te)
	}
}

func TestDatasetPointsRoundTrip(t *testing.T) {
	pts := []Point{
		{OID: 2, T: 1, X: 1, Y: 2},
		{OID: 1, T: 0, X: 0, Y: 0},
		{OID: 1, T: 1, X: 3, Y: 4},
	}
	d := NewDataset(pts)
	got := d.Points()
	want := []Point{
		{OID: 1, T: 0, X: 0, Y: 0},
		{OID: 1, T: 1, X: 3, Y: 4},
		{OID: 2, T: 1, X: 1, Y: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Points = %v, want %v", got, want)
	}
}

func TestEmptyDataset(t *testing.T) {
	d := NewDataset(nil)
	ts, te := d.TimeRange()
	if te >= ts {
		t.Fatalf("empty dataset should have inverted range")
	}
	if d.NumTimestamps() != 0 || d.NumPoints() != 0 {
		t.Fatalf("empty dataset counts wrong")
	}
}

func TestDist(t *testing.T) {
	a := ObjPos{X: 0, Y: 0}
	b := ObjPos{X: 3, Y: 4}
	if Dist(a, b) != 5 {
		t.Fatalf("Dist = %f", Dist(a, b))
	}
	if DistSq(a, b) != 25 {
		t.Fatalf("DistSq = %f", DistSq(a, b))
	}
}
