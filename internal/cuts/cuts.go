// Package cuts implements the CuTS filter-and-refine convoy miners of Jeung
// et al. (PVLDB'08) that the paper discusses as sequential baselines (§2):
//
//  1. Filter: every trajectory is simplified with the Douglas–Peucker
//     algorithm, the simplified trajectories are chopped into λ-length
//     pieces, and the pieces are clustered by trajectory distance; only
//     objects whose pieces co-cluster with enough others can possibly form
//     convoys, so everything else is discarded.
//  2. Refine: the exact miner (PCCD) runs on the reduced dataset; because
//     simplification can under-estimate distances, the refinement step
//     re-checks real positions, keeping the result exact.
//
// Variants differ in the piece distance used during filtering: CuTS uses
// the maximum gap between the pieces, CuTS* the average gap (tighter
// filter, more pruning, more refinement work). The trajectory
// simplification is O(T²) per trajectory — the cost the paper's §2 calls
// out — and the filter needs a trajectory-major data layout, which is why
// CuTS cannot reuse the time-major indexes of §5.
package cuts

import (
	"fmt"
	"math"

	"repro/internal/cmc"
	"repro/internal/dbscan"
	"repro/internal/model"
	"repro/internal/storage"
)

// Variant selects the piece-distance used by the filter step.
type Variant int

const (
	// CuTS filters with the maximum pointwise gap between pieces.
	CuTS Variant = iota
	// CuTSStar filters with the average pointwise gap.
	CuTSStar
)

// Config carries the CuTS parameters.
type Config struct {
	M   int
	K   int
	Eps float64
	// Lambda is the piece length in ticks. The default is ⌊K/2⌋ (min 2):
	// by the same pigeonhole argument as k/2-hop's benchmark points, every
	// convoy of length ≥ K then fully covers at least one window, so the
	// within-window proximity filter cannot miss it outright.
	Lambda int
	// Tolerance is the Douglas–Peucker tolerance (default: Eps/2).
	Tolerance float64
	// Variant selects the filter distance.
	Variant Variant
}

// Mine runs CuTS against a store.
func Mine(store storage.Store, cfg Config) ([]model.Convoy, error) {
	if cfg.Lambda <= 0 {
		cfg.Lambda = cfg.K / 2
	}
	if cfg.Lambda < 2 {
		cfg.Lambda = 2
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = cfg.Eps / 2
	}
	ts, te := store.TimeRange()
	if te < ts {
		return nil, nil
	}
	// Materialise trajectories (trajectory-major layout: one pass over all
	// snapshots; CuTS fundamentally needs the whole dataset).
	trajs := map[int32][]model.Point{}
	for t := ts; t <= te; t++ {
		snap, err := store.Snapshot(t)
		if err != nil {
			return nil, fmt.Errorf("cuts: snapshot %d: %w", t, err)
		}
		for _, p := range snap {
			trajs[p.OID] = append(trajs[p.OID], model.Point{OID: p.OID, T: t, X: p.X, Y: p.Y})
		}
	}

	// Filter phase: simplify, chop into λ pieces, cluster pieces.
	keep := filterObjects(trajs, ts, te, cfg)

	// Refine phase: exact PCCD on the surviving objects only.
	mn := cmc.NewMiner(cfg.M, cfg.K)
	for t := ts; t <= te; t++ {
		rows, err := store.Fetch(t, keep)
		if err != nil {
			return nil, fmt.Errorf("cuts: fetch %d: %w", t, err)
		}
		mn.Step(t, dbscan.Cluster(rows, cfg.Eps, cfg.M))
	}
	return mn.Finish(), nil
}

// filterObjects returns the ids of objects whose simplified sub-trajectories
// co-travel with at least M-1 others during some λ window.
func filterObjects(trajs map[int32][]model.Point, ts, te int32, cfg Config) model.ObjSet {
	type piece struct {
		oid  int32
		traj []model.Point // simplified points within the window
	}
	lambda := int32(cfg.Lambda)
	survivors := map[int32]bool{}
	for wStart := ts; wStart <= te; wStart += lambda {
		wEnd := wStart + lambda - 1
		var pieces []piece
		for oid, tr := range trajs {
			var seg []model.Point
			for _, p := range tr {
				if p.T >= wStart && p.T <= wEnd {
					seg = append(seg, p)
				}
			}
			if len(seg) == 0 {
				continue
			}
			pieces = append(pieces, piece{oid: oid, traj: DouglasPeucker(seg, cfg.Tolerance)})
		}
		// Density filter over pieces: an object survives the window if at
		// least M-1 other pieces are within Eps (by the variant's distance).
		for i := range pieces {
			near := 1
			for j := range pieces {
				if i == j {
					continue
				}
				var d float64
				if cfg.Variant == CuTSStar {
					d = avgPieceDist(pieces[i].traj, pieces[j].traj)
				} else {
					d = maxPieceDist(pieces[i].traj, pieces[j].traj)
				}
				if d <= cfg.Eps*2 { // simplification slack: tolerance on both sides
					near++
				}
			}
			if near >= cfg.M {
				survivors[pieces[i].oid] = true
			}
		}
	}
	ids := make([]int32, 0, len(survivors))
	for oid := range survivors {
		ids = append(ids, oid)
	}
	return model.NewObjSet(ids...)
}

// DouglasPeucker simplifies a trajectory: points within tolerance of the
// line between the retained endpoints are dropped (Douglas & Peucker 1973).
func DouglasPeucker(pts []model.Point, tolerance float64) []model.Point {
	if len(pts) <= 2 {
		return pts
	}
	// Find the point farthest from the first–last chord.
	first, last := pts[0], pts[len(pts)-1]
	maxDist, maxIdx := -1.0, -1
	for i := 1; i < len(pts)-1; i++ {
		d := pointSegDist(pts[i], first, last)
		if d > maxDist {
			maxDist, maxIdx = d, i
		}
	}
	if maxDist <= tolerance {
		return []model.Point{first, last}
	}
	left := DouglasPeucker(pts[:maxIdx+1], tolerance)
	right := DouglasPeucker(pts[maxIdx:], tolerance)
	return append(left[:len(left)-1], right...)
}

func pointSegDist(p, a, b model.Point) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	apx, apy := p.X-a.X, p.Y-a.Y
	den := abx*abx + aby*aby
	t := 0.0
	if den > 0 {
		t = (apx*abx + apy*aby) / den
	}
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	dx := p.X - (a.X + t*abx)
	dy := p.Y - (a.Y + t*aby)
	return math.Sqrt(dx*dx + dy*dy)
}

// maxPieceDist is the maximum distance from any point of a to segment chain
// b (symmetrised).
func maxPieceDist(a, b []model.Point) float64 {
	return math.Max(dirPieceDist(a, b, true), dirPieceDist(b, a, true))
}

// avgPieceDist is the average pointwise distance (symmetrised).
func avgPieceDist(a, b []model.Point) float64 {
	return (dirPieceDist(a, b, false) + dirPieceDist(b, a, false)) / 2
}

func dirPieceDist(a, b []model.Point, useMax bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	agg := 0.0
	for _, p := range a {
		best := math.Inf(1)
		if len(b) == 1 {
			best = math.Hypot(p.X-b[0].X, p.Y-b[0].Y)
		}
		for i := 1; i < len(b); i++ {
			d := pointSegDist(p, b[i-1], b[i])
			if d < best {
				best = d
			}
		}
		if useMax {
			if best > agg {
				agg = best
			}
		} else {
			agg += best
		}
	}
	if useMax {
		return agg
	}
	return agg / float64(len(a))
}
