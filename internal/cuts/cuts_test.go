package cuts

import (
	"math/rand"
	"testing"

	"repro/internal/cmc"
	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

func TestSimpleConvoyFound(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2, 3}}},
	})
	for _, variant := range []Variant{CuTS, CuTSStar} {
		got, err := Mine(storage.NewMemStore(ds), Config{M: 3, K: 5, Eps: minetest.Eps, Variant: variant})
		if err != nil {
			t.Fatalf("Mine: %v", err)
		}
		want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9)}
		if !model.ConvoysEqual(got, want) {
			t.Fatalf("variant %d: got %v, want %v", variant, got, want)
		}
	}
}

func TestFilterPrunesLoners(t *testing.T) {
	// One convoy plus far-away wanderers: the refine phase must only fetch
	// the surviving objects.
	groups := map[int32][][]int32{}
	for tt := int32(0); tt < 12; tt++ {
		groups[tt] = [][]int32{{1, 2, 3}, {50}, {60}, {70}}
	}
	ds := minetest.Build(groups)
	ms := storage.NewMemStore(ds)
	got, err := Mine(ms, Config{M: 3, K: 6, Eps: minetest.Eps})
	if err != nil {
		t.Fatal(err)
	}
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 11)}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// The refine phase fetch volume must be below the full dataset (the
	// filter pruned the loners).
	st := ms.Stats().Snapshot()
	if st.PointQueries >= int64(ds.NumPoints()) {
		t.Fatalf("filter did not prune: %d point queries", st.PointQueries)
	}
}

// CuTS is a filter-and-refine heuristic; like the published original it can
// lose convoys when the simplification bound is tight, but on scenarios with
// clear separation it must agree with PCCD.
func TestAgreesWithPCCDOnSeparatedData(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ds := minetest.Random(seed, 10, 16)
		want, err := cmc.Mine(storage.NewMemStore(ds), 3, 4, minetest.Eps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Mine(storage.NewMemStore(ds), Config{M: 3, K: 4, Eps: minetest.Eps})
		if err != nil {
			t.Fatal(err)
		}
		if !model.ConvoysEqual(got, want) {
			t.Fatalf("seed %d:\n got %v\nwant %v", seed, got, want)
		}
	}
}

func TestDouglasPeuckerStraightLine(t *testing.T) {
	var pts []model.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, model.Point{T: int32(i), X: float64(i), Y: 0})
	}
	got := DouglasPeucker(pts, 0.1)
	if len(got) != 2 {
		t.Fatalf("straight line should simplify to 2 points, got %d", len(got))
	}
	if got[0] != pts[0] || got[1] != pts[19] {
		t.Fatalf("endpoints must be preserved")
	}
}

func TestDouglasPeuckerKeepsCorners(t *testing.T) {
	pts := []model.Point{
		{T: 0, X: 0, Y: 0},
		{T: 1, X: 5, Y: 0},
		{T: 2, X: 10, Y: 0},
		{T: 3, X: 10, Y: 5},
		{T: 4, X: 10, Y: 10},
	}
	got := DouglasPeucker(pts, 0.5)
	if len(got) != 3 {
		t.Fatalf("corner should be kept: %v", got)
	}
	if got[1].X != 10 || got[1].Y != 0 {
		t.Fatalf("kept point should be the corner, got %v", got[1])
	}
}

func TestDouglasPeuckerErrorBound(t *testing.T) {
	// Property: every original point is within tolerance of the simplified
	// chain.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		var pts []model.Point
		n := rng.Intn(40) + 3
		for i := 0; i < n; i++ {
			pts = append(pts, model.Point{T: int32(i), X: float64(i) + rng.Float64()*3, Y: rng.Float64() * 3})
		}
		tol := 0.5 + rng.Float64()
		simp := DouglasPeucker(pts, tol)
		for _, p := range pts {
			best := 1e18
			for i := 1; i < len(simp); i++ {
				d := pointSegDist(p, simp[i-1], simp[i])
				if d < best {
					best = d
				}
			}
			if best > tol+1e-9 {
				t.Fatalf("trial %d: point %v is %f from simplified chain (tol %f)", trial, p, best, tol)
			}
		}
	}
}

func TestDouglasPeuckerShortInputs(t *testing.T) {
	if got := DouglasPeucker(nil, 1); len(got) != 0 {
		t.Fatalf("nil input: %v", got)
	}
	one := []model.Point{{X: 1}}
	if got := DouglasPeucker(one, 1); len(got) != 1 {
		t.Fatalf("single input: %v", got)
	}
}

func TestEmptyDataset(t *testing.T) {
	got, err := Mine(storage.NewMemStore(model.NewDataset(nil)), Config{M: 3, K: 4, Eps: 1})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty dataset: %v %v", got, err)
	}
}
