package cuts

import (
	"errors"
	"testing"

	"repro/internal/minetest"
	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

func TestCuTSPropagatesFaults(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 11, Groups: [][]int32{{1, 2, 3}}},
	})
	clean := storetest.NewFaultStore(storage.NewMemStore(ds), 1<<40)
	if _, err := Mine(clean, Config{M: 3, K: 4, Eps: minetest.Eps}); err != nil {
		t.Fatal(err)
	}
	// Fail in the trajectory-materialisation scan and in the refine fetches.
	for _, budget := range []int64{0, clean.Ops() / 2, clean.Ops() - 1} {
		fs := storetest.NewFaultStore(storage.NewMemStore(ds), budget)
		if _, err := Mine(fs, Config{M: 3, K: 4, Eps: minetest.Eps}); !errors.Is(err, storetest.ErrInjected) {
			t.Fatalf("budget %d: err = %v", budget, err)
		}
	}
}

func TestLambdaDefaultIsHalfK(t *testing.T) {
	// The default λ follows the k/2 lemma; explicit λ is honoured.
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 15, Groups: [][]int32{{1, 2, 3}}},
	})
	for _, lambda := range []int{0, 3, 8, 100} {
		got, err := Mine(storage.NewMemStore(ds), Config{M: 3, K: 8, Eps: minetest.Eps, Lambda: lambda})
		if err != nil {
			t.Fatalf("λ=%d: %v", lambda, err)
		}
		if len(got) != 1 {
			t.Fatalf("λ=%d: got %v", lambda, got)
		}
	}
}
