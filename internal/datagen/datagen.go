// Package datagen provides the shared kinematics used by the three dataset
// simulators (brinkhoff, trucks, tdrive): polylines, constant-speed walkers
// and position jitter. The simulators replace the paper's datasets (which
// are either proprietary, large downloads, or produced by a Java tool) with
// deterministic synthetic equivalents that preserve the behaviour the
// algorithms care about: object counts, sampling density, and — crucially —
// the rarity and size of groups that travel together (see DESIGN.md §3).
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/model"
)

// XY is a 2-D coordinate.
type XY struct{ X, Y float64 }

// Dist returns the Euclidean distance between two coordinates.
func (a XY) Dist(b XY) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Polyline is an open chain of coordinates.
type Polyline []XY

// Length returns the total length of the polyline.
func (p Polyline) Length() float64 {
	total := 0.0
	for i := 1; i < len(p); i++ {
		total += p[i-1].Dist(p[i])
	}
	return total
}

// At returns the coordinate at distance d from the start, clamping to the
// endpoints. A polyline with fewer than 2 points returns its single point
// (or the origin when empty).
func (p Polyline) At(d float64) XY {
	if len(p) == 0 {
		return XY{}
	}
	if len(p) == 1 || d <= 0 {
		return p[0]
	}
	for i := 1; i < len(p); i++ {
		seg := p[i-1].Dist(p[i])
		if d <= seg && seg > 0 {
			f := d / seg
			return XY{
				X: p[i-1].X + (p[i].X-p[i-1].X)*f,
				Y: p[i-1].Y + (p[i].Y-p[i-1].Y)*f,
			}
		}
		d -= seg
	}
	return p[len(p)-1]
}

// Walker advances along a polyline at a fixed speed per tick.
type Walker struct {
	Path  Polyline
	Speed float64 // distance per tick
	pos   float64
	total float64
}

// NewWalker creates a walker at the start of path.
func NewWalker(path Polyline, speed float64) *Walker {
	return &Walker{Path: path, Speed: speed, total: path.Length()}
}

// Step advances one tick and returns the new position and whether the
// walker is still en route (false once the end is reached).
func (w *Walker) Step() (XY, bool) {
	w.pos += w.Speed
	if w.pos >= w.total {
		return w.Path.At(w.total), false
	}
	return w.Path.At(w.pos), true
}

// Pos returns the current position without advancing.
func (w *Walker) Pos() XY { return w.Path.At(w.pos) }

// Jitter returns p displaced by a uniform offset in [-r, r] on each axis.
func Jitter(rng *rand.Rand, p XY, r float64) XY {
	return XY{
		X: p.X + (rng.Float64()*2-1)*r,
		Y: p.Y + (rng.Float64()*2-1)*r,
	}
}

// Emit appends a point for object oid at tick t to pts.
func Emit(pts []model.Point, oid int32, t int32, p XY) []model.Point {
	return append(pts, model.Point{OID: oid, T: t, X: p.X, Y: p.Y})
}

// Stats summarises a generated dataset for experiment tables (paper Table 4).
type Stats struct {
	Points     int
	Objects    int
	Timestamps int
	Width      float64
	Height     float64
}

// Describe computes summary statistics of ds.
func Describe(ds *model.Dataset) Stats {
	ts, te := ds.TimeRange()
	st := Stats{Points: ds.NumPoints(), Objects: len(ds.Objects())}
	if te >= ts {
		st.Timestamps = int(te-ts) + 1
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for t := ts; t <= te; t++ {
		for _, p := range ds.Snapshot(t) {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if st.Points > 0 {
		st.Width = maxX - minX
		st.Height = maxY - minY
	}
	return st
}
