// Package trucks generates a stand-in for the paper's Trucks dataset
// (§6.2.1): 50 concrete-delivery trucks around the Athens metropolitan
// area, sampled every ~30 seconds over 33 days, where — following the paper
// — each day of a truck's movement is treated as a separate object, giving
// 276 trajectories from 50 physical trucks.
//
// The simulation: trucks start from one of a few depots, drive to randomly
// assigned construction sites along Manhattan-ish routes, dwell, and
// return. Trucks dispatched in the same batch drive together — those
// batches are the convoys. The ConvoyGroups knob fixes how many together-
// driving batches each day contains, which experiment Fig 8k sweeps.
package trucks

import (
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/model"
)

// Params configures the generator.
type Params struct {
	Seed int64
	// Trucks is the number of physical trucks (paper: 50).
	Trucks int
	// Days of operation; each (truck, day) is a distinct object id
	// (paper: 33 days → 276 trajectories; not every truck works every day).
	Days int
	// TicksPerDay is the samples per day (paper: ~2880 at 30s; default 300).
	TicksPerDay int32
	// WorkProbability is the chance a truck operates on a given day.
	WorkProbability float64
	// ConvoyGroups is the number of together-driving dispatch batches per
	// day; GroupSize trucks per batch.
	ConvoyGroups int
	GroupSize    int
	// SpaceW, SpaceH are the data-space dimensions in metres.
	SpaceW, SpaceH float64
	// Jitter is GPS noise in metres.
	Jitter float64
}

// DefaultParams mirrors the paper's dataset shape at laptop scale.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:            seed,
		Trucks:          50,
		Days:            6,
		TicksPerDay:     300,
		WorkProbability: 0.85,
		ConvoyGroups:    3,
		GroupSize:       4,
		SpaceW:          40000,
		SpaceH:          30000,
		Jitter:          8,
	}
}

// Generate runs the simulation.
func Generate(p Params) *model.Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	if p.GroupSize < 2 {
		p.GroupSize = 2
	}
	// Fixed infrastructure: depots and construction sites.
	nDepots := 3
	depots := make([]datagen.XY, nDepots)
	for i := range depots {
		depots[i] = datagen.XY{X: rng.Float64() * p.SpaceW, Y: rng.Float64() * p.SpaceH}
	}
	nSites := 25
	sites := make([]datagen.XY, nSites)
	for i := range sites {
		sites[i] = datagen.XY{X: rng.Float64() * p.SpaceW, Y: rng.Float64() * p.SpaceH}
	}
	speed := p.SpaceW / float64(p.TicksPerDay) * 6 // several round trips per day

	// route builds a Manhattan-ish path depot → site → depot with a couple
	// of via points so different routes do not overlap by accident.
	route := func(rng *rand.Rand, depot, site datagen.XY) datagen.Polyline {
		mid1 := datagen.XY{X: site.X, Y: depot.Y}
		out := datagen.Polyline{depot, mid1, site}
		back := datagen.Polyline{site, datagen.XY{X: depot.X, Y: site.Y}, depot}
		return append(out, back[1:]...)
	}

	var pts []model.Point
	var oid int32
	for day := 0; day < p.Days; day++ {
		dayBase := int32(day) * p.TicksPerDay
		// Choose which trucks work today and group the first
		// ConvoyGroups×GroupSize of them into dispatch batches.
		var working []int
		for tr := 0; tr < p.Trucks; tr++ {
			if rng.Float64() < p.WorkProbability {
				working = append(working, tr)
			}
		}
		rng.Shuffle(len(working), func(i, j int) { working[i], working[j] = working[j], working[i] })

		assignTrip := func(members []int, together bool) {
			if len(members) == 0 {
				return
			}
			depot := depots[rng.Intn(nDepots)]
			site := sites[rng.Intn(nSites)]
			base := route(rng, depot, site)
			start := int32(rng.Intn(int(p.TicksPerDay) / 4))
			for _, tr := range members {
				_ = tr
				path := base
				spd := speed
				st := start
				if !together {
					// Independent truck: its own depot/site/schedule.
					depot := depots[rng.Intn(nDepots)]
					site := sites[rng.Intn(nSites)]
					path = route(rng, depot, site)
					spd = speed * (0.8 + rng.Float64()*0.4)
					st = int32(rng.Intn(int(p.TicksPerDay) / 2))
				}
				w := datagen.NewWalker(path, spd)
				myOID := oid
				oid++
				for t := st; t < p.TicksPerDay; t++ {
					pos, ok := w.Step()
					pts = datagen.Emit(pts, myOID, dayBase+t, datagen.Jitter(rng, pos, p.Jitter))
					if !ok {
						break
					}
				}
			}
		}

		i := 0
		for g := 0; g < p.ConvoyGroups && i+p.GroupSize <= len(working); g++ {
			assignTrip(working[i:i+p.GroupSize], true)
			i += p.GroupSize
		}
		for ; i < len(working); i++ {
			assignTrip(working[i:i+1], false)
		}
	}
	return model.NewDataset(pts)
}
