package trucks

import (
	"testing"

	"repro/internal/model"
)

func smallParams(seed int64) Params {
	p := DefaultParams(seed)
	p.Trucks = 20
	p.Days = 2
	p.TicksPerDay = 80
	return p
}

func TestDeterministic(t *testing.T) {
	a, b := Generate(smallParams(1)), Generate(smallParams(1))
	if a.NumPoints() != b.NumPoints() {
		t.Fatalf("non-deterministic sizes: %d vs %d", a.NumPoints(), b.NumPoints())
	}
	ap, bp := a.Points(), b.Points()
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("non-deterministic point %d", i)
		}
	}
}

func TestShape(t *testing.T) {
	p := smallParams(2)
	ds := Generate(p)
	if ds.NumPoints() == 0 {
		t.Fatalf("no points")
	}
	ts, te := ds.TimeRange()
	if ts < 0 || te >= int32(p.Days)*p.TicksPerDay {
		t.Fatalf("time range [%d,%d]", ts, te)
	}
	// Object ids are (truck, day) pairs: more objects than trucks once
	// Days > 1, fewer than Trucks*Days because of WorkProbability.
	n := len(ds.Objects())
	if n <= p.Trucks/2 || n > p.Trucks*p.Days {
		t.Fatalf("object count %d implausible", n)
	}
}

func TestConvoyGroupsStayTogether(t *testing.T) {
	p := smallParams(3)
	p.ConvoyGroups = 1
	p.GroupSize = 3
	p.Jitter = 2
	ds := Generate(p)
	ts, te := ds.TimeRange()
	// Find a tick where ≥3 objects are pairwise within 100m — the dispatch
	// batch driving together. There must be many such ticks.
	togetherTicks := 0
	for tt := ts; tt <= te; tt++ {
		snap := ds.Snapshot(tt)
		for i := 0; i < len(snap); i++ {
			near := 0
			for j := 0; j < len(snap); j++ {
				if i != j && model.Dist(snap[i], snap[j]) < 100 {
					near++
				}
			}
			if near >= 2 {
				togetherTicks++
				break
			}
		}
	}
	if togetherTicks < 10 {
		t.Fatalf("convoy group not travelling together: only %d ticks", togetherTicks)
	}
}

func TestGroupSizeClamped(t *testing.T) {
	p := smallParams(4)
	p.GroupSize = 0 // must clamp to ≥2, not panic
	ds := Generate(p)
	if ds.NumPoints() == 0 {
		t.Fatalf("no points with clamped group size")
	}
}
