package brinkhoff

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

func smallParams(seed int64) Params {
	p := DefaultParams(seed)
	p.GridW, p.GridH = 8, 8
	p.MaxTime = 60
	p.ObjBegin = 30
	p.ObjPerTick = 2
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallParams(42))
	b := Generate(smallParams(42))
	if a.NumPoints() != b.NumPoints() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.NumPoints(), b.NumPoints())
	}
	ap, bp := a.Points(), b.Points()
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("same seed, different point %d: %v vs %v", i, ap[i], bp[i])
		}
	}
	c := Generate(smallParams(43))
	if c.NumPoints() == a.NumPoints() && pointsEqual(c.Points(), ap) {
		t.Fatalf("different seed produced identical dataset")
	}
}

func pointsEqual(a, b []model.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGenerateShape(t *testing.T) {
	p := smallParams(7)
	ds := Generate(p)
	if ds.NumPoints() == 0 {
		t.Fatalf("no points generated")
	}
	ts, te := ds.TimeRange()
	if ts != 0 || te >= p.MaxTime {
		t.Fatalf("time range [%d,%d] out of bounds", ts, te)
	}
	// Positions stay roughly inside the data space (jitter can push a little
	// past the node hull, which itself is inside the space).
	for tt := ts; tt <= te; tt++ {
		for _, q := range ds.Snapshot(tt) {
			if q.X < -1000 || q.X > p.SpaceW+1000 || q.Y < -1000 || q.Y > p.SpaceH+1000 {
				t.Fatalf("point far outside data space: %v", q)
			}
		}
	}
	if got := len(ds.Objects()); got < p.ObjBegin {
		t.Fatalf("expected at least %d objects, got %d", p.ObjBegin, got)
	}
}

func TestNetworkConnectivity(t *testing.T) {
	p := smallParams(3)
	rng := rand.New(rand.NewSource(p.Seed))
	nw := NewNetwork(p, rng)
	if len(nw.Nodes) != p.GridW*p.GridH {
		t.Fatalf("node count = %d", len(nw.Nodes))
	}
	if nw.NumEdges() < p.GridW*p.GridH {
		t.Fatalf("too few edges: %d", nw.NumEdges())
	}
	// The grid skeleton guarantees full connectivity: a path must exist
	// between the corners.
	path := nw.ShortestPath(0, len(nw.Nodes)-1)
	if len(path) < 2 {
		t.Fatalf("no path across the network")
	}
	// Path edges must actually exist.
	for i := 1; i < len(path); i++ {
		found := false
		for _, e := range nw.Adj[path[i-1]] {
			if e.To == path[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("path uses non-existent edge %d->%d", path[i-1], path[i])
		}
	}
	if got := nw.ShortestPath(5, 5); len(got) != 1 {
		t.Fatalf("self path = %v", got)
	}
}

func TestShortestPathIsShortest(t *testing.T) {
	// On a tiny network, compare Dijkstra against brute-force enumeration.
	p := smallParams(9)
	p.GridW, p.GridH = 3, 3
	rng := rand.New(rand.NewSource(1))
	nw := NewNetwork(p, rng)
	pathLen := func(path []int) float64 {
		total := 0.0
		for i := 1; i < len(path); i++ {
			found := false
			for _, e := range nw.Adj[path[i-1]] {
				if e.To == path[i] {
					total += e.Len
					found = true
					break
				}
			}
			if !found {
				return -1
			}
		}
		return total
	}
	// Brute force DFS up to depth 8.
	var best float64
	var dfs func(at, dst int, visited map[int]bool, sofar float64)
	dfs = func(at, dst int, visited map[int]bool, sofar float64) {
		if sofar >= best {
			return
		}
		if at == dst {
			best = sofar
			return
		}
		visited[at] = true
		for _, e := range nw.Adj[at] {
			if !visited[e.To] {
				dfs(e.To, dst, visited, sofar+e.Len)
			}
		}
		delete(visited, at)
	}
	for _, pair := range [][2]int{{0, 8}, {2, 6}, {1, 7}} {
		best = 1e18
		dfs(pair[0], pair[1], map[int]bool{}, 0)
		got := nw.ShortestPath(pair[0], pair[1])
		gl := pathLen(got)
		if gl < 0 {
			t.Fatalf("invalid path returned")
		}
		if gl > best+1e-6 {
			t.Fatalf("Dijkstra %f > brute force %f for %v", gl, best, pair)
		}
	}
}

func TestPlatoonsTravelTogether(t *testing.T) {
	p := smallParams(11)
	p.PlatoonFraction = 1.0 // every spawn is a platoon
	p.ObjBegin = 4
	p.ObjPerTick = 0
	p.Jitter = 5
	ds := Generate(p)
	// The first PlatoonSize objects share a route: at every tick where all
	// are present they must be within a few hundred units of each other.
	ts, te := ds.TimeRange()
	checked := 0
	for tt := ts; tt <= te; tt++ {
		snap := ds.Snapshot(tt)
		if len(snap) < p.PlatoonSize {
			continue
		}
		var members []model.ObjPos
		for _, q := range snap {
			if q.OID < int32(p.PlatoonSize) {
				members = append(members, q)
			}
		}
		if len(members) < p.PlatoonSize {
			continue
		}
		for i := 1; i < len(members); i++ {
			if model.Dist(members[0], members[i]) > 4*(p.PlatoonSpread+p.Jitter)+200 {
				t.Fatalf("platoon scattered at t=%d: %v", tt, members)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("no tick had the full platoon present")
	}
}
