// Package brinkhoff reimplements the behaviour of the Brinkhoff
// network-based moving-object generator (Brinkhoff, GeoInformatica 2002)
// that the paper uses for its largest synthetic dataset (§6.2.3, Table 4):
//
//   - a road network of nodes and edges covering a rectangular data space;
//   - edge classes with different speeds (arterials vs. local roads);
//   - an initial population of objects plus a fixed number of new objects
//     per tick ("ObjBegin" / "ObjTime" in the paper's Table 4);
//   - every object routes from a random source node to a random destination
//     node along a shortest path and disappears on arrival.
//
// Because routes share road segments, groups of objects naturally travel
// together for stretches; an explicit platoon knob injects groups that stay
// together for a controlled duration, which the experiments use to control
// convoy counts.
package brinkhoff

import (
	"container/heap"
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/model"
)

// Params configures the generator. The zero value is unusable; start from
// DefaultParams.
type Params struct {
	Seed int64
	// GridW, GridH set the road-network size: GridW×GridH nodes connected
	// in a perturbed grid with extra shortcut edges.
	GridW, GridH int
	// SpaceW, SpaceH are the data-space dimensions (paper: 23572×26915).
	SpaceW, SpaceH float64
	// MaxTime is the number of ticks (paper: 25000).
	MaxTime int32
	// ObjBegin objects exist at t=0; ObjPerTick more appear every tick.
	ObjBegin, ObjPerTick int
	// Classes is the number of speed classes (fastest ≈ 2× slowest).
	Classes int
	// PlatoonFraction of spawns are platoons of PlatoonSize objects that
	// share a route and stay within PlatoonSpread of each other.
	PlatoonFraction float64
	PlatoonSize     int
	PlatoonSpread   float64
	// Jitter is the per-tick positional noise.
	Jitter float64
}

// DefaultParams returns a laptop-scale configuration whose shape follows
// the paper's Table 4 (which used 2.5M objects and 122M points; scale=1
// here produces ~100k points, and the experiment harness scales up).
func DefaultParams(seed int64) Params {
	return Params{
		Seed:            seed,
		GridW:           24,
		GridH:           26,
		SpaceW:          23572,
		SpaceH:          26915,
		MaxTime:         500,
		ObjBegin:        200,
		ObjPerTick:      4,
		Classes:         3,
		PlatoonFraction: 0.05,
		PlatoonSize:     4,
		PlatoonSpread:   30,
		Jitter:          15,
	}
}

// Network is a road network: nodes with coordinates and a weighted
// adjacency list.
type Network struct {
	Nodes []datagen.XY
	Adj   [][]Edge
}

// Edge is one directed road segment.
type Edge struct {
	To    int
	Len   float64
	Class int // 0 = fastest
}

// NewNetwork builds the perturbed-grid road network.
func NewNetwork(p Params, rng *rand.Rand) *Network {
	nw := &Network{}
	dx := p.SpaceW / float64(p.GridW)
	dy := p.SpaceH / float64(p.GridH)
	idx := func(x, y int) int { return y*p.GridW + x }
	for y := 0; y < p.GridH; y++ {
		for x := 0; x < p.GridW; x++ {
			nw.Nodes = append(nw.Nodes, datagen.XY{
				X: (float64(x)+0.5)*dx + (rng.Float64()-0.5)*dx*0.4,
				Y: (float64(y)+0.5)*dy + (rng.Float64()-0.5)*dy*0.4,
			})
		}
	}
	nw.Adj = make([][]Edge, len(nw.Nodes))
	addEdge := func(a, b, class int) {
		l := nw.Nodes[a].Dist(nw.Nodes[b])
		nw.Adj[a] = append(nw.Adj[a], Edge{To: b, Len: l, Class: class})
		nw.Adj[b] = append(nw.Adj[b], Edge{To: a, Len: l, Class: class})
	}
	for y := 0; y < p.GridH; y++ {
		for x := 0; x < p.GridW; x++ {
			// Horizontal arterials every 4 rows, otherwise local roads.
			if x+1 < p.GridW {
				class := 1
				if y%4 == 0 {
					class = 0
				}
				addEdge(idx(x, y), idx(x+1, y), class)
			}
			if y+1 < p.GridH {
				class := 1
				if x%4 == 0 {
					class = 0
				}
				addEdge(idx(x, y), idx(x, y+1), class)
			}
			// Occasional diagonal shortcut.
			if x+1 < p.GridW && y+1 < p.GridH && rng.Float64() < 0.1 {
				addEdge(idx(x, y), idx(x+1, y+1), 2%maxInt(p.Classes, 1))
			}
		}
	}
	return nw
}

// NumEdges returns the number of undirected edges.
func (nw *Network) NumEdges() int {
	n := 0
	for _, adj := range nw.Adj {
		n += len(adj)
	}
	return n / 2
}

// ShortestPath returns the node sequence of a shortest path from src to dst
// (Dijkstra), or nil if unreachable.
func (nw *Network) ShortestPath(src, dst int) []int {
	const inf = 1e18
	dist := make([]float64, len(nw.Nodes))
	prev := make([]int, len(nw.Nodes))
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	pq := &nodeHeap{{node: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if it.node == dst {
			break
		}
		if it.d > dist[it.node] {
			continue
		}
		for _, e := range nw.Adj[it.node] {
			nd := it.d + e.Len
			if nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = it.node
				heap.Push(pq, nodeItem{node: e.To, d: nd})
			}
		}
	}
	if dist[dst] == inf {
		return nil
	}
	var path []int
	for at := dst; at != -1; at = prev[at] {
		path = append(path, at)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

type nodeItem struct {
	node int
	d    float64
}
type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Generate runs the simulation and returns the dataset.
func Generate(p Params) *model.Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	nw := NewNetwork(p, rng)
	baseSpeed := (p.SpaceW + p.SpaceH) / 2 / 50 // cross the space in ~50 ticks on arterials

	type mover struct {
		oid    int32
		walker *datagen.Walker
		jitter float64
	}
	var (
		pts     []model.Point
		movers  []*mover
		nextOID int32
	)
	classSpeed := func(class int) float64 {
		// class 0 fastest; each class ~25% slower.
		s := baseSpeed
		for i := 0; i < class; i++ {
			s *= 0.75
		}
		return s
	}
	spawnRoute := func() (datagen.Polyline, float64) {
		for tries := 0; tries < 10; tries++ {
			src := rng.Intn(len(nw.Nodes))
			dst := rng.Intn(len(nw.Nodes))
			if src == dst {
				continue
			}
			path := nw.ShortestPath(src, dst)
			if len(path) < 2 {
				continue
			}
			poly := make(datagen.Polyline, len(path))
			worst := 0
			for i, n := range path {
				poly[i] = nw.Nodes[n]
				if i > 0 {
					for _, e := range nw.Adj[path[i-1]] {
						if e.To == n && e.Class > worst {
							worst = e.Class
						}
					}
				}
			}
			return poly, classSpeed(worst)
		}
		return nil, 0
	}
	spawn := func(n int) {
		for i := 0; i < n; i++ {
			route, speed := spawnRoute()
			if route == nil {
				continue
			}
			if rng.Float64() < p.PlatoonFraction {
				// A platoon: PlatoonSize objects sharing the route, same
				// speed, slightly offset so they stay density-connected.
				for g := 0; g < p.PlatoonSize; g++ {
					off := make(datagen.Polyline, len(route))
					for j, q := range route {
						off[j] = datagen.Jitter(rng, q, p.PlatoonSpread)
					}
					movers = append(movers, &mover{
						oid:    nextOID,
						walker: datagen.NewWalker(off, speed),
						jitter: p.Jitter,
					})
					nextOID++
				}
				continue
			}
			movers = append(movers, &mover{
				oid:    nextOID,
				walker: datagen.NewWalker(route, speed*(0.8+rng.Float64()*0.4)),
				jitter: p.Jitter,
			})
			nextOID++
		}
	}

	spawn(p.ObjBegin)
	for t := int32(0); t < p.MaxTime; t++ {
		if t > 0 {
			spawn(p.ObjPerTick)
		}
		alive := movers[:0]
		for _, m := range movers {
			pos, ok := m.walker.Step()
			pts = datagen.Emit(pts, m.oid, t, datagen.Jitter(rng, pos, m.jitter))
			if ok {
				alive = append(alive, m)
			}
		}
		movers = alive
		if len(movers) == 0 && t > p.MaxTime/2 {
			break
		}
	}
	return model.NewDataset(pts)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
