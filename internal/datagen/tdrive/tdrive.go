// Package tdrive generates a stand-in for the T-Drive taxi dataset
// (§6.2.2): ~10k taxis in Beijing over one week, average sampling interval
// ~177 s, interpolated by the paper to a dense tick grid (15M points → 29M
// after interpolation).
//
// The simulation: taxis hop between hotspots (transport hubs, districts) of
// a city; a taxi picks a hotspot biased by popularity, drives there along a
// two-segment path, dwells briefly, and picks another. A configurable
// number of platoon groups (buses, arterial-road packs) travel together —
// the dataset's convoys. Positions are emitted every tick, mirroring the
// paper's interpolation step.
package tdrive

import (
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/model"
)

// Params configures the generator.
type Params struct {
	Seed int64
	// Taxis is the fleet size (paper: 10357; default laptop scale: 300).
	Taxis int
	// Ticks is the number of timestamps (paper week ≈ 3400 ticks at 177 s).
	Ticks int32
	// Hotspots is the number of attraction points.
	Hotspots int
	// ConvoyGroups platoons of GroupSize taxis travel together.
	ConvoyGroups int
	GroupSize    int
	// SpaceW, SpaceH are the city dimensions in metres.
	SpaceW, SpaceH float64
	// Jitter is GPS noise in metres.
	Jitter float64
}

// DefaultParams mirrors the paper's dataset shape at laptop scale.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:         seed,
		Taxis:        300,
		Ticks:        400,
		Hotspots:     15,
		ConvoyGroups: 4,
		GroupSize:    4,
		SpaceW:       30000,
		SpaceH:       30000,
		Jitter:       10,
	}
}

// Generate runs the simulation.
func Generate(p Params) *model.Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	if p.GroupSize < 2 {
		p.GroupSize = 2
	}
	hotspots := make([]datagen.XY, p.Hotspots)
	for i := range hotspots {
		hotspots[i] = datagen.XY{X: rng.Float64() * p.SpaceW, Y: rng.Float64() * p.SpaceH}
	}
	pick := func(rng *rand.Rand) datagen.XY {
		// Zipf-ish popularity: hotspot i chosen with weight 1/(i+1).
		total := 0.0
		for i := range hotspots {
			total += 1 / float64(i+1)
		}
		r := rng.Float64() * total
		for i := range hotspots {
			r -= 1 / float64(i+1)
			if r <= 0 {
				return hotspots[i]
			}
		}
		return hotspots[len(hotspots)-1]
	}
	speed := p.SpaceW / 120

	type taxi struct {
		oid    int32
		pos    datagen.XY
		walker *datagen.Walker
		dwell  int
		leader *taxi // non-nil for platoon followers
		offset datagen.XY
	}
	newLeg := func(rng *rand.Rand, from datagen.XY) *datagen.Walker {
		// Destinations scatter around the hotspot (a district, not a single
		// kerb): without the scatter, every dwelling taxi piles onto one
		// point and forms giant standing clusters that look like convoys.
		to := datagen.Jitter(rng, pick(rng), 600)
		via := datagen.XY{X: to.X, Y: from.Y} // Manhattan-ish two-segment leg
		return datagen.NewWalker(datagen.Polyline{from, via, to}, speed*(0.8+rng.Float64()*0.4))
	}

	var taxis []*taxi
	var oid int32
	spawnAt := func(leader *taxi) *taxi {
		start := datagen.XY{X: rng.Float64() * p.SpaceW, Y: rng.Float64() * p.SpaceH}
		t := &taxi{oid: oid, pos: start}
		oid++
		if leader != nil {
			t.leader = leader
			t.offset = datagen.XY{X: (rng.Float64()*2 - 1) * 25, Y: (rng.Float64()*2 - 1) * 25}
		} else {
			t.walker = newLeg(rng, start)
		}
		taxis = append(taxis, t)
		return t
	}
	// Platoon groups first (leader + followers), then independents.
	for g := 0; g < p.ConvoyGroups; g++ {
		lead := spawnAt(nil)
		for i := 1; i < p.GroupSize; i++ {
			spawnAt(lead)
		}
	}
	for len(taxis) < p.Taxis {
		spawnAt(nil)
	}

	var pts []model.Point
	for t := int32(0); t < p.Ticks; t++ {
		for _, tx := range taxis {
			switch {
			case tx.leader != nil:
				tx.pos = datagen.XY{X: tx.leader.pos.X + tx.offset.X, Y: tx.leader.pos.Y + tx.offset.Y}
			case tx.dwell > 0:
				tx.dwell--
			default:
				pos, ok := tx.walker.Step()
				tx.pos = pos
				if !ok {
					tx.dwell = rng.Intn(5)
					tx.walker = newLeg(rng, tx.pos)
				}
			}
			pts = datagen.Emit(pts, tx.oid, t, datagen.Jitter(rng, tx.pos, p.Jitter))
		}
	}
	return model.NewDataset(pts)
}
