package tdrive

import (
	"testing"

	"repro/internal/model"
)

func smallParams(seed int64) Params {
	p := DefaultParams(seed)
	p.Taxis = 40
	p.Ticks = 80
	return p
}

func TestDeterministic(t *testing.T) {
	a, b := Generate(smallParams(1)), Generate(smallParams(1))
	ap, bp := a.Points(), b.Points()
	if len(ap) != len(bp) {
		t.Fatalf("non-deterministic sizes")
	}
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("non-deterministic point %d", i)
		}
	}
}

func TestShape(t *testing.T) {
	p := smallParams(2)
	ds := Generate(p)
	// Every taxi reports at every tick (the paper interpolates T-Drive to a
	// dense grid).
	if ds.NumPoints() != p.Taxis*int(p.Ticks) {
		t.Fatalf("points = %d, want %d", ds.NumPoints(), p.Taxis*int(p.Ticks))
	}
	if len(ds.Objects()) != p.Taxis {
		t.Fatalf("objects = %d", len(ds.Objects()))
	}
	ts, te := ds.TimeRange()
	if ts != 0 || te != p.Ticks-1 {
		t.Fatalf("time range [%d,%d]", ts, te)
	}
}

func TestPlatoonsFollowLeader(t *testing.T) {
	p := smallParams(3)
	p.ConvoyGroups = 1
	p.GroupSize = 4
	p.Jitter = 3
	ds := Generate(p)
	// Objects 0..3 are the first platoon (leader 0). They must stay within
	// ~platoon offset + jitter of the leader at every tick.
	ts, te := ds.TimeRange()
	for tt := ts; tt <= te; tt++ {
		rows := ds.Fetch(tt, model.NewObjSet(0, 1, 2, 3))
		if len(rows) != 4 {
			t.Fatalf("platoon incomplete at t=%d", tt)
		}
		for _, r := range rows[1:] {
			if model.Dist(rows[0], r) > 100 {
				t.Fatalf("follower strayed at t=%d: %v vs %v", tt, rows[0], r)
			}
		}
	}
}
