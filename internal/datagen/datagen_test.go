package datagen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

func TestPolylineLengthAndAt(t *testing.T) {
	p := Polyline{{0, 0}, {3, 0}, {3, 4}}
	if p.Length() != 7 {
		t.Fatalf("Length = %f", p.Length())
	}
	if got := p.At(0); got != (XY{0, 0}) {
		t.Fatalf("At(0) = %v", got)
	}
	if got := p.At(3); got != (XY{3, 0}) {
		t.Fatalf("At(3) = %v", got)
	}
	if got := p.At(5); got != (XY{3, 2}) {
		t.Fatalf("At(5) = %v", got)
	}
	if got := p.At(100); got != (XY{3, 4}) {
		t.Fatalf("At(overshoot) = %v", got)
	}
	if got := p.At(-1); got != (XY{0, 0}) {
		t.Fatalf("At(negative) = %v", got)
	}
}

func TestPolylineDegenerate(t *testing.T) {
	if got := (Polyline{}).At(5); got != (XY{}) {
		t.Fatalf("empty At = %v", got)
	}
	if got := (Polyline{{1, 2}}).At(5); got != (XY{1, 2}) {
		t.Fatalf("single At = %v", got)
	}
	// Zero-length segment must not divide by zero.
	p := Polyline{{0, 0}, {0, 0}, {1, 0}}
	if got := p.At(0.5); math.IsNaN(got.X) {
		t.Fatalf("zero-length segment produced NaN")
	}
}

func TestWalkerReachesEnd(t *testing.T) {
	w := NewWalker(Polyline{{0, 0}, {10, 0}}, 3)
	var steps int
	for {
		_, ok := w.Step()
		steps++
		if !ok {
			break
		}
		if steps > 100 {
			t.Fatalf("walker never finished")
		}
	}
	if steps != 4 { // 3,6,9,12(≥10 → done)
		t.Fatalf("steps = %d, want 4", steps)
	}
	if pos := w.Pos(); pos != (XY{10, 0}) {
		t.Fatalf("final Pos = %v", pos)
	}
}

func TestJitterBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p := Jitter(rng, XY{10, 10}, 2)
		if math.Abs(p.X-10) > 2 || math.Abs(p.Y-10) > 2 {
			t.Fatalf("jitter out of bounds: %v", p)
		}
	}
}

func TestDescribe(t *testing.T) {
	ds := model.NewDataset([]model.Point{
		{OID: 1, T: 0, X: 0, Y: 0},
		{OID: 2, T: 1, X: 10, Y: 5},
	})
	st := Describe(ds)
	if st.Points != 2 || st.Objects != 2 || st.Timestamps != 2 {
		t.Fatalf("Describe = %+v", st)
	}
	if st.Width != 10 || st.Height != 5 {
		t.Fatalf("Describe extent = %+v", st)
	}
	if got := Describe(model.NewDataset(nil)); got.Points != 0 || got.Width != 0 {
		t.Fatalf("empty Describe = %+v", got)
	}
}
