package storage

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestKeyCodecRoundTrip(t *testing.T) {
	cases := []struct{ t, oid int32 }{
		{0, 0}, {1, 2}, {-1, -2}, {1 << 30, -(1 << 30)},
		{math.MaxInt32, math.MinInt32}, {math.MinInt32, math.MaxInt32},
	}
	for _, c := range cases {
		k := EncodeKey(c.t, c.oid)
		gt, goid := DecodeKey(k[:])
		if gt != c.t || goid != c.oid {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", c.t, c.oid, gt, goid)
		}
	}
}

// Property: byte-wise key order equals numeric (t, oid) order.
func TestKeyOrderPreserving(t *testing.T) {
	f := func(t1, o1, t2, o2 int32) bool {
		k1 := EncodeKey(t1, o1)
		k2 := EncodeKey(t2, o2)
		cmp := bytes.Compare(k1[:], k2[:])
		var want int
		switch {
		case t1 < t2 || (t1 == t2 && o1 < o2):
			want = -1
		case t1 == t2 && o1 == o2:
			want = 0
		default:
			want = 1
		}
		return cmp == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	f := func(x, y float64) bool {
		v := EncodeValue(x, y)
		gx, gy := DecodeValue(v[:])
		// NaN compares unequal to itself; compare bit patterns instead.
		return math.Float64bits(gx) == math.Float64bits(x) &&
			math.Float64bits(gy) == math.Float64bits(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIOStats(t *testing.T) {
	var s IOStats
	s.AddScan(10)
	s.AddPointQueries(5, 3)
	s.AddScanned(12)
	s.AddBytes(100)
	s.AddSeeks(2)
	snap := s.Snapshot()
	if snap.SnapshotScans != 1 || snap.PointsRead != 13 || snap.PointQueries != 5 ||
		snap.PointsScanned != 12 || snap.BytesRead != 100 || snap.Seeks != 2 {
		t.Fatalf("stats snapshot wrong: %+v", snap)
	}
	s.Reset()
	if s.Snapshot() != (IOStats{}) {
		t.Fatalf("reset should zero stats")
	}
}

func TestMemStore(t *testing.T) {
	ds := model.NewDataset([]model.Point{
		{OID: 1, T: 0, X: 1, Y: 1},
		{OID: 2, T: 0, X: 2, Y: 2},
		{OID: 1, T: 1, X: 3, Y: 3},
	})
	ms := NewMemStore(ds)
	ts, te := ms.TimeRange()
	if ts != 0 || te != 1 {
		t.Fatalf("TimeRange = [%d,%d]", ts, te)
	}
	snap, err := ms.Snapshot(0)
	if err != nil || len(snap) != 2 {
		t.Fatalf("Snapshot = %v, %v", snap, err)
	}
	rows, err := ms.Fetch(1, model.NewObjSet(1, 2))
	if err != nil || len(rows) != 1 || rows[0].OID != 1 {
		t.Fatalf("Fetch = %v, %v", rows, err)
	}
	st := ms.Stats().Snapshot()
	if st.SnapshotScans != 1 || st.PointQueries != 2 || st.PointsRead != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if ms.Close() != nil {
		t.Fatalf("Close should be nil")
	}
	if ms.Dataset() != ds {
		t.Fatalf("Dataset accessor wrong")
	}
}

// Interface conformance.
var _ Store = (*MemStore)(nil)
