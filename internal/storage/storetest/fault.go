package storetest

import (
	"errors"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/storage"
)

// ErrInjected is the error FaultStore returns once its budget is exhausted.
var ErrInjected = errors.New("storetest: injected storage fault")

// FaultStore wraps a Store and starts failing after a fixed number of
// operations, for exercising error paths in the miners: every snapshot or
// fetch beyond the budget returns ErrInjected.
type FaultStore struct {
	Inner storage.Store
	// FailAfter is the number of successful operations allowed.
	FailAfter int64
	ops       int64
}

// NewFaultStore wraps inner, allowing failAfter successful reads.
func NewFaultStore(inner storage.Store, failAfter int64) *FaultStore {
	return &FaultStore{Inner: inner, FailAfter: failAfter}
}

func (f *FaultStore) tick() error {
	if atomic.AddInt64(&f.ops, 1) > f.FailAfter {
		return ErrInjected
	}
	return nil
}

// TimeRange implements storage.Store (never fails: metadata is cached).
func (f *FaultStore) TimeRange() (int32, int32) { return f.Inner.TimeRange() }

// Snapshot implements storage.Store.
func (f *FaultStore) Snapshot(t int32) ([]model.ObjPos, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.Inner.Snapshot(t)
}

// Fetch implements storage.Store.
func (f *FaultStore) Fetch(t int32, oids model.ObjSet) ([]model.ObjPos, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.Inner.Fetch(t, oids)
}

// Stats implements storage.Store.
func (f *FaultStore) Stats() *storage.IOStats { return f.Inner.Stats() }

// Close implements storage.Store.
func (f *FaultStore) Close() error { return f.Inner.Close() }

// Ops returns the number of operations attempted so far.
func (f *FaultStore) Ops() int64 { return atomic.LoadInt64(&f.ops) }
