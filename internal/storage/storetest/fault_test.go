package storetest

import (
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

var _ storage.Store = (*FaultStore)(nil)

func TestFaultStoreBudget(t *testing.T) {
	ds := RandomDataset(1, 5, 5, 1.0)
	fs := NewFaultStore(storage.NewMemStore(ds), 2)

	if _, err := fs.Snapshot(0); err != nil {
		t.Fatalf("op 1 should succeed: %v", err)
	}
	if _, err := fs.Fetch(1, model.NewObjSet(0)); err != nil {
		t.Fatalf("op 2 should succeed: %v", err)
	}
	if _, err := fs.Snapshot(2); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 3 should fail: %v", err)
	}
	if _, err := fs.Fetch(3, model.NewObjSet(0)); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 4 should fail: %v", err)
	}
	if fs.Ops() != 4 {
		t.Fatalf("Ops = %d, want 4", fs.Ops())
	}
	// Metadata and stats never fail.
	if ts, te := fs.TimeRange(); te < ts {
		t.Fatalf("TimeRange should pass through")
	}
	if fs.Stats() == nil {
		t.Fatalf("Stats should pass through")
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
