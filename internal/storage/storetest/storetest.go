// Package storetest provides a reusable conformance suite that every
// storage.Store implementation must pass: snapshots, fetches and time
// ranges must agree with the in-memory dataset the store was loaded from,
// across deterministic random workloads.
package storetest

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// RandomDataset builds a deterministic random dataset with nObj objects over
// nTicks ticks; each object is present at each tick with probability
// presence.
func RandomDataset(seed int64, nObj, nTicks int, presence float64) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	var pts []model.Point
	for oid := 0; oid < nObj; oid++ {
		for t := 0; t < nTicks; t++ {
			if rng.Float64() > presence {
				continue
			}
			pts = append(pts, model.Point{
				OID: int32(oid),
				T:   int32(t),
				X:   rng.Float64() * 100,
				Y:   rng.Float64() * 100,
			})
		}
	}
	return model.NewDataset(pts)
}

// Run exercises store against the dataset it was loaded with.
func Run(t *testing.T, store storage.Store, ds *model.Dataset) {
	t.Helper()
	wantTs, wantTe := ds.TimeRange()
	gotTs, gotTe := store.TimeRange()
	if gotTs != wantTs || gotTe != wantTe {
		t.Fatalf("TimeRange = [%d,%d], want [%d,%d]", gotTs, gotTe, wantTs, wantTe)
	}

	// Every snapshot matches, including boundaries and out-of-range ticks.
	for tt := wantTs - 1; tt <= wantTe+1; tt++ {
		want := ds.Snapshot(tt)
		got, err := store.Snapshot(tt)
		if err != nil {
			t.Fatalf("Snapshot(%d): %v", tt, err)
		}
		if !objPosEqual(got, want) {
			t.Fatalf("Snapshot(%d) = %d rows, want %d rows\n got %v\nwant %v",
				tt, len(got), len(want), got, want)
		}
	}

	// Random fetches match, mixing present and absent objects and ticks.
	rng := rand.New(rand.NewSource(99))
	allObjs := ds.Objects()
	for trial := 0; trial < 50; trial++ {
		tt := wantTs + int32(rng.Intn(int(wantTe-wantTs)+3)) - 1
		var ids []int32
		for len(ids) < rng.Intn(8)+1 {
			if len(allObjs) > 0 && rng.Intn(3) > 0 {
				ids = append(ids, allObjs[rng.Intn(len(allObjs))])
			} else {
				ids = append(ids, int32(rng.Intn(1000)+5000)) // absent
			}
		}
		oids := model.NewObjSet(ids...)
		want := ds.Fetch(tt, oids)
		got, err := store.Fetch(tt, oids)
		if err != nil {
			t.Fatalf("Fetch(%d, %v): %v", tt, oids, err)
		}
		if !objPosEqual(got, want) {
			t.Fatalf("Fetch(%d, %v) = %v, want %v", tt, oids, got, want)
		}
	}

	// Empty fetch is a no-op.
	if rows, err := store.Fetch(wantTs, nil); err != nil || len(rows) != 0 {
		t.Fatalf("empty Fetch = %v, %v", rows, err)
	}

	if store.Stats() == nil {
		t.Fatalf("Stats must not be nil")
	}
}

func objPosEqual(a, b []model.ObjPos) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
