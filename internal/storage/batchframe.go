package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/model"
)

// The K2BI batch frame is the binary ingest wire format of convoyd: one
// frame carries every position snapshot of one feed at one timestamp, so a
// client streaming a city tick sends one frame instead of thousands of JSON
// position objects. It follows the house codec idiom of K2CL and the
// flat-file store — magic + version header, little-endian fixed-width
// scalars — extended with a varint payload length (frames are
// self-delimiting, so any number of them concatenate on one connection)
// and a CRC32 trailer (ingest crosses untrusted networks; the convoy log
// never leaves the machine).
//
// Frame layout:
//
//	off  size  field
//	0    4     magic "K2BI"
//	4    1     version (1)
//	5    ≤10   payload length L (uvarint)
//	·    L     payload:
//	             t  i32 LE                     (4 bytes)
//	             n  (uvarint)                  count of positions
//	             n × (oid i32 LE | x f64 LE | y f64 LE)   20 bytes each
//	·    4     CRC32 (IEEE) of every preceding frame byte, LE
//
// The payload length is redundant with the position count; the decoder
// checks they agree, so a corrupt varint is caught structurally even before
// the CRC comparison.
const (
	batchFrameMagic   = "K2BI"
	batchFrameVersion = 1
	// batchPosSize is the encoded size of one position record.
	batchPosSize = 20
	// MaxBatchFramePositions caps the position count one frame may carry
	// (and therefore what a decoder will allocate for), so a corrupt or
	// hostile count cannot demand gigabytes.
	MaxBatchFramePositions = 1 << 22
	// maxBatchPayload is the largest payload MaxBatchFramePositions allows.
	maxBatchPayload = 4 + binary.MaxVarintLen64 + batchPosSize*MaxBatchFramePositions
)

// ErrBadFrame tags every decoder failure that means "these bytes are not a
// well-formed K2BI frame" — bad magic, unsupported version, implausible or
// inconsistent lengths, CRC mismatch. Truncation is not tagged: a frame cut
// short by a closed connection is io.ErrUnexpectedEOF, and a clean end of
// stream between frames is io.EOF.
var ErrBadFrame = errors.New("batchframe: invalid frame")

// AppendBatchFrame appends one encoded frame for timestamp t to dst and
// returns the extended slice. Encoding is infallible except for an
// oversized batch; callers stream multiple ticks by appending multiple
// frames to one buffer.
func AppendBatchFrame(dst []byte, t int32, pos []model.ObjPos) ([]byte, error) {
	if len(pos) > MaxBatchFramePositions {
		return dst, fmt.Errorf("batchframe: %d positions exceed the frame cap %d", len(pos), MaxBatchFramePositions)
	}
	base := len(dst)
	dst = append(dst, batchFrameMagic...)
	dst = append(dst, batchFrameVersion)
	payload := 4 + uvarintLen(uint64(len(pos))) + batchPosSize*len(pos)
	dst = binary.AppendUvarint(dst, uint64(payload))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(t))
	dst = binary.AppendUvarint(dst, uint64(len(pos)))
	for _, p := range pos {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.OID))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.X))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Y))
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[base:])), nil
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// BatchFrameReader decodes a sequence of K2BI frames from a stream. It is
// allocation-free in steady state: the frame buffer is reused across Next
// calls and position storage comes from the caller (grow once, reuse
// forever), mirroring how ScanConvoyLogFrom reuses its record buffers.
type BatchFrameReader struct {
	r   *bufio.Reader
	buf []byte // reused header+payload bytes of the frame being decoded
}

// NewBatchFrameReader wraps r for frame decoding. The reader buffers
// internally; do not read from r directly between Next calls.
func NewBatchFrameReader(r io.Reader) *BatchFrameReader {
	return &BatchFrameReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Reset redirects the reader to a new stream, keeping its internal buffers.
func (d *BatchFrameReader) Reset(r io.Reader) {
	d.r.Reset(r)
}

// Next decodes one frame. Positions are appended to pos (pass buf[:0] to
// reuse a buffer across calls; the returned slice aliases it) and the
// frame's timestamp is returned. io.EOF marks the clean end of the stream
// — a boundary between frames; a stream ending inside a frame is
// io.ErrUnexpectedEOF, and structurally invalid bytes fail with an error
// wrapping ErrBadFrame.
func (d *BatchFrameReader) Next(pos []model.ObjPos) (t int32, out []model.ObjPos, err error) {
	// Header: magic, version, payload-length varint. Every consumed byte is
	// kept in d.buf because the CRC covers the whole frame.
	d.buf = d.buf[:0]
	hdr := d.buf[0:0]
	for len(hdr) < len(batchFrameMagic)+1 {
		b, err := d.r.ReadByte()
		if err != nil {
			if err == io.EOF && len(hdr) == 0 {
				return 0, pos, io.EOF // clean boundary: no frame started
			}
			return 0, pos, truncated(err)
		}
		hdr = append(hdr, b)
	}
	if string(hdr[:4]) != batchFrameMagic {
		return 0, pos, fmt.Errorf("%w: bad magic %q", ErrBadFrame, hdr[:4])
	}
	if hdr[4] != batchFrameVersion {
		return 0, pos, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, hdr[4])
	}
	payloadLen, hdr, err := readUvarint(d.r, hdr)
	if err != nil {
		return 0, pos, err
	}
	if payloadLen > maxBatchPayload {
		return 0, pos, fmt.Errorf("%w: implausible payload length %d", ErrBadFrame, payloadLen)
	}
	if payloadLen < 5 { // t (4) plus at least one count byte
		return 0, pos, fmt.Errorf("%w: payload length %d too short", ErrBadFrame, payloadLen)
	}
	// Payload, read in one ReadFull into the reused buffer. The buffer is
	// sized with 4 spare bytes so the CRC trailer can land in it too — a
	// stack [4]byte would escape through io.ReadFull's interface argument
	// and cost one heap allocation per frame.
	need := len(hdr) + int(payloadLen)
	if cap(d.buf) < need+4 {
		d.buf = append(make([]byte, 0, need+4), hdr...)
	} else {
		d.buf = d.buf[:len(hdr)]
	}
	d.buf = d.buf[:need]
	payload := d.buf[len(hdr):]
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return 0, pos, truncated(err)
	}
	t = int32(binary.LittleEndian.Uint32(payload[:4]))
	n, vn := binary.Uvarint(payload[4:])
	if vn <= 0 || n > MaxBatchFramePositions {
		return 0, pos, fmt.Errorf("%w: bad position count", ErrBadFrame)
	}
	if int(payloadLen) != 4+vn+batchPosSize*int(n) {
		return 0, pos, fmt.Errorf("%w: payload length %d does not match %d positions", ErrBadFrame, payloadLen, n)
	}
	// CRC trailer, covering header+payload (everything in d.buf so far).
	// The checksum is computed before the trailer shares the buffer.
	got := crc32.ChecksumIEEE(d.buf)
	trailer := d.buf[need : need+4]
	if _, err := io.ReadFull(d.r, trailer); err != nil {
		return 0, pos, truncated(err)
	}
	if want := binary.LittleEndian.Uint32(trailer); got != want {
		return 0, pos, fmt.Errorf("%w: CRC mismatch (computed %08x, stored %08x)", ErrBadFrame, got, want)
	}
	recs := payload[4+vn:]
	for i := 0; i < int(n); i++ {
		rec := recs[batchPosSize*i:]
		pos = append(pos, model.ObjPos{
			OID: int32(binary.LittleEndian.Uint32(rec[0:4])),
			X:   math.Float64frombits(binary.LittleEndian.Uint64(rec[4:12])),
			Y:   math.Float64frombits(binary.LittleEndian.Uint64(rec[12:20])),
		})
	}
	return t, pos, nil
}

// readUvarint reads a uvarint byte-at-a-time, appending consumed bytes to
// raw (they are part of the CRC-covered frame prefix).
func readUvarint(r *bufio.Reader, raw []byte) (uint64, []byte, error) {
	var v uint64
	for shift := 0; ; shift += 7 {
		if shift >= 64 {
			return 0, raw, fmt.Errorf("%w: varint overflow", ErrBadFrame)
		}
		b, err := r.ReadByte()
		if err != nil {
			return 0, raw, truncated(err)
		}
		raw = append(raw, b)
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, raw, nil
		}
	}
}
