package flatfile

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

func writeTemp(t *testing.T, ds *model.Dataset) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.k2f")
	if err := WriteDataset(path, ds); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
	return path
}

func TestConformance(t *testing.T) {
	ds := storetest.RandomDataset(1, 40, 30, 0.8)
	s, err := Open(writeTemp(t, ds))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	storetest.Run(t, s, ds)
}

func TestConformanceSparse(t *testing.T) {
	ds := storetest.RandomDataset(2, 10, 50, 0.2)
	s, err := Open(writeTemp(t, ds))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	storetest.Run(t, s, ds)
}

func TestLoadRoundTrip(t *testing.T) {
	ds := storetest.RandomDataset(3, 20, 20, 0.9)
	s, err := Open(writeTemp(t, ds))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	got, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.NumPoints() != ds.NumPoints() {
		t.Fatalf("Load points = %d, want %d", got.NumPoints(), ds.NumPoints())
	}
	gp, wp := got.Points(), ds.Points()
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("point %d = %v, want %v", i, gp[i], wp[i])
		}
	}
	if s.Count() != int64(ds.NumPoints()) {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestOutOfOrderAppendRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.k2f")
	w, err := Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := w.Append(model.Point{OID: 5, T: 3}); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := w.Append(model.Point{OID: 4, T: 3}); err == nil {
		t.Fatalf("out-of-order append should fail")
	}
	if err := w.Append(model.Point{OID: 5, T: 3}); err == nil {
		t.Fatalf("duplicate append should fail")
	}
	w.Close()
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage")
	if err := writeFile(path, []byte("this is not a flat file at all......")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatalf("Open of garbage should fail")
	}
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatalf("Open of missing file should fail")
	}
}

func TestEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.k2f")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open empty: %v", err)
	}
	defer s.Close()
	// Header of an empty file has ts=0, te=0 with count=0; Snapshot must not
	// explode.
	if snap, err := s.Snapshot(0); err != nil || len(snap) != 0 {
		t.Fatalf("Snapshot on empty = %v, %v", snap, err)
	}
}

func TestStatsAccounting(t *testing.T) {
	ds := storetest.RandomDataset(4, 30, 10, 1.0)
	s, err := Open(writeTemp(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Snapshot(5); err != nil {
		t.Fatal(err)
	}
	st := s.Stats().Snapshot()
	if st.SnapshotScans != 1 || st.PointsRead != 30 || st.BytesRead == 0 {
		t.Fatalf("scan stats wrong: %+v", st)
	}
	s.Stats().Reset()
	if _, err := s.Fetch(5, model.NewObjSet(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	st = s.Stats().Snapshot()
	if st.PointQueries != 3 || st.PointsRead != 3 || st.Seeks == 0 {
		t.Fatalf("fetch stats wrong: %+v", st)
	}
}

var _ storage.Store = (*Store)(nil)

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
