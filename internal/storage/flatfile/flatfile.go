// Package flatfile implements the paper's k2-File storage variant: the
// dataset is one binary file of fixed-size records sorted by (t, oid).
//
// Flat files are good at sequential scans but have no index, so a snapshot
// read locates the timestamp via binary search over record offsets (cheap)
// while a Fetch of scattered (t, oid) pairs still has to binary-search per
// object — the access pattern the paper identifies as the reason k2-File
// loses to the indexed engines on large data.
//
// File layout:
//
//	header:  magic "K2FF" | version u32 | count u64 | ts i32 | te i32
//	records: count × (key[8] | value[16])   sorted ascending by key
package flatfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/model"
	"repro/internal/storage"
)

const (
	magic      = "K2FF"
	version    = 1
	headerSize = 4 + 4 + 8 + 4 + 4
)

// Writer writes a flat file. Points must be appended in (t, oid) order.
type Writer struct {
	f       *os.File
	w       *bufio.Writer
	count   uint64
	ts, te  int32
	lastKey [storage.KeySize]byte
	started bool
}

// Create opens path for writing and reserves the header.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("flatfile: create: %w", err)
	}
	w := &Writer{f: f, w: bufio.NewWriterSize(f, 1<<20)}
	if _, err := w.w.Write(make([]byte, headerSize)); err != nil {
		f.Close()
		return nil, fmt.Errorf("flatfile: reserve header: %w", err)
	}
	return w, nil
}

// Append adds one point. Points must arrive in strictly increasing (t, oid)
// order.
func (w *Writer) Append(p model.Point) error {
	key := storage.EncodeKey(p.T, p.OID)
	if w.started && bytesCompare(key[:], w.lastKey[:]) <= 0 {
		return fmt.Errorf("flatfile: out-of-order append at t=%d oid=%d", p.T, p.OID)
	}
	if !w.started {
		w.ts = p.T
		w.started = true
	}
	w.te = p.T
	w.lastKey = key
	val := storage.EncodeValue(p.X, p.Y)
	if _, err := w.w.Write(key[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(val[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// AppendDataset writes every point of ds in (t, oid) order.
func (w *Writer) AppendDataset(ds *model.Dataset) error {
	for _, p := range ds.Points() {
		if err := w.Append(p); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes data, rewrites the header and closes the file.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], w.count)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(w.ts))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(w.te))
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Store reads a flat file and implements storage.Store.
type Store struct {
	f      *os.File
	count  int64
	ts, te int32
	stats  storage.IOStats
}

// Open opens an existing flat file.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flatfile: open: %w", err)
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("flatfile: read header: %w", err)
	}
	if string(hdr[0:4]) != magic {
		f.Close()
		return nil, errors.New("flatfile: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != version {
		f.Close()
		return nil, fmt.Errorf("flatfile: unsupported version %d", v)
	}
	s := &Store{
		f:     f,
		count: int64(binary.LittleEndian.Uint64(hdr[8:16])),
		ts:    int32(binary.LittleEndian.Uint32(hdr[16:20])),
		te:    int32(binary.LittleEndian.Uint32(hdr[20:24])),
	}
	return s, nil
}

// WriteDataset is a convenience that serialises ds into a new flat file.
func WriteDataset(path string, ds *model.Dataset) error {
	w, err := Create(path)
	if err != nil {
		return err
	}
	if err := w.AppendDataset(ds); err != nil {
		w.f.Close()
		return err
	}
	return w.Close()
}

// TimeRange implements storage.Store.
func (s *Store) TimeRange() (int32, int32) { return s.ts, s.te }

// Stats implements storage.Store.
func (s *Store) Stats() *storage.IOStats { return &s.stats }

// Close implements storage.Store.
func (s *Store) Close() error { return s.f.Close() }

// Count returns the number of records in the file.
func (s *Store) Count() int64 { return s.count }

// readRecord reads record i into buf (RecordSize bytes).
func (s *Store) readRecord(i int64, buf []byte) error {
	off := int64(headerSize) + i*storage.RecordSize
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("flatfile: read record %d: %w", i, err)
	}
	s.stats.AddBytes(len(buf))
	return nil
}

// lowerBound returns the index of the first record with key ≥ target.
// Each probe is one seek + one small read.
func (s *Store) lowerBound(target [storage.KeySize]byte) (int64, error) {
	lo, hi := int64(0), s.count
	var buf [storage.KeySize]byte
	for lo < hi {
		mid := (lo + hi) / 2
		off := int64(headerSize) + mid*storage.RecordSize
		if _, err := s.f.ReadAt(buf[:], off); err != nil {
			return 0, err
		}
		s.stats.AddSeeks(1)
		s.stats.AddBytes(storage.KeySize)
		if bytesCompare(buf[:], target[:]) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Snapshot implements storage.Store: one binary search then a sequential
// scan of the timestamp's contiguous records.
func (s *Store) Snapshot(t int32) ([]model.ObjPos, error) {
	if t < s.ts || t > s.te {
		return nil, nil
	}
	start, err := s.lowerBound(storage.EncodeKey(t, -1<<31))
	if err != nil {
		return nil, err
	}
	s.stats.AddSeeks(1)
	var out []model.ObjPos
	buf := make([]byte, storage.RecordSize*256) // read in record batches
	for i := start; i < s.count; {
		n := int64(256)
		if i+n > s.count {
			n = s.count - i
		}
		chunk := buf[:n*storage.RecordSize]
		if _, err := s.f.ReadAt(chunk, int64(headerSize)+i*storage.RecordSize); err != nil {
			return nil, err
		}
		s.stats.AddBytes(len(chunk))
		for r := int64(0); r < n; r++ {
			rec := chunk[r*storage.RecordSize:]
			kt, oid := storage.DecodeKey(rec[:storage.KeySize])
			s.stats.AddScanned(1)
			if kt != t {
				s.stats.AddScan(len(out))
				return out, nil
			}
			x, y := storage.DecodeValue(rec[storage.KeySize:storage.RecordSize])
			out = append(out, model.ObjPos{OID: oid, X: x, Y: y})
		}
		i += n
	}
	s.stats.AddScan(len(out))
	return out, nil
}

// Fetch implements storage.Store: one binary search per requested object.
// This is the flat file's weakness — there is no secondary structure, so
// every point lookup costs O(log n) seeks.
func (s *Store) Fetch(t int32, oids model.ObjSet) ([]model.ObjPos, error) {
	if t < s.ts || t > s.te || len(oids) == 0 {
		return nil, nil
	}
	out := make([]model.ObjPos, 0, len(oids))
	var rec [storage.RecordSize]byte
	for _, oid := range oids {
		idx, err := s.lowerBound(storage.EncodeKey(t, oid))
		if err != nil {
			return nil, err
		}
		if idx >= s.count {
			continue
		}
		if err := s.readRecord(idx, rec[:]); err != nil {
			return nil, err
		}
		s.stats.AddSeeks(1)
		s.stats.AddScanned(1)
		kt, koid := storage.DecodeKey(rec[:storage.KeySize])
		if kt != t || koid != oid {
			continue
		}
		x, y := storage.DecodeValue(rec[storage.KeySize:])
		out = append(out, model.ObjPos{OID: oid, X: x, Y: y})
	}
	s.stats.AddPointQueries(len(oids), len(out))
	return out, nil
}

// Load reads the entire file back into an in-memory dataset, mirroring how
// the paper's k2-File variant mines small datasets entirely in memory.
func (s *Store) Load() (*model.Dataset, error) {
	pts := make([]model.Point, 0, s.count)
	r := bufio.NewReaderSize(io.NewSectionReader(s.f, headerSize, s.count*storage.RecordSize), 1<<20)
	var rec [storage.RecordSize]byte
	for i := int64(0); i < s.count; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("flatfile: load: %w", err)
		}
		t, oid := storage.DecodeKey(rec[:storage.KeySize])
		x, y := storage.DecodeValue(rec[storage.KeySize:])
		pts = append(pts, model.Point{OID: oid, T: t, X: x, Y: y})
	}
	s.stats.AddBytes(int(s.count) * storage.RecordSize)
	s.stats.AddScanned(int(s.count))
	s.stats.AddSeeks(1)
	return model.NewDataset(pts), nil
}

func bytesCompare(a, b []byte) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}
