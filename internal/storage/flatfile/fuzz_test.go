package flatfile

import (
	"encoding/binary"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// FuzzFlatFileRoundTrip decodes arbitrary bytes into a point set, writes it
// through the flat-file codec, reads it back three ways (Load, Snapshot,
// Fetch) and requires exact equality with the in-memory dataset. It also
// cross-checks the key codec: DecodeKey∘EncodeKey is the identity and the
// byte order of encoded keys equals the numeric order of (t, oid) — the
// property binary search on the file relies on.
//
// Input encoding: 8-byte chunks → t i16 (clamped to a small range so
// snapshots overlap), oid i16, x i16, y i16, all little-endian.
func FuzzFlatFileRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 10, 0, 20, 0})
	f.Add([]byte{
		0, 0, 1, 0, 10, 0, 20, 0,
		0, 0, 2, 0, 11, 0, 21, 0,
		1, 0, 1, 0, 12, 0, 22, 0,
		255, 255, 255, 255, 255, 255, 255, 255,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxPoints = 512
		var pts []model.Point
		for i := 0; i+8 <= len(data) && len(pts) < maxPoints; i += 8 {
			pts = append(pts, model.Point{
				T:   int32(int16(binary.LittleEndian.Uint16(data[i:]))) % 50,
				OID: int32(int16(binary.LittleEndian.Uint16(data[i+2:]))),
				X:   float64(int16(binary.LittleEndian.Uint16(data[i+4:]))),
				Y:   float64(int16(binary.LittleEndian.Uint16(data[i+6:]))),
			})
		}
		ds := model.NewDataset(pts) // canonical: sorted by (t, oid), deduped

		// Key codec: identity and order preservation.
		for _, p := range pts {
			k := storage.EncodeKey(p.T, p.OID)
			dt, doid := storage.DecodeKey(k[:])
			if dt != p.T || doid != p.OID {
				t.Fatalf("DecodeKey(EncodeKey(%d,%d)) = (%d,%d)", p.T, p.OID, dt, doid)
			}
		}
		for i := 1; i < len(pts); i++ {
			a, b := pts[i-1], pts[i]
			ka, kb := storage.EncodeKey(a.T, a.OID), storage.EncodeKey(b.T, b.OID)
			numLess := a.T < b.T || (a.T == b.T && a.OID < b.OID)
			bytesLess := string(ka[:]) < string(kb[:])
			numEq := a.T == b.T && a.OID == b.OID
			if !numEq && numLess != bytesLess {
				t.Fatalf("key order mismatch: (%d,%d) vs (%d,%d): numeric %v, bytes %v",
					a.T, a.OID, b.T, b.OID, numLess, bytesLess)
			}
		}

		path := filepath.Join(t.TempDir(), "fuzz.k2f")
		if err := WriteDataset(path, ds); err != nil {
			t.Fatalf("write: %v", err)
		}
		fs, err := Open(path)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer fs.Close()

		if int(fs.Count()) != ds.NumPoints() {
			t.Fatalf("count = %d, want %d", fs.Count(), ds.NumPoints())
		}
		wantTs, wantTe := ds.TimeRange()
		gotTs, gotTe := fs.TimeRange()
		if ds.NumPoints() > 0 && (gotTs != wantTs || gotTe != wantTe) {
			t.Fatalf("time range [%d,%d], want [%d,%d]", gotTs, gotTe, wantTs, wantTe)
		}

		// Full round-trip through Load.
		back, err := fs.Load()
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		wantPts, gotPts := ds.Points(), back.Points()
		if len(wantPts) != len(gotPts) {
			t.Fatalf("round-trip point count %d, want %d", len(gotPts), len(wantPts))
		}
		for i := range wantPts {
			if wantPts[i] != gotPts[i] {
				t.Fatalf("point %d: %+v, want %+v", i, gotPts[i], wantPts[i])
			}
		}

		// Per-snapshot scan path and point-query path.
		for tt := wantTs; tt <= wantTe; tt++ {
			want := ds.Snapshot(tt)
			got, err := fs.Snapshot(tt)
			if err != nil {
				t.Fatalf("snapshot %d: %v", tt, err)
			}
			if len(want) != len(got) {
				t.Fatalf("snapshot %d: %d rows, want %d", tt, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("snapshot %d row %d: %+v, want %+v", tt, i, got[i], want[i])
				}
			}
			if len(want) > 0 {
				oids := model.NewObjSet(want[0].OID, want[len(want)/2].OID)
				hits, err := fs.Fetch(tt, oids)
				if err != nil {
					t.Fatalf("fetch %d: %v", tt, err)
				}
				if len(hits) != len(oids) {
					t.Fatalf("fetch %d %v: %d hits", tt, oids, len(hits))
				}
			}
		}
	})
}
