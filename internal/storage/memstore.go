package storage

import "repro/internal/model"

// MemStore adapts an in-memory model.Dataset to the Store interface. It is
// the backing store for unit tests, for the sequential baselines, and for
// the paper's "data fits in memory" scenarios.
type MemStore struct {
	ds    *model.Dataset
	stats IOStats
}

// NewMemStore wraps an existing dataset. The dataset is shared, not copied.
func NewMemStore(ds *model.Dataset) *MemStore { return &MemStore{ds: ds} }

// TimeRange implements Store.
func (m *MemStore) TimeRange() (int32, int32) { return m.ds.TimeRange() }

// Snapshot implements Store.
func (m *MemStore) Snapshot(t int32) ([]model.ObjPos, error) {
	snap := m.ds.Snapshot(t)
	m.stats.AddScan(len(snap))
	m.stats.AddScanned(len(snap))
	return snap, nil
}

// Fetch implements Store.
func (m *MemStore) Fetch(t int32, oids model.ObjSet) ([]model.ObjPos, error) {
	rows := m.ds.Fetch(t, oids)
	m.stats.AddPointQueries(len(oids), len(rows))
	m.stats.AddScanned(len(rows))
	return rows, nil
}

// Stats implements Store.
func (m *MemStore) Stats() *IOStats { return &m.stats }

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// Dataset returns the wrapped dataset.
func (m *MemStore) Dataset() *model.Dataset { return m.ds }
