// Package storage defines the persistent-storage abstraction of the paper's
// §5 together with I/O accounting. k/2-hop has two access paths:
//
//  1. full snapshot scans at benchmark points (range scan by timestamp), and
//  2. point queries by (timestamp, oid) inside hop-windows.
//
// Three engines implement the interface, mirroring the paper's k2-File,
// k2-RDBMS and k2-LSMT variants:
//
//   - storage/flatfile: a sorted binary file, scans only (point queries
//     degrade to partial scans) — fast when the data fits in memory;
//   - storage/relational: slotted heap pages with a clustered B+tree on
//     (t, oid);
//   - storage/lsm: a log-structured merge-tree keyed by (t, oid).
//
// The in-memory Store in this package backs unit tests and the sequential
// baselines, which always read whole snapshots anyway.
package storage

import (
	"encoding/binary"
	"math"
	"sync/atomic"

	"repro/internal/model"
)

// Store is the reader interface every convoy miner consumes.
//
// Implementations must tolerate concurrent Snapshot/Fetch/TimeRange/Stats
// calls: the parallel mining engine fans reads out over a worker pool
// (one worker per core by default), so a store written for sequential
// access must serialise internally (as the bundled B+tree and LSM engines
// do) or use positioned reads (as the flat file does).
type Store interface {
	// TimeRange returns the inclusive [Ts, Te] tick range of the dataset.
	TimeRange() (ts, te int32)
	// Snapshot returns all objects present at tick t, sorted by OID.
	Snapshot(t int32) ([]model.ObjPos, error)
	// Fetch returns the positions of the requested objects at tick t (in
	// OID order), omitting objects absent at t.
	Fetch(t int32, oids model.ObjSet) ([]model.ObjPos, error)
	// Stats exposes the store's I/O counters.
	Stats() *IOStats
	// Close releases resources held by the store.
	Close() error
}

// IOStats counts the logical and physical I/O a store performed. All fields
// are updated atomically so parallel miners can share one store.
type IOStats struct {
	SnapshotScans int64 // full-snapshot range scans
	PointQueries  int64 // point lookups by (t, oid)
	PointsRead    int64 // points returned to the caller
	PointsScanned int64 // points physically touched (≥ PointsRead)
	BytesRead     int64 // bytes read from the underlying medium
	Seeks         int64 // distinct positioning operations
}

// AddScan records one snapshot scan touching n points.
func (s *IOStats) AddScan(n int) {
	atomic.AddInt64(&s.SnapshotScans, 1)
	atomic.AddInt64(&s.PointsRead, int64(n))
}

// AddPointQueries records n point queries returning hits results.
func (s *IOStats) AddPointQueries(n, hits int) {
	atomic.AddInt64(&s.PointQueries, int64(n))
	atomic.AddInt64(&s.PointsRead, int64(hits))
}

// AddScanned records n physically touched points.
func (s *IOStats) AddScanned(n int) { atomic.AddInt64(&s.PointsScanned, int64(n)) }

// AddBytes records b bytes read from the medium.
func (s *IOStats) AddBytes(b int) { atomic.AddInt64(&s.BytesRead, int64(b)) }

// AddSeeks records n positioning operations.
func (s *IOStats) AddSeeks(n int) { atomic.AddInt64(&s.Seeks, int64(n)) }

// Snapshot returns a consistent copy of the counters.
func (s *IOStats) Snapshot() IOStats {
	return IOStats{
		SnapshotScans: atomic.LoadInt64(&s.SnapshotScans),
		PointQueries:  atomic.LoadInt64(&s.PointQueries),
		PointsRead:    atomic.LoadInt64(&s.PointsRead),
		PointsScanned: atomic.LoadInt64(&s.PointsScanned),
		BytesRead:     atomic.LoadInt64(&s.BytesRead),
		Seeks:         atomic.LoadInt64(&s.Seeks),
	}
}

// Reset zeroes all counters.
func (s *IOStats) Reset() {
	atomic.StoreInt64(&s.SnapshotScans, 0)
	atomic.StoreInt64(&s.PointQueries, 0)
	atomic.StoreInt64(&s.PointsRead, 0)
	atomic.StoreInt64(&s.PointsScanned, 0)
	atomic.StoreInt64(&s.BytesRead, 0)
	atomic.StoreInt64(&s.Seeks, 0)
}

// --- Key/value codec shared by the disk engines -------------------------

// KeySize and ValueSize are the fixed on-disk record sizes: the key is the
// order-preserving big-endian encoding of (t, oid) and the value is the
// little-endian (x, y) pair.
const (
	KeySize    = 8
	ValueSize  = 16
	RecordSize = KeySize + ValueSize
)

// EncodeKey encodes (t, oid) into an 8-byte key whose lexicographic order
// equals the numeric order of (t, oid), including negative values.
func EncodeKey(t, oid int32) [KeySize]byte {
	var k [KeySize]byte
	binary.BigEndian.PutUint32(k[0:4], uint32(t)^0x80000000)
	binary.BigEndian.PutUint32(k[4:8], uint32(oid)^0x80000000)
	return k
}

// DecodeKey is the inverse of EncodeKey.
func DecodeKey(k []byte) (t, oid int32) {
	t = int32(binary.BigEndian.Uint32(k[0:4]) ^ 0x80000000)
	oid = int32(binary.BigEndian.Uint32(k[4:8]) ^ 0x80000000)
	return t, oid
}

// EncodeValue encodes a coordinate pair into 16 bytes.
func EncodeValue(x, y float64) [ValueSize]byte {
	var v [ValueSize]byte
	binary.LittleEndian.PutUint64(v[0:8], math.Float64bits(x))
	binary.LittleEndian.PutUint64(v[8:16], math.Float64bits(y))
	return v
}

// DecodeValue is the inverse of EncodeValue.
func DecodeValue(v []byte) (x, y float64) {
	x = math.Float64frombits(binary.LittleEndian.Uint64(v[0:8]))
	y = math.Float64frombits(binary.LittleEndian.Uint64(v[8:16]))
	return x, y
}
