package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
)

func TestConvoyLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.k2cl")
	l, err := CreateConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []LoggedConvoy{
		{Feed: "tokyo", Convoy: model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9)},
		{Feed: "osaka", Convoy: model.NewConvoy(model.NewObjSet(7), -5, -1)},
		{Feed: "tokyo", Convoy: model.NewConvoy(nil, 3, 3)},
		{Feed: "", Convoy: model.NewConvoy(model.NewObjSet(-1, 0, 1<<30), 100, 200)},
	}
	for _, r := range want {
		if err := l.Append(r.Feed, r.Convoy); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Feed != want[i].Feed || !got[i].Convoy.Equal(want[i].Convoy) {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestConvoyLogEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.k2cl")
	l, err := CreateConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty log read %d records", len(got))
	}
}

func TestConvoyLogRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.k2cl")
	if err := os.WriteFile(bad, []byte("not a convoy log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadConvoyLog(bad); err == nil {
		t.Fatal("garbage accepted")
	}
	truncated := filepath.Join(dir, "trunc.k2cl")
	l, err := CreateConvoyLog(truncated)
	if err != nil {
		t.Fatal(err)
	}
	l.Append("feed", model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 4))
	l.Close()
	data, err := os.ReadFile(truncated)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncated, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadConvoyLog(truncated); err == nil {
		t.Fatal("truncated record accepted")
	}
}
