package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
)

func TestConvoyLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.k2cl")
	l, err := CreateConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []LoggedConvoy{
		{Feed: "tokyo", Convoy: model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9)},
		{Feed: "osaka", Convoy: model.NewConvoy(model.NewObjSet(7), -5, -1)},
		{Feed: "tokyo", Convoy: model.NewConvoy(nil, 3, 3)},
		{Feed: "", Convoy: model.NewConvoy(model.NewObjSet(-1, 0, 1<<30), 100, 200)},
	}
	for _, r := range want {
		if err := l.Append(r.Feed, r.Convoy); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Feed != want[i].Feed || !got[i].Convoy.Equal(want[i].Convoy) {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestConvoyLogEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.k2cl")
	l, err := CreateConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty log read %d records", len(got))
	}
}

// writeTestLog writes records to a fresh log at path and returns its bytes.
func writeTestLog(t *testing.T, path string, recs []LoggedConvoy) []byte {
	t.Helper()
	l, err := CreateConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r.Feed, r.Convoy); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

var tailTestRecords = []LoggedConvoy{
	{Feed: "tokyo", Convoy: model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9)},
	{Feed: "osaka", Convoy: model.NewConvoy(model.NewObjSet(7, 8), 4, 12)},
	{Feed: "kyoto", Convoy: model.NewConvoy(model.NewObjSet(5, 6, 9, 11), 2, 8)},
}

// TestScanConvoyLogPartialTail cuts a 3-record log at every byte offset
// inside the final record and checks the lenient scan returns the two
// complete records without error, while the strict reader keeps failing.
func TestScanConvoyLogPartialTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.k2cl")
	data := writeTestLog(t, full, tailTestRecords)
	twoOff, err := ScanConvoyLog(full, nil)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := int64(len(data)) - 0 // full file length
	// Find the offset where record 3 starts: scan a 2-record log.
	two := filepath.Join(dir, "two.k2cl")
	twoData := writeTestLog(t, two, tailTestRecords[:2])
	recStart := int64(len(twoData))
	if twoOff != lastLen {
		// sanity: full-log scan consumed everything
		t.Fatalf("full scan offset %d != file length %d", twoOff, lastLen)
	}
	for cut := recStart + 1; cut < int64(len(data)); cut++ {
		torn := filepath.Join(dir, "torn.k2cl")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []LoggedConvoy
		off, err := ScanConvoyLog(torn, func(r LoggedConvoy) error { got = append(got, r); return nil })
		if err != nil {
			t.Fatalf("cut at %d: scan failed: %v", cut, err)
		}
		if off != recStart {
			t.Fatalf("cut at %d: offset %d, want %d", cut, off, recStart)
		}
		if len(got) != 2 || got[0].Feed != "tokyo" || got[1].Feed != "osaka" {
			t.Fatalf("cut at %d: replayed %d records %+v, want the 2 complete ones", cut, len(got), got)
		}
		if _, err := ReadConvoyLog(torn); err == nil {
			t.Fatalf("cut at %d: strict reader accepted a torn log", cut)
		}
	}
}

// TestOpenConvoyLogRecovery opens a torn log for append: the partial tail
// must be truncated away and a subsequent append must produce a clean,
// strictly readable log.
func TestOpenConvoyLogRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "recover.k2cl")
	data := writeTestLog(t, path, tailTestRecords)
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	var replayed []LoggedConvoy
	l, err := OpenConvoyLog(path, func(r LoggedConvoy) error { replayed = append(replayed, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 {
		t.Fatalf("replayed %d records, want 2", len(replayed))
	}
	extra := LoggedConvoy{Feed: "nara", Convoy: model.NewConvoy(model.NewObjSet(42), 0, 5)}
	if err := l.Append(extra.Feed, extra.Convoy); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConvoyLog(path) // strict: recovery left no torn bytes
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]LoggedConvoy{}, tailTestRecords[:2]...), extra)
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Feed != want[i].Feed || !got[i].Convoy.Equal(want[i].Convoy) {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestOpenConvoyLogShortFile: a file shorter than the header (crash before
// the first sync) is recreated, not an error.
func TestOpenConvoyLogShortFile(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{"empty.k2cl": {}, "partialhdr.k2cl": []byte("K2C")} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenConvoyLog(path, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := l.Append("f", model.NewConvoy(model.NewObjSet(1), 0, 3)); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if got, err := ReadConvoyLog(path); err != nil || len(got) != 1 {
			t.Fatalf("%s: read %d records, err %v; want 1 record", name, len(got), err)
		}
	}
}

// TestCompactConvoyLog: duplicates and the torn tail are dropped, order and
// first occurrences survive.
func TestCompactConvoyLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.k2cl")
	recs := []LoggedConvoy{
		tailTestRecords[0],
		tailTestRecords[1],
		tailTestRecords[0], // duplicate of record 0
		tailTestRecords[2],
		tailTestRecords[1], // duplicate of record 1
	}
	data := writeTestLog(t, path, recs)
	if err := os.WriteFile(path, append(data, 0x07), 0o644); err != nil { // torn tail byte
		t.Fatal(err)
	}
	kept, dropped, err := CompactConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 3 || dropped != 2 {
		t.Fatalf("kept %d dropped %d, want 3 and 2", kept, dropped)
	}
	got, err := ReadConvoyLog(path) // strict: compaction output is clean
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("compacted log has %d records, want 3", len(got))
	}
	for i, want := range tailTestRecords {
		if got[i].Feed != want.Feed || !got[i].Convoy.Equal(want.Convoy) {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], want)
		}
	}
}

// BenchmarkConvoyLogAppend measures the persistence hot path: serialising
// and buffering one 8-object convoy record (no fsync).
func BenchmarkConvoyLogAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.k2cl")
	l, err := CreateConvoyLog(path)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	c := model.NewConvoy(model.NewObjSet(1, 2, 3, 4, 5, 6, 7, 8), 0, 99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append("bench-feed", c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvoyLogScan measures startup recovery: replaying a 10k-record
// log.
func BenchmarkConvoyLogScan(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.k2cl")
	l, err := CreateConvoyLog(path)
	if err != nil {
		b.Fatal(err)
	}
	c := model.NewConvoy(model.NewObjSet(1, 2, 3, 4, 5, 6, 7, 8), 0, 99)
	for i := 0; i < 10000; i++ {
		if err := l.Append("bench-feed", c); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := ScanConvoyLog(path, func(LoggedConvoy) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 10000 {
			b.Fatalf("scanned %d records", n)
		}
	}
}

func TestConvoyLogRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.k2cl")
	if err := os.WriteFile(bad, []byte("not a convoy log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadConvoyLog(bad); err == nil {
		t.Fatal("garbage accepted")
	}
	truncated := filepath.Join(dir, "trunc.k2cl")
	l, err := CreateConvoyLog(truncated)
	if err != nil {
		t.Fatal(err)
	}
	l.Append("feed", model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 4))
	l.Close()
	data, err := os.ReadFile(truncated)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncated, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadConvoyLog(truncated); err == nil {
		t.Fatal("truncated record accepted")
	}
}

// TestScanConvoyLogFromAndReadAt checks the positioned access paths the
// archive is built on: the offsets handed to the scan callback address
// record boundaries, resuming a scan from any of them yields exactly the
// suffix, ReadConvoyAt round-trips every record by offset, and
// ConvoyLog.Offset tracks the append position.
func TestScanConvoyLogFromAndReadAt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pos.k2cl")
	l, err := CreateConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	var appendOffs []int64
	for _, r := range tailTestRecords {
		appendOffs = append(appendOffs, l.Offset())
		if err := l.Append(r.Feed, r.Convoy); err != nil {
			t.Fatal(err)
		}
	}
	end := l.Offset()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if end != st.Size() {
		t.Fatalf("Offset() %d != file size %d", end, st.Size())
	}

	var scanOffs []int64
	off, err := ScanConvoyLogFrom(path, 0, func(off int64, rec LoggedConvoy) error {
		scanOffs = append(scanOffs, off)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if off != end {
		t.Fatalf("scan end %d, want %d", off, end)
	}
	if len(scanOffs) != len(appendOffs) {
		t.Fatalf("scanned %d records, want %d", len(scanOffs), len(appendOffs))
	}
	for i := range appendOffs {
		if scanOffs[i] != appendOffs[i] {
			t.Fatalf("record %d: scan offset %d, append offset %d", i, scanOffs[i], appendOffs[i])
		}
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, want := range tailTestRecords {
		got, err := ReadConvoyAt(f, scanOffs[i])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Feed != want.Feed || !got.Convoy.Equal(want.Convoy) {
			t.Fatalf("record %d: %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadConvoyAt(f, end); err == nil {
		t.Fatal("ReadConvoyAt past the end succeeded")
	}

	// Resume from each boundary: the scan must yield exactly the suffix.
	for i, from := range scanOffs {
		var got []LoggedConvoy
		off, err := ScanConvoyLogFrom(path, from, func(_ int64, rec LoggedConvoy) error {
			got = append(got, rec)
			return nil
		})
		if err != nil {
			t.Fatalf("resume at %d: %v", from, err)
		}
		if off != end || len(got) != len(tailTestRecords)-i {
			t.Fatalf("resume at %d: %d records to offset %d, want %d to %d",
				from, len(got), off, len(tailTestRecords)-i, end)
		}
		if got[0].Feed != tailTestRecords[i].Feed {
			t.Fatalf("resume at %d: first record %+v, want %+v", from, got[0], tailTestRecords[i])
		}
	}
}

// TestEncodeConvoyRecordCanonical: re-encoding a decoded record reproduces
// the on-disk bytes — the property the archive's divergence checksum needs.
func TestEncodeConvoyRecordCanonical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "canon.k2cl")
	data := writeTestLog(t, path, tailTestRecords)
	var rebuilt []byte
	if _, err := ScanConvoyLog(path, func(rec LoggedConvoy) error {
		enc, err := EncodeConvoyRecord(rec.Feed, rec.Convoy)
		if err != nil {
			return err
		}
		rebuilt = append(rebuilt, enc...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if string(rebuilt) != string(data[convoyLogHeaderSize:]) {
		t.Fatal("re-encoded records differ from the on-disk bytes")
	}
}

func TestConvoyLogPatternRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "patterns.k2cl")
	l, err := CreateConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []LoggedConvoy{
		{Feed: "tokyo", Convoy: model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9)},
		{Feed: "tokyo", Convoy: model.NewConvoy(model.NewObjSet(4, 5, 6), 2, 8), Pattern: LogPatternFlock},
		{Feed: "osaka", Convoy: model.NewConvoy(model.NewObjSet(1, 2, 3, 9), 5, 7), Pattern: LogPatternMC,
			Clusters: []model.ObjSet{
				model.NewObjSet(1, 2, 3),
				model.NewObjSet(2, 3, 9),
				model.NewObjSet(3, 9),
			}},
		{Feed: "osaka", Convoy: FlushMarker()},
	}
	for _, r := range want {
		if err := l.AppendRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Feed != w.Feed || !g.Convoy.Equal(w.Convoy) || g.Pattern != w.Pattern {
			t.Fatalf("record %d: %+v, want %+v", i, g, w)
		}
		if len(g.Clusters) != len(w.Clusters) {
			t.Fatalf("record %d: %d clusters, want %d", i, len(g.Clusters), len(w.Clusters))
		}
		for j := range w.Clusters {
			if !g.Clusters[j].Equal(w.Clusters[j]) {
				t.Fatalf("record %d cluster %d: %v, want %v", i, j, g.Clusters[j], w.Clusters[j])
			}
		}
	}

	// The codec stays canonical over tagged records: re-encoding every
	// decoded record reproduces the on-disk byte stream (the archive's CRC
	// contract).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt []byte
	if _, err := ScanConvoyLog(path, func(rec LoggedConvoy) error {
		enc, err := EncodeLoggedRecord(rec)
		if err != nil {
			return err
		}
		rebuilt = append(rebuilt, enc...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if string(rebuilt) != string(data[convoyLogHeaderSize:]) {
		t.Fatal("re-encoded pattern records differ from the on-disk bytes")
	}
}

func TestConvoyLogPatternRecordTornCluster(t *testing.T) {
	// A crash mid-append can tear a moving-cluster record inside its
	// cluster block; the scan must stop at the previous record boundary.
	path := filepath.Join(t.TempDir(), "torn.k2cl")
	l, err := CreateConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	whole := LoggedConvoy{Feed: "a", Convoy: model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 5)}
	torn := LoggedConvoy{Feed: "b", Convoy: model.NewConvoy(model.NewObjSet(4, 5, 6), 1, 2), Pattern: LogPatternMC,
		Clusters: []model.ObjSet{model.NewObjSet(4, 5), model.NewObjSet(5, 6)}}
	if err := l.AppendRecord(whole); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendRecord(torn); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	off, err := ScanConvoyLog(path, func(LoggedConvoy) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("scanned %d records past a torn cluster block, want 1", n)
	}
	wholeEnc, err := EncodeLoggedRecord(whole)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(convoyLogHeaderSize + len(wholeEnc)); off != want {
		t.Fatalf("scan offset %d, want the last whole record boundary %d", off, want)
	}
}

func TestEncodeLoggedRecordRejectsNonCanonical(t *testing.T) {
	if _, err := EncodeLoggedRecord(LoggedConvoy{Feed: "x", Pattern: LogPatternFlock,
		Clusters: []model.ObjSet{model.NewObjSet(1)}}); err == nil {
		t.Fatal("flock record with a cluster block must be rejected")
	}
	if _, err := EncodeLoggedRecord(LoggedConvoy{Feed: "x", Pattern: 99}); err == nil {
		t.Fatal("unknown pattern id must be rejected")
	}
}
