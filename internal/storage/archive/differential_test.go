package archive

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// TestArchiveDifferential is the correctness anchor of the whole archive:
// over many seeded convoy logs, every query shape with randomised
// predicates, paged to exhaustion with a randomised page size, must return
// exactly the records a brute-force ScanConvoyLog over the same log
// selects — compared byte-identically in canonical form.
func TestArchiveDifferential(t *testing.T) {
	const seeds = 60
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed ^ 0x5eed))
			dir := t.TempDir()
			logPath := filepath.Join(dir, "closed.k2cl")
			recs := genRecords(seed, 120+rng.Intn(200), 9)
			writeLog(t, logPath, recs)

			// The archive is always built the way convoyd builds it: by
			// backfilling from the log.
			a, added, rebuilt, err := OpenAndBackfill(filepath.Join(dir, "archive"), logPath, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			if rebuilt || added != int64(len(recs)) {
				t.Fatalf("backfill added %d (rebuilt=%v), want %d", added, rebuilt, len(recs))
			}

			// Brute-force reference: a fresh lenient scan of the same log,
			// exactly what the acceptance criterion prescribes.
			var scanned []storage.LoggedConvoy
			if _, err := storage.ScanConvoyLog(logPath, func(r storage.LoggedConvoy) error {
				if !storage.IsFlushMarker(r.Convoy) {
					scanned = append(scanned, r)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			pageSize := 1 + rng.Intn(40)
			feeds := []string{"", "tokyo", "osaka"}
			for trial := 0; trial < 4; trial++ {
				q := Query{
					MinSize: rng.Intn(10),
					MinDur:  rng.Intn(25),
					Feed:    feeds[rng.Intn(len(feeds))],
					Limit:   pageSize,
				}
				from := int32(rng.Intn(160)) - 30
				to := from + int32(rng.Intn(60))
				iv := model.Interval{Start: from, End: to}
				got := collect(t, func(q Query) (Result, error) { return a.QueryTime(from, to, q) }, q)
				sameSet(t, fmt.Sprintf("time[%d,%d] %+v", from, to, q), got, brute(scanned, q, &iv, nil))

				oid := int32(rng.Intn(80)) - 10
				got = collect(t, func(q Query) (Result, error) { return a.QueryObject(oid, q) }, q)
				sameSet(t, fmt.Sprintf("object %d %+v", oid, q), got, brute(scanned, q, nil, &oid))

				got = collect(t, func(q Query) (Result, error) { return a.QueryConvoys(q) }, q)
				sameSet(t, fmt.Sprintf("convoys %+v", q), got, brute(scanned, q, nil, nil))
			}
		})
	}
}

// TestArchiveBackfillTornLog cuts a convoy log at every byte offset inside
// its final record — the PR 3 torn-tail harness — and checks backfill
// archives exactly the complete records, matching a brute-force scan of
// the same torn log.
func TestArchiveBackfillTornLog(t *testing.T) {
	base := t.TempDir()
	logPath := filepath.Join(base, "full.k2cl")
	recs := genRecords(77, 12, 0)
	writeLog(t, logPath, recs)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the last record starts: scan everything, remember offsets.
	var offs []int64
	if _, err := storage.ScanConvoyLogFrom(logPath, 0, func(off int64, rec storage.LoggedConvoy) error {
		offs = append(offs, off)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	lastStart := offs[len(offs)-1]
	for cut := lastStart + 1; cut < int64(len(data)); cut += 3 {
		dir := filepath.Join(base, fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		torn := filepath.Join(dir, "torn.k2cl")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		a, added, rebuilt, err := OpenAndBackfill(filepath.Join(dir, "archive"), torn, nil)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		var want []storage.LoggedConvoy
		if _, err := storage.ScanConvoyLog(torn, func(r storage.LoggedConvoy) error {
			if !storage.IsFlushMarker(r.Convoy) {
				want = append(want, r)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if rebuilt || added != int64(len(want)) {
			t.Fatalf("cut at %d: added %d (rebuilt=%v), want %d", cut, added, rebuilt, len(want))
		}
		got := collect(t, func(q Query) (Result, error) { return a.QueryConvoys(q) }, Query{Limit: 5})
		sameSet(t, fmt.Sprintf("cut at %d", cut), got, want)
		a.Close()
	}
}

// TestArchiveBackfillCompactedLog: after an offline CompactConvoyLog the
// log is no longer an extension of the archived prefix. Backfill must
// refuse to extend (ErrDiverged), and OpenAndBackfill must rebuild the
// archive to match the compacted log exactly.
func TestArchiveBackfillCompactedLog(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "closed.k2cl")
	recs := genRecords(21, 150, 5) // every 5th record a duplicate
	writeLog(t, logPath, recs)
	archDir := filepath.Join(dir, "archive")

	a, added, rebuilt, err := OpenAndBackfill(archDir, logPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt || added != int64(len(recs)) {
		t.Fatalf("initial backfill: added %d rebuilt=%v", added, rebuilt)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	_, dropped, err := storage.CompactConvoyLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("test log had no duplicates to drop; generator broken")
	}
	// The archive holds the compacted log's non-marker records (compaction
	// also keeps one flush marker per flushed feed, which archives skip).
	var want []storage.LoggedConvoy
	if _, err := storage.ScanConvoyLog(logPath, func(r storage.LoggedConvoy) error {
		if !storage.IsFlushMarker(r.Convoy) {
			want = append(want, r)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// A plain Backfill on the stale archive must report divergence…
	if a, err = Open(archDir, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Backfill(logPath); err == nil {
		t.Fatal("backfill extended a diverged archive")
	}
	a.Close()

	// …and OpenAndBackfill must rebuild to match the compacted log —
	// deleting only archive-owned files, never an operator's unrelated
	// ones in the same directory.
	bystander := filepath.Join(archDir, "operator-notes.txt")
	if err := os.WriteFile(bystander, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, added, rebuilt, err = OpenAndBackfill(archDir, logPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if !rebuilt {
		t.Fatal("divergence did not trigger a rebuild")
	}
	if _, err := os.Stat(bystander); err != nil {
		t.Fatalf("rebuild deleted an unrelated file in the archive dir: %v", err)
	}
	if added != int64(len(want)) {
		t.Fatalf("rebuild archived %d records, want %d", added, len(want))
	}
	got := collect(t, func(q Query) (Result, error) { return a.QueryConvoys(q) }, Query{Limit: 33})
	sameSet(t, "after rebuild", got, want)
}

// TestArchiveIncrementalBackfill: a second backfill after the log grew
// archives only the new suffix, without rebuilding.
func TestArchiveIncrementalBackfill(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "closed.k2cl")
	recs := genRecords(31, 100, 0)
	writeLog(t, logPath, recs[:60])
	archDir := filepath.Join(dir, "archive")

	a, added, _, err := OpenAndBackfill(archDir, logPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	if added != 60 {
		t.Fatalf("first backfill added %d, want 60", added)
	}
	a.Close()

	// Grow the log (OpenConvoyLog appends past the existing records).
	l, err := storage.OpenConvoyLog(logPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[60:] {
		if err := l.Append(r.Feed, r.Convoy); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	a, added, rebuilt, err := OpenAndBackfill(archDir, logPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if rebuilt || added != 40 {
		t.Fatalf("second backfill added %d (rebuilt=%v), want 40 without rebuild", added, rebuilt)
	}
	got := collect(t, func(q Query) (Result, error) { return a.QueryConvoys(q) }, Query{Limit: 13})
	sameSet(t, "incremental", got, recs)
}

// TestArchiveCursorStabilityUnderAppends pages through a query with a tiny
// page size while a writer keeps appending. Pagination must never yield
// the same record twice, and must deliver every matching record that was
// archived before the first page — the stability contract concurrent
// clients rely on.
func TestArchiveCursorStabilityUnderAppends(t *testing.T) {
	a, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Records with unique identities: convoy i spans [i, i+dur) with a
	// distinguishing object id.
	mk := func(i int) storage.LoggedConvoy {
		return storage.LoggedConvoy{
			Feed: "feed",
			Convoy: model.NewConvoy(
				model.NewObjSet(int32(i), int32(i)+1000, int32(i)+2000),
				int32(i), int32(i)+4),
		}
	}
	const initial, extra = 300, 300
	for i := 0; i < initial; i++ {
		if err := a.Add(mk(i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for i := initial; i < initial+extra; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := a.Add(mk(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	seen := map[string]bool{}
	q := Query{MinSize: 3, Limit: 7}
	for {
		res, err := a.QueryConvoys(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Records {
			key := r.Feed + "\x00" + r.Convoy.Key()
			if seen[key] {
				t.Fatalf("record %q returned twice across pages", key)
			}
			seen[key] = true
		}
		if !res.More {
			break
		}
		q.Cursor = res.Next
	}
	close(stop)
	wg.Wait()

	for i := 0; i < initial; i++ {
		r := mk(i)
		if !seen[r.Feed+"\x00"+r.Convoy.Key()] {
			t.Fatalf("record %d (archived before the first page) missing from paged results", i)
		}
	}
}
