package archive

import (
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// benchArchive builds a 20k-record archive once per benchmark binary.
func benchArchive(b *testing.B) *Archive {
	b.Helper()
	dir := b.TempDir()
	a, err := Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { a.Close() })
	recs := genRecords(42, 20000, 17)
	for i := 0; i < len(recs); i += 512 {
		if err := a.AddBatch(recs[i:min(i+512, len(recs))]); err != nil {
			b.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkArchiveAddBatch measures the persist-path cost: 64 records per
// batch through records append + fsync + index puts.
func BenchmarkArchiveAddBatch(b *testing.B) {
	a, err := Open(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	recs := genRecords(7, 64, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.AddBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArchiveQueryTime measures one interval-query page against a 20k
// record archive.
func BenchmarkArchiveQueryTime(b *testing.B) {
	a := benchArchive(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := a.QueryTime(20, 40, Query{MinSize: 4, Limit: 100})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) == 0 {
			b.Fatal("empty page")
		}
	}
}

// BenchmarkArchiveQueryObject measures one membership-query page.
func BenchmarkArchiveQueryObject(b *testing.B) {
	a := benchArchive(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := a.QueryObject(int32(i%32), Query{Limit: 100})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) == 0 {
			b.Fatal("empty page")
		}
	}
}

// BenchmarkArchiveBackfill measures startup backfill of a 5k-record log
// into a fresh archive.
func BenchmarkArchiveBackfill(b *testing.B) {
	dir := b.TempDir()
	logPath := filepath.Join(dir, "closed.k2cl")
	l, err := storage.CreateConvoyLog(logPath)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range genRecords(13, 5000, 0) {
		if err := l.Append(r.Feed, r.Convoy); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		archDir := filepath.Join(b.TempDir(), "archive")
		b.StartTimer()
		a, added, _, err := OpenAndBackfill(archDir, logPath, nil)
		if err != nil {
			b.Fatal(err)
		}
		if added != 5000 {
			b.Fatalf("backfilled %d", added)
		}
		b.StopTimer()
		a.Close()
		b.StartTimer()
	}
}
