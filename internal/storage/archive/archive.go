// Package archive implements the historical convoy store behind convoyd's
// /v1/query endpoints: every closed convoy that reaches the convoy log is
// also appended here, and three LSM-backed secondary indexes make the
// questions a scan-only log cannot answer — "which convoys crossed this
// hour?", "which convoys contained object 42?", "which convoys had at
// least m objects for at least k ticks?" — into bounded index range reads.
//
// # Layout
//
// An archive directory holds a records file plus three index databases:
//
//	records.k2cl   append-only (feed, convoy) records, the convoy-log codec
//	time/ obj/ size/   lsm.DB secondary indexes (see key schemas below)
//	META           durable re-index watermark (JSON, atomically replaced)
//
// The records file is the archive's primary copy; index entries are 8-byte
// LSM keys mapping to a 16-byte locator (records-file offset, object
// count, duration), so a query materialises each hit with one positioned
// read. Key schemas, all through storage.EncodeKey's order-preserving
// (int32, int32) packing with the record's archive sequence number as
// tie-breaker:
//
//	time/  (convoy End,   seq) → locator   interval queries: scan keys with
//	                                       End ≥ from, filter Start ≤ to —
//	                                       Start is derived from the
//	                                       locator's duration, no record
//	                                       read needed to reject
//	obj/   (member oid,   seq) → locator   one entry per member object
//	size/  (object count, seq) → locator   min-size / min-duration queries
//
// # Crash safety
//
// AddBatch appends and fsyncs the records file before writing a single
// index entry, so an index entry can never reference bytes a crash took
// away. Index entries themselves need no WAL fsync: META records the count
// of records whose index entries are durably flushed to SSTables, and Open
// replays every record past that watermark through the indexes again —
// index puts are idempotent (same key, same locator). A torn tail on the
// records file is truncated away exactly as the convoy log does it.
//
// # Relationship to the convoy log
//
// The archive mirrors the convoy log record-for-record (flush markers are
// skipped; duplicate records, possible after a feed eviction, are kept so
// the two stay byte-equivalent — differential tests rely on it). Backfill
// makes the mirror catch up after a restart: it skips the already-archived
// prefix, verifying it against a running checksum of the log's bytes, and
// archives the rest. A log that was compacted or replaced no longer
// matches the checksum and fails with ErrDiverged; OpenAndBackfill then
// deletes the archive and rebuilds it from the log, which is always the
// source of truth.
//
// # Retention
//
// Expire(before) removes every archived convoy whose End tick precedes
// before, coherently across the records file and all three indexes (see
// retention.go for the crash protocol). The expiry watermark is durable in
// META: once a convoy is expired, AddBatch and Backfill silently skip any
// record below the watermark, so a backfill from the full log does not
// resurrect expired history and does not count as divergence. Sequence
// numbers are never reused and survivors keep theirs, so query cursors
// stay valid across an expiry. The one degraded case: if META is deleted
// along with the indexes, the watermark is lost and a rebuild from the log
// resurrects expired records — the next retention cycle re-expires them.
package archive

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/storage/lsm"
)

// ErrDiverged is returned by Backfill when the convoy log is not an
// extension of what the archive already holds — after an offline
// compaction, or when the log was replaced wholesale. The archive must be
// rebuilt from scratch (OpenAndBackfill does it automatically).
var ErrDiverged = errors.New("archive: convoy log diverged from archived prefix")

// Options tunes an archive.
type Options struct {
	// CacheBytes is the combined in-memory budget of the three secondary
	// indexes: each gets a quarter as its write buffer (larger values mean
	// fewer, bigger SSTable flushes) and a twelfth as its block cache for
	// the read path (3×1/4 + 3×1/12 = the whole budget). Default 12 MiB.
	CacheBytes int
}

const (
	recordsName = "records.k2cl"
	metaName    = "META"
	// maxSeq bounds the archive to what the int32 sequence component of
	// the index keys can address.
	maxSeq = math.MaxInt32
)

// meta is the durable checkpoint: index entries for the first Records
// records of the records file are flushed to SSTables, Offset is the file
// offset just past record Records−1, and CRC is the running record
// checksum up to that point. Open trusts the checkpoint (it is written
// only after the records it covers are fsynced) and replays just the
// records past it, so startup cost is proportional to the un-flushed
// tail, not the archive's lifetime history.
//
// NextSeq, ExpiredBefore and MaxEnd arrived with retention; metaDefaults
// seeds their sentinels so a META written before them keeps the legacy
// semantics (NextSeq == Records, nothing expired). Records past Offset
// were assigned sequence numbers starting at NextSeq — after an expiry
// record position and sequence number diverge, so replay cannot derive
// the tail's sequences from Records alone.
type meta struct {
	Records int64  `json:"records"`
	Offset  int64  `json:"offset"`
	CRC     uint32 `json:"crc"`
	NextSeq int64  `json:"next_seq"`
	// ExpiredBefore is the retention watermark: every record with
	// End < ExpiredBefore has been (or is being) expired. MinInt32 means
	// nothing was ever expired.
	ExpiredBefore int32 `json:"expired_before"`
	// MaxEnd is the largest End tick ever archived, kept durable so
	// relative retention ("keep the last N ticks") survives an expiry of
	// the very records that defined it.
	MaxEnd int32 `json:"max_end"`
}

// metaDefaults is the zero checkpoint with the sentinel values a legacy
// META (predating retention) must decode to.
func metaDefaults() meta {
	return meta{NextSeq: -1, ExpiredBefore: math.MinInt32, MaxEnd: math.MinInt32}
}

// Archive is an LSM-indexed store of closed convoys. Writes (AddBatch,
// Backfill, Flush) are serialised; queries run concurrently under a read
// lock.
type Archive struct {
	dir  string
	opts Options

	mu       sync.RWMutex
	recs     *storage.ConvoyLog
	recsRead *readFile // refcounted pread handle for query materialisation
	live     int64     // records currently in the records file
	nextSeq  int64     // next sequence number to assign; never reused
	synced   int64     // durable byte size of the records file
	crc      uint32    // IEEE CRC over the file's records' encoded bytes, in order
	flushed  int64     // records covered by META (durably indexed)
	timeIdx  *lsm.DB
	objIdx   *lsm.DB
	sizeIdx  *lsm.DB
	closed   bool

	// rewriteGen counts records-file swaps (retention rewrites). A query
	// that captured its view before a swap uses it to tell "this offset is
	// stale because retention moved the record" apart from real corruption.
	rewriteGen atomic.Int64

	// Retention state (see retention.go). expiredBefore is the durable
	// watermark: records with End below it are expired and new arrivals
	// below it are silently dropped. maxEnd is the largest End ever
	// archived; expiredTotal counts records expired by this process.
	expiredBefore int32
	maxEnd        int32
	expiredTotal  int64

	// Query-side counters, exposed via Stats. liveReaders gauges query
	// pages currently holding a read view (see beginRead).
	queries        atomic.Int64
	entriesScanned atomic.Int64
	recordsRead    atomic.Int64
	liveReaders    atomic.Int64
}

// readFile is the refcounted pread handle over the records file. Queries
// pin it for the duration of a page so a retention rewrite — which renames
// a survivors-only file over records.k2cl and opens fresh handles — cannot
// close the old inode out from under an in-flight read: the pinned handle
// keeps serving the pre-rewrite bytes, which is exactly the file the
// reader's captured index offsets describe.
type readFile struct {
	f    *os.File
	refs atomic.Int32
}

func newReadFile(f *os.File) *readFile {
	r := &readFile{f: f}
	r.refs.Store(1) // the archive's own reference
	return r
}

func (r *readFile) ref() { r.refs.Add(1) }

func (r *readFile) unref() {
	if r.refs.Add(-1) == 0 {
		r.f.Close()
	}
}

// Open opens (or creates) the archive in dir, replaying through the
// indexes any records file tail past the META watermark. Derived state
// that cannot be reconciled (META claiming more records than the file
// holds) falls back to a full re-index of the records file.
func Open(dir string, opts *Options) (*Archive, error) {
	a := &Archive{dir: dir}
	if opts != nil {
		a.opts = *opts
	}
	if a.opts.CacheBytes <= 0 {
		a.opts.CacheBytes = 12 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: mkdir: %w", err)
	}
	m := metaDefaults()
	if data, err := os.ReadFile(filepath.Join(dir, metaName)); err == nil {
		if err := json.Unmarshal(data, &m); err != nil {
			m = metaDefaults() // unreadable watermark: re-index everything
		}
	}
	if m.NextSeq < m.Records {
		m.NextSeq = m.Records // legacy META: sequence numbers were positions
	}
	a.expiredBefore, a.maxEnd, a.nextSeq = m.ExpiredBefore, m.MaxEnd, m.NextSeq
	if err := a.openIndexes(); err != nil {
		return nil, err
	}
	recsPath := filepath.Join(dir, recordsName)
	tail := int64(0) // known-good boundary to resume the append-open from
	// A records file too short to hold its 8-byte header is what a crash
	// right after archive creation leaves behind (the header sits in the
	// writer's buffer until the first sync) — treat it like a missing
	// file, which OpenConvoyLogFrom below recreates, instead of failing
	// every subsequent startup.
	if st, err := os.Stat(recsPath); err == nil && st.Size() >= 8 {
		if tail, err = a.replayRecords(recsPath, m); err != nil {
			a.closeIndexes()
			return nil, err
		}
	} else if m.Records > 0 {
		// Indexes without records: derived state nothing can anchor.
		a.closeIndexes()
		return nil, fmt.Errorf("archive: META claims %d records but %s is missing or empty", m.Records, recordsName)
	}
	// Resume the append-open at the boundary the replay already found —
	// truncating any torn tail without rescanning the whole file.
	recs, err := storage.OpenConvoyLogFrom(recsPath, tail, nil)
	if err != nil {
		a.closeIndexes()
		return nil, err
	}
	a.recs = recs
	a.synced = recs.Offset()
	rf, err := os.Open(recsPath)
	if err != nil {
		recs.Close()
		a.closeIndexes()
		return nil, fmt.Errorf("archive: open read handle: %w", err)
	}
	a.recsRead = newReadFile(rf)
	a.flushed = min(m.Records, a.live)
	// A watermark higher than the oldest live record means a crash
	// interrupted an Expire before its records-file rewrite committed (a
	// crash after the rewrite lands in reindexAll above, with the expired
	// records already gone). Finish the job now; applyExpireLocked is a
	// cheap no-op when nothing is pending.
	if a.expiredBefore > math.MinInt32 {
		if _, err := a.applyExpireLocked(); err != nil {
			a.closed = true
			a.closeIndexes()
			if a.recs != nil {
				a.recs.Close()
			}
			if a.recsRead != nil {
				a.recsRead.unref()
			}
			return nil, fmt.Errorf("archive: complete interrupted expiry: %w", err)
		}
	}
	return a, nil
}

func (a *Archive) openIndexes() error {
	var err error
	if a.timeIdx, err = lsm.Open(filepath.Join(a.dir, "time"), a.indexOpts()); err != nil {
		return err
	}
	if a.objIdx, err = lsm.Open(filepath.Join(a.dir, "obj"), a.indexOpts()); err != nil {
		a.timeIdx.Close()
		return err
	}
	if a.sizeIdx, err = lsm.Open(filepath.Join(a.dir, "size"), a.indexOpts()); err != nil {
		a.timeIdx.Close()
		a.objIdx.Close()
		return err
	}
	return nil
}

func (a *Archive) indexOpts() *lsm.Options {
	return &lsm.Options{
		MemtableBytes:   a.opts.CacheBytes / 4,
		BlockCacheBytes: a.opts.CacheBytes / 12,
	}
}

func (a *Archive) closeIndexes() {
	for _, db := range []*lsm.DB{a.timeIdx, a.objIdx, a.sizeIdx} {
		if db != nil {
			db.Close()
		}
	}
}

// replayRecords restores the in-memory counters (count, crc) and brings
// the indexes up to date with the records file, returning the byte offset
// of the last complete record's end. The META checkpoint is trusted (its
// records were fsynced before it was written): counters seed from it and
// only the tail past meta.Offset is scanned and indexed, so a restart
// costs the un-flushed tail, not the archive's lifetime. A checkpoint the
// file contradicts — shorter than the claimed offset, the usual sign of
// outside interference — degrades to a full re-index rather than an
// error: the records file is the primary copy and index entries are
// always recomputable from it.
func (a *Archive) replayRecords(path string, m meta) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if m.Records < 0 || m.Offset < 0 || st.Size() < m.Offset {
		// Also the landing spot for a crash after an Expire's records-file
		// rewrite committed: the rewritten file is strictly shorter than
		// the old META.Offset, so the half-updated indexes are rebuilt
		// from the survivors (the watermark itself came from META and is
		// preserved).
		return a.reindexAll(path)
	}
	a.live, a.crc = m.Records, m.CRC
	maxEnd := a.maxEnd
	end, err := a.scanAndIndex(path, m.Offset, m.NextSeq)
	if err != nil {
		// The checkpoint did not land on a record boundary: start over
		// (dropping whatever a partial, possibly garbage tail scan did to
		// the End high-water mark).
		a.maxEnd = maxEnd
		return a.reindexAll(path)
	}
	return end, nil
}

// reindexAll rebuilds the three indexes from a clean slate by scanning
// the whole records file. Sequence numbers restart from 0 (query cursors
// issued before the rebuild may skip or repeat, as after any rebuild),
// but nextSeq never moves backwards, so no stale flushed index entry can
// alias a live sequence number.
func (a *Archive) reindexAll(path string) (int64, error) {
	a.closeIndexes()
	for _, sub := range []string{"time", "obj", "size"} {
		if err := os.RemoveAll(filepath.Join(a.dir, sub)); err != nil {
			return 0, fmt.Errorf("archive: reset index: %w", err)
		}
	}
	if err := a.openIndexes(); err != nil {
		return 0, err
	}
	a.live, a.crc = 0, 0
	return a.scanAndIndex(path, 0, 0)
}

// scanAndIndex scans records from the given boundary (sequence number seq
// at byte offset from), indexing and checksumming each, and advances
// live/crc/maxEnd over everything scanned. Returns the end boundary.
func (a *Archive) scanAndIndex(path string, from, seq int64) (int64, error) {
	end, err := storage.ScanConvoyLogFrom(path, from, func(off int64, rec storage.LoggedConvoy) error {
		enc, err := storage.EncodeLoggedRecord(rec)
		if err != nil {
			return err
		}
		a.crc = crc32.Update(a.crc, crc32.IEEETable, enc)
		if err := a.indexRecord(seq, off, rec); err != nil {
			return err
		}
		if rec.Convoy.End > a.maxEnd {
			a.maxEnd = rec.Convoy.End
		}
		seq++
		a.live++
		return nil
	})
	if err != nil {
		return 0, err
	}
	if seq > a.nextSeq {
		a.nextSeq = seq
	}
	return end, nil
}

// indexRecord writes the three index entries (one per secondary key, plus
// one per member object) for the record with the given archive sequence
// number at the given records-file offset.
func (a *Archive) indexRecord(seq, off int64, rec storage.LoggedConvoy) error {
	if seq > maxSeq {
		return fmt.Errorf("archive: sequence %d exceeds index capacity", seq)
	}
	c := rec.Convoy
	loc := encodeLocator(off, int32(len(c.Objs)), c.End-c.Start+1)
	s := int32(seq)
	if err := a.timeIdx.PutKV(storage.EncodeKey(c.End, s), loc); err != nil {
		return err
	}
	if err := a.sizeIdx.PutKV(storage.EncodeKey(int32(len(c.Objs)), s), loc); err != nil {
		return err
	}
	for _, oid := range c.Objs {
		if err := a.objIdx.PutKV(storage.EncodeKey(oid, s), loc); err != nil {
			return err
		}
	}
	return nil
}

// Add archives one record. Convenience wrapper over AddBatch.
func (a *Archive) Add(rec storage.LoggedConvoy) error {
	return a.AddBatch([]storage.LoggedConvoy{rec})
}

// AddBatch archives a batch of convoy-log records in order. Flush markers
// are skipped (they are feed lifecycle state, not convoys). The batch's
// records are durable in the records file before the first index entry for
// them is written — the invariant Open's recovery depends on. Any error
// leaves the archive unusable for further writes; the caller should close
// it and rebuild from the convoy log.
func (a *Archive) AddBatch(recs []storage.LoggedConvoy) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.addBatchLocked(recs)
}

func (a *Archive) addBatchLocked(recs []storage.LoggedConvoy) error {
	if a.closed {
		return errors.New("archive: closed")
	}
	type staged struct {
		off int64
		rec storage.LoggedConvoy
	}
	var batch []staged
	for _, rec := range recs {
		if storage.IsFlushMarker(rec.Convoy) {
			continue
		}
		if rec.Convoy.End < a.expiredBefore {
			// Already past the retention watermark: dropped exactly as an
			// Expire would have, so a replay of old log records cannot
			// resurrect expired history.
			continue
		}
		if a.nextSeq+int64(len(batch)) > maxSeq {
			return fmt.Errorf("archive: full (%d records)", a.nextSeq)
		}
		enc, err := storage.EncodeLoggedRecord(rec)
		if err != nil {
			return err
		}
		batch = append(batch, staged{off: a.recs.Offset(), rec: rec})
		if err := a.recs.AppendEncoded(enc); err != nil {
			return err
		}
		a.crc = crc32.Update(a.crc, crc32.IEEETable, enc)
		if rec.Convoy.End > a.maxEnd {
			a.maxEnd = rec.Convoy.End
		}
	}
	if len(batch) == 0 {
		return nil
	}
	if err := a.recs.Sync(); err != nil {
		return err
	}
	a.synced = a.recs.Offset()
	for i, s := range batch {
		if err := a.indexRecord(a.nextSeq+int64(i), s.off, s.rec); err != nil {
			return err
		}
	}
	a.nextSeq += int64(len(batch))
	a.live += int64(len(batch))
	return nil
}

// Backfill brings the archive up to date with the convoy log at logPath:
// the already-archived prefix is skipped (and checksummed against the
// archive's own running CRC — any mismatch, e.g. after an offline
// compaction, fails with ErrDiverged), the remaining records are archived,
// and the index watermark is made durable. A missing log leaves an empty
// archive. Torn log tails are tolerated exactly as ScanConvoyLog does.
// Returns the number of records archived.
func (a *Archive) Backfill(logPath string) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	// A missing log — or one so short its 8-byte header never reached the
	// disk (a freshly created, not-yet-synced sink) — holds no records.
	if st, err := os.Stat(logPath); errors.Is(err, os.ErrNotExist) || (err == nil && st.Size() < 8) {
		if a.live > 0 {
			return 0, fmt.Errorf("%w: log empty, archive holds %d records", ErrDiverged, a.live)
		}
		return 0, nil
	}
	var (
		pre     = a.live // records archived before this backfill
		preCRC  = a.crc
		skipped int64
		prefix  uint32
		added   int64
		batch   []storage.LoggedConvoy
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := a.addBatchLocked(batch); err != nil {
			return err
		}
		added += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	_, err := storage.ScanConvoyLogFrom(logPath, 0, func(off int64, rec storage.LoggedConvoy) error {
		if storage.IsFlushMarker(rec.Convoy) {
			return nil
		}
		if rec.Convoy.End < a.expiredBefore {
			// Expired history: the archive dropped (or never accepted)
			// this record, so it is part of neither the archived prefix
			// nor the records to add. The log legitimately still holds it
			// — retention filters the archive, never the log.
			return nil
		}
		if skipped < pre {
			enc, err := storage.EncodeLoggedRecord(rec)
			if err != nil {
				return err
			}
			prefix = crc32.Update(prefix, crc32.IEEETable, enc)
			if skipped++; skipped == pre && prefix != preCRC {
				// Checked the moment the prefix is complete, before a single
				// append — a diverged archive is abandoned, never extended.
				return fmt.Errorf("%w: prefix checksum mismatch", ErrDiverged)
			}
			return nil
		}
		batch = append(batch, rec)
		if len(batch) >= 512 {
			return flush()
		}
		return nil
	})
	if err != nil {
		return added, err
	}
	if skipped < pre {
		return added, fmt.Errorf("%w: log holds %d records, archive %d", ErrDiverged, skipped, pre)
	}
	if err := flush(); err != nil {
		return added, err
	}
	return added, a.flushLocked()
}

// OpenAndBackfill opens the archive at dir and backfills it from the
// convoy log at logPath. When the log has diverged from the archived
// prefix (offline compaction, replaced log), the archive's files are
// deleted and rebuilt from the log — the log is the source of truth and
// the archive is derived state. Returns the opened archive, the number of
// records backfilled, and whether a rebuild happened.
func OpenAndBackfill(dir, logPath string, opts *Options) (*Archive, int64, bool, error) {
	a, err := Open(dir, opts)
	if err != nil {
		return nil, 0, false, err
	}
	added, err := a.Backfill(logPath)
	if err == nil {
		return a, added, false, nil
	}
	if !errors.Is(err, ErrDiverged) {
		a.Close()
		return nil, 0, false, err
	}
	a.Close()
	if err := removeArchiveFiles(dir); err != nil {
		return nil, 0, false, fmt.Errorf("archive: rebuild: %w", err)
	}
	if a, err = Open(dir, opts); err != nil {
		return nil, 0, false, err
	}
	if added, err = a.Backfill(logPath); err != nil {
		a.Close()
		return nil, 0, false, err
	}
	return a, added, true, nil
}

// removeArchiveFiles deletes only the entries the archive owns. The
// directory itself — and anything else an operator keeps in it — is left
// alone; a rebuild must never be the thing that destroys unrelated files
// under a user-supplied path.
func removeArchiveFiles(dir string) error {
	for _, name := range []string{recordsName, recordsName + ".tmp", metaName, metaName + ".tmp", "time", "obj", "size"} {
		if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// Flush makes the indexes durable (memtables → SSTables) and advances the
// META watermark, so the next Open replays only records archived after
// this call.
func (a *Archive) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushLocked()
}

func (a *Archive) flushLocked() error {
	if a.closed {
		return errors.New("archive: closed")
	}
	if err := a.recs.Sync(); err != nil {
		return err
	}
	a.synced = a.recs.Offset()
	for _, db := range []*lsm.DB{a.timeIdx, a.objIdx, a.sizeIdx} {
		if err := db.Flush(); err != nil {
			return err
		}
	}
	data, err := json.Marshal(meta{
		Records: a.live, Offset: a.synced, CRC: a.crc,
		NextSeq: a.nextSeq, ExpiredBefore: a.expiredBefore, MaxEnd: a.maxEnd,
	})
	if err != nil {
		return err
	}
	// fsync the temp file before the rename and the directory after it:
	// without both, a power loss can leave the renamed META empty (or the
	// rename itself unrecorded), and the checkpoint — including the
	// retention watermark Expire just committed — silently vanishes.
	tmp := filepath.Join(a.dir, metaName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(a.dir, metaName)); err != nil {
		return err
	}
	if err := syncDir(a.dir); err != nil {
		return err
	}
	a.flushed = a.live
	return nil
}

// Close flushes and closes the archive.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	firstErr := a.flushLocked()
	a.closed = true
	for _, db := range []*lsm.DB{a.timeIdx, a.objIdx, a.sizeIdx} {
		if err := db.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := a.recs.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	// Drop the archive's reference; the handle closes once the last
	// in-flight query page releases its pin.
	a.recsRead.unref()
	return firstErr
}

// Count returns the number of archived convoys currently live (expired
// records no longer count).
func (a *Archive) Count() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.live
}

// MaxEnd returns the largest End tick ever archived, or ok=false while
// the archive has never held a record. It is the anchor for relative
// retention ("expire everything older than the newest N ticks").
func (a *Archive) MaxEnd() (int32, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.maxEnd, a.maxEnd != math.MinInt32
}

// Stats is a point-in-time snapshot of the archive's size and query
// counters, shaped for convoyd's /v1/stats.
type Stats struct {
	Records        int64 `json:"records"`
	RecordsBytes   int64 `json:"records_bytes"`
	IndexedDurable int64 `json:"indexed_durable"`
	QueriesTotal   int64 `json:"queries_total"`
	EntriesScanned int64 `json:"index_entries_scanned_total"`
	RecordsRead    int64 `json:"records_read_total"`
	// Read-path counters, summed across the three secondary indexes.
	// BloomHits counts point lookups a bloom filter short-circuited (key
	// proved absent with no block read); BloomMisses counts lookups that
	// passed a filter through to a data block. BlockCache{Hits,Misses}
	// count data-block lookups in the shared sharded caches.
	BloomHits        int64 `json:"bloom_hits_total"`
	BloomMisses      int64 `json:"bloom_misses_total"`
	BlockCacheHits   int64 `json:"block_cache_hits_total"`
	BlockCacheMisses int64 `json:"block_cache_misses_total"`
	// LiveSnapshots gauges LSM snapshots currently pinned by readers
	// (summed across the indexes); LiveReaders gauges query pages holding
	// a read view right now. Both drain to zero at idle.
	LiveSnapshots int64 `json:"live_snapshots"`
	LiveReaders   int64 `json:"live_readers"`
	// ExpiredTotal counts records removed by retention since this process
	// opened the archive; ExpiredBefore is the durable watermark (absent
	// until the first expiry — convoys with End below it are gone).
	ExpiredTotal  int64  `json:"expired_total"`
	ExpiredBefore *int32 `json:"expired_before,omitempty"`
}

// Stats returns the archive counters.
func (a *Archive) Stats() Stats {
	a.mu.RLock()
	defer a.mu.RUnlock()
	st := Stats{
		Records:        a.live,
		RecordsBytes:   a.synced,
		IndexedDurable: a.flushed,
		QueriesTotal:   a.queries.Load(),
		EntriesScanned: a.entriesScanned.Load(),
		RecordsRead:    a.recordsRead.Load(),
		LiveReaders:    a.liveReaders.Load(),
		ExpiredTotal:   a.expiredTotal,
	}
	for _, db := range []*lsm.DB{a.timeIdx, a.objIdx, a.sizeIdx} {
		rs := db.ReadStats()
		st.BloomHits += rs.BloomHits
		st.BloomMisses += rs.BloomMisses
		st.BlockCacheHits += rs.BlockCacheHits
		st.BlockCacheMisses += rs.BlockCacheMisses
		st.LiveSnapshots += rs.LiveSnapshots
	}
	if a.expiredBefore != math.MinInt32 {
		w := a.expiredBefore
		st.ExpiredBefore = &w
	}
	return st
}

// --- locator codec ------------------------------------------------------

// encodeLocator packs an index value: records-file offset, object count,
// and duration in ticks. Size and duration ride along so min-size and
// min-duration predicates (and the Start = End−dur+1 derivation time
// queries need) are answered from the index entry alone.
func encodeLocator(off int64, size, dur int32) [storage.ValueSize]byte {
	var v [storage.ValueSize]byte
	binary.LittleEndian.PutUint64(v[0:8], uint64(off))
	binary.LittleEndian.PutUint32(v[8:12], uint32(size))
	binary.LittleEndian.PutUint32(v[12:16], uint32(dur))
	return v
}

func decodeLocator(v []byte) (off int64, size, dur int32) {
	off = int64(binary.LittleEndian.Uint64(v[0:8]))
	size = int32(binary.LittleEndian.Uint32(v[8:12]))
	dur = int32(binary.LittleEndian.Uint32(v[12:16]))
	return off, size, dur
}
