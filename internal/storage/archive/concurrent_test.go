package archive

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// Concurrent-reader soak: N readers page all three query shapes while a
// writer keeps archiving batches. No page may error, and once the dust
// settles the full paged result sets must be byte-identical to the
// brute-force scan of everything written — the same differential idiom as
// the 60-log suite, now with the pages that ran mid-ingest only required
// to not fail (cursor contract: concurrent arrivals may or may not appear).
func TestArchiveConcurrentReadersSoak(t *testing.T) {
	dir := t.TempDir()
	// Small cache: real SSTable flushes and block-cache traffic mid-soak.
	a, err := Open(dir, &Options{CacheBytes: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	all := genRecords(99, 4000, 13)
	const (
		readers   = 6
		batchSize = 50
	)
	var (
		stop     atomic.Bool
		readErrs atomic.Int64
		wg       sync.WaitGroup
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int32) {
			defer wg.Done()
			for i := int32(0); !stop.Load(); i++ {
				var err error
				switch (seed + i) % 3 {
				case 0:
					_, err = a.QueryTime(-20, 120, Query{Limit: 40})
				case 1:
					_, err = a.QueryObject((seed+i)%64-8, Query{Limit: 40})
				default:
					_, err = a.QueryConvoys(Query{MinSize: int(i % 8), Limit: 40})
				}
				if err != nil {
					readErrs.Add(1)
					return
				}
			}
		}(int32(r))
	}
	for i := 0; i < len(all); i += batchSize {
		end := min(i+batchSize, len(all))
		if err := a.AddBatch(all[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	if n := readErrs.Load(); n != 0 {
		t.Fatalf("%d query errors during concurrent soak", n)
	}

	// Quiescent differential: paged results ≡ brute force, byte-identical.
	iv := model.Interval{Start: -20, End: 120}
	got := collect(t, func(q Query) (Result, error) { return a.QueryTime(-20, 120, q) }, Query{Limit: 64})
	sameSet(t, "time after soak", got, brute(all, Query{}, &iv, nil))
	oid := int32(7)
	got = collect(t, func(q Query) (Result, error) { return a.QueryObject(oid, q) }, Query{Limit: 64})
	sameSet(t, "object after soak", got, brute(all, Query{}, nil, &oid))

	// Both reader gauges must drain to zero.
	st := a.Stats()
	if st.LiveReaders != 0 || st.LiveSnapshots != 0 {
		t.Fatalf("gauges not drained: live_readers=%d live_snapshots=%d", st.LiveReaders, st.LiveSnapshots)
	}
	if st.BlockCacheHits+st.BlockCacheMisses == 0 {
		t.Fatal("block cache never touched during soak")
	}
}

// A read view captured before an Expire must keep reading the pre-rewrite
// records file: the rename swaps the path to a survivors-only file, but the
// view's pinned handle holds the old inode — captured offsets stay valid
// and decode to the original bytes. This is the reader-vs-retention
// interleaving proof (no file yanked while a view references it).
func TestArchiveReadViewSurvivesExpire(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Two generations: End=10 (will expire) and End=100 (survives).
	old := storage.LoggedConvoy{Feed: "tokyo", Convoy: model.NewConvoy(model.NewObjSet(1, 2, 3), 5, 10)}
	young := storage.LoggedConvoy{Feed: "osaka", Convoy: model.NewConvoy(model.NewObjSet(4, 5, 6), 95, 100)}
	if err := a.AddBatch([]storage.LoggedConvoy{old, young}); err != nil {
		t.Fatal(err)
	}

	// Capture a view and the expiring record's offset through it.
	view, err := a.beginRead(a.timeIdx)
	if err != nil {
		t.Fatal(err)
	}
	var oldOff int64 = -1
	err = view.snap.Scan(minIndexKey(), func(k, v []byte) bool {
		hi, _ := storage.DecodeKey(k)
		if hi == 10 {
			oldOff, _, _ = decodeLocator(v)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if oldOff < 0 {
		t.Fatal("expiring record not found in captured index view")
	}

	// Expire it while the view is held.
	removed, err := a.Expire(50)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("Expire removed %d records, want 1", removed)
	}

	// The pinned handle still serves the pre-rewrite bytes at the captured
	// offset, even though the path now names the survivors-only file.
	rec, err := storage.ReadConvoyAt(view.recs.f, oldOff)
	if err != nil {
		t.Fatalf("pinned read after expire: %v", err)
	}
	if rec.Feed != "tokyo" || rec.Convoy.End != 10 {
		t.Fatalf("pinned read returned %q end=%d, want the expired record", rec.Feed, rec.Convoy.End)
	}

	// Fresh queries see only the survivor; the view's release drops the
	// last reference to the old inode.
	res, err := a.QueryTime(-100, 200, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].Convoy.End != 100 {
		t.Fatalf("post-expire query returned %d records, want the one survivor", len(res.Records))
	}
	view.close()
	if got := view.recs.refs.Load(); got != 0 {
		t.Fatalf("old read handle refs = %d after view close, want 0", got)
	}
	if st := a.Stats(); st.LiveReaders != 0 || st.LiveSnapshots != 0 {
		t.Fatalf("gauges not drained: live_readers=%d live_snapshots=%d", st.LiveReaders, st.LiveSnapshots)
	}
}

// Queries racing Expire must never error: a page that straddles the
// rewrite either reads its captured pre-rewrite view coherently or drops
// records the rewrite relocated (rewriteGen guard) — it must not fail, and
// every record it does return must be one that was archived.
func TestArchiveQueriesRaceExpire(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	valid := make(map[string]bool)
	recs := genRecords(7, 1500, 0)
	for i, r := range recs {
		// Spread End ticks so successive Expire calls always have victims.
		r.Convoy = model.NewConvoy(r.Convoy.Objs, int32(i/10), int32(i/10)+int32(r.Convoy.Len())-1)
		recs[i] = r
		valid[r.Feed+"\x00"+r.Convoy.Key()] = true
	}
	if err := a.AddBatch(recs); err != nil {
		t.Fatal(err)
	}

	var (
		stop     atomic.Bool
		failures atomic.Int64
		wg       sync.WaitGroup
	)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int32) {
			defer wg.Done()
			for i := int32(0); !stop.Load(); i++ {
				res, err := a.QueryTime(-100, 1<<30, Query{Limit: 50, Budget: 2000})
				if err != nil {
					t.Errorf("query during expire race: %v", err)
					failures.Add(1)
					return
				}
				for _, rec := range res.Records {
					if !valid[rec.Feed+"\x00"+rec.Convoy.Key()] {
						t.Errorf("query returned a record that was never archived: %q", rec.Convoy.Key())
						failures.Add(1)
						return
					}
				}
			}
		}(int32(r))
	}
	// Ratchet the watermark up through the key space, forcing repeated
	// records-file rewrites under the readers.
	for w := int32(10); w <= 150; w += 10 {
		if _, err := a.Expire(w); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatal("reader failures during expire race")
	}
	if st := a.Stats(); st.LiveReaders != 0 || st.LiveSnapshots != 0 {
		t.Fatalf("gauges not drained: live_readers=%d live_snapshots=%d", st.LiveReaders, st.LiveSnapshots)
	}
}
