package archive

// Time-based retention: Expire(before) removes every archived convoy
// whose End tick precedes before, coherently across the records file and
// all three secondary indexes, without ever letting a crash (or a query
// racing the rewrite — impossible anyway, Expire holds the write lock)
// observe a half-deleted convoy.
//
// The protocol has exactly one data commit point, the records-file
// rename:
//
//  1. Commit the watermark. expiredBefore is raised and flushLocked
//     writes it to META (fsynced) while the file and indexes still
//     describe the old state. From here on AddBatch/Backfill drop
//     expired arrivals, and a crash leaves an "expiry pending" marker:
//     the oldest live index entry's End sits below the watermark, which
//     Open detects and repairs by re-running the apply step.
//  2. Rewrite the records file. Survivors are streamed to
//     records.k2cl.tmp (fsynced), then renamed over the original and the
//     directory is fsynced. Nothing before the rename touched the old
//     file or the indexes, so a crash up to here changes nothing; a
//     crash after it leaves META.Offset pointing past the now-shorter
//     file, which Open already treats as "rebuild the indexes from the
//     records file" — the survivors, with the watermark preserved.
//  3. Update the indexes. Expired entries get LSM tombstones; surviving
//     entries are re-put under their unchanged keys with their new file
//     offsets. Sequence numbers are never reused and survivors keep
//     theirs, so query cursors remain valid across the expiry.
//  4. flushLocked commits the new Records/Offset/CRC checkpoint.
//
// Because survivors keep their sequence numbers and the records file
// keeps its order, an expiry is invisible to everything except the
// records it removes.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/storage"
)

// crashPoint, when non-nil (crash tests only), is called at each named
// point of the expiry protocol; it simulates a power loss by panicking
// with errSimulatedCrash. Production never sets it.
var crashPoint func(name string)

var errSimulatedCrash = errors.New("archive: simulated crash")

func crash(name string) {
	if crashPoint != nil {
		crashPoint(name)
	}
}

// Expire removes every archived convoy whose End tick precedes before.
// The watermark is durable and monotonic: a before at or below a previous
// call's is a no-op, and records arriving later with End below the
// watermark are silently dropped (see AddBatch). Returns the number of
// convoys removed.
func (a *Archive) Expire(before int32) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return 0, errors.New("archive: closed")
	}
	if before <= a.expiredBefore {
		return 0, nil
	}
	a.expiredBefore = before
	// Watermark first, data second: once META holds the watermark, every
	// crash state is repairable (Open either re-applies the expiry or
	// rebuilds the indexes from the already-rewritten file).
	if err := a.flushLocked(); err != nil {
		return 0, err
	}
	crash("expire.watermark-committed")
	return a.applyExpireLocked()
}

// applyExpireLocked makes the archive's data match the committed
// watermark: every record with End < expiredBefore leaves the records
// file and all three indexes. It is idempotent — Open calls it to finish
// an expiry a crash interrupted — and a no-op when nothing is below the
// watermark.
func (a *Archive) applyExpireLocked() (int64, error) {
	if end, ok, err := a.minLiveEnd(); err != nil {
		return 0, err
	} else if !ok || end >= a.expiredBefore {
		return 0, nil // nothing below the watermark
	}

	// The records file stores no sequence numbers, and after a previous
	// expiry position no longer implies sequence — recover each record's
	// sequence from its time-index entry (exactly one per record, and the
	// tail replay at Open guarantees every file record has one).
	offSeq := make(map[int64]int32)
	err := a.timeIdx.Scan(minIndexKey(), func(k, v []byte) bool {
		_, seq := storage.DecodeKey(k)
		off, _, _ := decodeLocator(v)
		if int64(seq) >= a.nextSeq || off >= a.synced {
			return true // stale entry (possible only after META loss)
		}
		offSeq[off] = seq
		return true
	})
	if err != nil {
		return 0, err
	}

	// Stream survivors into a temp file; classify the rest for step 3.
	type entry struct {
		seq int32
		off int64 // survivor's offset in the rewritten file
		rec storage.LoggedConvoy
	}
	var surv, dead []entry
	recsPath := filepath.Join(a.dir, recordsName)
	tmpPath := recsPath + ".tmp"
	os.Remove(tmpPath)
	tmp, err := storage.OpenConvoyLogFrom(tmpPath, 0, nil)
	if err != nil {
		return 0, err
	}
	var newCRC uint32
	_, err = storage.ScanConvoyLogFrom(recsPath, 0, func(off int64, rec storage.LoggedConvoy) error {
		seq, ok := offSeq[off]
		if !ok {
			return fmt.Errorf("archive: record at offset %d has no index entry", off)
		}
		if rec.Convoy.End < a.expiredBefore {
			dead = append(dead, entry{seq: seq, rec: rec})
			return nil
		}
		enc, err := storage.EncodeLoggedRecord(rec)
		if err != nil {
			return err
		}
		surv = append(surv, entry{seq: seq, off: tmp.Offset(), rec: rec})
		if err := tmp.AppendEncoded(enc); err != nil {
			return err
		}
		newCRC = crc32.Update(newCRC, crc32.IEEETable, enc)
		return nil
	})
	if err == nil && len(dead) > 0 {
		err = tmp.Sync()
	}
	if err != nil || len(dead) == 0 {
		// len(dead) == 0: the index suggested pending work but the file
		// disagrees (a stale entry after META loss) — nothing to rewrite.
		tmp.Close()
		os.Remove(tmpPath)
		return 0, err
	}
	newSize := tmp.Offset()
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return 0, err
	}
	crash("expire.survivors-written")

	// The data commit. The append handle was synced by the watermark
	// flush and no append can race us (a.mu is held), so closing it loses
	// nothing. The read handle is only unref'd: query pages that captured
	// their view before this point still hold the pre-rewrite inode pinned
	// and keep reading it coherently; the fd closes when the last drains.
	// Any failure from here on leaves the archive unusable for this
	// process — Open repairs from the on-disk state.
	if err := a.recs.Close(); err != nil {
		a.closed = true
		return 0, err
	}
	a.recsRead.unref()
	a.recs, a.recsRead = nil, nil
	if err := os.Rename(tmpPath, recsPath); err != nil {
		a.closed = true
		return 0, err
	}
	if err := syncDir(a.dir); err != nil {
		a.closed = true
		return 0, err
	}
	crash("expire.renamed")
	if a.recs, err = storage.OpenConvoyLogFrom(recsPath, newSize, nil); err != nil {
		a.closed = true
		return 0, err
	}
	rf, err := os.Open(recsPath)
	if err != nil {
		a.closed = true
		return 0, err
	}
	a.recsRead = newReadFile(rf)
	a.rewriteGen.Add(1)
	a.live = int64(len(surv))
	a.synced = newSize
	a.crc = newCRC

	// Step 3: tombstone the dead, relocate the survivors. Keys are
	// recomputed from the records themselves; survivor keys are unchanged
	// (same End/size/objects, same seq), only their locators move.
	for _, e := range dead {
		if err := a.deleteIndexEntries(e.seq, e.rec); err != nil {
			a.closed = true
			return 0, err
		}
	}
	for _, e := range surv {
		if err := a.indexRecord(int64(e.seq), e.off, e.rec); err != nil {
			a.closed = true
			return 0, err
		}
	}
	crash("expire.indexes-updated")
	if err := a.flushLocked(); err != nil {
		a.closed = true
		return 0, err
	}
	a.expiredTotal += int64(len(dead))
	return int64(len(dead)), nil
}

// deleteIndexEntries writes the LSM tombstones that remove one record
// from all three indexes (the inverse of indexRecord).
func (a *Archive) deleteIndexEntries(seq int32, rec storage.LoggedConvoy) error {
	c := rec.Convoy
	if err := a.timeIdx.DeleteKV(storage.EncodeKey(c.End, seq)); err != nil {
		return err
	}
	if err := a.sizeIdx.DeleteKV(storage.EncodeKey(int32(len(c.Objs)), seq)); err != nil {
		return err
	}
	for _, oid := range c.Objs {
		if err := a.objIdx.DeleteKV(storage.EncodeKey(oid, seq)); err != nil {
			return err
		}
	}
	return nil
}

// minLiveEnd returns the smallest End tick among live index entries
// (ok=false when the archive holds none). The time index is keyed by
// (End, seq), so its first non-stale entry is the minimum.
func (a *Archive) minLiveEnd() (int32, bool, error) {
	var (
		end   int32
		found bool
	)
	err := a.timeIdx.Scan(minIndexKey(), func(k, v []byte) bool {
		hi, seq := storage.DecodeKey(k)
		off, _, _ := decodeLocator(v)
		if int64(seq) >= a.nextSeq || off >= a.synced {
			return true
		}
		end, found = hi, true
		return false
	})
	return end, found, err
}

// minIndexKey is the smallest possible index key (scan-from-start).
func minIndexKey() [storage.KeySize]byte {
	return storage.EncodeKey(math.MinInt32, math.MinInt32)
}

// syncDir fsyncs a directory so a just-renamed file inside it survives
// power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// abandon simulates a process kill for crash tests: every handle is
// closed without flushing buffered index state (the records file itself
// is always synced before it matters — AddBatch's records-before-indexes
// invariant). The archive must not be used afterwards.
func (a *Archive) abandon() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closed = true
	if a.timeIdx != nil {
		a.timeIdx.Abandon()
	}
	if a.objIdx != nil {
		a.objIdx.Abandon()
	}
	if a.sizeIdx != nil {
		a.sizeIdx.Abandon()
	}
	if a.recs != nil {
		a.recs.Close()
	}
	if a.recsRead != nil {
		a.recsRead.f.Close() // simulated kill: yank the fd, ignore refs
	}
}
