package archive

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"math"

	"repro/internal/pool"
	"repro/internal/storage"
	"repro/internal/storage/lsm"
)

// Query carries the predicate and paging controls shared by the three
// query shapes. The zero value means: no predicate, DefaultLimit results,
// DefaultBudget index entries.
type Query struct {
	// MinSize keeps only convoys with at least this many objects.
	MinSize int
	// MinDur keeps only convoys lasting at least this many ticks.
	MinDur int
	// Feed, when non-empty, keeps only convoys mined from this feed.
	// Feed names live in the record, not the index, so this predicate
	// costs one record read per otherwise-matching entry.
	Feed string
	// Limit caps the records returned per page (default DefaultLimit,
	// capped at MaxLimit).
	Limit int
	// Budget caps the index entries examined per page (default
	// DefaultBudget, capped at MaxBudget). It bounds the work of a page
	// whose predicate rejects almost everything.
	Budget int
	// Cursor resumes a paginated query; the zero Cursor starts from the
	// beginning.
	Cursor Cursor
}

// Paging bounds. A page stops at whichever of limit/budget trips first and
// hands back a cursor.
const (
	DefaultLimit  = 100
	MaxLimit      = 1000
	DefaultBudget = 1 << 16
	MaxBudget     = 1 << 20
)

func (q Query) limit() int {
	switch {
	case q.Limit <= 0:
		return DefaultLimit
	case q.Limit > MaxLimit:
		return MaxLimit
	}
	return q.Limit
}

func (q Query) budget() int {
	switch {
	case q.Budget <= 0:
		return DefaultBudget
	case q.Budget > MaxBudget:
		return MaxBudget
	}
	return q.Budget
}

// Cursor is an opaque resume position: the first index key the next page
// will examine. Cursors are stable under concurrent archive appends — a
// page never re-examines keys below its cursor, so paging never yields a
// record twice; records archived after the first page began may or may not
// appear, depending on where their keys land.
type Cursor struct {
	key [storage.KeySize]byte
	set bool
}

// String encodes the cursor for transport (16 hex digits; empty for the
// zero cursor).
func (c Cursor) String() string {
	if !c.set {
		return ""
	}
	return hex.EncodeToString(c.key[:])
}

// IsZero reports whether the cursor is the start-of-query position.
func (c Cursor) IsZero() bool { return !c.set }

// ParseCursor decodes a cursor produced by Cursor.String. The empty string
// is the zero cursor.
func ParseCursor(s string) (Cursor, error) {
	if s == "" {
		return Cursor{}, nil
	}
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != storage.KeySize {
		return Cursor{}, errors.New("archive: malformed cursor")
	}
	var c Cursor
	copy(c.key[:], b)
	c.set = true
	return c, nil
}

// Result is one page of query hits.
type Result struct {
	// Records are the matching convoys with their feeds, in index-key
	// order (time queries: by End; object/size queries: by archive order
	// within the key prefix).
	Records []storage.LoggedConvoy
	// Next resumes the query where this page stopped; only meaningful
	// when More.
	Next Cursor
	// More reports that the page stopped at its limit or budget with
	// index entries still unexamined.
	More bool
	// Scanned is the number of index entries this page examined.
	Scanned int
}

// QueryTime returns archived convoys whose lifespan [Start, End] overlaps
// the inclusive tick interval [from, to]. The time index is keyed by End,
// so the scan starts at End = from (anything ending earlier cannot
// overlap) and runs to the end of the index, rejecting entries whose
// derived Start exceeds to without touching the record.
func (a *Archive) QueryTime(from, to int32, q Query) (Result, error) {
	if from > to {
		return Result{}, fmt.Errorf("archive: empty interval [%d,%d]", from, to)
	}
	return a.scan(a.timeIdx, storage.EncodeKey(from, math.MinInt32), nil, q,
		func(end int32, loc locator) bool {
			return end-loc.dur+1 <= to
		},
		func(end int32, rec storage.LoggedConvoy) bool {
			return rec.Convoy.End == end
		})
}

// QueryObject returns archived convoys that contain the object oid, in
// archive order.
func (a *Archive) QueryObject(oid int32, q Query) (Result, error) {
	return a.scan(a.objIdx, storage.EncodeKey(oid, math.MinInt32),
		func(keyOID int32) bool { return keyOID == oid }, q, nil,
		func(keyOID int32, rec storage.LoggedConvoy) bool {
			return rec.Convoy.Objs.Contains(keyOID)
		})
}

// QueryConvoys returns archived convoys with at least q.MinSize objects
// (and whatever other predicates q carries), ordered by size. The size
// index makes the MinSize bound a scan start rather than a filter.
func (a *Archive) QueryConvoys(q Query) (Result, error) {
	minSize := max(q.MinSize, 0)
	if minSize > maxConvoySize {
		minSize = maxConvoySize // unsatisfiable; scan() short-circuits below
	}
	return a.scan(a.sizeIdx, storage.EncodeKey(int32(minSize), math.MinInt32), nil, q, nil,
		func(size int32, rec storage.LoggedConvoy) bool {
			return int32(len(rec.Convoy.Objs)) == size
		})
}

// maxConvoySize mirrors the log codec's plausibility cap.
const maxConvoySize = 1 << 24

type locator struct {
	off  int64
	size int32
	dur  int32
}

// readView is the atomically captured state one query page reads: an LSM
// snapshot of the index, a pinned handle on the records file, and the
// stale-entry guards (nextSeq, synced) that match them. Everything is
// captured under one brief a.mu read-lock acquisition; the page itself then
// runs with NO archive lock held, so a slow (cold-cache, big-budget) page
// cannot stall the archiver's writes, retention, or other queries.
//
// Coherence: the index snapshot pins the index exactly as of capture
// (entries put later are filtered by the seq/synced guards), and the pinned
// read handle keeps the records file AS OF CAPTURE readable even if a
// racing retention rewrite renames a survivors-only file over the path —
// the captured offsets describe the pinned inode, not the new one. Records
// archived after capture may or may not appear, exactly the cursor
// contract's wording for concurrent appends.
type readView struct {
	a       *Archive
	snap    *lsm.Snapshot
	recs    *readFile
	nextSeq int64
	synced  int64
	gen     int64
}

// beginRead captures a read view against idx. The caller must close it.
func (a *Archive) beginRead(idx *lsm.DB) (*readView, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return nil, errors.New("archive: closed")
	}
	snap, err := idx.AcquireSnapshot()
	if err != nil {
		return nil, err
	}
	a.recsRead.ref()
	a.liveReaders.Add(1)
	return &readView{
		a: a, snap: snap, recs: a.recsRead,
		nextSeq: a.nextSeq, synced: a.synced, gen: a.rewriteGen.Load(),
	}, nil
}

// close releases the view's pins. Idempotence is not needed — each page
// closes its view exactly once, via defer.
func (v *readView) close() {
	v.snap.Release()
	v.recs.unref()
	v.a.liveReaders.Add(-1)
}

// scan is the shared paging engine: walk idx from the later of start and
// the query cursor, examine up to budget entries, and collect up to limit
// records passing the predicates. keep (optional) bounds the key range —
// returning false ends the query (used by the object index to stop at the
// next oid). extra (optional) is an additional index-only predicate beyond
// the locator-derived MinSize/MinDur checks. verify cross-checks a
// materialised record against its index entry; with the write path's
// records-before-indexes ordering it never fires, but it keeps a manually
// corrupted archive (records file truncated with META gone, leaving stale
// index entries) from returning records under the wrong key.
func (a *Archive) scan(idx *lsm.DB, start [storage.KeySize]byte,
	keep func(hi int32) bool, q Query, extra func(hi int32, loc locator) bool,
	verify func(hi int32, rec storage.LoggedConvoy) bool) (Result, error) {
	a.queries.Add(1)
	// Unsatisfiable predicates answer an empty page immediately. Without
	// this, a min_size above the codec's convoy-size cap (or a min_dur no
	// int32 lifespan can reach) would reject every entry it examines and
	// page budget-sized chunks of nothing across the whole index.
	if q.MinSize > maxConvoySize || q.MinDur > math.MaxInt32 {
		return Result{}, nil
	}
	view, err := a.beginRead(idx)
	if err != nil {
		return Result{}, err
	}
	defer view.close()
	if q.Cursor.set && bytes.Compare(q.Cursor.key[:], start[:]) > 0 {
		start = q.Cursor.key
	}
	var (
		limit  = q.limit()
		budget = q.budget()
		res    Result
	)
	// Two phases: the index walk collects up to limit candidate locators
	// (index-only predicates, no I/O beyond the index's own block reads),
	// then records are materialised in a parallel fan-out. A record-level
	// reject (the feed filter, a stale entry) can leave a page shorter
	// than limit; More/cursor still make paging complete.
	type cand struct {
		hi  int32
		loc locator
	}
	var cands []cand
	err = view.snap.Scan(start, func(k, v []byte) bool {
		hi, seq := storage.DecodeKey(k)
		if keep != nil && !keep(hi) {
			return false // past the key range: query exhausted
		}
		if len(cands) >= limit || res.Scanned >= budget {
			// Page full before examining this entry: resume exactly here.
			copy(res.Next.key[:], k)
			res.Next.set = true
			res.More = true
			return false
		}
		res.Scanned++
		if int64(seq) >= view.nextSeq {
			// An entry this view must not see: archived after capture (the
			// snapshot's live memtable can surface those), or stale from
			// before a records-file truncation. Nothing to materialise. It
			// still consumed budget above — a corrupted archive must not
			// turn a bounded page into an unbounded index walk.
			return true
		}
		off, size, dur := decodeLocator(v)
		if off >= view.synced {
			// An offset past the captured end of the records file: a stale
			// entry whose record a retention rewrite (or a truncation)
			// removed. Skipped here so a query racing nothing worse than
			// a corrupted index never reads past the file, let alone
			// returns a half-deleted convoy.
			return true
		}
		loc := locator{off: off, size: size, dur: dur}
		if int(size) < q.MinSize || int(dur) < q.MinDur {
			return true
		}
		if extra != nil && !extra(hi, loc) {
			return true
		}
		cands = append(cands, cand{hi: hi, loc: loc})
		return true
	})
	a.entriesScanned.Add(int64(res.Scanned))
	if err != nil {
		return Result{}, err
	}
	// Materialisation phase: fan the record preads across a worker group.
	// Slot i holds candidate i's record, and the filter pass below walks
	// the slots in candidate order, so the assembled page is byte-identical
	// to a sequential materialisation — same records, same order, same
	// cursor — regardless of read completion order. The pinned view.recs
	// handle makes every captured offset valid even mid-retention.
	recs := make([]storage.LoggedConvoy, len(cands))
	read := make([]bool, len(cands))
	err = pool.ForEach(pool.Size(0), len(cands), func(i int) error {
		rec, err := storage.ReadConvoyAt(view.recs.f, cands[i].loc.off)
		if err != nil {
			if view.a.rewriteGen.Load() != view.gen {
				// A retention rewrite landed mid-page and re-pointed this
				// entry at its post-rewrite offset, which means nothing in
				// the pinned pre-rewrite file. Drop the record — the page
				// raced its deletion/relocation — rather than failing.
				return nil
			}
			return err
		}
		recs[i] = rec
		read[i] = true
		return nil
	})
	a.recordsRead.Add(int64(len(cands)))
	if err != nil {
		return Result{}, err
	}
	for i, c := range cands {
		if !read[i] {
			continue
		}
		rec := recs[i]
		if !verify(c.hi, rec) ||
			int32(len(rec.Convoy.Objs)) != c.loc.size ||
			rec.Convoy.End-rec.Convoy.Start+1 != c.loc.dur {
			continue // index entry does not describe this record: stale
		}
		if q.Feed != "" && rec.Feed != q.Feed {
			continue
		}
		res.Records = append(res.Records, rec)
	}
	return res, nil
}
