package archive

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// genRecords produces a deterministic pseudo-random batch of convoy-log
// records: a handful of feeds, convoy sizes 1..12, lifespans crossing
// negative ticks, and (with dupEvery > 0) periodic exact duplicates — the
// shape a real log has after evictions and re-ingest.
func genRecords(seed int64, n, dupEvery int) []storage.LoggedConvoy {
	rng := rand.New(rand.NewSource(seed))
	feeds := []string{"tokyo", "osaka", "kyoto", "nara", ""}
	recs := make([]storage.LoggedConvoy, 0, n)
	for i := 0; i < n; i++ {
		if dupEvery > 0 && i > 0 && i%dupEvery == 0 {
			recs = append(recs, recs[rng.Intn(len(recs))])
			continue
		}
		size := 1 + rng.Intn(12)
		ids := make([]int32, size)
		for j := range ids {
			ids[j] = int32(rng.Intn(64)) - 8
		}
		start := int32(rng.Intn(140)) - 20
		end := start + int32(rng.Intn(30))
		recs = append(recs, storage.LoggedConvoy{
			Feed:   feeds[rng.Intn(len(feeds))],
			Convoy: model.NewConvoy(model.NewObjSet(ids...), start, end),
		})
	}
	return recs
}

// writeLog writes records (plus interleaved flush markers) to a fresh
// convoy log and returns the non-marker records, which are what the
// archive must end up holding.
func writeLog(t testing.TB, path string, recs []storage.LoggedConvoy) {
	t.Helper()
	l, err := storage.CreateConvoyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if err := l.Append(r.Feed, r.Convoy); err != nil {
			t.Fatal(err)
		}
		if i%7 == 3 { // flush markers ride along in real logs; archive skips them
			if err := l.Append(r.Feed, storage.FlushMarker()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// canon maps a record set to a sorted multiset of canonical strings, the
// comparison form used throughout: two result sets are equal iff their
// canonical forms are byte-identical.
func canon(recs []storage.LoggedConvoy) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Feed + "\x00" + r.Convoy.Key()
	}
	sort.Strings(out)
	return out
}

func sameSet(t *testing.T, label string, got, want []storage.LoggedConvoy) {
	t.Helper()
	g, w := canon(got), canon(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d records, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: record %d differs:\n got %q\nwant %q", label, i, g[i], w[i])
		}
	}
}

// collect pages through a query until exhaustion, asserting cursor
// round-trips survive transport encoding.
func collect(t testing.TB, run func(Query) (Result, error), q Query) []storage.LoggedConvoy {
	t.Helper()
	var out []storage.LoggedConvoy
	for page := 0; ; page++ {
		res, err := run(q)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res.Records...)
		if !res.More {
			return out
		}
		cur, err := ParseCursor(res.Next.String())
		if err != nil {
			t.Fatalf("page %d: cursor failed transport round-trip: %v", page, err)
		}
		q.Cursor = cur
		if page > 1<<20 {
			t.Fatal("query never exhausted")
		}
	}
}

// matches is the brute-force reference predicate for all three query
// shapes (oid < 0 disables the membership test, overlap nil disables the
// interval test).
func matches(rec storage.LoggedConvoy, q Query, overlap *model.Interval, oid *int32) bool {
	c := rec.Convoy
	if len(c.Objs) < q.MinSize || c.Len() < q.MinDur {
		return false
	}
	if q.Feed != "" && rec.Feed != q.Feed {
		return false
	}
	if overlap != nil && !c.Interval().Overlaps(*overlap) {
		return false
	}
	if oid != nil && !c.Objs.Contains(*oid) {
		return false
	}
	return true
}

func brute(recs []storage.LoggedConvoy, q Query, overlap *model.Interval, oid *int32) []storage.LoggedConvoy {
	var out []storage.LoggedConvoy
	for _, r := range recs {
		if matches(r, q, overlap, oid) {
			out = append(out, r)
		}
	}
	return out
}

func TestArchiveAddAndQuery(t *testing.T) {
	a, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	recs := genRecords(1, 400, 13)
	if err := a.AddBatch(recs); err != nil {
		t.Fatal(err)
	}
	if a.Count() != int64(len(recs)) {
		t.Fatalf("count %d, want %d", a.Count(), len(recs))
	}

	// Flush markers handed to AddBatch are skipped, not archived.
	if err := a.Add(storage.LoggedConvoy{Feed: "tokyo", Convoy: storage.FlushMarker()}); err != nil {
		t.Fatal(err)
	}
	if a.Count() != int64(len(recs)) {
		t.Fatalf("flush marker was archived: count %d", a.Count())
	}

	iv := model.Interval{Start: 10, End: 40}
	q := Query{MinSize: 3, MinDur: 5, Limit: 17}
	got := collect(t, func(q Query) (Result, error) { return a.QueryTime(iv.Start, iv.End, q) }, q)
	sameSet(t, "time query", got, brute(recs, q, &iv, nil))

	for _, oid := range []int32{-8, 0, 17, 99 /* absent */} {
		oid := oid
		got := collect(t, func(q Query) (Result, error) { return a.QueryObject(oid, q) }, Query{Limit: 10})
		sameSet(t, fmt.Sprintf("object query oid=%d", oid), got, brute(recs, Query{}, nil, &oid))
	}

	q = Query{MinSize: 6, MinDur: 12, Feed: "osaka", Limit: 5}
	got = collect(t, func(q Query) (Result, error) { return a.QueryConvoys(q) }, q)
	sameSet(t, "convoys query", got, brute(recs, q, nil, nil))
}

func TestArchiveQueryBudgetPaging(t *testing.T) {
	a, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	recs := genRecords(2, 300, 0)
	if err := a.AddBatch(recs); err != nil {
		t.Fatal(err)
	}
	// A tiny budget with a selective predicate: every page examines at most
	// Budget entries, yet paging to exhaustion still finds everything.
	q := Query{MinSize: 11, Budget: 16, Limit: 1000}
	var pages, scanned int
	var got []storage.LoggedConvoy
	for {
		res, err := a.QueryConvoys(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Scanned > 16 {
			t.Fatalf("page examined %d entries, budget was 16", res.Scanned)
		}
		pages++
		scanned += res.Scanned
		got = append(got, res.Records...)
		if !res.More {
			break
		}
		q.Cursor = res.Next
	}
	want := brute(recs, Query{MinSize: 11}, nil, nil)
	sameSet(t, "budget paging", got, want)
	if pages < 2 {
		t.Fatalf("expected multiple pages, got %d (scanned %d)", pages, scanned)
	}
}

func TestArchiveReopen(t *testing.T) {
	dir := t.TempDir()
	recs := genRecords(3, 250, 11)
	a, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddBatch(recs[:150]); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if a, err = Open(dir, nil); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 150 {
		t.Fatalf("reopened count %d, want 150", a.Count())
	}
	if err := a.AddBatch(recs[150:]); err != nil {
		t.Fatal(err)
	}
	iv := model.Interval{Start: 0, End: 200}
	got := collect(t, func(q Query) (Result, error) { return a.QueryTime(iv.Start, iv.End, q) }, Query{Limit: 23})
	sameSet(t, "after reopen", got, brute(recs, Query{}, &iv, nil))
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestArchiveReopenStaleMeta simulates the crash window where index
// memtables died before reaching SSTables: the META watermark is erased
// (worse than any real crash leaves it), so Open must re-index the whole
// records file and answer queries correctly.
func TestArchiveReopenStaleMeta(t *testing.T) {
	dir := t.TempDir()
	recs := genRecords(4, 200, 0)
	a, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, metaName)); err != nil {
		t.Fatal(err)
	}
	if a, err = Open(dir, nil); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	oid := int32(5)
	got := collect(t, func(q Query) (Result, error) { return a.QueryObject(oid, q) }, Query{})
	sameSet(t, "stale meta", got, brute(recs, Query{}, nil, &oid))
}

// TestArchiveReopenTornRecords cuts the records file mid-record (a crash
// during an append before the fsync) and checks Open truncates the tail
// and serves the surviving records.
func TestArchiveReopenTornRecords(t *testing.T) {
	dir := t.TempDir()
	recs := genRecords(5, 50, 0)
	a, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Erase META too: a torn tail plus a fresh watermark is the
	// worst-case combination (full re-index over a truncated file).
	if err := os.Remove(filepath.Join(dir, metaName)); err != nil {
		t.Fatal(err)
	}
	recsPath := filepath.Join(dir, recordsName)
	data, err := os.ReadFile(recsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(recsPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if a, err = Open(dir, nil); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Count() != int64(len(recs)-1) {
		t.Fatalf("count %d after torn tail, want %d", a.Count(), len(recs)-1)
	}
	iv := model.Interval{Start: -100, End: 300}
	got := collect(t, func(q Query) (Result, error) { return a.QueryTime(iv.Start, iv.End, q) }, Query{})
	sameSet(t, "torn records", got, brute(recs[:len(recs)-1], Query{}, &iv, nil))
}

func TestParseCursor(t *testing.T) {
	if c, err := ParseCursor(""); err != nil || !c.IsZero() {
		t.Fatalf("empty cursor: %v %v", c, err)
	}
	for _, bad := range []string{"zz", "00112233", "00112233445566778899"} {
		if _, err := ParseCursor(bad); err == nil {
			t.Fatalf("malformed cursor %q accepted", bad)
		}
	}
}

// TestArchiveOpenEmptyRecordsFile: a crash right after archive creation
// leaves a 0-byte (or header-short) records file — the header sits in the
// write buffer until the first sync. Open must recover exactly like
// OpenConvoyLog does (recreate), not fail every subsequent startup.
func TestArchiveOpenEmptyRecordsFile(t *testing.T) {
	for name, content := range map[string][]byte{"empty": {}, "short": []byte("K2C")} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, recordsName), content, 0o644); err != nil {
				t.Fatal(err)
			}
			a, err := Open(dir, nil)
			if err != nil {
				t.Fatalf("Open with %s records file: %v", name, err)
			}
			defer a.Close()
			recs := genRecords(91, 20, 0)
			if err := a.AddBatch(recs); err != nil {
				t.Fatal(err)
			}
			got := collect(t, func(q Query) (Result, error) { return a.QueryConvoys(q) }, Query{})
			sameSet(t, "after recovery", got, recs)
		})
	}
}

// TestArchiveUnsatisfiablePredicates: a min_size beyond the codec's convoy
// cap or a min_dur beyond any int32 lifespan must answer one empty page,
// not walk the whole index in budget-sized chunks of nothing.
func TestArchiveUnsatisfiablePredicates(t *testing.T) {
	a, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.AddBatch(genRecords(17, 200, 0)); err != nil {
		t.Fatal(err)
	}
	for name, q := range map[string]Query{
		"size": {MinSize: maxConvoySize + 1},
		"dur":  {MinDur: 1 << 32},
	} {
		for qname, run := range map[string]func(Query) (Result, error){
			"convoys": a.QueryConvoys,
			"time":    func(q Query) (Result, error) { return a.QueryTime(-100, 300, q) },
			"object":  func(q Query) (Result, error) { return a.QueryObject(1, q) },
		} {
			res, err := run(q)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, qname, err)
			}
			if len(res.Records) != 0 || res.More || res.Scanned != 0 {
				t.Fatalf("%s/%s: got %d records, more=%v, scanned=%d — want an immediately empty page",
					name, qname, len(res.Records), res.More, res.Scanned)
			}
		}
	}
}
