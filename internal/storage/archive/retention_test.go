package archive

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// keepAfter filters the brute-force reference by the retention watermark:
// a record survives iff its End tick is at or past the watermark.
func keepAfter(recs []storage.LoggedConvoy, before int32) []storage.LoggedConvoy {
	var out []storage.LoggedConvoy
	for _, r := range recs {
		if r.Convoy.End >= before {
			out = append(out, r)
		}
	}
	return out
}

// collectAll drains every record from the archive through the time index
// (the full-axis interval query).
func collectAll(t testing.TB, a *Archive, limit int) []storage.LoggedConvoy {
	t.Helper()
	return collect(t, func(q Query) (Result, error) {
		return a.QueryTime(math.MinInt32, math.MaxInt32, q)
	}, Query{Limit: limit})
}

func TestArchiveExpire(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(t.TempDir(), "log.k2cl")
	recs := genRecords(11, 400, 9)
	writeLog(t, logPath, recs)

	a, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Backfill(logPath); err != nil {
		t.Fatal(err)
	}
	const before = int32(60)
	expired, err := a.Expire(before)
	if err != nil {
		t.Fatal(err)
	}
	want := keepAfter(recs, before)
	if wantExpired := int64(len(recs) - len(want)); expired != wantExpired {
		t.Fatalf("Expire removed %d records, want %d", expired, wantExpired)
	}
	if expired == 0 {
		t.Fatal("test is vacuous: nothing expired")
	}
	if got := a.Count(); got != int64(len(want)) {
		t.Fatalf("Count() = %d after expiry, want %d", got, len(want))
	}

	// All three query shapes serve exactly the survivors.
	sameSet(t, "time query", collectAll(t, a, 37), want)
	oid := int32(5)
	sameSet(t, "object query",
		collect(t, func(q Query) (Result, error) { return a.QueryObject(oid, q) }, Query{}),
		brute(want, Query{}, nil, &oid))
	sameSet(t, "size query",
		collect(t, a.QueryConvoys, Query{MinSize: 4}),
		brute(want, Query{MinSize: 4}, nil, nil))

	// The watermark survives a reopen, and a backfill from the full log
	// neither diverges nor resurrects expired history.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if a, err = Open(dir, nil); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if st := a.Stats(); st.ExpiredBefore == nil || *st.ExpiredBefore != before {
		t.Fatalf("watermark did not survive reopen: %+v", st.ExpiredBefore)
	}
	sameSet(t, "after reopen", collectAll(t, a, 100), want)
	if added, err := a.Backfill(logPath); err != nil || added != 0 {
		t.Fatalf("Backfill after expiry: added %d, err %v (want 0, nil)", added, err)
	}
	sameSet(t, "after backfill", collectAll(t, a, 100), want)

	// Expired-on-arrival records are silently dropped; fresh ones land.
	late := storage.LoggedConvoy{Feed: "late", Convoy: model.NewConvoy(model.NewObjSet(1, 2, 3), 10, before-1)}
	fresh := storage.LoggedConvoy{Feed: "fresh", Convoy: model.NewConvoy(model.NewObjSet(4, 5, 6), 10, before)}
	if err := a.AddBatch([]storage.LoggedConvoy{late, fresh}); err != nil {
		t.Fatal(err)
	}
	want = append(want, fresh)
	sameSet(t, "after late add", collectAll(t, a, 100), want)
}

func TestExpireWatermarkMonotonic(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	recs := genRecords(3, 60, 0)
	if err := a.AddBatch(recs); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Expire(50); err != nil {
		t.Fatal(err)
	}
	// Lower (and equal) watermarks are no-ops, not rollbacks.
	for _, before := range []int32{50, 10, math.MinInt32 + 1} {
		if n, err := a.Expire(before); err != nil || n != 0 {
			t.Fatalf("Expire(%d) after Expire(50): removed %d, err %v", before, n, err)
		}
	}
	if st := a.Stats(); st.ExpiredBefore == nil || *st.ExpiredBefore != 50 {
		t.Fatalf("watermark moved backwards: %+v", st.ExpiredBefore)
	}
	sameSet(t, "after no-op expires", collectAll(t, a, 100), keepAfter(recs, 50))
}

// TestExpireCursorStability pages a query, expires records between pages,
// and checks the second page resumes exactly where the first stopped:
// survivors keep their sequence numbers, so a pre-expiry cursor neither
// skips nor repeats a surviving record.
func TestExpireCursorStability(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	recs := genRecords(7, 300, 0)
	if err := a.AddBatch(recs); err != nil {
		t.Fatal(err)
	}
	first, err := a.QueryTime(math.MinInt32, math.MaxInt32, Query{Limit: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !first.More {
		t.Fatal("test needs more than one page")
	}
	const before = int32(55)
	if n, err := a.Expire(before); err != nil || n == 0 {
		t.Fatalf("Expire: removed %d, err %v", n, err)
	}
	rest := collect(t, func(q Query) (Result, error) {
		return a.QueryTime(math.MinInt32, math.MaxInt32, q)
	}, Query{Limit: 40, Cursor: first.Next})
	// The resumed pages must yield exactly the survivors the first page
	// did not: the time index orders by (End, seq), the first page covered
	// a prefix of End values, and expiry only removed End < before.
	got := append(append([]storage.LoggedConvoy{}, keepAfter(first.Records, before)...), rest...)
	sameSet(t, "paged across expiry", got, keepAfter(recs, before))
}

// --- crash simulation ----------------------------------------------------

// expireCrashPoints are the protocol's crash windows, in order.
var expireCrashPoints = []string{
	"expire.watermark-committed",
	"expire.survivors-written",
	"expire.renamed",
	"expire.indexes-updated",
}

// armCrash installs a one-shot crash at the nth occurrence of the named
// point and returns a fired() probe. Cleanup disarms it.
func armCrash(t *testing.T, name string, nth int) func() bool {
	t.Helper()
	seen, fired := 0, false
	crashPoint = func(p string) {
		if p != name {
			return
		}
		if seen++; seen > nth {
			fired = true
			panic(errSimulatedCrash)
		}
	}
	t.Cleanup(func() { crashPoint = nil })
	return func() bool { return fired }
}

// expectCrash runs fn absorbing the simulated-crash panic.
func expectCrash(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil && r != errSimulatedCrash {
			panic(r)
		}
	}()
	fn()
}

func TestExpireCrashPoints(t *testing.T) {
	const before = int32(60)
	recs := genRecords(23, 250, 7)
	logPath := filepath.Join(t.TempDir(), "log.k2cl")
	writeLog(t, logPath, recs)
	for _, point := range expireCrashPoints {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			a, err := Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.Backfill(logPath); err != nil {
				t.Fatal(err)
			}
			fired := armCrash(t, point, 0)
			expectCrash(t, func() {
				if _, err := a.Expire(before); err != nil {
					t.Errorf("Expire failed instead of crashing: %v", err)
				}
			})
			if !fired() {
				t.Fatalf("crash point %s never fired", point)
			}
			crashPoint = nil
			a.abandon()

			// Reopen: recovery must complete the expiry (the watermark was
			// the first thing committed) and serve exactly the survivors.
			a, err = Open(dir, nil)
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", point, err)
			}
			defer a.Close()
			if st := a.Stats(); st.ExpiredBefore == nil || *st.ExpiredBefore != before {
				t.Fatalf("watermark lost across crash at %s: %+v", point, st.ExpiredBefore)
			}
			want := keepAfter(recs, before)
			sameSet(t, "after crash+reopen", collectAll(t, a, 61), want)
			oid := int32(3)
			sameSet(t, "object query after crash",
				collect(t, func(q Query) (Result, error) { return a.QueryObject(oid, q) }, Query{}),
				brute(want, Query{}, nil, &oid))

			// The archive must remain fully usable: backfill coherence and
			// fresh writes both survive the repaired state.
			if added, err := a.Backfill(logPath); err != nil || added != 0 {
				t.Fatalf("Backfill after crash at %s: added %d, err %v", point, added, err)
			}
			fresh := storage.LoggedConvoy{Feed: "post", Convoy: model.NewConvoy(model.NewObjSet(9, 10, 11), 70, 90)}
			if err := a.AddBatch([]storage.LoggedConvoy{fresh}); err != nil {
				t.Fatal(err)
			}
			sameSet(t, "write after crash", collectAll(t, a, 100), append(want, fresh))
		})
	}
}

// TestOpenCrashDuringExpiryRecovery crashes the recovery itself: Open is
// finishing an interrupted expiry when the process dies again. The next
// Open must still converge.
func TestOpenCrashDuringExpiryRecovery(t *testing.T) {
	const before = int32(55)
	recs := genRecords(31, 200, 0)
	dir := t.TempDir()
	a, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddBatch(recs); err != nil {
		t.Fatal(err)
	}
	fired := armCrash(t, "expire.watermark-committed", 0)
	expectCrash(t, func() { a.Expire(before) })
	if !fired() {
		t.Fatal("first crash never fired")
	}
	a.abandon()

	// Second crash: mid-recovery, right after the records-file rename.
	fired = armCrash(t, "expire.renamed", 0)
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != errSimulatedCrash {
					panic(r)
				}
				crashed = true
			}
		}()
		if a, err = Open(dir, nil); err != nil {
			t.Fatalf("recovery Open errored instead of crashing: %v", err)
		}
	}()
	if !crashed || !fired() {
		t.Fatal("recovery crash never fired")
	}
	crashPoint = nil

	a, err = Open(dir, nil)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer a.Close()
	sameSet(t, "after double crash", collectAll(t, a, 100), keepAfter(recs, before))
}

// FuzzArchiveCrash drives a random add/flush/expire workload, kills the
// process at a fuzz-chosen point of the expiry protocol, reopens, and
// asserts the archive serves exactly the accepted records at or past the
// reopened watermark — the brute-force model of retention.
func FuzzArchiveCrash(f *testing.F) {
	f.Add([]byte{0, 0, 10, 40, 90, 200, 130, 5, 61, 33})
	f.Add([]byte{2, 1, 7, 7, 7, 47, 255, 12, 89, 61, 200, 44, 18})
	f.Add([]byte{3, 0, 200, 100, 61, 40, 5, 5, 5, 90, 33, 250, 61})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		dir := t.TempDir()
		point := expireCrashPoints[int(data[0])%len(expireCrashPoints)]
		nth := int(data[1]) % 3
		ops := data[2:]

		// Tiny cache so index memtables actually flush and compact.
		a, err := Open(dir, &Options{CacheBytes: 3 * 4096})
		if err != nil {
			t.Fatal(err)
		}
		var submitted []storage.LoggedConvoy
		seen := 0
		crashPoint = func(p string) {
			if p == point {
				if seen++; seen > nth {
					panic(errSimulatedCrash)
				}
			}
		}
		defer func() { crashPoint = nil }()

		crashed := false
		step := func(op func() error) {
			defer func() {
				if r := recover(); r != nil {
					if r != errSimulatedCrash {
						panic(r)
					}
					crashed = true
				}
			}()
			if err := op(); err != nil {
				t.Fatalf("op failed without crashing: %v", err)
			}
		}
		for i := 0; i < len(ops) && !crashed; i++ {
			b := ops[i]
			switch b % 7 {
			case 5:
				step(func() error { return a.Flush() })
			case 6:
				step(func() error { _, err := a.Expire(int32(b)); return err })
			default:
				end := int32(b)
				rec := storage.LoggedConvoy{
					Feed:   fmt.Sprintf("f%d", b%3),
					Convoy: model.NewConvoy(model.NewObjSet(int32(b%11), int32(b%11)+1, int32(i%5)+20), end-int32(b%13), end),
				}
				submitted = append(submitted, rec)
				step(func() error { return a.AddBatch([]storage.LoggedConvoy{rec}) })
			}
		}
		crashPoint = nil
		a.abandon()

		a, err = Open(dir, &Options{CacheBytes: 3 * 4096})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer a.Close()
		watermark := int32(math.MinInt32)
		if st := a.Stats(); st.ExpiredBefore != nil {
			watermark = *st.ExpiredBefore
		}
		want := keepAfter(submitted, watermark)
		sameSet(t, "reopened archive vs model", collectAll(t, a, 7), want)
		if got := a.Count(); got != int64(len(want)) {
			t.Fatalf("Count() = %d, want %d", got, len(want))
		}
		// And the reopened archive keeps working.
		fresh := storage.LoggedConvoy{Feed: "post", Convoy: model.NewConvoy(model.NewObjSet(1, 2, 3), 300, 400)}
		if err := a.AddBatch([]storage.LoggedConvoy{fresh}); err != nil {
			t.Fatal(err)
		}
		sameSet(t, "post-recovery write", collectAll(t, a, 100), append(want, fresh))
	})
}

// TestRetentionDiskPlateau churns records through a retention window and
// asserts the archive's disk footprint plateaus instead of growing with
// history: the records file stays bounded by the window, and the indexes
// give the space back once their tombstones reach the bottom level.
func TestRetentionDiskPlateau(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, &Options{CacheBytes: 3 * 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	rng := rand.New(rand.NewSource(99))
	tick := int32(0)
	addWindow := func() {
		batch := make([]storage.LoggedConvoy, 0, 40)
		for i := 0; i < 40; i++ {
			end := tick + int32(rng.Intn(10))
			ids := []int32{int32(rng.Intn(40)), int32(rng.Intn(40)) + 40, int32(rng.Intn(40)) + 80}
			batch = append(batch, storage.LoggedConvoy{
				Feed:   "churn",
				Convoy: model.NewConvoy(model.NewObjSet(ids...), end-int32(rng.Intn(20)), end),
			})
		}
		tick += 10
		if err := a.AddBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	compactAll := func() {
		for _, db := range []interface{ Compact() error }{a.timeIdx, a.objIdx, a.sizeIdx} {
			if err := db.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	measure := func() int64 {
		var total int64
		if err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() {
				total += info.Size()
			}
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return total
	}

	const window = int32(80) // ticks of history retained
	var base int64
	for round := 0; round < 90; round++ {
		addWindow()
		if _, err := a.Expire(tick - window); err != nil {
			t.Fatal(err)
		}
		if round == 30 {
			compactAll()
			base = measure()
		}
	}
	compactAll()
	final := measure()
	if base == 0 {
		t.Fatal("baseline measured as zero")
	}
	// 60 further rounds added ~7× the retained window's worth of records;
	// without retention reclaiming space the footprint would multiply.
	// Generous slack absorbs LSM shape variance.
	if final > base*2 {
		t.Fatalf("disk footprint grew under churn with retention on: base %d bytes, final %d bytes", base, final)
	}
	if got, want := a.Count(), int64(0); got <= want {
		t.Fatalf("Count() = %d, want records retained in the live window", got)
	}
}

// BenchmarkRetentionSteadyState measures the cost of one churn round at a
// steady-state archive size: add a window of records, expire the oldest.
func BenchmarkRetentionSteadyState(b *testing.B) {
	dir := b.TempDir()
	a, err := Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	rng := rand.New(rand.NewSource(7))
	tick := int32(0)
	addWindow := func() {
		batch := make([]storage.LoggedConvoy, 0, 100)
		for i := 0; i < 100; i++ {
			end := tick + int32(rng.Intn(10))
			batch = append(batch, storage.LoggedConvoy{
				Feed:   "bench",
				Convoy: model.NewConvoy(model.NewObjSet(int32(rng.Intn(200)), int32(rng.Intn(200))+200, int32(rng.Intn(200))+400), end-5, end),
			})
		}
		tick += 10
		if err := a.AddBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	const window = int32(100)
	for i := 0; i < 12; i++ { // reach steady state before timing
		addWindow()
		if _, err := a.Expire(tick - window); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addWindow()
		if _, err := a.Expire(tick - window); err != nil {
			b.Fatal(err)
		}
	}
}
