package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// encodeFrames concatenates frames for a sequence of (t, positions) ticks.
func encodeFrames(t *testing.T, ticks []testFrame) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, tk := range ticks {
		buf, err = AppendBatchFrame(buf, tk.t, tk.pos)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

type testFrame struct {
	t   int32
	pos []model.ObjPos
}

// decodeFrames decodes a stream to the end, failing the test on any error.
func decodeFrames(t *testing.T, data []byte) []testFrame {
	t.Helper()
	dec := NewBatchFrameReader(bytes.NewReader(data))
	var out []testFrame
	for {
		tt, pos, err := dec.Next(nil)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("decode frame %d: %v", len(out), err)
		}
		out = append(out, testFrame{t: tt, pos: pos})
	}
}

func randFrame(rng *rand.Rand, t int32) testFrame {
	n := rng.Intn(50)
	pos := make([]model.ObjPos, n)
	for i := range pos {
		pos[i] = model.ObjPos{OID: rng.Int31(), X: rng.NormFloat64() * 100, Y: rng.NormFloat64() * 100}
	}
	return testFrame{t: t, pos: pos}
}

func framesEqual(a, b []testFrame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].t != b[i].t || len(a[i].pos) != len(b[i].pos) {
			return false
		}
		for j := range a[i].pos {
			p, q := a[i].pos[j], b[i].pos[j]
			// Bit equality, not ==: NaN payloads must round-trip too.
			if p.OID != q.OID ||
				math.Float64bits(p.X) != math.Float64bits(q.X) ||
				math.Float64bits(p.Y) != math.Float64bits(q.Y) {
				return false
			}
		}
	}
	return true
}

func TestBatchFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ticks := []testFrame{
		{t: 0, pos: nil}, // empty snapshot is legal
		{t: -5, pos: []model.ObjPos{{OID: -1, X: math.Inf(1), Y: math.NaN()}}},
	}
	for i := int32(0); i < 20; i++ {
		ticks = append(ticks, randFrame(rng, i))
	}
	data := encodeFrames(t, ticks)
	got := decodeFrames(t, data)
	if !framesEqual(ticks, got) {
		t.Fatalf("round trip mismatch: sent %d frames, got %d", len(ticks), len(got))
	}
}

// TestBatchFrameBufferReuse drives one reader over many frames with a
// caller-owned position buffer and checks both correctness and that the
// decode loop is allocation-free once buffers are warm.
func TestBatchFrameBufferReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var ticks []testFrame
	for i := int32(0); i < 64; i++ {
		ticks = append(ticks, randFrame(rng, i))
	}
	data := encodeFrames(t, ticks)

	dec := NewBatchFrameReader(bytes.NewReader(data))
	buf := make([]model.ObjPos, 0, 64)
	for i := range ticks {
		tt, pos, err := dec.Next(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if tt != ticks[i].t || !framesEqual([]testFrame{{t: tt, pos: pos}}, ticks[i:i+1]) {
			t.Fatalf("frame %d mismatch", i)
		}
		buf = pos[:0]
	}
	if _, _, err := dec.Next(buf); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}

	// Steady state: decoding the same stream again through the same reader
	// must not allocate (the frame buffer and position buffer are warm).
	allocs := testing.AllocsPerRun(20, func() {
		dec.Reset(bytes.NewReader(data))
		for {
			_, pos, err := dec.Next(buf[:0])
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			buf = pos[:0]
		}
	})
	if allocs > 1 { // bytes.NewReader itself accounts for the one
		t.Fatalf("warm decode allocates %.1f times per stream, want ≤1", allocs)
	}
}

// TestBatchFrameTruncation cuts a valid two-frame stream at every byte
// offset: every cut must decode the frames wholly before it and then fail
// with io.ErrUnexpectedEOF (mid-frame) or io.EOF (at a boundary) — never a
// panic, never garbage data.
func TestBatchFrameTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ticks := []testFrame{randFrame(rng, 1), randFrame(rng, 2)}
	data := encodeFrames(t, ticks)
	frame0, err := AppendBatchFrame(nil, ticks[0].t, ticks[0].pos)
	if err != nil {
		t.Fatal(err)
	}
	boundary := len(frame0)
	for cut := 0; cut < len(data); cut++ {
		dec := NewBatchFrameReader(bytes.NewReader(data[:cut]))
		var got int
		for {
			_, _, err := dec.Next(nil)
			if err == nil {
				got++
				continue
			}
			wantClean := cut == 0 || cut == boundary
			if wantClean && err != io.EOF {
				t.Fatalf("cut %d: want io.EOF at frame boundary, got %v", cut, err)
			}
			if !wantClean && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d: want io.ErrUnexpectedEOF, got %v", cut, err)
			}
			break
		}
		want := 0
		if cut >= boundary {
			want = 1
		}
		if got != want {
			t.Fatalf("cut %d: decoded %d whole frames, want %d", cut, got, want)
		}
	}
}

// TestBatchFrameCorruption flips every byte of a valid frame in turn; every
// flip must be rejected (CRC or a structural check), and none may panic.
func TestBatchFrameCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := encodeFrames(t, []testFrame{randFrame(rng, 7)})
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		dec := NewBatchFrameReader(bytes.NewReader(mut))
		_, _, err := dec.Next(nil)
		if err == nil {
			// A flip in the payload-length varint can shift the framing so
			// the first "frame" still checks out only if CRC collides —
			// effectively impossible; any success is a real bug.
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
}

func TestBatchFrameLimits(t *testing.T) {
	if _, err := AppendBatchFrame(nil, 0, make([]model.ObjPos, MaxBatchFramePositions+1)); err == nil {
		t.Fatal("oversized batch encoded")
	}
	// A forged header claiming a huge payload must be rejected before any
	// large allocation happens.
	forged := []byte(batchFrameMagic)
	forged = append(forged, batchFrameVersion)
	forged = binary.AppendUvarint(forged, 1<<40)
	dec := NewBatchFrameReader(bytes.NewReader(forged))
	if _, _, err := dec.Next(nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("forged huge payload: got %v, want ErrBadFrame", err)
	}
	// Bad magic and bad version are structural errors, not truncation.
	for _, raw := range [][]byte{
		[]byte("NOPE\x01\x05"),
		append([]byte(batchFrameMagic), 99, 5),
	} {
		dec := NewBatchFrameReader(bytes.NewReader(raw))
		if _, _, err := dec.Next(nil); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("%q: got %v, want ErrBadFrame", raw, err)
		}
	}
}

// FuzzBatchFrameRoundTrip feeds arbitrary bytes to the decoder (it must
// never panic and never hand back data from a frame that fails its checks),
// then re-encodes whatever decoded and requires the second decode to
// reproduce it bit-for-bit — encode∘decode is the identity on the valid
// subset of any input.
func FuzzBatchFrameRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	var seed []byte
	var err error
	for i := int32(0); i < 3; i++ {
		fr := randFrame(rng, i)
		if seed, err = AppendBatchFrame(seed, fr.t, fr.pos); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])      // torn tail
	f.Add([]byte(batchFrameMagic)) // header only
	f.Add([]byte{})                // empty stream
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewBatchFrameReader(bytes.NewReader(data))
		var decoded []testFrame
		for {
			tt, pos, err := dec.Next(nil)
			if err != nil {
				break // EOF, truncation or corruption — all fine, no panic
			}
			decoded = append(decoded, testFrame{t: tt, pos: pos})
		}
		var buf []byte
		for _, fr := range decoded {
			var err error
			if buf, err = AppendBatchFrame(buf, fr.t, fr.pos); err != nil {
				t.Fatalf("re-encode decoded frame: %v", err)
			}
		}
		dec2 := NewBatchFrameReader(bytes.NewReader(buf))
		var again []testFrame
		for {
			tt, pos, err := dec2.Next(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("decode of re-encoded stream failed: %v", err)
			}
			again = append(again, testFrame{t: tt, pos: pos})
		}
		if !framesEqual(decoded, again) {
			t.Fatalf("re-encoded stream decoded differently: %d vs %d frames", len(decoded), len(again))
		}
	})
}
