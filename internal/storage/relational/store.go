package relational

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	"repro/internal/model"
	"repro/internal/storage"
)

// Meta page (page 0) layout:
//
//	off 0  : magic "K2RT"
//	off 4  : u32 version
//	off 8  : u32 root page id
//	off 12 : u64 record count
//	off 20 : i32 ts
//	off 24 : i32 te
const (
	metaMagic   = "K2RT"
	metaVersion = 1
)

// Store is a disk-backed table of trajectory points with a clustered B+tree
// on (t, oid). It implements storage.Store.
type Store struct {
	f      *os.File
	pg     *pager
	tree   *btree
	count  uint64
	ts, te int32
	stats  storage.IOStats
}

// Options configures engine knobs.
type Options struct {
	// CachePages is the buffer-pool capacity in pages (default 256 = 1MiB).
	CachePages int
}

func (o *Options) withDefaults() Options {
	out := Options{CachePages: 256}
	if o != nil && o.CachePages > 0 {
		out.CachePages = o.CachePages
	}
	return out
}

// Create builds a new table at path (truncating any existing file).
func Create(path string, opts *Options) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("relational: create: %w", err)
	}
	o := opts.withDefaults()
	pg, err := newPager(f, o.CachePages)
	if err != nil {
		f.Close()
		return nil, err
	}
	metaID, _ := pg.alloc()
	if metaID != 0 {
		f.Close()
		return nil, errors.New("relational: meta page must be page 0")
	}
	s := &Store{f: f, pg: pg, tree: newBtree(pg), ts: 0, te: -1}
	if err := s.writeMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Open opens an existing table read-write.
func Open(path string, opts *Options) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("relational: open: %w", err)
	}
	o := opts.withDefaults()
	pg, err := newPager(f, o.CachePages)
	if err != nil {
		f.Close()
		return nil, err
	}
	meta, err := pg.read(0)
	if err != nil {
		f.Close()
		return nil, err
	}
	if string(meta[0:4]) != metaMagic {
		f.Close()
		return nil, errors.New("relational: bad magic")
	}
	if v := getU32(meta, 4); v != metaVersion {
		f.Close()
		return nil, fmt.Errorf("relational: unsupported version %d", v)
	}
	s := &Store{
		f:     f,
		pg:    pg,
		tree:  openBtree(pg, getU32(meta, 8)),
		count: getU64(meta, 12),
		ts:    int32(getU32(meta, 20)),
		te:    int32(getU32(meta, 24)),
	}
	return s, nil
}

func (s *Store) writeMeta() error {
	meta := make([]byte, PageSize)
	copy(meta[0:4], metaMagic)
	putU32(meta, 4, metaVersion)
	putU32(meta, 8, s.tree.root)
	putU64(meta, 12, s.count)
	putU32(meta, 20, uint32(s.ts))
	putU32(meta, 24, uint32(s.te))
	return s.pg.write(0, meta)
}

// Insert adds one point (overwriting any existing point for the same
// (t, oid)).
func (s *Store) Insert(p model.Point) error {
	key := storage.EncodeKey(p.T, p.OID)
	val := storage.EncodeValue(p.X, p.Y)
	if err := s.tree.insert(key[:], val[:]); err != nil {
		return err
	}
	if s.count == 0 || p.T < s.ts {
		s.ts = p.T
	}
	if s.count == 0 || p.T > s.te {
		s.te = p.T
	}
	s.count++
	return nil
}

// BulkLoad builds the table from points sorted ascending by (t, oid),
// packing leaves to fillFactor (0 < ff ≤ 1, default 0.9) and constructing
// the internal levels bottom-up. The table must be empty.
func (s *Store) BulkLoad(pts []model.Point) error {
	if s.count != 0 {
		return errors.New("relational: bulk load into non-empty table")
	}
	if len(pts) == 0 {
		return s.Flush()
	}
	perLeaf := int(float64(leafCap) * 0.9)
	if perLeaf < 1 {
		perLeaf = 1
	}
	type sep struct {
		key [storage.KeySize]byte
		id  uint32
	}
	var seps []sep
	var prev [storage.KeySize]byte
	var prevLeafID uint32
	var prevLeaf []byte
	for i := 0; i < len(pts); {
		n := perLeaf
		if i+n > len(pts) {
			n = len(pts) - i
		}
		id, page := s.pg.alloc()
		initLeaf(page)
		for j := 0; j < n; j++ {
			p := pts[i+j]
			key := storage.EncodeKey(p.T, p.OID)
			if (i+j) > 0 && bytes.Compare(key[:], prev[:]) <= 0 {
				return fmt.Errorf("relational: bulk load out of order at %d", i+j)
			}
			prev = key
			off := leafHdr + j*leafEntry
			copy(page[off:], key[:])
			val := storage.EncodeValue(p.X, p.Y)
			copy(page[off+storage.KeySize:], val[:])
		}
		putU16(page, 2, uint16(n))
		if prevLeaf != nil {
			putU32(prevLeaf, 4, id)
			if err := s.pg.write(prevLeafID, prevLeaf); err != nil {
				return err
			}
		}
		prevLeafID, prevLeaf = id, page
		first := storage.EncodeKey(pts[i].T, pts[i].OID)
		seps = append(seps, sep{key: first, id: id})
		i += n
	}
	// Build internal levels until a single root remains.
	level := seps
	for len(level) > 1 {
		var next []sep
		perInner := int(float64(innerCap) * 0.9)
		if perInner < 2 {
			perInner = 2
		}
		for i := 0; i < len(level); {
			n := perInner + 1 // children per node
			if i+n > len(level) {
				n = len(level) - i
			}
			if n == 1 && len(next) > 0 {
				// Avoid a degenerate single-child node: borrow by widening
				// the previous node is complex; instead make a 1-child node
				// only when it's the lone node. Merge into previous instead.
				n = 1
			}
			id, page := s.pg.alloc()
			initInner(page, level[i].id)
			for j := 1; j < n; j++ {
				off := innerHdr + (j-1)*innerEntry
				copy(page[off:], level[i+j].key[:])
				putU32(page, off+storage.KeySize, level[i+j].id)
			}
			putU16(page, 2, uint16(n-1))
			next = append(next, sep{key: level[i].key, id: id})
			i += n
		}
		level = next
	}
	s.tree.root = level[0].id
	s.count = uint64(len(pts))
	s.ts = pts[0].T
	s.te = pts[len(pts)-1].T
	return s.Flush()
}

// WriteDataset creates a table at path containing ds.
func WriteDataset(path string, ds *model.Dataset, opts *Options) error {
	s, err := Create(path, opts)
	if err != nil {
		return err
	}
	if err := s.BulkLoad(ds.Points()); err != nil {
		s.f.Close()
		return err
	}
	return s.Close()
}

// Flush persists meta and all dirty pages.
func (s *Store) Flush() error {
	if err := s.writeMeta(); err != nil {
		return err
	}
	return s.pg.flush()
}

// Close flushes and closes the table.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Count returns the number of stored points.
func (s *Store) Count() uint64 { return s.count }

// TimeRange implements storage.Store.
func (s *Store) TimeRange() (int32, int32) { return s.ts, s.te }

// Stats implements storage.Store.
func (s *Store) Stats() *storage.IOStats { return &s.stats }

// Snapshot implements storage.Store: a clustered-index range scan
// [ (t, min_oid), (t+1, min_oid) ).
func (s *Store) Snapshot(t int32) ([]model.ObjPos, error) {
	if s.te < s.ts || t < s.ts || t > s.te {
		return nil, nil
	}
	start := storage.EncodeKey(t, -1<<31)
	before := s.pg.reads()
	c := s.tree.seek(start[:])
	var out []model.ObjPos
	for ; c.valid(); c.next() {
		kt, oid := storage.DecodeKey(c.key())
		if kt != t {
			break
		}
		x, y := storage.DecodeValue(c.value())
		out = append(out, model.ObjPos{OID: oid, X: x, Y: y})
		s.stats.AddScanned(1)
	}
	if c.err != nil {
		return nil, c.err
	}
	s.stats.AddScan(len(out))
	s.stats.AddSeeks(1)
	s.stats.AddBytes(int(s.pg.reads()-before) * PageSize)
	return out, nil
}

// Fetch implements storage.Store: one index point-lookup per object.
func (s *Store) Fetch(t int32, oids model.ObjSet) ([]model.ObjPos, error) {
	if s.te < s.ts || t < s.ts || t > s.te || len(oids) == 0 {
		return nil, nil
	}
	before := s.pg.reads()
	out := make([]model.ObjPos, 0, len(oids))
	for _, oid := range oids {
		key := storage.EncodeKey(t, oid)
		v, err := s.tree.get(key[:])
		if err != nil {
			return nil, err
		}
		s.stats.AddSeeks(1)
		if v == nil {
			continue
		}
		x, y := storage.DecodeValue(v)
		out = append(out, model.ObjPos{OID: oid, X: x, Y: y})
		s.stats.AddScanned(1)
	}
	s.stats.AddPointQueries(len(oids), len(out))
	s.stats.AddBytes(int(s.pg.reads()-before) * PageSize)
	return out, nil
}

// PageReads returns the number of physical page reads performed so far.
func (s *Store) PageReads() int64 { return s.pg.reads() }
