// Package relational implements the paper's k2-RDBMS storage variant: a
// page-based storage engine with a clustered B+tree on the composite key
// (timestamp, oid), the same physical design as a relational table with a
// multi-column clustering index (§5.1).
//
// The engine supports the two access paths convoy mining needs: a range
// scan over one timestamp (benchmark points) and point lookups by
// (timestamp, oid) (HWMT and the extension phases). Pages move through a
// small LRU buffer pool so the I/O counters reflect actual page reads.
package relational

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
)

// PageSize is the fixed page size of the engine.
const PageSize = 4096

var errPageOutOfRange = errors.New("relational: page id out of range")

// pager provides page-granular access to the underlying file with an LRU
// buffer pool.
type pager struct {
	mu        sync.Mutex
	f         *os.File
	numPages  uint32
	cache     map[uint32]*list.Element
	lru       *list.List // front = most recently used
	cacheCap  int
	pageReads int64 // physical page reads (cache misses)
	dirty     map[uint32][]byte
}

type cacheEntry struct {
	id   uint32
	data []byte
}

func newPager(f *os.File, cachePages int) (*pager, error) {
	if cachePages < 4 {
		cachePages = 4
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return &pager{
		f:        f,
		numPages: uint32(st.Size() / PageSize),
		cache:    make(map[uint32]*list.Element),
		lru:      list.New(),
		cacheCap: cachePages,
		dirty:    make(map[uint32][]byte),
	}, nil
}

// alloc appends a fresh zeroed page and returns its id.
func (p *pager) alloc() (uint32, []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.numPages
	p.numPages++
	data := make([]byte, PageSize)
	p.dirty[id] = data
	p.insertCache(id, data)
	return id, data
}

// read returns the contents of page id. The returned slice is shared with
// the buffer pool; callers must copy before mutating (or use write).
func (p *pager) read(id uint32) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.numPages {
		return nil, fmt.Errorf("%w: %d >= %d", errPageOutOfRange, id, p.numPages)
	}
	if d, ok := p.dirty[id]; ok {
		return d, nil
	}
	if el, ok := p.cache[id]; ok {
		p.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).data, nil
	}
	data := make([]byte, PageSize)
	if _, err := p.f.ReadAt(data, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("relational: read page %d: %w", id, err)
	}
	p.pageReads++
	p.insertCache(id, data)
	return data, nil
}

// write marks page id dirty with the given contents (must be PageSize).
func (p *pager) write(id uint32, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.numPages {
		return errPageOutOfRange
	}
	if len(data) != PageSize {
		return errors.New("relational: short page write")
	}
	p.dirty[id] = data
	p.insertCache(id, data)
	return nil
}

func (p *pager) insertCache(id uint32, data []byte) {
	if el, ok := p.cache[id]; ok {
		el.Value.(*cacheEntry).data = data
		p.lru.MoveToFront(el)
		return
	}
	el := p.lru.PushFront(&cacheEntry{id: id, data: data})
	p.cache[id] = el
	for p.lru.Len() > p.cacheCap {
		tail := p.lru.Back()
		ent := tail.Value.(*cacheEntry)
		if _, isDirty := p.dirty[ent.id]; isDirty {
			// Never evict dirty pages; move to front instead. The dirty set
			// is bounded by flush() calls during bulk load.
			p.lru.MoveToFront(tail)
			break
		}
		p.lru.Remove(tail)
		delete(p.cache, ent.id)
	}
}

// flush persists all dirty pages.
func (p *pager) flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, data := range p.dirty {
		if _, err := p.f.WriteAt(data, int64(id)*PageSize); err != nil {
			return fmt.Errorf("relational: flush page %d: %w", id, err)
		}
	}
	p.dirty = make(map[uint32][]byte)
	return nil
}

// reads returns the number of physical page reads so far.
func (p *pager) reads() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pageReads
}

// --- little helpers shared by the node encodings -----------------------

func putU16(b []byte, off int, v uint16) { binary.LittleEndian.PutUint16(b[off:], v) }
func getU16(b []byte, off int) uint16    { return binary.LittleEndian.Uint16(b[off:]) }
func putU32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:], v) }
func getU32(b []byte, off int) uint32    { return binary.LittleEndian.Uint32(b[off:]) }
func putU64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }
func getU64(b []byte, off int) uint64    { return binary.LittleEndian.Uint64(b[off:]) }
