package relational

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// Sequential ascending inserts are the worst case for naive split logic
// (every split lands on the rightmost leaf); the tree must stay correct.
func TestSequentialInsertsRightmostSplits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seq.k2r")
	s, err := Create(path, &Options{CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 20000
	for i := 0; i < n; i++ {
		if err := s.Insert(model.Point{OID: int32(i % 64), T: int32(i / 64), X: float64(i), Y: 2}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Every key must be retrievable.
	for i := 0; i < n; i += 997 {
		key := storage.EncodeKey(int32(i/64), int32(i%64))
		v, err := s.tree.get(key[:])
		if err != nil || v == nil {
			t.Fatalf("get %d: %v %v", i, v, err)
		}
		x, _ := storage.DecodeValue(v)
		if x != float64(i) {
			t.Fatalf("get %d = %f", i, x)
		}
	}
	// Full scan visits n keys in order.
	start := storage.EncodeKey(-1<<31, -1<<31)
	c := s.tree.seek(start[:])
	count := 0
	for ; c.valid(); c.next() {
		count++
	}
	if c.err != nil || count != n {
		t.Fatalf("scan count = %d (err %v), want %d", count, c.err, n)
	}
}

// Descending inserts exercise leftmost-position insertion paths.
func TestDescendingInserts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "desc.k2r")
	s, err := Create(path, &Options{CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 5000
	for i := n - 1; i >= 0; i-- {
		if err := s.Insert(model.Point{OID: 0, T: int32(i), X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		rows, err := s.Fetch(int32(i), model.NewObjSet(0))
		if err != nil || len(rows) != 1 || rows[0].X != float64(i) {
			t.Fatalf("fetch %d = %v, %v", i, rows, err)
		}
	}
}

// A tiny buffer pool forces constant eviction; correctness must not depend
// on cache capacity, and dirty pages must never be lost.
func TestTinyBufferPool(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.k2r")
	s, err := Create(path, &Options{CachePages: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	want := map[[2]int32]float64{}
	for i := 0; i < 4000; i++ {
		k := [2]int32{int32(rng.Intn(100)), int32(rng.Intn(100))}
		x := rng.Float64()
		want[k] = x
		if err := s.Insert(model.Point{T: k[0], OID: k[1], X: x}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path, &Options{CachePages: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for k, x := range want {
		rows, err := s2.Fetch(k[0], model.NewObjSet(k[1]))
		if err != nil || len(rows) != 1 || rows[0].X != x {
			t.Fatalf("fetch %v = %v, %v (want x=%f)", k, rows, err, x)
		}
	}
}

// Snapshot must stop exactly at the timestamp boundary even when the
// boundary falls mid-page and at the last page.
func TestSnapshotBoundaries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bound.k2r")
	s, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var pts []model.Point
	for tt := int32(0); tt < 5; tt++ {
		for oid := int32(0); oid < 77; oid++ { // 77 not aligned to leaf size
			pts = append(pts, model.Point{T: tt, OID: oid, X: float64(tt*1000 + oid)})
		}
	}
	if err := s.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	for tt := int32(0); tt < 5; tt++ {
		snap, err := s.Snapshot(tt)
		if err != nil || len(snap) != 77 {
			t.Fatalf("Snapshot(%d) = %d rows, %v", tt, len(snap), err)
		}
		for i, r := range snap {
			if r.OID != int32(i) || r.X != float64(int(tt)*1000+i) {
				t.Fatalf("Snapshot(%d)[%d] = %v", tt, i, r)
			}
		}
	}
}

func TestOverwriteUpdatesValue(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ow.k2r")
	s, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		if err := s.Insert(model.Point{T: 1, OID: 1, X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := s.Fetch(1, model.NewObjSet(1))
	if err != nil || len(rows) != 1 || rows[0].X != 2 {
		t.Fatalf("overwrite = %v, %v", rows, err)
	}
}

func BenchmarkBtreePointGet(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.k2r")
	s, err := Create(path, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var pts []model.Point
	for i := 0; i < 100000; i++ {
		pts = append(pts, model.Point{T: int32(i / 100), OID: int32(i % 100), X: float64(i)})
	}
	if err := s.BulkLoad(pts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := storage.EncodeKey(int32(i%1000), int32(i%100))
		if _, err := s.tree.get(key[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBtreeSnapshotScan(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench2.k2r")
	s, err := Create(path, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var pts []model.Point
	for i := 0; i < 100000; i++ {
		pts = append(pts, model.Point{T: int32(i / 1000), OID: int32(i % 1000), X: float64(i)})
	}
	if err := s.BulkLoad(pts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Snapshot(int32(i % 100)); err != nil {
			b.Fatal(err)
		}
	}
}
