package relational

import (
	"bytes"
	"fmt"

	"repro/internal/storage"
)

// B+tree node layout. Keys are the fixed 8-byte (t,oid) encodings from
// package storage; leaf values are the fixed 16-byte (x,y) encodings.
//
// Leaf page:
//
//	off 0  : u16 type (1 = leaf)
//	off 2  : u16 nkeys
//	off 4  : u32 next leaf page id (0 = none; page 0 is the meta page, so
//	         it can double as the nil sentinel)
//	off 8  : entries nkeys × (key[8] | value[16])
//
// Internal page:
//
//	off 0  : u16 type (2 = internal)
//	off 2  : u16 nkeys
//	off 4  : u32 child[0]
//	off 8  : nkeys × (key[8] | u32 child)
//
// An internal node with nkeys separator keys has nkeys+1 children; child[i]
// holds keys < key[i]; child[nkeys] holds keys ≥ key[nkeys-1].
const (
	typeLeaf     = 1
	typeInternal = 2

	leafHdr    = 8
	leafEntry  = storage.KeySize + storage.ValueSize // 24
	leafCap    = (PageSize - leafHdr) / leafEntry    // 170
	innerHdr   = 8
	innerEntry = storage.KeySize + 4                    // 12
	innerCap   = (PageSize - innerHdr - 4) / innerEntry // 340
)

type btree struct {
	pg   *pager
	root uint32
}

// --- leaf accessors ------------------------------------------------------

func leafN(p []byte) int       { return int(getU16(p, 2)) }
func leafNext(p []byte) uint32 { return getU32(p, 4) }
func leafKey(p []byte, i int) []byte {
	off := leafHdr + i*leafEntry
	return p[off : off+storage.KeySize]
}
func leafVal(p []byte, i int) []byte {
	off := leafHdr + i*leafEntry + storage.KeySize
	return p[off : off+storage.ValueSize]
}

func initLeaf(p []byte) {
	putU16(p, 0, typeLeaf)
	putU16(p, 2, 0)
	putU32(p, 4, 0)
}

// --- internal accessors --------------------------------------------------

func innerN(p []byte) int { return int(getU16(p, 2)) }
func innerChild(p []byte, i int) uint32 {
	if i == 0 {
		return getU32(p, 4)
	}
	off := innerHdr + (i-1)*innerEntry + storage.KeySize
	return getU32(p, off)
}
func innerKey(p []byte, i int) []byte {
	off := innerHdr + i*innerEntry
	return p[off : off+storage.KeySize]
}

func initInner(p []byte, child0 uint32) {
	putU16(p, 0, typeInternal)
	putU16(p, 2, 0)
	putU32(p, 4, child0)
}

func pageType(p []byte) int { return int(getU16(p, 0)) }

// newBtree creates an empty tree whose root is a fresh leaf.
func newBtree(pg *pager) *btree {
	id, page := pg.alloc()
	initLeaf(page)
	return &btree{pg: pg, root: id}
}

// openBtree attaches to an existing tree rooted at root.
func openBtree(pg *pager, root uint32) *btree { return &btree{pg: pg, root: root} }

// get returns the value stored under key, or nil if absent.
func (t *btree) get(key []byte) ([]byte, error) {
	id := t.root
	for {
		p, err := t.pg.read(id)
		if err != nil {
			return nil, err
		}
		switch pageType(p) {
		case typeInternal:
			id = innerChild(p, t.childIndex(p, key))
		case typeLeaf:
			n := leafN(p)
			i := leafSearch(p, n, key)
			if i < n && bytes.Equal(leafKey(p, i), key) {
				v := make([]byte, storage.ValueSize)
				copy(v, leafVal(p, i))
				return v, nil
			}
			return nil, nil
		default:
			return nil, fmt.Errorf("relational: corrupt page %d type %d", id, pageType(p))
		}
	}
}

// childIndex returns which child of internal page p covers key.
func (t *btree) childIndex(p []byte, key []byte) int {
	n := innerN(p)
	lo, hi := 0, n // find first separator > key ⇒ child index
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(innerKey(p, mid), key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafSearch returns the first index i with leafKey(i) ≥ key.
func leafSearch(p []byte, n int, key []byte) int {
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(leafKey(p, mid), key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insert adds key → val. Duplicate keys overwrite the old value.
func (t *btree) insert(key, val []byte) error {
	promoted, newChild, err := t.insertRec(t.root, key, val)
	if err != nil {
		return err
	}
	if newChild != 0 {
		// Root split: grow the tree by one level.
		id, page := t.pg.alloc()
		initInner(page, t.root)
		putU16(page, 2, 1)
		copy(page[innerHdr:], promoted)
		putU32(page, innerHdr+storage.KeySize, newChild)
		t.root = id
	}
	return nil
}

// insertRec inserts into the subtree rooted at id. On a split it returns
// the promoted separator key and the id of the new right sibling.
func (t *btree) insertRec(id uint32, key, val []byte) (promoted []byte, newChild uint32, err error) {
	p, err := t.pg.read(id)
	if err != nil {
		return nil, 0, err
	}
	switch pageType(p) {
	case typeLeaf:
		return t.insertLeaf(id, p, key, val)
	case typeInternal:
		ci := t.childIndex(p, key)
		promo, child, err := t.insertRec(innerChild(p, ci), key, val)
		if err != nil || child == 0 {
			return nil, 0, err
		}
		return t.insertInner(id, p, ci, promo, child)
	default:
		return nil, 0, fmt.Errorf("relational: corrupt page %d", id)
	}
}

func (t *btree) insertLeaf(id uint32, p []byte, key, val []byte) ([]byte, uint32, error) {
	page := make([]byte, PageSize)
	copy(page, p)
	n := leafN(page)
	i := leafSearch(page, n, key)
	if i < n && bytes.Equal(leafKey(page, i), key) {
		copy(page[leafHdr+i*leafEntry+storage.KeySize:], val)
		return nil, 0, t.pg.write(id, page)
	}
	if n < leafCap {
		off := leafHdr + i*leafEntry
		copy(page[off+leafEntry:leafHdr+(n+1)*leafEntry], page[off:leafHdr+n*leafEntry])
		copy(page[off:], key)
		copy(page[off+storage.KeySize:], val)
		putU16(page, 2, uint16(n+1))
		return nil, 0, t.pg.write(id, page)
	}
	// Split: left keeps half, right takes the rest; insert into the proper
	// half afterwards (re-run the simple path — both halves have room).
	rightID, right := t.pg.alloc()
	initLeaf(right)
	half := n / 2
	copy(right[leafHdr:], page[leafHdr+half*leafEntry:leafHdr+n*leafEntry])
	putU16(right, 2, uint16(n-half))
	putU32(right, 4, leafNext(page))
	putU16(page, 2, uint16(half))
	putU32(page, 4, rightID)
	if err := t.pg.write(id, page); err != nil {
		return nil, 0, err
	}
	if err := t.pg.write(rightID, right); err != nil {
		return nil, 0, err
	}
	sep := make([]byte, storage.KeySize)
	copy(sep, leafKey(right, 0))
	// Route the pending insert into the correct half.
	target := id
	if bytes.Compare(key, sep) >= 0 {
		target = rightID
	}
	if _, _, err := t.insertRec(target, key, val); err != nil {
		return nil, 0, err
	}
	return sep, rightID, nil
}

func (t *btree) insertInner(id uint32, p []byte, ci int, promo []byte, child uint32) ([]byte, uint32, error) {
	page := make([]byte, PageSize)
	copy(page, p)
	n := innerN(page)
	if n < innerCap {
		off := innerHdr + ci*innerEntry
		copy(page[off+innerEntry:innerHdr+(n+1)*innerEntry], page[off:innerHdr+n*innerEntry])
		copy(page[off:], promo)
		putU32(page, off+storage.KeySize, child)
		putU16(page, 2, uint16(n+1))
		return nil, 0, t.pg.write(id, page)
	}
	// Split internal node: middle key is promoted (not kept).
	mid := n / 2
	sep := make([]byte, storage.KeySize)
	copy(sep, innerKey(page, mid))
	rightID, right := t.pg.alloc()
	initInner(right, innerChild(page, mid+1))
	rn := n - mid - 1
	copy(right[innerHdr:], page[innerHdr+(mid+1)*innerEntry:innerHdr+n*innerEntry])
	putU16(right, 2, uint16(rn))
	putU16(page, 2, uint16(mid))
	if err := t.pg.write(id, page); err != nil {
		return nil, 0, err
	}
	if err := t.pg.write(rightID, right); err != nil {
		return nil, 0, err
	}
	// Insert the pending (promo, child) into the proper half.
	target, tp := id, page
	if bytes.Compare(promo, sep) >= 0 {
		target, tp = rightID, right
	}
	tci := t.childIndex(tp, promo)
	if _, _, err := t.insertInner(target, tp, tci, promo, child); err != nil {
		return nil, 0, err
	}
	return sep, rightID, nil
}

// cursor iterates leaf entries in key order starting at the first key ≥
// start.
type cursor struct {
	t    *btree
	page []byte
	id   uint32
	i    int
	err  error
}

// seek positions a cursor at the first entry with key ≥ start.
func (t *btree) seek(start []byte) *cursor {
	id := t.root
	for {
		p, err := t.pg.read(id)
		if err != nil {
			return &cursor{err: err}
		}
		if pageType(p) == typeInternal {
			id = innerChild(p, t.childIndex(p, start))
			continue
		}
		c := &cursor{t: t, page: p, id: id, i: leafSearch(p, leafN(p), start)}
		c.skipToValid()
		return c
	}
}

func (c *cursor) skipToValid() {
	for c.err == nil && c.page != nil && c.i >= leafN(c.page) {
		next := leafNext(c.page)
		if next == 0 {
			c.page = nil
			return
		}
		p, err := c.t.pg.read(next)
		if err != nil {
			c.err = err
			return
		}
		c.page, c.id, c.i = p, next, 0
	}
}

// valid reports whether the cursor points at an entry.
func (c *cursor) valid() bool { return c.err == nil && c.page != nil }

// key returns the current key (valid until next()).
func (c *cursor) key() []byte { return leafKey(c.page, c.i) }

// value returns the current value (valid until next()).
func (c *cursor) value() []byte { return leafVal(c.page, c.i) }

// next advances the cursor.
func (c *cursor) next() {
	c.i++
	c.skipToValid()
}
