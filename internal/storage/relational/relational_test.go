package relational

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

var _ storage.Store = (*Store)(nil)

func TestConformanceBulkLoad(t *testing.T) {
	ds := storetest.RandomDataset(10, 40, 30, 0.8)
	path := filepath.Join(t.TempDir(), "table.k2r")
	if err := WriteDataset(path, ds, nil); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
	s, err := Open(path, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	storetest.Run(t, s, ds)
}

func TestConformanceInserts(t *testing.T) {
	ds := storetest.RandomDataset(11, 25, 20, 0.6)
	path := filepath.Join(t.TempDir(), "table.k2r")
	s, err := Create(path, &Options{CachePages: 16})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Insert in random order to exercise splits at all positions.
	pts := ds.Points()
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	for _, p := range pts {
		if err := s.Insert(p); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	storetest.Run(t, s, ds)
	if s.Count() != uint64(ds.NumPoints()) {
		t.Fatalf("Count = %d, want %d", s.Count(), ds.NumPoints())
	}
	s.Close()

	// Reopen from disk and verify persistence.
	s2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	storetest.Run(t, s2, ds)
}

// Property test: the B+tree behaves like a sorted map under random inserts
// (with overwrites) followed by gets and an ordered full scan.
func TestBtreeMatchesMapModel(t *testing.T) {
	for _, n := range []int{1, 10, 200, 5000} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "t.k2r")
			s, err := Create(path, &Options{CachePages: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			rng := rand.New(rand.NewSource(int64(n)))
			modelMap := map[[storage.KeySize]byte][storage.ValueSize]byte{}
			for i := 0; i < n; i++ {
				tt := int32(rng.Intn(50))
				oid := int32(rng.Intn(50))
				x, y := rng.Float64(), rng.Float64()
				key := storage.EncodeKey(tt, oid)
				modelMap[key] = storage.EncodeValue(x, y)
				if err := s.tree.insert(key[:], func() []byte { v := storage.EncodeValue(x, y); return v[:] }()); err != nil {
					t.Fatalf("insert: %v", err)
				}
			}
			// Point gets.
			for key, val := range modelMap {
				got, err := s.tree.get(key[:])
				if err != nil {
					t.Fatalf("get: %v", err)
				}
				if !bytes.Equal(got, val[:]) {
					t.Fatalf("get(%v) = %v, want %v", key, got, val)
				}
			}
			// Absent key.
			absent := storage.EncodeKey(999, 999)
			if got, err := s.tree.get(absent[:]); err != nil || got != nil {
				t.Fatalf("absent get = %v, %v", got, err)
			}
			// Ordered scan visits every key exactly once, ascending.
			var zero [storage.KeySize]byte
			start := storage.EncodeKey(-1<<31, -1<<31)
			_ = zero
			c := s.tree.seek(start[:])
			var prev []byte
			count := 0
			for ; c.valid(); c.next() {
				k := c.key()
				if prev != nil && bytes.Compare(prev, k) >= 0 {
					t.Fatalf("scan out of order")
				}
				var kk [storage.KeySize]byte
				copy(kk[:], k)
				want, ok := modelMap[kk]
				if !ok {
					t.Fatalf("scan visited unknown key %v", kk)
				}
				if !bytes.Equal(c.value(), want[:]) {
					t.Fatalf("scan value mismatch")
				}
				prev = append(prev[:0], k...)
				count++
			}
			if c.err != nil {
				t.Fatalf("cursor error: %v", c.err)
			}
			if count != len(modelMap) {
				t.Fatalf("scan count = %d, want %d", count, len(modelMap))
			}
		})
	}
}

func TestBulkLoadRejectsDisorder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.k2r")
	s, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.BulkLoad([]model.Point{
		{OID: 2, T: 1}, {OID: 1, T: 1},
	})
	if err == nil {
		t.Fatalf("BulkLoad of unsorted points should fail")
	}
}

func TestBulkLoadNonEmptyRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.k2r")
	s, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Insert(model.Point{OID: 1, T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.BulkLoad([]model.Point{{OID: 2, T: 2}}); err == nil {
		t.Fatalf("BulkLoad into non-empty table should fail")
	}
}

func TestLargeBulkLoadMultiLevel(t *testing.T) {
	// Enough points to force at least two internal levels:
	// leaves hold ~153, inner ~306 children, so >153*306 records needs depth 3.
	n := 60000
	pts := make([]model.Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, model.Point{OID: int32(i % 100), T: int32(i / 100), X: float64(i), Y: 1})
	}
	path := filepath.Join(t.TempDir(), "big.k2r")
	s, err := Create(path, &Options{CachePages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.BulkLoad(pts); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	// Spot-check snapshots and fetches.
	snap, err := s.Snapshot(100)
	if err != nil || len(snap) != 100 {
		t.Fatalf("Snapshot(100) = %d rows, err %v", len(snap), err)
	}
	rows, err := s.Fetch(599, model.NewObjSet(0, 50, 99))
	if err != nil || len(rows) != 3 {
		t.Fatalf("Fetch = %v, %v", rows, err)
	}
	if rows[1].X != float64(599*100+50) {
		t.Fatalf("Fetch value wrong: %v", rows[1])
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := writeGarbage(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, nil); err == nil {
		t.Fatalf("Open of garbage should fail")
	}
}

func TestStatsAccounting(t *testing.T) {
	ds := storetest.RandomDataset(12, 20, 10, 1.0)
	path := filepath.Join(t.TempDir(), "t.k2r")
	if err := WriteDataset(path, ds, nil); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, &Options{CachePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Snapshot(3); err != nil {
		t.Fatal(err)
	}
	st := s.Stats().Snapshot()
	if st.SnapshotScans != 1 || st.PointsRead != 20 {
		t.Fatalf("scan stats: %+v", st)
	}
	if _, err := s.Fetch(3, model.NewObjSet(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	st = s.Stats().Snapshot()
	if st.PointQueries != 3 || st.Seeks < 3 {
		t.Fatalf("fetch stats: %+v", st)
	}
	if s.PageReads() == 0 {
		t.Fatalf("expected physical page reads with tiny cache")
	}
}

func writeGarbage(path string) error {
	data := make([]byte, PageSize*2)
	copy(data, "NOPE")
	return os.WriteFile(path, data, 0o644)
}
