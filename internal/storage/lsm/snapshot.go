package lsm

import (
	"errors"
	"sync/atomic"

	"repro/internal/storage"
)

// Snapshot is an immutable read view of the database, acquired in O(tables)
// under a brief read lock and then used entirely lock-free: the table list
// is copy-on-write (writers publish a new slice, never mutate a shared
// one), each referenced sstable is pinned by a refcount so compaction and
// Close cannot unlink or close it mid-read, and the memtable skiplist is
// safe for concurrent readers against its single writer.
//
// Consistency contract (read committed): the on-disk state — table list and
// time bounds — is frozen exactly as of acquisition. The memtable reference
// is to the live write buffer, so records committed after acquisition MAY
// become visible until the next flush rotates the buffer; after rotation
// the captured skiplist is frozen forever. No record visible at acquisition
// time is ever lost from the view, and no key is ever yielded twice: a
// flush moves records into a table this snapshot does not reference, but
// the captured skiplist still holds them. This matches the archive's
// cursor contract, where records archived after a page began may or may not
// appear on that page.
//
// Snapshots are cheap but pin disk space: tables retired while referenced
// are unlinked only when the last snapshot releases. Always Release — it is
// idempotent and nil-safe.
type Snapshot struct {
	db       *DB
	mem      *memtable
	tables   []*sstable // oldest first, as in DB.tables
	ts, te   int32
	released atomic.Bool
}

var errClosed = errors.New("lsm: db closed")

// AcquireSnapshot pins the current read view. The caller must Release it.
func (db *DB) AcquireSnapshot() (*Snapshot, error) {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return nil, errClosed
	}
	s := &Snapshot{db: db, mem: db.mem, tables: db.tables, ts: db.ts, te: db.te}
	for _, t := range s.tables {
		t.ref()
	}
	db.liveSnapshots.Add(1)
	db.mu.RUnlock()
	return s, nil
}

// Release drops the snapshot's table pins. Idempotent; safe on nil.
func (s *Snapshot) Release() {
	if s == nil || !s.released.CompareAndSwap(false, true) {
		return
	}
	for _, t := range s.tables {
		t.unref()
	}
	s.db.liveSnapshots.Add(-1)
}

// GetKV returns the value bytes for key, or nil if absent or deleted,
// searching newest → oldest so fresher versions (and tombstones) shadow
// older runs. Safe for any number of concurrent callers.
func (s *Snapshot) GetKV(key [storage.KeySize]byte) ([]byte, error) {
	if v, tomb, ok := s.mem.get(key[:]); ok {
		if tomb {
			return nil, nil
		}
		return v, nil
	}
	env := &s.db.env
	for i := len(s.tables) - 1; i >= 0; i-- {
		v, tomb, err := s.tables[i].get(key[:], env)
		if err != nil {
			return nil, err
		}
		if tomb {
			return nil, nil
		}
		if v != nil {
			return v, nil
		}
	}
	return nil, nil
}

// Scan calls fn for every live record with key ≥ start, in ascending key
// order, merged across the captured memtable and runs (newest version of a
// key wins; keys whose newest version is a tombstone are skipped), until fn
// returns false or the keyspace is exhausted. The key and value slices
// passed to fn are only valid during the call. No lock is held: fn may
// block, do I/O, or call back into the DB freely.
func (s *Snapshot) Scan(start [storage.KeySize]byte, fn func(key, val []byte) bool) error {
	its := make([]kvIterator, 0, len(s.tables)+1)
	for _, tab := range s.tables {
		its = append(its, tab.iterator(start[:], &s.db.env))
	}
	its = append(its, s.mem.iterator(start[:]))
	merged := newMergeIter(its)
	for ; merged.valid(); merged.next() {
		s.db.stats.AddScanned(1)
		if merged.tomb() {
			continue
		}
		if !fn(merged.key(), merged.value()) {
			break
		}
	}
	return merged.err()
}

// NumTables returns the number of runs this snapshot pins (for tests).
func (s *Snapshot) NumTables() int { return len(s.tables) }
