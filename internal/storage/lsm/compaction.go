package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Background compaction. Flushes only append runs; when the run count
// exceeds Options.MaxTables the write path kicks a dedicated goroutine,
// which merges a window of adjacent runs OFF the write path: the input
// tables are snapshotted under db.mu, the merge itself runs without the
// lock (sstables are immutable and read with positioned I/O), and the
// result is swapped in — and committed to the manifest — under the lock at
// the end. PutKV latency therefore no longer cliffs when MaxTables trips.
//
// Policy (size-tiered): merge the cheapest contiguous window of
// len(tables)-MaxTables+1 adjacent runs, so one compaction restores the
// invariant. Windows must be contiguous in age order — merging runs around
// a survivor could resurrect values the survivor shadows. Tombstones are
// dropped only when the window includes the oldest run (nothing older left
// to shadow); otherwise they are carried into the output.

// compactState carries the goroutine coordination handles.
type compactState struct {
	kick chan struct{} // buffered(1): write path signals "over threshold"
	quit chan struct{} // closed by Close
	done chan struct{} // closed when the loop exits
}

func (db *DB) startCompactor() {
	db.compact = compactState{
		kick: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go db.compactLoop()
}

// kickCompact nudges the compactor without blocking the write path.
func (db *DB) kickCompact() {
	select {
	case db.compact.kick <- struct{}{}:
	default:
	}
}

func (db *DB) compactLoop() {
	defer close(db.compact.done)
	for {
		select {
		case <-db.compact.quit:
			return
		case <-db.compact.kick:
		}
		if db.runCompactions() {
			return // simulated crash: the "process" is dead
		}
	}
}

// runCompactions merges until the run count is back under MaxTables. It
// reports whether a test-injected crash fired (in which case the compactor
// must stop dead, like the process it stands in for).
func (db *DB) runCompactions() (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if r == errSimulatedCrash {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	for {
		progressed, err := db.compactOnce(false)
		if err != nil || !progressed {
			// On error: the staged output was dropped, the old tables keep
			// serving, and the next kick retries.
			return false
		}
	}
}

// compactOnce performs one merge. With full set it merges every run into
// one (the manual Compact path, which also GCs all tombstones); otherwise
// it applies the size-tiered policy and does nothing when the run count is
// within bounds. It reports whether a merge happened.
func (db *DB) compactOnce(full bool) (bool, error) {
	db.compactMu.Lock()
	defer db.compactMu.Unlock()

	inputs, dropTombs, path, ok := db.pickCompaction(full)
	if !ok {
		return false, nil
	}
	// pickCompaction ref'd the inputs for the duration of the merge; the
	// files outlive any concurrent retirement until these drop.
	release := func() {
		for _, t := range inputs {
			t.unref()
		}
	}

	// Merge without db.mu: inputs are immutable, pinned by the refs above,
	// and compactions are serialised by compactMu.
	its := make([]kvIterator, len(inputs))
	mergeEnv := &readEnv{io: &db.stats} // cache-less: one-shot merge reads
	for i, t := range inputs {
		its[i] = t.iterator(nil, mergeEnv)
	}
	if err := writeSSTable(path, newMergeIter(its), dropTombs); err != nil {
		release()
		return false, err
	}
	crash("compact.output-written")
	nt, err := openSSTable(path)
	if err != nil {
		os.Remove(path)
		release()
		return false, err
	}
	if err := db.swapCompacted(inputs, nt); err != nil {
		nt.close()
		os.Remove(path)
		release()
		return false, err
	}
	// The list references were dropped by swapCompacted with remove set;
	// releasing the merge references lets the last holder (a draining
	// snapshot, or this call) close and unlink the input files.
	release()
	return true, nil
}

// pickCompaction chooses the input window under db.mu and allocates the
// output file name. ok is false when there is nothing to do.
func (db *DB) pickCompaction(full bool) (inputs []*sstable, dropTombs bool, path string, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed || len(db.tables) < 2 {
		return nil, false, "", false
	}
	if full {
		inputs = append(inputs, db.tables...)
		dropTombs = true
	} else {
		if len(db.tables) <= db.opts.MaxTables {
			return nil, false, "", false
		}
		w := len(db.tables) - db.opts.MaxTables + 1
		if w < 2 {
			w = 2
		}
		// Cheapest contiguous window by record count (proxy for bytes).
		best, bestCost := 0, uint64(0)
		for i := 0; i+w <= len(db.tables); i++ {
			var cost uint64
			for _, t := range db.tables[i : i+w] {
				cost += t.count
			}
			if i == 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		inputs = append(inputs, db.tables[best:best+w]...)
		dropTombs = best == 0
	}
	// Pin the inputs for the merge: only a holder of the list reference may
	// clone references, and we hold db.mu here.
	for _, t := range inputs {
		t.ref()
	}
	name := fmt.Sprintf("sst-%06d.sst", db.seq)
	db.seq++
	return inputs, dropTombs, filepath.Join(db.dir, name), true
}

// swapCompacted replaces the input window with the merged table and commits
// the new table list to the manifest, all under db.mu. An empty output
// (every record was a GC'd tombstone) retires the inputs without a
// replacement.
func (db *DB) swapCompacted(inputs []*sstable, nt *sstable) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("lsm: db closed during compaction")
	}
	pos := -1
	for i := range db.tables {
		if db.tables[i] == inputs[0] {
			pos = i
			break
		}
	}
	if pos < 0 || pos+len(inputs) > len(db.tables) {
		return fmt.Errorf("lsm: compaction inputs vanished")
	}
	for i, in := range inputs {
		if db.tables[pos+i] != in {
			return fmt.Errorf("lsm: compaction inputs no longer adjacent")
		}
	}
	old := db.tables
	merged := make([]*sstable, 0, len(old)-len(inputs)+1)
	merged = append(merged, old[:pos]...)
	if nt.count > 0 {
		merged = append(merged, nt)
	}
	merged = append(merged, old[pos+len(inputs):]...)
	db.tables = merged
	if err := db.writeManifest(); err != nil {
		db.tables = old
		return err
	}
	crash("compact.manifest-committed")
	if nt.count == 0 {
		nt.close()
		os.Remove(nt.path)
	}
	// Drop the list references; each input file is closed and unlinked by
	// whichever holder — this compaction's merge ref, or the last snapshot
	// still reading it — drains last. The new manifest no longer names the
	// inputs, so a crash before the deferred unlink leaves only orphans
	// that sweepOrphans removes at next Open. Evict their blocks from the
	// shared cache eagerly rather than waiting for the clock to cycle.
	for _, t := range inputs {
		db.cache.dropTable(t.id)
		t.retire(true)
	}
	return nil
}

// waitCompactions blocks until no compaction is pending or in flight (test
// and benchmark synchronisation).
func (db *DB) waitCompactions() {
	for {
		db.compactMu.Lock()
		db.mu.Lock()
		pending := !db.closed && len(db.tables) > db.opts.MaxTables && len(db.tables) > 1
		db.mu.Unlock()
		db.compactMu.Unlock()
		if !pending {
			return
		}
		db.kickCompact()
		time.Sleep(200 * time.Microsecond)
	}
}
