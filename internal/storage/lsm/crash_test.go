package lsm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// armCrash installs a hook that simulates a process kill the first time the
// named crash point fires. The returned func reports whether it fired.
func armCrash(t *testing.T, name string) (fired func() bool) {
	t.Helper()
	hit := false
	crashPoint = func(p string) {
		if p == name && !hit {
			hit = true
			panic(errSimulatedCrash)
		}
	}
	t.Cleanup(func() { crashPoint = nil })
	return func() bool { return hit }
}

// expectCrash runs fn and absorbs the simulated-crash panic it must raise.
func expectCrash(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil && r != errSimulatedCrash {
			panic(r)
		}
	}()
	fn()
	t.Fatalf("operation completed without hitting the armed crash point")
}

// verifyModel checks that the reopened DB holds exactly the model's
// entries — no lost records, no duplicates (Count is exact because every
// key below is unique).
func verifyModel(t *testing.T, dir string, want map[[2]int32]float64) {
	t.Helper()
	db, err := Open(dir, &Options{MaxTables: 100})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db.Close()
	if got := db.Count(); got != uint64(len(want)) {
		t.Fatalf("reopened Count = %d, want %d (double replay or lost records)", got, len(want))
	}
	for k, x := range want {
		rows, err := db.Fetch(k[0], model.NewObjSet(k[1]))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0].X != x {
			t.Fatalf("key %v: %v, want X=%v", k, rows, x)
		}
	}
	// The reopened DB must keep working: one more full cycle.
	if err := db.Put(model.Point{T: 999, OID: 1, X: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if rows, err := db.Fetch(999, model.NewObjSet(1)); err != nil || len(rows) != 1 {
		t.Fatalf("post-recovery flush broken: %v, %v", rows, err)
	}
}

// seedDB writes two durable generations: one flushed run and one batch
// living only in the (synced) WAL. Returns the model of everything written.
func seedDB(t *testing.T, db *DB) map[[2]int32]float64 {
	t.Helper()
	want := map[[2]int32]float64{}
	var pts []model.Point
	for i := 0; i < 200; i++ {
		k := [2]int32{int32(i % 10), int32(i)}
		want[k] = float64(i)
		pts = append(pts, model.Point{T: k[0], OID: k[1], X: float64(i)})
	}
	if err := db.PutBatch(pts); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	pts = pts[:0]
	for i := 200; i < 300; i++ {
		k := [2]int32{int32(i % 10), int32(i)}
		want[k] = float64(i)
		pts = append(pts, model.Point{T: k[0], OID: k[1], X: float64(i)})
	}
	if err := db.PutBatch(pts); err != nil { // PutBatch syncs the WAL
		t.Fatal(err)
	}
	return want
}

// TestFlushCrashPoints kills a flush at each point between its durable
// steps and asserts the reopened DB is byte-identical to the model — in
// particular that records flushed to an sstable are never ALSO replayed
// from a stale WAL (the old ordering committed the manifest before
// resetting the WAL, so a crash in between double-counted every flushed
// record and wrote a duplicate run on the next flush).
func TestFlushCrashPoints(t *testing.T) {
	for _, point := range []string{
		"flush.wal-created",
		"flush.sstable-written",
		"flush.manifest-committed",
	} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			db, err := Open(dir, &Options{MaxTables: 100})
			if err != nil {
				t.Fatal(err)
			}
			want := seedDB(t, db)
			fired := armCrash(t, point)
			expectCrash(t, func() {
				if err := db.Flush(); err != nil {
					t.Fatal(err)
				}
			})
			if !fired() {
				t.Fatal("crash point never fired")
			}
			crashPoint = nil
			db.abandon()
			verifyModel(t, dir, want)
		})
	}
}

// TestCompactionCrashPoints kills a full-merge compaction on either side
// of its manifest commit; both sides must reopen to exactly the model
// (before the commit the merged output is an orphan and the inputs stay
// live; after it the inputs are orphans and the output is live).
func TestCompactionCrashPoints(t *testing.T) {
	for _, point := range []string{
		"compact.output-written",
		"compact.manifest-committed",
	} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			db, err := Open(dir, &Options{MaxTables: 100})
			if err != nil {
				t.Fatal(err)
			}
			want := seedDB(t, db)
			// Second run so the merge has real work.
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			if db.NumTables() < 2 {
				t.Fatalf("need ≥ 2 runs, have %d", db.NumTables())
			}
			fired := armCrash(t, point)
			expectCrash(t, func() {
				if err := db.Compact(); err != nil {
					t.Fatal(err)
				}
			})
			if !fired() {
				t.Fatal("crash point never fired")
			}
			crashPoint = nil
			db.abandon()
			verifyModel(t, dir, want)
		})
	}
}

// TestOpenRecoveryCrash kills Open itself between the recovery flush and
// the manifest commit; the next Open must replay the same WAL again
// without loss or duplication.
func TestOpenRecoveryCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{MaxTables: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := seedDB(t, db)
	db.abandon() // crash with 100 records only in the synced WAL

	fired := armCrash(t, "open.recovered")
	expectCrash(t, func() {
		if _, err := Open(dir, &Options{MaxTables: 100}); err != nil {
			t.Fatal(err)
		}
	})
	if !fired() {
		t.Fatal("crash point never fired")
	}
	crashPoint = nil
	verifyModel(t, dir, want)
}

// TestFlushCrashWindowStagedDir is the regression for the historical
// flushLocked ordering bug, staged explicitly: a directory whose manifest
// already references the flushed run while the pre-rotation WAL still
// holds the same records. Open must not replay that WAL (it is not the
// manifest's active WAL) — with the old layout it did, double-counting
// every flushed record.
func TestFlushCrashWindowStagedDir(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{MaxTables: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := seedDB(t, db)
	fired := armCrash(t, "flush.manifest-committed")
	expectCrash(t, func() { db.Flush() })
	if !fired() {
		t.Fatal("crash point never fired")
	}
	crashPoint = nil
	db.abandon()

	// The staged state: manifest references the new run AND the new WAL,
	// while the superseded WAL (holding the just-flushed records) is still
	// on disk.
	manifest, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), "wal ") {
		t.Fatalf("manifest does not name a WAL:\n%s", manifest)
	}
	wals, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(wals) < 2 {
		t.Fatalf("staged dir should hold old + new WAL, found %v", wals)
	}
	verifyModel(t, dir, want)
	// After recovery the stale WAL must have been swept.
	wals, _ = filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(wals) != 1 {
		t.Fatalf("stale WALs not swept: %v", wals)
	}
}

// TestOrphanSweep: files no committed manifest references — sstables from
// uncommitted flushes/compactions, superseded WALs, MANIFEST.tmp — are
// removed on Open; foreign files are left alone.
func TestOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	seedDB(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant orphans.
	for _, name := range []string{"sst-009999.sst", "wal-009999.log", manifestName + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "keep.txt"), []byte("user file"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, name := range []string{"sst-009999.sst", "wal-009999.log", manifestName + ".tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("orphan %s not swept (err=%v)", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "keep.txt")); err != nil {
		t.Errorf("non-lsm file touched by sweep: %v", err)
	}
}

// FuzzLSMCrash drives a put/delete/flush workload with a crash injected at
// a fuzzer-chosen occurrence of a fuzzer-chosen crash point, then checks
// the reopened DB against an exact map model. SyncWAL makes every
// operation durable before it returns, so the reopened state must equal
// the model of all completed operations — except the single in-flight
// operation at the crash, which was synced too and so may additionally be
// present.
func FuzzLSMCrash(f *testing.F) {
	f.Add([]byte{1, 0, 3, 7, 50, 10, 6, 4, 44, 10})
	f.Add([]byte{2, 1, 0, 0, 200, 10, 9, 10, 10, 10})
	f.Add([]byte{0, 2, 1, 9, 120, 4, 4, 4, 10, 99})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		points := []string{
			"flush.wal-created", "flush.sstable-written", "flush.manifest-committed",
			"compact.output-written", "compact.manifest-committed",
		}
		point := points[int(data[0])%len(points)]
		skip := int(data[1]) % 3 // let the point fire a few times first
		dir := t.TempDir()
		db, err := Open(dir, &Options{MemtableBytes: 1 << 11, MaxTables: 3, SyncWAL: true})
		if err != nil {
			t.Fatal(err)
		}
		want := map[[2]int32]float64{} // completed operations
		touched := map[[2]int32]bool{}
		var pendingKey [2]int32
		var pendingVal float64
		pendingDel, pendingPut := false, false
		hits := 0
		crashPoint = func(p string) {
			if p == point {
				hits++
				if hits > skip {
					panic(errSimulatedCrash)
				}
			}
		}
		defer func() { crashPoint = nil }()
		func() {
			defer func() {
				if r := recover(); r != nil && r != errSimulatedCrash {
					panic(r)
				}
			}()
			for i, b := range data[2:] {
				k := [2]int32{int32(b % 8), int32(i % 32)}
				touched[k] = true
				pendingKey, pendingVal = k, float64(i)
				pendingDel, pendingPut = false, false
				if b%5 == 4 {
					pendingDel = true
					if err := db.DeleteKV(storage.EncodeKey(k[0], k[1])); err != nil {
						t.Fatal(err)
					}
					delete(want, k)
				} else {
					pendingPut = true
					if err := db.Put(model.Point{T: k[0], OID: k[1], X: float64(i)}); err != nil {
						t.Fatal(err)
					}
					want[k] = float64(i)
				}
				pendingDel, pendingPut = false, false
				if b%11 == 10 {
					if err := db.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}()
		crashPoint = nil
		db.abandon()
		db2, err := Open(dir, &Options{MaxTables: 3})
		if err != nil {
			t.Fatalf("reopen after crash at %s: %v", point, err)
		}
		defer db2.Close()
		for k := range touched {
			rows, err := db2.Fetch(k[0], model.NewObjSet(k[1]))
			if err != nil {
				t.Fatal(err)
			}
			wantVal, wantPresent := want[k]
			ok := (wantPresent && len(rows) == 1 && rows[0].X == wantVal) ||
				(!wantPresent && len(rows) == 0)
			if !ok && k == pendingKey {
				// The op in flight at the crash was WAL-synced before the
				// crash point fired; its effect may legitimately show.
				ok = (pendingDel && len(rows) == 0) ||
					(pendingPut && len(rows) == 1 && rows[0].X == pendingVal)
			}
			if !ok {
				t.Fatalf("crash at %s: key %v = %v, want %v (present=%v)",
					point, k, rows, wantVal, wantPresent)
			}
		}
	})
}
