package lsm

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// Compaction across many runs with heavy overwrites must keep exactly the
// newest value per key and preserve global order.
func TestCompactionPreservesNewestAndOrder(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{MemtableBytes: 512, MaxTables: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(13))
	want := map[[2]int32]float64{}
	for i := 0; i < 5000; i++ {
		k := [2]int32{int32(rng.Intn(20)), int32(rng.Intn(20))}
		x := rng.Float64()
		want[k] = x
		if err := db.Put(model.Point{T: k[0], OID: k[1], X: x}); err != nil {
			t.Fatal(err)
		}
	}
	if db.NumTables() < 5 {
		t.Fatalf("expected many runs before compaction, got %d", db.NumTables())
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.NumTables() != 1 {
		t.Fatalf("compaction left %d tables", db.NumTables())
	}
	// The single run must be sorted, unique, and hold the newest values.
	tab := db.tables[0]
	it := tab.iterator(nil, nil)
	var prev []byte
	n := 0
	for ; it.valid(); it.next() {
		if prev != nil && bytes.Compare(prev, it.key()) >= 0 {
			t.Fatalf("compacted run out of order or duplicated")
		}
		tt, oid := storage.DecodeKey(it.key())
		x, _ := storage.DecodeValue(it.value())
		if want[[2]int32{tt, oid}] != x {
			t.Fatalf("stale value for (%d,%d): %f", tt, oid, x)
		}
		prev = append(prev[:0], it.key()...)
		n++
	}
	if n != len(want) {
		t.Fatalf("compacted run has %d keys, want %d", n, len(want))
	}
}

// The block cache must return the same bytes as uncached reads and keep
// working past its eviction capacity.
func TestBlockCacheCoherent(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 200000 // ≫ the default BlockCacheBytes worth of records
	for i := 0; i < n; i++ {
		if err := db.Put(model.Point{T: int32(i / 256), OID: int32(i % 256), X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		i := rng.Intn(n)
		v, err := db.Get(int32(i/256), int32(i%256))
		if err != nil {
			t.Fatal(err)
		}
		x, _ := storage.DecodeValue(v)
		if x != float64(i) {
			t.Fatalf("cache incoherent at %d: got %f", i, x)
		}
	}
}

// Snapshot scans across memtable + multiple runs must merge and dedupe.
func TestSnapshotAcrossMemtableAndRuns(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{MaxTables: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Run 1: oids 0..9 at t=5 with X=1.
	for oid := int32(0); oid < 10; oid++ {
		db.Put(model.Point{T: 5, OID: oid, X: 1})
	}
	db.Flush()
	// Run 2: overwrite evens with X=2.
	for oid := int32(0); oid < 10; oid += 2 {
		db.Put(model.Point{T: 5, OID: oid, X: 2})
	}
	db.Flush()
	// Memtable: add oid 10 and overwrite oid 1 with X=3.
	db.Put(model.Point{T: 5, OID: 10, X: 3})
	db.Put(model.Point{T: 5, OID: 1, X: 3})

	snap, err := db.Snapshot(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 11 {
		t.Fatalf("snapshot rows = %d, want 11: %v", len(snap), snap)
	}
	for _, r := range snap {
		var want float64
		switch {
		case r.OID == 10 || r.OID == 1:
			want = 3
		case r.OID%2 == 0:
			want = 2
		default:
			want = 1
		}
		if r.X != want {
			t.Fatalf("oid %d: X = %f, want %f", r.OID, r.X, want)
		}
	}
}

func TestReopenAfterManyCycles(t *testing.T) {
	dir := t.TempDir()
	want := map[int32]float64{}
	for cycle := 0; cycle < 5; cycle++ {
		db, err := Open(dir, &Options{MemtableBytes: 1024, MaxTables: 3})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		for i := 0; i < 300; i++ {
			oid := int32(cycle*300 + i)
			want[oid] = float64(cycle)
			if err := db.Put(model.Point{T: 1, OID: oid, X: float64(cycle)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	snap, err := db.Snapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != len(want) {
		t.Fatalf("recovered %d rows, want %d", len(snap), len(want))
	}
	for _, r := range snap {
		if r.X != want[r.OID] {
			t.Fatalf("oid %d: X = %f, want %f", r.OID, r.X, want[r.OID])
		}
	}
}

func BenchmarkSnapshotScan(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 100000; i++ {
		db.Put(model.Point{T: int32(i / 1000), OID: int32(i % 1000), X: float64(i)})
	}
	db.Flush()
	db.Compact()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Snapshot(int32(i % 100)); err != nil {
			b.Fatal(err)
		}
	}
}
