package lsm

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// --- Options boundaries -------------------------------------------------

func TestOptionsWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   *Options
		want Options
	}{
		{"nil", nil, Options{MemtableBytes: 4 << 20, MaxTables: 6, BlockCacheBytes: 4 << 20}},
		{"zero", &Options{}, Options{MemtableBytes: 4 << 20, MaxTables: 6, BlockCacheBytes: 4 << 20}},
		{"negative", &Options{MemtableBytes: -1, MaxTables: -3, BlockCacheBytes: -7}, Options{MemtableBytes: 4 << 20, MaxTables: 6, BlockCacheBytes: 4 << 20}},
		// MaxTables 1 is the documented floor ("always compact to a single
		// run"); it used to be silently replaced by the default 6.
		{"max-tables-one", &Options{MaxTables: 1}, Options{MemtableBytes: 4 << 20, MaxTables: 1, BlockCacheBytes: 4 << 20}},
		{"max-tables-two", &Options{MaxTables: 2}, Options{MemtableBytes: 4 << 20, MaxTables: 2, BlockCacheBytes: 4 << 20}},
		{"explicit", &Options{MemtableBytes: 512, MaxTables: 9, SyncWAL: true, BlockCacheBytes: 1 << 20}, Options{MemtableBytes: 512, MaxTables: 9, SyncWAL: true, BlockCacheBytes: 1 << 20}},
	}
	for _, tc := range cases {
		if got := tc.in.withDefaults(); got != tc.want {
			t.Errorf("%s: withDefaults() = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestMaxTablesOneAlwaysCompacts(t *testing.T) {
	db, err := Open(t.TempDir(), &Options{MemtableBytes: 512, MaxTables: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 1000; i++ {
		if err := db.Put(model.Point{T: int32(i / 50), OID: int32(i % 50), X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.waitCompactions()
	if n := db.NumTables(); n != 1 {
		t.Fatalf("MaxTables=1 should converge to a single run, got %d", n)
	}
}

// --- mergeIter edge cases -----------------------------------------------

// faultyIter yields a fixed record list but fails sticky after failAt
// records, modelling an sstable whose scan dies mid-stream.
type faultyIter struct {
	keys   [][]byte
	i      int
	failAt int
	e      error
}

var errInjectedScan = errors.New("injected scan failure")

func (it *faultyIter) valid() bool   { return it.e == nil && it.i < len(it.keys) }
func (it *faultyIter) key() []byte   { return it.keys[it.i] }
func (it *faultyIter) value() []byte { return make([]byte, storage.ValueSize) }
func (it *faultyIter) tomb() bool    { return false }
func (it *faultyIter) next() {
	it.i++
	if it.i >= it.failAt {
		it.e = errInjectedScan
	}
}
func (it *faultyIter) srcErr() error { return it.e }

func memWith(seed int64, vals map[int32]float64) *memtable {
	m := newMemtable(seed)
	for oid, x := range vals {
		k := storage.EncodeKey(1, oid)
		v := storage.EncodeValue(x, 0)
		m.put(k[:], v[:], false)
	}
	return m
}

func TestMergeIterDuplicateKeyAcrossManySources(t *testing.T) {
	// The same key lives in four sources; the one with the largest slice
	// index must win, and the key must be yielded exactly once.
	srcs := make([]kvIterator, 4)
	for i := range srcs {
		srcs[i] = memWith(int64(i+1), map[int32]float64{7: float64(i), int32(10 + i): 1}).iterator(nil)
	}
	m := newMergeIter(srcs)
	seen := map[int32]float64{}
	for ; m.valid(); m.next() {
		_, oid := storage.DecodeKey(m.key())
		if _, dup := seen[oid]; dup {
			t.Fatalf("key oid=%d yielded twice", oid)
		}
		x, _ := storage.DecodeValue(m.value())
		seen[oid] = x
	}
	if err := m.err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("merged %d distinct keys, want 5 (got %v)", len(seen), seen)
	}
	if seen[7] != 3 {
		t.Fatalf("duplicate key resolved to source value %v, want newest (3)", seen[7])
	}
}

func TestMergeIterSourceErrorSurfaces(t *testing.T) {
	var keys [][]byte
	for oid := int32(0); oid < 6; oid++ {
		k := storage.EncodeKey(1, oid)
		keys = append(keys, append([]byte(nil), k[:]...))
	}
	faulty := &faultyIter{keys: keys, failAt: 3}
	healthy := memWith(1, map[int32]float64{100: 1, 101: 2}).iterator(nil)
	m := newMergeIter([]kvIterator{faulty, healthy})
	n := 0
	for ; m.valid(); m.next() {
		n++
	}
	// Partial results must have been yielded before the failure...
	if n < 3 {
		t.Fatalf("merge yielded %d records before source failure, want ≥ 3", n)
	}
	// ...and err() must still surface the mid-scan error afterwards.
	if err := m.err(); !errors.Is(err, errInjectedScan) {
		t.Fatalf("err() = %v, want injected scan failure", err)
	}
}

func TestMergeIterSSTableErrorSurfaces(t *testing.T) {
	// Real-source variant: close the table's file mid-scan so the next
	// block read fails; err() must report it after the partial results.
	dir := t.TempDir()
	db, err := Open(dir, &Options{MaxTables: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 1000; i++ {
		if err := db.Put(model.Point{T: int32(i), OID: 1, X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	tab := db.tables[0]
	it := tab.iterator(nil, nil)
	m := newMergeIter([]kvIterator{it})
	n := 0
	for ; m.valid(); m.next() {
		n++
		if n == 100 {
			tab.f.Close() // the next block load must fail
		}
	}
	if n >= 1000 {
		t.Fatalf("scan should have died mid-stream, yielded all %d records", n)
	}
	if err := m.err(); err == nil {
		t.Fatalf("err() = nil after mid-scan read failure")
	}
	// Reopen the handle so db.Close doesn't double-close.
	db.tables = db.tables[:0]
}

func TestMergeIterAllEmptySources(t *testing.T) {
	for _, srcs := range [][]kvIterator{
		nil,
		{},
		{newMemtable(1).iterator(nil)},
		{newMemtable(1).iterator(nil), newMemtable(2).iterator(nil), nil},
	} {
		m := newMergeIter(srcs)
		if m.valid() {
			t.Fatalf("empty merge (%d sources) reports valid", len(srcs))
		}
		if err := m.err(); err != nil {
			t.Fatalf("empty merge err = %v", err)
		}
	}
}

// --- Tombstones ---------------------------------------------------------

func TestDeleteKVBasic(t *testing.T) {
	db, err := Open(t.TempDir(), &Options{MaxTables: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	key := storage.EncodeKey(1, 1)
	val := storage.EncodeValue(1, 2)
	if err := db.PutKV(key, val); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteKV(key); err != nil {
		t.Fatal(err)
	}
	if v, err := db.GetKV(key); err != nil || v != nil {
		t.Fatalf("deleted key visible: %v, %v", v, err)
	}
	// Deleting an absent key is fine.
	if err := db.DeleteKV(storage.EncodeKey(9, 9)); err != nil {
		t.Fatal(err)
	}
	// Re-put after delete resurrects the key.
	val2 := storage.EncodeValue(3, 4)
	if err := db.PutKV(key, val2); err != nil {
		t.Fatal(err)
	}
	v, err := db.GetKV(key)
	if err != nil || v == nil {
		t.Fatalf("re-put key invisible: %v, %v", v, err)
	}
	if x, _ := storage.DecodeValue(v); x != 3 {
		t.Fatalf("re-put value = %v", x)
	}
}

func TestTombstoneShadowsAcrossRuns(t *testing.T) {
	db, err := Open(t.TempDir(), &Options{MaxTables: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for oid := int32(0); oid < 10; oid++ {
		if err := db.Put(model.Point{T: 1, OID: oid, X: float64(oid)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Delete the evens in a newer run.
	for oid := int32(0); oid < 10; oid += 2 {
		if err := db.DeleteKV(storage.EncodeKey(1, oid)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		snap, err := db.Snapshot(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) != 5 {
			t.Fatalf("%s: snapshot has %d rows, want 5: %v", stage, len(snap), snap)
		}
		for _, r := range snap {
			if r.OID%2 == 0 {
				t.Fatalf("%s: deleted oid %d visible", stage, r.OID)
			}
		}
		if v, err := db.GetKV(storage.EncodeKey(1, 4)); err != nil || v != nil {
			t.Fatalf("%s: get of deleted key = %v, %v", stage, v, err)
		}
		n := 0
		if err := db.Scan(storage.EncodeKey(-1<<31, -1<<31), func(k, v []byte) bool {
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("%s: scan saw %d live keys, want 5", stage, n)
		}
	}
	check("tombstones in newer run")

	// Survive reopen (tombstones replay from the recovered run).
	dirDB := db.dir
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dirDB, &Options{MaxTables: 100})
	if err != nil {
		t.Fatal(err)
	}
	check("after reopen")

	// Full compaction GCs the tombstones: physically gone, still deleted.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := db.NumTables(); n != 1 {
		t.Fatalf("compaction left %d tables", n)
	}
	if db.tables[0].tombs != 0 {
		t.Fatalf("bottom-level compaction kept %d tombstones", db.tables[0].tombs)
	}
	if db.tables[0].count != 5 {
		t.Fatalf("compacted run has %d records, want 5", db.tables[0].count)
	}
	check("after bottom-level GC")
}

func TestTombstoneKeptAboveBottomLevel(t *testing.T) {
	// Three runs: a big oldest run holding the key, a tombstone run, and a
	// small unrelated run. A window merge that excludes the oldest run must
	// CARRY the tombstone (dropping it would resurrect the old value).
	db, err := Open(t.TempDir(), &Options{MemtableBytes: 1 << 20, MaxTables: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Oldest run: expensive (many records) so the policy avoids it.
	for i := 0; i < 2000; i++ {
		if err := db.Put(model.Point{T: 1, OID: int32(i), X: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Middle run: tombstone for oid 42.
	if err := db.DeleteKV(storage.EncodeKey(1, 42)); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Newest run: one unrelated record.
	if err := db.Put(model.Point{T: 2, OID: 1, X: 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Force one size-tiered merge with MaxTables=2 semantics: window of 2,
	// cheapest is [middle, newest] — not the bottom level.
	db.mu.Lock()
	db.opts.MaxTables = 2
	db.mu.Unlock()
	progressed, err := db.compactOnce(false)
	if err != nil || !progressed {
		t.Fatalf("compactOnce = %v, %v", progressed, err)
	}
	if n := db.NumTables(); n != 2 {
		t.Fatalf("window merge left %d tables, want 2", n)
	}
	if got := db.tables[1].tombs; got != 1 {
		t.Fatalf("non-bottom merge kept %d tombstones, want 1", got)
	}
	if v, err := db.GetKV(storage.EncodeKey(1, 42)); err != nil || v != nil {
		t.Fatalf("deleted key resurrected after window merge: %v, %v", v, err)
	}
	// Now a full compaction reaches the bottom: tombstone GC'd.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := db.tables[0].tombs; got != 0 {
		t.Fatalf("bottom merge kept %d tombstones", got)
	}
	if v, _ := db.GetKV(storage.EncodeKey(1, 42)); v != nil {
		t.Fatalf("deleted key visible after GC")
	}
}

// --- Background compaction under concurrency ----------------------------

func TestBackgroundCompactionConcurrentReads(t *testing.T) {
	db, err := Open(t.TempDir(), &Options{MemtableBytes: 2048, MaxTables: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.Get(int32(i%40), int32(i%40))
			db.Snapshot(int32(i % 40))
		}
	}()
	for i := 0; i < 4000; i++ {
		if err := db.Put(model.Point{T: int32(i % 40), OID: int32(i % 40), X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	db.waitCompactions()
	if n := db.NumTables(); n > 3 {
		t.Fatalf("compactor did not keep up: %d tables", n)
	}
	// Every key must hold its newest value.
	for k := int32(0); k < 40; k++ {
		i := 3960 + int(k) // last write of each key in the loop above
		rows, err := db.Fetch(k, model.NewObjSet(k))
		if err != nil || len(rows) != 1 {
			t.Fatalf("key %d: %v, %v", k, rows, err)
		}
		if rows[0].X != float64(i) {
			t.Fatalf("key %d: X = %v, want %d", k, rows[0].X, i)
		}
	}
}

// BenchmarkPutKVSustained measures the write path while flushes and
// background compactions churn continuously (tiny memtable, tight
// MaxTables). Before background compaction, every MaxTables-th flush
// performed the whole merge inline under db.mu, so the same workload
// showed periodic latency cliffs on this benchmark.
func BenchmarkPutKVSustained(b *testing.B) {
	db, err := Open(b.TempDir(), &Options{MemtableBytes: 64 << 10, MaxTables: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := storage.EncodeKey(int32(i/1000), int32(i%1000))
		val := storage.EncodeValue(float64(i), 0)
		if err := db.PutKV(key, val); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	db.waitCompactions()
}

// BenchmarkCompactMerge measures one full merge of several overlapping runs
// (the unit of background work).
func BenchmarkCompactMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, err := Open(b.TempDir(), &Options{MemtableBytes: 1 << 20, MaxTables: 100})
		if err != nil {
			b.Fatal(err)
		}
		for r := 0; r < 6; r++ {
			for j := 0; j < 5000; j++ {
				db.Put(model.Point{T: int32(j / 100), OID: int32(j % 100), X: float64(r)})
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := db.Compact(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		db.Close()
		b.StartTimer()
	}
}
