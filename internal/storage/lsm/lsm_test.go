package lsm

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

var _ storage.Store = (*DB)(nil)

func TestConformance(t *testing.T) {
	ds := storetest.RandomDataset(20, 40, 30, 0.8)
	dir := t.TempDir()
	if err := WriteDataset(dir, ds, nil); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	storetest.Run(t, db, ds)
}

func TestConformanceManySmallTables(t *testing.T) {
	// Tiny memtable forces many flushes; MaxTables large enough to avoid
	// compaction so reads must merge across runs.
	ds := storetest.RandomDataset(21, 25, 25, 0.7)
	dir := t.TempDir()
	db, err := Open(dir, &Options{MemtableBytes: 2048, MaxTables: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PutBatch(ds.Points()); err != nil {
		t.Fatal(err)
	}
	if db.NumTables() < 3 {
		t.Fatalf("expected several sstables, got %d", db.NumTables())
	}
	storetest.Run(t, db, ds)
	db.Close()
}

func TestMemtableVisibleBeforeFlush(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put(model.Point{OID: 7, T: 3, X: 1.5, Y: 2.5}); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Fetch(3, model.NewObjSet(7))
	if err != nil || len(rows) != 1 || rows[0].X != 1.5 {
		t.Fatalf("Fetch from memtable = %v, %v", rows, err)
	}
	snap, err := db.Snapshot(3)
	if err != nil || len(snap) != 1 {
		t.Fatalf("Snapshot from memtable = %v, %v", snap, err)
	}
}

func TestOverwriteAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{MaxTables: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put(model.Point{OID: 1, T: 1, X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(model.Point{OID: 1, T: 1, X: 2, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Newest run must win for both point get and snapshot scan.
	rows, err := db.Fetch(1, model.NewObjSet(1))
	if err != nil || len(rows) != 1 || rows[0].X != 2 {
		t.Fatalf("Fetch overwrite = %v, %v", rows, err)
	}
	snap, err := db.Snapshot(1)
	if err != nil || len(snap) != 1 || snap[0].X != 2 {
		t.Fatalf("Snapshot overwrite = %v, %v", snap, err)
	}
	// After compaction the value must survive.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.NumTables() != 1 {
		t.Fatalf("compaction should leave one table, got %d", db.NumTables())
	}
	rows, err = db.Fetch(1, model.NewObjSet(1))
	if err != nil || len(rows) != 1 || rows[0].X != 2 {
		t.Fatalf("post-compaction Fetch = %v, %v", rows, err)
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := []model.Point{
		{OID: 1, T: 0, X: 1, Y: 1},
		{OID: 2, T: 0, X: 2, Y: 2},
		{OID: 1, T: 1, X: 3, Y: 3},
	}
	if err := db.PutBatch(pts); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no Flush, no Close; the WAL holds everything.
	db.wal.sync()

	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	rows, err := db2.Fetch(1, model.NewObjSet(1))
	if err != nil || len(rows) != 1 || rows[0].X != 3 {
		t.Fatalf("recovered Fetch = %v, %v", rows, err)
	}
	if got := db2.Count(); got != 3 {
		t.Fatalf("recovered Count = %d", got)
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PutBatch([]model.Point{{OID: 1, T: 0, X: 1, Y: 1}}); err != nil {
		t.Fatal(err)
	}
	db.wal.sync()
	// Append garbage to the WAL to simulate a torn write.
	f, err := os.OpenFile(filepath.Join(dir, db.walName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3})
	f.Close()

	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen with torn wal: %v", err)
	}
	defer db2.Close()
	rows, err := db2.Fetch(0, model.NewObjSet(1))
	if err != nil || len(rows) != 1 {
		t.Fatalf("intact prefix should replay: %v, %v", rows, err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	ds := storetest.RandomDataset(22, 30, 20, 0.9)
	dir := t.TempDir()
	if err := WriteDataset(dir, ds, &Options{MemtableBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	storetest.Run(t, db, ds)
}

func TestAutoCompactionTriggers(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{MemtableBytes: 1024, MaxTables: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 2000; i++ {
		if err := db.Put(model.Point{OID: int32(i % 50), T: int32(i / 50), X: float64(i), Y: 0}); err != nil {
			t.Fatal(err)
		}
	}
	db.waitCompactions()
	if db.NumTables() > 3 {
		t.Fatalf("auto compaction did not bound runs: %d", db.NumTables())
	}
}

func TestPutAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := db.Put(model.Point{}); err == nil {
		t.Fatalf("Put after Close should fail")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double Close should be nil, got %v", err)
	}
}

// Property: the whole DB behaves like a map under random puts with
// overwrites, random flushes and compactions.
func TestDBMatchesMapModel(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{MemtableBytes: 4096, MaxTables: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(77))
	type key struct{ t, oid int32 }
	modelMap := map[key][2]float64{}
	for i := 0; i < 3000; i++ {
		k := key{t: int32(rng.Intn(40)), oid: int32(rng.Intn(40))}
		v := [2]float64{rng.Float64(), rng.Float64()}
		modelMap[k] = v
		if err := db.Put(model.Point{OID: k.oid, T: k.t, X: v[0], Y: v[1]}); err != nil {
			t.Fatal(err)
		}
		if i%701 == 700 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if i%1303 == 1302 {
			if err := db.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k, v := range modelMap {
		rows, err := db.Fetch(k.t, model.NewObjSet(k.oid))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0].X != v[0] || rows[0].Y != v[1] {
			t.Fatalf("Fetch(%v) = %v, want %v", k, rows, v)
		}
	}
	// Snapshot per timestamp equals the model's row set.
	for tt := int32(0); tt < 40; tt++ {
		var want int
		for k := range modelMap {
			if k.t == tt {
				want++
			}
		}
		snap, err := db.Snapshot(tt)
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) != want {
			t.Fatalf("Snapshot(%d) = %d rows, want %d", tt, len(snap), want)
		}
		for i := 1; i < len(snap); i++ {
			if snap[i-1].OID >= snap[i].OID {
				t.Fatalf("Snapshot(%d) not sorted by OID", tt)
			}
		}
	}
}

func TestBloomFilter(t *testing.T) {
	f := newBloom(1000)
	keys := make([][]byte, 1000)
	for i := range keys {
		k := storage.EncodeKey(int32(i), int32(i*7))
		keys[i] = append([]byte(nil), k[:]...)
		f.add(keys[i])
	}
	for _, k := range keys {
		if !f.mayContain(k) {
			t.Fatalf("bloom false negative for %v", k)
		}
	}
	// False-positive rate should be small.
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		k := storage.EncodeKey(int32(i+100000), int32(i))
		if f.mayContain(k[:]) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("bloom false-positive rate too high: %f", rate)
	}
}

func TestBloomRoundTripBytes(t *testing.T) {
	f := newBloom(10)
	k := []byte("12345678")
	f.add(k)
	g := bloomFromBytes(f.bits)
	if !g.mayContain(k) {
		t.Fatalf("persisted bloom lost key")
	}
}

func TestMemtableOrderedIteration(t *testing.T) {
	m := newMemtable(1)
	rng := rand.New(rand.NewSource(9))
	n := 500
	for i := 0; i < n; i++ {
		k := storage.EncodeKey(int32(rng.Intn(100)), int32(rng.Intn(100)))
		v := storage.EncodeValue(float64(i), 0)
		m.put(k[:], v[:], false)
	}
	var prev []byte
	count := 0
	for it := m.iterator(nil); it.valid(); it.next() {
		if prev != nil && bytes.Compare(prev, it.key()) >= 0 {
			t.Fatalf("memtable iteration out of order")
		}
		prev = append(prev[:0], it.key()...)
		count++
	}
	if count != m.len() {
		t.Fatalf("iterated %d, len %d", count, m.len())
	}
}

func TestMemtableSeek(t *testing.T) {
	m := newMemtable(2)
	for _, tt := range []int32{10, 20, 30} {
		k := storage.EncodeKey(tt, 0)
		v := storage.EncodeValue(0, 0)
		m.put(k[:], v[:], false)
	}
	start := storage.EncodeKey(15, 0)
	it := m.iterator(start[:])
	if !it.valid() {
		t.Fatalf("seek should find 20")
	}
	kt, _ := storage.DecodeKey(it.key())
	if kt != 20 {
		t.Fatalf("seek landed on %d, want 20", kt)
	}
}

func TestSSTableGarbageRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.sst")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSSTable(path); err == nil {
		t.Fatalf("openSSTable of garbage should fail")
	}
	big := make([]byte, 1000)
	if err := os.WriteFile(path, big, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSSTable(path); err == nil {
		t.Fatalf("openSSTable of zeros should fail")
	}
}

func TestMergeIterNewestWins(t *testing.T) {
	old := newMemtable(1)
	newer := newMemtable(2)
	k := storage.EncodeKey(1, 1)
	vo := storage.EncodeValue(1, 0)
	vn := storage.EncodeValue(2, 0)
	old.put(k[:], vo[:], false)
	newer.put(k[:], vn[:], false)
	k2 := storage.EncodeKey(0, 5)
	v2 := storage.EncodeValue(9, 0)
	old.put(k2[:], v2[:], false)

	m := newMergeIter([]kvIterator{old.iterator(nil), newer.iterator(nil)})
	var got []float64
	for ; m.valid(); m.next() {
		x, _ := storage.DecodeValue(m.value())
		got = append(got, x)
	}
	if len(got) != 2 || got[0] != 9 || got[1] != 2 {
		t.Fatalf("merge output = %v, want [9 2]", got)
	}
}

func TestSSTableSparseKeySpace(t *testing.T) {
	// Keys far apart stress blockFor's boundary handling.
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 1000; i++ {
		if err := db.Put(model.Point{OID: int32(i * 1000), T: int32(i * 100), X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 499, 998, 999} {
		rows, err := db.Fetch(int32(i*100), model.NewObjSet(int32(i*1000)))
		if err != nil || len(rows) != 1 || rows[0].X != float64(i) {
			t.Fatalf("Fetch %d = %v, %v", i, rows, err)
		}
	}
	// Absent keys below the first and above the last key.
	if rows, _ := db.Fetch(-50, model.NewObjSet(1)); len(rows) != 0 {
		t.Fatalf("fetch below range should be empty")
	}
	if rows, _ := db.Fetch(1<<30, model.NewObjSet(1)); len(rows) != 0 {
		t.Fatalf("fetch above range should be empty")
	}
}

func TestStatsAccounting(t *testing.T) {
	ds := storetest.RandomDataset(23, 20, 10, 1.0)
	dir := t.TempDir()
	if err := WriteDataset(dir, ds, nil); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Snapshot(5); err != nil {
		t.Fatal(err)
	}
	st := db.Stats().Snapshot()
	if st.SnapshotScans != 1 || st.PointsRead != 20 {
		t.Fatalf("scan stats: %+v", st)
	}
	db.Stats().Reset()
	if _, err := db.Fetch(5, model.NewObjSet(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	st = db.Stats().Snapshot()
	if st.PointQueries != 3 || st.PointsRead != 3 {
		t.Fatalf("fetch stats: %+v", st)
	}
}

func TestManifestSurvivesTmpFile(t *testing.T) {
	// A leftover MANIFEST.tmp must not break opening.
	ds := storetest.RandomDataset(24, 5, 5, 1.0)
	dir := t.TempDir()
	if err := WriteDataset(dir, ds, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName+".tmp"), []byte("junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open with stale tmp: %v", err)
	}
	db.Close()
}

func BenchmarkPointGet(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 100000; i++ {
		db.Put(model.Point{OID: int32(i % 1000), T: int32(i / 1000), X: float64(i)})
	}
	db.Flush()
	db.Compact()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get(int32(i%100), int32(i%1000))
	}
}

// TestPutKVScan exercises the raw key/value surface the archive indexes
// use: arbitrary (key, value) pairs round-trip through memtable, flush and
// compaction, Scan walks them merged in key order from any start key,
// overwrites shadow older runs, and an early-stop fn halts the walk.
func TestPutKVScan(t *testing.T) {
	db, err := Open(t.TempDir(), &Options{MemtableBytes: 1 << 10, MaxTables: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 500
	key := func(i int) [storage.KeySize]byte { return storage.EncodeKey(int32(i%7), int32(i)) }
	val := func(i int, gen uint32) (v [storage.ValueSize]byte) {
		binary.LittleEndian.PutUint64(v[0:8], uint64(i))
		binary.LittleEndian.PutUint32(v[8:12], gen)
		return v
	}
	for i := 0; i < n; i++ {
		if err := db.PutKV(key(i), val(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Overwrite a slice of keys in a newer generation; they live in the
	// memtable while generation 1 sits in sstables.
	for i := 100; i < 200; i++ {
		if err := db.PutKV(key(i), val(i, 2)); err != nil {
			t.Fatal(err)
		}
	}

	var (
		got     int
		prevKey []byte
	)
	err = db.Scan(storage.EncodeKey(-1<<31, -1<<31), func(k, v []byte) bool {
		if prevKey != nil && bytes.Compare(k, prevKey) <= 0 {
			t.Fatalf("scan out of order at record %d", got)
		}
		prevKey = append(prevKey[:0], k...)
		i := int(binary.LittleEndian.Uint64(v[0:8]))
		gen := binary.LittleEndian.Uint32(v[8:12])
		wantGen := uint32(1)
		if i >= 100 && i < 200 {
			wantGen = 2
		}
		if gen != wantGen {
			t.Fatalf("key for %d: generation %d, want %d", i, gen, wantGen)
		}
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("scanned %d records, want %d", got, n)
	}

	// Start mid-keyspace: only keys ≥ start appear.
	start := storage.EncodeKey(4, -1<<31)
	count := 0
	if err := db.Scan(start, func(k, v []byte) bool {
		if bytes.Compare(k, start[:]) < 0 {
			t.Fatal("scan yielded key below start")
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < n; i++ {
		if i%7 >= 4 {
			want++
		}
	}
	if count != want {
		t.Fatalf("suffix scan got %d records, want %d", count, want)
	}

	// Early stop.
	count = 0
	if err := db.Scan(storage.EncodeKey(-1<<31, -1<<31), func(k, v []byte) bool {
		count++
		return count < 10
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("early-stop scan visited %d records, want 10", count)
	}
}

// TestPutKVReopen: raw records survive WAL replay and manifest reload.
func TestPutKVReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{MemtableBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	var v [storage.ValueSize]byte
	for i := 0; i < 300; i++ {
		binary.LittleEndian.PutUint64(v[:8], uint64(i))
		if err := db.PutKV(storage.EncodeKey(0, int32(i)), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	count := 0
	if err := db.Scan(storage.EncodeKey(-1<<31, -1<<31), func(k, val []byte) bool {
		_, oid := storage.DecodeKey(k)
		if got := binary.LittleEndian.Uint64(val[:8]); got != uint64(oid) {
			t.Fatalf("oid %d: value %d", oid, got)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 300 {
		t.Fatalf("reopened scan found %d records, want 300", count)
	}
}
