package lsm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// wal is a write-ahead log of put records. Each record is:
//
//	u32 crc (over everything after it) | u16 keyLen | u16 valLen | key | val
//
// A record with valLen == 0 is a tombstone (all live values are 16 bytes,
// so a zero-length value is unambiguous). Replay stops at the first corrupt
// or truncated record, which models the usual crash-recovery contract: a
// torn tail write loses only the records after the tear.
type wal struct {
	f   *os.File
	w   *bufio.Writer
	len int64
}

func createWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: create wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// append writes one record; a nil/empty val records a tombstone. Durability
// is best-effort (no fsync per record) matching the paper's bulk-ingest
// usage; call sync for a hard barrier.
func (w *wal) append(key, val []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint16(hdr[4:6], uint16(len(key)))
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(len(val)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:8])
	crc.Write(key)
	crc.Write(val)
	binary.LittleEndian.PutUint32(hdr[0:4], crc.Sum32())
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(key); err != nil {
		return err
	}
	if _, err := w.w.Write(val); err != nil {
		return err
	}
	w.len += int64(8 + len(key) + len(val))
	return nil
}

// sync flushes buffered records to the OS and disk.
func (w *wal) sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// close flushes and closes the log.
func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replayWAL streams every intact record of the log at path into fn, with
// tomb set for tombstone (zero-length value) records. A missing file is not
// an error (fresh database).
func replayWAL(path string, fn func(key, val []byte, tomb bool)) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lsm: open wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // clean EOF or torn header: stop replay
		}
		keyLen := int(binary.LittleEndian.Uint16(hdr[4:6]))
		valLen := int(binary.LittleEndian.Uint16(hdr[6:8]))
		buf := make([]byte, keyLen+valLen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil // torn body
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[4:8])
		crc.Write(buf)
		if crc.Sum32() != binary.LittleEndian.Uint32(hdr[0:4]) {
			return nil // corrupt record: stop
		}
		fn(buf[:keyLen], buf[keyLen:], valLen == 0)
	}
}
