package lsm

import (
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// blockCache is the DB-wide cache of decoded SSTable data blocks. It
// replaces the old per-table map guarded by db.mu: snapshot reads touch the
// cache without any DB lock, so the cache shards its own locking. Entries
// are keyed by (table id, block index) — table ids are unique for the
// lifetime of the process, so a retired table's blocks can never be
// mistaken for a successor's.
//
// Eviction is CLOCK (second chance) per shard: a hit sets the entry's used
// bit; the insert hand clears used bits until it finds a cold entry to
// replace. The global byte budget is split evenly across shards; each shard
// is an independent mutex + map + ring, so concurrent readers on different
// shards never contend.
type blockCache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

const (
	cacheShards = 8
	// blockBytes is the nominal size of a full data block, used to convert
	// the configured byte budget into an entry count.
	blockBytes = blockRecs * recSizeV2
)

type cacheKey struct {
	table uint64
	block int
}

type cacheShard struct {
	mu   sync.Mutex
	cap  int
	m    map[cacheKey][]byte
	ring []cacheKey
	used []bool
	hand int
}

// newBlockCache sizes a cache for roughly byteBudget bytes of blocks.
func newBlockCache(byteBudget int) *blockCache {
	entries := byteBudget / blockBytes
	per := entries / cacheShards
	if per < 4 {
		per = 4
	}
	c := &blockCache{}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].m = make(map[cacheKey][]byte, per)
	}
	return c
}

func (c *blockCache) shard(k cacheKey) *cacheShard {
	// fmix-style scramble so consecutive block indexes of one table spread
	// across shards.
	h := k.table*0x9e3779b97f4a7c15 + uint64(k.block)*0xbf58476d1ce4e5b9
	h ^= h >> 33
	return &c.shards[h%cacheShards]
}

// get returns the cached block for k, recording a hit or miss.
func (c *blockCache) get(k cacheKey) ([]byte, bool) {
	s := c.shard(k)
	s.mu.Lock()
	b, ok := s.m[k]
	if ok {
		for i, rk := range s.ring {
			if rk == k {
				s.used[i] = true
				break
			}
		}
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return b, ok
}

// put inserts block b for k, evicting a cold entry if the shard is full.
// The caller must not mutate b afterwards.
func (c *blockCache) put(k cacheKey, b []byte) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[k]; ok {
		s.m[k] = b
		return
	}
	if len(s.ring) < s.cap {
		s.m[k] = b
		s.ring = append(s.ring, k)
		s.used = append(s.used, false)
		return
	}
	for {
		old := s.ring[s.hand]
		_, live := s.m[old]
		if live && s.used[s.hand] {
			s.used[s.hand] = false
			s.hand = (s.hand + 1) % len(s.ring)
			continue
		}
		// Cold (or already invalidated by dropTable): take the slot.
		delete(s.m, old)
		s.ring[s.hand] = k
		s.used[s.hand] = false
		s.m[k] = b
		s.hand = (s.hand + 1) % len(s.ring)
		return
	}
}

// dropTable eagerly removes every cached block of a retired table. Ring
// slots keep the stale key and are reclaimed lazily by put's clock sweep.
// Racing readers that still hold a snapshot of the table may briefly
// re-insert its blocks; the unique table id keeps those entries harmless
// and the clock evicts them once cold.
func (c *blockCache) dropTable(table uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.m {
			if k.table == table {
				delete(s.m, k)
			}
		}
		s.mu.Unlock()
	}
}

// counters returns the cumulative hit/miss totals.
func (c *blockCache) counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// readEnv bundles what a point read needs beyond the table itself: the
// shared block cache and the counter sinks. A nil env (or nil fields)
// disables the corresponding feature — compaction merges pass nil to bypass
// the cache entirely, since a one-shot sequential merge would only thrash
// it.
type readEnv struct {
	cache *blockCache
	io    *storage.IOStats
	rs    *readStats
}

// readStats holds the read-path counters surfaced by DB.ReadStats. All
// fields are atomic: they are bumped by lock-free snapshot reads.
type readStats struct {
	// bloomHits counts point lookups a table's bloom filter short-circuited
	// (key proved absent without touching data blocks); bloomMisses counts
	// lookups that passed the filter and went on to a block read.
	bloomHits   atomic.Int64
	bloomMisses atomic.Int64
}

// ReadStats is a point-in-time copy of the DB's read-path counters.
type ReadStats struct {
	BloomHits        int64 // point reads short-circuited by a bloom filter
	BloomMisses      int64 // point reads that passed a filter to a block read
	BlockCacheHits   int64
	BlockCacheMisses int64
	LiveSnapshots    int64 // snapshots currently held by readers
}

// ReadStats returns the current read-path counters.
func (db *DB) ReadStats() ReadStats {
	h, m := db.cache.counters()
	return ReadStats{
		BloomHits:        db.rstats.bloomHits.Load(),
		BloomMisses:      db.rstats.bloomMisses.Load(),
		BlockCacheHits:   h,
		BlockCacheMisses: m,
		LiveSnapshots:    db.liveSnapshots.Load(),
	}
}
