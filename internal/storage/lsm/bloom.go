package lsm

import "encoding/binary"

// bloom is a split-block-free, double-hashed Bloom filter sized at build
// time for ~1% false positives (10 bits/key, 7 probes). SSTables persist
// the bit array verbatim; point lookups consult it before touching the
// index, which is what makes LSM point queries cheap for absent keys.
type bloom struct {
	bits  []byte
	nbits uint64
	k     int
}

const (
	bloomBitsPerKey = 10
	bloomProbes     = 7
)

// newBloom sizes a filter for n keys.
func newBloom(n int) *bloom {
	if n < 1 {
		n = 1
	}
	nbits := uint64(n * bloomBitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	// Round up to a whole number of bytes so that a filter reloaded from its
	// persisted bit array (whose capacity is len(bits)*8) hashes to the same
	// positions as the filter that was built in memory.
	nbits = (nbits + 7) / 8 * 8
	return &bloom{bits: make([]byte, nbits/8), nbits: nbits, k: bloomProbes}
}

// bloomFromBytes wraps a persisted bit array.
func bloomFromBytes(b []byte) *bloom {
	return &bloom{bits: b, nbits: uint64(len(b)) * 8, k: bloomProbes}
}

// add inserts a key.
func (f *bloom) add(key []byte) {
	h1, h2 := bloomHash(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		f.bits[bit>>3] |= 1 << (bit & 7)
	}
}

// mayContain reports whether the key might be present (no false negatives).
func (f *bloom) mayContain(key []byte) bool {
	if f.nbits == 0 {
		return true
	}
	h1, h2 := bloomHash(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
	}
	return true
}

// bloomHash derives two 64-bit hashes from a key using FNV-1a and a mixed
// variant, the classic Kirsch–Mitzenmacher double-hashing scheme.
func bloomHash(key []byte) (uint64, uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h1 uint64 = offset64
	for _, b := range key {
		h1 ^= uint64(b)
		h1 *= prime64
	}
	// Second hash: fmix64 of h1 xored with the key length and first bytes.
	h2 := h1
	var pad [8]byte
	copy(pad[:], key)
	h2 ^= binary.LittleEndian.Uint64(pad[:])
	h2 ^= h2 >> 33
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	h2 *= 0xc4ceb9fe1a85ec53
	h2 ^= h2 >> 33
	if h2 == 0 {
		h2 = 1
	}
	return h1, h2
}
