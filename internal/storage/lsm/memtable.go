package lsm

import (
	"bytes"
	"math/rand"
)

// memtable is an in-memory ordered map from keys to values implemented as a
// skiplist, the standard LSM write buffer. Single-writer, multi-reader use
// is coordinated by the owning DB's mutex. An entry may be a tombstone — a
// deletion marker that shadows any older on-disk version of the key until
// compaction garbage-collects both.
type memtable struct {
	head   *skipNode
	rng    *rand.Rand
	level  int
	n      int
	byteSz int
}

const maxLevel = 16

type skipNode struct {
	key, val []byte
	tomb     bool
	next     [maxLevel]*skipNode
}

func newMemtable(seed int64) *memtable {
	return &memtable{head: &skipNode{}, rng: rand.New(rand.NewSource(seed)), level: 1}
}

func (m *memtable) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && m.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// put inserts or overwrites key → val. Both slices are copied. A tombstone
// entry (tomb true, val ignored) records a deletion.
func (m *memtable) put(key, val []byte, tomb bool) {
	if tomb {
		val = nil
	}
	var update [maxLevel]*skipNode
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if nxt := x.next[0]; nxt != nil && bytes.Equal(nxt.key, key) {
		m.byteSz += len(val) - len(nxt.val)
		nxt.val = append([]byte(nil), val...)
		nxt.tomb = tomb
		return
	}
	lvl := m.randomLevel()
	if lvl > m.level {
		for i := m.level; i < lvl; i++ {
			update[i] = m.head
		}
		m.level = lvl
	}
	node := &skipNode{key: append([]byte(nil), key...), val: append([]byte(nil), val...), tomb: tomb}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	m.n++
	m.byteSz += len(key) + len(val) + 32
}

// get returns the entry for key: ok reports whether the memtable holds any
// version of the key, and tomb whether that version is a deletion marker.
func (m *memtable) get(key []byte) (val []byte, tomb, ok bool) {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	if nxt := x.next[0]; nxt != nil && bytes.Equal(nxt.key, key) {
		return nxt.val, nxt.tomb, true
	}
	return nil, false, false
}

// len returns the number of entries (tombstones included).
func (m *memtable) len() int { return m.n }

// bytes returns the approximate heap footprint, used for flush triggering.
func (m *memtable) bytes() int { return m.byteSz }

// iterator returns a memIter positioned at the first key ≥ start.
func (m *memtable) iterator(start []byte) *memIter {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, start) < 0 {
			x = x.next[i]
		}
	}
	return &memIter{node: x.next[0]}
}

// memIter walks the skiplist in key order, tombstones included.
type memIter struct{ node *skipNode }

func (it *memIter) valid() bool   { return it.node != nil }
func (it *memIter) key() []byte   { return it.node.key }
func (it *memIter) value() []byte { return it.node.val }
func (it *memIter) tomb() bool    { return it.node.tomb }
func (it *memIter) next()         { it.node = it.node.next[0] }
