package lsm

import (
	"bytes"
	"math/rand"
	"sync/atomic"
)

// memtable is an in-memory ordered map from keys to values implemented as a
// skiplist, the standard LSM write buffer. Concurrency contract: exactly one
// writer at a time (the owning DB's write lock serialises put), while any
// number of readers traverse concurrently WITHOUT the lock — snapshot reads
// (snapshot.go) walk the live memtable while PutKV keeps inserting. All
// cross-goroutine state (forward pointers, the per-node entry, the list
// level) is therefore atomic: a reader observes each pointer either before
// or after a store, and both states are valid lists. An entry may be a
// tombstone — a deletion marker that shadows any older on-disk version of
// the key until compaction garbage-collects both.
//
// Once the DB rotates the memtable out (flush), nothing writes it again;
// snapshots that captured it keep reading the now-frozen list.
type memtable struct {
	head  *skipNode
	rng   *rand.Rand
	level atomic.Int32
	// n and byteSz are writer-only (read under the DB's write lock or
	// before the memtable is shared).
	n      int
	byteSz int
}

const maxLevel = 16

// memEntry is a node's current value. Overwrites swap the whole entry
// atomically, so a reader never sees a value from one write paired with a
// tombstone flag from another.
type memEntry struct {
	val  []byte
	tomb bool
}

type skipNode struct {
	key   []byte
	entry atomic.Pointer[memEntry]
	next  [maxLevel]atomic.Pointer[skipNode]
}

func newMemtable(seed int64) *memtable {
	m := &memtable{head: &skipNode{}, rng: rand.New(rand.NewSource(seed))}
	m.level.Store(1)
	return m
}

func (m *memtable) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && m.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// put inserts or overwrites key → val. Both slices are copied. A tombstone
// entry (tomb true, val ignored) records a deletion. Single writer only;
// concurrent readers are safe.
func (m *memtable) put(key, val []byte, tomb bool) {
	if tomb {
		val = nil
	}
	var update [maxLevel]*skipNode
	x := m.head
	level := int(m.level.Load())
	for i := level - 1; i >= 0; i-- {
		for nxt := x.next[i].Load(); nxt != nil && bytes.Compare(nxt.key, key) < 0; nxt = x.next[i].Load() {
			x = nxt
		}
		update[i] = x
	}
	if nxt := x.next[0].Load(); nxt != nil && bytes.Equal(nxt.key, key) {
		old := nxt.entry.Load()
		m.byteSz += len(val) - len(old.val)
		nxt.entry.Store(&memEntry{val: append([]byte(nil), val...), tomb: tomb})
		return
	}
	lvl := m.randomLevel()
	if lvl > level {
		for i := level; i < lvl; i++ {
			update[i] = m.head
		}
		m.level.Store(int32(lvl))
	}
	node := &skipNode{key: append([]byte(nil), key...)}
	node.entry.Store(&memEntry{val: append([]byte(nil), val...), tomb: tomb})
	// Link bottom-up: the node is fully initialised (key, entry, next
	// pointers at level i) before the store that publishes it at level i,
	// so a reader that finds it through any level sees a complete node.
	for i := 0; i < lvl; i++ {
		node.next[i].Store(update[i].next[i].Load())
		update[i].next[i].Store(node)
	}
	m.n++
	m.byteSz += len(key) + len(val) + 32
}

// get returns the entry for key: ok reports whether the memtable holds any
// version of the key, and tomb whether that version is a deletion marker.
// Safe to call concurrently with one writer.
func (m *memtable) get(key []byte) (val []byte, tomb, ok bool) {
	x := m.head
	for i := int(m.level.Load()) - 1; i >= 0; i-- {
		for nxt := x.next[i].Load(); nxt != nil && bytes.Compare(nxt.key, key) < 0; nxt = x.next[i].Load() {
			x = nxt
		}
	}
	if nxt := x.next[0].Load(); nxt != nil && bytes.Equal(nxt.key, key) {
		e := nxt.entry.Load()
		return e.val, e.tomb, true
	}
	return nil, false, false
}

// len returns the number of entries (tombstones included). Writer-only.
func (m *memtable) len() int { return m.n }

// bytes returns the approximate heap footprint, used for flush triggering.
// Writer-only.
func (m *memtable) bytes() int { return m.byteSz }

// iterator returns a memIter positioned at the first key ≥ start. Safe to
// call concurrently with one writer; keys inserted behind the iterator's
// position after this call are not visited, keys ahead may be.
func (m *memtable) iterator(start []byte) *memIter {
	x := m.head
	for i := int(m.level.Load()) - 1; i >= 0; i-- {
		for nxt := x.next[i].Load(); nxt != nil && bytes.Compare(nxt.key, start) < 0; nxt = x.next[i].Load() {
			x = nxt
		}
	}
	it := &memIter{node: x.next[0].Load()}
	it.loadEntry()
	return it
}

// memIter walks the skiplist in key order, tombstones included. The entry
// is captured once per position so value() and tomb() — called separately
// by the merge iterator — always describe the same write.
type memIter struct {
	node *skipNode
	ent  *memEntry
}

func (it *memIter) loadEntry() {
	if it.node != nil {
		it.ent = it.node.entry.Load()
	} else {
		it.ent = nil
	}
}

func (it *memIter) valid() bool   { return it.node != nil }
func (it *memIter) key() []byte   { return it.node.key }
func (it *memIter) value() []byte { return it.ent.val }
func (it *memIter) tomb() bool    { return it.ent.tomb }
func (it *memIter) next() {
	it.node = it.node.next[0].Load()
	it.loadEntry()
}
