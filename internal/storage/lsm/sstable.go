package lsm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/storage"
)

// SSTable layout (all integers little-endian):
//
//	data blocks : blockRecs × (key[8] | value[16]) each (last may be short)
//	index block : numBlocks × (firstKey[8] | u64 offset | u32 count)
//	bloom block : bit array
//	footer      : u64 indexOff | u32 numBlocks | u64 bloomOff | u32 bloomLen
//	              u64 recordCount | magic "K2SS"
//
// Records within and across blocks are sorted ascending by key and unique.
const (
	blockRecs  = 170 // ≈4KB data blocks
	footerSize = 8 + 4 + 8 + 4 + 8 + 4
	sstMagic   = "K2SS"
)

type blockMeta struct {
	firstKey [storage.KeySize]byte
	off      uint64
	count    uint32
}

// sstable is an immutable on-disk run of sorted records.
type sstable struct {
	f      *os.File
	path   string
	index  []blockMeta
	filter *bloom
	count  uint64
	// reads counts physical block reads for I/O accounting.
	reads int64
	// cache holds recently read data blocks (clock eviction). Point-query
	// workloads like HWMT hit the same blocks repeatedly; without a cache
	// every get would pay a 4 KiB pread.
	cache map[int][]byte
	clock []int
	hand  int
}

// blockCacheCap bounds the per-table block cache (≈1 MiB of 4 KiB blocks).
const blockCacheCap = 256

// writeSSTable streams sorted (key, val) pairs from it into a new table
// file at path.
func writeSSTable(path string, it kvIterator) (retErr error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lsm: create sstable: %w", err)
	}
	defer func() {
		if retErr != nil {
			f.Close()
			os.Remove(path)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	var (
		index   []blockMeta
		keys    [][]byte
		inBlock uint32
		off     uint64
		cur     blockMeta
		total   uint64
		prev    []byte
	)
	flushBlock := func() {
		if inBlock == 0 {
			return
		}
		cur.count = inBlock
		index = append(index, cur)
		inBlock = 0
	}
	for ; it.valid(); it.next() {
		k, v := it.key(), it.value()
		if prev != nil && bytes.Compare(k, prev) <= 0 {
			return fmt.Errorf("lsm: sstable writer got out-of-order key")
		}
		prev = append(prev[:0], k...)
		if inBlock == 0 {
			copy(cur.firstKey[:], k)
			cur.off = off
		}
		if _, err := w.Write(k); err != nil {
			return err
		}
		if _, err := w.Write(v); err != nil {
			return err
		}
		off += storage.RecordSize
		inBlock++
		total++
		keys = append(keys, append([]byte(nil), k...))
		if inBlock == blockRecs {
			flushBlock()
		}
	}
	flushBlock()
	indexOff := off
	for _, bm := range index {
		if _, err := w.Write(bm.firstKey[:]); err != nil {
			return err
		}
		var tail [12]byte
		binary.LittleEndian.PutUint64(tail[0:8], bm.off)
		binary.LittleEndian.PutUint32(tail[8:12], bm.count)
		if _, err := w.Write(tail[:]); err != nil {
			return err
		}
		off += storage.KeySize + 12
	}
	filter := newBloom(len(keys))
	for _, k := range keys {
		filter.add(k)
	}
	bloomOff := off
	if _, err := w.Write(filter.bits); err != nil {
		return err
	}
	off += uint64(len(filter.bits))
	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], indexOff)
	binary.LittleEndian.PutUint32(footer[8:12], uint32(len(index)))
	binary.LittleEndian.PutUint64(footer[12:20], bloomOff)
	binary.LittleEndian.PutUint32(footer[20:24], uint32(len(filter.bits)))
	binary.LittleEndian.PutUint64(footer[24:32], total)
	copy(footer[32:36], sstMagic)
	if _, err := w.Write(footer[:]); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// openSSTable maps an existing table: footer, index and bloom are loaded
// eagerly (they are small); data blocks are read on demand.
func openSSTable(path string) (*sstable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: open sstable: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < footerSize {
		f.Close()
		return nil, errors.New("lsm: sstable too small")
	}
	var footer [footerSize]byte
	if _, err := f.ReadAt(footer[:], st.Size()-footerSize); err != nil {
		f.Close()
		return nil, err
	}
	if string(footer[32:36]) != sstMagic {
		f.Close()
		return nil, errors.New("lsm: bad sstable magic")
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:8])
	numBlocks := int(binary.LittleEndian.Uint32(footer[8:12]))
	bloomOff := binary.LittleEndian.Uint64(footer[12:20])
	bloomLen := int(binary.LittleEndian.Uint32(footer[20:24]))
	count := binary.LittleEndian.Uint64(footer[24:32])

	t := &sstable{f: f, path: path, count: count}
	idxBuf := make([]byte, numBlocks*(storage.KeySize+12))
	if _, err := f.ReadAt(idxBuf, int64(indexOff)); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read index: %w", err)
	}
	t.index = make([]blockMeta, numBlocks)
	for i := 0; i < numBlocks; i++ {
		rec := idxBuf[i*(storage.KeySize+12):]
		copy(t.index[i].firstKey[:], rec[:storage.KeySize])
		t.index[i].off = binary.LittleEndian.Uint64(rec[storage.KeySize : storage.KeySize+8])
		t.index[i].count = binary.LittleEndian.Uint32(rec[storage.KeySize+8 : storage.KeySize+12])
	}
	bits := make([]byte, bloomLen)
	if _, err := f.ReadAt(bits, int64(bloomOff)); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read bloom: %w", err)
	}
	t.filter = bloomFromBytes(bits)
	return t, nil
}

func (t *sstable) close() error { return t.f.Close() }

// blockFor returns the index of the block that could contain key, or -1.
func (t *sstable) blockFor(key []byte) int {
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].firstKey[:], key) > 0
	})
	return i - 1
}

// readBlock loads block bi into buf.
func (t *sstable) readBlock(bi int, buf []byte) ([]byte, error) {
	bm := t.index[bi]
	need := int(bm.count) * storage.RecordSize
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	if _, err := t.f.ReadAt(buf, int64(bm.off)); err != nil {
		return nil, fmt.Errorf("lsm: read block %d: %w", bi, err)
	}
	t.reads++
	return buf, nil
}

// cachedBlock returns block bi through the table's block cache, reporting
// whether a physical read happened.
func (t *sstable) cachedBlock(bi int) (block []byte, phys bool, err error) {
	if t.cache == nil {
		t.cache = make(map[int][]byte, blockCacheCap)
	}
	if b, ok := t.cache[bi]; ok {
		return b, false, nil
	}
	b, err := t.readBlock(bi, nil)
	if err != nil {
		return nil, false, err
	}
	if len(t.clock) < blockCacheCap {
		t.clock = append(t.clock, bi)
	} else {
		delete(t.cache, t.clock[t.hand])
		t.clock[t.hand] = bi
		t.hand = (t.hand + 1) % blockCacheCap
	}
	t.cache[bi] = b
	return b, true, nil
}

// get returns the value for key, or nil if absent from this table.
func (t *sstable) get(key []byte, stats *storage.IOStats) ([]byte, error) {
	if !t.filter.mayContain(key) {
		return nil, nil
	}
	bi := t.blockFor(key)
	if bi < 0 {
		return nil, nil
	}
	block, phys, err := t.cachedBlock(bi)
	if err != nil {
		return nil, err
	}
	if stats != nil && phys {
		stats.AddSeeks(1)
		stats.AddBytes(len(block))
	}
	n := int(t.index[bi].count)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(block[mid*storage.RecordSize:mid*storage.RecordSize+storage.KeySize], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n {
		rec := block[lo*storage.RecordSize:]
		if bytes.Equal(rec[:storage.KeySize], key) {
			return append([]byte(nil), rec[storage.KeySize:storage.RecordSize]...), nil
		}
	}
	return nil, nil
}

// iterator returns an sstIter positioned at the first key ≥ start.
func (t *sstable) iterator(start []byte, stats *storage.IOStats) *sstIter {
	it := &sstIter{t: t, stats: stats}
	bi := t.blockFor(start)
	if bi < 0 {
		bi = 0
	}
	it.bi = bi
	if err := it.loadBlock(); err != nil {
		it.err = err
		return it
	}
	// Position within the block.
	n := int(t.index[bi].count)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(it.block[mid*storage.RecordSize:mid*storage.RecordSize+storage.KeySize], start) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.i = lo
	it.skipExhausted()
	return it
}

// sstIter iterates one sstable in key order.
type sstIter struct {
	t     *sstable
	stats *storage.IOStats
	bi    int
	i     int
	block []byte
	err   error
}

func (it *sstIter) loadBlock() error {
	if it.bi >= len(it.t.index) {
		it.block = nil
		return nil
	}
	b, err := it.t.readBlock(it.bi, it.block)
	if err != nil {
		return err
	}
	if it.stats != nil {
		it.stats.AddSeeks(1)
		it.stats.AddBytes(len(b))
	}
	it.block = b
	return nil
}

func (it *sstIter) skipExhausted() {
	for it.err == nil && it.block != nil && it.i >= int(it.t.index[it.bi].count) {
		it.bi++
		it.i = 0
		if it.bi >= len(it.t.index) {
			it.block = nil
			return
		}
		if err := it.loadBlock(); err != nil {
			it.err = err
			return
		}
	}
}

func (it *sstIter) valid() bool { return it.err == nil && it.block != nil }
func (it *sstIter) key() []byte {
	off := it.i * storage.RecordSize
	return it.block[off : off+storage.KeySize]
}
func (it *sstIter) value() []byte {
	off := it.i*storage.RecordSize + storage.KeySize
	return it.block[off : off+storage.ValueSize]
}
func (it *sstIter) next() {
	it.i++
	it.skipExhausted()
}

// kvIterator is the common iterator shape shared by memtable, sstable and
// merge iterators.
type kvIterator interface {
	valid() bool
	key() []byte
	value() []byte
	next()
}

// check interface conformance at compile time.
var (
	_ kvIterator = (*memIter)(nil)
	_ kvIterator = (*sstIter)(nil)
	_ io.Closer  = (*os.File)(nil)
)
