package lsm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"

	"repro/internal/storage"
)

// SSTable layout (all integers little-endian):
//
//	data blocks : blockRecs × (key[8] | value[16] | meta[1]) each (last may
//	              be short); meta bit 0 marks a tombstone (value zeroed)
//	index block : numBlocks × (firstKey[8] | u64 offset | u32 count)
//	bloom block : bit array (tombstone keys included — a tombstone must be
//	              FOUND so it can shadow older runs)
//	footer      : u64 indexOff | u32 numBlocks | u64 bloomOff | u32 bloomLen
//	              u64 recordCount | u64 tombCount | magic "K2S2"
//
// Records within and across blocks are sorted ascending by key and unique.
// Tables written by earlier versions (magic "K2SS", 24-byte records without
// the meta byte, 36-byte footer without tombCount) are still readable; they
// cannot contain tombstones.
const (
	blockRecs    = 170 // ≈4KB data blocks
	footerSize   = 8 + 4 + 8 + 4 + 8 + 8 + 4
	sstMagic     = "K2S2"
	footerSizeV1 = 8 + 4 + 8 + 4 + 8 + 4
	sstMagicV1   = "K2SS"

	recSizeV2 = storage.RecordSize + 1
	tombFlag  = 1 // meta bit 0
)

type blockMeta struct {
	firstKey [storage.KeySize]byte
	off      uint64
	count    uint32
}

// sstable is an immutable on-disk run of sorted records. Its lifetime is
// refcounted: the DB's table list holds one reference, and every snapshot
// acquired while the table is listed holds another (snapshot.go). When the
// list owner retires the table (compaction swapped it out, or Close), the
// file is closed — and unlinked, if requested — only after the LAST
// reference drains, so a reader mid-scan never has its file yanked away. A
// crash between retire and the deferred unlink leaves an orphan file; the
// manifest does not reference it, and sweepOrphans removes it at next Open.
type sstable struct {
	f      *os.File
	path   string
	index  []blockMeta
	filter *bloom
	count  uint64 // all records, tombstones included
	tombs  uint64 // tombstone records
	// recSize is the on-disk record width: 25 for current tables (meta
	// byte), 24 for legacy tables without tombstone support.
	recSize int
	// id is unique across every table opened by this process; it keys the
	// shared block cache so a retired table's blocks can never alias a
	// successor's.
	id uint64
	// refs counts owners: 1 for the DB's table list plus 1 per live
	// snapshot. The holder that drops it to 0 closes (and maybe unlinks)
	// the file.
	refs atomic.Int32
	// removeOnRelease asks the final unref to also unlink the file. Written
	// by the list owner before it drops the list reference; the atomic
	// decrement in unref orders that write before the final holder reads it.
	removeOnRelease bool
	// reads counts physical block reads for I/O accounting. Atomic: the
	// background compactor reads input tables without holding any DB lock
	// while snapshot readers touch the same tables.
	reads atomic.Int64
}

// nextTableID issues process-unique sstable ids for block-cache keying.
var nextTableID atomic.Uint64

// writeSSTable streams sorted (key, val, tomb) records from it into a new
// table file at path, always in the current (tombstone-capable) format.
// When dropTombs is set, tombstone records are filtered out instead of
// written — only valid when the merge window includes the oldest run, i.e.
// there is no older version left for the tombstone to shadow.
func writeSSTable(path string, it kvIterator, dropTombs bool) (retErr error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lsm: create sstable: %w", err)
	}
	defer func() {
		if retErr != nil {
			f.Close()
			os.Remove(path)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	var (
		idx      []blockMeta
		keys     [][]byte
		inBlock  uint32
		off      uint64
		cur      blockMeta
		total    uint64
		tombs    uint64
		prev     []byte
		zeroVal  [storage.ValueSize]byte
		metaByte [1]byte
	)
	flushBlock := func() {
		if inBlock == 0 {
			return
		}
		cur.count = inBlock
		idx = append(idx, cur)
		inBlock = 0
	}
	for ; it.valid(); it.next() {
		k := it.key()
		if prev != nil && bytes.Compare(k, prev) <= 0 {
			return fmt.Errorf("lsm: sstable writer got out-of-order key")
		}
		prev = append(prev[:0], k...)
		tomb := it.tomb()
		if tomb && dropTombs {
			continue
		}
		if inBlock == 0 {
			copy(cur.firstKey[:], k)
			cur.off = off
		}
		if _, err := w.Write(k); err != nil {
			return err
		}
		v := it.value()
		metaByte[0] = 0
		if tomb {
			v = zeroVal[:]
			metaByte[0] = tombFlag
			tombs++
		}
		if _, err := w.Write(v); err != nil {
			return err
		}
		if _, err := w.Write(metaByte[:]); err != nil {
			return err
		}
		off += recSizeV2
		inBlock++
		total++
		keys = append(keys, append([]byte(nil), k...))
		if inBlock == blockRecs {
			flushBlock()
		}
	}
	flushBlock()
	indexOff := off
	for _, bm := range idx {
		if _, err := w.Write(bm.firstKey[:]); err != nil {
			return err
		}
		var tail [12]byte
		binary.LittleEndian.PutUint64(tail[0:8], bm.off)
		binary.LittleEndian.PutUint32(tail[8:12], bm.count)
		if _, err := w.Write(tail[:]); err != nil {
			return err
		}
		off += storage.KeySize + 12
	}
	filter := newBloom(len(keys))
	for _, k := range keys {
		filter.add(k)
	}
	bloomOff := off
	if _, err := w.Write(filter.bits); err != nil {
		return err
	}
	off += uint64(len(filter.bits))
	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], indexOff)
	binary.LittleEndian.PutUint32(footer[8:12], uint32(len(idx)))
	binary.LittleEndian.PutUint64(footer[12:20], bloomOff)
	binary.LittleEndian.PutUint32(footer[20:24], uint32(len(filter.bits)))
	binary.LittleEndian.PutUint64(footer[24:32], total)
	binary.LittleEndian.PutUint64(footer[32:40], tombs)
	copy(footer[40:44], sstMagic)
	if _, err := w.Write(footer[:]); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// openSSTable maps an existing table: footer, index and bloom are loaded
// eagerly (they are small); data blocks are read on demand. Both the
// current "K2S2" and the legacy "K2SS" formats are accepted.
func openSSTable(path string) (*sstable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: open sstable: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < footerSizeV1 {
		f.Close()
		return nil, errors.New("lsm: sstable too small")
	}
	t := &sstable{f: f, path: path, recSize: recSizeV2, id: nextTableID.Add(1)}
	t.refs.Store(1)
	var footer [footerSize]byte
	var indexOff, bloomOff uint64
	var numBlocks, bloomLen int
	switch {
	case st.Size() >= footerSize && readMagic(f, st.Size()-4) == sstMagic:
		if _, err := f.ReadAt(footer[:], st.Size()-footerSize); err != nil {
			f.Close()
			return nil, err
		}
		indexOff = binary.LittleEndian.Uint64(footer[0:8])
		numBlocks = int(binary.LittleEndian.Uint32(footer[8:12]))
		bloomOff = binary.LittleEndian.Uint64(footer[12:20])
		bloomLen = int(binary.LittleEndian.Uint32(footer[20:24]))
		t.count = binary.LittleEndian.Uint64(footer[24:32])
		t.tombs = binary.LittleEndian.Uint64(footer[32:40])
	case readMagic(f, st.Size()-4) == sstMagicV1:
		if _, err := f.ReadAt(footer[:footerSizeV1], st.Size()-footerSizeV1); err != nil {
			f.Close()
			return nil, err
		}
		indexOff = binary.LittleEndian.Uint64(footer[0:8])
		numBlocks = int(binary.LittleEndian.Uint32(footer[8:12]))
		bloomOff = binary.LittleEndian.Uint64(footer[12:20])
		bloomLen = int(binary.LittleEndian.Uint32(footer[20:24]))
		t.count = binary.LittleEndian.Uint64(footer[24:32])
		t.recSize = storage.RecordSize
	default:
		f.Close()
		return nil, errors.New("lsm: bad sstable magic")
	}

	idxBuf := make([]byte, numBlocks*(storage.KeySize+12))
	if _, err := f.ReadAt(idxBuf, int64(indexOff)); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read index: %w", err)
	}
	t.index = make([]blockMeta, numBlocks)
	for i := 0; i < numBlocks; i++ {
		rec := idxBuf[i*(storage.KeySize+12):]
		copy(t.index[i].firstKey[:], rec[:storage.KeySize])
		t.index[i].off = binary.LittleEndian.Uint64(rec[storage.KeySize : storage.KeySize+8])
		t.index[i].count = binary.LittleEndian.Uint32(rec[storage.KeySize+8 : storage.KeySize+12])
	}
	bits := make([]byte, bloomLen)
	if _, err := f.ReadAt(bits, int64(bloomOff)); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read bloom: %w", err)
	}
	t.filter = bloomFromBytes(bits)
	return t, nil
}

// readMagic returns the 4 bytes at off, or "" on error.
func readMagic(f *os.File, off int64) string {
	var m [4]byte
	if _, err := f.ReadAt(m[:], off); err != nil {
		return ""
	}
	return string(m[:])
}

func (t *sstable) close() error { return t.f.Close() }

// ref takes an additional reference. Only a holder that already owns one
// (the DB's table list, under its lock) may hand out new references, so
// refs can never revive from zero.
func (t *sstable) ref() { t.refs.Add(1) }

// unref drops one reference; the holder that reaches zero closes the file
// and, when the table was retired with remove, unlinks it.
func (t *sstable) unref() {
	if t.refs.Add(-1) != 0 {
		return
	}
	t.f.Close()
	if t.removeOnRelease {
		os.Remove(t.path)
	}
}

// retire drops the table-list reference, the one reference holders can
// clone. Caller must be the list owner (DB write lock held when delisting).
// With remove set the file is unlinked once the last snapshot drains —
// compaction inputs and retention victims; without it the file merely
// closes and stays on disk for the next Open — DB shutdown.
func (t *sstable) retire(remove bool) {
	t.removeOnRelease = remove
	t.unref()
}

// hasMeta reports whether records carry the trailing meta byte.
func (t *sstable) hasMeta() bool { return t.recSize == recSizeV2 }

// blockFor returns the index of the block that could contain key, or -1.
func (t *sstable) blockFor(key []byte) int {
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].firstKey[:], key) > 0
	})
	return i - 1
}

// readBlock loads block bi into buf.
func (t *sstable) readBlock(bi int, buf []byte) ([]byte, error) {
	bm := t.index[bi]
	need := int(bm.count) * t.recSize
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	if _, err := t.f.ReadAt(buf, int64(bm.off)); err != nil {
		return nil, fmt.Errorf("lsm: read block %d: %w", bi, err)
	}
	t.reads.Add(1)
	return buf, nil
}

// cachedBlock returns block bi through the shared block cache (when env
// carries one), reporting whether a physical read happened. Cached blocks
// are shared between goroutines and must be treated as read-only.
func (t *sstable) cachedBlock(bi int, env *readEnv) (block []byte, phys bool, err error) {
	if env == nil || env.cache == nil {
		b, err := t.readBlock(bi, nil)
		return b, err == nil, err
	}
	k := cacheKey{table: t.id, block: bi}
	if b, ok := env.cache.get(k); ok {
		return b, false, nil
	}
	b, err := t.readBlock(bi, nil)
	if err != nil {
		return nil, false, err
	}
	env.cache.put(k, b)
	return b, true, nil
}

// get returns the entry for key in this table: val is nil when the key is
// absent, and tomb is set when the newest version here is a tombstone (the
// caller must stop searching older runs). Safe for concurrent use: all I/O
// is pread, the cache shards its own locking, and counters are atomic.
func (t *sstable) get(key []byte, env *readEnv) (val []byte, tomb bool, err error) {
	if !t.filter.mayContain(key) {
		if env != nil && env.rs != nil {
			env.rs.bloomHits.Add(1)
		}
		return nil, false, nil
	}
	if env != nil && env.rs != nil {
		env.rs.bloomMisses.Add(1)
	}
	bi := t.blockFor(key)
	if bi < 0 {
		return nil, false, nil
	}
	block, phys, err := t.cachedBlock(bi, env)
	if err != nil {
		return nil, false, err
	}
	if env != nil && env.io != nil && phys {
		env.io.AddSeeks(1)
		env.io.AddBytes(len(block))
	}
	rs := t.recSize
	n := int(t.index[bi].count)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(block[mid*rs:mid*rs+storage.KeySize], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n {
		rec := block[lo*rs:]
		if bytes.Equal(rec[:storage.KeySize], key) {
			if t.hasMeta() && rec[storage.RecordSize]&tombFlag != 0 {
				return nil, true, nil
			}
			return append([]byte(nil), rec[storage.KeySize:storage.RecordSize]...), false, nil
		}
	}
	return nil, false, nil
}

// iterator returns an sstIter positioned at the first key ≥ start. With an
// env carrying a cache, block loads go through the shared block cache —
// query pages re-walk the same index ranges constantly, so their blocks
// stay hot; pass a cache-less env (or nil) for one-shot sequential reads
// like compaction merges, which keep the private-buffer fast path.
func (t *sstable) iterator(start []byte, env *readEnv) *sstIter {
	it := &sstIter{t: t, env: env}
	bi := t.blockFor(start)
	if bi < 0 {
		bi = 0
	}
	it.bi = bi
	if err := it.loadBlock(); err != nil {
		it.err = err
		return it
	}
	// Position within the block.
	rs := t.recSize
	n := int(t.index[bi].count)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(it.block[mid*rs:mid*rs+storage.KeySize], start) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.i = lo
	it.skipExhausted()
	return it
}

// sstIter iterates one sstable in key order, tombstones included. When its
// env carries a cache the current block may be shared with other readers —
// the iterator only ever reads it. Without a cache it owns a private buffer
// reused across blocks.
type sstIter struct {
	t     *sstable
	env   *readEnv
	bi    int
	i     int
	block []byte
	buf   []byte // private reuse buffer for the uncached path
	err   error
}

func (it *sstIter) loadBlock() error {
	if it.bi >= len(it.t.index) {
		it.block = nil
		return nil
	}
	if it.env == nil || it.env.cache == nil {
		b, err := it.t.readBlock(it.bi, it.buf)
		if err != nil {
			return err
		}
		it.buf = b
		it.block = b
		if it.env != nil && it.env.io != nil {
			it.env.io.AddSeeks(1)
			it.env.io.AddBytes(len(b))
		}
		return nil
	}
	b, phys, err := it.t.cachedBlock(it.bi, it.env)
	if err != nil {
		return err
	}
	if phys && it.env.io != nil {
		it.env.io.AddSeeks(1)
		it.env.io.AddBytes(len(b))
	}
	it.block = b
	return nil
}

func (it *sstIter) skipExhausted() {
	for it.err == nil && it.block != nil && it.i >= int(it.t.index[it.bi].count) {
		it.bi++
		it.i = 0
		if it.bi >= len(it.t.index) {
			it.block = nil
			return
		}
		if err := it.loadBlock(); err != nil {
			it.err = err
			return
		}
	}
}

func (it *sstIter) valid() bool { return it.err == nil && it.block != nil }
func (it *sstIter) key() []byte {
	off := it.i * it.t.recSize
	return it.block[off : off+storage.KeySize]
}
func (it *sstIter) value() []byte {
	off := it.i*it.t.recSize + storage.KeySize
	return it.block[off : off+storage.ValueSize]
}
func (it *sstIter) tomb() bool {
	if !it.t.hasMeta() {
		return false
	}
	return it.block[it.i*it.t.recSize+storage.RecordSize]&tombFlag != 0
}
func (it *sstIter) next() {
	it.i++
	it.skipExhausted()
}

// srcErr exposes the iterator's sticky error to mergeIter.
func (it *sstIter) srcErr() error { return it.err }

// kvIterator is the common iterator shape shared by memtable, sstable and
// merge iterators. tomb reports whether the current record is a deletion
// marker.
type kvIterator interface {
	valid() bool
	key() []byte
	value() []byte
	tomb() bool
	next()
}

// faultIterator is implemented by sources whose scans can fail mid-stream;
// mergeIter.err surfaces the first such error.
type faultIterator interface {
	srcErr() error
}

// check interface conformance at compile time.
var (
	_ kvIterator    = (*memIter)(nil)
	_ kvIterator    = (*sstIter)(nil)
	_ faultIterator = (*sstIter)(nil)
	_ io.Closer     = (*os.File)(nil)
)
