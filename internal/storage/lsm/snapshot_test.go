package lsm

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

// A snapshot taken before a compaction must keep reading the tables the
// compaction retired: the files stay open (and on disk) until the snapshot
// releases, and only then are they unlinked.
func TestSnapshotPinsTablesAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{MaxTables: 100}) // no background merges yet
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Four runs, 100 keys each, values identify the run that wrote them.
	for run := 0; run < 4; run++ {
		for oid := int32(0); oid < 100; oid++ {
			if err := db.Put(model.Point{T: int32(run), OID: oid, X: float64(run)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := db.AcquireSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumTables() != 4 {
		t.Fatalf("snapshot pins %d tables, want 4", snap.NumTables())
	}
	pinned := make([]string, 0, 4)
	for _, tab := range snap.tables {
		pinned = append(pinned, tab.path)
	}

	// Compact everything into one run while the snapshot is live.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := db.NumTables(); n != 1 {
		t.Fatalf("post-compaction table count = %d, want 1", n)
	}
	// The retired input files must still exist — the snapshot references
	// them — and must still be readable through the snapshot.
	for _, p := range pinned {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("input table %s unlinked while snapshot still references it: %v", p, err)
		}
	}
	for oid := int32(0); oid < 100; oid++ {
		v, err := snap.GetKV(storage.EncodeKey(3, oid))
		if err != nil {
			t.Fatal(err)
		}
		if v == nil {
			t.Fatalf("snapshot lost key (3,%d) after compaction", oid)
		}
		if x, _ := storage.DecodeValue(v); x != 3 {
			t.Fatalf("snapshot read %f for (3,%d), want 3", x, oid)
		}
	}

	// Release drains the last reference: the inputs are unlinked.
	snap.Release()
	for _, p := range pinned {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("input table %s still on disk after last reference released (err=%v)", p, err)
		}
	}
	if got := db.ReadStats().LiveSnapshots; got != 0 {
		t.Fatalf("LiveSnapshots = %d after release, want 0", got)
	}
}

// Release is idempotent and the live-snapshot gauge drains to zero.
func TestSnapshotReleaseIdempotent(t *testing.T) {
	db, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put(model.Point{T: 1, OID: 1, X: 1}); err != nil {
		t.Fatal(err)
	}
	s1, _ := db.AcquireSnapshot()
	s2, _ := db.AcquireSnapshot()
	if got := db.ReadStats().LiveSnapshots; got != 2 {
		t.Fatalf("LiveSnapshots = %d, want 2", got)
	}
	s1.Release()
	s1.Release() // double release must not underflow the refcounts
	s2.Release()
	var nilSnap *Snapshot
	nilSnap.Release() // nil-safe
	if got := db.ReadStats().LiveSnapshots; got != 0 {
		t.Fatalf("LiveSnapshots = %d after releases, want 0", got)
	}
	if v, err := db.Get(1, 1); err != nil || v == nil {
		t.Fatalf("db unreadable after snapshot churn: v=%v err=%v", v, err)
	}
}

// Concurrent snapshot readers vs a writer that keeps flushing and a
// compactor that keeps retiring tables: every read must see a complete,
// consistent value and the run must be race-clean (the -race CI job is the
// real assertion). This is the reader-vs-compaction interleaving soak.
func TestConcurrentReadersDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny memtable + low MaxTables: constant flush + compaction churn.
	db, err := Open(dir, &Options{MemtableBytes: 8 << 10, MaxTables: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const (
		readers = 8
		keys    = 512
		rounds  = 40
	)
	// Seed every key so readers always find something.
	for oid := int32(0); oid < keys; oid++ {
		if err := db.Put(model.Point{T: 0, OID: oid, X: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var (
		stop     atomic.Bool
		readErrs atomic.Int64
		wg       sync.WaitGroup
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int32) {
			defer wg.Done()
			for i := int32(0); !stop.Load(); i++ {
				oid := (seed*7919 + i) % keys
				v, err := db.Get(0, oid)
				if err != nil || v == nil {
					readErrs.Add(1)
					return
				}
				if x, _ := storage.DecodeValue(v); x < 1 {
					readErrs.Add(1)
					return
				}
				// Periodic scans exercise the merged iterator path too.
				if i%64 == 0 {
					n := 0
					if err := db.Scan(storage.EncodeKey(0, -1<<31), func(k, _ []byte) bool {
						n++
						return n < 100
					}); err != nil {
						readErrs.Add(1)
						return
					}
				}
			}
		}(int32(r))
	}
	// Writer: keep overwriting keys with increasing values, forcing
	// flushes and compactions under the readers.
	for round := 1; round <= rounds; round++ {
		for oid := int32(0); oid < keys; oid++ {
			if err := db.Put(model.Point{T: 0, OID: oid, X: float64(round + 1)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.waitCompactions()
	stop.Store(true)
	wg.Wait()
	if n := readErrs.Load(); n != 0 {
		t.Fatalf("%d reader errors during compaction churn", n)
	}
	if got := db.ReadStats().LiveSnapshots; got != 0 {
		t.Fatalf("LiveSnapshots = %d after soak, want 0", got)
	}
}

// The tentpole property, provable without multi-core wall-clock: a scan
// parked mid-callback holds NO database lock, so writes, flushes (which
// take the write lock) and other reads all complete while it is parked.
// Under the old design — db.mu held for the whole scan — this test
// deadlocks at db.Put.
func TestScanDoesNotBlockWrites(t *testing.T) {
	db, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for oid := int32(0); oid < 100; oid++ {
		if err := db.Put(model.Point{T: 1, OID: oid, X: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	started := make(chan struct{})
	release := make(chan struct{})
	scanDone := make(chan error, 1)
	go func() {
		scanDone <- db.Scan(storage.EncodeKey(1, -1<<31), func(k, v []byte) bool {
			once.Do(func() { close(started) })
			<-release // park the scan mid-page
			return false
		})
	}()
	<-started
	// All of these would block forever if the scan held db.mu.
	if err := db.Put(model.Point{T: 2, OID: 0, X: 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get(2, 0); err != nil || v == nil {
		t.Fatalf("concurrent read failed: v=%v err=%v", v, err)
	}
	close(release)
	if err := <-scanDone; err != nil {
		t.Fatal(err)
	}
}

// The read-path counters must move: bloom filters short-circuit absent
// keys, and repeated reads hit the shared block cache.
func TestReadStatsCounters(t *testing.T) {
	db, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for oid := int32(0); oid < 1000; oid++ {
		if err := db.Put(model.Point{T: 1, OID: oid * 2, X: float64(oid)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Present keys, twice: the second pass must be all cache hits.
	for pass := 0; pass < 2; pass++ {
		for oid := int32(0); oid < 1000; oid++ {
			if _, err := db.Get(1, oid*2); err != nil {
				t.Fatal(err)
			}
		}
	}
	rs := db.ReadStats()
	if rs.BloomMisses == 0 {
		t.Fatal("BloomMisses = 0 after reading present keys")
	}
	if rs.BlockCacheHits == 0 {
		t.Fatal("BlockCacheHits = 0 after re-reading the same blocks")
	}
	// Absent keys (odd oids): overwhelmingly bloom-filtered.
	before := rs.BloomHits
	for oid := int32(0); oid < 1000; oid++ {
		if v, err := db.Get(1, oid*2+1); err != nil || v != nil {
			t.Fatalf("absent key returned v=%v err=%v", v, err)
		}
	}
	if db.ReadStats().BloomHits == before {
		t.Fatal("BloomHits did not move while probing absent keys")
	}
}

// BenchmarkGetKVParallel measures point-read throughput as the goroutine
// count sweeps 1→8 on one shared DB. The acceptance bar for the snapshot
// read path is ≥4× aggregate scaling from 1 to 8 goroutines (the old
// whole-read mutex was flat).
func BenchmarkGetKVParallel(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const keys = 1 << 16
	for i := 0; i < keys; i++ {
		if err := db.Put(model.Point{T: int32(i >> 8), OID: int32(i & 0xff), X: float64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		b.Fatal(err)
	}
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			var wg sync.WaitGroup
			per := b.N / g
			if per == 0 {
				per = 1
			}
			b.ResetTimer()
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					x := uint32(seed*2654435761 + 1)
					for i := 0; i < per; i++ {
						x = x*1664525 + 1013904223
						k := x % keys
						v, err := db.Get(int32(k>>8), int32(k&0xff))
						if err != nil || v == nil {
							b.Error("miss on present key")
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkScanUnderWrites measures merged range-scan throughput while a
// background writer keeps appending (the archive's query-during-ingest
// shape), sweeping the scanner count.
func BenchmarkScanUnderWrites(b *testing.B) {
	for _, g := range []int{1, 4} {
		b.Run(fmt.Sprintf("scanners=%d", g), func(b *testing.B) {
			db, err := Open(b.TempDir(), nil)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			const keys = 1 << 15
			for i := 0; i < keys; i++ {
				if err := db.Put(model.Point{T: int32(i >> 7), OID: int32(i & 0x7f), X: float64(i)}); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			var writerDone sync.WaitGroup
			writerDone.Add(1)
			go func() {
				defer writerDone.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					_ = db.Put(model.Point{T: int32(i % 512), OID: int32(i & 0x7f), X: float64(i)})
				}
			}()
			var wg sync.WaitGroup
			per := b.N / g
			if per == 0 {
				per = 1
			}
			b.ResetTimer()
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						t := int32((seed*31 + i) % 512)
						n := 0
						if err := db.Scan(storage.EncodeKey(t, -1<<31), func(k, v []byte) bool {
							n++
							return n < 128 // one bounded page
						}); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			close(stop)
			writerDone.Wait()
		})
	}
}
