// Package lsm implements the paper's k2-LSMT storage variant: a
// log-structured merge-tree (O'Neil et al.) keyed by the composite
// (timestamp, oid) with the point coordinates as value (§5.2).
//
// Writes go to a WAL and a skiplist memtable; when the memtable exceeds its
// budget it is flushed to an immutable SSTable (sorted blocks + block index
// + bloom filter). A size-tiered compactor folds tables together when too
// many runs accumulate. Benchmark-point reads are range scans (all keys of
// one timestamp are co-located, one positioning per run); HWMT reads are
// bloom-guarded point gets.
//
// The engine serves two consumers. As a storage.Store (Put/Snapshot/Fetch)
// it holds trajectory points for the miners, exactly the paper's role. As a
// raw ordered key/value store (PutKV/Scan) it backs the secondary indexes
// of the historical convoy archive (internal/storage/archive): any
// fixed-width 8-byte key whose lexicographic order matches the caller's
// logical order — the archive packs (time, seq), (oid, seq) and
// (size, seq) pairs through storage.EncodeKey — maps to a 16-byte value,
// and Scan provides the merged, budget-boundable range reads the query
// endpoints page through.
package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/storage"
)

// Options tunes the engine.
type Options struct {
	// MemtableBytes is the flush threshold (default 4 MiB).
	MemtableBytes int
	// MaxTables is the run count that triggers a full compaction
	// (default 6).
	MaxTables int
	// SyncWAL forces an fsync per batch when true.
	SyncWAL bool
}

func (o *Options) withDefaults() Options {
	out := Options{MemtableBytes: 4 << 20, MaxTables: 6}
	if o != nil {
		if o.MemtableBytes > 0 {
			out.MemtableBytes = o.MemtableBytes
		}
		if o.MaxTables > 1 {
			out.MaxTables = o.MaxTables
		}
		out.SyncWAL = o.SyncWAL
	}
	return out
}

// DB is the LSM-tree database. It implements storage.Store.
type DB struct {
	mu     sync.Mutex
	dir    string
	opts   Options
	wal    *wal
	mem    *memtable
	tables []*sstable // oldest first; later tables shadow earlier ones
	seq    int
	ts, te int32
	count  uint64
	stats  storage.IOStats
	closed bool
}

const manifestName = "MANIFEST"

// Open opens (or creates) an LSM database in dir.
func Open(dir string, opts *Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: mkdir: %w", err)
	}
	db := &DB{dir: dir, opts: opts.withDefaults(), mem: newMemtable(1), ts: 0, te: -1}
	if err := db.loadManifest(); err != nil {
		return nil, err
	}
	// Replay the WAL into the fresh memtable, then start a new log.
	walPath := filepath.Join(dir, "wal.log")
	if err := replayWAL(walPath, func(k, v []byte) {
		db.mem.put(k, v)
		db.noteKey(k)
		db.count++
	}); err != nil {
		return nil, err
	}
	w, err := createWAL(walPath)
	if err != nil {
		return nil, err
	}
	db.wal = w
	// Recompute bounds/counts from persistent tables.
	for _, t := range db.tables {
		db.count += t.count
		if len(t.index) > 0 {
			ft, _ := storage.DecodeKey(t.index[0].firstKey[:])
			db.noteT(ft)
			// Last key requires reading the last block; cheap and done once.
			lb, err := t.readBlock(len(t.index)-1, nil)
			if err != nil {
				return nil, err
			}
			lastRec := lb[(int(t.index[len(t.index)-1].count)-1)*storage.RecordSize:]
			lt, _ := storage.DecodeKey(lastRec[:storage.KeySize])
			db.noteT(lt)
		}
	}
	return db, nil
}

func (db *DB) noteKey(k []byte) {
	t, _ := storage.DecodeKey(k)
	db.noteT(t)
}

func (db *DB) noteT(t int32) {
	if db.te < db.ts { // empty
		db.ts, db.te = t, t
		return
	}
	if t < db.ts {
		db.ts = t
	}
	if t > db.te {
		db.te = t
	}
}

func (db *DB) loadManifest() error {
	data, err := os.ReadFile(filepath.Join(db.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lsm: read manifest: %w", err)
	}
	for _, name := range strings.Fields(string(data)) {
		t, err := openSSTable(filepath.Join(db.dir, name))
		if err != nil {
			return err
		}
		db.tables = append(db.tables, t)
		var n int
		fmt.Sscanf(name, "sst-%d.sst", &n)
		if n >= db.seq {
			db.seq = n + 1
		}
	}
	return nil
}

// writeManifest atomically records the current table list.
func (db *DB) writeManifest() error {
	var b strings.Builder
	for _, t := range db.tables {
		fmt.Fprintln(&b, filepath.Base(t.path))
	}
	tmp := filepath.Join(db.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(db.dir, manifestName))
}

// Put inserts one point.
func (db *DB) Put(p model.Point) error {
	return db.PutKV(storage.EncodeKey(p.T, p.OID), storage.EncodeValue(p.X, p.Y))
}

// PutKV inserts one raw record: an 8-byte order-preserving key mapping to a
// 16-byte value. It is the write path of the archive's secondary indexes,
// which store record locators rather than coordinates; Put is a thin
// wrapper over it. Writing the same key again overwrites the value.
func (db *DB) PutKV(key [storage.KeySize]byte, val [storage.ValueSize]byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("lsm: db closed")
	}
	if err := db.wal.append(key[:], val[:]); err != nil {
		return err
	}
	if db.opts.SyncWAL {
		if err := db.wal.sync(); err != nil {
			return err
		}
	}
	db.mem.put(key[:], val[:])
	db.noteKey(key[:])
	db.count++
	if db.mem.bytes() >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// PutBatch inserts points with one WAL flush at the end.
func (db *DB) PutBatch(pts []model.Point) error {
	for _, p := range pts {
		if err := db.Put(p); err != nil {
			return err
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.wal.sync()
}

// Flush forces the memtable to disk.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if db.mem.len() == 0 {
		return nil
	}
	name := fmt.Sprintf("sst-%06d.sst", db.seq)
	db.seq++
	path := filepath.Join(db.dir, name)
	if err := writeSSTable(path, db.mem.iterator(nil)); err != nil {
		return err
	}
	t, err := openSSTable(path)
	if err != nil {
		return err
	}
	db.tables = append(db.tables, t)
	if err := db.writeManifest(); err != nil {
		return err
	}
	// Reset WAL + memtable: flushed data is durable in the sstable.
	if err := db.wal.close(); err != nil {
		return err
	}
	w, err := createWAL(filepath.Join(db.dir, "wal.log"))
	if err != nil {
		return err
	}
	db.wal = w
	db.mem = newMemtable(int64(db.seq))
	if len(db.tables) > db.opts.MaxTables {
		return db.compactLocked()
	}
	return nil
}

// Compact merges all runs into one.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.compactLocked()
}

func (db *DB) compactLocked() error {
	if len(db.tables) <= 1 {
		return nil
	}
	its := make([]kvIterator, len(db.tables))
	for i, t := range db.tables {
		// Older tables first; mergeIter resolves duplicates toward the
		// higher (newer) source index.
		its[i] = t.iterator(nil, nil)
	}
	merged := newMergeIter(its)
	name := fmt.Sprintf("sst-%06d.sst", db.seq)
	db.seq++
	path := filepath.Join(db.dir, name)
	if err := writeSSTable(path, merged); err != nil {
		return err
	}
	nt, err := openSSTable(path)
	if err != nil {
		return err
	}
	old := db.tables
	db.tables = []*sstable{nt}
	if err := db.writeManifest(); err != nil {
		return err
	}
	for _, t := range old {
		t.close()
		os.Remove(t.path)
	}
	return nil
}

// Get returns the value bytes for (t, oid) or nil if absent.
func (db *DB) Get(t, oid int32) ([]byte, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := storage.EncodeKey(t, oid)
	if v := db.mem.get(key[:]); v != nil {
		return v, nil
	}
	for i := len(db.tables) - 1; i >= 0; i-- {
		v, err := db.tables[i].get(key[:], &db.stats)
		if err != nil {
			return nil, err
		}
		if v != nil {
			return v, nil
		}
	}
	return nil, nil
}

// TimeRange implements storage.Store.
func (db *DB) TimeRange() (int32, int32) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ts, db.te
}

// Count returns the number of inserted points (before dedup by key).
func (db *DB) Count() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.count
}

// Stats implements storage.Store.
func (db *DB) Stats() *storage.IOStats { return &db.stats }

// Snapshot implements storage.Store: one merged range scan across runs over
// the key prefix of timestamp t.
func (db *DB) Snapshot(t int32) ([]model.ObjPos, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.te < db.ts || t < db.ts || t > db.te {
		return nil, nil
	}
	start := storage.EncodeKey(t, -1<<31)
	its := make([]kvIterator, 0, len(db.tables)+1)
	for _, tab := range db.tables {
		its = append(its, tab.iterator(start[:], &db.stats))
	}
	its = append(its, db.mem.iterator(start[:]))
	merged := newMergeIter(its)
	var out []model.ObjPos
	for ; merged.valid(); merged.next() {
		kt, oid := storage.DecodeKey(merged.key())
		if kt != t {
			break
		}
		x, y := storage.DecodeValue(merged.value())
		out = append(out, model.ObjPos{OID: oid, X: x, Y: y})
		db.stats.AddScanned(1)
	}
	if err := merged.err(); err != nil {
		return nil, err
	}
	db.stats.AddScan(len(out))
	return out, nil
}

// Scan calls fn for every record with key ≥ start, in ascending key order,
// merged across the memtable and every on-disk run (newest version of a key
// wins), until fn returns false or the keyspace is exhausted. The key and
// value slices passed to fn are only valid during the call. The database
// mutex is held for the whole scan — callers bound the walk (the archive's
// query budget) and fn must not call back into the DB.
func (db *DB) Scan(start [storage.KeySize]byte, fn func(key, val []byte) bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	its := make([]kvIterator, 0, len(db.tables)+1)
	for _, tab := range db.tables {
		its = append(its, tab.iterator(start[:], &db.stats))
	}
	its = append(its, db.mem.iterator(start[:]))
	merged := newMergeIter(its)
	for ; merged.valid(); merged.next() {
		db.stats.AddScanned(1)
		if !fn(merged.key(), merged.value()) {
			break
		}
	}
	return merged.err()
}

// Fetch implements storage.Store: bloom-guarded point gets.
func (db *DB) Fetch(t int32, oids model.ObjSet) ([]model.ObjPos, error) {
	if len(oids) == 0 {
		return nil, nil
	}
	out := make([]model.ObjPos, 0, len(oids))
	for _, oid := range oids {
		v, err := db.Get(t, oid)
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		x, y := storage.DecodeValue(v)
		out = append(out, model.ObjPos{OID: oid, X: x, Y: y})
	}
	db.stats.AddPointQueries(len(oids), len(out))
	db.stats.AddScanned(len(out))
	return out, nil
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var firstErr error
	if err := db.wal.sync(); err != nil {
		firstErr = err
	}
	if err := db.wal.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	for _, t := range db.tables {
		if err := t.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// NumTables returns the current number of on-disk runs (for tests).
func (db *DB) NumTables() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.tables)
}

// WriteDataset bulk-loads ds into a fresh database at dir.
func WriteDataset(dir string, ds *model.Dataset, opts *Options) error {
	db, err := Open(dir, opts)
	if err != nil {
		return err
	}
	if err := db.PutBatch(ds.Points()); err != nil {
		db.Close()
		return err
	}
	if err := db.Flush(); err != nil {
		db.Close()
		return err
	}
	if err := db.Compact(); err != nil {
		db.Close()
		return err
	}
	return db.Close()
}

// mergeIter merges several sorted iterators; on duplicate keys the source
// with the LARGEST slice index wins (callers order sources oldest→newest,
// memtable last).
type mergeIter struct {
	srcs []kvIterator
	cur  int // index of current winning source, -1 when exhausted
}

func newMergeIter(srcs []kvIterator) *mergeIter {
	m := &mergeIter{srcs: srcs, cur: -1}
	m.advance()
	return m
}

// advance selects the smallest current key (ties → newest source) after
// first skipping, in all older sources, keys equal to the previous winner.
func (m *mergeIter) advance() {
	m.cur = -1
	var best []byte
	for i, it := range m.srcs {
		if it == nil || !it.valid() {
			continue
		}
		k := it.key()
		if best == nil || bytes.Compare(k, best) < 0 || (bytes.Equal(k, best) && i > m.cur) {
			best = k
			m.cur = i
		}
	}
	if m.cur < 0 {
		return
	}
	// Skip duplicates of the winning key in all other sources so that next()
	// never yields the same key twice.
	for i, it := range m.srcs {
		if i == m.cur || it == nil {
			continue
		}
		for it.valid() && bytes.Equal(it.key(), best) {
			it.next()
		}
	}
}

func (m *mergeIter) valid() bool   { return m.cur >= 0 }
func (m *mergeIter) key() []byte   { return m.srcs[m.cur].key() }
func (m *mergeIter) value() []byte { return m.srcs[m.cur].value() }
func (m *mergeIter) next() {
	m.srcs[m.cur].next()
	m.advance()
}

// err returns the first error any sstable source hit.
func (m *mergeIter) err() error {
	for _, it := range m.srcs {
		if s, ok := it.(*sstIter); ok && s.err != nil {
			return s.err
		}
	}
	return nil
}
