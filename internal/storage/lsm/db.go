// Package lsm implements the paper's k2-LSMT storage variant: a
// log-structured merge-tree (O'Neil et al.) keyed by the composite
// (timestamp, oid) with the point coordinates as value (§5.2).
//
// Writes go to a WAL and a skiplist memtable; when the memtable exceeds its
// budget it is flushed to an immutable SSTable (sorted blocks + block index
// + bloom filter). A background size-tiered compactor folds tables together
// when too many runs accumulate, off the write path. Deletions are
// tombstone records that shadow older runs until compaction reaches the
// bottom level and garbage-collects them. Benchmark-point reads are range
// scans (all keys of one timestamp are co-located, one positioning per
// run); HWMT reads are bloom-guarded point gets.
//
// Crash model: the MANIFEST (which names the live tables and the active
// WAL) is the sole commit point, written via fsynced tmp file + rename +
// directory fsync. Flush creates the next WAL before committing, so a crash
// on either side of the commit replays exactly one of {old WAL, new WAL} —
// flushed records are never replayed twice. Files the manifest does not
// reference are swept on Open.
//
// The engine serves two consumers. As a storage.Store (Put/Snapshot/Fetch)
// it holds trajectory points for the miners, exactly the paper's role. As a
// raw ordered key/value store (PutKV/DeleteKV/Scan) it backs the secondary
// indexes of the historical convoy archive (internal/storage/archive): any
// fixed-width 8-byte key whose lexicographic order matches the caller's
// logical order — the archive packs (time, seq), (oid, seq) and
// (size, seq) pairs through storage.EncodeKey — maps to a 16-byte value,
// and Scan provides the merged, budget-boundable range reads the query
// endpoints page through.
package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/storage"
)

// Options tunes the engine.
type Options struct {
	// MemtableBytes is the flush threshold (default 4 MiB).
	MemtableBytes int
	// MaxTables is the run count above which the background compactor
	// merges runs (default 6). The floor is 1: "always compact back to a
	// single run". Zero (or negative) selects the default.
	MaxTables int
	// SyncWAL forces an fsync per batch when true.
	SyncWAL bool
	// BlockCacheBytes bounds the shared data-block cache (default 4 MiB).
	BlockCacheBytes int
}

func (o *Options) withDefaults() Options {
	out := Options{MemtableBytes: 4 << 20, MaxTables: 6, BlockCacheBytes: 4 << 20}
	if o != nil {
		if o.MemtableBytes > 0 {
			out.MemtableBytes = o.MemtableBytes
		}
		if o.MaxTables > 0 {
			out.MaxTables = o.MaxTables
		}
		if o.BlockCacheBytes > 0 {
			out.BlockCacheBytes = o.BlockCacheBytes
		}
		out.SyncWAL = o.SyncWAL
	}
	return out
}

// DB is the LSM-tree database. It implements storage.Store.
//
// Locking: mu is a read/write lock, but reads hold it only for snapshot
// acquisition — a pointer copy of the COW table list plus a refcount bump
// per table (snapshot.go). All read I/O (bloom probes, block reads, merge
// scans) happens outside the lock, so a slow query page no longer stalls
// ingest, other queries, or the compactor's swap. Writers (PutKV, flush,
// compaction swap, Close) take the write lock and publish new state by
// replacing db.tables/db.mem, never mutating the slices a snapshot may
// hold.
type DB struct {
	mu      sync.RWMutex
	dir     string
	opts    Options
	wal     *wal
	walName string
	mem     *memtable
	tables  []*sstable // oldest first; later tables shadow earlier ones; COW
	seq     int
	ts, te  int32
	count   uint64
	stats   storage.IOStats
	closed  bool

	// Shared lock-free read-path state: the sharded block cache, its
	// counter sinks, and the live-snapshot gauge.
	cache         *blockCache
	rstats        readStats
	env           readEnv
	liveSnapshots atomic.Int64

	// compactMu serialises compactions (background loop and manual
	// Compact); it is always acquired before db.mu, never inside it.
	compactMu sync.Mutex
	compact   compactState
}

// crashPoint, when non-nil, is called at named points between the durable
// steps of flush, compaction and open; crash tests install a hook that
// panics with errSimulatedCrash to model a process kill at that exact
// point. Always nil in production.
var crashPoint func(name string)

var errSimulatedCrash = errors.New("lsm: simulated crash")

func crash(name string) {
	if crashPoint != nil {
		crashPoint(name)
	}
}

// Open opens (or creates) an LSM database in dir.
func Open(dir string, opts *Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: mkdir: %w", err)
	}
	db := &DB{dir: dir, opts: opts.withDefaults(), mem: newMemtable(1), ts: 0, te: -1}
	db.cache = newBlockCache(db.opts.BlockCacheBytes)
	db.env = readEnv{cache: db.cache, io: &db.stats, rs: &db.rstats}
	oldWAL, err := db.loadManifest()
	if err != nil {
		return nil, err
	}
	if oldWAL == "" {
		oldWAL = legacyWALName
	}
	// Replay the manifest's WAL into the fresh memtable. Only live puts
	// count toward the point total and the time bounds.
	if err := replayWAL(filepath.Join(dir, oldWAL), func(k, v []byte, tomb bool) {
		db.mem.put(k, v, tomb)
		if !tomb {
			db.noteKey(k)
			db.count++
		}
	}); err != nil {
		return nil, err
	}
	// Recompute bounds/counts from the manifest's tables (before any
	// recovery flush appends to the list).
	for _, t := range db.tables {
		db.count += t.count - t.tombs
		if len(t.index) > 0 {
			ft, _ := storage.DecodeKey(t.index[0].firstKey[:])
			db.noteT(ft)
			// Last key requires reading the last block; cheap and done once.
			lb, err := t.readBlock(len(t.index)-1, nil)
			if err != nil {
				return nil, err
			}
			lastRec := lb[(int(t.index[len(t.index)-1].count)-1)*t.recSize:]
			lt, _ := storage.DecodeKey(lastRec[:storage.KeySize])
			db.noteT(lt)
		}
	}
	// Rotate to a fresh WAL. If replay recovered records, they are flushed
	// to a run first so the manifest commit below cannot strand them: the
	// old WAL is only removed once the new state is durable.
	if err := db.recoverLocked(oldWAL); err != nil {
		return nil, err
	}
	db.sweepOrphans()
	db.startCompactor()
	if len(db.tables) > db.opts.MaxTables {
		db.kickCompact()
	}
	return db, nil
}

// recoverLocked finishes Open: persist any replayed records as a run,
// commit a manifest naming a fresh WAL, then retire the old WAL. Called
// before the DB is shared, so no locking.
func (db *DB) recoverLocked(oldWAL string) error {
	if db.mem.len() > 0 {
		name := fmt.Sprintf("sst-%06d.sst", db.seq)
		db.seq++
		path := filepath.Join(db.dir, name)
		if err := writeSSTable(path, db.mem.iterator(nil), len(db.tables) == 0); err != nil {
			return err
		}
		t, err := openSSTable(path)
		if err != nil {
			return err
		}
		if t.count == 0 { // every record was a dropped tombstone
			t.close()
			os.Remove(path)
		} else {
			db.tables = append(db.tables, t)
		}
		db.mem = newMemtable(int64(db.seq))
	}
	crash("open.recovered")
	db.walName = fmt.Sprintf("wal-%06d.log", db.seq)
	db.seq++
	w, err := createWAL(filepath.Join(db.dir, db.walName))
	if err != nil {
		return err
	}
	db.wal = w
	if err := db.writeManifest(); err != nil {
		w.close()
		return err
	}
	if oldWAL != db.walName {
		os.Remove(filepath.Join(db.dir, oldWAL))
	}
	return nil
}

func (db *DB) noteKey(k []byte) {
	t, _ := storage.DecodeKey(k)
	db.noteT(t)
}

func (db *DB) noteT(t int32) {
	if db.te < db.ts { // empty
		db.ts, db.te = t, t
		return
	}
	if t < db.ts {
		db.ts = t
	}
	if t > db.te {
		db.te = t
	}
}

// Put inserts one point.
func (db *DB) Put(p model.Point) error {
	return db.PutKV(storage.EncodeKey(p.T, p.OID), storage.EncodeValue(p.X, p.Y))
}

// PutKV inserts one raw record: an 8-byte order-preserving key mapping to a
// 16-byte value. It is the write path of the archive's secondary indexes,
// which store record locators rather than coordinates; Put is a thin
// wrapper over it. Writing the same key again overwrites the value.
func (db *DB) PutKV(key [storage.KeySize]byte, val [storage.ValueSize]byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("lsm: db closed")
	}
	if err := db.wal.append(key[:], val[:]); err != nil {
		return err
	}
	if db.opts.SyncWAL {
		if err := db.wal.sync(); err != nil {
			return err
		}
	}
	db.mem.put(key[:], val[:], false)
	db.noteKey(key[:])
	db.count++
	if db.mem.bytes() >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// DeleteKV records a tombstone for key: the key disappears from reads
// immediately and the marker shadows every older run until compaction
// reaches the bottom level and garbage-collects it. Deleting an absent key
// is a no-op that still writes a tombstone.
func (db *DB) DeleteKV(key [storage.KeySize]byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("lsm: db closed")
	}
	if err := db.wal.append(key[:], nil); err != nil {
		return err
	}
	if db.opts.SyncWAL {
		if err := db.wal.sync(); err != nil {
			return err
		}
	}
	db.mem.put(key[:], nil, true)
	if db.mem.bytes() >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// PutBatch inserts points with one WAL flush at the end.
func (db *DB) PutBatch(pts []model.Point) error {
	for _, p := range pts {
		if err := db.Put(p); err != nil {
			return err
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.wal.sync()
}

// Flush forces the memtable to disk.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.flushLocked()
}

// flushLocked turns the memtable into a run. Ordering is the crash-safety
// contract: (1) create the NEXT WAL, (2) write the sstable, (3) commit the
// manifest referencing both, (4) only then retire the old WAL. A crash
// before (3) leaves the old manifest: the orphaned sstable/WAL are swept
// and the old WAL replays — nothing lost. A crash after (3) leaves the new
// manifest: the old WAL is stale and swept — nothing replays twice. The
// old ordering (manifest before WAL reset) double-replayed flushed records.
func (db *DB) flushLocked() error {
	if db.mem.len() == 0 {
		return nil
	}
	nextWAL := fmt.Sprintf("wal-%06d.log", db.seq)
	db.seq++
	w, err := createWAL(filepath.Join(db.dir, nextWAL))
	if err != nil {
		return err
	}
	crash("flush.wal-created")
	name := fmt.Sprintf("sst-%06d.sst", db.seq)
	db.seq++
	path := filepath.Join(db.dir, name)
	fail := func(err error) error {
		w.close()
		os.Remove(filepath.Join(db.dir, nextWAL))
		return err
	}
	if err := writeSSTable(path, db.mem.iterator(nil), len(db.tables) == 0); err != nil {
		return fail(err)
	}
	t, err := openSSTable(path)
	if err != nil {
		os.Remove(path)
		return fail(err)
	}
	crash("flush.sstable-written")
	if t.count == 0 {
		// Every record was a tombstone dropped at the bottom level; rotate
		// the WAL without adding an empty run.
		t.close()
		os.Remove(path)
	} else {
		db.tables = append(db.tables, t)
	}
	oldWAL := db.walName
	db.walName = nextWAL
	if err := db.writeManifest(); err != nil {
		db.walName = oldWAL
		if t.count > 0 {
			db.tables = db.tables[:len(db.tables)-1]
			t.close()
			os.Remove(path)
		}
		return fail(err)
	}
	crash("flush.manifest-committed")
	db.wal.close()
	os.Remove(filepath.Join(db.dir, oldWAL))
	db.wal = w
	db.mem = newMemtable(int64(db.seq))
	if len(db.tables) > db.opts.MaxTables {
		db.kickCompact()
	}
	return nil
}

// Compact synchronously merges all runs into one, garbage-collecting every
// tombstone (the bulk-load path; the serving path compacts in background).
func (db *DB) Compact() error {
	_, err := db.compactOnce(true)
	return err
}

// Get returns the value bytes for (t, oid) or nil if absent.
func (db *DB) Get(t, oid int32) ([]byte, error) {
	key := storage.EncodeKey(t, oid)
	return db.GetKV(key)
}

// GetKV returns the value bytes for key, or nil if absent or deleted. The
// read runs against a snapshot: no lock is held during I/O.
func (db *DB) GetKV(key [storage.KeySize]byte) ([]byte, error) {
	s, err := db.AcquireSnapshot()
	if err != nil {
		return nil, err
	}
	defer s.Release()
	return s.GetKV(key)
}

// TimeRange implements storage.Store.
func (db *DB) TimeRange() (int32, int32) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ts, db.te
}

// Count returns the number of inserted points (before dedup by key, net of
// tombstones already folded into runs).
func (db *DB) Count() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.count
}

// Stats implements storage.Store.
func (db *DB) Stats() *storage.IOStats { return &db.stats }

// Snapshot implements storage.Store: one merged range scan across runs over
// the key prefix of timestamp t, against a pinned snapshot (lock-free I/O).
func (db *DB) Snapshot(t int32) ([]model.ObjPos, error) {
	s, err := db.AcquireSnapshot()
	if err != nil {
		return nil, err
	}
	defer s.Release()
	if s.te < s.ts || t < s.ts || t > s.te {
		return nil, nil
	}
	start := storage.EncodeKey(t, -1<<31)
	var out []model.ObjPos
	err = s.Scan(start, func(k, v []byte) bool {
		kt, oid := storage.DecodeKey(k)
		if kt != t {
			return false
		}
		x, y := storage.DecodeValue(v)
		out = append(out, model.ObjPos{OID: oid, X: x, Y: y})
		return true
	})
	if err != nil {
		return nil, err
	}
	db.stats.AddScan(len(out))
	return out, nil
}

// Scan calls fn for every live record with key ≥ start, in ascending key
// order, merged across the memtable and every on-disk run (newest version
// of a key wins; keys whose newest version is a tombstone are skipped),
// until fn returns false or the keyspace is exhausted. The key and value
// slices passed to fn are only valid during the call. The scan runs against
// a snapshot with no lock held, so fn may block or call back into the DB;
// callers still bound the walk (the archive's query budget). Callers that
// page repeatedly should AcquireSnapshot once and scan it directly.
func (db *DB) Scan(start [storage.KeySize]byte, fn func(key, val []byte) bool) error {
	s, err := db.AcquireSnapshot()
	if err != nil {
		return err
	}
	defer s.Release()
	return s.Scan(start, fn)
}

// Fetch implements storage.Store: bloom-guarded point gets, all against one
// snapshot.
func (db *DB) Fetch(t int32, oids model.ObjSet) ([]model.ObjPos, error) {
	if len(oids) == 0 {
		return nil, nil
	}
	s, err := db.AcquireSnapshot()
	if err != nil {
		return nil, err
	}
	defer s.Release()
	out := make([]model.ObjPos, 0, len(oids))
	for _, oid := range oids {
		v, err := s.GetKV(storage.EncodeKey(t, oid))
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		x, y := storage.DecodeValue(v)
		out = append(out, model.ObjPos{OID: oid, X: x, Y: y})
	}
	db.stats.AddPointQueries(len(oids), len(out))
	db.stats.AddScanned(len(out))
	return out, nil
}

// Close flushes buffers, stops the compactor and closes the database.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	// Stop the compactor before touching the tables: an in-flight merge
	// sees closed at swap time, discards its output and exits.
	if db.compact.quit != nil {
		close(db.compact.quit)
		<-db.compact.done
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var firstErr error
	if err := db.wal.sync(); err != nil {
		firstErr = err
	}
	if err := db.wal.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	// Drop the table-list references. Files close when the last snapshot
	// drains (immediately, when none are live) and stay on disk — the
	// manifest still names them for the next Open.
	for _, t := range db.tables {
		t.retire(false)
	}
	db.tables = nil
	return firstErr
}

// Abandon simulates a process kill for crash tests of packages built on
// top of lsm (the archive's crash fuzz uses it): every file handle is
// closed without flushing buffered WAL bytes, exactly like abandon. The
// DB must not be used afterwards.
func (db *DB) Abandon() { db.abandon() }

// abandon simulates a process kill for crash tests: every file handle is
// closed without flushing buffered WAL bytes (they are lost, as in a real
// crash) and the compactor is stopped. The DB must not be used afterwards.
func (db *DB) abandon() {
	if db.compact.quit != nil {
		select {
		case <-db.compact.quit:
		default:
			close(db.compact.quit)
		}
		<-db.compact.done
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.closed = true
	if db.wal != nil {
		db.wal.f.Close()
	}
	for _, t := range db.tables {
		t.f.Close()
	}
}

// NumTables returns the current number of on-disk runs (for tests).
func (db *DB) NumTables() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.tables)
}

// WriteDataset bulk-loads ds into a fresh database at dir.
func WriteDataset(dir string, ds *model.Dataset, opts *Options) error {
	db, err := Open(dir, opts)
	if err != nil {
		return err
	}
	if err := db.PutBatch(ds.Points()); err != nil {
		db.Close()
		return err
	}
	if err := db.Flush(); err != nil {
		db.Close()
		return err
	}
	if err := db.Compact(); err != nil {
		db.Close()
		return err
	}
	return db.Close()
}

// mergeIter merges several sorted iterators; on duplicate keys the source
// with the LARGEST slice index wins (callers order sources oldest→newest,
// memtable last). Tombstones participate like any record — the caller
// checks tomb() on each winner.
type mergeIter struct {
	srcs []kvIterator
	cur  int // index of current winning source, -1 when exhausted
}

func newMergeIter(srcs []kvIterator) *mergeIter {
	m := &mergeIter{srcs: srcs, cur: -1}
	m.advance()
	return m
}

// advance selects the smallest current key (ties → newest source) after
// first skipping, in all older sources, keys equal to the previous winner.
func (m *mergeIter) advance() {
	m.cur = -1
	var best []byte
	for i, it := range m.srcs {
		if it == nil || !it.valid() {
			continue
		}
		k := it.key()
		if best == nil || bytes.Compare(k, best) < 0 || (bytes.Equal(k, best) && i > m.cur) {
			best = k
			m.cur = i
		}
	}
	if m.cur < 0 {
		return
	}
	// Skip duplicates of the winning key in all other sources so that next()
	// never yields the same key twice.
	for i, it := range m.srcs {
		if i == m.cur || it == nil {
			continue
		}
		for it.valid() && bytes.Equal(it.key(), best) {
			it.next()
		}
	}
}

func (m *mergeIter) valid() bool   { return m.cur >= 0 }
func (m *mergeIter) key() []byte   { return m.srcs[m.cur].key() }
func (m *mergeIter) value() []byte { return m.srcs[m.cur].value() }
func (m *mergeIter) tomb() bool    { return m.srcs[m.cur].tomb() }
func (m *mergeIter) next() {
	m.srcs[m.cur].next()
	m.advance()
}

// err returns the first error any fallible source hit, even after it
// yielded partial results.
func (m *mergeIter) err() error {
	for _, it := range m.srcs {
		if s, ok := it.(faultIterator); ok {
			if err := s.srcErr(); err != nil {
				return err
			}
		}
	}
	return nil
}

// srcErr lets nested mergeIters propagate source errors.
func (m *mergeIter) srcErr() error { return m.err() }
