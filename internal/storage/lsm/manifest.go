package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The MANIFEST is the database's single commit point: it lists the live
// sstables (oldest first) and names the active WAL. Flush and compaction
// stage their output files first and only then rewrite the manifest, so any
// file not referenced by it is garbage by construction and swept on Open.
//
//	sst-000003.sst
//	sst-000007.sst
//	wal wal-000008.log
//
// Manifests written before WAL rotation existed carry no "wal" line; they
// imply the legacy fixed name "wal.log".
const (
	manifestName  = "MANIFEST"
	legacyWALName = "wal.log"
)

// loadManifest opens every table listed in the manifest and returns the
// active WAL name ("" when the manifest is missing or predates WAL naming).
func (db *DB) loadManifest() (walName string, err error) {
	data, err := os.ReadFile(filepath.Join(db.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return "", nil
	}
	if err != nil {
		return "", fmt.Errorf("lsm: read manifest: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "wal" {
			walName = fields[1]
			continue
		}
		for _, name := range fields {
			t, err := openSSTable(filepath.Join(db.dir, name))
			if err != nil {
				return "", err
			}
			db.tables = append(db.tables, t)
			var n int
			fmt.Sscanf(name, "sst-%d.sst", &n)
			if n >= db.seq {
				db.seq = n + 1
			}
		}
	}
	return walName, nil
}

// writeManifest atomically and durably records the current table list and
// active WAL: the tmp file is fsynced before the rename and the directory
// after it, so power loss can surface either the old or the new manifest
// but never an empty or torn one.
func (db *DB) writeManifest() error {
	var b strings.Builder
	for _, t := range db.tables {
		fmt.Fprintln(&b, filepath.Base(t.path))
	}
	if db.walName != "" {
		fmt.Fprintf(&b, "wal %s\n", db.walName)
	}
	tmp := filepath.Join(db.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(b.String()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, manifestName)); err != nil {
		return err
	}
	return syncDir(db.dir)
}

// syncDir fsyncs a directory so renames and unlinks inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// sweepOrphans removes lsm-owned files in dir that the committed manifest
// does not reference: sstables from flushes or compactions that never
// committed, WALs superseded by rotation, and a leftover MANIFEST.tmp.
// Only names matching the engine's own patterns are touched.
func (db *DB) sweepOrphans() {
	live := make(map[string]bool, len(db.tables)+1)
	for _, t := range db.tables {
		live[filepath.Base(t.path)] = true
	}
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "sst-") && strings.HasSuffix(name, ".sst"):
			if !live[name] {
				os.Remove(filepath.Join(db.dir, name))
			}
		case name == legacyWALName || (strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log")):
			if name != db.walName {
				os.Remove(filepath.Join(db.dir, name))
			}
		case name == manifestName+".tmp":
			os.Remove(filepath.Join(db.dir, name))
		}
	}
}
