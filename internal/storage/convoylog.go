package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/model"
)

// ConvoyLog is the closed-convoy sink of the convoyd server: an append-only
// binary log of (feed, convoy) records. It is the write-side counterpart of
// the flat-file point store — the same fixed-width little-endian codec
// style, but record-oriented because convoys are variable-length.
//
// Log layout:
//
//	header:  magic "K2CL" | version u32
//	records: feedLen u16 | feed | start i32 | end i32 | n u32 | n × oid i32
//
// The count field n doubles as a pattern tag: a plain convoy record (the
// only kind version 1 ever wrote) keeps bit 31 clear, so old logs decode
// unchanged and plain records still encode byte-for-byte as they always
// did. A record of another pattern family sets bit 31, carries the pattern
// id in bits 24–30 and the object count in bits 0–23 (counts were already
// capped at 2²⁴ by maxLoggedConvoySize), and — for moving clusters — is
// followed by the per-tick cluster block:
//
//	clusters: nClusters u32 | nClusters × (m u32 | m × oid i32)
//
// Appends are buffered and mutex-serialised, so many shard actors can share
// one log; Sync flushes the buffer and fsyncs, which is what the server's
// periodic persistence tick calls.
type ConvoyLog struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	off int64 // byte offset where the next Append will land
}

const (
	convoyLogMagic      = "K2CL"
	convoyLogVersion    = 1
	convoyLogHeaderSize = 8
	// maxLoggedConvoySize caps the object count a reader will allocate for,
	// so a corrupt length prefix cannot demand gigabytes. It is also the
	// modulus of the tagged count field (bits 0–23).
	maxLoggedConvoySize = 1 << 24

	// The tagged count-field layout (see the package comment).
	logRecExtended     = uint32(1) << 31
	logRecPatternShift = 24
	logRecPatternMask  = uint32(0x7F)
	logRecCountMask    = uint32(maxLoggedConvoySize - 1)
)

// Pattern ids carried by tagged log records. LogPatternConvoy is implicit —
// plain records never set the tag, keeping them byte-identical to the
// pre-pattern format.
const (
	LogPatternConvoy uint8 = 0
	LogPatternFlock  uint8 = 1
	LogPatternMC     uint8 = 2
)

// LoggedConvoy is one record of a ConvoyLog: a closed pattern together with
// the feed it was mined from. Pattern tags the family (LogPattern*); for
// moving clusters, Convoy carries the lifetime footprint and Clusters the
// per-tick cluster sequence (Clusters[i] is the cluster at Start+i).
type LoggedConvoy struct {
	Feed     string
	Convoy   model.Convoy
	Pattern  uint8
	Clusters []model.ObjSet
}

// FlushMarker returns the sentinel record convoyd appends after a feed's
// flush is fully durable, so a restart can restore the feed's terminal
// flushed state. The sentinel — an empty object set over the impossible
// interval [0,-1) — cannot collide with a real convoy (every mined convoy
// has End ≥ Start) and round-trips through the v1 codec unchanged, so old
// logs and readers stay compatible.
func FlushMarker() model.Convoy {
	return model.Convoy{Start: 0, End: -1}
}

// IsFlushMarker reports whether a logged convoy is the flush sentinel.
func IsFlushMarker(c model.Convoy) bool {
	return len(c.Objs) == 0 && c.End < c.Start
}

// CreateConvoyLog creates (or truncates) a convoy log at path.
func CreateConvoyLog(path string) (*ConvoyLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("convoylog: create: %w", err)
	}
	l := &ConvoyLog{f: f, w: bufio.NewWriterSize(f, 1<<16), off: convoyLogHeaderSize}
	var hdr [8]byte
	copy(hdr[0:4], convoyLogMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], convoyLogVersion)
	if _, err := l.w.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("convoylog: write header: %w", err)
	}
	return l, nil
}

// EncodeConvoyRecord serialises one plain (feed, convoy) record in the
// log's wire format. Pattern-tagged records go through EncodeLoggedRecord.
func EncodeConvoyRecord(feed string, c model.Convoy) ([]byte, error) {
	return EncodeLoggedRecord(LoggedConvoy{Feed: feed, Convoy: c})
}

// EncodeLoggedRecord serialises one record in the log's wire format. It is
// exported so the archive can checksum a log prefix without re-reading raw
// bytes: the codec is canonical (decode∘encode is the identity), so
// re-encoding a decoded record reproduces the on-disk bytes. Canonicality
// is enforced: a cluster block is carried by moving-cluster records and by
// no others.
func EncodeLoggedRecord(rec LoggedConvoy) ([]byte, error) {
	if len(rec.Feed) > int(^uint16(0)) {
		return nil, fmt.Errorf("convoylog: feed name too long (%d bytes)", len(rec.Feed))
	}
	c := rec.Convoy
	if len(c.Objs) >= maxLoggedConvoySize {
		return nil, fmt.Errorf("convoylog: object count %d exceeds the %d cap", len(c.Objs), maxLoggedConvoySize)
	}
	switch rec.Pattern {
	case LogPatternConvoy, LogPatternFlock:
		if len(rec.Clusters) != 0 {
			return nil, fmt.Errorf("convoylog: pattern %d record cannot carry clusters", rec.Pattern)
		}
	case LogPatternMC:
	default:
		return nil, fmt.Errorf("convoylog: unknown pattern id %d", rec.Pattern)
	}
	out := make([]byte, 0, 2+len(rec.Feed)+12+4*len(c.Objs))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(rec.Feed)))
	out = append(out, rec.Feed...)
	out = binary.LittleEndian.AppendUint32(out, uint32(c.Start))
	out = binary.LittleEndian.AppendUint32(out, uint32(c.End))
	n := uint32(len(c.Objs))
	if rec.Pattern != LogPatternConvoy {
		n |= logRecExtended | uint32(rec.Pattern)<<logRecPatternShift
	}
	out = binary.LittleEndian.AppendUint32(out, n)
	for _, oid := range c.Objs {
		out = binary.LittleEndian.AppendUint32(out, uint32(oid))
	}
	if rec.Pattern == LogPatternMC {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(rec.Clusters)))
		for _, cl := range rec.Clusters {
			if len(cl) >= maxLoggedConvoySize {
				return nil, fmt.Errorf("convoylog: cluster size %d exceeds the %d cap", len(cl), maxLoggedConvoySize)
			}
			out = binary.LittleEndian.AppendUint32(out, uint32(len(cl)))
			for _, oid := range cl {
				out = binary.LittleEndian.AppendUint32(out, uint32(oid))
			}
		}
	}
	return out, nil
}

// Append writes one closed convoy of the given feed to the log. The record
// is serialised first and handed to the writer in a single call, so a
// failing write cannot leave a half-built record in the buffer (bytes
// already flushed to a failing disk may still be partial — after any error
// the bufio writer is stuck in its error state and the log should be
// considered ended at the last Sync).
func (l *ConvoyLog) Append(feed string, c model.Convoy) error {
	return l.AppendRecord(LoggedConvoy{Feed: feed, Convoy: c})
}

// AppendRecord writes one record, pattern tag and cluster block included.
func (l *ConvoyLog) AppendRecord(rec LoggedConvoy) error {
	enc, err := EncodeLoggedRecord(rec)
	if err != nil {
		return err
	}
	return l.AppendEncoded(enc)
}

// AppendEncoded writes one record already serialised by EncodeConvoyRecord.
// Callers that need the wire bytes anyway (the archive checksums them)
// avoid encoding twice, and what they checksummed is exactly what was
// appended.
func (l *ConvoyLog) AppendEncoded(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(rec); err != nil {
		return err
	}
	l.off += int64(len(rec))
	return nil
}

// Offset returns the byte offset at which the next Append will land. After
// a Sync it is also the durable size of the log file; the archive uses it
// to address records it has just written.
func (l *ConvoyLog) Offset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}

// AppendAll writes every convoy of one feed.
func (l *ConvoyLog) AppendAll(feed string, cs []model.Convoy) error {
	for _, c := range cs {
		if err := l.Append(feed, c); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes buffered records and forces them to stable storage.
func (l *ConvoyLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close flushes and closes the log.
func (l *ConvoyLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// readLogHeader consumes and validates the 8-byte log header.
func readLogHeader(r *bufio.Reader) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("convoylog: read header: %w", err)
	}
	if string(hdr[0:4]) != convoyLogMagic {
		return errors.New("convoylog: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != convoyLogVersion {
		return fmt.Errorf("convoylog: unsupported version %d", v)
	}
	return nil
}

// readLogRecord decodes one record and reports its encoded size. io.EOF
// means a clean record boundary (end of log); io.ErrUnexpectedEOF means the
// log ends inside the record — the truncated tail a crash mid-append leaves
// behind.
func readLogRecord(r *bufio.Reader) (LoggedConvoy, int64, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return LoggedConvoy{}, 0, err // io.EOF here is the clean end
	}
	feedLen := int(binary.LittleEndian.Uint16(lenBuf[:]))
	rec := make([]byte, feedLen+12)
	if _, err := io.ReadFull(r, rec); err != nil {
		return LoggedConvoy{}, 0, truncated(err)
	}
	feed := string(rec[:feedLen])
	start := int32(binary.LittleEndian.Uint32(rec[feedLen : feedLen+4]))
	end := int32(binary.LittleEndian.Uint32(rec[feedLen+4 : feedLen+8]))
	n := binary.LittleEndian.Uint32(rec[feedLen+8 : feedLen+12])
	pattern := LogPatternConvoy
	if n&logRecExtended != 0 {
		pattern = uint8(n >> logRecPatternShift & logRecPatternMask)
		n &= logRecCountMask
		if pattern == LogPatternConvoy || pattern > LogPatternMC {
			// A tagged plain-convoy record is never written (the plain form
			// is canonical), so either way this is corruption.
			return LoggedConvoy{}, 0, fmt.Errorf("convoylog: implausible pattern id %d", pattern)
		}
	}
	if n > maxLoggedConvoySize {
		return LoggedConvoy{}, 0, fmt.Errorf("convoylog: implausible object count %d", n)
	}
	oidBuf := make([]byte, 4*int(n))
	if _, err := io.ReadFull(r, oidBuf); err != nil {
		return LoggedConvoy{}, 0, truncated(err)
	}
	objs := make(model.ObjSet, n)
	for i := range objs {
		objs[i] = int32(binary.LittleEndian.Uint32(oidBuf[4*i : 4*i+4]))
	}
	size := int64(2 + feedLen + 12 + 4*int(n))
	out := LoggedConvoy{
		Feed:    feed,
		Convoy:  model.Convoy{Objs: objs, Start: start, End: end},
		Pattern: pattern,
	}
	if pattern == LogPatternMC {
		var cntBuf [4]byte
		if _, err := io.ReadFull(r, cntBuf[:]); err != nil {
			return LoggedConvoy{}, 0, truncated(err)
		}
		nClusters := binary.LittleEndian.Uint32(cntBuf[:])
		if nClusters > maxLoggedConvoySize {
			return LoggedConvoy{}, 0, fmt.Errorf("convoylog: implausible cluster count %d", nClusters)
		}
		size += 4
		out.Clusters = make([]model.ObjSet, nClusters)
		for i := range out.Clusters {
			if _, err := io.ReadFull(r, cntBuf[:]); err != nil {
				return LoggedConvoy{}, 0, truncated(err)
			}
			m := binary.LittleEndian.Uint32(cntBuf[:])
			if m > maxLoggedConvoySize {
				return LoggedConvoy{}, 0, fmt.Errorf("convoylog: implausible cluster size %d", m)
			}
			clBuf := make([]byte, 4*int(m))
			if _, err := io.ReadFull(r, clBuf); err != nil {
				return LoggedConvoy{}, 0, truncated(err)
			}
			cl := make(model.ObjSet, m)
			for j := range cl {
				cl[j] = int32(binary.LittleEndian.Uint32(clBuf[4*j : 4*j+4]))
			}
			out.Clusters[i] = cl
			size += 4 + 4*int64(m)
		}
	}
	return out, size, nil
}

// truncated normalises a mid-record io.EOF (ReadFull reports it only when
// zero bytes were read) to io.ErrUnexpectedEOF, so callers distinguish the
// clean end of the log from a torn tail by error value alone.
func truncated(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadConvoyLog reads every record of a convoy log, in append order. It is
// strict: a log ending inside a record is an error. Crash recovery wants
// the lenient ScanConvoyLog instead.
func ReadConvoyLog(path string) ([]LoggedConvoy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("convoylog: open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	if err := readLogHeader(r); err != nil {
		return nil, err
	}
	var out []LoggedConvoy
	for {
		rec, _, err := readLogRecord(r)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("convoylog: read record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// ScanConvoyLog iterates the records of a convoy log in append order,
// calling fn for each complete record, and returns the byte offset just
// past the last complete record. A truncated final record — the torn tail a
// crash mid-append leaves — is not an error: the scan stops at the last
// record boundary and the returned offset excludes the partial bytes, so
// OpenConvoyLog can truncate them away. Genuine corruption (bad magic,
// implausible lengths) and fn errors still fail.
func ScanConvoyLog(path string, fn func(LoggedConvoy) error) (int64, error) {
	var wrapped func(int64, LoggedConvoy) error
	if fn != nil {
		wrapped = func(_ int64, rec LoggedConvoy) error { return fn(rec) }
	}
	return ScanConvoyLogFrom(path, 0, wrapped)
}

// ScanConvoyLogFrom is ScanConvoyLog with positions: fn receives each
// record's starting byte offset, and the scan may resume mid-log at a
// record boundary `from` previously returned by a scan (0 means the first
// record, right after the header — the header is validated in either
// case). The archive uses it to re-index only the records past its durable
// watermark.
func ScanConvoyLogFrom(path string, from int64, fn func(off int64, rec LoggedConvoy) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("convoylog: open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	if err := readLogHeader(r); err != nil {
		return 0, err
	}
	off := int64(convoyLogHeaderSize)
	if from > off {
		if _, err := f.Seek(from, io.SeekStart); err != nil {
			return 0, fmt.Errorf("convoylog: seek: %w", err)
		}
		r.Reset(f)
		off = from
	}
	for i := 0; ; i++ {
		rec, size, err := readLogRecord(r)
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return off, nil
		}
		if err != nil {
			return off, fmt.Errorf("convoylog: scan record %d: %w", i, err)
		}
		if fn != nil {
			if err := fn(off, rec); err != nil {
				return off, err
			}
		}
		off += size
	}
}

// ReadConvoyAt decodes the single record starting at byte offset off. It is
// the random-access read path of the archive: secondary indexes store
// record offsets, and a query materialises each hit with one positioned
// read. The offset must be a record boundary previously produced by
// ScanConvoyLogFrom or ConvoyLog.Offset; arbitrary offsets fail with a
// decode error (or worse, decode garbage), they are not validated.
func ReadConvoyAt(r io.ReaderAt, off int64) (LoggedConvoy, error) {
	// Records are small (tens of bytes to a few KiB); a 4 KiB first read
	// covers almost all of them in one pread, and the SectionReader serves
	// the rare oversized object list with follow-up reads.
	br := bufio.NewReaderSize(io.NewSectionReader(r, off, 1<<31), 4096)
	rec, _, err := readLogRecord(br)
	if err != nil {
		return LoggedConvoy{}, fmt.Errorf("convoylog: read at %d: %w", off, truncated(err))
	}
	return rec, nil
}

// OpenConvoyLog opens the log at path for appending, creating it when
// absent. An existing log is replayed through fn (which may be nil) first,
// and a partial tail record left by a crash is truncated away so the next
// append lands on a record boundary. A file too short to hold even the
// header (a crash before the first sync) is recreated from scratch.
func OpenConvoyLog(path string, fn func(LoggedConvoy) error) (*ConvoyLog, error) {
	var wrapped func(int64, LoggedConvoy) error
	if fn != nil {
		wrapped = func(_ int64, rec LoggedConvoy) error { return fn(rec) }
	}
	return OpenConvoyLogFrom(path, 0, wrapped)
}

// OpenConvoyLogFrom is OpenConvoyLog resuming the replay at a known record
// boundary (a durable watermark a caller already trusts), so opening a
// large log does not pay a full-prefix rescan. from = 0 replays
// everything.
func OpenConvoyLogFrom(path string, from int64, fn func(off int64, rec LoggedConvoy) error) (*ConvoyLog, error) {
	st, err := os.Stat(path)
	if os.IsNotExist(err) || (err == nil && st.Size() < 8) {
		return CreateConvoyLog(path)
	}
	if err != nil {
		return nil, fmt.Errorf("convoylog: stat: %w", err)
	}
	off, err := ScanConvoyLogFrom(path, from, fn)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("convoylog: open: %w", err)
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, fmt.Errorf("convoylog: truncate partial tail: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("convoylog: seek: %w", err)
	}
	return &ConvoyLog{f: f, w: bufio.NewWriterSize(f, 1<<16), off: off}, nil
}

// CompactConvoyLog rewrites the log at path keeping only the first
// occurrence of each (feed, convoy) record, dropping exact duplicates and
// any partial tail, then atomically replaces the original. Duplicates enter
// a log when a feed is evicted and the same data is re-ingested later (the
// in-memory dedup state dies with the feed); compaction restores the
// exactly-once property offline. Returns the kept and dropped record
// counts.
func CompactConvoyLog(path string) (kept, dropped int, err error) {
	tmp := path + ".compact"
	out, err := CreateConvoyLog(tmp)
	if err != nil {
		return 0, 0, err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	seen := map[string]bool{}
	_, err = ScanConvoyLog(path, func(rec LoggedConvoy) error {
		// The encoded bytes are the exact record identity (the codec is
		// canonical), pattern tag and cluster block included.
		enc, err := EncodeLoggedRecord(rec)
		if err != nil {
			return err
		}
		if seen[string(enc)] {
			dropped++
			return nil
		}
		seen[string(enc)] = true
		kept++
		return out.AppendEncoded(enc)
	})
	if err != nil {
		out.Close()
		return 0, 0, err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return 0, 0, fmt.Errorf("convoylog: compact sync: %w", err)
	}
	if err := out.Close(); err != nil {
		return 0, 0, fmt.Errorf("convoylog: compact close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, 0, fmt.Errorf("convoylog: compact rename: %w", err)
	}
	return kept, dropped, nil
}
