package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/model"
)

// ConvoyLog is the closed-convoy sink of the convoyd server: an append-only
// binary log of (feed, convoy) records. It is the write-side counterpart of
// the flat-file point store — the same fixed-width little-endian codec
// style, but record-oriented because convoys are variable-length.
//
// Log layout:
//
//	header:  magic "K2CL" | version u32
//	records: feedLen u16 | feed | start i32 | end i32 | n u32 | n × oid i32
//
// Appends are buffered and mutex-serialised, so many shard actors can share
// one log; Sync flushes the buffer and fsyncs, which is what the server's
// periodic persistence tick calls.
type ConvoyLog struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

const (
	convoyLogMagic   = "K2CL"
	convoyLogVersion = 1
	// maxLoggedConvoySize caps the object count a reader will allocate for,
	// so a corrupt length prefix cannot demand gigabytes.
	maxLoggedConvoySize = 1 << 24
)

// LoggedConvoy is one record of a ConvoyLog: a closed convoy together with
// the feed it was mined from.
type LoggedConvoy struct {
	Feed   string
	Convoy model.Convoy
}

// CreateConvoyLog creates (or truncates) a convoy log at path.
func CreateConvoyLog(path string) (*ConvoyLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("convoylog: create: %w", err)
	}
	l := &ConvoyLog{f: f, w: bufio.NewWriterSize(f, 1<<16)}
	var hdr [8]byte
	copy(hdr[0:4], convoyLogMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], convoyLogVersion)
	if _, err := l.w.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("convoylog: write header: %w", err)
	}
	return l, nil
}

// Append writes one closed convoy of the given feed to the log. The record
// is serialised first and handed to the writer in a single call, so a
// failing write cannot leave a half-built record in the buffer (bytes
// already flushed to a failing disk may still be partial — after any error
// the bufio writer is stuck in its error state and the log should be
// considered ended at the last Sync).
func (l *ConvoyLog) Append(feed string, c model.Convoy) error {
	if len(feed) > int(^uint16(0)) {
		return fmt.Errorf("convoylog: feed name too long (%d bytes)", len(feed))
	}
	rec := make([]byte, 0, 2+len(feed)+12+4*len(c.Objs))
	rec = binary.LittleEndian.AppendUint16(rec, uint16(len(feed)))
	rec = append(rec, feed...)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(c.Start))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(c.End))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(c.Objs)))
	for _, oid := range c.Objs {
		rec = binary.LittleEndian.AppendUint32(rec, uint32(oid))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.w.Write(rec)
	return err
}

// AppendAll writes every convoy of one feed.
func (l *ConvoyLog) AppendAll(feed string, cs []model.Convoy) error {
	for _, c := range cs {
		if err := l.Append(feed, c); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes buffered records and forces them to stable storage.
func (l *ConvoyLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close flushes and closes the log.
func (l *ConvoyLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// ReadConvoyLog reads every record of a convoy log, in append order.
func ReadConvoyLog(path string) ([]LoggedConvoy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("convoylog: open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("convoylog: read header: %w", err)
	}
	if string(hdr[0:4]) != convoyLogMagic {
		return nil, errors.New("convoylog: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != convoyLogVersion {
		return nil, fmt.Errorf("convoylog: unsupported version %d", v)
	}
	var out []LoggedConvoy
	for {
		var lenBuf [2]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("convoylog: read record %d: %w", len(out), err)
		}
		feedLen := int(binary.LittleEndian.Uint16(lenBuf[:]))
		rec := make([]byte, feedLen+12)
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, fmt.Errorf("convoylog: read record %d: %w", len(out), err)
		}
		feed := string(rec[:feedLen])
		start := int32(binary.LittleEndian.Uint32(rec[feedLen : feedLen+4]))
		end := int32(binary.LittleEndian.Uint32(rec[feedLen+4 : feedLen+8]))
		n := binary.LittleEndian.Uint32(rec[feedLen+8 : feedLen+12])
		if n > maxLoggedConvoySize {
			return nil, fmt.Errorf("convoylog: record %d: implausible object count %d", len(out), n)
		}
		oidBuf := make([]byte, 4*int(n))
		if _, err := io.ReadFull(r, oidBuf); err != nil {
			return nil, fmt.Errorf("convoylog: read record %d oids: %w", len(out), err)
		}
		objs := make(model.ObjSet, n)
		for i := range objs {
			objs[i] = int32(binary.LittleEndian.Uint32(oidBuf[4*i : 4*i+4]))
		}
		out = append(out, LoggedConvoy{Feed: feed, Convoy: model.Convoy{Objs: objs, Start: start, End: end}})
	}
}
