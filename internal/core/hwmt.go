package core

import (
	"repro/internal/bitset"
	"repro/internal/model"
)

// hwmt runs the Hop-Window Mining Tree (paper §4.3, Algorithm 2) over the
// interior timestamps [lo, hi] of a hop-window, starting from the window's
// candidate cluster set. Timestamps are visited in binary-bisection level
// order (root = middle, then the middles of each half, …), which validates
// "togetherness" at the most distant timestamps first: objects that are
// only coincidentally near each other at the benchmark points usually
// separate at the window's middle, so whole windows are pruned after one or
// two re-clusterings.
//
// Candidate sets within a window all live inside the window's universe
// (∪cc), so each re-clustering level dedups its output word-parallel: the
// clusters are encoded into one reusable dense scratch set (model.Interner
// over the window universe) and keyed by their packed words. Different
// candidates routinely shrink to the same surviving group; re-clustering
// such a duplicate would re-fetch and re-cluster identical rows at every
// remaining level for an identical outcome, so duplicates are dropped at
// birth. This only removes repeated work — the set of distinct survivors,
// and therefore the mined convoys, is unchanged.
//
// The survivors are object sets that form a cluster at every interior
// timestamp of the window — the 1st-order spanning convoys, whose lifespan
// the caller sets to the bordering benchmark points.
//
// An empty interior (hi < lo, which happens for K = 2 or 3 where the hop is
// 1) returns the candidates unchanged: togetherness at both benchmark
// points is all a spanning convoy needs.
func (mi *miner) hwmt(lo, hi int32, cc []model.ObjSet) ([]model.ObjSet, error) {
	order := bisectOrder(lo, hi)
	if mi.cfg.LinearHWMT {
		order = linearOrder(lo, hi)
	}
	if len(order) == 0 {
		return cc, nil
	}
	in := model.Intern(model.Universe(nil, cc))
	scratch := bitset.New(in.Len())
	var keyBuf []byte
	seen := map[string]bool{}
	cands := cc
	for _, t := range order {
		var next []model.ObjSet
		clear(seen)
		for _, objs := range cands {
			clusters, err := mi.recluster(t, objs)
			if err != nil {
				return nil, err
			}
			for _, c := range clusters {
				keyBuf = in.Encode(c, scratch).AppendKey(keyBuf[:0])
				if seen[string(keyBuf)] {
					continue
				}
				seen[string(keyBuf)] = true
				next = append(next, c)
			}
		}
		if len(next) == 0 {
			return nil, nil // no spanning convoy in this window
		}
		cands = next
	}
	return cands, nil
}

// linearOrder returns the timestamps of [lo, hi] left to right (the
// ablation baseline for bisectOrder).
func linearOrder(lo, hi int32) []int32 {
	if hi < lo {
		return nil
	}
	out := make([]int32, 0, int(hi-lo)+1)
	for t := lo; t <= hi; t++ {
		out = append(out, t)
	}
	return out
}

// bisectOrder returns the timestamps of [lo, hi] in HWMT level order: the
// middle first, then the middles of the left and right halves, and so on
// (a BFS of the implicit binary search tree, matching the paper's Fig 4).
func bisectOrder(lo, hi int32) []int32 {
	if hi < lo {
		return nil
	}
	type span struct{ a, b int32 }
	queue := []span{{lo, hi}}
	out := make([]int32, 0, int(hi-lo)+1)
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s.b < s.a {
			continue
		}
		mid := s.a + (s.b-s.a)/2
		out = append(out, mid)
		queue = append(queue, span{s.a, mid - 1}, span{mid + 1, s.b})
	}
	return out
}
