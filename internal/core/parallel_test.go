package core

import (
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

// mineWith runs the full k/2-hop miner with a fixed worker count and
// returns the canonical string rendering of the result, so tests can
// assert byte-identical output across worker counts.
func mineWith(t *testing.T, ds *model.Dataset, m, k, workers int) string {
	t.Helper()
	cfg := DefaultConfig(m, k, minetest.Eps)
	cfg.Workers = workers
	out, rep, err := Mine(storage.NewMemStore(ds), cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if workers > 0 && rep.Workers != workers {
		t.Fatalf("report says %d workers, want %d", rep.Workers, workers)
	}
	s := ""
	for _, c := range out {
		s += c.String() + "\n"
	}
	return s
}

// TestParallelDeterminism is the hard requirement of the parallel engine:
// for every worker count the mined convoy set must be byte-identical to
// the sequential (Workers=1) run, on datasets with enough going on that
// all parallel phases (benchmark fan-out, HWMT fan-out, extension fan-out)
// actually carry work.
func TestParallelDeterminism(t *testing.T) {
	cases := []struct {
		name     string
		seed     int64
		nObj, nT int
		m, k     int
	}{
		{"small", 1, 20, 60, 3, 8},
		{"medium", 2, 40, 120, 3, 10},
		{"long-k", 3, 30, 200, 2, 24},
		{"dense", 4, 60, 80, 3, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := minetest.Random(tc.seed, tc.nObj, tc.nT)
			want := mineWith(t, ds, tc.m, tc.k, 1)
			if want == "" {
				t.Logf("note: no convoys mined for %s (still checks empty equality)", tc.name)
			}
			for _, workers := range []int{2, 3, 4, 8} {
				if got := mineWith(t, ds, tc.m, tc.k, workers); got != want {
					t.Fatalf("workers=%d output differs from sequential:\n--- sequential ---\n%s--- workers=%d ---\n%s",
						workers, want, workers, got)
				}
			}
		})
	}
}

// TestParallelReportCPUAccounting checks that the parallel phases record
// summed task time: CPU time must be at least a large fraction of wall
// time for a busy phase (they are equal modulo scheduling when workers=1).
func TestParallelReportCPUAccounting(t *testing.T) {
	ds := minetest.Random(5, 40, 120)
	cfg := DefaultConfig(3, 10, minetest.Eps)
	cfg.Workers = 4
	_, rep, err := Mine(storage.NewMemStore(ds), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", rep.Workers)
	}
	if rep.BenchmarkTime > 0 && rep.BenchmarkCPU == 0 {
		t.Fatal("benchmark phase ran but recorded no CPU time")
	}
	if rep.HWMTTime > 0 && rep.HWMTCPU == 0 {
		t.Fatal("HWMT phase ran but recorded no CPU time")
	}
	if rep.ExtendRight > 0 && rep.ExtendRightCPU == 0 {
		t.Fatal("extend-right phase ran but recorded no CPU time")
	}
}

// TestParallelAgainstReference cross-validates the parallel run against
// the invariant checkers: everything mined concurrently must really be a
// fully connected convoy of the dataset.
func TestParallelAgainstReference(t *testing.T) {
	ds := minetest.Random(6, 30, 100)
	cfg := DefaultConfig(3, 8, minetest.Eps)
	cfg.Workers = 8
	out, _, err := Mine(storage.NewMemStore(ds), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range out {
		if !minetest.IsFCConvoy(ds, c, cfg.M, minetest.Eps) {
			t.Fatalf("parallel run mined a non-FC convoy: %v", c)
		}
	}
	if i, j := minetest.AssertMaximal(out); i >= 0 {
		t.Fatalf("result not maximal: %d ⊂ %d", i, j)
	}
}
