package core

import (
	"repro/internal/dbscan"
	"repro/internal/model"
)

// Grouper abstracts the per-snapshot grouping operator that the k/2-hop
// pruning pipeline is generic over (the paper's §7 observes the technique
// transfers to other movement patterns — flocks swap density clustering for
// disk covering, see internal/flock).
//
// Requirements for correctness of the pipeline:
//
//   - Benchmark(rows) returns groups such that every pattern instance alive
//     at that timestamp has its object set contained in some group;
//   - Restricted(rows) does the same for a snapshot restricted to a
//     candidate's objects, and must be restriction-monotone: if a pattern's
//     objects group together in a superset snapshot, they still group
//     together (possibly inside a smaller group) in the restriction;
//   - Restricted must be deterministic — the same rows always produce the
//     same groups. The dense-set pipeline prunes duplicate candidate sets
//     before re-clustering (HWMT levels and the phase-2 intersection), which
//     is only sound when a pruned duplicate would have produced exactly the
//     groups its surviving twin produces. Both bundled groupers (DBSCAN
//     here, disk covering in internal/flock) are deterministic.
type Grouper struct {
	// Benchmark groups a full snapshot (used at benchmark points).
	Benchmark func(rows []model.ObjPos) []model.ObjSet
	// Restricted groups a snapshot already restricted to candidate objects
	// (used by HWMT and the extension phases).
	Restricted func(rows []model.ObjPos) []model.ObjSet
}

// ConvoyGrouper returns the paper's grouping operator: DBSCAN with minPts=m
// and radius eps at benchmark points and on restrictions.
func ConvoyGrouper(m int, eps float64) Grouper {
	f := func(rows []model.ObjPos) []model.ObjSet {
		return dbscan.Cluster(rows, eps, m)
	}
	return Grouper{Benchmark: f, Restricted: f}
}
