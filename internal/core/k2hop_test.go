package core

import (
	"fmt"
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/vcoda"
)

func mine(t *testing.T, ds *model.Dataset, m, k int) ([]model.Convoy, *Report) {
	t.Helper()
	out, rep, err := Mine(storage.NewMemStore(ds), DefaultConfig(m, k, minetest.Eps))
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	return out, rep
}

func TestSingleStableConvoy(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 19, Groups: [][]int32{{1, 2, 3}}},
	})
	got, rep := mine(t, ds, 3, 8)
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 19)}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if rep.BenchmarkPoints != 5 { // ticks 0,4,8,12,16 with hop 4
		t.Fatalf("benchmark points = %d, want 5", rep.BenchmarkPoints)
	}
	if rep.Convoys != 1 || rep.Spanning == 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestConvoyShorterThanKDropped(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 5, Groups: [][]int32{{1, 2, 3}}},
		{Start: 6, End: 19, Groups: [][]int32{{1}, {2}, {3}}},
	})
	got, _ := mine(t, ds, 3, 8)
	if len(got) != 0 {
		t.Fatalf("short convoy should be dropped, got %v", got)
	}
}

func TestConvoyNotAlignedToBenchmarks(t *testing.T) {
	// Convoy [3,14] with k=8 (hop 4, benchmarks 0,4,8,12,16): spans
	// benchmarks 4,8,12 and extends into both neighbouring windows.
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 2, Groups: [][]int32{{1}, {2}, {3}}},
		{Start: 3, End: 14, Groups: [][]int32{{1, 2, 3}}},
		{Start: 15, End: 19, Groups: [][]int32{{1}, {2}, {3}}},
	})
	got, _ := mine(t, ds, 3, 8)
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 3, 14)}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCoincidentalTogethernessPruned(t *testing.T) {
	// Objects together exactly at the benchmark points (0,4,8) but apart at
	// every interior timestamp: HWMT must prune them, finding no convoy.
	groups := map[int32][][]int32{}
	for tt := int32(0); tt <= 11; tt++ {
		if tt%4 == 0 {
			groups[tt] = [][]int32{{1, 2, 3}}
		} else {
			groups[tt] = [][]int32{{1}, {2}, {3}}
		}
	}
	ds := minetest.Build(groups)
	got, rep := mine(t, ds, 3, 8)
	if len(got) != 0 {
		t.Fatalf("coincidental togetherness should be pruned, got %v", got)
	}
	if rep.Spanning != 0 {
		t.Fatalf("no spanning convoys expected, got %d", rep.Spanning)
	}
}

func TestBridgeObjectValidation(t *testing.T) {
	// Objects 1,2,3 together [0,19] but at t=10 connected only through
	// bridge object 9: FC convoys must split at t=10.
	groups := map[int32][][]int32{}
	for tt := int32(0); tt <= 19; tt++ {
		if tt == 10 {
			groups[tt] = [][]int32{{1, 2, 9, 3}}
		} else {
			groups[tt] = [][]int32{{1, 2, 3}, {9}}
		}
	}
	ds := minetest.Build(groups)
	got, _ := mine(t, ds, 3, 8)
	want := []model.Convoy{
		model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 9),
		model.NewConvoy(model.NewObjSet(1, 2, 3), 11, 19),
	}
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestShrinkAndSplitConvoys(t *testing.T) {
	// abcd [0,11]; then abc [12,19]; separately ef join cd [8,19].
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 11, Groups: [][]int32{{1, 2, 3, 4}, {5, 6}}},
		{Start: 12, End: 19, Groups: [][]int32{{1, 2, 3}, {4, 5, 6}}},
	})
	got, _ := mine(t, ds, 3, 6)
	want := vcoda.Reference(ds, 3, 6, minetest.Eps)
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestKEdgeCases(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2, 3}}},
	})
	for _, k := range []int{2, 3, 4, 5, 9, 10} {
		got, _ := mine(t, ds, 3, k)
		want := vcoda.Reference(ds, 3, k, minetest.Eps)
		if !model.ConvoysEqual(got, want) {
			t.Fatalf("k=%d: got %v, want %v", k, got, want)
		}
	}
	// k larger than the dataset: nothing.
	if got, _ := mine(t, ds, 3, 11); len(got) != 0 {
		t.Fatalf("k>|T| should give nothing, got %v", got)
	}
}

func TestKTooSmallRejected(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{{Start: 0, End: 3, Groups: [][]int32{{1, 2}}}})
	if _, _, err := Mine(storage.NewMemStore(ds), DefaultConfig(2, 1, minetest.Eps)); err == nil {
		t.Fatalf("K=1 should be rejected")
	}
	if _, _, err := Mine(storage.NewMemStore(ds), DefaultConfig(0, 4, minetest.Eps)); err == nil {
		t.Fatalf("M=0 should be rejected")
	}
}

func TestEmptyDataset(t *testing.T) {
	got, rep := mine(t, model.NewDataset(nil), 3, 4)
	if len(got) != 0 || rep.Convoys != 0 {
		t.Fatalf("empty dataset should yield nothing")
	}
}

// The central correctness property: k/2-hop produces exactly the same
// maximal FC convoys as the reference miner, across random datasets and
// parameter combinations.
func TestMatchesReferenceQuick(t *testing.T) {
	trials := 0
	for seed := int64(0); seed < 25; seed++ {
		for _, mk := range []struct{ m, k int }{{2, 3}, {2, 5}, {3, 4}, {3, 8}, {4, 6}} {
			ds := minetest.Random(seed, 10, 18)
			want := vcoda.Reference(ds, mk.m, mk.k, minetest.Eps)
			got, _, err := Mine(storage.NewMemStore(ds), DefaultConfig(mk.m, mk.k, minetest.Eps))
			if err != nil {
				t.Fatalf("seed %d m=%d k=%d: %v", seed, mk.m, mk.k, err)
			}
			if !model.ConvoysEqual(got, want) {
				t.Fatalf("seed %d m=%d k=%d:\n got %v\nwant %v", seed, mk.m, mk.k, got, want)
			}
			trials++
		}
	}
	if trials != 125 {
		t.Fatalf("expected 125 trials, ran %d", trials)
	}
}

func TestOutputsAreFCAndMaximal(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		ds := minetest.Random(seed, 14, 24)
		got, _ := mine(t, ds, 3, 5)
		for _, c := range got {
			if !minetest.IsFCConvoy(ds, c, 3, minetest.Eps) {
				t.Fatalf("seed %d: %v not FC", seed, c)
			}
		}
		if i, j := minetest.AssertMaximal(got); i >= 0 {
			t.Fatalf("seed %d: %v ⊑ %v", seed, got[i], got[j])
		}
	}
}

func TestPruningCountsReported(t *testing.T) {
	// A dataset with lots of noise and one convoy: the points processed
	// must be far fewer than the total (the paper's pruning claim).
	groups := map[int32][][]int32{}
	for tt := int32(0); tt < 60; tt++ {
		gs := [][]int32{{1, 2, 3}}
		// 40 noise objects, each in its own far-away group.
		for o := int32(10); o < 50; o++ {
			gs = append(gs, []int32{o})
		}
		groups[tt] = gs
	}
	ds := minetest.Build(groups)
	ms := storage.NewMemStore(ds)
	_, rep, err := Mine(ms, DefaultConfig(3, 20, minetest.Eps))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(ds.NumPoints())
	if rep.PointsProcessed >= total {
		t.Fatalf("no pruning: processed %d of %d", rep.PointsProcessed, total)
	}
	// With hop=10 only 6 of 60 ticks are scanned in full; the rest of the
	// reads are convoy-member fetches. Expect well under half the data.
	if rep.PointsProcessed > total/2 {
		t.Fatalf("weak pruning: processed %d of %d", rep.PointsProcessed, total)
	}
}

func TestBisectOrder(t *testing.T) {
	got := bisectOrder(1, 7)
	want := []int32{4, 2, 6, 1, 3, 5, 7}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("bisectOrder(1,7) = %v, want %v", got, want)
	}
	if bisectOrder(5, 4) != nil {
		t.Fatalf("empty interior should give nil")
	}
	if got := bisectOrder(3, 3); len(got) != 1 || got[0] != 3 {
		t.Fatalf("singleton = %v", got)
	}
	// Every timestamp appears exactly once.
	got = bisectOrder(0, 100)
	seen := map[int32]bool{}
	for _, x := range got {
		if seen[x] {
			t.Fatalf("duplicate %d", x)
		}
		seen[x] = true
	}
	if len(seen) != 101 {
		t.Fatalf("covered %d of 101", len(seen))
	}
}

func TestReExtendFindsShrunkenConvoys(t *testing.T) {
	// Construct the case Algorithm 3 misses without re-extension:
	// abc together [0,9]; ab alone continue [10,15]; and ab also were
	// together earlier at [0,...] — after extendRight abc closes at 9 with
	// subset ab continuing right to 15; extendLeft then keeps ab at start 0.
	// Now make c rejoin on the left only: cd together... Simpler: verify
	// against the reference on a scenario with asymmetric membership.
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 3, Groups: [][]int32{{1, 2}, {3}}},
		{Start: 4, End: 9, Groups: [][]int32{{1, 2, 3}}},
		{Start: 10, End: 15, Groups: [][]int32{{1, 2}, {3}}},
	})
	got, _ := mine(t, ds, 2, 4)
	want := vcoda.Reference(ds, 2, 4, minetest.Eps)
	if !model.ConvoysEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLargerRandomAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(200); seed < 206; seed++ {
		ds := minetest.Random(seed, 20, 40)
		for _, k := range []int{4, 7, 12} {
			want := vcoda.Reference(ds, 3, k, minetest.Eps)
			got, _, err := Mine(storage.NewMemStore(ds), DefaultConfig(3, k, minetest.Eps))
			if err != nil {
				t.Fatal(err)
			}
			if !model.ConvoysEqual(got, want) {
				t.Fatalf("seed %d k=%d:\n got %v\nwant %v", seed, k, got, want)
			}
		}
	}
}
