package core
