// Package core implements the paper's contribution: the k/2-hop convoy
// mining algorithm (§4). The pipeline is
//
//	benchmark clustering → candidate clusters → HWMT per hop-window →
//	DCM-merge → extend right/left → full-connectivity validation
//
// Only the benchmark points (every ⌊k/2⌋-th timestamp) are clustered in
// full; everything else touches only the objects that survived the
// candidate-cluster intersection, which is why the algorithm prunes the
// vast majority of the data (paper Table 5).
//
// The independent units of work — benchmark clusterings, hop-windows,
// extension walks — fan out over a bounded worker pool (Config.Workers);
// results are collected index-addressed so the output is byte-identical
// for every worker count. See docs/ARCHITECTURE.md for the pipeline
// diagram and where the pool hooks in.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/dcm"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/storage"
	"repro/internal/vcoda"
)

// Config carries the mining parameters.
type Config struct {
	// M is the minimum convoy size (objects), K the minimum lifetime
	// (timestamps, ≥ 2), Eps the density-connection radius.
	M   int
	K   int
	Eps float64
	// ReExtend controls the post-extension fixpoint: when the object set of
	// a convoy shrinks during the left extension, the shrunken convoy may be
	// further extensible to the right; the paper's Algorithm 3 extends once
	// in each direction, which can miss such convoys. Enabled by default via
	// DefaultConfig (see DESIGN.md §3).
	ReExtend bool
	// MaxReExtend bounds the fixpoint iterations (safety valve; 0 = 4).
	MaxReExtend int
	// LinearHWMT processes hop-window timestamps left-to-right instead of
	// in bisection order. Results are identical; the bisection order prunes
	// coincidentally-together candidates after fewer re-clusterings (paper
	// §4.3). Exists for the ablation benchmarks.
	LinearHWMT bool
	// Workers bounds the goroutines of the parallel phases: benchmark
	// clustering (each benchmark DBSCAN run is independent), HWMT (each
	// hop-window is independent once the candidate clusters are fixed) and
	// extension (each merged convoy extends independently). Results are
	// collected index-addressed, so the output is byte-identical for every
	// worker count. ≤ 0 means one worker per core (runtime.GOMAXPROCS); 1
	// is the sequential path. The store must tolerate concurrent reads —
	// all bundled engines do.
	Workers int
}

// DefaultConfig returns a Config with the correction flags enabled.
func DefaultConfig(m, k int, eps float64) Config {
	return Config{M: m, K: k, Eps: eps, ReExtend: true}
}

// Report exposes per-phase timings and pruning counters (paper Fig 8i and
// Table 5). The *Time/Extend* fields are wall clock; the *CPU fields sum
// the per-task time across workers for the parallel phases, so CPU/wall
// approximates the effective speedup a phase got from the pool.
type Report struct {
	BenchmarkTime time.Duration // benchmark-point clustering
	CandidateTime time.Duration // cluster-set intersection
	HWMTTime      time.Duration // hop-window mining
	MergeTime     time.Duration // DCM merge
	ExtendRight   time.Duration
	ExtendLeft    time.Duration
	ValidateTime  time.Duration

	Workers        int           // worker-pool size the run used
	BenchmarkCPU   time.Duration // summed task time of benchmark clustering
	HWMTCPU        time.Duration // summed task time of hop-window mining
	ExtendRightCPU time.Duration
	ExtendLeftCPU  time.Duration

	BenchmarkPoints int // number of benchmark timestamps clustered
	HopWindows      int // windows with non-empty candidate sets
	Spanning        int // 1st-order spanning convoys
	Merged          int // maximal spanning convoys
	PreValidation   int // convoys entering validation (Fig 8j)
	Convoys         int // final FC convoys

	PointsProcessed int64 // points read from the store during the run
}

// Total returns the summed phase time.
func (r *Report) Total() time.Duration {
	return r.BenchmarkTime + r.CandidateTime + r.HWMTTime + r.MergeTime +
		r.ExtendRight + r.ExtendLeft + r.ValidateTime
}

// Mine runs k/2-hop against a store and returns the maximal fully connected
// (M,Eps)-convoys with lifetime ≥ K.
func Mine(store storage.Store, cfg Config) ([]model.Convoy, *Report, error) {
	candidates, rep, err := MineCandidates(store, cfg, ConvoyGrouper(cfg.M, cfg.Eps))
	if err != nil {
		return nil, rep, err
	}
	rep.PreValidation = len(candidates)

	// Phase 6: full-connectivity validation (convoy-specific; the generic
	// pipeline only guarantees partially connected candidates).
	readsBefore := store.Stats().Snapshot().PointsRead - rep.PointsProcessed
	start := time.Now()
	out := model.NewConvoySet()
	for _, v := range candidates {
		if out.Covers(v) {
			continue
		}
		sub, err := vcoda.RestrictFromStore(store, v.Objs, v.Interval())
		if err != nil {
			return nil, rep, err
		}
		for _, fc := range vcoda.Validate(sub, []model.Convoy{v}, cfg.M, cfg.K, cfg.Eps) {
			out.Update(fc)
		}
	}
	rep.ValidateTime = time.Since(start)
	res := out.Sorted()
	rep.Convoys = len(res)
	rep.PointsProcessed = store.Stats().Snapshot().PointsRead - readsBefore
	return res, rep, nil
}

// MineCandidates runs the pattern-generic part of the k/2-hop pipeline
// (phases 1–5: benchmark grouping, candidate intersection, HWMT, merge,
// extension) and returns the maximal candidates of size ≥ M and length ≥ K.
// Convoy mining validates these for full connectivity afterwards; patterns
// without a connectivity subtlety (flocks) use them directly.
func MineCandidates(store storage.Store, cfg Config, grouper Grouper) ([]model.Convoy, *Report, error) {
	if cfg.K < 2 {
		return nil, nil, errors.New("core: K must be ≥ 2 (use a full-sweep miner for K=1)")
	}
	if cfg.M < 1 {
		return nil, nil, errors.New("core: M must be ≥ 1")
	}
	if cfg.MaxReExtend <= 0 {
		cfg.MaxReExtend = 4
	}
	workers := pool.Size(cfg.Workers)
	rep := &Report{Workers: workers}
	readsBefore := store.Stats().Snapshot().PointsRead
	defer func() {
		rep.PointsProcessed = store.Stats().Snapshot().PointsRead - readsBefore
	}()

	ts, te := store.TimeRange()
	if te < ts || int(te-ts)+1 < cfg.K {
		return nil, rep, nil // dataset shorter than K: no patterns possible
	}
	mi := &miner{store: store, cfg: cfg, ts: ts, te: te, grouper: grouper, workers: workers}

	// Phase 1: benchmark points and benchmark clusters. Every benchmark
	// DBSCAN run is independent, so the snapshots fan out over the pool;
	// results land in index-addressed slots to keep the order deterministic.
	start := time.Now()
	hop := int32(cfg.K / 2)
	var bps []int32
	for b := ts; b <= te; b += hop {
		bps = append(bps, b)
	}
	rep.BenchmarkPoints = len(bps)
	benchClusters := make([][]model.ObjSet, len(bps))
	var benchCPU atomic.Int64
	err := pool.ForEach(workers, len(bps), func(i int) error {
		t0 := time.Now()
		defer func() { benchCPU.Add(int64(time.Since(t0))) }()
		snap, err := store.Snapshot(bps[i])
		if err != nil {
			return fmt.Errorf("core: benchmark snapshot %d: %w", bps[i], err)
		}
		benchClusters[i] = grouper.Benchmark(snap)
		return nil
	})
	if err != nil {
		return nil, rep, err
	}
	rep.BenchmarkTime = time.Since(start)
	rep.BenchmarkCPU = time.Duration(benchCPU.Load())

	// Phase 2: candidate clusters per hop-window.
	start = time.Now()
	cc := make([][]model.ObjSet, len(bps)-1)
	for i := 0; i+1 < len(bps); i++ {
		cc[i] = intersectClusterSets(benchClusters[i], benchClusters[i+1], cfg.M)
		if len(cc[i]) > 0 {
			rep.HopWindows++
		}
	}
	rep.CandidateTime = time.Since(start)

	// Phase 3: HWMT per hop-window → 1st-order spanning convoys. Windows
	// are independent once the candidate clusters are fixed; fan out and
	// collect per-window so the spanning order matches the sequential run.
	start = time.Now()
	spanning := make([][]model.Convoy, len(cc))
	var hwmtCPU atomic.Int64
	err = pool.ForEach(workers, len(cc), func(i int) error {
		if len(cc[i]) == 0 {
			return nil
		}
		t0 := time.Now()
		defer func() { hwmtCPU.Add(int64(time.Since(t0))) }()
		surv, err := mi.hwmt(bps[i]+1, bps[i+1]-1, cc[i])
		if err != nil {
			return err
		}
		for _, objs := range surv {
			spanning[i] = append(spanning[i], model.Convoy{Objs: objs, Start: bps[i], End: bps[i+1]})
		}
		return nil
	})
	if err != nil {
		return nil, rep, err
	}
	for i := range spanning {
		rep.Spanning += len(spanning[i])
	}
	rep.HWMTTime = time.Since(start)
	rep.HWMTCPU = time.Duration(hwmtCPU.Load())

	// Phase 4: merge spanning convoys across windows.
	start = time.Now()
	merged := dcm.Merge(spanning, cfg.M)
	rep.Merged = len(merged)
	rep.MergeTime = time.Since(start)

	// Phase 5: extend to the true starts and ends.
	extended, err := mi.extendAll(merged, rep)
	if err != nil {
		return nil, rep, err
	}
	// Only candidates satisfying K and M can be (or cover) final patterns.
	var candidates []model.Convoy
	for _, v := range extended {
		if v.Len() >= cfg.K && v.Size() >= cfg.M {
			candidates = append(candidates, v)
		}
	}
	return candidates, rep, nil
}

// miner carries the store and parameters through the phases.
type miner struct {
	store   storage.Store
	cfg     Config
	ts, te  int32
	grouper Grouper
	workers int
}

// recluster fetches the positions of objs at t and groups them among
// themselves (restricted grouping), returning groups of size ≥ M.
func (mi *miner) recluster(t int32, objs model.ObjSet) ([]model.ObjSet, error) {
	rows, err := mi.store.Fetch(t, objs)
	if err != nil {
		return nil, fmt.Errorf("core: fetch t=%d: %w", t, err)
	}
	return mi.grouper.Restricted(rows), nil
}

// intersectClusterSets computes the candidate clusters CC = {c ∩ c' : |c ∩
// c'| ≥ m} of two benchmark cluster sets.
//
// The pairwise intersections run word-parallel: the window's objects are
// interned (the universe is ∪a — an id absent from the left benchmark
// cannot appear in any intersection), each cluster is encoded once, and
// every pair costs one fused AND+popcount over the packed words instead of
// a sorted-slice merge. Only pairs meeting the m threshold materialize an
// ObjSet.
//
// Distinct benchmark pairs frequently produce the same intersection; such
// duplicates are emitted once. Downstream cost (HWMT re-clustering) is
// per-set, and identical sets behave identically through every later
// phase, so duplicate candidates only multiply work without ever changing
// the mined convoys.
func intersectClusterSets(a, b []model.ObjSet, m int) []model.ObjSet {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	in := model.Intern(model.Universe(nil, a))
	da := make([]*bitset.Bits, len(a))
	for i, s := range a {
		da[i] = in.Encode(s, nil)
	}
	db := make([]*bitset.Bits, len(b))
	for j, s := range b {
		db[j] = in.Encode(s, nil)
	}
	scratch := bitset.New(in.Len())
	var out []model.ObjSet
	var seen map[string]bool
	var keyBuf []byte
	for i := range da {
		for j := range db {
			if scratch.AndOf(da[i], db[j]) < m {
				continue
			}
			if seen == nil {
				seen = make(map[string]bool)
			}
			keyBuf = scratch.AppendKey(keyBuf[:0])
			if seen[string(keyBuf)] {
				continue
			}
			seen[string(keyBuf)] = true
			out = append(out, in.Decode(scratch))
		}
	}
	return out
}
