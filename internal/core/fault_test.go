package core

import (
	"errors"
	"testing"

	"repro/internal/minetest"
	"repro/internal/storage"
	"repro/internal/storage/storetest"
)

// Every phase of the pipeline must propagate storage errors instead of
// swallowing them or panicking, no matter when the store starts failing.
func TestStorageFaultsPropagate(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 19, Groups: [][]int32{{1, 2, 3}, {7, 8, 9}}},
	})
	// First find out how many store operations a clean run needs.
	clean := storetest.NewFaultStore(storage.NewMemStore(ds), 1<<40)
	if _, _, err := Mine(clean, DefaultConfig(3, 8, minetest.Eps)); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	total := clean.Ops()
	if total < 10 {
		t.Fatalf("scenario too small to exercise fault paths: %d ops", total)
	}
	// Fail at a sample of positions across the whole run (every phase).
	for budget := int64(0); budget < total; budget += total/7 + 1 {
		fs := storetest.NewFaultStore(storage.NewMemStore(ds), budget)
		_, _, err := Mine(fs, DefaultConfig(3, 8, minetest.Eps))
		if !errors.Is(err, storetest.ErrInjected) {
			t.Fatalf("budget %d: error = %v, want injected fault", budget, err)
		}
	}
}

func TestFaultDuringValidationPhase(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 19, Groups: [][]int32{{1, 2, 3}}},
	})
	clean := storetest.NewFaultStore(storage.NewMemStore(ds), 1<<40)
	if _, _, err := Mine(clean, DefaultConfig(3, 8, minetest.Eps)); err != nil {
		t.Fatal(err)
	}
	// Fail on the very last operation: that lands in validation's
	// restriction fetches.
	fs := storetest.NewFaultStore(storage.NewMemStore(ds), clean.Ops()-1)
	if _, _, err := Mine(fs, DefaultConfig(3, 8, minetest.Eps)); !errors.Is(err, storetest.ErrInjected) {
		t.Fatalf("error = %v, want injected fault", err)
	}
}
