package core

import (
	"testing"
	"time"

	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

func newTestMiner(ds *model.Dataset, m, k int) *miner {
	ts, te := ds.TimeRange()
	cfg := DefaultConfig(m, k, minetest.Eps)
	return &miner{
		store:   storage.NewMemStore(ds),
		cfg:     cfg,
		ts:      ts,
		te:      te,
		grouper: ConvoyGrouper(m, minetest.Eps),
	}
}

func TestExtendRightGrowsToTrueEnd(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 13, Groups: [][]int32{{1, 2, 3}}},
		{Start: 14, End: 19, Groups: [][]int32{{1}, {2}, {3}}},
	})
	mi := newTestMiner(ds, 3, 8)
	// Spanning skeleton [4, 8]; the true convoy runs to 13.
	in := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 4, 8)}
	out, err := mi.extend(in, +1, new(time.Duration))
	if err != nil {
		t.Fatal(err)
	}
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 4, 13)}
	if !model.ConvoysEqual(out, want) {
		t.Fatalf("extend right = %v, want %v", out, want)
	}
}

func TestExtendLeftGrowsToTrueStart(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 2, Groups: [][]int32{{1}, {2}, {3}}},
		{Start: 3, End: 19, Groups: [][]int32{{1, 2, 3}}},
	})
	mi := newTestMiner(ds, 3, 8)
	in := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 8, 19)}
	out, err := mi.extend(in, -1, new(time.Duration))
	if err != nil {
		t.Fatal(err)
	}
	want := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 3, 19)}
	if !model.ConvoysEqual(out, want) {
		t.Fatalf("extend left = %v, want %v", out, want)
	}
}

func TestExtendSplitsIntoSubgroups(t *testing.T) {
	// abcd spanning [4,8]; beyond 8 only ab continue together (cd split off
	// far away but also together).
	groups := map[int32][][]int32{}
	for tt := int32(0); tt <= 8; tt++ {
		groups[tt] = [][]int32{{1, 2, 3, 4}}
	}
	for tt := int32(9); tt <= 15; tt++ {
		groups[tt] = [][]int32{{1, 2}, {3, 4}}
	}
	ds := minetest.Build(groups)
	mi := newTestMiner(ds, 2, 4)
	in := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3, 4), 4, 8)}
	out, err := mi.extend(in, +1, new(time.Duration))
	if err != nil {
		t.Fatal(err)
	}
	want := []model.Convoy{
		model.NewConvoy(model.NewObjSet(1, 2, 3, 4), 4, 8),
		model.NewConvoy(model.NewObjSet(1, 2), 4, 15),
		model.NewConvoy(model.NewObjSet(3, 4), 4, 15),
	}
	if !model.ConvoysEqual(out, want) {
		t.Fatalf("extend split = %v, want %v", out, want)
	}
}

func TestExtendStopsAtDatasetBoundary(t *testing.T) {
	ds := minetest.BuildRanges([]minetest.Range{
		{Start: 0, End: 9, Groups: [][]int32{{1, 2, 3}}},
	})
	mi := newTestMiner(ds, 3, 4)
	in := []model.Convoy{model.NewConvoy(model.NewObjSet(1, 2, 3), 4, 8)}
	out, err := mi.extend(in, +1, new(time.Duration))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].End != 9 {
		t.Fatalf("extend to boundary = %v", out)
	}
}

func TestExtendDominatePrunesInFlight(t *testing.T) {
	// encode builds the dense candidates the way extendOne does: one shared
	// interner per walk, every candidate encoded under it.
	encode := func(cs ...model.Convoy) []extCand {
		var all []model.ObjSet
		for _, c := range cs {
			all = append(all, c.Objs)
		}
		in := model.Intern(model.Universe(nil, all))
		out := make([]extCand, len(cs))
		for i, c := range cs {
			out[i] = extCand{v: c, bits: in.Encode(c.Objs, nil)}
		}
		return out
	}
	a := model.NewConvoy(model.NewObjSet(1, 2, 3), 0, 10)
	sub := model.NewConvoy(model.NewObjSet(1, 2), 2, 10) // same moving edge (right)
	out := extendDominate(encode(sub, a), +1)
	if len(out) != 1 || !out[0].v.Equal(a) {
		t.Fatalf("dominate = %v", out)
	}
	// Left direction: fixed edge is End.
	b := model.NewConvoy(model.NewObjSet(1, 2, 3), 5, 12)
	subL := model.NewConvoy(model.NewObjSet(2, 3), 5, 10)
	out = extendDominate(encode(b, subL), -1)
	if len(out) != 1 || !out[0].v.Equal(b) {
		t.Fatalf("dominate left = %v", out)
	}
	// Non-dominated pair survives.
	c := model.NewConvoy(model.NewObjSet(4, 5), 0, 10)
	out = extendDominate(encode(a, c), +1)
	if len(out) != 2 {
		t.Fatalf("unrelated pruned: %v", out)
	}
}

func TestIntersectClusterSets(t *testing.T) {
	a := []model.ObjSet{
		model.NewObjSet(1, 2, 3, 4),
		model.NewObjSet(5, 6, 7, 8),
		model.NewObjSet(9, 10, 11),
	}
	b := []model.ObjSet{
		model.NewObjSet(1, 2, 3),
		model.NewObjSet(4, 5),
		model.NewObjSet(6, 7, 8),
		model.NewObjSet(9, 10),
	}
	// The paper's §4.2 worked example with m=3.
	got := intersectClusterSets(a, b, 3)
	want := []model.ObjSet{model.NewObjSet(1, 2, 3), model.NewObjSet(6, 7, 8)}
	if len(got) != 2 || !got[0].Equal(want[0]) || !got[1].Equal(want[1]) {
		t.Fatalf("CC = %v, want %v", got, want)
	}
	// m=2 keeps the {9,10} intersection too; the singleton intersections
	// {4} and {5} stay dropped (the paper's example discards them).
	if got := intersectClusterSets(a, b, 2); len(got) != 3 {
		t.Fatalf("CC(m=2) = %v", got)
	}
}
