package core

import (
	"math/rand"
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
)

// coincidentalDataset builds the workload the paper's §4.3 describes: many
// pairs are together at and around the benchmark points (adjacent
// timestamps) but drift apart towards the middle of each hop-window. The
// bisection order probes the window middle first and kills such candidates
// after one re-clustering; the left-to-right order wades through the
// together-looking prefix first. The phase below matches k=16 (hop 8):
// separation happens at ticks ≡ 3..5 (mod 8).
func coincidentalDataset(seed int64, nObj, nTicks int) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	groups := map[int32][][]int32{}
	for t := 0; t < nTicks; t++ {
		var gs [][]int32
		// One persistent convoy.
		gs = append(gs, []int32{1, 2, 3})
		// Coincidental pairs: together near window borders, apart in the
		// middle of the window.
		phase := t % 8
		midWindow := phase >= 3 && phase <= 5
		for o := int32(10); o < int32(10+nObj); o += 2 {
			if !midWindow && rng.Float64() < 0.95 {
				gs = append(gs, []int32{o, o + 1})
			} else {
				gs = append(gs, []int32{o}, []int32{o + 1})
			}
		}
		groups[int32(t)] = gs
	}
	return minetest.Build(groups)
}

// The two HWMT orders must produce identical results.
func TestLinearHWMTSameResults(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ds := minetest.Random(seed, 12, 24)
		for _, k := range []int{4, 8, 12} {
			cfgB := DefaultConfig(3, k, minetest.Eps)
			cfgL := cfgB
			cfgL.LinearHWMT = true
			got, _, err := Mine(storage.NewMemStore(ds), cfgL)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := Mine(storage.NewMemStore(ds), cfgB)
			if err != nil {
				t.Fatal(err)
			}
			if !model.ConvoysEqual(got, want) {
				t.Fatalf("seed %d k=%d: linear %v != bisect %v", seed, k, got, want)
			}
		}
	}
}

// The bisection order must abort dead hop-windows with no more point reads
// than the linear order on coincidental-togetherness data.
func TestBisectionPrunesEarlier(t *testing.T) {
	ds := coincidentalDataset(3, 30, 60)
	run := func(linear bool) int64 {
		ms := storage.NewMemStore(ds)
		cfg := DefaultConfig(2, 16, minetest.Eps)
		cfg.LinearHWMT = linear
		if _, _, err := Mine(ms, cfg); err != nil {
			t.Fatal(err)
		}
		return ms.Stats().Snapshot().PointsRead
	}
	bisect := run(false)
	linear := run(true)
	if bisect > linear {
		t.Fatalf("bisection read more than linear: %d > %d", bisect, linear)
	}
}

func BenchmarkHWMTBisect(b *testing.B) {
	ds := coincidentalDataset(3, 60, 120)
	cfg := DefaultConfig(2, 16, minetest.Eps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Mine(storage.NewMemStore(ds), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHWMTLinear(b *testing.B) {
	ds := coincidentalDataset(3, 60, 120)
	cfg := DefaultConfig(2, 16, minetest.Eps)
	cfg.LinearHWMT = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Mine(storage.NewMemStore(ds), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReExtendOn(b *testing.B) {
	ds := minetest.Random(5, 25, 60)
	cfg := DefaultConfig(3, 10, minetest.Eps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Mine(storage.NewMemStore(ds), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReExtendOff(b *testing.B) {
	ds := minetest.Random(5, 25, 60)
	cfg := DefaultConfig(3, 10, minetest.Eps)
	cfg.ReExtend = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Mine(storage.NewMemStore(ds), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
