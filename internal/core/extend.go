package core

import (
	"time"

	"repro/internal/model"
)

// extendAll grows the maximal spanning convoys to their true starts and
// ends (paper §4.5, Algorithm 3): first to the right, then to the left.
// When cfg.ReExtend is set, the two passes repeat until a fixpoint, because
// an object set that shrank while extending left may be further extensible
// to the right (and vice versa) — see DESIGN.md §3.
func (mi *miner) extendAll(merged []model.Convoy, rep *Report) ([]model.Convoy, error) {
	cur := merged
	var prevKeys string
	for iter := 0; ; iter++ {
		start := time.Now()
		right, err := mi.extend(cur, +1)
		if err != nil {
			return nil, err
		}
		rep.ExtendRight += time.Since(start)

		start = time.Now()
		both, err := mi.extend(right, -1)
		if err != nil {
			return nil, err
		}
		rep.ExtendLeft += time.Since(start)
		cur = both

		if !mi.cfg.ReExtend || iter+1 >= mi.cfg.MaxReExtend {
			return cur, nil
		}
		keys := convoyKeys(cur)
		if keys == prevKeys {
			return cur, nil
		}
		prevKeys = keys
	}
}

// extend grows every convoy one timestamp at a time in the given direction
// (+1 = right, -1 = left), re-clustering the convoy's objects at each next
// timestamp. A convoy that cannot continue intact is emitted as closed in
// that direction; clusters that survive (possibly smaller) continue.
func (mi *miner) extend(convoys []model.Convoy, dir int32) ([]model.Convoy, error) {
	out := model.NewConvoySet()
	for _, vsp := range convoys {
		prev := []model.Convoy{vsp}
		t := edge(vsp, dir) + dir
		for len(prev) > 0 && t >= mi.ts && t <= mi.te {
			var next []model.Convoy
			for _, v := range prev {
				clusters, err := mi.recluster(t, v.Objs)
				if err != nil {
					return nil, err
				}
				if len(clusters) == 0 {
					out.Update(v) // closed in this direction
					continue
				}
				survived := false
				for _, c := range clusters {
					w := v
					w.Objs = c
					if dir > 0 {
						w.End = t
					} else {
						w.Start = t
					}
					next = append(next, w)
					if len(c) == len(v.Objs) {
						survived = true
					}
				}
				if !survived {
					// v split or shrank: in its current shape it is closed.
					out.Update(v)
				}
			}
			prev = extendDominate(next, dir)
			t += dir
		}
		// Hit the dataset boundary: whatever is still alive is closed.
		for _, v := range prev {
			out.Update(v)
		}
	}
	return out.Sorted(), nil
}

func edge(v model.Convoy, dir int32) int32 {
	if dir > 0 {
		return v.End
	}
	return v.Start
}

// extendDominate prunes, among in-flight extension candidates that share
// the moving edge, those whose object set is a subset of another candidate
// with an equal-or-wider fixed edge.
func extendDominate(cands []model.Convoy, dir int32) []model.Convoy {
	fixedLE := func(a, b model.Convoy) bool { // fixed edge of a at least as wide as b's
		if dir > 0 {
			return a.Start <= b.Start
		}
		return a.End >= b.End
	}
	var out []model.Convoy
	for _, c := range cands {
		dominated := false
		for j := 0; j < len(out); j++ {
			switch {
			case fixedLE(out[j], c) && c.Objs.SubsetOf(out[j].Objs):
				dominated = true
			case fixedLE(c, out[j]) && out[j].Objs.SubsetOf(c.Objs):
				out[j] = out[len(out)-1]
				out = out[:len(out)-1]
				j--
			}
			if dominated {
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// convoyKeys builds a canonical fingerprint of a convoy slice for fixpoint
// detection.
func convoyKeys(cs []model.Convoy) string {
	sorted := make([]model.Convoy, len(cs))
	copy(sorted, cs)
	model.SortConvoys(sorted)
	key := ""
	for _, c := range sorted {
		key += c.Key() + ";"
	}
	return key
}
