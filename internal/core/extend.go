package core

import (
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/pool"
)

// extendAll grows the maximal spanning convoys to their true starts and
// ends (paper §4.5, Algorithm 3): first to the right, then to the left.
// When cfg.ReExtend is set, the two passes repeat until a fixpoint, because
// an object set that shrank while extending left may be further extensible
// to the right (and vice versa) — see DESIGN.md §3.
func (mi *miner) extendAll(merged []model.Convoy, rep *Report) ([]model.Convoy, error) {
	cur := merged
	var prevKeys string
	for iter := 0; ; iter++ {
		start := time.Now()
		right, err := mi.extend(cur, +1, &rep.ExtendRightCPU)
		if err != nil {
			return nil, err
		}
		rep.ExtendRight += time.Since(start)

		start = time.Now()
		both, err := mi.extend(right, -1, &rep.ExtendLeftCPU)
		if err != nil {
			return nil, err
		}
		rep.ExtendLeft += time.Since(start)
		cur = both

		if !mi.cfg.ReExtend || iter+1 >= mi.cfg.MaxReExtend {
			return cur, nil
		}
		keys := convoyKeys(cur)
		if keys == prevKeys {
			return cur, nil
		}
		prevKeys = keys
	}
}

// extend grows every convoy in the given direction (+1 = right, -1 = left).
// Each convoy extends independently, so the walks fan out over the worker
// pool; each task collects its closed convoys in a local slice and the
// maximality merge replays them in task-index order, which makes the result
// identical to the sequential walk for every worker count (the maximality
// filter is also order-confluent, but replaying in order keeps even the
// internal set states bit-for-bit equal). Summed task time lands in cpu.
func (mi *miner) extend(convoys []model.Convoy, dir int32, cpu *time.Duration) ([]model.Convoy, error) {
	closed := make([][]model.Convoy, len(convoys))
	var taskCPU atomic.Int64
	err := pool.ForEach(mi.workers, len(convoys), func(i int) error {
		t0 := time.Now()
		defer func() { taskCPU.Add(int64(time.Since(t0))) }()
		cs, err := mi.extendOne(convoys[i], dir)
		if err != nil {
			return err
		}
		closed[i] = cs
		return nil
	})
	if err != nil {
		return nil, err
	}
	*cpu += time.Duration(taskCPU.Load())
	out := model.NewConvoySet()
	for _, cs := range closed {
		out.UpdateAll(cs)
	}
	return out.Sorted(), nil
}

// extCand is one in-flight extension candidate: the convoy plus its dense
// encoding under the walk's interner. The bits exist so the per-step
// domination pruning can subset-test word-parallel; they are only valid
// within the step that created them (the backing buffers are recycled from
// a bitset.Pool each step).
type extCand struct {
	v    model.Convoy
	bits *bitset.Bits
}

// extendOne walks one convoy one timestamp at a time in the given
// direction, re-clustering the convoy's objects at each next timestamp. A
// convoy that cannot continue intact is emitted as closed in that
// direction; clusters that survive (possibly smaller) continue. The closed
// convoys are returned in discovery order.
//
// Every object set the walk ever touches is a subset of the starting
// convoy's objects (re-clustering only shrinks), so the walk interns that
// object set once and runs its set algebra dense: each re-clustered group
// is encoded into a pooled bitset, and the domination filter compares
// candidates by word-parallel subset tests instead of sorted-slice merges.
func (mi *miner) extendOne(vsp model.Convoy, dir int32) ([]model.Convoy, error) {
	in := model.Intern(vsp.Objs)
	var bufs bitset.Pool
	var out []model.Convoy
	prev := []extCand{{v: vsp, bits: in.Encode(vsp.Objs, nil)}}
	t := edge(vsp, dir) + dir
	for len(prev) > 0 && t >= mi.ts && t <= mi.te {
		var next []extCand
		bufs.Reset() // prev's bits are dead: dominate only compares within one step
		for _, vc := range prev {
			clusters, err := mi.recluster(t, vc.v.Objs)
			if err != nil {
				return nil, err
			}
			if len(clusters) == 0 {
				out = append(out, vc.v) // closed in this direction
				continue
			}
			survived := false
			for _, c := range clusters {
				w := vc.v
				w.Objs = c
				if dir > 0 {
					w.End = t
				} else {
					w.Start = t
				}
				next = append(next, extCand{v: w, bits: in.Encode(c, bufs.Get(in.Len()))})
				if len(c) == len(vc.v.Objs) {
					survived = true
				}
			}
			if !survived {
				// v split or shrank: in its current shape it is closed.
				out = append(out, vc.v)
			}
		}
		prev = extendDominate(next, dir)
		t += dir
	}
	// Hit the dataset boundary: whatever is still alive is closed.
	for _, vc := range prev {
		out = append(out, vc.v)
	}
	return out, nil
}

func edge(v model.Convoy, dir int32) int32 {
	if dir > 0 {
		return v.End
	}
	return v.Start
}

// extendDominate prunes, among in-flight extension candidates that share
// the moving edge, those whose object set is a subset of another candidate
// with an equal-or-wider fixed edge. All candidates carry dense encodings
// under the same walk interner, so the subset tests are word-parallel.
func extendDominate(cands []extCand, dir int32) []extCand {
	fixedLE := func(a, b extCand) bool { // fixed edge of a at least as wide as b's
		if dir > 0 {
			return a.v.Start <= b.v.Start
		}
		return a.v.End >= b.v.End
	}
	var out []extCand
	for _, c := range cands {
		dominated := false
		for j := 0; j < len(out); j++ {
			switch {
			case fixedLE(out[j], c) && c.bits.SubsetOf(out[j].bits):
				dominated = true
			case fixedLE(c, out[j]) && out[j].bits.SubsetOf(c.bits):
				out[j] = out[len(out)-1]
				out = out[:len(out)-1]
				j--
			}
			if dominated {
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// convoyKeys builds a canonical fingerprint of a convoy slice for fixpoint
// detection.
func convoyKeys(cs []model.Convoy) string {
	sorted := make([]model.Convoy, len(cs))
	copy(sorted, cs)
	model.SortConvoys(sorted)
	key := ""
	for _, c := range sorted {
		key += c.Key() + ";"
	}
	return key
}
