package core

import (
	"math/rand"
	"testing"

	"repro/internal/minetest"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/vcoda"
)

// random2D builds a 2-D dataset (the minetest scenarios are 1-D lines):
// clustered walkers in the plane plus uniform noise.
func random2D(seed int64, nObj, nTicks int) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	type walker struct {
		x, y  float64
		group int
		slot  int
	}
	nGroups := nObj/5 + 1
	gx := make([]float64, nGroups)
	gy := make([]float64, nGroups)
	for g := range gx {
		gx[g], gy[g] = rng.Float64()*500, rng.Float64()*500
	}
	ws := make([]walker, nObj)
	for i := range ws {
		ws[i] = walker{group: rng.Intn(nGroups+1) - 1, slot: i % 5}
		ws[i].x, ws[i].y = rng.Float64()*500, rng.Float64()*500
	}
	var pts []model.Point
	for t := 0; t < nTicks; t++ {
		for g := range gx {
			gx[g] += rng.Float64()*4 - 2
			gy[g] += rng.Float64()*4 - 2
		}
		for i, w := range ws {
			var x, y float64
			if w.group >= 0 && rng.Float64() < 0.9 {
				// Cluster members sit on a small ring around the centre.
				x = gx[w.group] + float64(w.slot)*0.9
				y = gy[w.group] + float64(w.slot%2)*0.9
			} else {
				x, y = rng.Float64()*500, rng.Float64()*500
			}
			pts = append(pts, model.Point{OID: int32(i), T: int32(t), X: x, Y: y})
		}
		if rng.Float64() < 0.15 {
			i := rng.Intn(nObj)
			ws[i].group = rng.Intn(nGroups+1) - 1
		}
	}
	return model.NewDataset(pts)
}

func TestMatchesReference2D(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ds := random2D(seed, 15, 20)
		for _, k := range []int{4, 8} {
			want := vcoda.Reference(ds, 3, k, 2.0)
			got, _, err := Mine(storage.NewMemStore(ds), DefaultConfig(3, k, 2.0))
			if err != nil {
				t.Fatal(err)
			}
			if !model.ConvoysEqual(got, want) {
				t.Fatalf("seed %d k=%d:\n got %v\nwant %v", seed, k, got, want)
			}
		}
	}
}

// Shape regression for the paper's core claim (Table 5): on noisy data
// where convoys are rare, k/2-hop must touch well under half the points the
// full-sweep baseline touches, and pruning must improve as k grows.
// Point-count assertions are deterministic, unlike wall-clock.
func TestPruningShape(t *testing.T) {
	// 5 convoy objects among 60 noise wanderers over 120 ticks.
	rng := rand.New(rand.NewSource(99))
	var pts []model.Point
	for tt := 0; tt < 120; tt++ {
		for i := int32(0); i < 5; i++ {
			pts = append(pts, model.Point{OID: i, T: int32(tt), X: float64(tt)*3 + float64(i), Y: 0})
		}
		for i := int32(100); i < 160; i++ {
			pts = append(pts, model.Point{OID: i, T: int32(tt), X: rng.Float64() * 5000, Y: rng.Float64() * 5000})
		}
	}
	ds := model.NewDataset(pts)
	total := int64(ds.NumPoints())

	processed := func(k int) int64 {
		ms := storage.NewMemStore(ds)
		if _, _, err := Mine(ms, DefaultConfig(3, k, minetest.Eps)); err != nil {
			t.Fatal(err)
		}
		return ms.Stats().Snapshot().PointsRead
	}
	p20 := processed(20)
	p60 := processed(60)
	if p20 >= total/2 {
		t.Fatalf("k=20 processed %d of %d — pruning too weak", p20, total)
	}
	if p60 >= p20 {
		t.Fatalf("pruning should improve with k: k=60 read %d ≥ k=20 read %d", p60, p20)
	}
	// The baseline reads everything at least once.
	ms := storage.NewMemStore(ds)
	if _, _, err := vcoda.MineStar(ms, 3, 20, minetest.Eps); err != nil {
		t.Fatal(err)
	}
	base := ms.Stats().Snapshot().PointsRead
	if base < total {
		t.Fatalf("baseline read %d < total %d?", base, total)
	}
	if p20*4 > base {
		t.Fatalf("k/2-hop (%d) not ≥4x fewer reads than baseline (%d)", p20, base)
	}
}
