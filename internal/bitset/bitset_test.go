package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naive is a bool-slice model used to verify the bitset implementation.
type naive []bool

func (n naive) maxRun() int {
	best, cur := 0, 0
	for _, b := range n {
		if b {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

func (n naive) runs(minLen int) [][2]int {
	if minLen < 1 {
		minLen = 1
	}
	var out [][2]int
	start := -1
	for i, b := range n {
		if b {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 && i-start >= minLen {
			out = append(out, [2]int{start, i - 1})
		}
		start = -1
	}
	if start >= 0 && len(n)-start >= minLen {
		out = append(out, [2]int{start, len(n) - 1})
	}
	return out
}

func TestBasicSetGetClear(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("Get(%d) after Set = false", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatalf("Get(64) after Clear = true")
	}
	// Out-of-range is ignored, not panicking.
	b.Set(-1)
	b.Set(130)
	b.Clear(-1)
	if b.Get(-1) || b.Get(130) {
		t.Fatalf("out-of-range Get should be false")
	}
}

func TestAndEqualClone(t *testing.T) {
	a, b := New(100), New(100)
	a.SetRange(10, 50)
	b.SetRange(40, 90)
	c := a.AndNew(b)
	for i := 0; i < 100; i++ {
		want := i >= 40 && i <= 50
		if c.Get(i) != want {
			t.Fatalf("AndNew bit %d = %v, want %v", i, c.Get(i), want)
		}
	}
	if !c.Equal(c.Clone()) {
		t.Fatalf("clone should be equal")
	}
	if c.Equal(New(101)) {
		t.Fatalf("different capacity should not be equal")
	}
	// And mutates in place.
	a.And(b)
	if !a.Equal(c) {
		t.Fatalf("And in place disagrees with AndNew")
	}
}

func TestMaxRunEdges(t *testing.T) {
	b := New(0)
	if b.MaxRun() != 0 {
		t.Fatalf("empty MaxRun = %d", b.MaxRun())
	}
	b = New(200)
	if b.MaxRun() != 0 {
		t.Fatalf("clear MaxRun = %d", b.MaxRun())
	}
	b.SetRange(0, 199)
	if b.MaxRun() != 200 {
		t.Fatalf("full MaxRun = %d", b.MaxRun())
	}
	b = New(200)
	b.SetRange(60, 70) // crosses word boundary
	if b.MaxRun() != 11 {
		t.Fatalf("cross-word MaxRun = %d, want 11", b.MaxRun())
	}
	b.Set(72)
	if b.MaxRun() != 11 {
		t.Fatalf("MaxRun after isolated bit = %d", b.MaxRun())
	}
}

func TestRunsMatchesNaiveQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, minLenRaw uint8) bool {
		n := int(nRaw)%150 + 1
		minLen := int(minLenRaw)%5 + 1
		rng := rand.New(rand.NewSource(seed))
		b := New(n)
		m := make(naive, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
				m[i] = true
			}
		}
		if b.MaxRun() != m.maxRun() {
			return false
		}
		got, want := b.Runs(minLen), m.runs(minLen)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		cnt := 0
		for _, v := range m {
			if v {
				cnt++
			}
		}
		return cnt == b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestRunsMinLen(t *testing.T) {
	b := New(20)
	b.SetRange(0, 2)  // len 3
	b.SetRange(5, 5)  // len 1
	b.SetRange(8, 13) // len 6
	runs := b.Runs(3)
	if len(runs) != 2 || runs[0] != [2]int{0, 2} || runs[1] != [2]int{8, 13} {
		t.Fatalf("Runs(3) = %v", runs)
	}
	if got := b.Runs(0); len(got) != 3 {
		t.Fatalf("Runs(0) should clamp to 1: %v", got)
	}
}

func TestSetRangeClamps(t *testing.T) {
	b := New(10)
	b.SetRange(-5, 100)
	if b.Count() != 10 {
		t.Fatalf("SetRange should clamp, Count = %d", b.Count())
	}
}

func TestNewNegative(t *testing.T) {
	b := New(-3)
	if b.Len() != 0 || b.Count() != 0 {
		t.Fatalf("New(-3) should be empty")
	}
}
