package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naive is a bool-slice model used to verify the bitset implementation.
type naive []bool

func (n naive) maxRun() int {
	best, cur := 0, 0
	for _, b := range n {
		if b {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

func (n naive) runs(minLen int) [][2]int {
	if minLen < 1 {
		minLen = 1
	}
	var out [][2]int
	start := -1
	for i, b := range n {
		if b {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 && i-start >= minLen {
			out = append(out, [2]int{start, i - 1})
		}
		start = -1
	}
	if start >= 0 && len(n)-start >= minLen {
		out = append(out, [2]int{start, len(n) - 1})
	}
	return out
}

func TestBasicSetGetClear(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("Get(%d) after Set = false", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatalf("Get(64) after Clear = true")
	}
	// Out-of-range is ignored, not panicking.
	b.Set(-1)
	b.Set(130)
	b.Clear(-1)
	if b.Get(-1) || b.Get(130) {
		t.Fatalf("out-of-range Get should be false")
	}
}

func TestAndEqualClone(t *testing.T) {
	a, b := New(100), New(100)
	a.SetRange(10, 50)
	b.SetRange(40, 90)
	c := a.AndNew(b)
	for i := 0; i < 100; i++ {
		want := i >= 40 && i <= 50
		if c.Get(i) != want {
			t.Fatalf("AndNew bit %d = %v, want %v", i, c.Get(i), want)
		}
	}
	if !c.Equal(c.Clone()) {
		t.Fatalf("clone should be equal")
	}
	if c.Equal(New(101)) {
		t.Fatalf("different capacity should not be equal")
	}
	// And mutates in place.
	a.And(b)
	if !a.Equal(c) {
		t.Fatalf("And in place disagrees with AndNew")
	}
}

func TestMaxRunEdges(t *testing.T) {
	b := New(0)
	if b.MaxRun() != 0 {
		t.Fatalf("empty MaxRun = %d", b.MaxRun())
	}
	b = New(200)
	if b.MaxRun() != 0 {
		t.Fatalf("clear MaxRun = %d", b.MaxRun())
	}
	b.SetRange(0, 199)
	if b.MaxRun() != 200 {
		t.Fatalf("full MaxRun = %d", b.MaxRun())
	}
	b = New(200)
	b.SetRange(60, 70) // crosses word boundary
	if b.MaxRun() != 11 {
		t.Fatalf("cross-word MaxRun = %d, want 11", b.MaxRun())
	}
	b.Set(72)
	if b.MaxRun() != 11 {
		t.Fatalf("MaxRun after isolated bit = %d", b.MaxRun())
	}
}

func TestRunsMatchesNaiveQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, minLenRaw uint8) bool {
		n := int(nRaw)%150 + 1
		minLen := int(minLenRaw)%5 + 1
		rng := rand.New(rand.NewSource(seed))
		b := New(n)
		m := make(naive, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
				m[i] = true
			}
		}
		if b.MaxRun() != m.maxRun() {
			return false
		}
		got, want := b.Runs(minLen), m.runs(minLen)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		cnt := 0
		for _, v := range m {
			if v {
				cnt++
			}
		}
		return cnt == b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestRunsMinLen(t *testing.T) {
	b := New(20)
	b.SetRange(0, 2)  // len 3
	b.SetRange(5, 5)  // len 1
	b.SetRange(8, 13) // len 6
	runs := b.Runs(3)
	if len(runs) != 2 || runs[0] != [2]int{0, 2} || runs[1] != [2]int{8, 13} {
		t.Fatalf("Runs(3) = %v", runs)
	}
	if got := b.Runs(0); len(got) != 3 {
		t.Fatalf("Runs(0) should clamp to 1: %v", got)
	}
}

func TestSetRangeClamps(t *testing.T) {
	b := New(10)
	b.SetRange(-5, 100)
	if b.Count() != 10 {
		t.Fatalf("SetRange should clamp, Count = %d", b.Count())
	}
}

func TestNewNegative(t *testing.T) {
	b := New(-3)
	if b.Len() != 0 || b.Count() != 0 {
		t.Fatalf("New(-3) should be empty")
	}
}

// randomBits builds a bitset and its bool-slice model with density p.
func randomBits(rng *rand.Rand, n int, p float64) (*Bits, naive) {
	b := New(n)
	m := make(naive, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			b.Set(i)
			m[i] = true
		}
	}
	return b, m
}

func TestWordParallelOpsMatchNaiveQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint8) bool {
		n := int(nRaw)%200 + 1
		m := int(mRaw) % 12
		rng := rand.New(rand.NewSource(seed))
		a, ma := randomBits(rng, n, 0.4)
		b, mb := randomBits(rng, n, 0.4)

		interCount, unionCount, subset := 0, 0, true
		for i := 0; i < n; i++ {
			if ma[i] && mb[i] {
				interCount++
			}
			if ma[i] || mb[i] {
				unionCount++
			}
			if ma[i] && !mb[i] {
				subset = false
			}
		}

		scratch := New(n)
		if got := scratch.AndOf(a, b); got != interCount {
			return false
		}
		if scratch.Count() != interCount {
			return false
		}
		if a.AndCount(b) != interCount {
			return false
		}
		if a.AndCountAtLeast(b, m) != (interCount >= m) {
			return false
		}
		if a.CountAtLeast(m) != (a.Count() >= m) {
			return false
		}
		if scratch.OrOf(a, b); scratch.Count() != unionCount {
			return false
		}
		if a.Clone().Or(b).Count() != unionCount {
			return false
		}
		if a.SubsetOf(b) != subset {
			return false
		}
		if !scratch.ClearAll().SubsetOf(a) || scratch.Any() {
			return false
		}

		// Iteration must visit exactly the set bits, ascending.
		var got []int32
		got = a.AppendIndices(got)
		var want []int32
		for i, v := range ma {
			if v {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		sum := 0
		a.ForEach(func(i int) { sum++ })
		return sum == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAndOfAliasing(t *testing.T) {
	a, b := New(130), New(130)
	a.SetRange(0, 100)
	b.SetRange(50, 129)
	if n := a.AndOf(a, b); n != 51 {
		t.Fatalf("aliased AndOf count = %d, want 51", n)
	}
	for i := 0; i < 130; i++ {
		if a.Get(i) != (i >= 50 && i <= 100) {
			t.Fatalf("aliased AndOf bit %d wrong", i)
		}
	}
}

func TestResizeReuses(t *testing.T) {
	b := New(300)
	b.SetRange(0, 299)
	b.Resize(70)
	if b.Len() != 70 || b.Count() != 0 {
		t.Fatalf("Resize(70): len=%d count=%d", b.Len(), b.Count())
	}
	b.Set(69)
	b.Resize(200) // regrow within capacity: must come back all-clear
	if b.Len() != 200 || b.Count() != 0 {
		t.Fatalf("Resize(200): len=%d count=%d", b.Len(), b.Count())
	}
	b.Resize(-1)
	if b.Len() != 0 || b.Any() {
		t.Fatalf("Resize(-1) should empty the set")
	}
}

func TestAppendKey(t *testing.T) {
	a, b := New(100), New(100)
	a.SetRange(3, 40)
	b.SetRange(3, 40)
	if string(a.AppendKey(nil)) != string(b.AppendKey(nil)) {
		t.Fatalf("equal sets, different keys")
	}
	b.Set(99)
	if string(a.AppendKey(nil)) == string(b.AppendKey(nil)) {
		t.Fatalf("different sets, equal keys")
	}
	if got := len(a.AppendKey(nil)); got != 16 {
		t.Fatalf("key length = %d, want 16 (2 words)", got)
	}
}

func TestPoolRecycles(t *testing.T) {
	var p Pool
	a := p.Get(70)
	a.SetRange(0, 69)
	b := p.Get(10)
	if b == a {
		t.Fatalf("Get must not hand out a live buffer")
	}
	p.Reset()
	c := p.Get(128)
	if c != a && c != b {
		t.Fatalf("Reset should recycle buffers")
	}
	if c.Any() || c.Len() != 128 {
		t.Fatalf("recycled buffer not cleared: count=%d len=%d", c.Count(), c.Len())
	}
}

func TestSubsetOfEdges(t *testing.T) {
	a, b := New(64), New(64)
	if !a.SubsetOf(b) {
		t.Fatalf("∅ ⊆ ∅")
	}
	b.Set(63)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatalf("∅ ⊆ {63} and not vice versa")
	}
	a.Set(63)
	if !a.SubsetOf(b) || !b.SubsetOf(a) {
		t.Fatalf("{63} ⊆ {63} both ways")
	}
}
