// Package bitset provides fixed-capacity bitsets over timestamp indices with
// the run-length queries that the SPARE baseline's apriori enumerator needs:
// intersection of co-clustering sequences and longest-consecutive-run
// pruning (a group of objects can only form a convoy of length ≥ k if the
// AND of its pairwise co-clustering sequences has a run of ≥ k set bits).
package bitset

import "math/bits"

// Bits is a fixed-capacity bitset. Bit i corresponds to the i-th timestamp
// of the dataset. The capacity is set at creation and shared by all bitsets
// an algorithm combines.
type Bits struct {
	n     int
	words []uint64
}

// New returns a bitset with capacity for n bits, all clear.
func New(n int) *Bits {
	if n < 0 {
		n = 0
	}
	return &Bits{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the bitset's capacity in bits.
func (b *Bits) Len() int { return b.n }

// Set sets bit i. Out-of-range indices are ignored.
func (b *Bits) Set(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i. Out-of-range indices are ignored.
func (b *Bits) Clear(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports whether bit i is set.
func (b *Bits) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of set bits.
func (b *Bits) Count() int {
	n := 0
	for _, w := range b.words {
		n += popcount(w)
	}
	return n
}

// Clone returns an independent copy of b.
func (b *Bits) Clone() *Bits {
	out := &Bits{n: b.n, words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

// And sets b to b ∩ o in place and returns b. Both bitsets must have the
// same capacity.
func (b *Bits) And(o *Bits) *Bits {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
	return b
}

// AndNew returns a new bitset holding b ∩ o.
func (b *Bits) AndNew(o *Bits) *Bits { return b.Clone().And(o) }

// Equal reports whether b and o have the same capacity and the same bits.
func (b *Bits) Equal(o *Bits) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// MaxRun returns the length of the longest run of consecutive set bits.
func (b *Bits) MaxRun() int {
	best, cur := 0, 0
	for i := 0; i < len(b.words); i++ {
		w := b.words[i]
		switch w {
		case 0:
			if cur > best {
				best = cur
			}
			cur = 0
		case ^uint64(0):
			cur += 64
		default:
			for bit := 0; bit < 64; bit++ {
				if w&(1<<uint(bit)) != 0 {
					cur++
					if cur > best {
						best = cur
					}
				} else {
					cur = 0
				}
			}
		}
	}
	if cur > best {
		best = cur
	}
	// Trim runs that spill past n (only possible when n%64 != 0 and the
	// caller never set those bits — Set guards them, so no trim needed).
	return best
}

// Runs returns every maximal run of consecutive set bits with length ≥
// minLen, as [start, end] inclusive index pairs in ascending order.
func (b *Bits) Runs(minLen int) [][2]int {
	if minLen < 1 {
		minLen = 1
	}
	var out [][2]int
	start := -1
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 && i-start >= minLen {
			out = append(out, [2]int{start, i - 1})
		}
		start = -1
	}
	if start >= 0 && b.n-start >= minLen {
		out = append(out, [2]int{start, b.n - 1})
	}
	return out
}

// SetRange sets every bit in [from, to] inclusive, clamped to capacity.
func (b *Bits) SetRange(from, to int) {
	if from < 0 {
		from = 0
	}
	if to >= b.n {
		to = b.n - 1
	}
	for i := from; i <= to; i++ {
		b.Set(i)
	}
}

func popcount(w uint64) int { return bits.OnesCount64(w) }
